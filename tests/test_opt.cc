/**
 * @file
 * Tests for Belady's OPT baseline.
 */

#include <gtest/gtest.h>

#include "recap/eval/opt.hh"
#include "recap/eval/simulate.hh"
#include "recap/policy/factory.hh"
#include "recap/trace/generators.hh"

namespace
{

using namespace recap;
using cache::Geometry;
using eval::simulateOpt;
using trace::Trace;

TEST(Opt, HandComputedSingleSet)
{
    // One set, two ways. Classic example where OPT keeps the block
    // with the nearer next use.
    Geometry g{64, 1, 2};
    auto addr = [](uint64_t block) { return block * 64; };
    //            a  b  c  a  b  c: OPT misses a,b,c then hits a,b
    //            and misses c again? Work it out:
    // a: miss (fill), b: miss (fill). c: miss, evict the block whose
    // next use is farther: next(a)=3, next(b)=4 -> evict b.
    // a: hit. b: miss, evict: next(a)=never? a not used again; evict
    // a. c: hit.
    Trace t{addr(1), addr(2), addr(3), addr(1), addr(2), addr(3)};
    const auto stats = simulateOpt(g, t);
    EXPECT_EQ(stats.accesses, 6u);
    EXPECT_EQ(stats.misses, 4u);
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.evictions, 2u);
}

TEST(Opt, PerfectOnFittingWorkingSet)
{
    Geometry g{64, 64, 8};
    const auto t = trace::sequentialScan(16 * 1024, 5);
    const auto stats = simulateOpt(g, t);
    EXPECT_EQ(stats.misses, 16u * 1024 / 64);
}

TEST(Opt, ThrashingScanStillBeatsLru)
{
    Geometry g{64, 64, 8};
    const auto t = trace::sequentialScan(64 * 1024, 6);
    const auto opt = simulateOpt(g, t);
    const auto lru = eval::simulateTrace(g, "lru", t);
    // LRU misses everything; OPT keeps half the cache useful.
    EXPECT_EQ(lru.misses, lru.accesses);
    EXPECT_LT(opt.missRatio(), 0.8);
}

TEST(Opt, LowerBoundsEveryPolicyOnEveryWorkload)
{
    Geometry g{64, 32, 4}; // 8 KiB, small enough to stress
    trace::SuiteConfig cfg;
    cfg.cacheBytes = 8 * 1024;
    cfg.accessesPerWorkload = 30000;
    const auto suite = trace::specLikeSuite(cfg);
    for (const auto& workload : suite) {
        const auto opt = simulateOpt(g, workload.trace);
        for (const auto& spec : policy::baselineSpecs()) {
            if (!policy::specSupportsWays(spec, g.ways))
                continue;
            const auto stats =
                eval::simulateTrace(g, spec, workload.trace);
            EXPECT_LE(opt.misses, stats.misses)
                << workload.name << " / " << spec;
        }
    }
}

TEST(Opt, SetsAreIndependent)
{
    // Two sets with interleaved conflict streams: OPT must handle
    // each set's future separately.
    Geometry g{64, 2, 1};
    auto addr = [](unsigned set, uint64_t tag) {
        return (tag * 2 + set) * 64;
    };
    Trace t{addr(0, 1), addr(1, 1), addr(0, 2),
            addr(1, 1), addr(0, 2), addr(0, 1)};
    const auto stats = simulateOpt(g, t);
    // Set 1: tag1, tag1 -> 1 miss + 1 hit. Set 0 (1 way):
    // 1,2,2,1 -> misses 1,2, hit 2, miss 1.
    EXPECT_EQ(stats.misses, 4u);
    EXPECT_EQ(stats.hits, 2u);
}

TEST(Opt, EmptyTrace)
{
    Geometry g{64, 4, 2};
    const auto stats = simulateOpt(g, {});
    EXPECT_EQ(stats.accesses, 0u);
    EXPECT_EQ(stats.missRatio(), 0.0);
}

} // namespace
