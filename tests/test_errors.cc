/**
 * @file
 * Error-path coverage across modules: every documented precondition
 * must fail loudly with UsageError (caller contract) rather than
 * silently misbehave.
 */

#include <gtest/gtest.h>

#include "recap/cache/cache.hh"
#include "recap/cache/hierarchy.hh"
#include "recap/common/error.hh"
#include "recap/eval/predictability.hh"
#include "recap/eval/reuse.hh"
#include "recap/hw/catalog.hh"
#include "recap/hw/machine.hh"
#include "recap/policy/factory.hh"
#include "recap/policy/permutation.hh"
#include "recap/trace/generators.hh"

namespace
{

using namespace recap;

TEST(Errors, ErrorTypesAreDistinct)
{
    // UsageError is for caller mistakes, LogicBug for recap bugs;
    // both chain to the expected standard bases.
    EXPECT_THROW(require(false, "x"), UsageError);
    EXPECT_THROW(ensure(false, "x"), LogicBug);
    EXPECT_THROW(require(false, "x"), std::invalid_argument);
    EXPECT_THROW(ensure(false, "x"), std::logic_error);
    EXPECT_NO_THROW(require(true, "x"));
    EXPECT_NO_THROW(ensure(true, "x"));
}

TEST(Errors, ErrorMessagesSurvive)
{
    try {
        require(false, "the exact message");
        FAIL();
    } catch (const UsageError& e) {
        EXPECT_STREQ(e.what(), "the exact message");
    }
}

TEST(Errors, PolicyFactoryRejectsMalformedParameterLists)
{
    EXPECT_THROW(policy::makePolicy("srrip:0", 4), UsageError);
    EXPECT_THROW(policy::makePolicy("srrip:abc", 4), UsageError);
    EXPECT_THROW(policy::makePolicy("brrip:2,0", 4), UsageError);
    EXPECT_THROW(policy::makePolicy("brrip:2,x", 4), UsageError);
    EXPECT_THROW(policy::makePolicy("bip:", 4), UsageError);
    EXPECT_THROW(policy::makePolicy("qlru:", 4), UsageError);
    EXPECT_THROW(policy::makePolicy("qlru", 4), UsageError);
    EXPECT_THROW(policy::makePolicy("", 4), UsageError);
    EXPECT_THROW(policy::makePolicy("plru", 6), UsageError);
    EXPECT_THROW(policy::makePolicy("lru", 0), UsageError);
}

TEST(Errors, UnknownPolicySpecListsTheKnownNames)
{
    // A typo'd spec must name the offender and enumerate what the
    // factory does accept, so the CLI surfaces an actionable error.
    try {
        policy::makePolicy("zlru", 4);
        FAIL() << "unknown spec accepted";
    } catch (const UsageError& e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("unknown policy spec 'zlru'"),
                  std::string::npos)
            << message;
        EXPECT_NE(message.find("known policies:"), std::string::npos)
            << message;
        for (const auto& name : policy::knownPolicyNames())
            EXPECT_NE(message.find(name), std::string::npos)
                << name << " missing from: " << message;
    }
}

TEST(Errors, PermutationEngineValidatesShapes)
{
    using policy::Permutation;
    using policy::PermutationPolicy;
    std::vector<Permutation> hits(4, policy::identityPermutation(4));
    const Permutation miss = policy::identityPermutation(4);
    // Wrong-length initial order.
    EXPECT_THROW(PermutationPolicy(4, hits, miss, "",
                                   PermutationPolicy::FillRule::kTouch,
                                   {0, 1}),
                 UsageError);
    // Duplicate ways in the initial order.
    EXPECT_THROW(PermutationPolicy(4, hits, miss, "",
                                   PermutationPolicy::FillRule::kTouch,
                                   {0, 1, 1, 3}),
                 UsageError);
    // orderAt range checking.
    PermutationPolicy ok(4, hits, miss);
    EXPECT_THROW(ok.orderAt(4), UsageError);
}

TEST(Errors, CacheRejectsInvalidGeometryAndSpecs)
{
    EXPECT_THROW(cache::Cache(cache::Geometry{60, 4, 2}, "lru", "x"),
                 UsageError);
    EXPECT_THROW(cache::Cache(cache::Geometry{64, 4, 2}, "wat", "x"),
                 UsageError);
    EXPECT_THROW(cache::Cache(cache::Geometry{64, 4, 6}, "plru", "x"),
                 UsageError);
}

TEST(Errors, HierarchyRangeChecks)
{
    cache::Hierarchy h(100);
    EXPECT_THROW(h.level(0), UsageError);
    h.addLevel(cache::Cache(cache::Geometry{64, 2, 2}, "lru", "L1"),
               4);
    EXPECT_THROW(h.level(1), UsageError);
    EXPECT_THROW(h.latencyOf(2), UsageError);
    EXPECT_THROW(cache::Hierarchy(0), UsageError);
    EXPECT_THROW(h.addLevel(
                     cache::Cache(cache::Geometry{64, 2, 2}, "lru",
                                  "L0"),
                     0),
                 UsageError);
}

TEST(Errors, MachineSpecValidation)
{
    hw::MachineSpec spec = hw::catalogMachine("core2-e6300");

    auto broken = spec;
    broken.name.clear();
    EXPECT_THROW(broken.validate(), UsageError);

    broken = spec;
    broken.levels.clear();
    EXPECT_THROW(broken.validate(), UsageError);

    broken = spec;
    broken.levels[1].hitLatency = broken.levels[0].hitLatency;
    EXPECT_THROW(broken.validate(), UsageError);

    broken = spec;
    broken.levels[0].policySpec.clear();
    EXPECT_THROW(broken.validate(), UsageError);

    broken = spec;
    broken.memoryLatency = broken.levels.back().hitLatency;
    EXPECT_THROW(broken.validate(), UsageError);

    broken = spec;
    broken.levels[0].capacityBytes += 1;
    EXPECT_THROW(hw::Machine{broken}, UsageError);
}

TEST(Errors, GeneratorPreconditions)
{
    EXPECT_THROW(trace::sequentialScan(1024, 1, 0), UsageError);
    EXPECT_THROW(trace::stridedScan(1024, 0, 1), UsageError);
    EXPECT_THROW(trace::zipf(1024, 10, 0.0, 1), UsageError);
    EXPECT_THROW(trace::pointerChase(1, 10, 1), UsageError);
    EXPECT_THROW(trace::stackDistanceModel(10, 0.0, 1), UsageError);
}

TEST(Errors, ReuseProfilePreconditions)
{
    EXPECT_THROW(eval::reuseProfile({}, 0), UsageError);
    const auto profile = eval::reuseProfile({0, 64});
    EXPECT_THROW(profile.capacityForMissRatio(-0.1), UsageError);
    EXPECT_THROW(profile.capacityForMissRatio(1.1), UsageError);
}

TEST(Errors, PredictabilityRenderRequiresOutcome)
{
    eval::MetricResult empty;
    EXPECT_THROW(empty.render(), LogicBug);
}

} // namespace
