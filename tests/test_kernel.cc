/**
 * @file
 * Differential tests of the batch simulation kernel: the compiled
 * structure-of-arrays loop must reproduce the interpreted Cache
 * model bit-exactly — statistics, final tag contents, and final
 * policy state keys — for every catalog policy, including the ones
 * that fall back to interpretation.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "recap/cache/cache.hh"
#include "recap/common/parallel.hh"
#include "recap/eval/kernel.hh"
#include "recap/eval/simulate.hh"
#include "recap/policy/compiled.hh"
#include "recap/policy/factory.hh"
#include "recap/trace/generators.hh"

namespace recap::eval
{
namespace
{

const cache::Geometry kGeom = cache::Geometry{64, 64, 8};

void
expectStatsEqual(const cache::LevelStats& a,
                 const cache::LevelStats& b, const std::string& what)
{
    EXPECT_EQ(a.accesses, b.accesses) << what;
    EXPECT_EQ(a.hits, b.hits) << what;
    EXPECT_EQ(a.misses, b.misses) << what;
    EXPECT_EQ(a.evictions, b.evictions) << what;
}

/**
 * simulateTrace (which dispatches to the kernel) vs an explicit
 * interpreted Cache loop, for every catalog policy — compiled ones
 * and fallbacks alike.
 */
TEST(Kernel, MatchesInterpretedCacheStats)
{
    const auto t = trace::zipf(1 << 16, 20000, 0.9, 7);
    for (const auto& spec : policy::baselineSpecs()) {
        if (!policy::specSupportsWays(spec, kGeom.ways))
            continue;
        cache::Cache reference(kGeom, spec, "ref", 1);
        for (const cache::Addr addr : t)
            reference.access(addr);
        const auto viaKernel = simulateTrace(kGeom, spec, t, 1);
        expectStatsEqual(viaKernel, reference.stats(), spec);
    }
}

/**
 * Final machine state, not just counters: per-set tags, valid bits,
 * and the policy state key after the full trace must be identical
 * between the compiled kernel and the Cache model.
 */
TEST(Kernel, FinalSetImagesMatchCache)
{
    const auto t = trace::zipf(1 << 16, 20000, 0.9, 11);
    for (const auto& spec : policy::baselineSpecs()) {
        if (!policy::specSupportsWays(spec, kGeom.ways))
            continue;
        const auto table =
            policy::compiledTableFor(spec, kGeom.ways, {});
        if (!table)
            continue; // fallback path has no separate state to diff
        std::vector<SetImage> kernelImage;
        simulateCompiled(kGeom, *table, t, &kernelImage);
        ASSERT_EQ(kernelImage.size(), kGeom.numSets);

        cache::Cache reference(kGeom, spec, "ref", 1);
        for (const cache::Addr addr : t)
            reference.access(addr);
        for (unsigned s = 0; s < kGeom.numSets; ++s) {
            const auto expected = reference.setImage(s);
            EXPECT_EQ(kernelImage[s].tags, expected.tags)
                << spec << " set " << s;
            EXPECT_EQ(kernelImage[s].valid, expected.valid)
                << spec << " set " << s;
            EXPECT_EQ(kernelImage[s].policyKey, expected.policyKey)
                << spec << " set " << s;
        }
    }
}

/** forceInterpreted must change nothing but the execution path. */
TEST(Kernel, ForceInterpretedIsEquivalent)
{
    const auto t = trace::zipf(1 << 15, 15000, 0.8, 3);
    for (const std::string spec :
         {"lru", "plru", "srrip", "fifo", "random"}) {
        KernelOptions compiled;
        KernelOptions interpreted;
        interpreted.forceInterpreted = true;
        expectStatsEqual(
            simulateTraceKernel(kGeom, spec, t, compiled),
            simulateTraceKernel(kGeom, spec, t, interpreted), spec);
    }
}

/**
 * Batch evaluation: one compile shared across traces, results equal
 * to per-trace calls, for any thread count (including the shared
 * process pool), and for fallback policies with derived seeds.
 */
TEST(Kernel, BatchMatchesPerTraceCalls)
{
    std::vector<trace::Trace> traces;
    for (uint64_t seed = 1; seed <= 5; ++seed)
        traces.push_back(trace::zipf(1 << 15, 8000, 0.9, seed));
    std::vector<const trace::Trace*> pointers;
    for (const auto& t : traces)
        pointers.push_back(&t);

    for (const std::string spec : {"plru", "qlru:H1,M1,R0,U2",
                                   "random"}) {
        KernelOptions opts;
        opts.seed = 42;
        for (const unsigned threads : {1u, 0u, 3u}) {
            opts.numThreads = threads;
            const auto batch =
                simulateTracesBatch(kGeom, spec, pointers, opts);
            ASSERT_EQ(batch.size(), traces.size());
            for (std::size_t i = 0; i < traces.size(); ++i) {
                KernelOptions single = opts;
                single.seed = deriveTaskSeed(opts.seed, i);
                expectStatsEqual(
                    batch[i],
                    simulateTraceKernel(kGeom, spec, traces[i],
                                        single),
                    spec + " trace " + std::to_string(i));
            }
        }
    }
}

/** Different geometries exercise the address-slicing arithmetic. */
TEST(Kernel, GeometrySweepMatchesCache)
{
    const auto t = trace::zipf(1 << 16, 12000, 0.9, 5);
    for (const auto& geom :
         {cache::Geometry{16, 64, 4}, cache::Geometry{128, 32, 2},
          cache::Geometry{32, 64, 8}}) {
        for (const std::string spec : {"lru", "plru", "nru"}) {
            if (!policy::specSupportsWays(spec, geom.ways))
                continue;
            cache::Cache reference(geom, spec, "ref", 1);
            for (const cache::Addr addr : t)
                reference.access(addr);
            expectStatsEqual(
                simulateTrace(geom, spec, t, 1), reference.stats(),
                spec + " @ " + geom.describe());
        }
    }
}

/** Repeated kernel runs are deterministic (no hidden state). */
TEST(Kernel, Deterministic)
{
    const auto t = trace::zipf(1 << 15, 10000, 0.9, 13);
    const auto first = simulateTrace(kGeom, "srrip", t, 1);
    const auto second = simulateTrace(kGeom, "srrip", t, 1);
    expectStatsEqual(first, second, "srrip repeat");
}

} // namespace
} // namespace recap::eval
