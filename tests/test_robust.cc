/**
 * @file
 * Tests for the robust measurement primitives: the confidence-driven
 * sequential vote (and its fixed-N-majority equivalence in the
 * zero-noise limit), the incremental per-position SequenceVote with
 * abstentions, and the robust statistics behind latency-fence
 * calibration.
 */

#include <gtest/gtest.h>

#include <vector>

#include "recap/common/rng.hh"
#include "recap/infer/robust.hh"

namespace
{

using namespace recap;
using infer::AdaptiveVoteConfig;
using infer::adaptiveVote;
using infer::SequenceVote;
using infer::Verdict;
using infer::VoteOutcome;

/** Replays a scripted outcome stream (repeating the last element). */
std::function<bool()>
scripted(std::vector<bool> outcomes)
{
    auto index = std::make_shared<std::size_t>(0);
    return [outcomes = std::move(outcomes), index] {
        const std::size_t i =
            std::min(*index, outcomes.size() - 1);
        ++*index;
        return outcomes[i];
    };
}

TEST(AdaptiveVote, UnanimousReadingsSettleAtInitialRepeats)
{
    AdaptiveVoteConfig cfg;
    cfg.initialRepeats = 3;
    cfg.settleMargin = 3;
    const VoteOutcome yes = adaptiveVote(cfg, [] { return true; });
    EXPECT_EQ(yes.verdict, Verdict::kYes);
    EXPECT_TRUE(yes.determined());
    EXPECT_TRUE(yes.value());
    EXPECT_DOUBLE_EQ(yes.confidence, 1.0);
    EXPECT_EQ(yes.samples, 3u);

    const VoteOutcome no = adaptiveVote(cfg, [] { return false; });
    EXPECT_EQ(no.verdict, Verdict::kNo);
    EXPECT_FALSE(no.value());
    EXPECT_EQ(no.samples, 3u);
}

// In the zero-noise limit (a deterministic experiment) the adaptive
// vote and a fixed-N majority vote agree for every N — the property
// that makes enabling adaptive voting safe on clean machines.
TEST(AdaptiveVote, MatchesFixedNMajorityInTheZeroNoiseLimit)
{
    for (const bool truth : {false, true}) {
        for (unsigned initial : {1u, 3u, 5u, 9u}) {
            for (unsigned margin : {1u, 2u, 3u, 5u}) {
                AdaptiveVoteConfig cfg;
                cfg.initialRepeats = initial;
                cfg.settleMargin = margin;
                const VoteOutcome vote =
                    adaptiveVote(cfg, [truth] { return truth; });
                // Fixed-N majority of a constant stream is the
                // constant, for any odd N.
                EXPECT_TRUE(vote.determined());
                EXPECT_EQ(vote.value(), truth);
                EXPECT_DOUBLE_EQ(vote.confidence, 1.0);
                // And it never burns more than the initial batch.
                EXPECT_LE(vote.samples,
                          std::max(initial, margin));
            }
        }
    }
}

TEST(AdaptiveVote, EscalatesOnContradiction)
{
    AdaptiveVoteConfig cfg;
    cfg.initialRepeats = 3;
    cfg.escalationStep = 4;
    cfg.maxRepeats = 31;
    cfg.settleMargin = 3;
    // First three readings contradict (2 yes / 1 no): must escalate
    // beyond the initial batch, then settle on the true majority.
    const VoteOutcome vote = adaptiveVote(
        cfg, scripted({true, false, true, true, true, true}));
    EXPECT_EQ(vote.verdict, Verdict::kYes);
    EXPECT_GT(vote.samples, 3u);
    EXPECT_LE(vote.samples, cfg.maxRepeats);
    EXPECT_LT(vote.confidence, 1.0);
    EXPECT_GE(vote.confidence, 0.5);
}

TEST(AdaptiveVote, ContradictoryStreamIsUndetermined)
{
    AdaptiveVoteConfig cfg;
    cfg.initialRepeats = 4;
    cfg.escalationStep = 4;
    cfg.maxRepeats = 20;
    cfg.settleMargin = 8;
    cfg.minConfidence = 0.65;
    // A perfectly alternating stream never forms a quorum.
    auto flip = std::make_shared<bool>(false);
    const VoteOutcome vote = adaptiveVote(cfg, [flip] {
        *flip = !*flip;
        return *flip;
    });
    EXPECT_EQ(vote.verdict, Verdict::kUndetermined);
    EXPECT_FALSE(vote.determined());
    EXPECT_EQ(vote.samples, cfg.maxRepeats);
    EXPECT_LT(vote.confidence, cfg.minConfidence);
}

TEST(AdaptiveVote, BudgetExhaustionWithClearMajoritySettles)
{
    AdaptiveVoteConfig cfg;
    cfg.initialRepeats = 5;
    cfg.escalationStep = 5;
    cfg.maxRepeats = 10;
    cfg.settleMargin = 100; // unreachable: force budget exhaustion
    cfg.minConfidence = 0.65;
    // 8/10 yes: exhausted but confident enough to settle.
    const VoteOutcome vote = adaptiveVote(
        cfg, scripted({true, false, true, true, false, true, true,
                       true, true, true}));
    EXPECT_EQ(vote.verdict, Verdict::kYes);
    EXPECT_EQ(vote.samples, 10u);
    EXPECT_DOUBLE_EQ(vote.confidence, 0.8);
}

TEST(AdaptiveVote, SampleCountIsDeterministic)
{
    AdaptiveVoteConfig cfg;
    cfg.initialRepeats = 3;
    cfg.maxRepeats = 31;
    // The same (deterministic) outcome stream must consume the exact
    // same number of samples on every run.
    for (int run = 0; run < 3; ++run) {
        Rng rng(99);
        const VoteOutcome vote = adaptiveVote(
            cfg, [&rng] { return rng.nextBool(0.8); });
        static unsigned pinnedSamples = 0;
        if (run == 0)
            pinnedSamples = vote.samples;
        EXPECT_EQ(vote.samples, pinnedSamples);
    }
}

TEST(SequenceVote, SettlesEveryPositionIndependently)
{
    AdaptiveVoteConfig cfg;
    cfg.initialRepeats = 3;
    cfg.settleMargin = 3;
    cfg.maxRepeats = 31;
    SequenceVote vote(cfg, 3);
    EXPECT_FALSE(vote.done());
    // Position 0 always true, 1 always false, 2 alternates.
    bool flip = false;
    while (!vote.done()) {
        vote.addReplay({true, false, flip});
        flip = !flip;
    }
    const auto outcomes = vote.outcomes();
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_EQ(outcomes[0].verdict, Verdict::kYes);
    EXPECT_EQ(outcomes[1].verdict, Verdict::kNo);
    EXPECT_EQ(outcomes[2].verdict, Verdict::kUndetermined);
    // The contradictory position forced the full budget.
    EXPECT_EQ(vote.replays(), cfg.maxRepeats);
}

TEST(SequenceVote, CleanSequencesSettleAfterTheInitialBatch)
{
    AdaptiveVoteConfig cfg;
    cfg.initialRepeats = 3;
    cfg.settleMargin = 3;
    SequenceVote vote(cfg, 4);
    while (!vote.done())
        vote.addReplay({true, true, false, true});
    EXPECT_EQ(vote.replays(), 3u);
    for (const auto& outcome : vote.outcomes()) {
        EXPECT_TRUE(outcome.determined());
        EXPECT_DOUBLE_EQ(outcome.confidence, 1.0);
    }
}

TEST(SequenceVote, AbstentionsDoNotCountTowardTheQuorum)
{
    AdaptiveVoteConfig cfg;
    cfg.initialRepeats = 3;
    cfg.settleMargin = 3;
    cfg.maxRepeats = 9;
    cfg.minConfidence = 0.65;
    SequenceVote vote(cfg, 2);
    // Position 1 abstains on every replay (outlier readings): it must
    // end undetermined while position 0 settles normally.
    while (!vote.done())
        vote.addReplay({true, true}, {true, false});
    const auto outcomes = vote.outcomes();
    EXPECT_EQ(outcomes[0].verdict, Verdict::kYes);
    EXPECT_EQ(outcomes[1].verdict, Verdict::kUndetermined);
    EXPECT_EQ(outcomes[1].samples, 0u);
}

TEST(RobustStats, MedianAndMadOfCleanSamples)
{
    const auto stats =
        infer::robustStats({10, 10, 10, 10, 10, 10, 10});
    EXPECT_EQ(stats.median, 10u);
    EXPECT_EQ(stats.mad, 0u);
}

TEST(RobustStats, MedianResistsOutliers)
{
    // Five clean L1 readings and two page-walk outliers: the median
    // and MAD must ignore the outliers entirely.
    const auto stats =
        infer::robustStats({12, 11, 12, 13, 12, 400, 380});
    EXPECT_EQ(stats.median, 12u);
    EXPECT_LE(stats.mad, 2u);
}

TEST(RobustStats, EmptyInputIsZero)
{
    const auto stats = infer::robustStats({});
    EXPECT_EQ(stats.median, 0u);
    EXPECT_EQ(stats.mad, 0u);
}

TEST(OutlierFence, FloorsTheFenceForTightSamples)
{
    // MAD 0 (all readings equal): the fence is median + floor, so a
    // tight distribution still tolerates modest jitter.
    infer::RobustStats stats;
    stats.median = 10;
    stats.mad = 0;
    EXPECT_EQ(infer::outlierFence(stats, 6.0, 24), 34u);
}

TEST(OutlierFence, ScalesWithTheMad)
{
    infer::RobustStats stats;
    stats.median = 100;
    stats.mad = 10;
    EXPECT_EQ(infer::outlierFence(stats, 6.0, 24), 160u);
}

} // namespace
