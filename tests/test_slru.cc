/**
 * @file
 * Tests for segmented LRU.
 */

#include <gtest/gtest.h>

#include "recap/common/error.hh"
#include "recap/policy/factory.hh"
#include "recap/policy/set_model.hh"
#include "recap/policy/slru.hh"

namespace
{

using namespace recap::policy;
using recap::UsageError;

TEST(Slru, DefaultsToHalfProtected)
{
    SlruPolicy p(8);
    EXPECT_EQ(p.protectedCapacity(), 4u);
    SlruPolicy q(8, 6);
    EXPECT_EQ(q.protectedCapacity(), 6u);
}

TEST(Slru, RejectsBadSegmentSizes)
{
    EXPECT_THROW(SlruPolicy(4, 4), UsageError);
    EXPECT_THROW(SlruPolicy(4, 7), UsageError);
    EXPECT_THROW(SlruPolicy(1), UsageError);
}

TEST(Slru, FillsStayProbationary)
{
    SlruPolicy p(4, 2);
    p.fill(0);
    p.fill(1);
    EXPECT_TRUE(p.protectedSegment().empty());
    EXPECT_EQ(p.probationarySegment().front(), 1u);
}

TEST(Slru, HitPromotesToProtected)
{
    SlruPolicy p(4, 2);
    p.fill(0);
    p.touch(0);
    ASSERT_EQ(p.protectedSegment().size(), 1u);
    EXPECT_EQ(p.protectedSegment().front(), 0u);
}

TEST(Slru, ProtectedOverflowDemotesLru)
{
    SlruPolicy p(4, 2);
    for (unsigned w = 0; w < 4; ++w)
        p.fill(w);
    p.touch(0);
    p.touch(1);
    p.touch(2); // protected over capacity: way 0 demoted
    const auto prot = p.protectedSegment();
    ASSERT_EQ(prot.size(), 2u);
    EXPECT_EQ(prot[0], 2u);
    EXPECT_EQ(prot[1], 1u);
    EXPECT_EQ(p.probationarySegment().front(), 0u);
}

TEST(Slru, VictimIsProbationaryLru)
{
    SlruPolicy p(4, 2);
    for (unsigned w = 0; w < 4; ++w)
        p.fill(w);
    // Probationary order (MRU first): 3,2,1,0 -> victim way 0.
    EXPECT_EQ(p.victim(), 0u);
    p.touch(0); // promote 0: victim becomes way 1
    EXPECT_EQ(p.victim(), 1u);
}

TEST(Slru, VictimFallsBackToProtected)
{
    SlruPolicy p(3, 2);
    p.fill(0);
    p.fill(1);
    p.fill(2);
    p.touch(0);
    p.touch(1);
    p.touch(2); // 0 demoted: probation {0}, protected {2,1}
    p.touch(0); // 1 demoted: probation {1}, protected {0,2}
    p.touch(1); // 2 demoted: probation {2}, protected {1,0}
    p.touch(2); // 0 demoted: probation {0}, protected {2,1}
    EXPECT_EQ(p.victim(), 0u);
    // Promote the only probationary line: victim must come from the
    // protected segment's LRU end.
    p.touch(0); // 1 demoted -> probation {1}
    EXPECT_EQ(p.victim(), 1u);
}

TEST(Slru, ScanResistance)
{
    // A protected working set survives a one-shot scan that would
    // wipe plain LRU.
    SetModel slru(std::make_unique<SlruPolicy>(8, 4));
    SetModel lru(makePolicy("lru", 8));
    // Establish 4 hot lines (two touches each).
    for (int rep = 0; rep < 2; ++rep)
        for (BlockId b = 1; b <= 4; ++b) {
            slru.access(b);
            lru.access(b);
        }
    // One-shot scan of 8 cold lines.
    for (BlockId b = 100; b < 108; ++b) {
        slru.access(b);
        lru.access(b);
    }
    unsigned slru_hits = 0;
    unsigned lru_hits = 0;
    for (BlockId b = 1; b <= 4; ++b) {
        slru_hits += slru.contains(b);
        lru_hits += lru.contains(b);
    }
    EXPECT_EQ(lru_hits, 0u);
    EXPECT_EQ(slru_hits, 4u);
}

TEST(Slru, FactoryIntegration)
{
    auto p = makePolicy("slru", 8);
    EXPECT_EQ(p->name(), "SLRU");
    auto q = makePolicy("slru:6", 8);
    EXPECT_EQ(q->ways(), 8u);
    EXPECT_THROW(makePolicy("slru:9", 8), UsageError);
}

TEST(Slru, CloneAndReset)
{
    SlruPolicy p(4, 2);
    p.fill(0);
    p.touch(0);
    auto c = p.clone();
    EXPECT_EQ(c->stateKey(), p.stateKey());
    c->touch(1);
    EXPECT_NE(c->stateKey(), p.stateKey());
    const std::string initial = SlruPolicy(4, 2).stateKey();
    p.reset();
    EXPECT_EQ(p.stateKey(), initial);
}

} // namespace
