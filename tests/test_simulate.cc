/**
 * @file
 * Tests for the trace-driven evaluation harness.
 */

#include <gtest/gtest.h>

#include "recap/eval/simulate.hh"
#include "recap/trace/generators.hh"

namespace
{

using namespace recap;
using cache::Geometry;
using eval::simulateTrace;
using trace::Trace;

Geometry
geom32k()
{
    return Geometry{64, 64, 8}; // 32 KiB
}

TEST(Simulate, FittingScanMissesOnlyCold)
{
    const auto t = trace::sequentialScan(16 * 1024, 4);
    const auto stats = simulateTrace(geom32k(), "lru", t);
    EXPECT_EQ(stats.accesses, t.size());
    EXPECT_EQ(stats.misses, 16u * 1024 / 64); // cold misses only
    EXPECT_EQ(stats.evictions, 0u);
}

TEST(Simulate, ThrashingScanDefeatsLru)
{
    const auto t = trace::sequentialScan(64 * 1024, 4);
    const auto stats = simulateTrace(geom32k(), "lru", t);
    // Cyclic scan at twice the capacity: LRU misses every access.
    EXPECT_EQ(stats.misses, stats.accesses);
}

TEST(Simulate, BipResistsThrashingBetterThanLru)
{
    const auto t = trace::sequentialScan(64 * 1024, 6);
    const auto lru = simulateTrace(geom32k(), "lru", t);
    const auto bip = simulateTrace(geom32k(), "bip", t);
    EXPECT_LT(bip.missRatio(), lru.missRatio() * 0.8);
}

TEST(Simulate, DeterministicForSeededRandomPolicy)
{
    const auto t = trace::randomUniform(64 * 1024, 30000, 3);
    const auto a = simulateTrace(geom32k(), "random", t, 5);
    const auto b = simulateTrace(geom32k(), "random", t, 5);
    EXPECT_EQ(a.misses, b.misses);
    const auto c = simulateTrace(geom32k(), "random", t, 6);
    EXPECT_NE(a.misses, c.misses);
}

TEST(Simulate, AdaptiveBeatsWorstConstituentOnPhaseMix)
{
    const auto t = trace::phaseMix(32 * 1024, 4, 3, 21);
    cache::DuelingConfig duel;
    duel.leaderSetsPerPolicy = 4;
    duel.pselBits = 8;
    const auto adaptive = eval::simulateTraceAdaptive(
        geom32k(), "lru", "bip", duel, t);
    const auto lru = simulateTrace(geom32k(), "lru", t);
    const auto bip = simulateTrace(geom32k(), "bip", t);
    const double worst =
        std::max(lru.missRatio(), bip.missRatio());
    EXPECT_LT(adaptive.missRatio(), worst);
}

TEST(Simulate, DrripStyleDuelTracksBetterRripVariant)
{
    // DRRIP = set dueling between SRRIP and BRRIP; on a thrashing
    // scan the composite must track BRRIP, not SRRIP.
    const auto t = trace::sequentialScan(64 * 1024, 8);
    cache::DuelingConfig duel;
    duel.leaderSetsPerPolicy = 4;
    duel.pselBits = 8;
    const auto drrip = eval::simulateTraceAdaptive(
        geom32k(), "srrip", "brrip", duel, t);
    const auto srrip = simulateTrace(geom32k(), "srrip", t);
    const auto brrip = simulateTrace(geom32k(), "brrip", t);
    EXPECT_LT(drrip.missRatio(), srrip.missRatio());
    EXPECT_LT(drrip.missRatio(), brrip.missRatio() * 1.15);
}

TEST(Simulate, InterleavedCorunnersDegradeEachOther)
{
    // A cache-friendly loop co-running with a streaming antagonist
    // through a shared cache: the loop's lines keep getting evicted,
    // so the combined miss ratio exceeds the weighted solo ratios.
    // 24 KiB loop + co-runner: per set, 6 loop lines plus ~6
    // interleaved stream lines exceed the 8 ways, while the loop
    // alone fits the 32 KiB cache.
    const auto loop = trace::sequentialScan(24 * 1024, 40);
    const auto stream = trace::sequentialScan(384 * 1024, 3,
                                              64, 1 << 27);
    const auto mixed = trace::interleaveTraces({loop, stream}, 8);

    const auto solo_loop = simulateTrace(geom32k(), "lru", loop);
    const auto solo_stream = simulateTrace(geom32k(), "lru", stream);
    const auto shared = simulateTrace(geom32k(), "lru", mixed);

    const double weighted =
        (static_cast<double>(solo_loop.misses) + solo_stream.misses) /
        static_cast<double>(loop.size() + stream.size());
    EXPECT_GT(shared.missRatio(), weighted * 1.5);
}

TEST(Simulate, WindowedMissRatios)
{
    cache::Cache c(geom32k(), "lru", "eval");
    const auto t = trace::sequentialScan(16 * 1024, 4);
    const auto windows = eval::windowedMissRatios(c, t, 256);
    ASSERT_EQ(windows.size(), t.size() / 256);
    // First window is cold (all misses), later windows all hits.
    EXPECT_DOUBLE_EQ(windows.front(), 1.0);
    EXPECT_DOUBLE_EQ(windows.back(), 0.0);
}

TEST(Simulate, WindowedHandlesPartialTailWindow)
{
    cache::Cache c(geom32k(), "lru", "eval");
    Trace t(300, 0); // 300 accesses to one line
    const auto windows = eval::windowedMissRatios(c, t, 256);
    ASSERT_EQ(windows.size(), 2u);
    EXPECT_NEAR(windows[0], 1.0 / 256.0, 1e-12);
    EXPECT_DOUBLE_EQ(windows[1], 0.0);
}

TEST(Simulate, PolicyOrderingOnZipf)
{
    // On a skewed reuse-friendly workload, recency-based policies
    // must beat random replacement.
    const auto t = trace::zipf(128 * 1024, 60000, 1.0, 9);
    const auto lru = simulateTrace(geom32k(), "lru", t);
    const auto rnd = simulateTrace(geom32k(), "random", t);
    EXPECT_LT(lru.missRatio(), rnd.missRatio());
}

TEST(Simulate, PlruTracksLruClosely)
{
    const auto t = trace::stackDistanceModel(60000, 40.0, 4);
    const auto lru = simulateTrace(geom32k(), "lru", t);
    const auto plru = simulateTrace(geom32k(), "plru", t);
    EXPECT_NEAR(plru.missRatio(), lru.missRatio(),
                0.05 * lru.missRatio() + 0.01);
}

} // namespace
