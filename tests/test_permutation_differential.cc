/**
 * @file
 * Differential tests grounding the permutation-policy engine in an
 * oracle: a PermutationPolicy built from the analytic LRU/FIFO/PLRU
 * permutation vectors (or derived from the explicit automaton by
 * eviction-order probing) must produce the exact same hit/miss and
 * eviction-order trace as the explicit automaton it specializes to,
 * and infer::checkEquivalence must certify the pairing.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "recap/common/rng.hh"
#include "recap/infer/equivalence.hh"
#include "recap/policy/factory.hh"
#include "recap/policy/permutation.hh"
#include "recap/policy/set_model.hh"

namespace
{

using namespace recap;
using policy::BlockId;
using policy::PermutationPolicy;
using policy::SetModel;

/**
 * Drives both policies through the same random 10k-access sequence
 * and asserts identical hit/miss outcomes and, once the sets are
 * full, identical eviction orders at every step.
 */
void
expectSameEvictionTrace(policy::PolicyPtr a, policy::PolicyPtr b,
                        unsigned ways, uint64_t seed)
{
    SetModel ma(std::move(a));
    SetModel mb(std::move(b));
    Rng rng(seed);
    const unsigned universe = ways + 3;
    for (int i = 0; i < 10'000; ++i) {
        const BlockId block = rng.nextBelow(universe);
        const bool hit_a = ma.access(block);
        const bool hit_b = mb.access(block);
        ASSERT_EQ(hit_a, hit_b)
            << "access " << i << " block " << block;
        if (ma.validCount() == ways) {
            ASSERT_EQ(ma.evictionOrder(), mb.evictionOrder())
                << "access " << i;
        }
    }
}

/** Exhaustive product-automaton certificate for the pairing. */
void
expectCertifiedEquivalent(const policy::ReplacementPolicy& a,
                          const policy::ReplacementPolicy& b)
{
    infer::EquivalenceConfig cfg;
    cfg.maxStates = 500'000;
    const auto verdict = infer::checkEquivalence(a, b, cfg);
    EXPECT_TRUE(verdict.equivalent);
    EXPECT_TRUE(verdict.exhausted);
}

TEST(PermutationDifferential, AnalyticLruMatchesExplicitAutomaton)
{
    for (unsigned k : {2u, 3u, 4u, 8u}) {
        expectSameEvictionTrace(
            PermutationPolicy::lru(k).clone(),
            policy::makePolicy("lru", k), k, 100 + k);
        expectCertifiedEquivalent(PermutationPolicy::lru(k),
                                  *policy::makePolicy("lru", k));
    }
}

TEST(PermutationDifferential, AnalyticFifoMatchesExplicitAutomaton)
{
    for (unsigned k : {2u, 3u, 4u, 8u}) {
        expectSameEvictionTrace(
            PermutationPolicy::fifo(k).clone(),
            policy::makePolicy("fifo", k), k, 200 + k);
        expectCertifiedEquivalent(PermutationPolicy::fifo(k),
                                  *policy::makePolicy("fifo", k));
    }
}

TEST(PermutationDifferential, AnalyticPlruMatchesExplicitAutomaton)
{
    for (unsigned k : {2u, 4u, 8u}) {
        expectSameEvictionTrace(
            PermutationPolicy::plru(k).clone(),
            policy::makePolicy("plru", k), k, 300 + k);
        expectCertifiedEquivalent(PermutationPolicy::plru(k),
                                  *policy::makePolicy("plru", k));
    }
}

TEST(PermutationDifferential, DerivedPolicyMatchesItsPrototype)
{
    // derive() reconstructs the permutation vectors of an arbitrary
    // permutation-policy automaton from behaviour alone; the result
    // must replay the prototype exactly.
    for (const std::string spec :
         {std::string("lru"), std::string("fifo"),
          std::string("plru")}) {
        for (unsigned k : {4u, 8u}) {
            if (!policy::specSupportsWays(spec, k))
                continue;
            const auto proto = policy::makePolicy(spec, k);
            const auto derived = PermutationPolicy::derive(*proto);
            ASSERT_TRUE(derived.has_value()) << spec << " k=" << k;
            expectSameEvictionTrace(derived->clone(),
                                    policy::makePolicy(spec, k), k,
                                    400 + k);
            expectCertifiedEquivalent(*derived,
                                      *policy::makePolicy(spec, k));
        }
    }
}

TEST(PermutationDifferential, DistinctPoliciesAreSeparated)
{
    // The oracle must not be vacuous: LRU vs FIFO are inequivalent,
    // and the returned counterexample must actually separate the two
    // explicit automata when replayed.
    for (unsigned k : {2u, 4u}) {
        const auto verdict = infer::checkEquivalence(
            PermutationPolicy::lru(k), PermutationPolicy::fifo(k));
        ASSERT_FALSE(verdict.equivalent) << "k=" << k;
        ASSERT_FALSE(verdict.counterexample.empty()) << "k=" << k;

        SetModel lru(policy::makePolicy("lru", k));
        SetModel fifo(policy::makePolicy("fifo", k));
        bool separated = false;
        for (BlockId b : verdict.counterexample)
            if (lru.access(b) != fifo.access(b))
                separated = true;
        EXPECT_TRUE(separated) << "k=" << k;
    }
}

} // namespace
