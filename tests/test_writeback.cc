/**
 * @file
 * Tests for store handling: write-allocate, dirty bits, and
 * writeback accounting, through both the single cache and the
 * hierarchy.
 */

#include <gtest/gtest.h>

#include "recap/cache/cache.hh"
#include "recap/cache/hierarchy.hh"
#include "recap/trace/trace.hh"

namespace
{

using namespace recap::cache;

Geometry
smallGeom()
{
    return Geometry{64, 4, 2};
}

TEST(Writeback, StoresMarkLinesDirty)
{
    Cache c(smallGeom(), "lru", "L1");
    c.access(0, true);
    EXPECT_TRUE(c.isDirty(0));
    c.access(64, false);
    EXPECT_FALSE(c.isDirty(64));
    EXPECT_EQ(c.stats().writes, 1u);
}

TEST(Writeback, HitUpgradesCleanToDirty)
{
    Cache c(smallGeom(), "lru", "L1");
    c.access(0, false);
    EXPECT_FALSE(c.isDirty(0));
    c.access(0, true);
    EXPECT_TRUE(c.isDirty(0));
}

TEST(Writeback, EvictingDirtyLineCountsWriteback)
{
    Cache c(smallGeom(), "lru", "L1");
    const Addr stride = 64 * 4;
    c.access(0, true);
    c.access(stride, false);
    EXPECT_EQ(c.stats().writebacks, 0u);
    const auto r = c.accessDetailed(2 * stride, false);
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Writeback, EvictingCleanLineDoesNot)
{
    Cache c(smallGeom(), "lru", "L1");
    const Addr stride = 64 * 4;
    c.access(0, false);
    c.access(stride, false);
    const auto r = c.accessDetailed(2 * stride, false);
    EXPECT_FALSE(r.writeback);
    EXPECT_EQ(c.stats().writebacks, 0u);
}

TEST(Writeback, ReinsertedLineStartsCleanAgain)
{
    Cache c(smallGeom(), "lru", "L1");
    const Addr stride = 64 * 4;
    c.access(0, true);
    c.access(stride, false);
    c.access(2 * stride, false); // evicts dirty line 0
    c.access(0, false);          // re-fill clean
    EXPECT_FALSE(c.isDirty(0));
}

TEST(Writeback, FlushWritesBackAllDirtyLines)
{
    Cache c(smallGeom(), "lru", "L1");
    c.access(0, true);
    c.access(64, true);
    c.access(128, false);
    c.flush();
    EXPECT_EQ(c.stats().writebacks, 2u);
}

TEST(Writeback, InvalidateWritesBackDirtyLine)
{
    Cache c(smallGeom(), "lru", "L1");
    c.access(0, true);
    c.invalidate(0);
    EXPECT_EQ(c.stats().writebacks, 1u);
    c.access(64, false);
    c.invalidate(64);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Writeback, HierarchyPropagatesWrites)
{
    Hierarchy h(100);
    h.addLevel(Cache(Geometry{64, 2, 2}, "lru", "L1"), 4);
    h.addLevel(Cache(Geometry{64, 8, 4}, "lru", "L2"), 12);
    h.access(0, true);
    EXPECT_TRUE(h.level(0).cache.isDirty(0));
    EXPECT_TRUE(h.level(1).cache.isDirty(0));
    EXPECT_EQ(h.level(0).cache.stats().writes, 1u);
}

TEST(Writeback, WithWritesMarksRequestedFraction)
{
    recap::trace::Trace t(10000, 0);
    const auto refs = recap::trace::withWrites(t, 0.25, 7);
    ASSERT_EQ(refs.size(), t.size());
    size_t writes = 0;
    for (const auto& ref : refs)
        writes += ref.write;
    EXPECT_NEAR(static_cast<double>(writes) / refs.size(), 0.25,
                0.02);
    // Deterministic under the seed.
    EXPECT_EQ(recap::trace::withWrites(t, 0.25, 7), refs);
    EXPECT_NE(recap::trace::withWrites(t, 0.25, 8), refs);
}

TEST(Writeback, WriteHeavyTraceProducesWritebacks)
{
    Cache c(smallGeom(), "lru", "L1");
    // Stream of stores over four times the cache: every eviction is
    // a writeback.
    for (Addr a = 0; a < 4 * 512; a += 64)
        c.access(a, true);
    EXPECT_EQ(c.stats().writebacks, c.stats().evictions);
    EXPECT_GT(c.stats().writebacks, 0u);
}

} // namespace
