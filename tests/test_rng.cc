/**
 * @file
 * Tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <vector>

#include "recap/common/error.hh"
#include "recap/common/rng.hh"
#include "recap/common/stats.hh"

namespace
{

using namespace recap;

TEST(Rng, SameSeedSameStream)
{
    Rng a(12345);
    Rng b(12345);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, CopyForksStream)
{
    Rng a(7);
    a.next();
    Rng b = a;
    EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(99);
    for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 2000; ++i)
            ASSERT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowRejectsZero)
{
    Rng rng(1);
    EXPECT_THROW(rng.nextBelow(0), UsageError);
}

TEST(Rng, NextBelowCoversAllValues)
{
    Rng rng(5);
    std::vector<bool> seen(7, false);
    for (int i = 0; i < 1000; ++i)
        seen[rng.nextBelow(7)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, NextBelowIsRoughlyUniform)
{
    Rng rng(31);
    constexpr int kBuckets = 8;
    constexpr int kSamples = 80000;
    std::vector<int> counts(kBuckets, 0);
    for (int i = 0; i < kSamples; ++i)
        ++counts[rng.nextBelow(kBuckets)];
    for (int c : counts) {
        EXPECT_GT(c, kSamples / kBuckets * 0.9);
        EXPECT_LT(c, kSamples / kBuckets * 1.1);
    }
}

TEST(Rng, NextInRangeInclusiveBounds)
{
    Rng rng(17);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const uint64_t v = rng.nextInRange(10, 13);
        ASSERT_GE(v, 10u);
        ASSERT_LE(v, 13u);
        saw_lo |= v == 10;
        saw_hi |= v == 13;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
    EXPECT_EQ(rng.nextInRange(42, 42), 42u);
    EXPECT_THROW(rng.nextInRange(2, 1), UsageError);
}

TEST(Rng, NextDoubleInHalfOpenUnitInterval)
{
    Rng rng(23);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        stat.add(d);
    }
    EXPECT_NEAR(stat.mean(), 0.5, 0.02);
}

TEST(Rng, NextBoolEdgesAndProbability)
{
    Rng rng(3);
    EXPECT_FALSE(rng.nextBool(0.0));
    EXPECT_TRUE(rng.nextBool(1.0));
    EXPECT_FALSE(rng.nextBool(-1.0));
    EXPECT_TRUE(rng.nextBool(2.0));
    int yes = 0;
    for (int i = 0; i < 20000; ++i)
        if (rng.nextBool(0.3))
            ++yes;
    EXPECT_NEAR(yes / 20000.0, 0.3, 0.02);
}

TEST(Rng, GeometricHasRequestedMean)
{
    Rng rng(77);
    RunningStat stat;
    for (int i = 0; i < 50000; ++i)
        stat.add(static_cast<double>(rng.nextGeometric(5.0)));
    EXPECT_NEAR(stat.mean(), 5.0, 0.25);
    EXPECT_THROW(rng.nextGeometric(0.0), UsageError);
}

TEST(Rng, ShuffleIsAPermutation)
{
    Rng rng(8);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    auto sorted = v;
    rng.shuffle(v);
    auto resorted = v;
    std::sort(resorted.begin(), resorted.end());
    EXPECT_EQ(resorted, sorted);
}

TEST(Rng, ShuffleActuallyShuffles)
{
    Rng rng(9);
    std::vector<int> v(64);
    for (int i = 0; i < 64; ++i)
        v[i] = i;
    const auto original = v;
    rng.shuffle(v);
    EXPECT_NE(v, original);
}

} // namespace
