/**
 * @file
 * Tests for the LearnedPolicy adapter: ground-truth automata wrapped
 * as replacement policies must track the original policy in lockstep
 * (hit/miss differential over >= 10k accesses, for every catalog
 * policy), and the adapter must honour the full ReplacementPolicy
 * contract (clone, reset, stateKey).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "recap/common/error.hh"
#include "recap/common/rng.hh"
#include "recap/learn/learned_policy.hh"
#include "recap/learn/mealy.hh"
#include "recap/policy/factory.hh"
#include "recap/policy/set_model.hh"

namespace
{

using namespace recap;
using learn::LearnedPolicy;
using learn::SymbolSemantics;

LearnedPolicy
adapterOf(const std::string& spec, unsigned ways)
{
    const auto policy = policy::makePolicy(spec, ways);
    return LearnedPolicy(ways,
                         learn::automatonOfPolicy(*policy, ways + 1),
                         SymbolSemantics::kConcreteBlocks,
                         "Learned " + policy->name());
}

/**
 * Drives a SetModel over the learned policy and one over the truth
 * with the same random block stream (universe ways + 3, periodic
 * flushes) and counts hit/miss disagreements.
 */
unsigned
lockstepMismatches(const policy::ReplacementPolicy& model,
                   const std::string& truthSpec, unsigned ways,
                   unsigned accesses, uint64_t seed = 123)
{
    policy::SetModel learned(model.clone());
    policy::SetModel truth(policy::makePolicy(truthSpec, ways));
    Rng rng(seed);
    unsigned mismatches = 0;
    for (unsigned i = 0; i < accesses; ++i) {
        if (i % 256 == 255) {
            learned.flush();
            truth.flush();
        }
        const auto block =
            static_cast<policy::BlockId>(rng.nextBelow(ways + 3) + 1);
        if (learned.access(block) != truth.access(block))
            ++mismatches;
    }
    return mismatches;
}

TEST(LearnedPolicy, LockstepAgainstEveryCatalogPolicyAtTwoWays)
{
    for (const char* spec :
         {"lru", "fifo", "plru", "bitplru", "nru", "lip", "bip",
          "srrip", "brrip", "slru:1", "qlru:H1,M1,R0,U2",
          "qlru:H1,M3,R0,U2"}) {
        const auto model = adapterOf(spec, 2);
        EXPECT_EQ(lockstepMismatches(model, spec, 2, 10000), 0u)
            << spec;
    }
}

TEST(LearnedPolicy, LockstepAtFourWays)
{
    for (const char* spec : {"lru", "fifo", "plru", "lip", "slru:1",
                             "nru", "bitplru"}) {
        const auto model = adapterOf(spec, 4);
        EXPECT_EQ(lockstepMismatches(model, spec, 4, 10000), 0u)
            << spec;
    }
}

TEST(LearnedPolicy, RoleSemanticsTracksLruAtEightWays)
{
    // The role automaton of LRU: ways + 1 recency-depth states.
    const unsigned ways = 8;
    learn::MealyMachine m(ways + 1, ways + 1);
    for (unsigned depth = 0; depth <= ways; ++depth) {
        for (unsigned s = 0; s <= ways; ++s) {
            if (s < depth) {
                // Rank s re-accesses a seen block: hit, same depth.
                m.setTransition(depth, s, depth, true);
            } else {
                // Fresh (or a rank deeper than anything seen, which
                // concretizes to a fresh block): miss, deeper.
                m.setTransition(depth, s,
                                std::min(depth + 1, ways), false);
            }
        }
    }
    const LearnedPolicy model(ways, m, SymbolSemantics::kRecencyRoles,
                              "Learned LRU roles");
    EXPECT_EQ(lockstepMismatches(model, "lru", ways, 10000), 0u);
}

TEST(LearnedPolicy, CloneCarriesStateForward)
{
    const auto base = adapterOf("lru", 2);
    policy::SetModel a(base.clone());
    policy::SetModel b(policy::makePolicy("lru", 2));
    for (const policy::BlockId block : {1, 2, 3, 1})
        EXPECT_EQ(a.access(block), b.access(block));
    // Mid-stream clones must continue identically.
    policy::SetModel a2(a);
    policy::SetModel b2(b);
    for (const policy::BlockId block : {2, 4, 1, 2, 3, 4, 1}) {
        EXPECT_EQ(a.access(block), b.access(block));
        EXPECT_EQ(a2.access(block), b2.access(block));
    }
}

TEST(LearnedPolicy, ResetRestoresTheInitialState)
{
    auto model = adapterOf("plru", 2);
    const std::string fresh = model.stateKey();
    model.fill(0);
    model.touch(0);
    model.fill(1);
    EXPECT_NE(model.stateKey(), fresh);
    model.reset();
    EXPECT_EQ(model.stateKey(), fresh);
}

TEST(LearnedPolicy, ReportsNameAndMachine)
{
    const auto model = adapterOf("lru", 2);
    EXPECT_EQ(model.name(), "Learned LRU");
    EXPECT_EQ(model.semantics(), SymbolSemantics::kConcreteBlocks);
    EXPECT_GT(model.machine().numStates(), 0u);
    EXPECT_EQ(model.machine().alphabet(), 3u);
}

TEST(LearnedPolicy, RequiresLargeEnoughAlphabet)
{
    const auto lru = policy::makePolicy("lru", 4);
    auto machine = learn::automatonOfPolicy(*lru, 4); // ways, not +1
    EXPECT_THROW(LearnedPolicy(4, std::move(machine),
                               SymbolSemantics::kConcreteBlocks),
                 UsageError);
}

} // namespace
