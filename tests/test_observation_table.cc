/**
 * @file
 * Observation-table invariant tests: fill/closedness/consistency
 * bookkeeping against a known machine, the prefix-closure discipline,
 * and the L* invariants (closed + consistent after every refinement,
 * bounded suffix growth) checked on a real learning run.
 */

#include <gtest/gtest.h>

#include "recap/common/error.hh"
#include "recap/learn/lstar.hh"
#include "recap/learn/observation_table.hh"
#include "recap/learn/teacher.hh"
#include "recap/query/oracle.hh"

namespace
{

using namespace recap;
using learn::MealyMachine;
using learn::ObservationTable;
using learn::Word;

/** s0 --0/miss--> s1, s0 --1/miss--> s0, s1 --0/hit--> s1,
 *  s1 --1/miss--> s0 (distinguishable by single-symbol suffixes). */
MealyMachine
sul()
{
    MealyMachine m(2, 2);
    m.setTransition(0, 0, 1, false);
    m.setTransition(0, 1, 0, false);
    m.setTransition(1, 0, 1, true);
    m.setTransition(1, 1, 0, false);
    return m;
}

/** Answers every missing word from @p machine until filled. */
void
fillFrom(ObservationTable& table, const MealyMachine& machine)
{
    while (true) {
        const auto missing = table.missingWords();
        if (missing.empty())
            break;
        for (const Word& w : missing) {
            const auto rec = table.store().record(w, machine.run(w));
            ASSERT_TRUE(rec.consistent);
        }
    }
}

TEST(ObservationTable, StartsWithEpsilonAndSingleSymbolSuffixes)
{
    const ObservationTable table(3);
    ASSERT_EQ(table.prefixes().size(), 1u);
    EXPECT_TRUE(table.prefixes()[0].empty());
    ASSERT_EQ(table.suffixes().size(), 3u);
    for (unsigned a = 0; a < 3; ++a)
        EXPECT_EQ(table.suffixes()[a], Word{a});
    EXPECT_FALSE(table.filled());
    EXPECT_FALSE(table.missingWords().empty());
}

TEST(ObservationTable, RejectsEmptyAlphabet)
{
    EXPECT_THROW(ObservationTable(0), UsageError);
}

TEST(ObservationTable, FillCloseAndRebuildTheMachine)
{
    ObservationTable table(2);
    fillFrom(table, sul());
    EXPECT_TRUE(table.filled());

    // {ε} alone is not closed: row(0) reaches the second state.
    Word witness;
    ASSERT_FALSE(table.isClosed(&witness));
    EXPECT_EQ(witness, Word{0});
    EXPECT_TRUE(table.promote(witness));
    fillFrom(table, sul());
    EXPECT_TRUE(table.isClosed());
    EXPECT_TRUE(table.isConsistent());

    std::vector<Word> accessWords;
    const auto hypothesis = table.buildHypothesis(&accessWords);
    EXPECT_EQ(hypothesis.numStates(), 2u);
    ASSERT_EQ(accessWords.size(), 2u);
    EXPECT_TRUE(accessWords[0].empty()); // state 0 = row(ε)
    EXPECT_TRUE(hypothesis.isomorphicTo(sul()));
}

TEST(ObservationTable, RowKeysSeparateDistinctStates)
{
    ObservationTable table(2);
    fillFrom(table, sul());
    table.promote({0});
    fillFrom(table, sul());
    EXPECT_NE(table.rowKey({}), table.rowKey({0}));
    EXPECT_EQ(table.rowKey({}), table.rowKey({1}));
    EXPECT_EQ(table.rowKey({0}), table.rowKey({0, 0}));
}

TEST(ObservationTable, PromoteEnforcesPrefixClosure)
{
    ObservationTable table(2);
    // {0, 1} does not extend a current S prefix by one symbol.
    EXPECT_THROW(table.promote({0, 1}), UsageError);
    EXPECT_TRUE(table.promote({0}));
    EXPECT_FALSE(table.promote({0})); // idempotent no-op
    EXPECT_TRUE(table.promote({0, 1}));
}

TEST(ObservationTable, AddSuffixDeduplicates)
{
    ObservationTable table(2);
    EXPECT_FALSE(table.addSuffix({0})); // single symbols preseeded
    EXPECT_TRUE(table.addSuffix({0, 1}));
    EXPECT_FALSE(table.addSuffix({0, 1}));
    EXPECT_EQ(table.suffixes().size(), 3u);
    EXPECT_THROW(table.addSuffix({}), UsageError);
}

TEST(ObservationTable, AddingSuffixesReopensFilling)
{
    ObservationTable table(2);
    fillFrom(table, sul());
    ASSERT_TRUE(table.filled());
    table.addSuffix({1, 0});
    EXPECT_FALSE(table.filled());
    fillFrom(table, sul());
    EXPECT_TRUE(table.filled());
}

TEST(ObservationTable, BuildHypothesisRequiresFilledTable)
{
    const ObservationTable table(2);
    EXPECT_THROW(table.buildHypothesis(), UsageError);
}

TEST(ObservationTable, LearnerMaintainsInvariantsAndSuffixBound)
{
    // After a real learning session the final table must be filled,
    // closed, and consistent, with |E| bounded by the preseeded
    // single-symbol suffixes plus one suffix per refinement (the
    // Rivest–Schapire discipline adds at most one suffix each).
    query::PolicyOracle oracle("plru", 4);
    learn::OracleTeacher teacher(oracle);
    learn::LStarLearner learner(teacher);
    const auto result = learner.run();
    ASSERT_EQ(result.outcome, learn::LearnOutcome::kLearned);

    const ObservationTable& table = learner.table();
    EXPECT_TRUE(table.filled());
    EXPECT_TRUE(table.isClosed());
    EXPECT_TRUE(table.isConsistent());
    EXPECT_EQ(table.suffixes().size(), result.suffixCount);
    EXPECT_LE(result.suffixCount,
              table.alphabet() + result.refinements);
    EXPECT_GE(table.prefixes().size(),
              static_cast<std::size_t>(result.states));
}

} // namespace
