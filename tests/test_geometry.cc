/**
 * @file
 * Tests for cache geometry and address slicing.
 */

#include <gtest/gtest.h>

#include "recap/cache/geometry.hh"
#include "recap/common/error.hh"

namespace
{

using namespace recap::cache;
using recap::UsageError;

TEST(Geometry, ValidateAcceptsTypicalConfigs)
{
    Geometry g{64, 64, 8};
    EXPECT_NO_THROW(g.validate());
    EXPECT_EQ(g.sizeBytes(), 32u * 1024u);
}

TEST(Geometry, ValidateRejectsBadConfigs)
{
    EXPECT_THROW((Geometry{63, 64, 8}).validate(), UsageError);
    EXPECT_THROW((Geometry{64, 63, 8}).validate(), UsageError);
    EXPECT_THROW((Geometry{64, 64, 0}).validate(), UsageError);
    EXPECT_THROW((Geometry{0, 64, 8}).validate(), UsageError);
}

TEST(Geometry, AddressSlicing)
{
    Geometry g{64, 64, 8};
    // Address layout: [tag | 6 set bits | 6 offset bits].
    const Addr addr = (uint64_t{0xABC} << 12) | (13u << 6) | 21u;
    EXPECT_EQ(g.blockNumber(addr), (uint64_t{0xABC} << 6) | 13u);
    EXPECT_EQ(g.setIndex(addr), 13u);
    EXPECT_EQ(g.tag(addr), 0xABCu);
    EXPECT_EQ(g.blockBase(addr), addr - 21u);
}

TEST(Geometry, SetIndexWraps)
{
    Geometry g{64, 64, 8};
    const Addr a = 0;
    const Addr b = 64ull * 64; // one full set stride
    EXPECT_EQ(g.setIndex(a), g.setIndex(b));
    EXPECT_NE(g.tag(a), g.tag(b));
    EXPECT_NE(g.setIndex(a), g.setIndex(a + 64));
}

TEST(Geometry, FromCapacityDerivesSets)
{
    const auto g = Geometry::fromCapacity(32 * 1024, 8, 64);
    EXPECT_EQ(g.numSets, 64u);
    EXPECT_EQ(g.ways, 8u);
    EXPECT_EQ(g.lineSize, 64u);
    EXPECT_EQ(g.sizeBytes(), 32u * 1024u);

    // The 24-way 6 MiB Wolfdale L2.
    const auto l2 = Geometry::fromCapacity(6 * 1024 * 1024, 24, 64);
    EXPECT_EQ(l2.numSets, 4096u);
}

TEST(Geometry, FromCapacityRejectsImpossible)
{
    // 36 KiB over 8 ways of 64 B lines: 72 sets, not a power of two.
    EXPECT_THROW(Geometry::fromCapacity(36 * 1024, 8, 64), UsageError);
    // Capacity not divisible by ways * lineSize at all.
    EXPECT_THROW(Geometry::fromCapacity(4 * 1024 + 64, 8, 64),
                 UsageError);
    EXPECT_THROW(Geometry::fromCapacity(0, 8, 64), UsageError);
    // Non-power-of-two ways with a power-of-two set count is fine.
    EXPECT_NO_THROW(Geometry::fromCapacity(3 * 1024, 3, 64));
}

TEST(Geometry, Describe)
{
    Geometry g{64, 64, 8};
    EXPECT_EQ(g.describe(), "32 KiB, 8-way, 64 B lines");
}

} // namespace
