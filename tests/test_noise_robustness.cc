/**
 * @file
 * Graceful-degradation property tests: on a hostile machine (every
 * fault source enabled) the robust pipeline must recover the correct
 * policy or report Undetermined — never return a wrong verdict — and
 * everything (fault injection, adaptive voting, verdicts, confidences,
 * experiment counts) must be bit-identical under a pinned seed.
 */

#include <gtest/gtest.h>

#include <string>

#include "recap/hw/catalog.hh"
#include "recap/hw/faults.hh"
#include "recap/hw/machine.hh"
#include "recap/infer/measurement.hh"
#include "recap/infer/pipeline.hh"

namespace
{

using namespace recap;
using infer::InferenceOptions;
using infer::LevelOutcome;
using infer::LevelReport;

hw::MachineSpec
singleLevelSpec(const std::string& policy, unsigned ways)
{
    hw::MachineSpec spec;
    spec.name = "rig-" + policy;
    spec.description = "single-level robustness rig";
    hw::CacheLevelSpec lvl;
    lvl.name = "L1";
    lvl.capacityBytes = uint64_t{64} * 64 * ways;
    lvl.ways = ways;
    lvl.hitLatency = 4;
    lvl.policySpec = policy;
    spec.levels = {lvl};
    spec.memoryLatency = 100;
    return spec;
}

InferenceOptions
robustOptions()
{
    InferenceOptions opts;
    opts.robust.vote.enabled = true;
    opts.robust.vote.initialRepeats = 3;
    opts.robust.vote.escalationStep = 4;
    opts.robust.vote.maxRepeats = 31;
    opts.robust.vote.settleMargin = 3;
    opts.robust.calibrateLatency = true;
    opts.agreementRounds = 6;
    return opts;
}

/** One robust single-level inference on a faulted rig. */
LevelReport
inferRig(const std::string& policy, const hw::FaultConfig& faults,
         uint64_t seed, const InferenceOptions& opts)
{
    const auto spec = singleLevelSpec(policy, 4);
    hw::Machine machine(spec, seed, faults);
    infer::MeasurementContext ctx(machine);
    if (opts.robust.calibrateLatency)
        ctx.calibrateLatencyFence();
    infer::DiscoveredGeometry geom;
    geom.lineSize = 64;
    geom.levels.push_back({64, 64, 4});
    return infer::inferLevelAt(ctx, geom, 0,
                               uint64_t{1} << 32, opts);
}

// The headline acceptance property: with EVERY fault source enabled
// at calibrated hostile intensities, inference over LRU, FIFO and
// PLRU rigs either names the true policy or degrades to Undetermined.
// A decided-but-wrong verdict is the one forbidden outcome.
TEST(NoiseRobustness, HostileMachineNeverYieldsAWrongVerdict)
{
    const std::pair<const char*, const char*> rigs[] = {
        {"lru", "LRU"}, {"fifo", "FIFO"}, {"plru", "PLRU"}};
    const InferenceOptions opts = robustOptions();
    unsigned decided = 0;
    unsigned undetermined = 0;
    for (const double intensity : {1.0, 2.0}) {
        const auto faults = hw::FaultConfig::hostile(intensity);
        for (const auto& [spec, truth] : rigs) {
            for (uint64_t seed = 400; seed < 404; ++seed) {
                const LevelReport report =
                    inferRig(spec, faults, seed, opts);
                if (report.outcome == LevelOutcome::kDecided) {
                    ++decided;
                    EXPECT_EQ(report.verdict, truth)
                        << spec << " seed " << seed
                        << " intensity " << intensity << " (conf "
                        << report.confidence << ", agreement "
                        << report.agreement << ")";
                } else {
                    ++undetermined;
                    EXPECT_EQ(report.verdict, "undetermined");
                    EXPECT_FALSE(report.diagnostics.empty());
                }
            }
        }
    }
    // The rig is hostile but not hopeless: robust measurement must
    // still decide most of the time.
    EXPECT_GT(decided, undetermined);
}

TEST(NoiseRobustness, CleanMachineStaysDecidedWithFullConfidence)
{
    const InferenceOptions opts = robustOptions();
    const std::pair<const char*, const char*> rigs[] = {
        {"lru", "LRU"}, {"fifo", "FIFO"}, {"plru", "PLRU"}};
    for (const auto& [spec, truth] : rigs) {
        const LevelReport report =
            inferRig(spec, hw::FaultConfig{}, 1, opts);
        EXPECT_EQ(report.outcome, LevelOutcome::kDecided) << spec;
        EXPECT_EQ(report.verdict, truth);
        EXPECT_DOUBLE_EQ(report.confidence, 1.0);
        EXPECT_DOUBLE_EQ(report.agreement, 1.0);
        EXPECT_TRUE(report.diagnostics.empty());
    }
}

// Seed determinism of the whole robust stack: verdicts, confidences,
// diagnostics and experiment/load counts reproduce bit for bit.
TEST(NoiseRobustness, RobustInferenceIsSeedDeterministic)
{
    const auto faults = hw::FaultConfig::hostile(1.5);
    const InferenceOptions opts = robustOptions();
    for (const char* spec : {"lru", "plru"}) {
        const LevelReport a = inferRig(spec, faults, 777, opts);
        const LevelReport b = inferRig(spec, faults, 777, opts);
        EXPECT_EQ(a.verdict, b.verdict);
        EXPECT_EQ(a.outcome, b.outcome);
        EXPECT_EQ(a.diagnostics, b.diagnostics);
        EXPECT_DOUBLE_EQ(a.confidence, b.confidence);
        EXPECT_DOUBLE_EQ(a.agreement, b.agreement);
        EXPECT_EQ(a.loadsUsed, b.loadsUsed);
    }
}

TEST(NoiseRobustness, DifferentSeedsMayDifferButNeverLie)
{
    const auto faults = hw::FaultConfig::hostile(2.0);
    const InferenceOptions opts = robustOptions();
    for (uint64_t seed : {11u, 12u, 13u}) {
        const LevelReport report = inferRig("lru", faults, seed, opts);
        if (report.outcome == LevelOutcome::kDecided) {
            EXPECT_EQ(report.verdict, "LRU") << "seed " << seed;
        }
    }
}

// The full pipeline front door: inferMachine with robust options on a
// hostile catalog machine reports per-level outcomes that are correct
// or explicitly undetermined.
TEST(NoiseRobustness, FullPipelineOnHostileCatalogMachine)
{
    auto spec =
        hw::reducedSpec(hw::catalogMachine("core2-e6300"), 256);
    hw::Machine machine(spec, 5, hw::FaultConfig::hostile(0.5));
    InferenceOptions opts = robustOptions();
    opts.adaptive.windowSets = 32;
    const auto report = infer::inferMachine(machine, opts);
    ASSERT_EQ(report.levels.size(), 2u);
    for (const auto& lvl : report.levels) {
        if (lvl.outcome == LevelOutcome::kDecided)
            EXPECT_EQ(lvl.verdict, "PLRU") << lvl.levelName;
        else
            EXPECT_FALSE(lvl.diagnostics.empty());
    }
}

// A genuinely adaptive level must still be reported as adaptive with
// robust gating on: the trusted-claim path (both constituents
// identified, agreement above the gate) stays open.
TEST(NoiseRobustness, RobustGateKeepsGenuineAdaptivityDecided)
{
    auto spec =
        hw::reducedSpec(hw::catalogMachine("ivybridge-i5"), 256);
    hw::Machine machine(spec);
    InferenceOptions opts = robustOptions();
    opts.adaptive.windowSets = 64;
    const auto report = infer::inferMachine(machine, opts);
    ASSERT_EQ(report.levels.size(), 3u);
    EXPECT_TRUE(report.levels[2].adaptive);
    EXPECT_NE(report.levels[2].verdict.find("adaptive"),
              std::string::npos);
    EXPECT_DOUBLE_EQ(report.levels[2].agreement, 1.0);
}

// Cross-set quorum: a split across probed sets must surface as
// Undetermined with per-set diagnostics, and a unanimous quorum stays
// decided. On a clean machine the quorum is trivially unanimous.
TEST(NoiseRobustness, QuorumOnACleanMachineIsUnanimous)
{
    const auto spec = singleLevelSpec("lru", 4);
    hw::Machine machine(spec, 1);
    InferenceOptions opts = robustOptions();
    opts.robust.quorumSets = 3;
    opts.adaptive.windowSets = 16;
    // Run through inferMachine to exercise the quorum loop.
    const auto report = infer::inferMachine(machine, opts);
    ASSERT_EQ(report.levels.size(), 1u);
    EXPECT_EQ(report.levels[0].outcome, LevelOutcome::kDecided);
    EXPECT_EQ(report.levels[0].verdict, "LRU");
    EXPECT_NE(report.levels[0].diagnostics.find("cross-set quorum"),
              std::string::npos)
        << report.levels[0].diagnostics;
}

} // namespace
