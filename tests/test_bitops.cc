/**
 * @file
 * Tests for the bit-manipulation helpers.
 */

#include <gtest/gtest.h>

#include "recap/common/bitops.hh"

namespace
{

using namespace recap;

TEST(BitOps, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(65));
    EXPECT_TRUE(isPowerOfTwo(uint64_t{1} << 63));
    EXPECT_FALSE(isPowerOfTwo((uint64_t{1} << 63) + 1));
}

TEST(BitOps, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(4), 2u);
    EXPECT_EQ(log2Floor(64), 6u);
    EXPECT_EQ(log2Floor(65), 6u);
    EXPECT_EQ(log2Floor(uint64_t{1} << 40), 40u);
}

TEST(BitOps, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(4), 2u);
    EXPECT_EQ(log2Ceil(5), 3u);
    EXPECT_EQ(log2Ceil(1024), 10u);
    EXPECT_EQ(log2Ceil(1025), 11u);
}

TEST(BitOps, LogsAgreeOnPowersOfTwo)
{
    for (unsigned shift = 0; shift < 63; ++shift) {
        const uint64_t x = uint64_t{1} << shift;
        EXPECT_EQ(log2Floor(x), shift);
        EXPECT_EQ(log2Ceil(x), shift);
    }
}

TEST(BitOps, AlignDownUp)
{
    EXPECT_EQ(alignDown(0, 64), 0u);
    EXPECT_EQ(alignDown(63, 64), 0u);
    EXPECT_EQ(alignDown(64, 64), 64u);
    EXPECT_EQ(alignDown(100, 64), 64u);
    EXPECT_EQ(alignUp(0, 64), 0u);
    EXPECT_EQ(alignUp(1, 64), 64u);
    EXPECT_EQ(alignUp(64, 64), 64u);
    EXPECT_EQ(alignUp(65, 64), 128u);
}

TEST(BitOps, BitField)
{
    EXPECT_EQ(bitField(0xdeadbeef, 0, 8), 0xefu);
    EXPECT_EQ(bitField(0xdeadbeef, 8, 8), 0xbeu);
    EXPECT_EQ(bitField(0xdeadbeef, 16, 16), 0xdeadu);
    EXPECT_EQ(bitField(~uint64_t{0}, 0, 64), ~uint64_t{0});
}

TEST(BitOps, PopCount)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(1), 1u);
    EXPECT_EQ(popCount(0xff), 8u);
    EXPECT_EQ(popCount(~uint64_t{0}), 64u);
    EXPECT_EQ(popCount(0xa5a5), 8u);
}

} // namespace
