/**
 * @file
 * Tests for the text-table printer and formatting helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "recap/common/error.hh"
#include "recap/common/table.hh"

namespace
{

using namespace recap;

TEST(TextTable, AlignedOutputContainsCells)
{
    TextTable t({"policy", "miss ratio"});
    t.addRow({"LRU", "0.2310"});
    t.addRow({"FIFO", "0.2544"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("policy"), std::string::npos);
    EXPECT_NE(out.find("LRU"), std::string::npos);
    EXPECT_NE(out.find("0.2544"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, ColumnsAreAligned)
{
    TextTable t({"a", "b"});
    t.addRow({"xxxxxxxx", "1"});
    t.addRow({"y", "2"});
    std::ostringstream oss;
    t.print(oss);
    std::istringstream iss(oss.str());
    std::string line;
    std::vector<size_t> lengths;
    while (std::getline(iss, line))
        lengths.push_back(line.size());
    ASSERT_EQ(lengths.size(), 4u);
    EXPECT_EQ(lengths[0], lengths[2]);
    EXPECT_EQ(lengths[2], lengths[3]);
}

TEST(TextTable, RejectsMismatchedRow)
{
    TextTable t({"one", "two"});
    EXPECT_THROW(t.addRow({"only-one"}), UsageError);
    EXPECT_THROW(TextTable({}), UsageError);
}

TEST(TextTable, CsvEscapesSpecials)
{
    TextTable t({"name", "note"});
    t.addRow({"plain", "hello"});
    t.addRow({"with,comma", "say \"hi\""});
    std::ostringstream oss;
    t.printCsv(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("name,note"), std::string::npos);
    EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Formatting, FormatDouble)
{
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(formatDouble(1.0, 4), "1.0000");
    EXPECT_EQ(formatDouble(-0.5, 1), "-0.5");
}

TEST(Formatting, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.1234), "12.34%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

TEST(Formatting, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(1024), "1 KiB");
    EXPECT_EQ(formatBytes(32 * 1024), "32 KiB");
    EXPECT_EQ(formatBytes(6 * 1024 * 1024), "6 MiB");
    EXPECT_EQ(formatBytes(1536), "1536 B"); // not an exact KiB
}

} // namespace
