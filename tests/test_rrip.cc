/**
 * @file
 * Tests for the RRIP policy family (SRRIP / BRRIP).
 */

#include <gtest/gtest.h>

#include "recap/common/error.hh"
#include "recap/policy/rrip.hh"
#include "recap/policy/set_model.hh"

namespace
{

using namespace recap::policy;
using recap::UsageError;

TEST(Srrip, ColdStateIsAllDistant)
{
    SrripPolicy p(4, 2);
    for (unsigned r : p.rrpvs())
        EXPECT_EQ(r, 3u);
    EXPECT_EQ(p.victim(), 0u);
    EXPECT_EQ(p.maxRrpv(), 3u);
}

TEST(Srrip, HitPromotesToZero)
{
    SrripPolicy p(4, 2);
    p.fill(1);
    EXPECT_EQ(p.rrpvs()[1], 2u); // long re-reference on insertion
    p.touch(1);
    EXPECT_EQ(p.rrpvs()[1], 0u); // hit-priority promotion
}

TEST(Srrip, AgingExposesVictim)
{
    SrripPolicy p(2, 2);
    p.fill(0);
    p.touch(0); // rrpv 0
    p.fill(1);  // rrpv 2
    // No line is at 3: victim() must age functionally and pick the
    // line that reaches 3 first (way 1, the more distant one).
    EXPECT_EQ(p.victim(), 1u);
    // And fill() must commit compatible aging.
    p.fill(1);
    EXPECT_EQ(p.rrpvs()[0], 1u); // aged by the same delta
}

TEST(Srrip, VictimPureUnderAging)
{
    SrripPolicy p(4, 2);
    for (unsigned w = 0; w < 4; ++w) {
        p.fill(w);
        p.touch(w);
    }
    const std::string key = p.stateKey();
    (void)p.victim();
    EXPECT_EQ(p.stateKey(), key);
}

TEST(Srrip, OneBitVariant)
{
    SrripPolicy p(4, 1);
    EXPECT_EQ(p.maxRrpv(), 1u);
    p.fill(2);
    EXPECT_EQ(p.rrpvs()[2], 0u); // max-1 == 0
    EXPECT_EQ(p.victim(), 0u);
}

TEST(Srrip, RejectsBadBitWidths)
{
    EXPECT_THROW(SrripPolicy(4, 0), UsageError);
    EXPECT_THROW(SrripPolicy(4, 9), UsageError);
}

TEST(Brrip, MostInsertionsAreDistant)
{
    BrripPolicy p(4, 2, 4); // 1-in-4 long insertions
    p.fill(0);              // fill #0: long (max-1)
    EXPECT_EQ(p.rrpvs()[0], 2u);
    p.fill(1); // distant
    EXPECT_EQ(p.rrpvs()[1], 3u);
    p.fill(2); // distant
    EXPECT_EQ(p.rrpvs()[2], 3u);
    p.fill(3); // distant
    EXPECT_EQ(p.rrpvs()[3], 3u);
    p.fill(0); // fill #4: long again
    EXPECT_EQ(p.rrpvs()[0], 2u);
}

TEST(Brrip, ResetRestartsThrottle)
{
    BrripPolicy p(4, 2, 8);
    p.fill(0);
    p.fill(1);
    p.reset();
    p.fill(2);
    EXPECT_EQ(p.rrpvs()[2], 2u); // first fill after reset is long
}

TEST(Brrip, MoreThrashResistantThanSrrip)
{
    const unsigned k = 8;
    SetModel srrip(std::make_unique<SrripPolicy>(k, 2));
    SetModel brrip(std::make_unique<BrripPolicy>(k, 2, 32));
    unsigned srrip_misses = 0;
    unsigned brrip_misses = 0;
    // Cyclic sweep at twice the associativity: a scan that defeats
    // reuse-oblivious insertion.
    for (int round = 0; round < 40; ++round) {
        for (unsigned b = 0; b < 2 * k; ++b) {
            if (!srrip.access(b))
                ++srrip_misses;
            if (!brrip.access(b))
                ++brrip_misses;
        }
    }
    EXPECT_LT(brrip_misses, srrip_misses);
}

TEST(Rrip, CloneAndResetBehave)
{
    BrripPolicy p(4, 2, 16);
    p.fill(0);
    p.touch(0);
    auto q = p.clone();
    EXPECT_EQ(q->stateKey(), p.stateKey());
    q->fill(q->victim());
    EXPECT_NE(q->stateKey(), p.stateKey());
    const std::string initial_key = BrripPolicy(4, 2, 16).stateKey();
    p.reset();
    EXPECT_EQ(p.stateKey(), initial_key);
}

} // namespace
