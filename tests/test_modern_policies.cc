/**
 * @file
 * Unit and property tests for the modern-policy catalog: the
 * TemporalDuel primitive, DIP and DRRIP set-dueling convergence,
 * SHiP's PC-indexed signature table, and EAF's evicted-address
 * filter.
 *
 * The convergence tests drive phase-locked traces whose group length
 * equals the duel's epoch length, so every insertion's consequence
 * (a hit or a re-miss) lands inside the epoch that made the
 * insertion — the regime where temporal dueling attributes cleanly.
 * Everything here is deterministic, so expectations are pinned
 * exactly.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>

#include "recap/common/error.hh"
#include "recap/common/rng.hh"
#include "recap/policy/dip.hh"
#include "recap/policy/drrip.hh"
#include "recap/policy/duel.hh"
#include "recap/policy/eaf.hh"
#include "recap/policy/factory.hh"
#include "recap/policy/set_model.hh"
#include "recap/policy/ship.hh"
#include "recap/trace/generators.hh"

namespace recap::policy
{
namespace
{

// ---------------------------------------------------------------- duel

TEST(TemporalDuel, EpochScheduleAndReset)
{
    TemporalDuel duel(4, 2); // psel in [0,15], epochs of 2, cycle 8
    EXPECT_EQ(duel.psel(), duel.pselMidpoint());
    EXPECT_EQ(duel.pselMidpoint(), 8u);

    const DuelMode expected[8] = {
        DuelMode::kLeaderA,  DuelMode::kLeaderA,
        DuelMode::kLeaderB,  DuelMode::kLeaderB,
        DuelMode::kFollower, DuelMode::kFollower,
        DuelMode::kFollower, DuelMode::kFollower,
    };
    for (int cycle = 0; cycle < 3; ++cycle) {
        for (int pos = 0; pos < 8; ++pos) {
            EXPECT_EQ(duel.mode(), expected[pos])
                << "cycle " << cycle << " pos " << pos;
            duel.advance();
        }
    }

    duel.onMiss(DuelMode::kLeaderA);
    EXPECT_EQ(duel.psel(), 9u);
    duel.reset();
    EXPECT_EQ(duel.psel(), 8u);
    EXPECT_EQ(duel.mode(), DuelMode::kLeaderA);
}

TEST(TemporalDuel, TrainingSaturatesAndFollowerFlips)
{
    TemporalDuel duel(2, 1); // psel in [0,3], midpoint 2
    EXPECT_TRUE(duel.followerPicksB());
    for (int i = 0; i < 10; ++i)
        duel.onMiss(DuelMode::kLeaderB); // B misses: evidence for A
    EXPECT_EQ(duel.psel(), 0u);
    EXPECT_FALSE(duel.followerPicksB());
    for (int i = 0; i < 10; ++i)
        duel.onMiss(DuelMode::kLeaderA);
    EXPECT_EQ(duel.psel(), 3u); // saturates at the top
    EXPECT_TRUE(duel.followerPicksB());
    // Follower misses train nothing.
    duel.onMiss(DuelMode::kFollower);
    EXPECT_EQ(duel.psel(), 3u);
}

TEST(TemporalDuel, ValidatesParameters)
{
    EXPECT_THROW(TemporalDuel(0, 4), UsageError);
    EXPECT_THROW(TemporalDuel(17, 4), UsageError);
    EXPECT_THROW(TemporalDuel(4, 0), UsageError);
}

// ---------------------------------------------- convergence traces

/**
 * LRU-friendly, phase-locked to the default epoch length 4: each
 * epoch-sized group is x,y,x,y on a fresh pair. MRU insertion turns
 * the two reuses into hits (2 misses/group); LIP insertion evicts x
 * when y fills, missing all four (4 misses/group) — at any
 * associativity, independent of prior set contents.
 */
uint64_t
friendlyBlock(size_t i)
{
    return 2 * (i / 4) + (i % 2);
}

/**
 * Thrashing scan mix, phase-locked: each group is s1,s2,a,b with
 * fresh streaming scans s and a hot pair {a,b}. MRU insertion lets
 * the scans push the hot pair out (4 misses/group at 2 ways); LIP
 * insertion sacrifices the scans and keeps a hit on the hot pair
 * (3 misses/group) — bimodal insertion wins.
 */
uint64_t
scanMixBlock(size_t i)
{
    const size_t k = i % 4;
    if (k == 2)
        return 1000000; // a
    if (k == 3)
        return 1000001; // b
    return 2 * (i / 4) + k; // fresh scans
}

/** Drives @p n accesses and returns the miss count. */
int
missesOn(SetModel& m, const std::function<uint64_t(size_t)>& blockAt,
         size_t n)
{
    int misses = 0;
    for (size_t i = 0; i < n; ++i)
        if (!m.access(blockAt(i)))
            ++misses;
    return misses;
}

constexpr size_t kConvergenceLen = 4000;

TEST(DipConvergence, FriendlyTraceSteersToLru)
{
    SetModel m(makePolicy("dip", 2));
    const int misses = missesOn(m, friendlyBlock, kConvergenceLen);
    const auto* dip = dynamic_cast<const DipPolicy*>(&m.policy());
    ASSERT_NE(dip, nullptr);
    EXPECT_LT(dip->psel(), dip->pselMidpoint());
    EXPECT_FALSE(dip->followerPicksBip());
    EXPECT_EQ(dip->psel(), 0u); // pinned: saturates at full LRU
    EXPECT_EQ(misses, 2400);

    // Sandwiched between the constituents, near the better one.
    SetModel lru(makePolicy("lru", 2));
    SetModel bip(makePolicy("bip:16", 2));
    EXPECT_EQ(missesOn(lru, friendlyBlock, kConvergenceLen), 2000);
    EXPECT_EQ(missesOn(bip, friendlyBlock, kConvergenceLen), 3998);
}

TEST(DipConvergence, ScanMixSteersToBip)
{
    SetModel m(makePolicy("dip", 2));
    const int misses = missesOn(m, scanMixBlock, kConvergenceLen);
    const auto* dip = dynamic_cast<const DipPolicy*>(&m.policy());
    ASSERT_NE(dip, nullptr);
    EXPECT_GE(dip->psel(), dip->pselMidpoint());
    EXPECT_TRUE(dip->followerPicksBip());
    EXPECT_EQ(dip->psel(), 11u); // pinned
    EXPECT_EQ(misses, 3979);
}

TEST(DipConvergence, DirectionsHoldAcrossAssociativities)
{
    for (const unsigned ways : {4u, 8u}) {
        SetModel f(makePolicy("dip", ways));
        missesOn(f, friendlyBlock, kConvergenceLen);
        const auto* df = dynamic_cast<const DipPolicy*>(&f.policy());
        EXPECT_EQ(df->psel(), 0u) << "friendly, ways " << ways;

        SetModel t(makePolicy("dip", ways));
        missesOn(t, scanMixBlock, kConvergenceLen);
        const auto* dt = dynamic_cast<const DipPolicy*>(&t.policy());
        EXPECT_GE(dt->psel(), dt->pselMidpoint())
            << "scan mix, ways " << ways;
    }
}

TEST(DrripConvergence, FriendlyTraceSteersToSrrip)
{
    SetModel m(makePolicy("drrip", 2));
    const int misses = missesOn(m, friendlyBlock, kConvergenceLen);
    const auto* d = dynamic_cast<const DrripPolicy*>(&m.policy());
    ASSERT_NE(d, nullptr);
    EXPECT_LT(d->psel(), d->pselMidpoint());
    EXPECT_FALSE(d->followerPicksBrrip());
    EXPECT_EQ(d->psel(), 0u); // pinned
    EXPECT_EQ(misses, 2400);
}

TEST(DrripConvergence, ScanMixSteersToBrrip)
{
    SetModel m(makePolicy("drrip", 2));
    const int misses = missesOn(m, scanMixBlock, kConvergenceLen);
    const auto* d = dynamic_cast<const DrripPolicy*>(&m.policy());
    ASSERT_NE(d, nullptr);
    EXPECT_GE(d->psel(), d->pselMidpoint());
    EXPECT_TRUE(d->followerPicksBrrip());
    EXPECT_EQ(d->psel(), 9u); // pinned
    EXPECT_EQ(misses, 3001); // beats both pure constituents (4000)
}

// ----------------------------------------------------------------- DIP

TEST(Dip, NamesAndValidation)
{
    EXPECT_EQ(makePolicy("dip", 4)->name(), "DIP");
    EXPECT_EQ(makePolicy("drrip", 4)->name(), "DRRIP2");
    EXPECT_EQ(makePolicy("drrip:1,4,3,4", 4)->name(), "DRRIP1");
    EXPECT_FALSE(makePolicy("dip", 4)->usesMeta());
    EXPECT_FALSE(makePolicy("drrip", 4)->usesMeta());
    EXPECT_THROW(DipPolicy(1), UsageError);
    EXPECT_THROW(DipPolicy(4, 0), UsageError);
    EXPECT_THROW(DrripPolicy(1), UsageError);
}

TEST(Dip, StateKeyCoversDuelState)
{
    DipPolicy a(4), b(4);
    a.reset();
    b.reset();
    EXPECT_EQ(a.stateKey(), b.stateKey());
    // Same stack, different duel position: keys must differ, or the
    // compiled BFS would merge behaviourally distinct states.
    a.fill(0);
    b.fill(0);
    b.touch(0); // advances b's duel position past a's
    EXPECT_NE(a.stateKey(), b.stateKey());
}

// ---------------------------------------------------------------- SHiP

TEST(Ship, SignatureHashIsStableAndSpreads)
{
    ShipPolicy ship(4); // sigBits 4
    EXPECT_EQ(ship.signatureOf(0), 0u);
    // The two PCs of pcReuseStreamMix land on distinct signatures.
    EXPECT_EQ(ship.signatureOf(0x401000), 14u);
    EXPECT_EQ(ship.signatureOf(0x402000), 5u);
    EXPECT_TRUE(ship.usesMeta());
}

TEST(Ship, ShctLearnsReuseFromPcs)
{
    SetModel m(makePolicy("ship", 4));
    const auto* ship = dynamic_cast<const ShipPolicy*>(&m.policy());
    ASSERT_NE(ship, nullptr);
    const unsigned loopSig = ship->signatureOf(0x401000);
    const unsigned scanSig = ship->signatureOf(0x402000);
    EXPECT_EQ(ship->shctAt(loopSig), 1u); // weakly-reused init
    EXPECT_EQ(ship->shctAt(scanSig), 1u);

    const auto t = trace::pcReuseStreamMix(2 * 64, 4000, 7);
    int misses = 0;
    for (const auto& a : t)
        if (!m.accessWithPc(a.addr / 64, a.pc))
            ++misses;

    // The looping PC saturates its counter; the streaming PC's dead
    // fills train it to zero (insert-distant).
    EXPECT_EQ(ship->shctAt(loopSig), 3u);
    EXPECT_EQ(ship->shctAt(scanSig), 0u);
    EXPECT_EQ(misses, 2002); // pinned
}

TEST(Ship, DeadFillsTrainCounterDown)
{
    SetModel m(makePolicy("ship", 2));
    const auto* ship = dynamic_cast<const ShipPolicy*>(&m.policy());
    const uint64_t pc = 0x1234;
    const unsigned sig = ship->signatureOf(pc);
    ASSERT_EQ(ship->shctAt(sig), 1u);
    // Stream enough distinct blocks through the 2-way set that lines
    // filled under this PC die unreferenced.
    for (uint64_t b = 0; b < 8; ++b)
        m.accessWithPc(b, pc);
    EXPECT_EQ(ship->shctAt(sig), 0u);
}

TEST(Ship, HitsTrainCounterUp)
{
    SetModel m(makePolicy("ship", 2));
    const auto* ship = dynamic_cast<const ShipPolicy*>(&m.policy());
    const uint64_t pc = 0x1234;
    const unsigned sig = ship->signatureOf(pc);
    m.accessWithPc(7, pc);
    EXPECT_FALSE(m.accessWithPc(8, pc)); // miss
    EXPECT_TRUE(m.accessWithPc(7, pc));  // hit: reuse observed
    EXPECT_EQ(ship->shctAt(sig), 2u);
}

TEST(Ship, ValidatesParameters)
{
    EXPECT_THROW(ShipPolicy(1), UsageError);
    EXPECT_THROW(ShipPolicy(4, 2, 0), UsageError);
    EXPECT_THROW(ShipPolicy(4, 2, 15), UsageError);
    EXPECT_THROW(ShipPolicy(4, 2, 4, 0), UsageError);
    EXPECT_THROW(ShipPolicy(4, 2, 4, 9), UsageError);
}

// ----------------------------------------------------------------- EAF

TEST(Eaf, FilterTracksEvictedBlocks)
{
    SetModel m(makePolicy("eaf", 4));
    const auto* eaf = dynamic_cast<const EafPolicy*>(&m.policy());
    ASSERT_NE(eaf, nullptr);
    EXPECT_TRUE(eaf->usesMeta());

    for (uint64_t b = 0; b < 5; ++b)
        m.access(b);
    // Block 5 displaced exactly one resident; the filter remembers it.
    EXPECT_EQ(eaf->filterSize(), 1u);
    EXPECT_TRUE(eaf->filterContains(3));
}

TEST(Eaf, FilteredBlockIsReinsertedAtMruAndLeavesFilter)
{
    SetModel m(makePolicy("eaf", 4));
    const auto* eaf = dynamic_cast<const EafPolicy*>(&m.policy());
    for (uint64_t b = 0; b < 5; ++b)
        m.access(b);
    ASSERT_TRUE(eaf->filterContains(3));

    // 3 comes back: a filter hit consumes the entry and inserts at
    // MRU, so 3 then survives a subsequent streaming fill.
    EXPECT_FALSE(m.access(3));
    EXPECT_FALSE(eaf->filterContains(3));
    m.access(100);
    EXPECT_TRUE(m.contains(3));
}

TEST(Eaf, FilterCapacityIsBounded)
{
    SetModel m(makePolicy("eaf:2", 4)); // filterCap 2
    const auto* eaf = dynamic_cast<const EafPolicy*>(&m.policy());
    for (uint64_t b = 0; b < 64; ++b)
        m.access(b);
    EXPECT_LE(eaf->filterSize(), 2u);
}

TEST(Eaf, WithoutMetadataBehavesExactlyLikeBip)
{
    // Raw touch/fill driving never publishes block identities, so
    // the filter stays empty and every insertion is bimodal.
    PolicyPtr eaf = makePolicy("eaf", 4);
    PolicyPtr bip = makePolicy("bip:16", 4);
    eaf->reset();
    bip->reset();
    Rng rng(0xEAF);
    for (unsigned step = 0; step < 2000; ++step) {
        ASSERT_EQ(eaf->victim(), bip->victim()) << "step " << step;
        const Way w = static_cast<Way>(rng.nextBelow(4));
        if (rng.nextBelow(2) == 0) {
            eaf->touch(w);
            bip->touch(w);
        } else {
            eaf->fill(w);
            bip->fill(w);
        }
    }
    EXPECT_EQ(eaf->victim(), bip->victim());
}

TEST(Eaf, ValidatesParameters)
{
    EXPECT_THROW(EafPolicy(1), UsageError);
    EXPECT_THROW(EafPolicy(4, 0, 0), UsageError);
}

// ------------------------------------------------------------- factory

TEST(ModernFactory, SpecsParseWithDefaultsAndParameters)
{
    EXPECT_EQ(makePolicy("ship", 4)->name(), "SHiP");
    EXPECT_EQ(makePolicy("eaf", 4)->name(), "EAF");
    EXPECT_EQ(makePolicy("dip:4,3,4", 4)->name(), "DIP");
    EXPECT_EQ(makePolicy("eaf:8,32", 4)->name(), "EAF");
    EXPECT_EQ(makePolicy("ship:2,6,3", 4)->name(), "SHiP");
    for (const auto& spec : modernSpecs())
        EXPECT_TRUE(isKnownPolicySpec(spec)) << spec;
}

TEST(ModernFactory, RejectsMalformedModernSpecs)
{
    EXPECT_THROW(makePolicy("dip:", 4), UsageError);
    EXPECT_THROW(makePolicy("dip:1,2,3,4", 4), UsageError); // too many
    EXPECT_THROW(makePolicy("dip:x", 4), UsageError);
    EXPECT_THROW(makePolicy("drrip:2,16,4,4,4", 4), UsageError);
    EXPECT_THROW(makePolicy("ship:2,0", 4), UsageError);
    EXPECT_THROW(makePolicy("eaf:0,0", 4), UsageError);
    EXPECT_THROW(makePolicy("dip", 1), UsageError);
}

} // namespace
} // namespace recap::policy
