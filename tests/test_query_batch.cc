/**
 * @file
 * Tests for the prefix-sharing batch evaluator: batch verdicts must
 * be bit-identical to naive per-query re-execution across every
 * registered policy and both oracle backends (including noisy
 * machines with pinned seeds), for any worker-thread count, while the
 * sharing statistics prove work was actually saved.
 */

#include <gtest/gtest.h>

#include "recap/common/rng.hh"
#include "recap/hw/catalog.hh"
#include "recap/hw/machine.hh"
#include "recap/infer/geometry_probe.hh"
#include "recap/infer/measurement.hh"
#include "recap/policy/factory.hh"
#include "recap/query/oracle.hh"
#include "recap/query/parse.hh"

namespace
{

using namespace recap;
using infer::MeasurementContext;
using query::BatchOptions;
using query::BatchStats;
using query::CompiledQuery;
using query::MachineOracle;
using query::PolicyOracle;
using query::ProbeOutcome;
using query::QueryVerdict;

/** A workload with heavy prefix overlap, flushes and duplicates. */
std::vector<CompiledQuery>
sharedWorkload()
{
    const char* kTexts[] = {
        "a b c d a?",
        "a b c d e a?",
        "a b c d e f a? b?",
        "a b c d d? @ a?",
        "a b c x y? a?",
        "( a b )^3 c? a?",
        "a b c d a?",          // exact duplicate
        "p q r s p?",          // alpha-equivalent to query 0
        "x1 x2 x3 x4 x5 x1?",
        "@ a b c d a? @ e f g h e?",
    };
    std::vector<CompiledQuery> queries;
    for (const char* text : kTexts)
        queries.push_back(query::compile(query::parseQuery(text)));
    return queries;
}

std::vector<std::vector<ProbeOutcome>>
probesOf(const std::vector<QueryVerdict>& verdicts)
{
    std::vector<std::vector<ProbeOutcome>> out;
    for (const auto& verdict : verdicts)
        out.push_back(verdict.probes);
    return out;
}

TEST(QueryBatch, PolicyBatchBitIdenticalToNaiveAcrossAllPolicies)
{
    const auto queries = sharedWorkload();
    for (const auto& spec : policy::baselineSpecs()) {
        for (unsigned ways : {4u, 8u}) {
            if (!policy::specSupportsWays(spec, ways))
                continue;
            PolicyOracle shared(spec, ways, /*seed=*/7);
            PolicyOracle naive(spec, ways, /*seed=*/7);
            BatchOptions on;
            BatchOptions off;
            off.prefixSharing = false;
            EXPECT_EQ(probesOf(shared.evaluateBatch(queries, on)),
                      probesOf(naive.evaluateBatch(queries, off)))
                << spec << " k=" << ways;
        }
    }
}

TEST(QueryBatch, PolicyBatchInvariantUnderThreadCount)
{
    const auto queries = sharedWorkload();
    PolicyOracle oracle("qlru:H1,M1,R0,U2", 8);
    std::vector<std::vector<std::vector<ProbeOutcome>>> runs;
    for (unsigned threads : {1u, 3u, 0u}) {
        BatchOptions opts;
        opts.numThreads = threads;
        runs.push_back(probesOf(oracle.evaluateBatch(queries, opts)));
    }
    EXPECT_EQ(runs[0], runs[1]);
    EXPECT_EQ(runs[0], runs[2]);
}

TEST(QueryBatch, PolicyStatsProveSharing)
{
    const auto queries = sharedWorkload();
    PolicyOracle oracle("lru", 4);
    BatchStats stats;
    const auto verdicts =
        oracle.evaluateBatch(queries, BatchOptions{}, &stats);

    EXPECT_EQ(stats.queries, queries.size());
    EXPECT_LT(stats.sharedCost, stats.naiveCost);
    EXPECT_EQ(stats.prefixReuses, stats.naiveCost - stats.sharedCost);
    EXPECT_GT(stats.experimentsSaved, 0u);

    // Marginal attribution: the batch-wide cost is exactly the sum
    // of per-query costs, and fully-shared queries ride for free.
    uint64_t accounted = 0;
    for (const auto& verdict : verdicts)
        accounted += verdict.accesses;
    EXPECT_EQ(accounted, stats.sharedCost);
    EXPECT_EQ(verdicts[6].accesses, 0u); // duplicate of query 0
    EXPECT_EQ(verdicts[7].accesses, 0u); // alpha-equivalent to it
}

TEST(QueryBatch, MachineBatchBitIdenticalToNaiveNoiseless)
{
    const auto queries = sharedWorkload();
    const auto spec =
        hw::reducedSpec(hw::catalogMachine("core2-e6300"), 512);
    std::vector<std::vector<ProbeOutcome>> byMode[2];
    uint64_t experiments[2];
    for (int shared = 0; shared < 2; ++shared) {
        hw::Machine machine(spec);
        MeasurementContext ctx(machine);
        MachineOracle oracle(ctx, infer::assumedGeometry(spec), 1);
        BatchOptions opts;
        opts.prefixSharing = shared == 1;
        byMode[shared] = probesOf(oracle.evaluateBatch(queries, opts));
        experiments[shared] = ctx.experimentsRun();
    }
    EXPECT_EQ(byMode[0], byMode[1]);
    // Duplicate queries and shared segment prefixes mean the sharing
    // path replays strictly fewer experiments on the machine.
    EXPECT_LT(experiments[1], experiments[0]);
}

TEST(QueryBatch, MachineBatchBitIdenticalToNaiveUnderNoise)
{
    // Pinned machine seed + enough votes: the voted verdicts are
    // stable, so sharing (which reorders and dedups experiments)
    // still answers bit-identically.
    const auto queries = sharedWorkload();
    const auto spec =
        hw::reducedSpec(hw::catalogMachine("core2-e6300"), 512);
    hw::NoiseConfig noise;
    noise.disturbProbability = 0.01;
    std::vector<std::vector<ProbeOutcome>> byMode[2];
    for (int shared = 0; shared < 2; ++shared) {
        hw::Machine machine(spec, /*seed=*/11, noise);
        MeasurementContext ctx(machine);
        query::MachineOracleConfig cfg;
        cfg.prober.voteRepeats = 15;
        MachineOracle oracle(ctx, infer::assumedGeometry(spec), 0,
                             cfg);
        BatchOptions opts;
        opts.prefixSharing = shared == 1;
        byMode[shared] = probesOf(oracle.evaluateBatch(queries, opts));
    }
    EXPECT_EQ(byMode[0], byMode[1]);
}

TEST(QueryBatch, MachineLatencyModeBatchMatchesNaive)
{
    const auto queries = sharedWorkload();
    const auto spec =
        hw::reducedSpec(hw::catalogMachine("sandybridge-i5"), 512);
    std::vector<std::vector<ProbeOutcome>> byMode[2];
    for (int shared = 0; shared < 2; ++shared) {
        hw::Machine machine(spec);
        MeasurementContext ctx(machine);
        query::MachineOracleConfig cfg;
        cfg.mode = query::ObservationMode::kLatency;
        MachineOracle oracle(ctx, infer::assumedGeometry(spec), 2,
                             cfg);
        BatchOptions opts;
        opts.prefixSharing = shared == 1;
        byMode[shared] = probesOf(oracle.evaluateBatch(queries, opts));
    }
    EXPECT_EQ(byMode[0], byMode[1]);
}

TEST(QueryBatch, MachineStatsCountReusesAndSavedExperiments)
{
    const auto queries = sharedWorkload();
    const auto spec =
        hw::reducedSpec(hw::catalogMachine("core2-e6300"), 512);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    MachineOracle oracle(ctx, infer::assumedGeometry(spec), 1);
    BatchStats stats;
    const auto verdicts =
        oracle.evaluateBatch(queries, BatchOptions{}, &stats);

    EXPECT_EQ(stats.queries, queries.size());
    EXPECT_GT(stats.prefixReuses, 0u);
    EXPECT_GT(stats.experimentsSaved, 0u);
    EXPECT_LT(stats.sharedCost, stats.naiveCost);
    EXPECT_EQ(stats.experimentsRun, ctx.experimentsRun());

    uint64_t accounted = 0;
    for (const auto& verdict : verdicts)
        accounted += verdict.accesses;
    EXPECT_EQ(accounted, ctx.loadsIssued());
    EXPECT_EQ(verdicts[6].experiments, 0u); // duplicate rides free
}

TEST(QueryBatch, SingletonBatchEqualsEvaluate)
{
    const CompiledQuery q =
        query::compile(query::parseQuery("a b c d b? @ d?"));
    PolicyOracle batched("srrip", 8);
    PolicyOracle direct("srrip", 8);
    const auto batch = batched.evaluateBatch({q});
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].probes, direct.evaluate(q).probes);
}

TEST(QueryBatch, ShuffledBatchPreservesInputOrder)
{
    // Order-preservation regression: the evaluator sorts internally
    // for prefix grouping, but verdict i must always belong to
    // query i. Shuffle the workload and check every index against an
    // individually evaluated reference, on both backends.
    auto queries = sharedWorkload();
    Rng rng(2024);
    rng.shuffle(queries);

    PolicyOracle policyBatch("slru", 4, /*seed=*/7);
    PolicyOracle policyRef("slru", 4, /*seed=*/7);
    const auto verdicts = policyBatch.evaluateBatch(queries);
    ASSERT_EQ(verdicts.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
        EXPECT_EQ(verdicts[i].probes,
                  policyRef.evaluate(queries[i]).probes)
            << "policy backend, index " << i;
    }

    const auto spec =
        hw::reducedSpec(hw::catalogMachine("core2-e6300"), 64);
    hw::Machine shared(spec);
    hw::Machine naive(spec);
    MeasurementContext sharedCtx(shared);
    MeasurementContext naiveCtx(naive);
    MachineOracle machineBatch(sharedCtx, infer::assumedGeometry(spec),
                               0);
    MachineOracle machineRef(naiveCtx, infer::assumedGeometry(spec),
                             0);
    const auto measured = machineBatch.evaluateBatch(queries);
    ASSERT_EQ(measured.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
        EXPECT_EQ(measured[i].probes,
                  machineRef.evaluate(queries[i]).probes)
            << "machine backend, index " << i;
    }
}

TEST(QueryBatch, LargeGeneratedWorkloadMatchesNaive)
{
    // Randomized closure: many queries built from a small alphabet so
    // prefixes collide organically.
    Rng rng(99);
    std::vector<CompiledQuery> queries;
    for (int i = 0; i < 60; ++i) {
        std::string text;
        const auto len = 3 + rng.nextBelow(10);
        for (std::size_t j = 0; j < len; ++j) {
            if (rng.nextBool(0.08))
                text += "@ ";
            text += static_cast<char>('a' + rng.nextBelow(5));
            if (j + 1 == len || rng.nextBool(0.2))
                text += '?';
            text += ' ';
        }
        queries.push_back(query::compile(query::parseQuery(text)));
    }
    for (const char* spec : {"lru", "nru", "bip"}) {
        PolicyOracle shared(spec, 4);
        PolicyOracle naive(spec, 4);
        BatchOptions off;
        off.prefixSharing = false;
        EXPECT_EQ(probesOf(shared.evaluateBatch(queries)),
                  probesOf(naive.evaluateBatch(queries, off)))
            << spec;
    }
}

} // namespace
