/**
 * @file
 * Catalog-wide differential sweep: every classic and modern catalog
 * machine, 10k-access lockstep between the compiled hier:: walk and
 * the interpreted cache::Hierarchy — served levels, adaptive PSEL,
 * per-level statistics (including writebacks), and final tag images
 * must be identical. This is the CI hier-smoke sweep.
 */

#include <gtest/gtest.h>

#include "recap/hier/simulate.hh"
#include "recap/hw/catalog.hh"
#include "recap/trace/generators.hh"

namespace
{

using namespace recap;

constexpr size_t kAccesses = 10000;

/** Reduced spec (inference-irrelevant set counts shrunk) + trace. */
void
sweepMachine(const hw::MachineSpec& full, cache::InclusionMode mode)
{
    // 256 sets keeps the walk representative (leader layouts intact)
    // while the full catalog stays fast enough for CI.
    const auto spec = hw::reducedSpec(full, 256);
    // Footprint past the reduced L2/L3 so every level sees misses,
    // evictions, and (with stores) writebacks.
    uint64_t footprint = 0;
    for (const auto& lvl : spec.levels)
        footprint += lvl.geometry().sizeBytes();
    const auto refs = trace::withWrites(
        trace::zipf(4 * footprint, kAccesses, 0.9,
                    0xd1f5 + full.name.size()),
        0.25, 0x5eed);

    hier::CrossCheckOptions opts;
    opts.mode = mode;
    opts.seed = 77;
    const auto report = hier::crossCheck(spec, refs, opts);
    EXPECT_TRUE(report.ok)
        << full.name << " [" << cache::inclusionModeName(mode)
        << "]: " << report.detail;
    EXPECT_EQ(report.result.accesses, kAccesses);
}

TEST(HierDifferential, ClassicCatalogLockstep)
{
    for (const auto& spec : hw::intelCatalog())
        sweepMachine(spec, cache::InclusionMode::kNonInclusive);
}

TEST(HierDifferential, ModernCatalogLockstep)
{
    for (const auto& spec : hw::modernCatalog())
        sweepMachine(spec, cache::InclusionMode::kNonInclusive);
}

TEST(HierDifferential, ClassicCatalogInclusiveLockstep)
{
    for (const auto& spec : hw::intelCatalog())
        sweepMachine(spec, cache::InclusionMode::kInclusive);
}

TEST(HierDifferential, ClassicCatalogExclusiveLockstep)
{
    for (const auto& spec : hw::intelCatalog())
        sweepMachine(spec, cache::InclusionMode::kExclusive);
}

TEST(HierDifferential, ModernCatalogInclusiveAndExclusiveLockstep)
{
    for (const auto& spec : hw::modernCatalog()) {
        sweepMachine(spec, cache::InclusionMode::kInclusive);
        sweepMachine(spec, cache::InclusionMode::kExclusive);
    }
}

TEST(HierDifferential, AdaptiveMachineRunsCompiledEndToEnd)
{
    // The acceptance bar: at least one set-dueling machine must run
    // fully compiled. The catalog ivybridge L3 is 12-way (fallback),
    // so pin the 8-way variant bench_hier also measures.
    auto spec = hw::reducedSpec(
        hw::catalogMachine("ivybridge-i5"), 256);
    auto& l3 = spec.levels[2];
    l3.capacityBytes = l3.capacityBytes / l3.ways * 8;
    l3.ways = 8;
    hier::Hierarchy h(spec);
    ASSERT_TRUE(h.isAdaptive(2));
    EXPECT_TRUE(h.fullyCompiled());
}

} // namespace
