/**
 * @file
 * Catalog-wide differential sweep: every registered factory spec —
 * baseline and modern — must either compile to a table that is
 * bit-exact against its interpreted automaton under long fuzz words,
 * or provably fall back to interpretation. Compile outcomes for the
 * modern dueling policies are pinned per associativity so a budget
 * or state-space regression is caught immediately.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "recap/common/rng.hh"
#include "recap/policy/compiled.hh"
#include "recap/policy/factory.hh"

namespace recap::policy
{
namespace
{

/** Same budget shape as test_compiled_policy.cc's suite. */
CompileBudget
testBudget(unsigned ways)
{
    CompileBudget budget;
    budget.maxStates = ways >= 16 ? (1u << 15) : (1u << 16);
    return budget;
}

/**
 * 10k fuzz inputs in lockstep, comparing victim() every step and
 * stateKey() periodically. Metadata-consuming policies get the same
 * AccessMeta published to both sides, so SHiP/EAF are exercised
 * through their side channel as well.
 */
void
lockstep(ReplacementPolicy& a, ReplacementPolicy& b,
         const std::string& spec, unsigned ways, bool compareKeys)
{
    a.reset();
    b.reset();
    Rng rng(0xD1FF ^ ways);
    for (unsigned step = 0; step < 10000; ++step) {
        ASSERT_EQ(a.victim(), b.victim())
            << spec << " k=" << ways << " step " << step;
        if (a.usesMeta()) {
            AccessMeta meta;
            meta.block = rng.nextBelow(2 * ways);
            meta.hasBlock = true;
            meta.pc = 0x400000 + 4 * rng.nextBelow(8);
            meta.hasPc = true;
            a.beginAccess(meta);
            b.beginAccess(meta);
        }
        const Way w = static_cast<Way>(rng.nextBelow(ways));
        if (rng.nextBelow(2) == 0) {
            a.touch(w);
            b.touch(w);
        } else {
            a.fill(w);
            b.fill(w);
        }
        if (compareKeys && step % 64 == 0) {
            ASSERT_EQ(a.stateKey(), b.stateKey())
                << spec << " k=" << ways << " step " << step;
        }
    }
    if (compareKeys) {
        ASSERT_EQ(a.stateKey(), b.stateKey())
            << spec << " k=" << ways << " final state";
    }
}

class CatalogDifferential : public ::testing::TestWithParam<std::string>
{};

/**
 * The sweep: for each catalog spec and associativity, compiled vs
 * interpreted when a table exists, fallback vs interpreted when not.
 * Either way the pair must stay bit-equal for 10k accesses.
 */
TEST_P(CatalogDifferential, CompiledOrFallbackStaysBitEqual)
{
    const std::string spec = GetParam();
    for (const unsigned ways : {2u, 4u, 8u}) {
        if (!specSupportsWays(spec, ways))
            continue;
        PolicyPtr interpreted = makePolicy(spec, ways, 1);
        const CompiledTablePtr table =
            compiledTableFor(spec, ways, testBudget(ways));
        if (table) {
            ASSERT_FALSE(interpreted->usesMeta())
                << spec << ": metadata policies must never compile";
            CompiledPolicy compiled(table);
            ASSERT_EQ(compiled.name(), interpreted->name());
            lockstep(compiled, *interpreted, spec, ways, true);
        } else {
            PolicyPtr fallback =
                makeCompiledOrFallback(spec, ways, 1, testBudget(ways));
            ASSERT_NE(fallback, nullptr);
            EXPECT_EQ(dynamic_cast<CompiledPolicy*>(fallback.get()),
                      nullptr)
                << spec << " k=" << ways
                << ": over-budget spec must fall back";
            // stateKey comparison included: the fallback is the same
            // interpreted automaton type.
            lockstep(*fallback, *interpreted, spec, ways, true);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    FullCatalog, CatalogDifferential,
    ::testing::ValuesIn(catalogSpecs()),
    [](const ::testing::TestParamInfo<std::string>& info) {
        std::string name = info.param;
        for (char& c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

/** The modern specs ride in catalogSpecs(); pin the roster. */
TEST(CatalogRoster, ModernSpecsAreRegistered)
{
    const auto catalog = catalogSpecs();
    for (const auto& spec : modernSpecs()) {
        EXPECT_NE(std::find(catalog.begin(), catalog.end(), spec),
                  catalog.end())
            << spec << " missing from catalogSpecs()";
    }
    EXPECT_EQ(catalog.size(),
              baselineSpecs().size() + modernSpecs().size());
}

/**
 * Pinned compile outcomes for the dueling automata: which (spec,
 * ways) pairs fit the differential suite's budget, and at exactly
 * how many states. A drift here means the state encoding changed —
 * deliberate changes update the pins, accidents get caught.
 */
TEST(CatalogRoster, ModernCompileOutcomesArePinned)
{
    struct Pin
    {
        const char* spec;
        unsigned ways;
        unsigned states; // 0 = must fall back
    };
    const Pin pins[] = {
        {"dip", 2, 8192},          {"dip", 4, 0},
        {"dip", 8, 0},             {"drrip", 2, 48512},
        {"drrip", 4, 0},           {"drrip", 8, 0},
        {"dip:4,3,4", 2, 1024},    {"dip:4,3,4", 4, 12288},
        {"dip:4,3,4", 8, 0},       {"drrip:1,4,3,4", 2, 1716},
        {"drrip:1,4,3,4", 4, 7860}, {"drrip:1,4,3,4", 8, 0},
    };
    for (const Pin& pin : pins) {
        const CompiledTablePtr table =
            compiledTableFor(pin.spec, pin.ways, testBudget(pin.ways));
        if (pin.states == 0) {
            EXPECT_EQ(table, nullptr)
                << pin.spec << " k=" << pin.ways;
        } else {
            ASSERT_NE(table, nullptr)
                << pin.spec << " k=" << pin.ways;
            EXPECT_EQ(table->numStates(), pin.states)
                << pin.spec << " k=" << pin.ways;
        }
    }
    // Default budget admits the 2-way duelers too.
    EXPECT_NE(compiledTableFor("dip", 2, {}), nullptr);
}

/**
 * SHiP and EAF consume out-of-band metadata the compiled table
 * cannot see; compiling them would diverge silently the moment a PC
 * or block id arrives. They must refuse even absurd budgets.
 */
TEST(CatalogRoster, MetadataPoliciesNeverCompile)
{
    CompileBudget generous;
    generous.maxStates = 1u << 20;
    for (const char* spec : {"ship", "eaf", "ship:2,6,3", "eaf:8,32"}) {
        EXPECT_TRUE(makePolicy(spec, 4)->usesMeta()) << spec;
        EXPECT_EQ(compiledTableFor(spec, 2, generous), nullptr) << spec;
        EXPECT_EQ(compiledTableFor(spec, 4, generous), nullptr) << spec;
        // The factory path degrades to interpretation, not an error.
        PolicyPtr fallback =
            makeCompiledOrFallback(spec, 4, 1, generous);
        ASSERT_NE(fallback, nullptr) << spec;
        EXPECT_EQ(dynamic_cast<CompiledPolicy*>(fallback.get()),
                  nullptr)
            << spec;
    }
}

} // namespace
} // namespace recap::policy
