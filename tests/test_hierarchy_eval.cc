/**
 * @file
 * Tests for the whole-hierarchy evaluation (AMAT).
 */

#include <gtest/gtest.h>

#include "recap/common/error.hh"
#include "recap/eval/hierarchy_eval.hh"
#include "recap/hw/catalog.hh"
#include "recap/hw/machine.hh"
#include "recap/trace/generators.hh"

namespace
{

using namespace recap;
using eval::evaluateHierarchy;
using eval::withLevelPolicy;

TEST(HierarchyEval, AmatBoundedByLatencies)
{
    const auto spec = hw::reducedSpec(
        hw::catalogMachine("nehalem-i5"), 256);
    const auto t = trace::zipf(512 * 1024, 40000, 0.9, 3);
    const auto result = evaluateHierarchy(spec, t);
    EXPECT_EQ(result.accesses, t.size());
    EXPECT_GE(result.amat(),
              static_cast<double>(spec.levels[0].hitLatency));
    EXPECT_LE(result.amat(),
              static_cast<double>(spec.memoryLatency));
}

TEST(HierarchyEval, ServedByAccountsForEveryAccess)
{
    const auto spec = hw::reducedSpec(
        hw::catalogMachine("core2-e6300"), 256);
    const auto t = trace::randomUniform(256 * 1024, 30000, 5);
    const auto result = evaluateHierarchy(spec, t);
    ASSERT_EQ(result.servedBy.size(), spec.levels.size() + 1);
    uint64_t total = 0;
    for (uint64_t n : result.servedBy)
        total += n;
    EXPECT_EQ(total, t.size());
    ASSERT_EQ(result.levels.size(), spec.levels.size());
    EXPECT_EQ(result.levels[0].accesses, t.size());
}

TEST(HierarchyEval, HotLoopIsAllL1)
{
    const auto spec = hw::reducedSpec(
        hw::catalogMachine("core2-e6300"), 256);
    // A loop fitting comfortably in (the reduced) L1, repeated many
    // times.
    const auto t = trace::sequentialScan(
        spec.levels[0].capacityBytes / 2, 400);
    const auto result = evaluateHierarchy(spec, t);
    // All but the cold pass hits L1: AMAT close to the L1 latency.
    EXPECT_LT(result.amat(), spec.levels[0].hitLatency + 1.0);
}

TEST(HierarchyEval, DeterministicUnderSeed)
{
    const auto spec = hw::reducedSpec(
        hw::catalogMachine("ivybridge-i5"), 256);
    const auto t = trace::phaseMix(64 * 1024, 2, 2, 9);
    const auto a = evaluateHierarchy(spec, t, 5);
    const auto b = evaluateHierarchy(spec, t, 5);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
}

TEST(HierarchyEval, RefTraceVariantCountsWrites)
{
    const auto spec = hw::reducedSpec(
        hw::catalogMachine("core2-e6300"), 256);
    const auto t = trace::randomUniform(64 * 1024, 20000, 4);
    const auto refs = trace::withWrites(t, 0.3, 11);
    const auto result = evaluateHierarchy(spec, refs);
    EXPECT_EQ(result.accesses, refs.size());
    EXPECT_GT(result.levels[0].writes, 0u);
    EXPECT_GT(result.levels[0].writebacks, 0u);
}

TEST(HierarchyEval, PolicySwapChangesBehaviour)
{
    auto spec = hw::reducedSpec(hw::catalogMachine("sandybridge-i5"),
                                256);
    // A thrashing L3 workload: swapping the L3 policy to a
    // scan-resistant one must lower the AMAT.
    const uint64_t l3_bytes = spec.levels[2].capacityBytes;
    const auto t = trace::sequentialScan(2 * l3_bytes, 6);

    const auto baseline = evaluateHierarchy(spec, t);
    const auto swapped = evaluateHierarchy(
        withLevelPolicy(spec, 2, "qlru:H1,M3,R0,U2"), t);
    EXPECT_LT(swapped.amat(), baseline.amat());
}

TEST(HierarchyEval, WithLevelPolicyValidates)
{
    const auto spec = hw::catalogMachine("ivybridge-i5");
    EXPECT_THROW(withLevelPolicy(spec, 9, "lru"), UsageError);
    const auto modified = withLevelPolicy(spec, 2, "lru");
    EXPECT_FALSE(modified.levels[2].isAdaptive());
    EXPECT_EQ(modified.levels[2].policySpec, "lru");
}

// Pinned regression values: exact cycle totals and per-level served
// counts for one classic and one modern/adaptive catalog machine.
// These freeze the whole simulation contract — policy automata, seed
// derivation, fill/evict order, the compiled hier:: walk AND its
// interpreted fallback (both must produce exactly these numbers; the
// Hier lockstep suites assert the two paths agree access by access).
// A legitimate behaviour change must update them consciously.
TEST(HierarchyEval, PinnedNehalemAmatAndServedBy)
{
    const auto spec = hw::reducedSpec(
        hw::catalogMachine("nehalem-i5"), 256);
    const auto t = trace::zipf(512 * 1024, 40000, 0.9, 3);
    const auto result = evaluateHierarchy(spec, t);
    EXPECT_EQ(result.totalCycles, 2732358u);
    ASSERT_EQ(result.servedBy.size(), 4u);
    EXPECT_EQ(result.servedBy[0], 3976u);
    EXPECT_EQ(result.servedBy[1], 7812u);
    EXPECT_EQ(result.servedBy[2], 19649u);
    EXPECT_EQ(result.servedBy[3], 8563u);
    EXPECT_DOUBLE_EQ(result.amat(), 2732358.0 / 40000.0);

    eval::HierarchyOptions interp;
    interp.forceInterpreted = true;
    const auto ref = evaluateHierarchy(spec, t, interp);
    EXPECT_EQ(ref.totalCycles, result.totalCycles);
}

TEST(HierarchyEval, PinnedSkylakeDrripAmatAndServedBy)
{
    // The modern-catalog DRRIP machine: an adaptive set-dueling LLC
    // with stores in the trace, so the pin also covers PSEL training
    // and writeback accounting.
    const auto spec = hw::reducedSpec(
        hw::catalogMachine("skylake-drrip"), 256);
    const auto refs = trace::withWrites(
        trace::zipf(512 * 1024, 40000, 0.9, 3), 0.25, 9);
    const auto result = evaluateHierarchy(spec, refs);
    EXPECT_EQ(result.totalCycles, 2842244u);
    ASSERT_EQ(result.servedBy.size(), 4u);
    EXPECT_EQ(result.servedBy[0], 3976u);
    EXPECT_EQ(result.servedBy[1], 7565u);
    EXPECT_EQ(result.servedBy[2], 20473u);
    EXPECT_EQ(result.servedBy[3], 7986u);
    EXPECT_DOUBLE_EQ(result.amat(), 2842244.0 / 40000.0);
}

TEST(HierarchyEval, MatchesMachineCounters)
{
    // buildHierarchy must wire exactly like Machine: the same trace
    // produces the same per-level statistics.
    const auto spec = hw::reducedSpec(
        hw::catalogMachine("westmere-i5"), 256);
    const auto t = trace::zipf(256 * 1024, 20000, 0.8, 6);

    const auto result = evaluateHierarchy(spec, t, 1);
    hw::Machine machine(spec, 1);
    for (cache::Addr a : t)
        machine.access(a);
    const auto counters = machine.counters();
    ASSERT_EQ(counters.levels.size(), result.levels.size());
    for (size_t i = 0; i < result.levels.size(); ++i) {
        EXPECT_EQ(result.levels[i].misses, counters.levels[i].misses)
            << "level " << i;
        EXPECT_EQ(result.levels[i].hits, counters.levels[i].hits)
            << "level " << i;
    }
}

} // namespace
