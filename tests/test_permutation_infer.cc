/**
 * @file
 * Tests for measurement-based permutation-policy inference: the
 * paper's core algorithm must recover LRU/FIFO/PLRU exactly from
 * hit/miss observations alone, and must refuse every policy outside
 * the (probe-able) permutation class.
 */

#include <gtest/gtest.h>

#include "recap/common/rng.hh"
#include "recap/hw/catalog.hh"
#include "recap/infer/geometry_probe.hh"
#include "recap/infer/naming.hh"
#include "recap/policy/factory.hh"
#include "recap/infer/permutation_infer.hh"
#include "recap/infer/set_prober.hh"
#include "recap/policy/set_model.hh"

namespace
{

using namespace recap;
using infer::DiscoveredGeometry;
using infer::MeasurementContext;
using infer::PermutationInference;
using infer::PermutationInferenceConfig;
using infer::SetProber;
using infer::SetProberConfig;

/** A single-level machine with the given hidden policy. */
hw::MachineSpec
singleLevelSpec(const std::string& policy, unsigned ways,
                unsigned sets = 64)
{
    hw::MachineSpec spec;
    spec.name = "probe-rig";
    spec.description = "single-level test machine";
    hw::CacheLevelSpec lvl;
    lvl.name = "L1";
    lvl.capacityBytes = uint64_t{64} * sets * ways;
    lvl.ways = ways;
    lvl.hitLatency = 4;
    lvl.policySpec = policy;
    spec.levels = {lvl};
    spec.memoryLatency = 100;
    return spec;
}

DiscoveredGeometry
geometryOf(const hw::MachineSpec& spec)
{
    DiscoveredGeometry geom;
    geom.lineSize = 64;
    for (const auto& lvl : spec.levels) {
        const auto g = lvl.geometry();
        geom.levels.push_back({64, g.numSets, g.ways});
    }
    return geom;
}

infer::PermutationInferenceResult
infer_policy(const std::string& policy, unsigned ways,
             unsigned voteRepeats = 1, double disturb = 0.0)
{
    auto spec = singleLevelSpec(policy, ways);
    hw::NoiseConfig noise;
    noise.disturbProbability = disturb;
    hw::Machine machine(spec, 1, noise);
    MeasurementContext ctx(machine);
    SetProberConfig pc;
    pc.voteRepeats = voteRepeats;
    SetProber prober(ctx, geometryOf(spec), 0, pc);
    PermutationInference inference(prober);
    return inference.run();
}

TEST(PermutationInfer, RecoversLru)
{
    for (unsigned k : {2u, 4u, 8u}) {
        const auto result = infer_policy("lru", k);
        ASSERT_TRUE(result.isPermutation) << "k=" << k << ": "
                                          << result.failureReason;
        EXPECT_EQ(infer::canonicalPermutationName(*result.policy),
                  "LRU");
        EXPECT_GT(result.loadsUsed, 0u);
        EXPECT_GT(result.experimentsUsed, 0u);
    }
}

TEST(PermutationInfer, RecoversFifo)
{
    for (unsigned k : {2u, 4u, 8u}) {
        const auto result = infer_policy("fifo", k);
        ASSERT_TRUE(result.isPermutation) << "k=" << k << ": "
                                          << result.failureReason;
        EXPECT_EQ(infer::canonicalPermutationName(*result.policy),
                  "FIFO");
    }
}

TEST(PermutationInfer, RecoversTreePlru)
{
    for (unsigned k : {4u, 8u, 16u}) {
        const auto result = infer_policy("plru", k);
        ASSERT_TRUE(result.isPermutation) << "k=" << k << ": "
                                          << result.failureReason;
        EXPECT_EQ(infer::canonicalPermutationName(*result.policy),
                  "PLRU");
    }
}

TEST(PermutationInfer, RecoveredModelPredictsTheMachine)
{
    const auto result = infer_policy("plru", 8);
    ASSERT_TRUE(result.isPermutation);
    // The model must reproduce tree-PLRU block-level behaviour from a
    // flush, including cold fills.
    policy::SetModel hyp(result.policy->clone());
    policy::SetModel ref(policy::makePolicy("plru", 8));
    Rng rng(17);
    for (int i = 0; i < 4000; ++i) {
        const auto b = rng.nextBelow(11);
        ASSERT_EQ(hyp.access(b), ref.access(b)) << "step " << i;
    }
}

TEST(PermutationInfer, RefusesNru)
{
    const auto result = infer_policy("nru", 8);
    EXPECT_FALSE(result.isPermutation);
    EXPECT_FALSE(result.failureReason.empty());
}

TEST(PermutationInfer, RefusesQlru)
{
    const auto result = infer_policy("qlru:H1,M1,R0,U2", 8);
    EXPECT_FALSE(result.isPermutation);
}

TEST(PermutationInfer, RefusesSrrip)
{
    const auto result = infer_policy("srrip", 8);
    EXPECT_FALSE(result.isPermutation);
}

TEST(PermutationInfer, RefusesRandom)
{
    const auto result = infer_policy("random", 4);
    EXPECT_FALSE(result.isPermutation);
}

TEST(PermutationInfer, WorksAtOuterLevelThroughFiltering)
{
    auto spec = hw::reducedSpec(hw::catalogMachine("core2-e6750"), 512);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    SetProber prober(ctx, geometryOf(spec), 1);
    PermutationInference inference(prober);
    const auto result = inference.run();
    ASSERT_TRUE(result.isPermutation) << result.failureReason;
    EXPECT_EQ(infer::canonicalPermutationName(*result.policy), "PLRU");
    EXPECT_EQ(result.policy->ways(), 16u);
}

TEST(PermutationInfer, SurvivesNoiseWithVoting)
{
    const auto result = infer_policy("lru", 4, 9, 0.005);
    ASSERT_TRUE(result.isPermutation) << result.failureReason;
    EXPECT_EQ(infer::canonicalPermutationName(*result.policy), "LRU");
}

TEST(PermutationInfer, MeasurementCostGrowsPolynomially)
{
    // The probing cost must stay far below exhaustive-automaton
    // territory: quadratic-ish growth in the number of experiments.
    uint64_t cost4 = infer_policy("lru", 4).experimentsUsed;
    uint64_t cost8 = infer_policy("lru", 8).experimentsUsed;
    uint64_t cost16 = infer_policy("lru", 16).experimentsUsed;
    EXPECT_LT(cost8, cost4 * 8);
    EXPECT_LT(cost16, cost8 * 8);
    EXPECT_GT(cost8, cost4);
    EXPECT_GT(cost16, cost8);
}

} // namespace
