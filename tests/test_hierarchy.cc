/**
 * @file
 * Tests for the multi-level hierarchy model.
 */

#include <gtest/gtest.h>

#include "recap/cache/hierarchy.hh"
#include "recap/common/error.hh"

namespace
{

using namespace recap::cache;
using recap::UsageError;

Hierarchy
twoLevels()
{
    Hierarchy h(100);
    h.addLevel(Cache(Geometry{64, 2, 2}, "lru", "L1"), 4);  // 256 B
    h.addLevel(Cache(Geometry{64, 8, 4}, "lru", "L2"), 12); // 2 KiB
    return h;
}

TEST(Hierarchy, FirstAccessGoesToMemory)
{
    Hierarchy h = twoLevels();
    EXPECT_EQ(h.access(0), 2u); // depth() == memory
    EXPECT_EQ(h.accessLatency(0), 4u); // now an L1 hit
}

TEST(Hierarchy, FillOnMissPopulatesAllLevels)
{
    Hierarchy h = twoLevels();
    h.access(0);
    EXPECT_EQ(h.access(0), 0u); // L1 hit
    // Evict line 0 from tiny L1 with two conflicting lines.
    const Addr l1_stride = 64 * 2;
    h.access(l1_stride);
    h.access(2 * l1_stride);
    // L1 no longer has it, but L2 does.
    EXPECT_EQ(h.access(0), 1u);
    // And the L2 hit refilled L1.
    EXPECT_EQ(h.access(0), 0u);
}

TEST(Hierarchy, LatencyMapping)
{
    Hierarchy h = twoLevels();
    EXPECT_EQ(h.latencyOf(0), 4u);
    EXPECT_EQ(h.latencyOf(1), 12u);
    EXPECT_EQ(h.latencyOf(2), 100u);
    EXPECT_THROW(h.latencyOf(3), UsageError);
    EXPECT_EQ(h.memoryLatency(), 100u);
    EXPECT_EQ(h.depth(), 2u);
}

TEST(Hierarchy, FlushAllEmptiesEveryLevel)
{
    Hierarchy h = twoLevels();
    h.access(0);
    h.flushAll();
    EXPECT_EQ(h.access(0), 2u); // memory again
}

TEST(Hierarchy, StatsPerLevel)
{
    Hierarchy h = twoLevels();
    h.access(0);
    h.access(0);
    EXPECT_EQ(h.level(0).cache.stats().accesses, 2u);
    EXPECT_EQ(h.level(0).cache.stats().hits, 1u);
    // The L1 hit never reached L2.
    EXPECT_EQ(h.level(1).cache.stats().accesses, 1u);
    h.resetStats();
    EXPECT_EQ(h.level(0).cache.stats().accesses, 0u);
}

TEST(Hierarchy, RejectsDecreasingLatencies)
{
    Hierarchy h(100);
    h.addLevel(Cache(Geometry{64, 2, 2}, "lru", "L1"), 10);
    EXPECT_THROW(
        h.addLevel(Cache(Geometry{64, 8, 4}, "lru", "L2"), 5),
        UsageError);
}

TEST(Hierarchy, AccessWithoutLevelsRejected)
{
    Hierarchy h(100);
    EXPECT_THROW(h.access(0), UsageError);
}

} // namespace
