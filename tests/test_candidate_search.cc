/**
 * @file
 * Tests for the candidate-elimination search: every policy in the
 * registry must be recovered (up to behavioural equivalence) from
 * hit/miss observations of a hidden instance.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "recap/common/error.hh"
#include "recap/infer/candidate_search.hh"
#include "recap/infer/equivalence.hh"
#include "recap/infer/geometry_probe.hh"
#include "recap/infer/set_prober.hh"
#include "recap/hw/machine.hh"
#include "recap/policy/factory.hh"

namespace
{

using namespace recap;
using infer::CandidateSearch;
using infer::CandidateSearchConfig;
using infer::CandidateSearchResult;
using infer::DiscoveredGeometry;
using infer::MeasurementContext;
using infer::SetProber;
using infer::SetProberConfig;

hw::MachineSpec
singleLevelSpec(const std::string& policy, unsigned ways)
{
    hw::MachineSpec spec;
    spec.name = "probe-rig";
    spec.description = "single-level test machine";
    hw::CacheLevelSpec lvl;
    lvl.name = "L1";
    lvl.capacityBytes = uint64_t{64} * 64 * ways;
    lvl.ways = ways;
    lvl.hitLatency = 4;
    lvl.policySpec = policy;
    spec.levels = {lvl};
    spec.memoryLatency = 100;
    return spec;
}

CandidateSearchResult
search_for(const std::string& policy, unsigned ways)
{
    auto spec = singleLevelSpec(policy, ways);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    DiscoveredGeometry geom;
    geom.lineSize = 64;
    geom.levels.push_back({64, 64, ways});
    SetProber prober(ctx, geom, 0);
    CandidateSearch search(prober,
                           infer::defaultCandidateSpecs(ways), {});
    return search.run();
}

/** True iff the verdict is the target or behaviourally equals it. */
bool
verdictMatches(const CandidateSearchResult& result,
               const std::string& truth, unsigned ways)
{
    if (result.verdict.empty())
        return false;
    if (result.verdict == truth)
        return true;
    infer::EquivalenceConfig cfg;
    cfg.maxStates = 200000;
    const auto eq = infer::checkEquivalence(
        *policy::makePolicy(result.verdict, ways),
        *policy::makePolicy(truth, ways), cfg);
    return eq.equivalent && eq.exhausted;
}

TEST(CandidateSearch, DefaultLibraryShape)
{
    const auto specs8 = infer::defaultCandidateSpecs(8);
    // 10 named policies + 48 QLRU variants.
    EXPECT_EQ(specs8.size(), 10u + 48u);
    EXPECT_NE(std::find(specs8.begin(), specs8.end(), "plru"),
              specs8.end());
    const auto specs6 = infer::defaultCandidateSpecs(6);
    EXPECT_EQ(std::find(specs6.begin(), specs6.end(), "plru"),
              specs6.end());
}

TEST(CandidateSearch, RecoversEveryNamedPolicy)
{
    for (const std::string truth :
         {"lru", "fifo", "plru", "bitplru", "nru", "lip", "bip",
          "srrip", "brrip"}) {
        const auto result = search_for(truth, 8);
        EXPECT_TRUE(result.decided) << truth;
        EXPECT_TRUE(verdictMatches(result, truth, 8))
            << truth << " -> " << result.verdict;
    }
}

TEST(CandidateSearch, RecoversQlruVariants)
{
    for (const std::string truth :
         {"qlru:H1,M1,R0,U2", "qlru:H1,M3,R0,U2", "qlru:H0,M2,R1,U1",
          "qlru:H0,M1,R0,U0"}) {
        const auto result = search_for(truth, 8);
        EXPECT_TRUE(result.decided) << truth;
        EXPECT_TRUE(verdictMatches(result, truth, 8))
            << truth << " -> " << result.verdict;
    }
}

TEST(CandidateSearch, WorksAtOddAssociativity)
{
    const auto result = search_for("nru", 6);
    EXPECT_TRUE(result.decided);
    EXPECT_TRUE(verdictMatches(result, "nru", 6))
        << result.verdict;
}

TEST(CandidateSearch, RandomPolicyMatchesNothing)
{
    const auto result = search_for("random", 8);
    EXPECT_TRUE(result.survivors.empty());
    EXPECT_TRUE(result.verdict.empty());
    EXPECT_FALSE(result.decided);
}

TEST(CandidateSearch, ReportsMeasurementCost)
{
    const auto result = search_for("nru", 8);
    EXPECT_GT(result.roundsRun, 0u);
    EXPECT_GT(result.loadsUsed, 0u);
}

TEST(CandidateSearch, RestrictedLibraryStillDecides)
{
    auto spec = singleLevelSpec("fifo", 4);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    DiscoveredGeometry geom;
    geom.lineSize = 64;
    geom.levels.push_back({64, 64, 4});
    SetProber prober(ctx, geom, 0);
    CandidateSearch search(prober, {"lru", "fifo", "nru"}, {});
    const auto result = search.run();
    EXPECT_TRUE(result.decided);
    EXPECT_EQ(result.verdict, "fifo");
    ASSERT_EQ(result.survivors.size(), 1u);
}

TEST(CandidateSearch, EmptyLibraryRejected)
{
    auto spec = singleLevelSpec("lru", 4);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    DiscoveredGeometry geom;
    geom.lineSize = 64;
    geom.levels.push_back({64, 64, 4});
    SetProber prober(ctx, geom, 0);
    EXPECT_THROW(CandidateSearch(prober, {}, {}), UsageError);
}

} // namespace
