/**
 * @file
 * Tests for the query oracles: PolicyOracle must agree with a direct
 * SetModel walk, MachineOracle (both observation modes) must agree
 * with the machine's ground-truth policy model, and every experiment
 * must flow through MeasurementContext's cost accounting.
 */

#include <gtest/gtest.h>

#include "recap/common/rng.hh"
#include "recap/hw/catalog.hh"
#include "recap/hw/machine.hh"
#include "recap/infer/geometry_probe.hh"
#include "recap/infer/measurement.hh"
#include "recap/policy/factory.hh"
#include "recap/policy/set_model.hh"
#include "recap/query/oracle.hh"
#include "recap/query/parse.hh"

namespace
{

using namespace recap;
using infer::MeasurementContext;
using query::BlockId;
using query::CompiledQuery;
using query::MachineOracle;
using query::ObservationMode;
using query::PolicyOracle;
using query::QueryVerdict;
using query::Step;

CompiledQuery
parse(const std::string& text)
{
    return query::compile(query::parseQuery(text));
}

/** Reference walk: the verdict a fresh SetModel gives to a query. */
std::vector<bool>
modelWalk(policy::SetModel model, const CompiledQuery& q)
{
    model.flush();
    std::vector<bool> probeHits;
    for (const Step& step : q.steps) {
        if (step.flush) {
            model.flush();
            continue;
        }
        const bool hit = model.access(step.block);
        if (step.probe)
            probeHits.push_back(hit);
    }
    return probeHits;
}

std::vector<bool>
probeHits(const QueryVerdict& verdict)
{
    std::vector<bool> hits;
    for (const auto& probe : verdict.probes)
        hits.push_back(probe.hit);
    return hits;
}

TEST(PolicyOracle, AnswersTheFileHeaderExample)
{
    PolicyOracle oracle("lru", 4);
    const auto verdict = oracle.evaluate(parse("a b c d a? @ a?"));
    ASSERT_EQ(verdict.probes.size(), 2u);
    EXPECT_TRUE(verdict.probes[0].hit);
    EXPECT_EQ(verdict.probes[0].level, 0u);
    EXPECT_FALSE(verdict.probes[1].hit);
    EXPECT_EQ(verdict.probes[1].level, 1u);
    EXPECT_EQ(verdict.experiments, 1u);
    EXPECT_EQ(verdict.accesses, 6u);
}

TEST(PolicyOracle, MatchesDirectSetModelWalkAcrossBaselines)
{
    const char* kQueries[] = {
        "a b c d e f g h a? b? e?",
        "a b a b a c? ( d e )^3 a?",
        "a b c d @ a? b c d e a?",
        "x^9 y? x?",
    };
    for (const auto& spec : policy::baselineSpecs()) {
        for (unsigned ways : {4u, 8u}) {
            if (!policy::specSupportsWays(spec, ways))
                continue;
            PolicyOracle oracle(spec, ways, /*seed=*/3);
            for (const char* text : kQueries) {
                const CompiledQuery q = parse(text);
                const auto verdict = oracle.evaluate(q);
                policy::SetModel reference(
                    policy::makePolicy(spec, ways, /*seed=*/3));
                EXPECT_EQ(probeHits(verdict),
                          modelWalk(std::move(reference), q))
                    << spec << " k=" << ways << ": " << text;
            }
        }
    }
}

TEST(PolicyOracle, AccumulatesCost)
{
    PolicyOracle oracle("lru", 4);
    oracle.evaluate(parse("a b c?"));
    oracle.evaluate(parse("a b c d?"));
    EXPECT_EQ(oracle.experimentsRun(), 2u);
    EXPECT_EQ(oracle.accessesIssued(), 7u);
    EXPECT_EQ(oracle.ways(), 4u);
    EXPECT_NE(oracle.describe().find("lru"), std::string::npos);
}

TEST(SplitSegments, FlushesDelimitAndEmptyRunsDrop)
{
    const CompiledQuery q = parse("@ a b @ @ c? d @");
    const auto segments = query::splitSegments(q);
    ASSERT_EQ(segments.size(), 2u);
    EXPECT_EQ(segments[0].blocks, (std::vector<BlockId>{1, 2}));
    EXPECT_EQ(segments[0].stepIndex, (std::vector<uint32_t>{1, 2}));
    EXPECT_EQ(segments[1].blocks, (std::vector<BlockId>{3, 4}));
    EXPECT_EQ(segments[1].stepIndex, (std::vector<uint32_t>{5, 6}));
}

TEST(MachineOracle, CounterModeMatchesGroundTruthPolicy)
{
    for (unsigned level : {0u, 1u}) {
        const auto spec =
            hw::reducedSpec(hw::catalogMachine("core2-e6300"), 512);
        hw::Machine machine(spec);
        MeasurementContext ctx(machine);
        MachineOracle oracle(ctx, infer::assumedGeometry(spec), level);

        const char* kQueries[] = {
            "a b c d e f g h a? e? @ a?",
            "( a b c )^4 d e f g h i j a? b?",
        };
        for (const char* text : kQueries) {
            const CompiledQuery q = parse(text);
            const auto verdict = oracle.evaluate(q);
            policy::SetModel reference(
                machine.groundTruthPolicy(level));
            EXPECT_EQ(probeHits(verdict),
                      modelWalk(std::move(reference), q))
                << "L" << level + 1 << ": " << text;
        }
    }
}

TEST(MachineOracle, LatencyModeReportsServingLevels)
{
    const auto spec =
        hw::reducedSpec(hw::catalogMachine("core2-e6300"), 512);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    query::MachineOracleConfig cfg;
    cfg.mode = ObservationMode::kLatency;
    MachineOracle oracle(ctx, infer::assumedGeometry(spec),
                         /*targetLevel=*/1, cfg);
    EXPECT_NE(oracle.describe().find("latency"), std::string::npos);

    // Filling the 8-way L2 set and re-probing: every block is still
    // L2-resident and inner levels are evicted before each timed
    // load, so probes serve from L2 (level 1). A fresh block misses
    // the whole hierarchy: served by memory (level == depth).
    const auto verdict =
        oracle.evaluate(parse("a b c d e f g h a? h? fresh?"));
    ASSERT_EQ(verdict.probes.size(), 3u);
    EXPECT_TRUE(verdict.probes[0].hit);
    EXPECT_EQ(verdict.probes[0].level, 1u);
    EXPECT_TRUE(verdict.probes[1].hit);
    EXPECT_EQ(verdict.probes[1].level, 1u);
    EXPECT_FALSE(verdict.probes[2].hit);
    EXPECT_EQ(verdict.probes[2].level, ctx.depth());
}

TEST(MachineOracle, LatencyAndCounterModesAgreeOnHits)
{
    const auto spec =
        hw::reducedSpec(hw::catalogMachine("sandybridge-i5"), 512);
    const char* kText = "a b c d e f a? b? @ c? ( g h )^2 g?";
    std::vector<bool> byMode[2];
    for (int m = 0; m < 2; ++m) {
        hw::Machine machine(spec);
        MeasurementContext ctx(machine);
        query::MachineOracleConfig cfg;
        cfg.mode = m == 0 ? ObservationMode::kCounter
                          : ObservationMode::kLatency;
        MachineOracle oracle(ctx, infer::assumedGeometry(spec), 2,
                             cfg);
        byMode[m] = probeHits(oracle.evaluate(parse(kText)));
    }
    EXPECT_EQ(byMode[0], byMode[1]);
}

TEST(MachineOracle, EveryExperimentFlowsThroughTheContext)
{
    const auto spec =
        hw::reducedSpec(hw::catalogMachine("core2-e6300"), 512);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    MachineOracle oracle(ctx, infer::assumedGeometry(spec), 1);

    const uint64_t expBefore = ctx.experimentsRun();
    const uint64_t loadsBefore = ctx.loadsIssued();
    const auto verdict = oracle.evaluate(parse("a b c a? @ b?"));

    // Two flush-delimited segments -> two experiments, and the
    // oracle's own counters are exactly the context deltas (the
    // centralized-accounting contract).
    EXPECT_EQ(verdict.experiments, 2u);
    EXPECT_EQ(oracle.experimentsRun(),
              ctx.experimentsRun() - expBefore);
    EXPECT_EQ(oracle.accessesIssued(), ctx.loadsIssued() - loadsBefore);
    EXPECT_EQ(verdict.accesses, oracle.accessesIssued());
    EXPECT_GT(verdict.accesses, 0u);
}

TEST(MachineOracle, VotingDefeatsDisturbanceNoise)
{
    const auto spec =
        hw::reducedSpec(hw::catalogMachine("core2-e6300"), 512);
    hw::NoiseConfig noise;
    noise.disturbProbability = 0.02;
    hw::Machine machine(spec, /*seed=*/1, noise);
    MeasurementContext ctx(machine);
    query::MachineOracleConfig cfg;
    cfg.prober.voteRepeats = 9;
    MachineOracle oracle(ctx, infer::assumedGeometry(spec), 0, cfg);

    Rng rng(5);
    std::vector<BlockId> seq;
    for (int i = 0; i < 40; ++i)
        seq.push_back(1 + rng.nextBelow(10));
    const auto verdict =
        oracle.evaluate(query::makeObserveAllQuery(seq));

    policy::SetModel model(machine.groundTruthPolicy(0));
    unsigned mismatches = 0;
    for (size_t i = 0; i < seq.size(); ++i)
        if (verdict.probes[i].hit != model.access(seq[i]))
            ++mismatches;
    EXPECT_LE(mismatches, 1u);
}

} // namespace
