/**
 * @file
 * Tests for trace serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "recap/common/error.hh"
#include "recap/common/rng.hh"
#include "recap/trace/generators.hh"
#include "recap/trace/io.hh"

namespace
{

using namespace recap;
using namespace recap::trace;

TEST(TraceIo, RoundTripThroughStream)
{
    const Trace original = randomUniform(64 * 1024, 500, 3);
    std::stringstream ss;
    writeTrace(ss, original, "unit test");
    const Trace loaded = readTrace(ss);
    EXPECT_EQ(loaded, original);
}

TEST(TraceIo, HeaderAndCommentsEmitted)
{
    std::stringstream ss;
    writeTrace(ss, {0x40, 0x80}, "hello");
    const std::string text = ss.str();
    EXPECT_EQ(text.rfind("# recap-trace v1\n", 0), 0u);
    EXPECT_NE(text.find("# hello"), std::string::npos);
    EXPECT_NE(text.find("0x40"), std::string::npos);
}

TEST(TraceIo, AcceptsBareHexAndSkipsComments)
{
    std::stringstream ss;
    ss << "# recap-trace v1\n"
          "# captured on rig 7\n"
          "0x1000\n"
          "\n"
          "ff40\n"
          "# trailing comment\n"
          "0XABC0\n";
    const Trace t = readTrace(ss);
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0], 0x1000u);
    EXPECT_EQ(t[1], 0xff40u);
    EXPECT_EQ(t[2], 0xABC0u);
}

TEST(TraceIo, RejectsMissingHeader)
{
    std::stringstream ss;
    ss << "0x1000\n";
    EXPECT_THROW(readTrace(ss), UsageError);
}

TEST(TraceIo, RejectsMalformedLines)
{
    std::stringstream ss;
    ss << "# recap-trace v1\n"
          "0xZZZ\n";
    EXPECT_THROW(readTrace(ss), UsageError);

    std::stringstream partial;
    partial << "# recap-trace v1\n"
               "0x10 junk\n";
    EXPECT_THROW(readTrace(partial), UsageError);
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    std::stringstream ss;
    writeTrace(ss, {});
    EXPECT_TRUE(readTrace(ss).empty());
}

TEST(TraceIo, FileRoundTrip)
{
    const std::string path = "/tmp/recap_trace_io_test.txt";
    const Trace original = sequentialScan(4096, 2);
    saveTraceFile(path, original, "file round trip");
    const Trace loaded = loadTraceFile(path);
    EXPECT_EQ(loaded, original);
    std::remove(path.c_str());
}

TEST(TraceIo, LoadMissingFileThrows)
{
    EXPECT_THROW(loadTraceFile("/nonexistent/path/trace.txt"),
                 UsageError);
}

TEST(TraceIo, LargeAddressesSurvive)
{
    const Trace original{uint64_t{1} << 48,
                         (uint64_t{1} << 48) + 64,
                         ~uint64_t{0} - 63};
    std::stringstream ss;
    writeTrace(ss, original);
    EXPECT_EQ(readTrace(ss), original);
}

// ------------------------------------------- v2 (PC-annotated)

TEST(PcTraceIo, RoundTripThroughStream)
{
    const PcTrace original =
        withRoundRobinPcs(randomUniform(64 * 1024, 500, 3), 3);
    std::stringstream ss;
    writePcTrace(ss, original, "pc round trip");
    const PcTrace loaded = readPcTrace(ss);
    EXPECT_EQ(loaded, original);
}

TEST(PcTraceIo, EmitsV2HeaderAndPairs)
{
    std::stringstream ss;
    writePcTrace(ss, {{0x40, 0x400000}, {0x80, 0x400004}}, "hello");
    const std::string text = ss.str();
    EXPECT_EQ(text.rfind("# recap-trace v2\n", 0), 0u);
    EXPECT_NE(text.find("# hello"), std::string::npos);
    EXPECT_NE(text.find("0x40 0x400000"), std::string::npos);
    EXPECT_NE(text.find("0x80 0x400004"), std::string::npos);
}

TEST(PcTraceIo, ReaderAcceptsLegacyV1WithZeroPcs)
{
    // Legacy PC-free traces feed PC-aware consumers unchanged.
    const Trace legacy = sequentialScan(4096, 2);
    std::stringstream ss;
    writeTrace(ss, legacy, "captured before v2 existed");
    const PcTrace loaded = readPcTrace(ss);
    ASSERT_EQ(loaded.size(), legacy.size());
    for (size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_EQ(loaded[i].addr, legacy[i]);
        EXPECT_EQ(loaded[i].pc, 0u);
    }
    EXPECT_EQ(addressesOf(loaded), legacy);
}

TEST(PcTraceIo, AddressReaderStaysV1Only)
{
    // readTrace() must not silently drop the PC column.
    std::stringstream ss;
    writePcTrace(ss, {{0x40, 0x400000}});
    EXPECT_THROW(readTrace(ss), UsageError);
}

TEST(PcTraceIo, RejectsMalformedLines)
{
    std::stringstream junkPc;
    junkPc << "# recap-trace v2\n"
              "0x10 junk\n";
    EXPECT_THROW(readPcTrace(junkPc), UsageError);

    std::stringstream trailing;
    trailing << "# recap-trace v2\n"
                "0x10 0x20 junk\n";
    EXPECT_THROW(readPcTrace(trailing), UsageError);

    std::stringstream noHeader;
    noHeader << "0x10 0x20\n";
    EXPECT_THROW(readPcTrace(noHeader), UsageError);
}

TEST(PcTraceIo, FileRoundTrip)
{
    const std::string path = "/tmp/recap_pc_trace_io_test.txt";
    const PcTrace original =
        withRoundRobinPcs(sequentialScan(4096, 2), 2, 0x7f0000);
    savePcTraceFile(path, original, "pc file round trip");
    const PcTrace loaded = loadPcTraceFile(path);
    EXPECT_EQ(loaded, original);
    std::remove(path.c_str());
}

TEST(PcTraceIo, RoundRobinAnnotationCycles)
{
    const PcTrace t = withRoundRobinPcs({0x0, 0x40, 0x80, 0xc0}, 3);
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0].pc, 0x400000u);
    EXPECT_EQ(t[1].pc, 0x400004u);
    EXPECT_EQ(t[2].pc, 0x400008u);
    EXPECT_EQ(t[3].pc, 0x400000u); // wraps around
}

TEST(PcTraceIo, ReuseStreamMixAlternatesTwoPcs)
{
    const PcTrace t = pcReuseStreamMix(4 * 64, 64, 7);
    ASSERT_EQ(t.size(), 64u);
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(t[i].pc, i % 2 == 0 ? 0x401000u : 0x402000u) << i;
        if (i % 2 == 0) { // loop accesses stay inside the hot set
            EXPECT_LT(t[i].addr, (1u << 20) + 4 * 64);
        }
    }
    // Deterministic in the seed.
    EXPECT_EQ(pcReuseStreamMix(4 * 64, 64, 7), t);
    EXPECT_NE(pcReuseStreamMix(4 * 64, 64, 8), t);
}

TEST(PcTraceIo, FuzzRoundTripRandomStreams)
{
    // Random address/PC pairs across the full 64-bit range — the
    // writer/reader pair must be lossless for every stream shape,
    // including empty traces and repeated pairs.
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        Rng rng(seed);
        PcTrace original(rng.nextBelow(200));
        for (auto& access : original) {
            access.addr = rng.next();
            access.pc = rng.nextBool(0.1) ? 0 : rng.next();
        }
        std::stringstream ss;
        writePcTrace(ss, original, "fuzz seed " +
                                       std::to_string(seed));
        EXPECT_EQ(readPcTrace(ss), original) << "seed " << seed;
    }
}

TEST(PcTraceIo, FuzzLegacyV1StreamsReadAsZeroPcs)
{
    // Back-compat regression: every v1 address trace must load
    // through the PC reader with all PCs zero and addresses intact.
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        Rng rng(seed);
        Trace addrs(1 + rng.nextBelow(100));
        for (auto& a : addrs)
            a = rng.next();
        std::stringstream ss;
        writeTrace(ss, addrs, "legacy fuzz");
        const PcTrace loaded = readPcTrace(ss);
        ASSERT_EQ(loaded.size(), addrs.size()) << "seed " << seed;
        for (size_t i = 0; i < loaded.size(); ++i) {
            EXPECT_EQ(loaded[i].addr, addrs[i]);
            EXPECT_EQ(loaded[i].pc, 0u);
        }
        // And the address projection round-trips the other way too.
        std::stringstream v1;
        writeTrace(v1, addressesOf(loaded), "");
        EXPECT_EQ(readTrace(v1), addrs);
    }
}

} // namespace
