/**
 * @file
 * Tests for trace serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "recap/common/error.hh"
#include "recap/trace/generators.hh"
#include "recap/trace/io.hh"

namespace
{

using namespace recap;
using namespace recap::trace;

TEST(TraceIo, RoundTripThroughStream)
{
    const Trace original = randomUniform(64 * 1024, 500, 3);
    std::stringstream ss;
    writeTrace(ss, original, "unit test");
    const Trace loaded = readTrace(ss);
    EXPECT_EQ(loaded, original);
}

TEST(TraceIo, HeaderAndCommentsEmitted)
{
    std::stringstream ss;
    writeTrace(ss, {0x40, 0x80}, "hello");
    const std::string text = ss.str();
    EXPECT_EQ(text.rfind("# recap-trace v1\n", 0), 0u);
    EXPECT_NE(text.find("# hello"), std::string::npos);
    EXPECT_NE(text.find("0x40"), std::string::npos);
}

TEST(TraceIo, AcceptsBareHexAndSkipsComments)
{
    std::stringstream ss;
    ss << "# recap-trace v1\n"
          "# captured on rig 7\n"
          "0x1000\n"
          "\n"
          "ff40\n"
          "# trailing comment\n"
          "0XABC0\n";
    const Trace t = readTrace(ss);
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0], 0x1000u);
    EXPECT_EQ(t[1], 0xff40u);
    EXPECT_EQ(t[2], 0xABC0u);
}

TEST(TraceIo, RejectsMissingHeader)
{
    std::stringstream ss;
    ss << "0x1000\n";
    EXPECT_THROW(readTrace(ss), UsageError);
}

TEST(TraceIo, RejectsMalformedLines)
{
    std::stringstream ss;
    ss << "# recap-trace v1\n"
          "0xZZZ\n";
    EXPECT_THROW(readTrace(ss), UsageError);

    std::stringstream partial;
    partial << "# recap-trace v1\n"
               "0x10 junk\n";
    EXPECT_THROW(readTrace(partial), UsageError);
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    std::stringstream ss;
    writeTrace(ss, {});
    EXPECT_TRUE(readTrace(ss).empty());
}

TEST(TraceIo, FileRoundTrip)
{
    const std::string path = "/tmp/recap_trace_io_test.txt";
    const Trace original = sequentialScan(4096, 2);
    saveTraceFile(path, original, "file round trip");
    const Trace loaded = loadTraceFile(path);
    EXPECT_EQ(loaded, original);
    std::remove(path.c_str());
}

TEST(TraceIo, LoadMissingFileThrows)
{
    EXPECT_THROW(loadTraceFile("/nonexistent/path/trace.txt"),
                 UsageError);
}

TEST(TraceIo, LargeAddressesSurvive)
{
    const Trace original{uint64_t{1} << 48,
                         (uint64_t{1} << 48) + 64,
                         ~uint64_t{0} - 63};
    std::stringstream ss;
    writeTrace(ss, original);
    EXPECT_EQ(readTrace(ss), original);
}

} // namespace
