/**
 * @file
 * Differential tests of the compiled policy automata: a
 * CompiledPolicy must be bit-exact against the interpreted policy it
 * was compiled from — same victims, same state keys — under long
 * random input words, under clone/reset interleavings, and must fall
 * back cleanly when the state space exceeds the compile budget.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <utility>

#include "recap/common/rng.hh"
#include "recap/policy/compiled.hh"
#include "recap/policy/factory.hh"

namespace recap::policy
{
namespace
{

/** Budget the differential suite compiles under: generous enough
 * for every tractable catalog automaton, small enough that
 * intractable ones (16-way true LRU, BIP's epoch counter) abort
 * quickly. 16-way gets a tighter cap — its tractable automata
 * (PLRU, FIFO) are small, and enumerating 2^16-state ones on every
 * test run is time better spent elsewhere. */
CompileBudget
testBudget(unsigned ways = 8)
{
    CompileBudget budget;
    budget.maxStates = ways >= 16 ? (1u << 15) : (1u << 16);
    return budget;
}

class CompiledDifferential
    : public ::testing::TestWithParam<std::string>
{};

/**
 * 10k random touch/fill inputs in lockstep, comparing victim() at
 * every step and stateKey() throughout. Covers ways 2/4/8/16 (where
 * the spec supports them); specs whose automaton exceeds the budget
 * at a given associativity are exercised via the fallback test
 * below instead.
 */
TEST_P(CompiledDifferential, LockstepAgainstInterpreted)
{
    const std::string spec = GetParam();
    for (const unsigned ways : {2u, 4u, 8u, 16u}) {
        if (!specSupportsWays(spec, ways))
            continue;
        const CompiledTablePtr table =
            compiledTableFor(spec, ways, testBudget(ways));
        if (!table)
            continue; // over budget here; see OverBudgetFallsBack
        ASSERT_EQ(table->ways(), ways);

        PolicyPtr interpreted = makePolicy(spec, ways);
        CompiledPolicy compiled(table);
        interpreted->reset();
        compiled.reset();
        ASSERT_EQ(compiled.name(), interpreted->name());

        Rng rng(0xC0FFEE ^ ways);
        uint64_t hits = 0;
        for (unsigned step = 0; step < 10000; ++step) {
            ASSERT_EQ(compiled.victim(), interpreted->victim())
                << spec << " k=" << ways << " step " << step;
            if (rng.nextBelow(2) == 0) {
                const Way w =
                    static_cast<Way>(rng.nextBelow(ways));
                compiled.touch(w);
                interpreted->touch(w);
                ++hits;
            } else {
                const Way w =
                    static_cast<Way>(rng.nextBelow(ways));
                compiled.fill(w);
                interpreted->fill(w);
            }
            if (step % 64 == 0) {
                ASSERT_EQ(compiled.stateKey(),
                          interpreted->stateKey())
                    << spec << " k=" << ways << " step " << step;
            }
        }
        EXPECT_GT(hits, 0u);
        EXPECT_EQ(compiled.stateKey(), interpreted->stateKey())
            << spec << " k=" << ways << " final state";
    }
}

/**
 * Fuzz: interleave clone(), reset(), touch() and fill() and keep
 * comparing — clones must be independent of their source, and reset
 * must land both sides back on the same state.
 */
TEST_P(CompiledDifferential, CloneResetFillFuzz)
{
    const std::string spec = GetParam();
    const unsigned ways = 4;
    if (!specSupportsWays(spec, ways))
        GTEST_SKIP() << spec << " does not support 4 ways";
    const CompiledTablePtr table =
        compiledTableFor(spec, ways, testBudget());
    if (!table)
        GTEST_SKIP() << spec << " exceeds the compile budget";

    PolicyPtr interpreted = makePolicy(spec, ways);
    PolicyPtr compiled = std::make_unique<CompiledPolicy>(table);
    interpreted->reset();
    compiled->reset();

    Rng rng(2026);
    for (unsigned step = 0; step < 2000; ++step) {
        switch (rng.nextBelow(8)) {
          case 0: {
            // Continue on clones; mutate the originals afterwards to
            // prove the clones do not alias them.
            PolicyPtr interpretedClone = interpreted->clone();
            PolicyPtr compiledClone = compiled->clone();
            interpreted->fill(0);
            compiled->fill(0);
            interpreted = std::move(interpretedClone);
            compiled = std::move(compiledClone);
            break;
          }
          case 1:
            interpreted->reset();
            compiled->reset();
            break;
          case 2:
          case 3:
          case 4: {
            const Way w = static_cast<Way>(rng.nextBelow(ways));
            interpreted->touch(w);
            compiled->touch(w);
            break;
          }
          default: {
            const Way w = static_cast<Way>(rng.nextBelow(ways));
            interpreted->fill(w);
            compiled->fill(w);
            break;
          }
        }
        ASSERT_EQ(compiled->victim(), interpreted->victim())
            << spec << " step " << step;
        ASSERT_EQ(compiled->stateKey(), interpreted->stateKey())
            << spec << " step " << step;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, CompiledDifferential,
    ::testing::ValuesIn(baselineSpecs()),
    [](const ::testing::TestParamInfo<std::string>& info) {
        std::string name = info.param;
        for (char& c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

/**
 * Regression: over-budget (or inherently unbounded) state spaces
 * must yield a clean fallback — compiledTableFor says no, and
 * makeCompiledOrFallback hands back the interpreted policy with
 * unchanged behaviour.
 */
TEST(CompiledFallback, OverBudgetFallsBack)
{
    // Stochastic policy: its state key encodes an unbounded RNG
    // draw counter, so enumeration can never terminate in budget.
    EXPECT_EQ(compiledTableFor("random", 8, testBudget()), nullptr);

    // Deliberately tiny budget: true LRU at 4 ways has 4! = 24
    // states, more than the 8 allowed here.
    CompileBudget tiny;
    tiny.maxStates = 8;
    EXPECT_EQ(compiledTableFor("lru", 4, tiny), nullptr);

    // The fallback is the interpreted policy, not a wrapper...
    PolicyPtr fallback = makeCompiledOrFallback("lru", 4, 1, tiny);
    ASSERT_NE(fallback, nullptr);
    EXPECT_EQ(dynamic_cast<CompiledPolicy*>(fallback.get()), nullptr);

    // ...and behaves exactly like one built directly.
    PolicyPtr reference = makePolicy("lru", 4);
    reference->reset();
    fallback->reset();
    Rng rng(99);
    for (unsigned step = 0; step < 500; ++step) {
        const Way w = static_cast<Way>(rng.nextBelow(4));
        if (rng.nextBelow(2) == 0) {
            reference->touch(w);
            fallback->touch(w);
        } else {
            reference->fill(w);
            fallback->fill(w);
        }
        ASSERT_EQ(fallback->victim(), reference->victim());
        ASSERT_EQ(fallback->stateKey(), reference->stateKey());
    }

    // With an adequate budget the same call compiles.
    PolicyPtr compiled = makeCompiledOrFallback("lru", 4, 1);
    ASSERT_NE(compiled, nullptr);
    EXPECT_NE(dynamic_cast<CompiledPolicy*>(compiled.get()), nullptr);
    EXPECT_EQ(compiled->name(), reference->name());
}

/** The memoized lookup returns one shared table per (spec, ways). */
TEST(CompiledFallback, TableIsMemoized)
{
    const CompiledTablePtr a = compiledTableFor("plru", 8, {});
    const CompiledTablePtr b = compiledTableFor("plru", 8, {});
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(a->numStates(), 128u); // 2^(8-1) PLRU tree states
}

/** Unknown specs and unsupported associativities never compile. */
TEST(CompiledFallback, RejectsInvalidSpecs)
{
    EXPECT_EQ(compiledTableFor("no-such-policy", 8, {}), nullptr);
    EXPECT_EQ(compiledTableFor("plru", 3, {}), nullptr);
}

} // namespace
} // namespace recap::policy
