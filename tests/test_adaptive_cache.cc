/**
 * @file
 * Tests for the set-dueling adaptive cache mode.
 */

#include <gtest/gtest.h>

#include "recap/cache/cache.hh"
#include "recap/common/error.hh"

namespace
{

using namespace recap::cache;
using recap::UsageError;

Geometry
duelGeom()
{
    return Geometry{64, 64, 4}; // 64 sets, 4 ways
}

DuelingConfig
duelCfg(unsigned leaders = 4, unsigned pselBits = 6)
{
    DuelingConfig d;
    d.leaderSetsPerPolicy = leaders;
    d.pselBits = pselBits;
    return d;
}

Cache
makeAdaptive()
{
    return Cache(duelGeom(), "lru", "fifo", duelCfg(), "L3");
}

TEST(AdaptiveCache, ReportsAdaptiveAndMidpointPsel)
{
    Cache c = makeAdaptive();
    EXPECT_TRUE(c.isAdaptive());
    EXPECT_EQ(c.pselMidpoint(), 32u);
    EXPECT_EQ(c.psel(), 32u);
    EXPECT_EQ(c.policySpec(), "lru");
    EXPECT_EQ(c.policySpecB(), "fifo");
}

TEST(AdaptiveCache, LeaderPlacementIsEvenlySpread)
{
    Cache c = makeAdaptive();
    unsigned leaders_a = 0;
    unsigned leaders_b = 0;
    for (unsigned s = 0; s < 64; ++s) {
        switch (c.setRole(s)) {
          case Cache::SetRole::kLeaderA:
            ++leaders_a;
            EXPECT_EQ(s % 16, 0u);
            break;
          case Cache::SetRole::kLeaderB:
            ++leaders_b;
            EXPECT_EQ(s % 16, 8u);
            break;
          case Cache::SetRole::kFollower:
            break;
        }
    }
    EXPECT_EQ(leaders_a, 4u);
    EXPECT_EQ(leaders_b, 4u);
}

TEST(AdaptiveCache, MissesInLeadersTrainPsel)
{
    Cache c = makeAdaptive();
    const unsigned before = c.psel();
    // Generate misses in an A-leader set (set 0).
    const Addr stride = 64ull * 64;
    for (unsigned i = 0; i < 10; ++i)
        c.access(i * stride);
    EXPECT_GT(c.psel(), before);

    // And misses in a B-leader set (set 8) push the other way.
    const unsigned mid = c.psel();
    for (unsigned i = 0; i < 10; ++i)
        c.access(8 * 64 + i * stride);
    EXPECT_LT(c.psel(), mid);
}

TEST(AdaptiveCache, FollowerMissesDoNotTrain)
{
    Cache c = makeAdaptive();
    const unsigned before = c.psel();
    // Set 1 is a follower.
    const Addr stride = 64ull * 64;
    for (unsigned i = 0; i < 50; ++i)
        c.access(1 * 64 + i * stride);
    EXPECT_EQ(c.psel(), before);
}

TEST(AdaptiveCache, PselSaturatesAtBounds)
{
    Cache c = makeAdaptive();
    const Addr stride = 64ull * 64;
    for (unsigned i = 0; i < 1000; ++i)
        c.access(i * stride); // A-leader misses
    EXPECT_EQ(c.psel(), 63u); // saturated at 2^6 - 1
    for (unsigned i = 0; i < 2000; ++i)
        c.access(8 * 64 + i * stride); // B-leader misses
    EXPECT_EQ(c.psel(), 0u);
}

TEST(AdaptiveCache, FlushPreservesPsel)
{
    Cache c = makeAdaptive();
    const Addr stride = 64ull * 64;
    for (unsigned i = 0; i < 20; ++i)
        c.access(i * stride);
    const unsigned trained = c.psel();
    ASSERT_NE(trained, c.pselMidpoint());
    c.flush();
    EXPECT_EQ(c.psel(), trained);
    EXPECT_FALSE(c.probe(0));
}

TEST(AdaptiveCache, FollowersFollowTheSelectedPolicy)
{
    // Distinguishing sequence in a follower set (set 1): refresh the
    // oldest, then evict. LRU keeps the refreshed line, FIFO doesn't.
    const Addr base = 1 * 64;
    const Addr stride = 64ull * 64;
    auto run_follower_probe = [&](Cache& c) {
        c.flush();
        c.access(base);
        c.access(base + stride);
        c.access(base + 2 * stride);
        c.access(base + 3 * stride);
        c.access(base);                  // refresh oldest
        c.access(base + 4 * stride);     // force eviction
        return c.probe(base);            // true under LRU only
    };

    // Train towards A (= LRU): misses in B-leader sets.
    Cache c = makeAdaptive();
    for (unsigned i = 0; i < 200; ++i)
        c.access(8 * 64 + i * stride);
    ASSERT_LT(c.psel(), c.pselMidpoint());
    EXPECT_TRUE(run_follower_probe(c));

    // Train towards B (= FIFO): misses in A-leader sets.
    for (unsigned i = 0; i < 400; ++i)
        c.access(0 * 64 + i * stride);
    ASSERT_GE(c.psel(), c.pselMidpoint());
    EXPECT_FALSE(run_follower_probe(c));
}

TEST(AdaptiveCache, LeadersIgnoreTraining)
{
    // The A-leader (set 0) behaves like LRU regardless of PSEL.
    Cache c = makeAdaptive();
    const Addr stride = 64ull * 64;
    // Saturate PSEL towards B.
    for (unsigned i = 0; i < 500; ++i)
        c.access(0 + (i + 100) * stride);
    c.flush();
    c.access(0);
    c.access(stride);
    c.access(2 * stride);
    c.access(3 * stride);
    c.access(0);              // refresh under LRU
    c.access(4 * stride);
    EXPECT_TRUE(c.probe(0)); // LRU behaviour, despite PSEL at B
}

TEST(AdaptiveCache, RejectsBadDuelConfigs)
{
    EXPECT_THROW(Cache(duelGeom(), "lru", "fifo", duelCfg(64), "x"),
                 UsageError);
    EXPECT_THROW(Cache(duelGeom(), "lru", "fifo", duelCfg(4, 0), "x"),
                 UsageError);
    EXPECT_THROW(Cache(duelGeom(), "lru", "fifo", duelCfg(4, 17), "x"),
                 UsageError);
}

} // namespace
