/**
 * @file
 * Tests for the common resilience primitives: absolute deadlines,
 * seed-deterministic retry backoff, and the circuit-breaker state
 * machine (trip / half-open probe / close), including the pinned
 * transition log the chaos harness relies on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "recap/common/resilience.hh"

namespace
{

using recap::AbortReason;
using recap::abortReasonName;
using recap::BreakerConfig;
using recap::breakerStateName;
using recap::CircuitBreaker;
using recap::Deadline;
using recap::resolveClock;
using recap::RetryConfig;
using recap::retryBackoffMillis;

using State = CircuitBreaker::State;

TEST(Deadline, UnboundedNeverExpires)
{
    const Deadline d = Deadline::unbounded();
    EXPECT_FALSE(d.bounded());
    EXPECT_FALSE(d.expired(0));
    EXPECT_FALSE(d.expired(std::numeric_limits<uint64_t>::max()));
    EXPECT_EQ(d.remainingMillis(12345),
              std::numeric_limits<uint64_t>::max());
    // Budget 0 means "no deadline".
    EXPECT_FALSE(Deadline::in(1000, 0).bounded());
}

TEST(Deadline, ExpiresStrictlyAfterTheBudget)
{
    const Deadline d = Deadline::in(100, 50);
    EXPECT_TRUE(d.bounded());
    EXPECT_FALSE(d.expired(100));
    EXPECT_FALSE(d.expired(150)); // at the deadline: still fine
    EXPECT_TRUE(d.expired(151));
    EXPECT_EQ(d.remainingMillis(100), 50u);
    EXPECT_EQ(d.remainingMillis(149), 1u);
    EXPECT_EQ(d.remainingMillis(200), 0u);
    // A clock that jumps backwards only delays expiry, never wedges.
    EXPECT_FALSE(d.expired(10));
}

TEST(Deadline, SaturatesInsteadOfOverflowing)
{
    const uint64_t max = std::numeric_limits<uint64_t>::max();
    const Deadline d = Deadline::in(max - 10, 100);
    EXPECT_TRUE(d.bounded());
    EXPECT_EQ(d.atMillis, max);
    EXPECT_FALSE(d.expired(max));
}

TEST(Resilience, ResolveClockDefaultsToSteadyTime)
{
    const auto clock = resolveClock(nullptr);
    const uint64_t a = clock();
    const uint64_t b = clock();
    EXPECT_LE(a, b);
    // An injected clock is passed through untouched.
    const auto scripted = resolveClock([] { return uint64_t{42}; });
    EXPECT_EQ(scripted(), 42u);
}

TEST(Resilience, AbortReasonNamesAreCanonical)
{
    EXPECT_STREQ(abortReasonName(AbortReason::kTimeout), "timeout");
    EXPECT_STREQ(abortReasonName(AbortReason::kAccessBudget),
                 "access-budget");
    EXPECT_STREQ(abortReasonName(AbortReason::kShed), "shed");
    EXPECT_STREQ(abortReasonName(AbortReason::kBreakerOpen),
                 "breaker-open");
    EXPECT_STREQ(abortReasonName(AbortReason::kNoQuorum), "no-quorum");
    EXPECT_STREQ(abortReasonName(AbortReason::kOracleFailure),
                 "oracle-failure");
    EXPECT_STREQ(abortReasonName(AbortReason::kDisconnect),
                 "disconnect");
}

TEST(RetryBackoff, GrowsExponentiallyUpToTheCeiling)
{
    RetryConfig cfg;
    cfg.baseDelayMillis = 2;
    cfg.maxDelayMillis = 100;
    cfg.jitter = 0.0; // exact values
    EXPECT_EQ(retryBackoffMillis(cfg, 0, 1), 2u);
    EXPECT_EQ(retryBackoffMillis(cfg, 1, 1), 4u);
    EXPECT_EQ(retryBackoffMillis(cfg, 2, 1), 8u);
    EXPECT_EQ(retryBackoffMillis(cfg, 5, 1), 64u);
    EXPECT_EQ(retryBackoffMillis(cfg, 6, 1), 100u);  // clamped
    EXPECT_EQ(retryBackoffMillis(cfg, 40, 1), 100u); // way past
}

TEST(RetryBackoff, JitterIsSeedDeterministicAndBounded)
{
    RetryConfig cfg;
    cfg.baseDelayMillis = 40;
    cfg.maxDelayMillis = 40;
    cfg.jitter = 0.5;
    for (unsigned retry = 0; retry < 8; ++retry) {
        const uint64_t a = retryBackoffMillis(cfg, retry, 7);
        const uint64_t b = retryBackoffMillis(cfg, retry, 7);
        EXPECT_EQ(a, b) << "retry " << retry;
        EXPECT_GE(a, 20u) << "retry " << retry; // 40 * (1 - 0.5)
        EXPECT_LE(a, 60u) << "retry " << retry; // 40 * (1 + 0.5)
    }
    // Different seeds decorrelate the schedule.
    bool anyDifferent = false;
    for (unsigned retry = 0; retry < 8; ++retry)
        if (retryBackoffMillis(cfg, retry, 7) !=
            retryBackoffMillis(cfg, retry, 8))
            anyDifferent = true;
    EXPECT_TRUE(anyDifferent);
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresOnly)
{
    BreakerConfig cfg;
    cfg.failureThreshold = 3;
    CircuitBreaker breaker(cfg);
    EXPECT_EQ(breaker.state(), State::kClosed);

    breaker.onFailure(1);
    breaker.onFailure(2);
    breaker.onSuccess(3); // resets the consecutive count
    breaker.onFailure(4);
    breaker.onFailure(5);
    EXPECT_EQ(breaker.state(), State::kClosed);
    EXPECT_TRUE(breaker.allow(6));

    breaker.onFailure(7); // third consecutive: trips
    EXPECT_EQ(breaker.state(), State::kOpen);
    EXPECT_EQ(breaker.counters().trips, 1u);
}

TEST(CircuitBreakerTest, OpenRejectsUntilTheDwellElapses)
{
    BreakerConfig cfg;
    cfg.failureThreshold = 1;
    cfg.openMillis = 100;
    CircuitBreaker breaker(cfg);
    breaker.onFailure(10);
    EXPECT_EQ(breaker.state(), State::kOpen);
    EXPECT_FALSE(breaker.allow(50));
    EXPECT_FALSE(breaker.allow(109));
    EXPECT_EQ(breaker.counters().rejected, 2u);
    // Dwell elapsed: the next request is the half-open probe.
    EXPECT_TRUE(breaker.allow(110));
    EXPECT_EQ(breaker.state(), State::kHalfOpen);
    EXPECT_EQ(breaker.counters().probes, 1u);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsOneProbeAtATime)
{
    BreakerConfig cfg;
    cfg.failureThreshold = 1;
    cfg.openMillis = 10;
    cfg.halfOpenSuccesses = 2;
    CircuitBreaker breaker(cfg);
    breaker.onFailure(0);
    ASSERT_TRUE(breaker.allow(20)); // probe 1 in flight
    EXPECT_FALSE(breaker.allow(21)); // concurrent request refused
    breaker.onSuccess(22);
    EXPECT_EQ(breaker.state(), State::kHalfOpen); // needs 2 successes
    ASSERT_TRUE(breaker.allow(23)); // probe 2
    breaker.onSuccess(24);
    EXPECT_EQ(breaker.state(), State::kClosed);
    EXPECT_EQ(breaker.counters().closes, 1u);
}

TEST(CircuitBreakerTest, HalfOpenFailureReopensAndRearmsTheDwell)
{
    BreakerConfig cfg;
    cfg.failureThreshold = 1;
    cfg.openMillis = 100;
    CircuitBreaker breaker(cfg);
    breaker.onFailure(0);
    ASSERT_TRUE(breaker.allow(100)); // half-open probe
    breaker.onFailure(101);          // probe failed
    EXPECT_EQ(breaker.state(), State::kOpen);
    EXPECT_FALSE(breaker.allow(150)); // dwell re-armed at t=101
    EXPECT_TRUE(breaker.allow(201));
}

TEST(CircuitBreakerTest, TransitionLogPinsTheFullCycle)
{
    BreakerConfig cfg;
    cfg.failureThreshold = 2;
    cfg.openMillis = 50;
    cfg.halfOpenSuccesses = 1;
    CircuitBreaker breaker(cfg);
    breaker.onFailure(1);
    breaker.onFailure(2);   // closed -> open @2
    ASSERT_TRUE(breaker.allow(60)); // open -> half-open @60
    breaker.onSuccess(61);  // half-open -> closed @61

    const std::vector<CircuitBreaker::Transition> expected = {
        {State::kClosed, State::kOpen, 2},
        {State::kOpen, State::kHalfOpen, 60},
        {State::kHalfOpen, State::kClosed, 61},
    };
    EXPECT_EQ(breaker.transitions(), expected);
}

TEST(CircuitBreakerTest, DisabledBreakerNeverTrips)
{
    BreakerConfig cfg;
    cfg.enabled = false;
    cfg.failureThreshold = 1;
    CircuitBreaker breaker(cfg);
    for (int i = 0; i < 100; ++i) {
        breaker.onFailure(static_cast<uint64_t>(i));
        EXPECT_TRUE(breaker.allow(static_cast<uint64_t>(i)));
    }
    EXPECT_EQ(breaker.state(), State::kClosed);
    EXPECT_TRUE(breaker.transitions().empty());
}

TEST(CircuitBreakerTest, ThreadSafeUnderConcurrentReports)
{
    BreakerConfig cfg;
    cfg.failureThreshold = 4;
    cfg.openMillis = 0; // immediate half-open probes
    CircuitBreaker breaker(cfg);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&breaker, t] {
            for (uint64_t i = 0; i < 2000; ++i) {
                if (breaker.allow(i)) {
                    if ((i + static_cast<uint64_t>(t)) % 3 == 0)
                        breaker.onFailure(i);
                    else
                        breaker.onSuccess(i);
                }
            }
        });
    }
    for (auto& th : threads)
        th.join();
    // No crash, and the state is one of the three valid states.
    const std::string name = breakerStateName(breaker.state());
    EXPECT_TRUE(name == "closed" || name == "open" ||
                name == "half-open");
}

} // namespace
