/**
 * @file
 * Tests for the simulated machine under test: catalog integrity,
 * latency observables, performance counters, and the noise model.
 */

#include <gtest/gtest.h>

#include "recap/common/error.hh"
#include "recap/common/rng.hh"
#include "recap/hw/catalog.hh"
#include "recap/hw/machine.hh"

namespace
{

using namespace recap;
using namespace recap::hw;

TEST(Catalog, HasTheEightMachines)
{
    const auto names = catalogNames();
    ASSERT_EQ(names.size(), 8u);
    EXPECT_EQ(names.front(), "atom-d525");
    EXPECT_EQ(names.back(), "ivybridge-i5");
}

TEST(Catalog, EverySpecValidates)
{
    for (const auto& spec : intelCatalog()) {
        EXPECT_NO_THROW(spec.validate()) << spec.name;
        // And a machine can actually be built from it.
        EXPECT_NO_THROW(Machine m(spec)) << spec.name;
    }
}

TEST(Catalog, LookupByName)
{
    const auto spec = catalogMachine("sandybridge-i5");
    EXPECT_EQ(spec.levels.size(), 3u);
    EXPECT_EQ(spec.levels[2].ways, 12u);
    EXPECT_THROW(catalogMachine("pentium-pro"), UsageError);
}

TEST(Catalog, OnlyIvyBridgeIsAdaptive)
{
    for (const auto& spec : intelCatalog()) {
        for (size_t i = 0; i < spec.levels.size(); ++i) {
            const bool expect_adaptive =
                spec.name == "ivybridge-i5" &&
                i == spec.levels.size() - 1;
            EXPECT_EQ(spec.levels[i].isAdaptive(), expect_adaptive)
                << spec.name << " level " << i;
        }
    }
}

TEST(Catalog, ReducedSpecShrinksSetsOnly)
{
    const auto full = catalogMachine("nehalem-i5");
    const auto reduced = reducedSpec(full, 512);
    ASSERT_EQ(reduced.levels.size(), full.levels.size());
    for (size_t i = 0; i < full.levels.size(); ++i) {
        EXPECT_EQ(reduced.levels[i].ways, full.levels[i].ways);
        EXPECT_LE(reduced.levels[i].geometry().numSets, 512u);
        EXPECT_EQ(reduced.levels[i].policySpec,
                  full.levels[i].policySpec);
    }
    EXPECT_THROW(reducedSpec(full, 3), UsageError);
}

TEST(Machine, LatencyClassification)
{
    Machine m(catalogMachine("core2-e6300"));
    // Cold access: memory latency.
    const uint64_t t0 = m.timedAccess(0);
    EXPECT_EQ(m.classifyLatency(t0), m.depth());
    // Hot access: L1 latency.
    const uint64_t t1 = m.timedAccess(0);
    EXPECT_EQ(m.classifyLatency(t1), 0u);
}

TEST(Machine, CountersAdvance)
{
    Machine m(catalogMachine("core2-e6300"));
    m.access(0);
    m.access(0);
    const auto counts = m.counters();
    ASSERT_EQ(counts.levels.size(), 2u);
    EXPECT_EQ(counts.levels[0].accesses, 2u);
    EXPECT_EQ(counts.levels[0].hits, 1u);
    EXPECT_EQ(counts.levels[1].accesses, 1u);
    EXPECT_EQ(counts.memoryAccesses, 1u);
    EXPECT_EQ(m.loadsIssued(), 2u);
}

TEST(Machine, WbinvdFlushesEverything)
{
    Machine m(catalogMachine("core2-e6300"));
    m.access(0);
    m.wbinvd();
    const uint64_t t = m.timedAccess(0);
    EXPECT_EQ(m.classifyLatency(t), m.depth());
}

TEST(Machine, GroundTruthAccessors)
{
    Machine m(catalogMachine("ivybridge-i5"));
    EXPECT_EQ(m.groundTruthPolicy(0)->name(), "PLRU");
    EXPECT_FALSE(m.groundTruthAdaptive(0));
    EXPECT_TRUE(m.groundTruthAdaptive(2));
    EXPECT_THROW(m.groundTruthPolicy(5), UsageError);
}

TEST(Machine, DeterministicAcrossInstances)
{
    const auto spec = catalogMachine("westmere-i5");
    Machine a(spec, 5);
    Machine b(spec, 5);
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const cache::Addr addr = 64 * rng.nextBelow(4096);
        ASSERT_EQ(a.timedAccess(addr), b.timedAccess(addr));
    }
}

TEST(Machine, LatencyJitterOnlyInflates)
{
    NoiseConfig noise;
    noise.latencyJitterProbability = 1.0;
    noise.latencyJitterCycles = 10;
    Machine m(catalogMachine("core2-e6300"), 1, noise);
    m.access(0);
    // A hot L1 line with jitter: latency >= clean L1 latency.
    for (int i = 0; i < 50; ++i) {
        const uint64_t t = m.timedAccess(0);
        EXPECT_GE(t, 3u);
        EXPECT_LE(t, 3u + 10u);
    }
}

TEST(Machine, DisturbanceCausesExtraAccesses)
{
    NoiseConfig noise;
    noise.disturbProbability = 1.0;
    Machine m(catalogMachine("core2-e6300"), 1, noise);
    m.access(0);
    // Every issue() adds one disturbing access.
    EXPECT_EQ(m.loadsIssued(), 2u);
    // Disturbances conflict in the same L1 set: with enough of them
    // the victim line eventually gets evicted from L1.
    for (int i = 0; i < 64; ++i)
        m.access(0);
    const auto counts = m.counters();
    EXPECT_GT(counts.levels[0].misses, 1u);
}

TEST(Machine, DisturbanceIsSeedDeterministic)
{
    NoiseConfig noise;
    noise.disturbProbability = 0.3;
    const auto spec = catalogMachine("core2-e6300");
    Machine a(spec, 9, noise);
    Machine b(spec, 9, noise);
    for (int i = 0; i < 500; ++i)
        ASSERT_EQ(a.timedAccess(64 * (i % 128)),
                  b.timedAccess(64 * (i % 128)));
}

TEST(Machine, LevelCacheInspection)
{
    Machine m(catalogMachine("ivybridge-i5"));
    EXPECT_TRUE(m.levelAdaptive(2));
    EXPECT_EQ(m.levelGeometry(0).ways, 8u);
    EXPECT_THROW(m.levelGeometry(3), UsageError);
}

} // namespace
