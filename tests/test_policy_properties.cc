/**
 * @file
 * Property-based tests run across the entire policy registry and a
 * sweep of associativities (parameterized gtest): invariants every
 * replacement policy must satisfy regardless of its strategy.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "recap/common/rng.hh"
#include "recap/policy/factory.hh"
#include "recap/policy/set_model.hh"

namespace
{

using namespace recap;
using policy::BlockId;
using policy::PolicyPtr;
using policy::SetModel;
using policy::Way;

using Param = std::tuple<std::string, unsigned>; // (spec, ways)

std::vector<Param>
allParams()
{
    std::vector<Param> params;
    std::vector<std::string> specs = policy::baselineSpecs();
    specs.push_back("qlru:H0,M0,R0,U0");
    specs.push_back("qlru:H0,M3,R1,U1");
    specs.push_back("qlru:H1,M2,R1,U0");
    specs.push_back("perm-lru");
    specs.push_back("perm-fifo");
    specs.push_back("perm-plru");
    for (const auto& spec : specs)
        for (unsigned ways : {2u, 3u, 4u, 6u, 8u, 16u})
            if (policy::specSupportsWays(spec, ways))
                params.emplace_back(spec, ways);
    return params;
}

std::string
paramName(const testing::TestParamInfo<Param>& info)
{
    std::string name = std::get<0>(info.param) + "_k" +
                       std::to_string(std::get<1>(info.param));
    for (auto& ch : name)
        if (!isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    return name;
}

class PolicyProperty : public testing::TestWithParam<Param>
{
  protected:
    PolicyPtr
    make() const
    {
        return policy::makePolicy(std::get<0>(GetParam()),
                                  std::get<1>(GetParam()), 11);
    }

    unsigned ways() const { return std::get<1>(GetParam()); }
};

/** victim() must always name a valid way. */
TEST_P(PolicyProperty, VictimAlwaysInRange)
{
    auto p = make();
    Rng rng(1);
    for (int i = 0; i < 500; ++i) {
        ASSERT_LT(p->victim(), ways());
        if (rng.nextBool(0.5))
            p->touch(static_cast<Way>(rng.nextBelow(ways())));
        else
            p->fill(p->victim());
    }
}

/** victim() must be free of observable side effects. */
TEST_P(PolicyProperty, VictimIsPure)
{
    auto p = make();
    Rng rng(2);
    for (int i = 0; i < 200; ++i) {
        const std::string key = p->stateKey();
        const Way v1 = p->victim();
        const Way v2 = p->victim();
        ASSERT_EQ(v1, v2);
        ASSERT_EQ(p->stateKey(), key);
        if (rng.nextBool(0.5))
            p->touch(static_cast<Way>(rng.nextBelow(ways())));
        else
            p->fill(v1);
    }
}

/** reset() must restore the exact initial state. */
TEST_P(PolicyProperty, ResetRestoresInitialState)
{
    auto p = make();
    const std::string initial = p->stateKey();
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        if (rng.nextBool(0.5))
            p->touch(static_cast<Way>(rng.nextBelow(ways())));
        else
            p->fill(p->victim());
    }
    p->reset();
    EXPECT_EQ(p->stateKey(), initial);
}

/** clone() must copy state and then evolve independently. */
TEST_P(PolicyProperty, CloneIsDeepAndIndependent)
{
    auto p = make();
    Rng rng(4);
    for (int i = 0; i < 50; ++i)
        p->touch(static_cast<Way>(rng.nextBelow(ways())));
    auto q = p->clone();
    ASSERT_EQ(q->stateKey(), p->stateKey());
    // Drive only the clone; the original must not change.
    const std::string original = p->stateKey();
    for (int i = 0; i < 20; ++i)
        q->fill(q->victim());
    EXPECT_EQ(p->stateKey(), original);
}

/** Equal state keys must imply equal future behaviour. */
TEST_P(PolicyProperty, StateKeyDeterminesBehaviour)
{
    auto p = make();
    auto q = make();
    Rng rng(5);
    // Drive both with the same inputs; keys must stay equal and so
    // must victims.
    for (int i = 0; i < 300; ++i) {
        ASSERT_EQ(p->stateKey(), q->stateKey());
        ASSERT_EQ(p->victim(), q->victim());
        if (rng.nextBool(0.6)) {
            const Way w = static_cast<Way>(rng.nextBelow(ways()));
            p->touch(w);
            q->touch(w);
        } else {
            const Way v = p->victim();
            p->fill(v);
            q->fill(v);
        }
    }
}

/** A resident block can only be displaced by a miss, never a hit. */
TEST_P(PolicyProperty, HitsNeverEvict)
{
    SetModel model(make());
    Rng rng(6);
    const unsigned universe = ways() + 3;
    for (int i = 0; i < 400; ++i) {
        const BlockId b = rng.nextBelow(universe);
        const bool resident_before = model.contains(b);
        const bool hit = model.access(b);
        ASSERT_EQ(hit, resident_before);
        ASSERT_TRUE(model.contains(b));
    }
}

/** A cycling working set of exactly `ways` blocks never misses once
 *  resident (the invariant the geometry probe relies on). */
TEST_P(PolicyProperty, FittingWorkingSetStopsMissing)
{
    SetModel model(make());
    // Warm-up pass: all cold misses.
    for (unsigned b = 0; b < ways(); ++b)
        model.access(b);
    // Every later pass must be hits only.
    for (int pass = 0; pass < 10; ++pass)
        for (unsigned b = 0; b < ways(); ++b)
            ASSERT_TRUE(model.access(b)) << "pass " << pass;
}

/** ways+1 cycling blocks must miss at least once per round. */
TEST_P(PolicyProperty, OversizedWorkingSetKeepsMissing)
{
    SetModel model(make());
    for (unsigned b = 0; b <= ways(); ++b)
        model.access(b);
    for (int round = 0; round < 10; ++round) {
        unsigned misses = 0;
        for (unsigned b = 0; b <= ways(); ++b)
            if (!model.access(b))
                ++misses;
        ASSERT_GE(misses, 1u) << "round " << round;
    }
}

/** The set never holds duplicates and never exceeds its ways. */
TEST_P(PolicyProperty, ContentsStayConsistent)
{
    SetModel model(make());
    Rng rng(7);
    for (int i = 0; i < 500; ++i) {
        model.access(rng.nextBelow(ways() + 4));
        ASSERT_LE(model.validCount(), ways());
        // blockAt over valid ways must be pairwise distinct.
        std::vector<BlockId> seen;
        for (unsigned w = 0; w < ways(); ++w) {
            if (!model.isValid(w))
                continue;
            for (BlockId other : seen)
                ASSERT_NE(other, model.blockAt(w));
            seen.push_back(model.blockAt(w));
        }
    }
}

/**
 * 10k-access fuzz over every registry policy, combining the automaton
 * invariants in one seeded, reproducible run: the victim is always a
 * valid way, a hit never changes occupancy or displaces anything, a
 * capacity miss replaces exactly the victim way, and occupancy only
 * ever grows by cold fills.
 */
TEST_P(PolicyProperty, FuzzedInvariantsHold)
{
    SetModel model(make());
    Rng rng(0xF022 + ways());
    const unsigned universe = ways() + 4;
    for (int i = 0; i < 10'000; ++i) {
        const unsigned occupancy_before = model.validCount();
        const bool full = occupancy_before == ways();
        const Way fill_way = model.nextFillWay();
        ASSERT_LT(fill_way, ways()) << "access " << i;

        const BlockId b = rng.nextBelow(universe);
        const bool resident_before = model.contains(b);
        const bool hit = model.access(b);
        ASSERT_EQ(hit, resident_before) << "access " << i;

        if (hit) {
            // Hits never change occupancy.
            ASSERT_EQ(model.validCount(), occupancy_before)
                << "access " << i;
        } else if (full) {
            // A capacity miss installs into exactly the pre-access
            // victim way and keeps the set full.
            ASSERT_EQ(model.validCount(), ways()) << "access " << i;
            ASSERT_EQ(model.blockAt(fill_way), b) << "access " << i;
        } else {
            // A cold miss grows occupancy by one.
            ASSERT_EQ(model.validCount(), occupancy_before + 1)
                << "access " << i;
            ASSERT_EQ(model.blockAt(fill_way), b) << "access " << i;
        }
    }
}

/**
 * LRU stack property: the eviction order of an LRU set is exactly the
 * recency order of the resident blocks. Both the explicit automaton
 * and its permutation-engine form must track a reference recency
 * stack through a 10k-access fuzz.
 */
TEST(PolicyLawsuit, LruStackProperty)
{
    for (const std::string spec :
         {std::string("lru"), std::string("perm-lru")}) {
        for (unsigned ways : {2u, 3u, 4u, 8u}) {
            SetModel model(policy::makePolicy(spec, ways));
            std::vector<BlockId> recency; // front = least recent
            Rng rng(17 + ways);
            const unsigned universe = ways + 3;
            for (int i = 0; i < 10'000; ++i) {
                const BlockId b = rng.nextBelow(universe);
                model.access(b);
                std::erase(recency, b);
                recency.push_back(b);
                if (recency.size() > ways)
                    recency.erase(recency.begin()); // evicted
                if (model.validCount() == ways) {
                    ASSERT_EQ(model.evictionOrder(), recency)
                        << spec << " k=" << ways << " access " << i;
                }
            }
        }
    }
}

/**
 * FIFO insertion-order property: eviction order equals insertion
 * order, and hits must not rearrange it.
 */
TEST(PolicyLawsuit, FifoInsertionOrderProperty)
{
    for (const std::string spec :
         {std::string("fifo"), std::string("perm-fifo")}) {
        for (unsigned ways : {2u, 3u, 4u, 8u}) {
            SetModel model(policy::makePolicy(spec, ways));
            std::vector<BlockId> fifo; // front = first inserted
            Rng rng(23 + ways);
            const unsigned universe = ways + 3;
            for (int i = 0; i < 10'000; ++i) {
                const BlockId b = rng.nextBelow(universe);
                const bool hit = model.access(b);
                if (!hit) {
                    fifo.push_back(b);
                    if (fifo.size() > ways)
                        fifo.erase(fifo.begin()); // evicted
                }
                if (model.validCount() == ways) {
                    ASSERT_EQ(model.evictionOrder(), fifo)
                        << spec << " k=" << ways << " access " << i;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Registry, PolicyProperty,
                         testing::ValuesIn(allParams()), paramName);

} // namespace
