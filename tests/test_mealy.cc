/**
 * @file
 * Tests for the Mealy-machine representation: construction, runs,
 * canonical minimization, isomorphism, distinguishing words, and
 * exact ground-truth extraction from catalog policies.
 */

#include <gtest/gtest.h>

#include "recap/common/error.hh"
#include "recap/learn/mealy.hh"
#include "recap/policy/factory.hh"

namespace
{

using namespace recap;
using learn::MealyMachine;
using learn::Word;
using learn::automatonOfPolicy;

/** s0 --0/miss--> s1, s0 --1/miss--> s0, s1 --0/hit--> s1,
 *  s1 --1/miss--> s0. */
MealyMachine
twoStateMachine()
{
    MealyMachine m(2, 2);
    m.setTransition(0, 0, 1, false);
    m.setTransition(0, 1, 0, false);
    m.setTransition(1, 0, 1, true);
    m.setTransition(1, 1, 0, false);
    return m;
}

TEST(Mealy, RunReportsPerSymbolOutputs)
{
    const auto m = twoStateMachine();
    const std::vector<bool> out = m.run({0, 0, 1, 0});
    ASSERT_EQ(out.size(), 4u);
    EXPECT_FALSE(out[0]); // cold access misses
    EXPECT_TRUE(out[1]);  // repeat hits
    EXPECT_FALSE(out[2]);
    EXPECT_FALSE(out[3]); // state was reset by symbol 1
    EXPECT_FALSE(m.lastOutput({0, 0, 1, 0}));
    EXPECT_TRUE(m.lastOutput({0, 0}));
}

TEST(Mealy, MinimizedMergesBehaviourallyEquivalentStates)
{
    // Duplicate state 1 as state 2; the copy must be merged away.
    MealyMachine m(3, 2);
    m.setTransition(0, 0, 2, false);
    m.setTransition(0, 1, 0, false);
    m.setTransition(1, 0, 1, true);
    m.setTransition(1, 1, 0, false);
    m.setTransition(2, 0, 1, true);
    m.setTransition(2, 1, 0, false);
    const auto minimized = m.minimized();
    EXPECT_EQ(minimized.numStates(), 2u);
    EXPECT_TRUE(m.distinguishingWord(minimized).empty());
    EXPECT_TRUE(minimized.isomorphicTo(twoStateMachine()));
}

TEST(Mealy, MinimizedIsCanonical)
{
    const auto a = twoStateMachine().minimized();
    const auto b = a.minimized();
    EXPECT_EQ(a.numStates(), b.numStates());
    EXPECT_TRUE(a.isomorphicTo(b));
}

TEST(Mealy, DistinguishingWordSeparatesDifferentMachines)
{
    const auto a = twoStateMachine();
    MealyMachine b = twoStateMachine();
    b.setTransition(1, 1, 1, false); // symbol 1 no longer resets
    const Word w = a.distinguishingWord(b);
    ASSERT_FALSE(w.empty());
    EXPECT_NE(a.lastOutput(w), b.lastOutput(w));
    EXPECT_TRUE(a.distinguishingWord(a).empty());
}

TEST(Mealy, AutomatonOfPolicyLruMatchesHandModel)
{
    // LRU at 1 way over 2 blocks: hit iff the same block repeats.
    const auto lru = policy::makePolicy("lru", 1);
    const auto m = automatonOfPolicy(*lru, 2).minimized();
    // States: empty, holds b1, holds b2.
    EXPECT_EQ(m.numStates(), 3u);
    EXPECT_FALSE(m.lastOutput({0}));
    EXPECT_TRUE(m.lastOutput({0, 0}));
    EXPECT_FALSE(m.lastOutput({0, 1}));
    EXPECT_TRUE(m.lastOutput({0, 1, 1}));
    EXPECT_FALSE(m.lastOutput({0, 1, 0}));
}

TEST(Mealy, AutomatonOfPolicyDistinguishesLruFromFifo)
{
    // At 2 ways a hit promotes under LRU but not FIFO: access
    // b1 b2 b1 b3, then b1 — LRU keeps b1, FIFO evicted it.
    const auto lru =
        automatonOfPolicy(*policy::makePolicy("lru", 2), 3);
    const auto fifo =
        automatonOfPolicy(*policy::makePolicy("fifo", 2), 3);
    const Word w = lru.minimized().distinguishingWord(fifo.minimized());
    ASSERT_FALSE(w.empty());
    EXPECT_FALSE(lru.minimized().isomorphicTo(fifo.minimized()));
}

TEST(Mealy, AutomatonOfPolicyStateCountsArePinned)
{
    // Regression pins of the calibrated (minimized) state-space
    // sizes over alphabet ways + 1; these are the numbers the
    // learner's budgets and EXPERIMENTS.md reason about.
    const auto states = [](const std::string& spec, unsigned ways) {
        const auto p = policy::makePolicy(spec, ways);
        return automatonOfPolicy(*p, ways + 1).minimized().numStates();
    };
    EXPECT_EQ(states("lru", 3), 41u);
    EXPECT_EQ(states("fifo", 3), 41u);
    EXPECT_EQ(states("lru", 4), 206u);
    EXPECT_EQ(states("plru", 4), 206u);
    EXPECT_EQ(states("slru:1", 4), 411u);
}

TEST(Mealy, AutomatonOfPolicyRespectsStateGuard)
{
    const auto plru = policy::makePolicy("plru", 4);
    EXPECT_THROW(automatonOfPolicy(*plru, 5, 16), UsageError);
}

TEST(Mealy, ToDotRendersDigraph)
{
    const std::string dot = twoStateMachine().toDot("demo");
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("demo"), std::string::npos);
    EXPECT_NE(dot.find("hit"), std::string::npos);
    EXPECT_NE(dot.find("miss"), std::string::npos);
}

} // namespace
