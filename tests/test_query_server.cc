/**
 * @file
 * Tests for recap-queryd's line protocol: scripted sessions against
 * the policy oracle and a noisy machine oracle, JSON error responses
 * with positions, batch lines, and the in-process entry point the
 * binary wraps.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "recap/hw/catalog.hh"
#include "recap/hw/machine.hh"
#include "recap/infer/geometry_probe.hh"
#include "recap/infer/measurement.hh"
#include "recap/query/oracle.hh"
#include "recap/query/parse.hh"
#include "recap/query/server.hh"

namespace
{

using namespace recap;
using query::PolicyOracle;
using query::respondLine;
using query::runSession;
using query::ServerOptions;

bool
contains(const std::string& haystack, const std::string& needle)
{
    return haystack.find(needle) != std::string::npos;
}

TEST(QueryServer, AnswersQueriesWithVerdictJson)
{
    PolicyOracle oracle("lru", 4);
    const std::string hit = respondLine("a b c d a?", oracle);
    EXPECT_TRUE(contains(hit, "\"ok\":true")) << hit;
    EXPECT_TRUE(contains(hit, "\"query\":\"a b c d a?\"")) << hit;
    EXPECT_TRUE(contains(hit, "\"block\":\"a\",\"hit\":true")) << hit;
    EXPECT_TRUE(contains(hit, "\"experiments\":1")) << hit;

    const std::string miss = respondLine("a b c d e a?", oracle);
    EXPECT_TRUE(contains(miss, "\"hit\":false")) << miss;
}

TEST(QueryServer, ReportsParseErrorsWithLinePositions)
{
    PolicyOracle oracle("lru", 4);
    const std::string bad = respondLine("a b $ c", oracle);
    EXPECT_TRUE(contains(bad, "\"ok\":false")) << bad;
    EXPECT_TRUE(contains(bad, "\"position\":4")) << bad;

    // In a `;`-joined line the position is line-relative and the
    // failing query's index is reported.
    const std::string batch = respondLine("a b? ; c ^0", oracle);
    EXPECT_TRUE(contains(batch, "\"ok\":false")) << batch;
    EXPECT_TRUE(contains(batch, "\"position\":10")) << batch;
    EXPECT_TRUE(contains(batch, "\"query\":1")) << batch;
}

TEST(QueryServer, CommandsReportOracleMetadata)
{
    PolicyOracle oracle("srrip", 8);
    EXPECT_TRUE(contains(respondLine(":ways", oracle), "\"ways\":8"));
    EXPECT_TRUE(
        contains(respondLine(":backend", oracle), "srrip"));
    oracle.evaluate(query::compile(query::parseQuery("a b?")));
    const std::string stats = respondLine(":stats", oracle);
    EXPECT_TRUE(contains(stats, "\"experiments\":1")) << stats;
    EXPECT_TRUE(contains(stats, "\"accesses\":2")) << stats;
    EXPECT_TRUE(
        contains(respondLine(":bogus", oracle), "\"ok\":false"));
}

TEST(QueryServer, BlankAndCommentLinesGetNoResponse)
{
    PolicyOracle oracle("lru", 4);
    EXPECT_EQ(respondLine("", oracle), "");
    EXPECT_EQ(respondLine("   \t ", oracle), "");
    EXPECT_EQ(respondLine("# a b c d a?", oracle), "");
}

TEST(QueryServer, SemicolonLinesEvaluateAsOneSharedBatch)
{
    PolicyOracle oracle("lru", 4);
    const std::string response = respondLine(
        "a b c d a? ; a b c d e a? ; a b c d e f a?", oracle);
    EXPECT_TRUE(contains(response, "\"batch\":[")) << response;
    EXPECT_TRUE(contains(response, "\"sharing\":{\"queries\":3"))
        << response;
    EXPECT_TRUE(contains(response, "\"hit\":true")) << response;
    EXPECT_TRUE(contains(response, "\"hit\":false")) << response;
    // Shared prefixes: the batch costs less than naive re-execution.
    const auto naive = response.find("\"naive\":");
    const auto actual = response.find("\"actual\":");
    ASSERT_NE(naive, std::string::npos);
    ASSERT_NE(actual, std::string::npos);
    EXPECT_LT(std::stoul(response.substr(actual + 9)),
              std::stoul(response.substr(naive + 8)));
}

TEST(QueryServer, ScriptedSessionRunsToQuit)
{
    PolicyOracle oracle("lru", 4);
    std::istringstream in("# warmup comment\n"
                          "a b c d a?\n"
                          "\n"
                          ":ways\n"
                          "bad $ line\n"
                          ":quit\n"
                          "a b c d a?\n"); // after :quit: unanswered
    std::ostringstream out;
    const unsigned answered = runSession(in, out, oracle);
    EXPECT_EQ(answered, 4u); // query, :ways, error, :quit
    std::vector<std::string> lines;
    std::istringstream parsed(out.str());
    for (std::string line; std::getline(parsed, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_TRUE(contains(lines[0], "\"hit\":true"));
    EXPECT_TRUE(contains(lines[1], "\"ways\":4"));
    EXPECT_TRUE(contains(lines[2], "\"ok\":false"));
    EXPECT_TRUE(contains(lines[3], "\"bye\":true"));
}

TEST(QueryServerLimits, OversizedLinesGetAStructuredError)
{
    PolicyOracle oracle("lru", 4);
    ServerOptions opts;
    opts.limits.maxLineBytes = 32;
    const std::string ok = respondLine("a b c d a?", oracle, opts);
    EXPECT_TRUE(contains(ok, "\"ok\":true")) << ok;

    const std::string big(200, 'a');
    const std::string rejected = respondLine(big, oracle, opts);
    EXPECT_TRUE(contains(rejected, "\"ok\":false")) << rejected;
    EXPECT_TRUE(contains(rejected, "\"aborted\":\"line-too-long\""))
        << rejected;
    // The session survives: the next request answers normally.
    EXPECT_TRUE(contains(respondLine("a a?", oracle, opts),
                         "\"ok\":true"));
}

TEST(QueryServerLimits, TooManyQueriesPerLineIsRejected)
{
    PolicyOracle oracle("lru", 4);
    ServerOptions opts;
    opts.limits.maxQueriesPerLine = 2;
    EXPECT_TRUE(contains(respondLine("a? ; b?", oracle, opts),
                         "\"ok\":true"));
    const std::string rejected =
        respondLine("a? ; b? ; c?", oracle, opts);
    EXPECT_TRUE(contains(rejected, "\"ok\":false")) << rejected;
    EXPECT_TRUE(
        contains(rejected, "\"aborted\":\"too-many-queries\""))
        << rejected;
}

TEST(QueryServerLimits, OverlongQueriesAreRejected)
{
    PolicyOracle oracle("lru", 4);
    ServerOptions opts;
    opts.limits.maxStepsPerQuery = 4;
    EXPECT_TRUE(contains(respondLine("a b c d?", oracle, opts),
                         "\"ok\":true"));
    const std::string rejected =
        respondLine("a b c d e?", oracle, opts);
    EXPECT_TRUE(contains(rejected, "\"ok\":false")) << rejected;
    EXPECT_TRUE(contains(rejected, "\"aborted\":\"query-too-long\""))
        << rejected;
}

TEST(QueryServerLimits, ZeroDisablesEveryLimit)
{
    PolicyOracle oracle("lru", 4);
    ServerOptions opts;
    opts.limits.maxLineBytes = 0;
    opts.limits.maxQueriesPerLine = 0;
    opts.limits.maxStepsPerQuery = 0;
    opts.limits.maxAccessesPerRequest = 0;
    opts.limits.timeoutMillis = 0;
    std::string line;
    for (int i = 0; i < 200; ++i)
        line += "a b c d e f ";
    line += "a?";
    EXPECT_TRUE(contains(respondLine(line, oracle, opts),
                         "\"ok\":true"));
}

TEST(QueryServerLimits, AccessBudgetAbortsMidRequest)
{
    PolicyOracle oracle("lru", 4);
    ServerOptions opts;
    // Naive batches re-check the budget before every query; the
    // prefix-sharing path checks at batch entry.
    opts.batch.prefixSharing = false;
    opts.limits.maxAccessesPerRequest = 10;
    // One short query fits the budget.
    EXPECT_TRUE(contains(respondLine("a b a?", oracle, opts),
                         "\"ok\":true"));
    // A batch that would cost far more than 10 accesses aborts with a
    // structured response...
    const std::string aborted = respondLine(
        "a b c d e f a? ; a b c d e f g b? ; a b c d e f g h c?",
        oracle, opts);
    EXPECT_TRUE(contains(aborted, "\"ok\":false")) << aborted;
    EXPECT_TRUE(contains(aborted, "\"aborted\":\"access-budget\""))
        << aborted;
    // ...and the session keeps serving.
    EXPECT_TRUE(contains(respondLine(":ways", oracle, opts),
                         "\"ways\":4"));
}

TEST(QueryServerLimits, ScriptedClockTripsTheTimeout)
{
    PolicyOracle oracle("lru", 4);
    ServerOptions opts;
    opts.limits.timeoutMillis = 50;
    // A scripted clock that jumps far past the deadline after the
    // first reading: the first checkpoint inside evaluation trips.
    auto now = std::make_shared<uint64_t>(0);
    opts.clock = [now] {
        const uint64_t t = *now;
        *now += 1000;
        return t;
    };
    const std::string aborted =
        respondLine("a b c d a?", oracle, opts);
    EXPECT_TRUE(contains(aborted, "\"ok\":false")) << aborted;
    EXPECT_TRUE(contains(aborted, "\"aborted\":\"timeout\""))
        << aborted;
    EXPECT_TRUE(contains(aborted, "50")) << aborted;

    // A well-behaved clock under the same limit answers fine.
    opts.clock = [] { return uint64_t{7}; };
    EXPECT_TRUE(contains(respondLine("a b c d a?", oracle, opts),
                         "\"ok\":true"));
}

TEST(QueryServerLimits, TimeoutAbortsAMachineOracleSessionCleanly)
{
    // The machine oracle funnels every experiment batch (one per
    // flush-delimited segment) through the checkpoint, so a timeout
    // mid-measurement surfaces as the same structured error and
    // leaves the session usable for later requests.
    const auto spec =
        hw::reducedSpec(hw::catalogMachine("core2-e6300"), 64);
    hw::Machine machine(spec, 1);
    infer::MeasurementContext ctx(machine);
    const auto geom = infer::assumedGeometry(spec);
    query::MachineOracle oracle(ctx, geom, 0);

    ServerOptions opts;
    opts.limits.timeoutMillis = 10;
    // The clock advances 4 ms per reading: a one-segment request
    // stays under the deadline, a many-segment request crosses it at
    // its third checkpoint.
    auto now = std::make_shared<uint64_t>(0);
    opts.clock = [now] { return *now += 4; };

    std::istringstream in("a b c a?\n"
                          "a? @ b? @ c? @ d? @ e?\n"
                          "f g f?\n"
                          ":quit\n");
    std::ostringstream out;
    runSession(in, out, oracle, opts);
    std::vector<std::string> lines;
    std::istringstream parsed(out.str());
    for (std::string line; std::getline(parsed, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_TRUE(contains(lines[0], "\"ok\":true")) << lines[0];
    EXPECT_TRUE(contains(lines[1], "\"aborted\":\"timeout\""))
        << lines[1];
    EXPECT_TRUE(contains(lines[2], "\"ok\":true")) << lines[2];
    EXPECT_TRUE(contains(lines[3], "\"bye\":true")) << lines[3];
}

int
runQueryd(const std::vector<std::string>& args,
          const std::string& script, std::string& out,
          std::string& err)
{
    std::vector<const char*> argv{"recap-queryd"};
    for (const auto& arg : args)
        argv.push_back(arg.c_str());
    std::istringstream in(script);
    std::ostringstream outStream;
    std::ostringstream errStream;
    const int rc =
        query::querydMain(static_cast<int>(argv.size()), argv.data(),
                          in, outStream, errStream);
    out = outStream.str();
    err = errStream.str();
    return rc;
}

TEST(QuerydMain, ServesAPolicyOracleSession)
{
    std::string out;
    std::string err;
    const int rc = runQueryd({"--policy", "lru", "--ways", "4"},
                             "a b c d a?\n@ a?\n:quit\n", out, err);
    EXPECT_EQ(rc, 0) << err;
    EXPECT_TRUE(contains(out, "\"hit\":true")) << out;
    EXPECT_TRUE(contains(out, "\"hit\":false")) << out;
    EXPECT_TRUE(contains(err, "policy:lru")) << err;
}

TEST(QuerydMain, ServesANoisyMachineOracleSession)
{
    // A noisy machine with pinned seed and voting must still answer
    // the fill-then-probe session correctly.
    std::string out;
    std::string err;
    const int rc = runQueryd(
        {"--machine", "core2-e6300", "--level", "1", "--noise",
         "0.01", "--votes", "9", "--seed", "5", "--max-sets", "512",
         "--mode", "latency"},
        "a b c d e f g h a?\nfresh?\n:stats\n:quit\n", out, err);
    EXPECT_EQ(rc, 0) << err;
    EXPECT_TRUE(contains(err, "machine:L2")) << err;
    EXPECT_TRUE(contains(err, "latency")) << err;
    std::vector<std::string> lines;
    std::istringstream parsed(out);
    for (std::string line; std::getline(parsed, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_TRUE(contains(lines[0], "\"hit\":true,\"level\":1"))
        << lines[0];
    EXPECT_TRUE(contains(lines[1], "\"hit\":false")) << lines[1];
    EXPECT_TRUE(contains(lines[2], "\"experiments\":")) << lines[2];
}

TEST(QuerydMain, BatchLinesRespectTheNaiveFlag)
{
    std::string out;
    std::string err;
    const int rc = runQueryd({"--policy", "lru", "--ways", "4",
                              "--naive"},
                             "a b c a? ; a b c d a?\n:quit\n", out,
                             err);
    EXPECT_EQ(rc, 0) << err;
    EXPECT_TRUE(contains(out, "\"sharing\":")) << out;
    // Naive mode: actual cost equals the naive cost.
    EXPECT_TRUE(contains(out, "\"naive\":9,\"actual\":9")) << out;
}

TEST(QuerydMain, RejectsBadInvocations)
{
    std::string out;
    std::string err;
    EXPECT_EQ(runQueryd({}, "", out, err), 2);
    EXPECT_TRUE(contains(err, "usage:")) << err;
    EXPECT_EQ(runQueryd({"--policy", "lru", "--machine", "x"}, "",
                        out, err),
              2);
    EXPECT_EQ(runQueryd({"--frobnicate"}, "", out, err), 2);
    EXPECT_EQ(runQueryd({"--policy", "no-such-policy"}, "", out, err),
              2);
    EXPECT_EQ(runQueryd({"--policy", "lru", "--retry", "x"}, "", out,
                        err),
              2);
}

// ---------------------------------------------------------------
// NDJSON session-parser fuzzing: hostile byte streams must always
// produce structured JSON errors (or structured answers) and must
// never kill the session — the next valid request still answers.
// ---------------------------------------------------------------

TEST(QueryServerFuzz, RandomByteLinesAlwaysAnswerStructuredJson)
{
    PolicyOracle oracle("lru", 4);
    ServerOptions opts;
    opts.limits.maxLineBytes = 512;
    Rng rng(2024);
    for (int i = 0; i < 2000; ++i) {
        // Lines of arbitrary bytes: embedded NULs, malformed UTF-8
        // continuation bytes, control characters — everything but
        // the '\n' framing delimiter.
        const std::size_t len = rng.nextBelow(96);
        std::string line;
        line.reserve(len);
        for (std::size_t b = 0; b < len; ++b) {
            char c = static_cast<char>(rng.nextBelow(256));
            if (c == '\n')
                c = '\0';
            line += c;
        }
        const std::string response =
            query::respondLine(line, oracle, opts);
        if (response.empty())
            continue; // blank/comment-shaped garbage: silent is fine
        EXPECT_TRUE(response.rfind("{\"ok\":", 0) == 0)
            << "iteration " << i << ": " << response;
        // Every response is one line — framing survives any input.
        EXPECT_EQ(response.find('\n'), std::string::npos);
    }
    // The session (oracle + parser) survived 2000 hostile lines.
    const std::string after =
        query::respondLine("a b c d a?", oracle, opts);
    EXPECT_TRUE(contains(after, "\"ok\":true")) << after;
}

TEST(QueryServerFuzz, MalformedUtf8AndNulsGetStructuredErrors)
{
    PolicyOracle oracle("lru", 4);
    const std::vector<std::string> hostile = {
        std::string("\xc3\x28 a?"),         // bad continuation
        std::string("\xf0\x9f a?"),         // truncated 4-byte seq
        std::string("a\x00b a?", 7),        // embedded NUL
        std::string("\xff\xfe\xfd"),        // not UTF-8 at all
        std::string(3, '\x01') + " a?",     // control chars
    };
    for (const std::string& line : hostile) {
        const std::string response = query::respondLine(line, oracle);
        ASSERT_FALSE(response.empty());
        EXPECT_TRUE(contains(response, "\"ok\":false")) << response;
        EXPECT_TRUE(contains(response, "\"error\"")) << response;
    }
    EXPECT_TRUE(contains(query::respondLine("a a?", oracle),
                         "\"ok\":true"));
}

TEST(QueryServerFuzz, OverlongLinesAbortWithoutWedgingTheSession)
{
    PolicyOracle oracle("lru", 4);
    ServerOptions opts;
    opts.limits.maxLineBytes = 64;
    std::istringstream in(std::string(4096, 'a') + "\n" +
                          "a b a?\n:quit\n");
    std::ostringstream out;
    runSession(in, out, oracle, opts);
    std::vector<std::string> lines;
    std::istringstream parsed(out.str());
    for (std::string line; std::getline(parsed, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_TRUE(contains(lines[0], "\"aborted\":\"line-too-long\""))
        << lines[0];
    EXPECT_TRUE(contains(lines[0], "\"reasons\":[\"line-too-long\"]"))
        << lines[0];
    EXPECT_TRUE(contains(lines[1], "\"ok\":true")) << lines[1];
    EXPECT_TRUE(contains(lines[2], "\"bye\":true")) << lines[2];
}

TEST(QueryServerFuzz, TruncatedFinalLineStillAnswers)
{
    PolicyOracle oracle("lru", 4);
    // No trailing newline: the final (truncated) line must still be
    // parsed and answered before EOF ends the session.
    std::istringstream in("a b a?\na b c d");
    std::ostringstream out;
    const unsigned answered = runSession(in, out, oracle);
    EXPECT_EQ(answered, 2u);
    EXPECT_TRUE(contains(out.str(), "\"ok\":true")) << out.str();
}

TEST(QueryServerFuzz, AbortReasonsSurviveCheckpointRaces)
{
    // When the deadline and the access budget trip in the same
    // checkpoint, the response carries BOTH structured reasons, with
    // the timeout deterministically primary.
    PolicyOracle oracle("lru", 4);
    ServerOptions opts;
    opts.limits.timeoutMillis = 50;
    opts.limits.maxAccessesPerRequest = 1;
    opts.batch.prefixSharing = false; // per-query checkpoints
    auto now = std::make_shared<uint64_t>(0);
    opts.clock = [now] { return *now += 40; };
    // Guard arms at t=40 (deadline 90). Query 1's checkpoint at t=80
    // passes and its replay consumes 5 accesses; query 2's
    // checkpoint at t=120 then finds BOTH limits blown at once.
    const std::string response = query::respondLine(
        "a b c d a? ; a b c d b?", oracle, opts);
    EXPECT_TRUE(contains(response, "\"aborted\":\"timeout\""))
        << response;
    EXPECT_TRUE(contains(
        response, "\"reasons\":[\"timeout\",\"access-budget\"]"))
        << response;
    EXPECT_TRUE(contains(response, "ms timeout")) << response;
    EXPECT_TRUE(contains(response, "access budget")) << response;
}

} // namespace
