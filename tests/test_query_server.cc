/**
 * @file
 * Tests for recap-queryd's line protocol: scripted sessions against
 * the policy oracle and a noisy machine oracle, JSON error responses
 * with positions, batch lines, and the in-process entry point the
 * binary wraps.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "recap/query/oracle.hh"
#include "recap/query/parse.hh"
#include "recap/query/server.hh"

namespace
{

using namespace recap;
using query::PolicyOracle;
using query::respondLine;
using query::runSession;
using query::ServerOptions;

bool
contains(const std::string& haystack, const std::string& needle)
{
    return haystack.find(needle) != std::string::npos;
}

TEST(QueryServer, AnswersQueriesWithVerdictJson)
{
    PolicyOracle oracle("lru", 4);
    const std::string hit = respondLine("a b c d a?", oracle);
    EXPECT_TRUE(contains(hit, "\"ok\":true")) << hit;
    EXPECT_TRUE(contains(hit, "\"query\":\"a b c d a?\"")) << hit;
    EXPECT_TRUE(contains(hit, "\"block\":\"a\",\"hit\":true")) << hit;
    EXPECT_TRUE(contains(hit, "\"experiments\":1")) << hit;

    const std::string miss = respondLine("a b c d e a?", oracle);
    EXPECT_TRUE(contains(miss, "\"hit\":false")) << miss;
}

TEST(QueryServer, ReportsParseErrorsWithLinePositions)
{
    PolicyOracle oracle("lru", 4);
    const std::string bad = respondLine("a b $ c", oracle);
    EXPECT_TRUE(contains(bad, "\"ok\":false")) << bad;
    EXPECT_TRUE(contains(bad, "\"position\":4")) << bad;

    // In a `;`-joined line the position is line-relative and the
    // failing query's index is reported.
    const std::string batch = respondLine("a b? ; c ^0", oracle);
    EXPECT_TRUE(contains(batch, "\"ok\":false")) << batch;
    EXPECT_TRUE(contains(batch, "\"position\":10")) << batch;
    EXPECT_TRUE(contains(batch, "\"query\":1")) << batch;
}

TEST(QueryServer, CommandsReportOracleMetadata)
{
    PolicyOracle oracle("srrip", 8);
    EXPECT_TRUE(contains(respondLine(":ways", oracle), "\"ways\":8"));
    EXPECT_TRUE(
        contains(respondLine(":backend", oracle), "srrip"));
    oracle.evaluate(query::compile(query::parseQuery("a b?")));
    const std::string stats = respondLine(":stats", oracle);
    EXPECT_TRUE(contains(stats, "\"experiments\":1")) << stats;
    EXPECT_TRUE(contains(stats, "\"accesses\":2")) << stats;
    EXPECT_TRUE(
        contains(respondLine(":bogus", oracle), "\"ok\":false"));
}

TEST(QueryServer, BlankAndCommentLinesGetNoResponse)
{
    PolicyOracle oracle("lru", 4);
    EXPECT_EQ(respondLine("", oracle), "");
    EXPECT_EQ(respondLine("   \t ", oracle), "");
    EXPECT_EQ(respondLine("# a b c d a?", oracle), "");
}

TEST(QueryServer, SemicolonLinesEvaluateAsOneSharedBatch)
{
    PolicyOracle oracle("lru", 4);
    const std::string response = respondLine(
        "a b c d a? ; a b c d e a? ; a b c d e f a?", oracle);
    EXPECT_TRUE(contains(response, "\"batch\":[")) << response;
    EXPECT_TRUE(contains(response, "\"sharing\":{\"queries\":3"))
        << response;
    EXPECT_TRUE(contains(response, "\"hit\":true")) << response;
    EXPECT_TRUE(contains(response, "\"hit\":false")) << response;
    // Shared prefixes: the batch costs less than naive re-execution.
    const auto naive = response.find("\"naive\":");
    const auto actual = response.find("\"actual\":");
    ASSERT_NE(naive, std::string::npos);
    ASSERT_NE(actual, std::string::npos);
    EXPECT_LT(std::stoul(response.substr(actual + 9)),
              std::stoul(response.substr(naive + 8)));
}

TEST(QueryServer, ScriptedSessionRunsToQuit)
{
    PolicyOracle oracle("lru", 4);
    std::istringstream in("# warmup comment\n"
                          "a b c d a?\n"
                          "\n"
                          ":ways\n"
                          "bad $ line\n"
                          ":quit\n"
                          "a b c d a?\n"); // after :quit: unanswered
    std::ostringstream out;
    const unsigned answered = runSession(in, out, oracle);
    EXPECT_EQ(answered, 4u); // query, :ways, error, :quit
    std::vector<std::string> lines;
    std::istringstream parsed(out.str());
    for (std::string line; std::getline(parsed, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_TRUE(contains(lines[0], "\"hit\":true"));
    EXPECT_TRUE(contains(lines[1], "\"ways\":4"));
    EXPECT_TRUE(contains(lines[2], "\"ok\":false"));
    EXPECT_TRUE(contains(lines[3], "\"bye\":true"));
}

int
runQueryd(const std::vector<std::string>& args,
          const std::string& script, std::string& out,
          std::string& err)
{
    std::vector<const char*> argv{"recap-queryd"};
    for (const auto& arg : args)
        argv.push_back(arg.c_str());
    std::istringstream in(script);
    std::ostringstream outStream;
    std::ostringstream errStream;
    const int rc =
        query::querydMain(static_cast<int>(argv.size()), argv.data(),
                          in, outStream, errStream);
    out = outStream.str();
    err = errStream.str();
    return rc;
}

TEST(QuerydMain, ServesAPolicyOracleSession)
{
    std::string out;
    std::string err;
    const int rc = runQueryd({"--policy", "lru", "--ways", "4"},
                             "a b c d a?\n@ a?\n:quit\n", out, err);
    EXPECT_EQ(rc, 0) << err;
    EXPECT_TRUE(contains(out, "\"hit\":true")) << out;
    EXPECT_TRUE(contains(out, "\"hit\":false")) << out;
    EXPECT_TRUE(contains(err, "policy:lru")) << err;
}

TEST(QuerydMain, ServesANoisyMachineOracleSession)
{
    // A noisy machine with pinned seed and voting must still answer
    // the fill-then-probe session correctly.
    std::string out;
    std::string err;
    const int rc = runQueryd(
        {"--machine", "core2-e6300", "--level", "1", "--noise",
         "0.01", "--votes", "9", "--seed", "5", "--max-sets", "512",
         "--mode", "latency"},
        "a b c d e f g h a?\nfresh?\n:stats\n:quit\n", out, err);
    EXPECT_EQ(rc, 0) << err;
    EXPECT_TRUE(contains(err, "machine:L2")) << err;
    EXPECT_TRUE(contains(err, "latency")) << err;
    std::vector<std::string> lines;
    std::istringstream parsed(out);
    for (std::string line; std::getline(parsed, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_TRUE(contains(lines[0], "\"hit\":true,\"level\":1"))
        << lines[0];
    EXPECT_TRUE(contains(lines[1], "\"hit\":false")) << lines[1];
    EXPECT_TRUE(contains(lines[2], "\"experiments\":")) << lines[2];
}

TEST(QuerydMain, BatchLinesRespectTheNaiveFlag)
{
    std::string out;
    std::string err;
    const int rc = runQueryd({"--policy", "lru", "--ways", "4",
                              "--naive"},
                             "a b c a? ; a b c d a?\n:quit\n", out,
                             err);
    EXPECT_EQ(rc, 0) << err;
    EXPECT_TRUE(contains(out, "\"sharing\":")) << out;
    // Naive mode: actual cost equals the naive cost.
    EXPECT_TRUE(contains(out, "\"naive\":9,\"actual\":9")) << out;
}

TEST(QuerydMain, RejectsBadInvocations)
{
    std::string out;
    std::string err;
    EXPECT_EQ(runQueryd({}, "", out, err), 2);
    EXPECT_TRUE(contains(err, "usage:")) << err;
    EXPECT_EQ(runQueryd({"--policy", "lru", "--machine", "x"}, "",
                        out, err),
              2);
    EXPECT_EQ(runQueryd({"--frobnicate"}, "", out, err), 2);
    EXPECT_EQ(runQueryd({"--policy", "no-such-policy"}, "", out, err),
              2);
}

} // namespace
