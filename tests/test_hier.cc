/**
 * @file
 * Tests for the compiled multi-level hierarchy subsystem (hier::):
 * construction, compiled coverage, bit-exact lockstep against the
 * interpreted cache::Hierarchy, set-dueling adaptivity end to end,
 * and the inclusive/exclusive content disciplines.
 */

#include <gtest/gtest.h>

#include "recap/common/error.hh"
#include "recap/eval/hierarchy_eval.hh"
#include "recap/hier/hierarchy.hh"
#include "recap/hier/simulate.hh"
#include "recap/hw/catalog.hh"
#include "recap/trace/generators.hh"

namespace
{

using namespace recap;
using cache::InclusionMode;
using recap::UsageError;

/** A small two-level machine with fully-compilable policies. */
hw::MachineSpec
smallSpec(const std::string& l1Policy = "plru",
          const std::string& l2Policy = "lru")
{
    hw::MachineSpec spec;
    spec.name = "hier-test";
    spec.description = "two-level test machine";
    hw::CacheLevelSpec l1;
    l1.name = "L1";
    l1.capacityBytes = 16 * 64 * 4; // 16 sets, 4 ways
    l1.ways = 4;
    l1.hitLatency = 3;
    l1.policySpec = l1Policy;
    hw::CacheLevelSpec l2;
    l2.name = "L2";
    l2.capacityBytes = 64 * 64 * 8; // 64 sets, 8 ways
    l2.ways = 8;
    l2.hitLatency = 12;
    l2.policySpec = l2Policy;
    spec.levels = {l1, l2};
    spec.memoryLatency = 100;
    return spec;
}

/** An ivybridge-style machine whose adaptive L3 compiles fully. */
hw::MachineSpec
adaptiveSpec()
{
    auto spec = hw::reducedSpec(
        hw::catalogMachine("ivybridge-i5"), 256);
    // The catalog L3 is 12-way (over the compile budget); at 8 ways
    // both QLRU duel constituents compile, putting the whole duel on
    // the table path.
    auto& l3 = spec.levels[2];
    l3.capacityBytes = l3.capacityBytes / l3.ways * 8;
    l3.ways = 8;
    return spec;
}

trace::RefTrace
mixedTrace(size_t count, uint64_t footprint, uint64_t seed)
{
    return trace::withWrites(
        trace::zipf(footprint, count, 0.9, seed), 0.3, seed + 17);
}

TEST(Hier, FullyCompiledOnSmallMachine)
{
    hier::Hierarchy h(smallSpec());
    EXPECT_EQ(h.depth(), 2u);
    EXPECT_TRUE(h.levelCompiled(0));
    EXPECT_TRUE(h.levelCompiled(1));
    EXPECT_TRUE(h.fullyCompiled());
    EXPECT_EQ(h.name(0), "L1");
    EXPECT_EQ(h.geometry(1).ways, 8u);
    EXPECT_EQ(h.memoryLatency(), 100u);
    EXPECT_EQ(h.latencyOf(0), 3u);
    EXPECT_EQ(h.latencyOf(2), 100u);
}

TEST(Hier, FallbackLevelsRunInterpreted)
{
    // "random" never compiles (unbounded stream position).
    hier::Hierarchy h(smallSpec("plru", "random"));
    EXPECT_TRUE(h.levelCompiled(0));
    EXPECT_FALSE(h.levelCompiled(1));
    EXPECT_FALSE(h.fullyCompiled());

    hier::Options interp;
    interp.forceInterpreted = true;
    hier::Hierarchy h2(smallSpec(), 1, interp);
    EXPECT_FALSE(h2.fullyCompiled());
}

TEST(Hier, AccessorRangeChecks)
{
    hier::Hierarchy h(smallSpec());
    EXPECT_THROW(h.stats(2), UsageError);
    EXPECT_THROW(h.name(2), UsageError);
    EXPECT_THROW(h.latencyOf(3), UsageError);
    EXPECT_THROW(h.psel(0), UsageError); // static level
    EXPECT_THROW(h.setImage(0, 999), UsageError);
}

TEST(Hier, RejectsMoreThan32Ways)
{
    auto spec = smallSpec();
    spec.levels[1].ways = 33;
    spec.levels[1].capacityBytes = 64 * 64 * 33;
    EXPECT_THROW(hier::Hierarchy h(spec), UsageError);
}

TEST(Hier, LockstepMatchesInterpretedOnCompiledMachine)
{
    const auto report = hier::crossCheck(
        smallSpec(), mixedTrace(20000, 64 * 1024, 5), {});
    EXPECT_TRUE(report.fullyCompiled);
    EXPECT_TRUE(report.ok) << report.detail;
    EXPECT_EQ(report.result.accesses, 20000u);
}

TEST(Hier, LockstepMatchesInterpretedOnFallbackMachine)
{
    // A stochastic fallback level must reproduce the interpreted
    // hierarchy bit for bit via the shared seed derivation.
    const auto report = hier::crossCheck(
        smallSpec("plru", "random"), mixedTrace(20000, 64 * 1024, 7),
        {});
    EXPECT_FALSE(report.fullyCompiled);
    EXPECT_TRUE(report.ok) << report.detail;
}

TEST(Hier, LockstepMatchesOnAdaptiveMachineCompiledEndToEnd)
{
    const auto spec = adaptiveSpec();
    hier::Hierarchy probe(spec);
    EXPECT_TRUE(probe.fullyCompiled())
        << "adaptive 8-way QLRU duel should compile end to end";
    EXPECT_TRUE(probe.isAdaptive(2));

    hier::CrossCheckOptions opts;
    opts.seed = 11;
    const auto report = hier::crossCheck(
        spec, mixedTrace(30000, 2 * 1024 * 1024, 11), opts);
    EXPECT_TRUE(report.ok) << report.detail;
}

TEST(Hier, AdaptivePselAndRolesMatchInterpreted)
{
    const auto spec = adaptiveSpec();
    hier::Hierarchy fast(spec, 3);
    auto ref = eval::buildHierarchy(spec, 3);
    const auto& l3 = ref.level(2).cache;

    EXPECT_EQ(fast.psel(2), l3.psel());
    EXPECT_EQ(fast.pselMidpoint(2), l3.pselMidpoint());
    for (unsigned s = 0; s < fast.geometry(2).numSets; ++s)
        EXPECT_EQ(fast.setRole(2, s), l3.setRole(s)) << "set " << s;
    // Static levels read as followers everywhere.
    EXPECT_EQ(fast.setRole(0, 0), cache::Cache::SetRole::kFollower);

    // Thrash the L3 so PSEL trains, then compare trajectories.
    const auto t = trace::stridedScan(8 * 1024 * 1024, 64, 2);
    for (cache::Addr a : t) {
        fast.access(a);
        ref.access(a);
        ASSERT_EQ(fast.psel(2), l3.psel());
    }
    EXPECT_NE(fast.psel(2), fast.pselMidpoint(2))
        << "trace too tame: PSEL never trained";
}

TEST(Hier, FlushPreservesPselAndCountsWritebacks)
{
    const auto spec = adaptiveSpec();
    hier::Hierarchy fast(spec, 3);
    auto ref = eval::buildHierarchy(spec, 3);

    const auto refs = mixedTrace(20000, 4 * 1024 * 1024, 13);
    for (const auto& r : refs) {
        fast.access(r.addr, r.write);
        ref.access(r.addr, r.write);
    }
    fast.flushAll();
    ref.flushAll();
    EXPECT_EQ(fast.psel(2), ref.level(2).cache.psel());
    for (unsigned l = 0; l < fast.depth(); ++l) {
        EXPECT_EQ(fast.stats(l).writebacks,
                  ref.level(l).cache.stats().writebacks)
            << "level " << l;
        EXPECT_GT(fast.stats(l).writebacks, 0u) << "level " << l;
    }
    // Post-flush: everything misses again, identically.
    const auto report = hier::crossCheck(
        spec, mixedTrace(5000, 1024 * 1024, 19),
        {.mode = InclusionMode::kNonInclusive, .seed = 3});
    EXPECT_TRUE(report.ok) << report.detail;
}

TEST(Hier, InclusiveModeBackInvalidates)
{
    // Make L2 the *smaller* level so its evictions constantly knock
    // lines out of L1.
    auto spec = smallSpec();
    spec.levels[1].capacityBytes = 8 * 64 * 2; // 8 sets, 2 ways
    spec.levels[1].ways = 2;

    hier::Options opts;
    opts.mode = InclusionMode::kInclusive;
    hier::Hierarchy h(spec, 1, opts);
    const auto t = trace::stridedScan(64 * 1024, 64, 3);
    for (cache::Addr a : t)
        h.access(a);
    EXPECT_GT(h.stats(0).backInvalidations, 0u);
    EXPECT_EQ(h.stats(1).backInvalidations, 0u)
        << "only inner levels are back-invalidated";
}

TEST(Hier, InclusiveLockstepMatchesInterpreted)
{
    auto spec = smallSpec();
    spec.levels[1].capacityBytes = 16 * 64 * 4;
    spec.levels[1].ways = 4;
    hier::CrossCheckOptions opts;
    opts.mode = InclusionMode::kInclusive;
    opts.seed = 23;
    const auto report = hier::crossCheck(
        spec, mixedTrace(25000, 128 * 1024, 23), opts);
    EXPECT_TRUE(report.ok) << report.detail;
}

TEST(Hier, ExclusiveModeMovesLinesInsteadOfCopying)
{
    hier::Options opts;
    opts.mode = InclusionMode::kExclusive;
    hier::Hierarchy h(smallSpec(), 1, opts);

    // Fill one L1 set past its associativity: the displaced victims
    // must live in L2 (exactly once), not be duplicated.
    const unsigned l1Sets = h.geometry(0).numSets;
    std::vector<cache::Addr> conflict;
    for (unsigned i = 0; i < 6; ++i)
        conflict.push_back(static_cast<cache::Addr>(i) * l1Sets * 64);
    for (cache::Addr a : conflict)
        h.access(a);
    // The two oldest lines were displaced to L2; touching one hits
    // L2 (and promotes it back to L1).
    EXPECT_EQ(h.access(conflict[0]), 1u);
    // Promotion removed it from L2 and re-installed it at L1.
    EXPECT_EQ(h.access(conflict[0]), 0u);
}

TEST(Hier, ExclusiveLockstepMatchesInterpreted)
{
    hier::CrossCheckOptions opts;
    opts.mode = InclusionMode::kExclusive;
    opts.seed = 29;
    const auto report = hier::crossCheck(
        smallSpec(), mixedTrace(25000, 128 * 1024, 29), opts);
    EXPECT_TRUE(report.ok) << report.detail;

    // And with an interpreted fallback level in the stack.
    hier::CrossCheckOptions opts2;
    opts2.mode = InclusionMode::kExclusive;
    opts2.seed = 31;
    const auto report2 = hier::crossCheck(
        smallSpec("plru", "random"),
        mixedTrace(25000, 128 * 1024, 31), opts2);
    EXPECT_TRUE(report2.ok) << report2.detail;
}

TEST(Hier, InclusionModesRequireUniformLineSize)
{
    auto spec = smallSpec();
    spec.levels[1].lineSize = 128;
    spec.levels[1].capacityBytes = 64 * 128 * 8;
    hier::Options opts;
    opts.mode = InclusionMode::kExclusive;
    EXPECT_THROW(hier::Hierarchy h(spec, 1, opts), UsageError);
    EXPECT_THROW(eval::buildHierarchy(spec, 1,
                                      InclusionMode::kInclusive),
                 UsageError);
    // Non-inclusive mode keeps accepting mixed line sizes.
    hier::Hierarchy ok(spec);
    EXPECT_EQ(ok.depth(), 2u);
}

TEST(Hier, EvaluateHierarchyCompiledEqualsInterpreted)
{
    const auto spec = hw::reducedSpec(
        hw::catalogMachine("nehalem-i5"), 128);
    const auto t = trace::zipf(512 * 1024, 30000, 0.9, 41);

    eval::HierarchyOptions slow;
    slow.seed = 41;
    slow.forceInterpreted = true;
    eval::HierarchyOptions fast;
    fast.seed = 41;

    const auto a = eval::evaluateHierarchy(spec, t, slow);
    const auto b = eval::evaluateHierarchy(spec, t, fast);
    EXPECT_EQ(a.servedBy, b.servedBy);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.levelNames, b.levelNames);
    ASSERT_EQ(a.levels.size(), b.levels.size());
    for (size_t i = 0; i < a.levels.size(); ++i) {
        EXPECT_EQ(a.levels[i].hits, b.levels[i].hits);
        EXPECT_EQ(a.levels[i].misses, b.levels[i].misses);
        EXPECT_EQ(a.levels[i].evictions, b.levels[i].evictions);
        EXPECT_EQ(a.levels[i].writebacks, b.levels[i].writebacks);
    }
    EXPECT_DOUBLE_EQ(a.amat(), b.amat());
}

TEST(Hier, RunTraceAccountsEveryAccess)
{
    hier::Hierarchy h(smallSpec());
    const auto t = trace::randomUniform(256 * 1024, 10000, 43);
    const auto run = hier::runTrace(h, t);
    ASSERT_EQ(run.servedBy.size(), 3u);
    EXPECT_EQ(run.servedBy[0] + run.servedBy[1] + run.servedBy[2],
              10000u);
    EXPECT_EQ(run.accesses, 10000u);
    EXPECT_GE(run.amat(), 3.0);
    EXPECT_LE(run.amat(), 100.0);
}

} // namespace
