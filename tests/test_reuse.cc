/**
 * @file
 * Tests for the reuse-distance profiler.
 */

#include <gtest/gtest.h>

#include "recap/eval/reuse.hh"
#include "recap/eval/simulate.hh"
#include "recap/trace/generators.hh"

namespace
{

using namespace recap;
using eval::reuseProfile;

cache::Addr
line(uint64_t n)
{
    return n * 64;
}

TEST(Reuse, HandComputedDistances)
{
    // a b c b a: cold a, cold b, cold c, b at distance 1 (c between),
    // a at distance 2 (c and b between).
    trace::Trace t{line(1), line(2), line(3), line(2), line(1)};
    const auto profile = reuseProfile(t);
    EXPECT_EQ(profile.accesses, 5u);
    EXPECT_EQ(profile.coldMisses, 3u);
    EXPECT_EQ(profile.distances.countOf(1), 1u);
    EXPECT_EQ(profile.distances.countOf(2), 1u);
    EXPECT_EQ(profile.distances.total(), 2u);
}

TEST(Reuse, ImmediateReuseIsDistanceZero)
{
    trace::Trace t{line(1), line(1), line(1)};
    const auto profile = reuseProfile(t);
    EXPECT_EQ(profile.coldMisses, 1u);
    EXPECT_EQ(profile.distances.countOf(0), 2u);
}

TEST(Reuse, SubLineAccessesShareADistance)
{
    // Same 64 B line touched at different offsets: one block.
    trace::Trace t{0, 32, 63};
    const auto profile = reuseProfile(t);
    EXPECT_EQ(profile.coldMisses, 1u);
    EXPECT_EQ(profile.distances.countOf(0), 2u);
}

TEST(Reuse, CyclicScanDistanceEqualsFootprint)
{
    // Cycling N lines gives every non-cold access distance N-1.
    const auto t = trace::sequentialScan(64 * 16, 4);
    const auto profile = reuseProfile(t);
    EXPECT_EQ(profile.coldMisses, 16u);
    EXPECT_EQ(profile.distances.countOf(15), 3u * 16u);
}

TEST(Reuse, LruMissRatioFromHistogram)
{
    const auto t = trace::sequentialScan(64 * 16, 4);
    const auto profile = reuseProfile(t);
    // Fully-associative LRU with 16 lines: only cold misses.
    EXPECT_NEAR(profile.lruMissRatio(16), 16.0 / t.size(), 1e-12);
    // With fewer lines the cyclic scan thrashes completely.
    EXPECT_DOUBLE_EQ(profile.lruMissRatio(8), 1.0);
}

TEST(Reuse, MatchesFullyAssociativeLruSimulation)
{
    // The histogram prediction must equal a simulated
    // fully-associative LRU cache (numSets = 1).
    const auto t = trace::zipf(64 * 256, 20000, 0.8, 5);
    const auto profile = reuseProfile(t);
    for (unsigned lines : {16u, 64u, 128u}) {
        const cache::Geometry geom{64, 1, lines};
        const auto stats = eval::simulateTrace(geom, "lru", t);
        EXPECT_NEAR(profile.lruMissRatio(lines), stats.missRatio(),
                    1e-12)
            << lines << " lines";
    }
}

TEST(Reuse, CapacityForMissRatio)
{
    const auto t = trace::sequentialScan(64 * 32, 8);
    const auto profile = reuseProfile(t);
    // The cold-miss floor is 32/256 = 12.5%; 32 resident lines reach
    // it, fewer lines thrash at 100%.
    const auto capacity = profile.capacityForMissRatio(0.2);
    ASSERT_TRUE(capacity.has_value());
    EXPECT_EQ(*capacity, 32u);
    // A target below the cold-miss floor is unreachable.
    EXPECT_FALSE(profile.capacityForMissRatio(0.1).has_value());
}

TEST(Reuse, EmptyTrace)
{
    const auto profile = reuseProfile({});
    EXPECT_EQ(profile.accesses, 0u);
    EXPECT_EQ(profile.coldMisses, 0u);
    EXPECT_DOUBLE_EQ(profile.lruMissRatio(4), 0.0);
}

} // namespace
