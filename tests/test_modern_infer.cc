/**
 * @file
 * The inference pipeline against hidden modern-policy machines: a
 * set-dueling LLC is outside the paper's permutation class, so the
 * pipeline must classify it as non-permutation and either learn its
 * automaton exactly or abstain — never report a wrong permutation
 * verdict. Also covers the learner's behaviour on the modern policy
 * oracles directly, and the modern machine catalog's integrity.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "recap/common/error.hh"
#include "recap/hw/catalog.hh"
#include "recap/hw/machine.hh"
#include "recap/infer/pipeline.hh"
#include "recap/learn/lstar.hh"
#include "recap/learn/teacher.hh"
#include "recap/query/oracle.hh"

namespace
{

using namespace recap;

// ------------------------------------------------------- catalog

TEST(ModernCatalog, RosterIsPinnedAndSeparate)
{
    const std::vector<std::string> expected = {
        "haswell-dip", "skylake-drrip", "icelake-ship",
        "gracemont-eaf"};
    EXPECT_EQ(hw::modernCatalogNames(), expected);

    // The paper-reproduction catalog stays exactly Table 2's parts.
    const auto intel = hw::catalogNames();
    EXPECT_EQ(intel.size(), 8u);
    for (const auto& name : expected)
        EXPECT_EQ(std::find(intel.begin(), intel.end(), name),
                  intel.end())
            << name << " leaked into the Intel catalog";
}

TEST(ModernCatalog, LookupSpansBothCatalogs)
{
    EXPECT_EQ(hw::catalogMachine("haswell-dip").name, "haswell-dip");
    EXPECT_EQ(hw::catalogMachine("ivybridge-i5").name, "ivybridge-i5");
    EXPECT_THROW(hw::catalogMachine("no-such-part"), UsageError);
}

TEST(ModernCatalog, MachinesValidateAndBuild)
{
    for (const auto& spec : hw::modernCatalog()) {
        // Reduced geometry: construction exercises full validation
        // (policy specs parse, geometry is coherent) without paying
        // for multi-megabyte simulated caches.
        const auto reduced = hw::reducedSpec(spec, 64);
        hw::Machine machine(reduced);
        EXPECT_GE(machine.spec().levels.size(), 2u) << spec.name;
        // Every modern machine hides a dueling/predictor LLC.
        const auto& llc = spec.levels.back();
        const auto base = llc.policySpec.substr(
            0, llc.policySpec.find(':'));
        EXPECT_TRUE(base == "dip" || base == "drrip" ||
                    base == "ship" || base == "eaf")
            << spec.name << " LLC runs " << llc.policySpec;
    }
}

// ------------------------------------------------------- learner

learn::LearnOptions
testLearnOptions()
{
    learn::LearnOptions opts;
    opts.maxStates = 512;
    opts.maxWords = 200'000;
    return opts;
}

TEST(ModernLearning, LearnsSmallEafExactly)
{
    // Without metadata the oracle-driven EAF degenerates to BIP,
    // whose throttle-4 epoch automaton is small enough to close.
    query::PolicyOracle oracle("eaf:4,4", 2);
    learn::OracleTeacher teacher(oracle);
    learn::LStarLearner learner(teacher, testLearnOptions());
    const auto res = learner.run();
    ASSERT_EQ(res.outcome, learn::LearnOutcome::kLearned);
    EXPECT_EQ(res.states, 16u); // pinned minimal machine size
}

TEST(ModernLearning, AbstainsOnOversizedModernAutomata)
{
    // SHiP's SHCT and DIP's duel blow past the 512-state budget;
    // the learner must abstain rather than return a wrong machine.
    for (const char* spec : {"ship", "dip:4,3,4"}) {
        query::PolicyOracle oracle(spec, 2);
        learn::OracleTeacher teacher(oracle);
        learn::LStarLearner learner(teacher, testLearnOptions());
        const auto res = learner.run();
        EXPECT_EQ(res.outcome, learn::LearnOutcome::kAbstained)
            << spec;
    }
}

// ------------------------------------------------------ pipeline

/** Single-level machine hiding @p policySpec at 2 ways. */
hw::MachineSpec
hiddenRig(const std::string& policySpec)
{
    hw::MachineSpec spec;
    spec.name = "rig-" + policySpec;
    spec.description = "hidden modern-policy rig";
    hw::CacheLevelSpec lvl;
    lvl.name = "L1";
    lvl.capacityBytes = uint64_t{64} * 64 * 2;
    lvl.ways = 2;
    lvl.hitLatency = 4;
    lvl.policySpec = policySpec;
    spec.levels = {lvl};
    spec.memoryLatency = 100;
    return spec;
}

/**
 * The acceptance criterion: inference against a hidden DIP level
 * must return a correct non-permutation classification — here, the
 * learning escalation converges on the exact automaton — and under
 * no circumstances a permutation-policy verdict.
 */
TEST(ModernPipeline, HiddenDipIsLearnedNeverMisclassified)
{
    hw::Machine machine(hiddenRig("dip"));
    infer::InferenceOptions opts;
    opts.adaptive.windowSets = 16;
    const auto report = infer::inferMachine(machine, opts);
    ASSERT_EQ(report.levels.size(), 1u);
    const auto& level = report.levels[0];

    // Never a wrong permutation verdict.
    EXPECT_FALSE(level.isPermutation);

    // Either learned exactly or honestly undetermined; on this rig
    // the learner converges, and the model predicts perfectly.
    ASSERT_TRUE(level.learned ||
                level.outcome == infer::LevelOutcome::kUndetermined);
    EXPECT_TRUE(level.learned);
    EXPECT_EQ(level.outcome, infer::LevelOutcome::kDecided);
    EXPECT_EQ(level.learnedStates, 178u); // pinned
    EXPECT_NE(level.verdict.find("learned automaton"),
              std::string::npos)
        << level.verdict;
    EXPECT_DOUBLE_EQ(level.agreement, 1.0);
}

} // namespace
