/**
 * @file
 * Tests for measurement-based geometry discovery: every catalog
 * machine's line size, set counts and associativities must be
 * recovered exactly, including under measurement noise with voting.
 */

#include <gtest/gtest.h>

#include "recap/hw/catalog.hh"
#include "recap/infer/geometry_probe.hh"

namespace
{

using namespace recap;
using infer::GeometryProbe;
using infer::GeometryProbeConfig;
using infer::MeasurementContext;

TEST(GeometryProbe, LineSize)
{
    hw::Machine machine(hw::catalogMachine("core2-e6300"));
    MeasurementContext ctx(machine);
    GeometryProbe probe(ctx);
    EXPECT_EQ(probe.discoverLineSize(), 64u);
}

TEST(GeometryProbe, SingleLevelDiscovery)
{
    auto spec = hw::reducedSpec(hw::catalogMachine("atom-d525"), 1024);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    GeometryProbe probe(ctx);
    const auto l1 = probe.discoverLevel(0, 64);
    EXPECT_EQ(l1.ways, 6u);
    EXPECT_EQ(l1.numSets, 64u);
    EXPECT_EQ(l1.capacityBytes(), 24u * 1024u);
}

TEST(GeometryProbe, AllCatalogMachinesReduced)
{
    for (const auto& name : hw::catalogNames()) {
        auto spec = hw::reducedSpec(hw::catalogMachine(name), 512);
        hw::Machine machine(spec);
        MeasurementContext ctx(machine);
        GeometryProbe probe(ctx);
        const auto discovered = probe.discoverAll();
        ASSERT_EQ(discovered.levels.size(), spec.levels.size())
            << name;
        EXPECT_EQ(discovered.lineSize, 64u) << name;
        for (size_t i = 0; i < spec.levels.size(); ++i) {
            const auto truth = spec.levels[i].geometry();
            EXPECT_EQ(discovered.levels[i].ways, truth.ways)
                << name << " L" << i + 1;
            EXPECT_EQ(discovered.levels[i].numSets, truth.numSets)
                << name << " L" << i + 1;
        }
    }
}

TEST(GeometryProbe, RobustUnderNoiseWithVoting)
{
    hw::NoiseConfig noise;
    noise.disturbProbability = 0.01;
    auto spec = hw::reducedSpec(hw::catalogMachine("core2-e6750"), 512);
    hw::Machine machine(spec, 1, noise);
    MeasurementContext ctx(machine);
    GeometryProbeConfig cfg;
    cfg.voteRepeats = 5;
    GeometryProbe probe(ctx, cfg);
    const auto discovered = probe.discoverAll();
    EXPECT_EQ(discovered.levels[0].ways, 8u);
    EXPECT_EQ(discovered.levels[1].ways, 16u);
}

TEST(GeometryProbe, LevelGeometryHelpers)
{
    infer::LevelGeometry g{64, 512, 8};
    EXPECT_EQ(g.setStride(), 64u * 512u);
    EXPECT_EQ(g.capacityBytes(), 256u * 1024u);
    const auto geom = g.toGeometry();
    EXPECT_EQ(geom.numSets, 512u);
}

} // namespace
