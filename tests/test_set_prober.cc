/**
 * @file
 * Tests for SetProber: routed accesses must faithfully expose the
 * target level's per-set behaviour despite inner-level filtering.
 */

#include <gtest/gtest.h>

#include "recap/common/error.hh"
#include "recap/common/rng.hh"
#include "recap/hw/catalog.hh"
#include "recap/infer/geometry_probe.hh"
#include "recap/infer/set_prober.hh"
#include "recap/policy/factory.hh"
#include "recap/policy/set_model.hh"

namespace
{

using namespace recap;
using infer::BlockId;
using infer::DiscoveredGeometry;
using infer::MeasurementContext;
using infer::SetProber;
using infer::SetProberConfig;

DiscoveredGeometry
geometryOf(const hw::MachineSpec& spec)
{
    DiscoveredGeometry geom;
    geom.lineSize = 64;
    for (const auto& lvl : spec.levels) {
        const auto g = lvl.geometry();
        geom.levels.push_back({64, g.numSets, g.ways});
    }
    return geom;
}

TEST(SetProber, ObserveMatchesGroundTruthModelAtL1)
{
    auto spec = hw::reducedSpec(hw::catalogMachine("core2-e6300"), 512);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    SetProber prober(ctx, geometryOf(spec), 0);

    std::vector<BlockId> seq{1, 2, 3, 1, 4, 5, 6, 7, 8, 9, 1, 2};
    const auto observed = prober.observe(seq);

    policy::SetModel model(machine.groundTruthPolicy(0));
    for (size_t i = 0; i < seq.size(); ++i)
        ASSERT_EQ(observed[i], model.access(seq[i])) << "pos " << i;
}

TEST(SetProber, ObserveMatchesGroundTruthModelAtL2)
{
    auto spec = hw::reducedSpec(hw::catalogMachine("core2-e6300"), 512);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    SetProber prober(ctx, geometryOf(spec), 1);
    EXPECT_EQ(prober.ways(), 8u);

    Rng rng(2);
    std::vector<BlockId> seq;
    for (int i = 0; i < 60; ++i)
        seq.push_back(1 + rng.nextBelow(10));
    const auto observed = prober.observe(seq);

    policy::SetModel model(machine.groundTruthPolicy(1));
    for (size_t i = 0; i < seq.size(); ++i)
        ASSERT_EQ(observed[i], model.access(seq[i])) << "pos " << i;
}

TEST(SetProber, ObserveMatchesGroundTruthModelAtL3)
{
    auto spec = hw::reducedSpec(hw::catalogMachine("sandybridge-i5"),
                                512);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    SetProber prober(ctx, geometryOf(spec), 2);
    EXPECT_EQ(prober.ways(), 12u);

    Rng rng(3);
    std::vector<BlockId> seq;
    for (int i = 0; i < 80; ++i)
        seq.push_back(1 + rng.nextBelow(14));
    const auto observed = prober.observe(seq);

    policy::SetModel model(machine.groundTruthPolicy(2));
    for (size_t i = 0; i < seq.size(); ++i)
        ASSERT_EQ(observed[i], model.access(seq[i])) << "pos " << i;
}

TEST(SetProber, SurvivesReflectsEvictionDepth)
{
    auto spec = hw::reducedSpec(hw::catalogMachine("core2-e6300"), 512);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    SetProber prober(ctx, geometryOf(spec), 1);
    const unsigned k = prober.ways();

    // Fill blocks 1..k; block 1 is tree-PLRU's first victim from the
    // canonical state, so it fails to survive one extra miss.
    std::vector<BlockId> fill;
    for (unsigned b = 1; b <= k; ++b)
        fill.push_back(b);
    EXPECT_TRUE(prober.survives(fill, 1));
    auto with_miss = fill;
    with_miss.push_back(500);
    EXPECT_FALSE(prober.survives(with_miss, 1));
    // Some other block survived that miss.
    EXPECT_TRUE(prober.survives(with_miss, k));
}

TEST(SetProber, DifferentBaseAddrProbesDifferentSets)
{
    auto spec = hw::reducedSpec(hw::catalogMachine("core2-e6300"), 512);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    const auto geom = geometryOf(spec);

    SetProberConfig pc0;
    SetProberConfig pc1;
    pc1.baseAddr = pc0.baseAddr + 64;
    SetProber p0(ctx, geom, 1, pc0);
    SetProber p1(ctx, geom, 1, pc1);
    EXPECT_NE(geom.levels[1].toGeometry().setIndex(p0.blockAddr(1)),
              geom.levels[1].toGeometry().setIndex(p1.blockAddr(1)));
}

TEST(SetProber, BlockAddressesShareEverySetIndex)
{
    auto spec = hw::reducedSpec(hw::catalogMachine("nehalem-i5"), 512);
    const auto geom = geometryOf(spec);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    SetProber prober(ctx, geom, 2);
    const auto a0 = prober.blockAddr(0);
    for (BlockId b = 1; b < 20; ++b) {
        const auto addr = prober.blockAddr(b);
        for (unsigned lvl = 0; lvl < geom.levels.size(); ++lvl) {
            const auto g = geom.levels[lvl].toGeometry();
            ASSERT_EQ(g.setIndex(addr), g.setIndex(a0))
                << "level " << lvl << " block " << b;
        }
        ASSERT_NE(geom.levels[2].toGeometry().tag(addr),
                  geom.levels[2].toGeometry().tag(a0));
    }
}

TEST(SetProber, VotingDefeatsDisturbanceNoise)
{
    hw::NoiseConfig noise;
    noise.disturbProbability = 0.02;
    auto spec = hw::reducedSpec(hw::catalogMachine("core2-e6300"), 512);
    hw::Machine machine(spec, 1, noise);
    MeasurementContext ctx(machine);
    SetProberConfig pc;
    pc.voteRepeats = 7;
    SetProber prober(ctx, geometryOf(spec), 0, pc);

    Rng rng(5);
    std::vector<BlockId> seq;
    for (int i = 0; i < 40; ++i)
        seq.push_back(1 + rng.nextBelow(10));
    const auto observed = prober.observe(seq);

    policy::SetModel model(machine.groundTruthPolicy(0));
    unsigned mismatches = 0;
    for (size_t i = 0; i < seq.size(); ++i)
        if (observed[i] != model.access(seq[i]))
            ++mismatches;
    EXPECT_LE(mismatches, 1u);
}

TEST(SetProber, RejectsBadLevels)
{
    auto spec = hw::reducedSpec(hw::catalogMachine("core2-e6300"), 512);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    const auto geom = geometryOf(spec);
    EXPECT_THROW(SetProber(ctx, geom, 2), UsageError);
}

} // namespace
