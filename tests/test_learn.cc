/**
 * @file
 * Tests for the L* learner: exact recovery of catalog policies
 * (isomorphism against the extracted ground-truth automaton),
 * recency-role learning at high associativity, and the abstention
 * paths (budgets, undetermined answers, low confidence, garbled
 * teachers) — the learner must never return a wrong automaton.
 */

#include <gtest/gtest.h>

#include "recap/common/rng.hh"
#include "recap/learn/learned_policy.hh"
#include "recap/learn/lstar.hh"
#include "recap/learn/teacher.hh"
#include "recap/policy/factory.hh"
#include "recap/policy/set_model.hh"
#include "recap/query/oracle.hh"

namespace
{

using namespace recap;
using learn::LearnOptions;
using learn::LearnOutcome;
using learn::LearnResult;
using learn::LStarLearner;
using learn::MealyMachine;
using learn::SymbolSemantics;
using learn::TeacherAnswer;
using learn::Word;

MealyMachine
truthOf(const std::string& spec, unsigned ways)
{
    const auto policy = policy::makePolicy(spec, ways);
    return learn::automatonOfPolicy(*policy, ways + 1).minimized();
}

LearnResult
learnPolicy(const std::string& spec, unsigned ways,
            LearnOptions options = {}, bool useReference = false)
{
    query::PolicyOracle oracle(spec, ways);
    learn::OracleTeacher teacher(oracle);
    LStarLearner learner(teacher, options);
    if (useReference)
        learner.setReference(truthOf(spec, ways));
    return learner.run();
}

void
expectExactRecovery(const std::string& spec, unsigned ways,
                    bool useReference = false)
{
    const auto result = learnPolicy(spec, ways, {}, useReference);
    ASSERT_EQ(result.outcome, LearnOutcome::kLearned)
        << spec << "@" << ways << ": " << result.diagnostics;
    const auto truth = truthOf(spec, ways);
    EXPECT_TRUE(result.machine.minimized().isomorphicTo(truth))
        << spec << "@" << ways << " learned " << result.states
        << " states, truth has " << truth.numStates();
    if (useReference) {
        // The product-BFS oracle proves equivalence outright.
        EXPECT_DOUBLE_EQ(result.equivalenceConfidence, 1.0);
    } else {
        // Sampled equivalence never claims certainty, only evidence.
        EXPECT_GT(result.equivalenceConfidence, 0.99);
        EXPECT_LT(result.equivalenceConfidence, 1.0);
    }
    EXPECT_GT(result.membershipWords, 0u);
    EXPECT_GT(result.accessesUsed, result.membershipWords);
}

/** Lockstep hit/miss mismatches of @p model against @p truthSpec. */
unsigned
lockstepMismatches(const policy::ReplacementPolicy& model,
                   const std::string& truthSpec, unsigned ways,
                   unsigned accesses)
{
    policy::SetModel learned(model.clone());
    policy::SetModel truth(policy::makePolicy(truthSpec, ways));
    Rng rng(123);
    unsigned mismatches = 0;
    for (unsigned i = 0; i < accesses; ++i) {
        if (i % 256 == 255) {
            learned.flush();
            truth.flush();
        }
        const auto block =
            static_cast<policy::BlockId>(rng.nextBelow(ways + 3) + 1);
        if (learned.access(block) != truth.access(block))
            ++mismatches;
    }
    return mismatches;
}

TEST(Learn, ExactRecoveryAtTwoWays)
{
    for (const char* spec :
         {"lru", "fifo", "plru", "bitplru", "nru", "lip",
          "qlru:H1,M1,R0,U2", "qlru:H1,M3,R0,U2"}) {
        expectExactRecovery(spec, 2);
    }
}

TEST(Learn, ExactRecoveryAtThreeWays)
{
    expectExactRecovery("lru", 3);
    expectExactRecovery("fifo", 3);
}

TEST(Learn, ExactRecoveryAtFourWaysWithReferenceOracle)
{
    // 206–611-state machines: the sampled equivalence phase still
    // converges but the complete W-method pass dominates runtime, so
    // the exact reference oracle stands in (the sampling path is
    // exercised at 2–3 ways above and in bench_learn_cost).
    for (const char* spec : {"lru", "fifo", "plru", "lip", "slru:1",
                             "slru"}) {
        expectExactRecovery(spec, 4, /*useReference=*/true);
    }
}

TEST(Learn, SampledEquivalenceMatchesReferenceAtFourWays)
{
    // The sampling path (random words + bounded W-method, no ground
    // truth) must find the same machine the reference oracle proves.
    LearnOptions options;
    const auto sampled = learnPolicy("plru", 4, options);
    ASSERT_EQ(sampled.outcome, LearnOutcome::kLearned)
        << sampled.diagnostics;
    EXPECT_TRUE(sampled.machine.minimized().isomorphicTo(
        truthOf("plru", 4)));
}

TEST(Learn, RecencyRolesLearnLruCompactly)
{
    // Under recency-role semantics LRU's state is just "how many
    // distinct blocks seen (capped)": ways + 1 states however large
    // the concrete space is.
    for (const unsigned ways : {4u, 8u}) {
        LearnOptions options;
        options.semantics = SymbolSemantics::kRecencyRoles;
        const auto result = learnPolicy("lru", ways, options);
        ASSERT_EQ(result.outcome, LearnOutcome::kLearned)
            << "lru@" << ways << ": " << result.diagnostics;
        EXPECT_EQ(result.states, ways + 1);
        const learn::LearnedPolicy model(
            ways, result.machine, SymbolSemantics::kRecencyRoles);
        EXPECT_EQ(lockstepMismatches(model, "lru", ways, 10000), 0u);
    }
}

TEST(Learn, ConcreteEightWaysAbstainsOnStateBudget)
{
    // LRU at 8 ways has ~3.6e5 concrete states: the learner must hit
    // the state budget and abstain, never return a truncated guess.
    LearnOptions options;
    options.maxStates = 64;
    options.maxWords = 50000;
    const auto result = learnPolicy("lru", 8, options);
    EXPECT_EQ(result.outcome, LearnOutcome::kAbstained);
    EXPECT_FALSE(result.diagnostics.empty());
}

TEST(Learn, WordBudgetAbstains)
{
    LearnOptions options;
    options.maxWords = 10;
    const auto result = learnPolicy("plru", 4, options);
    EXPECT_EQ(result.outcome, LearnOutcome::kAbstained);
    EXPECT_FALSE(result.diagnostics.empty());
}

/** Wraps a teacher and marks every answer undetermined. */
class UndeterminedTeacher : public learn::Teacher
{
  public:
    explicit UndeterminedTeacher(learn::Teacher& inner)
        : inner_(inner)
    {}

    unsigned ways() const override { return inner_.ways(); }
    std::string describe() const override { return "undetermined"; }
    std::vector<TeacherAnswer>
    answer(const std::vector<Word>& words) override
    {
        auto answers = inner_.answer(words);
        for (auto& a : answers)
            a.determined = false;
        return answers;
    }
    uint64_t wordsAsked() const override
    {
        return inner_.wordsAsked();
    }
    uint64_t accessesUsed() const override
    {
        return inner_.accessesUsed();
    }
    uint64_t experimentsUsed() const override
    {
        return inner_.experimentsUsed();
    }

  private:
    learn::Teacher& inner_;
};

TEST(Learn, UndeterminedAnswersAbstain)
{
    query::PolicyOracle oracle("lru", 2);
    learn::OracleTeacher inner(oracle);
    UndeterminedTeacher teacher(inner);
    LStarLearner learner(teacher);
    const auto result = learner.run();
    EXPECT_EQ(result.outcome, LearnOutcome::kAbstained);
    EXPECT_FALSE(result.diagnostics.empty());
}

/** Wraps a teacher, scaling every answer's confidence down. */
class LowConfidenceTeacher : public learn::Teacher
{
  public:
    LowConfidenceTeacher(learn::Teacher& inner, double confidence)
        : inner_(inner), confidence_(confidence)
    {}

    unsigned ways() const override { return inner_.ways(); }
    std::string describe() const override { return "low-confidence"; }
    std::vector<TeacherAnswer>
    answer(const std::vector<Word>& words) override
    {
        auto answers = inner_.answer(words);
        for (auto& a : answers)
            a.confidence = confidence_;
        return answers;
    }
    uint64_t wordsAsked() const override
    {
        return inner_.wordsAsked();
    }
    uint64_t accessesUsed() const override
    {
        return inner_.accessesUsed();
    }
    uint64_t experimentsUsed() const override
    {
        return inner_.experimentsUsed();
    }

  private:
    learn::Teacher& inner_;
    double confidence_;
};

TEST(Learn, ConfidenceFloorAbstains)
{
    query::PolicyOracle oracle("lru", 2);
    learn::OracleTeacher inner(oracle);
    LowConfidenceTeacher teacher(inner, 0.3);
    LearnOptions options;
    options.minConfidence = 0.5;
    LStarLearner learner(teacher, options);
    const auto result = learner.run();
    EXPECT_EQ(result.outcome, LearnOutcome::kAbstained);
}

TEST(Learn, ConfidenceFloorPassesWhenMet)
{
    query::PolicyOracle oracle("lru", 2);
    learn::OracleTeacher inner(oracle);
    LowConfidenceTeacher teacher(inner, 0.9);
    LearnOptions options;
    options.minConfidence = 0.5;
    LStarLearner learner(teacher, options);
    const auto result = learner.run();
    ASSERT_EQ(result.outcome, LearnOutcome::kLearned);
    EXPECT_DOUBLE_EQ(result.teacherConfidence, 0.9);
}

/** Wraps a teacher, flipping the last output of every Nth word. */
class GarbledTeacher : public learn::Teacher
{
  public:
    GarbledTeacher(learn::Teacher& inner, uint64_t period)
        : inner_(inner), period_(period)
    {}

    unsigned ways() const override { return inner_.ways(); }
    std::string describe() const override { return "garbled"; }
    std::vector<TeacherAnswer>
    answer(const std::vector<Word>& words) override
    {
        auto answers = inner_.answer(words);
        for (auto& a : answers) {
            if (++counter_ % period_ == 0 && !a.outputs.empty())
                a.outputs.back() = !a.outputs.back();
        }
        return answers;
    }
    uint64_t wordsAsked() const override
    {
        return inner_.wordsAsked();
    }
    uint64_t accessesUsed() const override
    {
        return inner_.accessesUsed();
    }
    uint64_t experimentsUsed() const override
    {
        return inner_.experimentsUsed();
    }

  private:
    learn::Teacher& inner_;
    uint64_t period_;
    uint64_t counter_ = 0;
};

TEST(Learn, GarbledTeacherNeverYieldsAWrongAutomaton)
{
    // The fault-injection property behind the design: a teacher that
    // lies must be caught by the prefix-consistency ledger (or hit a
    // budget) and turn into kAbstained. A lying teacher may at worst
    // delay convergence — but if the learner does converge, the
    // answer must still be the true machine.
    const auto truth = truthOf("plru", 2);
    for (const uint64_t period : {3u, 7u, 13u, 37u, 101u}) {
        query::PolicyOracle oracle("plru", 2);
        learn::OracleTeacher inner(oracle);
        GarbledTeacher teacher(inner, period);
        LStarLearner learner(teacher);
        const auto result = learner.run();
        if (result.outcome == LearnOutcome::kLearned) {
            EXPECT_TRUE(result.machine.minimized().isomorphicTo(truth))
                << "period " << period
                << " learned a wrong automaton";
        } else {
            EXPECT_FALSE(result.diagnostics.empty());
        }
    }
}

TEST(Learn, GarbledTeacherConflictIsDetected)
{
    // A dense fault rate cannot stay consistent across overlapping
    // prefixes: the ledger must expose it and the learner abstain.
    query::PolicyOracle oracle("plru", 2);
    learn::OracleTeacher inner(oracle);
    GarbledTeacher teacher(inner, 2);
    LStarLearner learner(teacher);
    const auto result = learner.run();
    EXPECT_EQ(result.outcome, LearnOutcome::kAbstained);
    EXPECT_NE(result.diagnostics.find("conflict"), std::string::npos)
        << result.diagnostics;
}

TEST(Learn, ConcretizeMapsRolesToBlocks)
{
    using learn::LStarLearner;
    // Concrete semantics: symbol s is block s + 1.
    const Word concrete = LStarLearner::concretize(
        {0, 2, 1}, SymbolSemantics::kConcreteBlocks, 3);
    EXPECT_EQ(concrete, (Word{1, 3, 2}));
    // Role semantics over alphabet 3 (ranks 0, 1 + fresh symbol 2):
    // fresh, fresh, most-recent, second-most-recent, fresh.
    const Word roles = LStarLearner::concretize(
        {2, 2, 0, 1, 2}, SymbolSemantics::kRecencyRoles, 3);
    EXPECT_EQ(roles, (Word{1, 2, 2, 1, 3}));
}

} // namespace
