/**
 * @file
 * Tests for the streaming statistics accumulators.
 */

#include <gtest/gtest.h>

#include "recap/common/error.hh"
#include "recap/common/stats.hh"

namespace
{

using namespace recap;

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 42.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 42.0);
    EXPECT_EQ(s.max(), 42.0);
    EXPECT_EQ(s.sum(), 42.0);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Unbiased sample variance of this classic data set is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev() * s.stddev(), s.variance(), 1e-12);
}

TEST(RunningStat, NegativeValues)
{
    RunningStat s;
    s.add(-5.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), -5.0);
    EXPECT_EQ(s.max(), 5.0);
}

TEST(Histogram, CountsAndTotal)
{
    Histogram h;
    h.add(4);
    h.add(4);
    h.add(12, 3);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.countOf(4), 2u);
    EXPECT_EQ(h.countOf(12), 3u);
    EXPECT_EQ(h.countOf(99), 0u);
}

TEST(Histogram, Mode)
{
    Histogram h;
    h.add(1, 5);
    h.add(2, 9);
    h.add(3, 4);
    EXPECT_EQ(h.mode(), 2);
    Histogram empty;
    EXPECT_THROW(empty.mode(), UsageError);
}

TEST(Histogram, Quantiles)
{
    Histogram h;
    for (int v = 1; v <= 100; ++v)
        h.add(v);
    EXPECT_EQ(h.quantile(0.0), 1);
    EXPECT_EQ(h.quantile(0.5), 50);
    EXPECT_EQ(h.quantile(1.0), 100);
    EXPECT_THROW(h.quantile(1.5), UsageError);
}

TEST(Histogram, BucketsSorted)
{
    Histogram h;
    h.add(30);
    h.add(-2);
    h.add(7);
    const auto buckets = h.buckets();
    ASSERT_EQ(buckets.size(), 3u);
    EXPECT_EQ(buckets[0].first, -2);
    EXPECT_EQ(buckets[1].first, 7);
    EXPECT_EQ(buckets[2].first, 30);
}

} // namespace
