/**
 * @file
 * Tests for the end-to-end inference pipeline on selected catalog
 * machines (the full sweep is the Table-2 bench; these are the
 * representative cases, kept small for test runtime).
 */

#include <gtest/gtest.h>

#include "recap/infer/set_prober.hh"
#include "recap/policy/factory.hh"
#include "recap/hw/catalog.hh"
#include "recap/infer/pipeline.hh"

namespace
{

using namespace recap;
using infer::inferMachine;
using infer::InferenceOptions;

infer::MachineReport
run_on(const std::string& name, unsigned maxSets = 512)
{
    auto spec = hw::reducedSpec(hw::catalogMachine(name), maxSets);
    hw::Machine machine(spec);
    InferenceOptions opts;
    opts.adaptive.windowSets = 64;
    return inferMachine(machine, opts);
}

TEST(Pipeline, Core2TwoLevelPlru)
{
    const auto report = run_on("core2-e6300");
    ASSERT_EQ(report.levels.size(), 2u);
    EXPECT_EQ(report.levels[0].verdict, "PLRU");
    EXPECT_EQ(report.levels[1].verdict, "PLRU");
    EXPECT_TRUE(report.levels[0].isPermutation);
    EXPECT_TRUE(report.levels[1].isPermutation);
    EXPECT_DOUBLE_EQ(report.levels[0].agreement, 1.0);
    EXPECT_DOUBLE_EQ(report.levels[1].agreement, 1.0);
    EXPECT_EQ(report.machineName, "core2-e6300");
    EXPECT_GT(report.totalLoads, 0u);
}

TEST(Pipeline, AtomLruPlusPlru)
{
    const auto report = run_on("atom-d525");
    ASSERT_EQ(report.levels.size(), 2u);
    EXPECT_EQ(report.levels[0].verdict, "LRU");
    EXPECT_EQ(report.levels[1].verdict, "PLRU");
}

TEST(Pipeline, WolfdaleNruFallsBackToCandidateSearch)
{
    const auto report = run_on("core2-e8400", 256);
    ASSERT_EQ(report.levels.size(), 2u);
    EXPECT_FALSE(report.levels[1].isPermutation);
    EXPECT_TRUE(report.levels[1].verdict.rfind("NRU", 0) == 0)
        << report.levels[1].verdict;
    EXPECT_FALSE(report.levels[1].survivors.empty());
    EXPECT_DOUBLE_EQ(report.levels[1].agreement, 1.0);
}

TEST(Pipeline, SandyBridgeQlruL3)
{
    const auto report = run_on("sandybridge-i5", 256);
    ASSERT_EQ(report.levels.size(), 3u);
    EXPECT_TRUE(report.levels[2].verdict.rfind("QLRU(H1,M1,R0,U2)", 0)
                == 0)
        << report.levels[2].verdict;
    EXPECT_FALSE(report.levels[2].adaptive);
}

TEST(Pipeline, IvyBridgeAdaptiveL3)
{
    const auto report = run_on("ivybridge-i5", 256);
    ASSERT_EQ(report.levels.size(), 3u);
    const auto& l3 = report.levels[2];
    EXPECT_TRUE(l3.adaptive);
    EXPECT_EQ(l3.adaptiveSelected, "qlru:H1,M3,R0,U2");
    EXPECT_EQ(l3.adaptiveUnselected, "qlru:H1,M1,R0,U2");
    EXPECT_NE(l3.verdict.find("adaptive"), std::string::npos);
    EXPECT_DOUBLE_EQ(l3.agreement, 1.0);
}

TEST(Pipeline, GeometryDiscoveredMatchesSpec)
{
    auto spec = hw::reducedSpec(hw::catalogMachine("nehalem-i5"), 256);
    hw::Machine machine(spec);
    InferenceOptions opts;
    opts.adaptive.windowSets = 32;
    const auto report = inferMachine(machine, opts);
    ASSERT_EQ(report.geometry.levels.size(), 3u);
    for (size_t i = 0; i < spec.levels.size(); ++i) {
        const auto truth = spec.levels[i].geometry();
        EXPECT_EQ(report.geometry.levels[i].ways, truth.ways);
        EXPECT_EQ(report.geometry.levels[i].numSets, truth.numSets);
    }
}

TEST(Pipeline, DisablingAdaptiveScanStillNamesLeaderPolicy)
{
    auto spec = hw::reducedSpec(hw::catalogMachine("ivybridge-i5"), 256);
    hw::Machine machine(spec);
    InferenceOptions opts;
    opts.detectAdaptivity = false;
    const auto report = inferMachine(machine, opts);
    const auto& l3 = report.levels[2];
    EXPECT_FALSE(l3.adaptive);
    // The default probed set (set 0) is a leader of the M1 variant,
    // whose behaviour the candidate search then reports.
    EXPECT_NE(l3.verdict.find("QLRU"), std::string::npos)
        << l3.verdict;
}

hw::MachineSpec
singleLevelSpec(const std::string& policy, unsigned ways)
{
    hw::MachineSpec spec;
    spec.name = "rig";
    spec.description = "single-level rig";
    hw::CacheLevelSpec lvl;
    lvl.name = "L1";
    lvl.capacityBytes = uint64_t{64} * 64 * ways;
    lvl.ways = ways;
    lvl.hitLatency = 4;
    lvl.policySpec = policy;
    spec.levels = {lvl};
    spec.memoryLatency = 100;
    return spec;
}

TEST(Pipeline, OutOfFamilyPolicyEscalatesToLearner)
{
    // bip with throttle 4 is outside the candidate family (the
    // family's bip uses throttle 32): instead of a bare
    // "unidentified", the pipeline must learn the automaton.
    hw::Machine machine(singleLevelSpec("bip:4", 2));
    InferenceOptions opts;
    opts.adaptive.windowSets = 16;
    const auto report = inferMachine(machine, opts);
    ASSERT_EQ(report.levels.size(), 1u);
    const auto& lvl = report.levels[0];
    EXPECT_TRUE(lvl.learned);
    EXPECT_EQ(lvl.outcome, infer::LevelOutcome::kDecided);
    EXPECT_NE(lvl.verdict.find("learned automaton"),
              std::string::npos)
        << lvl.verdict;
    EXPECT_EQ(lvl.learnedStates, 28u);
    EXPECT_GT(lvl.learnerQueries, 0u);
    EXPECT_GT(lvl.learnedEqConfidence, 0.99);
    EXPECT_DOUBLE_EQ(lvl.agreement, 1.0);
}

TEST(Pipeline, LearningEscalationCanBeDisabled)
{
    hw::Machine machine(singleLevelSpec("bip:4", 2));
    InferenceOptions opts;
    opts.adaptive.windowSets = 16;
    opts.learning.enabled = false;
    const auto report = inferMachine(machine, opts);
    ASSERT_EQ(report.levels.size(), 1u);
    const auto& lvl = report.levels[0];
    EXPECT_FALSE(lvl.learned);
    EXPECT_EQ(lvl.verdict, "unidentified (no candidate matched)");
}

TEST(Pipeline, AgreementMeasuredAgainstWrongModelIsLow)
{
    // Sanity-check measureAgreement itself: a FIFO model predicting
    // a PLRU machine must disagree noticeably.
    auto spec = hw::reducedSpec(hw::catalogMachine("core2-e6300"), 256);
    hw::Machine machine(spec);
    infer::MeasurementContext ctx(machine);
    infer::DiscoveredGeometry geom;
    geom.lineSize = 64;
    for (const auto& lvl : spec.levels) {
        const auto g = lvl.geometry();
        geom.levels.push_back({64, g.numSets, g.ways});
    }
    infer::SetProber prober(ctx, geom, 0);
    const auto wrong = policy::makePolicy("fifo", 8);
    const double agreement =
        infer::measureAgreement(prober, *wrong, 6, 42);
    EXPECT_LT(agreement, 0.99);
    EXPECT_GT(agreement, 0.3); // still correlated: both are caches
}

} // namespace
