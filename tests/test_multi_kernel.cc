/**
 * @file
 * Differential tests of the multi-policy lockstep kernel (K2): for
 * any lane composition — whole catalog, mixed compiled/fallback,
 * duplicated specs, randomized fuzz — every lane of
 * eval::simulateMultiPolicy must reproduce the per-policy
 * simulateTraceKernel result bit-exactly, and
 * eval::matchObservationMultiPolicy must agree with a per-candidate
 * SetModel replay. The CandidateSearch regression pins the lane
 * path against the legacy per-candidate fan-out with fixed seeds.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "recap/common/error.hh"
#include "recap/eval/kernel.hh"
#include "recap/eval/multi_kernel.hh"
#include "recap/hw/machine.hh"
#include "recap/infer/candidate_search.hh"
#include "recap/infer/geometry_probe.hh"
#include "recap/infer/set_prober.hh"
#include "recap/policy/compiled.hh"
#include "recap/policy/factory.hh"
#include "recap/policy/set_model.hh"
#include "recap/trace/generators.hh"

namespace recap::eval
{
namespace
{

void
expectStatsEqual(const cache::LevelStats& got,
                 const cache::LevelStats& ref, const std::string& what)
{
    EXPECT_EQ(got.accesses, ref.accesses) << what;
    EXPECT_EQ(got.hits, ref.hits) << what;
    EXPECT_EQ(got.misses, ref.misses) << what;
    EXPECT_EQ(got.evictions, ref.evictions) << what;
}

std::vector<std::string>
catalogFor(unsigned ways)
{
    std::vector<std::string> specs;
    for (const auto& spec : policy::catalogSpecs())
        if (policy::specSupportsWays(spec, ways))
            specs.push_back(spec);
    return specs;
}

/**
 * Whole-catalog differential at ways 2, 4 and 8: every lane —
 * lockstep or fallback — equals its per-policy simulateTraceKernel
 * run, and compiled lanes reproduce simulateCompiled's final images.
 */
TEST(MultiKernel, CatalogDifferentialAcrossWays)
{
    for (const unsigned ways : {2u, 4u, 8u}) {
        const cache::Geometry geom{64, 64, ways};
        const auto specs = catalogFor(ways);
        ASSERT_FALSE(specs.empty());
        const auto t = trace::zipf(32 * 1024, 20000, 0.9, 7);

        MultiPolicyOptions mopts;
        mopts.numThreads = 1;
        mopts.captureFinalImages = true;
        const auto lanes = simulateMultiPolicy(geom, specs, t, mopts);
        ASSERT_EQ(lanes.size(), specs.size());

        for (std::size_t i = 0; i < specs.size(); ++i) {
            const std::string what =
                specs[i] + " @" + std::to_string(ways) + "w";
            EXPECT_EQ(lanes[i].spec, specs[i]);
            KernelOptions kopts;
            kopts.seed = mopts.seed;
            expectStatsEqual(
                lanes[i].stats,
                simulateTraceKernel(geom, specs[i], t, kopts), what);

            if (!lanes[i].compiled)
                continue;
            const auto table =
                policy::compiledTableFor(specs[i], ways, {});
            ASSERT_NE(table, nullptr) << what;
            std::vector<SetImage> refImage;
            simulateCompiled(geom, *table, t, &refImage);
            EXPECT_EQ(lanes[i].finalImage, refImage) << what;
        }
    }
}

/** Lane groups mixing compiled and budget-fallback lanes in one
 *  call: a tiny compile budget forces the factorial-state policies
 *  onto the interpreted path while tree/bit policies stay compiled. */
TEST(MultiKernel, MixedCompiledAndFallbackLanes)
{
    const cache::Geometry geom{64, 64, 8};
    const std::vector<std::string> specs = {
        "lru", "plru", "fifo", "bitplru", "nru", "lip"};
    const auto t = trace::zipf(32 * 1024, 15000, 0.9, 3);

    MultiPolicyOptions mopts;
    mopts.numThreads = 1;
    mopts.budget.maxStates = 300; // plru/bitplru/nru only
    const auto lanes = simulateMultiPolicy(geom, specs, t, mopts);

    unsigned compiled = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        compiled += lanes[i].compiled ? 1 : 0;
        KernelOptions kopts;
        kopts.seed = mopts.seed;
        kopts.budget = mopts.budget;
        expectStatsEqual(lanes[i].stats,
                         simulateTraceKernel(geom, specs[i], t, kopts),
                         specs[i]);
    }
    EXPECT_EQ(compiled, 3u); // the group really was mixed
    EXPECT_TRUE(lanes[1].compiled);  // plru
    EXPECT_FALSE(lanes[0].compiled); // lru beyond 300 states
}

/** Duplicate specs (the candidate-grid shape the bench cycles) must
 *  come back lane-for-lane identical to their first occurrence. */
TEST(MultiKernel, DuplicateLanesMatchFirstOccurrence)
{
    const cache::Geometry geom{64, 64, 8};
    const std::vector<std::string> specs = {
        "lru", "plru", "lru", "srrip", "plru", "lru"};
    const auto t = trace::zipf(32 * 1024, 15000, 0.9, 5);

    MultiPolicyOptions mopts;
    mopts.numThreads = 1;
    mopts.captureFinalImages = true;
    const auto lanes = simulateMultiPolicy(geom, specs, t, mopts);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        for (std::size_t j = i + 1; j < specs.size(); ++j) {
            if (specs[i] != specs[j])
                continue;
            expectStatsEqual(lanes[j].stats, lanes[i].stats,
                             specs[i] + " duplicate");
            EXPECT_EQ(lanes[j].finalImage, lanes[i].finalImage);
        }
    }
}

/** Unsupported-associativity specs and mismatched lane geometry are
 *  rejected up front, not silently mis-simulated. */
TEST(MultiKernel, RejectsMismatchedGeometry)
{
    const cache::Geometry geom{64, 64, 6};
    const auto t = trace::sequentialScan(16 * 1024, 2, 64);
    // tree-PLRU needs power-of-two ways.
    EXPECT_THROW(
        simulateMultiPolicy(geom, {std::string("plru")}, t, {}),
        UsageError);

    // laneSeeds must be sized like specs.
    MultiPolicyOptions mopts;
    mopts.laneSeeds = {1, 2, 3};
    const cache::Geometry geom8{64, 64, 8};
    EXPECT_THROW(
        simulateMultiPolicy(geom8, {std::string("lru")}, t, mopts),
        UsageError);

    // A match lane whose automaton has the wrong associativity.
    const auto proto4 = policy::makePolicy("lru", 4);
    std::vector<SetLane> lanes;
    lanes.push_back(SetLane{nullptr, proto4.get()});
    const std::vector<policy::BlockId> seq = {1, 2, 3};
    const std::vector<bool> hits = {false, false, false};
    EXPECT_THROW(
        matchObservationMultiPolicy(8, lanes, seq, hits, hits),
        UsageError);
}

/** matchObservationMultiPolicy vs a per-candidate SetModel replay
 *  over randomized sequences and partially-determined observations,
 *  with compiled and fallback lanes side by side. */
TEST(MultiKernel, MatchObservationEqualsSetModelReplay)
{
    const unsigned ways = 4;
    const std::vector<std::string> specs = {
        "lru",  "fifo",  "plru", "bitplru",
        "nru",  "srrip", "lip",  "qlru:H1,M1,R0,U2",
        "slru", "qlru:H1,M3,R0,U2"};

    std::vector<policy::PolicyPtr> protos;
    std::vector<SetLane> lanes;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        protos.push_back(policy::makePolicy(specs[i], ways));
        // Leave every third lane interpreted to mix group + fallback.
        policy::CompiledTablePtr table;
        if (i % 3 != 2)
            table = policy::compiledTableFor(specs[i], ways, {});
        lanes.push_back(SetLane{table, protos.back().get()});
    }

    std::mt19937_64 rng(123);
    for (unsigned round = 0; round < 20; ++round) {
        const std::size_t len = 8 + rng() % 40;
        std::vector<policy::BlockId> seq(len);
        std::vector<bool> hits(len);
        std::vector<bool> determined(len);
        for (std::size_t j = 0; j < len; ++j) {
            seq[j] = 1 + rng() % (ways + 2);
            hits[j] = rng() % 2 == 0;
            determined[j] = rng() % 4 != 0;
        }

        const auto got = matchObservationMultiPolicy(
            ways, lanes, seq, hits, determined);
        ASSERT_EQ(got.size(), lanes.size());
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            policy::SetModel model(protos[i]->clone());
            model.flush();
            char want = 1;
            for (std::size_t j = 0; j < len; ++j) {
                const bool hit = model.access(seq[j]);
                if (determined[j] && hit != hits[j])
                    want = 0;
            }
            EXPECT_EQ(got[i], want)
                << specs[i] << " round " << round;
        }
    }
}

/** Randomized fuzz: random geometry, random catalog subset, random
 *  trace shape, random thread count and lane cap — always equal to
 *  the per-policy kernel. */
TEST(MultiKernel, FuzzRandomSpecsAndTraces)
{
    std::mt19937_64 rng(20260809);
    const unsigned waysChoices[] = {2, 4, 8};
    for (unsigned iter = 0; iter < 8; ++iter) {
        const unsigned ways = waysChoices[rng() % 3];
        const unsigned sets = 16u << (rng() % 3);
        const cache::Geometry geom{sets, 64, ways};

        auto all = catalogFor(ways);
        std::shuffle(all.begin(), all.end(), rng);
        const std::size_t n = 1 + rng() % std::min<std::size_t>(
                                      all.size(), 12);
        std::vector<std::string> specs(all.begin(), all.begin() + n);
        if (n >= 3)
            specs[n - 1] = specs[0]; // exercise dedup paths

        const uint64_t tseed = rng();
        const auto t =
            rng() % 2 == 0
                ? trace::zipf(16 * 1024 << (rng() % 3), 8000, 0.8,
                              tseed)
                : trace::randomUniform(16 * 1024 << (rng() % 3),
                                       8000, tseed);

        MultiPolicyOptions mopts;
        mopts.numThreads = 1 + rng() % 3;
        mopts.maxLanes = 1u << (rng() % 5);
        const auto lanes = simulateMultiPolicy(geom, specs, t, mopts);
        for (std::size_t i = 0; i < specs.size(); ++i) {
            KernelOptions kopts;
            kopts.seed = mopts.seed;
            expectStatsEqual(
                lanes[i].stats,
                simulateTraceKernel(geom, specs[i], t, kopts),
                specs[i] + " iter " + std::to_string(iter));
        }
    }
}

hw::MachineSpec
singleLevelSpec(const std::string& policy, unsigned ways)
{
    hw::MachineSpec spec;
    spec.name = "lane-rig";
    spec.description = "single-level lane regression machine";
    hw::CacheLevelSpec lvl;
    lvl.name = "L1";
    lvl.capacityBytes = uint64_t{64} * 64 * ways;
    lvl.ways = ways;
    lvl.hitLatency = 4;
    lvl.policySpec = policy;
    spec.levels = {lvl};
    spec.memoryLatency = 100;
    return spec;
}

infer::CandidateSearchResult
searchWith(const std::string& policy, unsigned ways, bool laneKernel)
{
    auto spec = singleLevelSpec(policy, ways);
    hw::Machine machine(spec);
    infer::MeasurementContext ctx(machine);
    infer::DiscoveredGeometry geom;
    geom.lineSize = 64;
    geom.levels.push_back({64, 64, ways});
    infer::SetProber prober(ctx, geom, 0);
    infer::CandidateSearchConfig cfg;
    cfg.seed = 4242;
    cfg.numThreads = 1;
    cfg.useLaneKernel = laneKernel;
    infer::CandidateSearch search(
        prober, infer::defaultCandidateSpecs(ways), cfg);
    return search.run();
}

/** The lane path and the legacy per-candidate fan-out must walk the
 *  same elimination trajectory: same survivors, verdict, rounds and
 *  measurement cost for fixed seeds. */
TEST(MultiKernel, CandidateSearchLanePathBitEqual)
{
    for (const std::string truth : {"plru", "nru", "fifo"}) {
        const auto lane = searchWith(truth, 4, true);
        const auto legacy = searchWith(truth, 4, false);
        EXPECT_EQ(lane.survivors, legacy.survivors) << truth;
        EXPECT_EQ(lane.decided, legacy.decided) << truth;
        EXPECT_EQ(lane.verdict, legacy.verdict) << truth;
        EXPECT_EQ(lane.undetermined, legacy.undetermined) << truth;
        EXPECT_EQ(lane.roundsRun, legacy.roundsRun) << truth;
        EXPECT_EQ(lane.loadsUsed, legacy.loadsUsed) << truth;
        EXPECT_EQ(lane.experimentsUsed, legacy.experimentsUsed)
            << truth;
    }
}

} // namespace
} // namespace recap::eval
