/**
 * @file
 * Tests for the synthetic workload generators.
 */

#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

#include "recap/common/error.hh"
#include "recap/trace/generators.hh"

namespace
{

using namespace recap;
using namespace recap::trace;

TEST(Trace, DistinctBlocksAndConcat)
{
    Trace t{0, 1, 63, 64, 128, 64};
    EXPECT_EQ(distinctBlocks(t, 64), 3u);
    Trace a{1, 2};
    Trace b{3};
    EXPECT_EQ(concatTraces({a, b, a}).size(), 5u);
    EXPECT_EQ(concatTraces({}), Trace{});
}

TEST(Trace, InterleaveRoundRobin)
{
    Trace a{1, 2, 3, 4};
    Trace b{10, 20};
    // chunk 1: a b a b a a (b exhausts after two rounds)
    EXPECT_EQ(interleaveTraces({a, b}, 1),
              (Trace{1, 10, 2, 20, 3, 4}));
    // chunk 2: aa bb aa
    EXPECT_EQ(interleaveTraces({a, b}, 2),
              (Trace{1, 2, 10, 20, 3, 4}));
    // chunk 0 behaves like chunk 1
    EXPECT_EQ(interleaveTraces({a, b}, 0),
              interleaveTraces({a, b}, 1));
    EXPECT_TRUE(interleaveTraces({}, 4).empty());
    EXPECT_EQ(interleaveTraces({a}, 3), a);
}

TEST(Generators, SequentialScanShape)
{
    const auto t = sequentialScan(1024, 3, 64);
    EXPECT_EQ(t.size(), 3u * 16u);
    EXPECT_EQ(distinctBlocks(t, 64), 16u);
    // Addresses ascend within a pass.
    EXPECT_LT(t[0], t[1]);
    EXPECT_EQ(t[0], t[16]); // pass restarts
}

TEST(Generators, StridedScanSkipsLines)
{
    const auto t = stridedScan(1024, 128, 1);
    EXPECT_EQ(t.size(), 8u);
    EXPECT_EQ(t[1] - t[0], 128u);
}

TEST(Generators, RandomUniformBounded)
{
    const auto t = randomUniform(4096, 1000, 7, 0);
    EXPECT_EQ(t.size(), 1000u);
    for (auto a : t) {
        EXPECT_LT(a, 4096u);
        EXPECT_EQ(a % 64, 0u);
    }
    EXPECT_EQ(t, randomUniform(4096, 1000, 7, 0)) << "determinism";
    EXPECT_NE(t, randomUniform(4096, 1000, 8, 0));
}

TEST(Generators, ZipfIsSkewed)
{
    const auto t = zipf(64 * 1024, 20000, 1.0, 3, 0);
    EXPECT_EQ(t.size(), 20000u);
    // The most popular line should dominate: count the mode.
    std::map<cache::Addr, unsigned> counts;
    for (auto a : t)
        ++counts[a];
    unsigned max_count = 0;
    for (const auto& [addr, n] : counts)
        max_count = std::max(max_count, n);
    // Uniform would give ~20 per line; Zipf(1.0) gives the top line
    // a large multiple of that.
    EXPECT_GT(max_count, 400u);
}

TEST(Generators, PointerChaseVisitsAllNodesCyclically)
{
    const size_t nodes = 64;
    const auto t = pointerChase(nodes, nodes * 2, 5);
    ASSERT_EQ(t.size(), nodes * 2);
    // Sattolo's algorithm yields one full cycle: the first `nodes`
    // accesses visit every node exactly once, then repeat.
    std::unordered_set<cache::Addr> first(t.begin(),
                                          t.begin() + nodes);
    EXPECT_EQ(first.size(), nodes);
    for (size_t i = 0; i < nodes; ++i)
        EXPECT_EQ(t[i], t[i + nodes]);
}

TEST(Generators, BlockedMatmulTouchesThreeMatrices)
{
    const auto t = blockedMatmul(16, 4);
    // dim^3 iterations, 3 accesses each.
    EXPECT_EQ(t.size(), 3u * 16 * 16 * 16);
    EXPECT_THROW(blockedMatmul(8, 16), UsageError);
}

TEST(Generators, StackDistanceModelReusesRecency)
{
    const auto t = stackDistanceModel(20000, 4.0, 11);
    EXPECT_EQ(t.size(), 20000u);
    // With a small mean distance most accesses reuse recent lines:
    // the footprint stays far below the access count.
    EXPECT_LT(distinctBlocks(t, 64), 6000u);
    EXPECT_GT(distinctBlocks(t, 64), 10u);
}

TEST(Generators, PhaseMixAlternates)
{
    const auto t = phaseMix(32 * 1024, 2, 2, 13);
    EXPECT_GT(t.size(), 1000u);
    // The thrash phases touch a footprint beyond the cache size.
    EXPECT_GT(distinctBlocks(t, 64) * 64, 32u * 1024u);
}

TEST(Generators, SuiteIsCompleteAndDeterministic)
{
    SuiteConfig cfg;
    cfg.cacheBytes = 32 * 1024;
    cfg.accessesPerWorkload = 20000;
    const auto suite = specLikeSuite(cfg);
    ASSERT_EQ(suite.size(), 9u);
    std::unordered_set<std::string> names;
    for (const auto& w : suite) {
        EXPECT_FALSE(w.name.empty());
        EXPECT_FALSE(w.description.empty());
        EXPECT_FALSE(w.trace.empty()) << w.name;
        names.insert(w.name);
    }
    EXPECT_EQ(names.size(), suite.size()) << "names must be unique";

    const auto again = specLikeSuite(cfg);
    for (size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(suite[i].trace, again[i].trace) << suite[i].name;
}

} // namespace
