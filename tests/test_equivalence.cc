/**
 * @file
 * Tests for the bounded behavioural-equivalence checker.
 */

#include <gtest/gtest.h>

#include "recap/common/error.hh"
#include "recap/infer/equivalence.hh"
#include "recap/policy/factory.hh"
#include "recap/policy/permutation.hh"
#include "recap/policy/qlru.hh"
#include "recap/policy/set_model.hh"

namespace
{

using namespace recap;
using infer::checkEquivalence;
using infer::EquivalenceConfig;

TEST(Equivalence, PolicyEqualsItself)
{
    for (const std::string spec : {"lru", "fifo", "plru", "nru"}) {
        auto a = policy::makePolicy(spec, 4);
        auto b = policy::makePolicy(spec, 4);
        const auto result = checkEquivalence(*a, *b);
        EXPECT_TRUE(result.equivalent) << spec;
        EXPECT_TRUE(result.exhausted) << spec;
        EXPECT_GT(result.statesExplored, 0u) << spec;
    }
}

TEST(Equivalence, LruVsFifoDistinguished)
{
    auto lru = policy::makePolicy("lru", 4);
    auto fifo = policy::makePolicy("fifo", 4);
    const auto result = checkEquivalence(*lru, *fifo);
    ASSERT_FALSE(result.equivalent);
    ASSERT_FALSE(result.counterexample.empty());

    // The counterexample must actually distinguish them.
    policy::SetModel a(lru->clone());
    policy::SetModel b(fifo->clone());
    bool diverged = false;
    for (policy::BlockId blk : result.counterexample)
        if (a.access(blk) != b.access(blk))
            diverged = true;
    EXPECT_TRUE(diverged);
}

TEST(Equivalence, CounterexampleIsShortest)
{
    // LRU and FIFO at k=2: need to fill (2 misses), refresh, evict,
    // and re-probe: a divergence needs at least 4 accesses; BFS must
    // find one of minimal length.
    auto lru = policy::makePolicy("lru", 2);
    auto fifo = policy::makePolicy("fifo", 2);
    const auto result = checkEquivalence(*lru, *fifo);
    ASSERT_FALSE(result.equivalent);
    EXPECT_GE(result.counterexample.size(), 4u);
    EXPECT_LE(result.counterexample.size(), 6u);
}

TEST(Equivalence, PlruEqualsLruAtTwoWays)
{
    auto plru = policy::makePolicy("plru", 2);
    auto lru = policy::makePolicy("lru", 2);
    const auto result = checkEquivalence(*plru, *lru);
    EXPECT_TRUE(result.equivalent);
    EXPECT_TRUE(result.exhausted);
}

TEST(Equivalence, PlruDiffersFromLruAtFourWays)
{
    auto plru = policy::makePolicy("plru", 4);
    auto lru = policy::makePolicy("lru", 4);
    const auto result = checkEquivalence(*plru, *lru);
    EXPECT_FALSE(result.equivalent);
}

TEST(Equivalence, PermutationFormsMatchConcrete)
{
    for (const auto& [perm, concrete] :
         std::vector<std::pair<std::string, std::string>>{
             {"perm-lru", "lru"},
             {"perm-fifo", "fifo"},
             {"perm-plru", "plru"}}) {
        auto a = policy::makePolicy(perm, 4);
        auto b = policy::makePolicy(concrete, 4);
        const auto result = checkEquivalence(*a, *b);
        EXPECT_TRUE(result.equivalent) << perm;
        EXPECT_TRUE(result.exhausted) << perm;
    }
}

TEST(Equivalence, NruEqualsDegenerateQlru)
{
    auto nru = policy::makePolicy("nru", 8);
    auto qlru = policy::makePolicy("qlru:H0,M0,R0,U2", 8);
    const auto result = checkEquivalence(*nru, *qlru);
    EXPECT_TRUE(result.equivalent);
    EXPECT_TRUE(result.exhausted);
}

TEST(Equivalence, BudgetExhaustionReported)
{
    auto a = policy::makePolicy("qlru:H1,M1,R0,U2", 8);
    auto b = policy::makePolicy("qlru:H1,M1,R0,U2", 8);
    EquivalenceConfig cfg;
    cfg.maxStates = 10;
    const auto result = checkEquivalence(*a, *b, cfg);
    EXPECT_TRUE(result.equivalent); // no divergence found...
    EXPECT_FALSE(result.exhausted); // ...but the space wasn't covered
}

TEST(Equivalence, MismatchedWaysRejected)
{
    auto a = policy::makePolicy("lru", 4);
    auto b = policy::makePolicy("lru", 8);
    EXPECT_THROW(checkEquivalence(*a, *b), UsageError);
}

TEST(Equivalence, QlruNeighbouringVariantsDiffer)
{
    auto m1 = policy::makePolicy("qlru:H1,M1,R0,U2", 4);
    auto m3 = policy::makePolicy("qlru:H1,M3,R0,U2", 4);
    const auto result = checkEquivalence(*m1, *m3);
    EXPECT_FALSE(result.equivalent);
}

/**
 * Derived structural result, pinned: the 48-variant QLRU grid
 * collapses to exactly 40 behavioural classes at k=4 (all pairwise
 * checks exhaustive). The collapses all involve the lazy update rule
 * U0, whose victim choice ignores insertion-age differences in some
 * configurations.
 */
TEST(Equivalence, QlruGridHasFortyClassesAtFourWays)
{
    std::vector<std::string> specs;
    for (const auto& p : policy::QlruParams::allVariants())
        specs.push_back("qlru:" + p.shortName());

    std::vector<int> cls(specs.size(), -1);
    int classes = 0;
    for (size_t i = 0; i < specs.size(); ++i) {
        if (cls[i] >= 0)
            continue;
        cls[i] = classes++;
        for (size_t j = i + 1; j < specs.size(); ++j) {
            if (cls[j] >= 0)
                continue;
            EquivalenceConfig cfg;
            cfg.maxStates = 500000;
            const auto r = checkEquivalence(
                *policy::makePolicy(specs[i], 4),
                *policy::makePolicy(specs[j], 4), cfg);
            ASSERT_TRUE(r.exhausted)
                << specs[i] << " vs " << specs[j];
            if (r.equivalent)
                cls[j] = cls[i];
        }
    }
    EXPECT_EQ(classes, 40);
    // Every merge involves the lazy update rule U0.
    for (size_t i = 0; i < specs.size(); ++i) {
        for (size_t j = i + 1; j < specs.size(); ++j) {
            if (cls[i] != cls[j])
                continue;
            EXPECT_NE(specs[i].find("U0"), std::string::npos)
                << specs[i] << " ~ " << specs[j];
            EXPECT_NE(specs[j].find("U0"), std::string::npos)
                << specs[i] << " ~ " << specs[j];
        }
    }
}

} // namespace
