/**
 * @file
 * Tests for the sweep utilities.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "recap/common/error.hh"
#include "recap/eval/sweep.hh"
#include "recap/trace/generators.hh"

namespace
{

using namespace recap;
using eval::associativitySweep;
using eval::policyWorkloadSweep;
using eval::sizeSweep;

std::vector<trace::Workload>
tinySuite()
{
    return {
        {"scan", "fitting scan", trace::sequentialScan(8 * 1024, 3)},
        {"thrash", "oversized scan",
         trace::sequentialScan(64 * 1024, 3)},
    };
}

TEST(Sweep, PolicyWorkloadGridShape)
{
    const cache::Geometry geom{64, 64, 8};
    const auto result = policyWorkloadSweep(
        geom, {"lru", "fifo", "plru"}, tinySuite());
    EXPECT_EQ(result.rowLabels.size(), 4u); // 3 policies + OPT
    EXPECT_EQ(result.columnLabels.size(), 2u);
    EXPECT_EQ(result.cells.size(), 8u);
}

TEST(Sweep, UnsupportedPoliciesSkipped)
{
    const cache::Geometry geom{64, 64, 6}; // 6-way: no tree-PLRU
    const auto result = policyWorkloadSweep(
        geom, {"lru", "plru"}, tinySuite(), false);
    ASSERT_EQ(result.rowLabels.size(), 1u);
    EXPECT_EQ(result.rowLabels[0], "lru");
}

TEST(Sweep, OptRowLowerBoundsEveryCell)
{
    const cache::Geometry geom{64, 32, 4};
    const auto result = policyWorkloadSweep(
        geom, {"lru", "fifo", "random"}, tinySuite());
    for (const auto& w : result.columnLabels) {
        const auto& opt = result.at("OPT", w);
        for (const auto& row : result.rowLabels)
            EXPECT_LE(opt.misses, result.at(row, w).misses)
                << row << "/" << w;
    }
}

TEST(Sweep, AtThrowsForMissingCell)
{
    const cache::Geometry geom{64, 64, 8};
    const auto result =
        policyWorkloadSweep(geom, {"lru"}, tinySuite(), false);
    EXPECT_THROW(result.at("fifo", "scan"), UsageError);
    EXPECT_NO_THROW(result.at("lru", "thrash"));
}

TEST(Sweep, SizeSweepMonotoneForLru)
{
    const auto workload = trace::zipf(128 * 1024, 40000, 0.9, 3);
    const auto result = sizeSweep({"lru"}, workload, 8 * 1024,
                                  256 * 1024, 8, 64, false);
    ASSERT_EQ(result.columnLabels.size(), 6u);
    // LRU miss ratio never increases with capacity (inclusion
    // property of the stack algorithm).
    double previous = 1.1;
    for (const auto& col : result.columnLabels) {
        const double ratio = result.at("lru", col).missRatio;
        EXPECT_LE(ratio, previous + 1e-12) << col;
        previous = ratio;
    }
}

TEST(Sweep, SizeSweepRejectsBadRange)
{
    const auto workload = trace::sequentialScan(4096, 1);
    EXPECT_THROW(sizeSweep({"lru"}, workload, 1024, 512, 4),
                 UsageError);
}

TEST(Sweep, AssociativitySweepShape)
{
    const auto workload = trace::zipf(64 * 1024, 20000, 0.9, 4);
    const auto result = associativitySweep(
        {"lru", "plru", "nru"}, workload, 32 * 1024, 2, 16);
    EXPECT_EQ(result.columnLabels.size(), 4u); // 2,4,8,16
    EXPECT_EQ(std::count(result.rowLabels.begin(),
                         result.rowLabels.end(), "plru"),
              1);
    // Every policy cell simulated the same number of accesses.
    for (const auto& cell : result.cells)
        EXPECT_EQ(cell.accesses, workload.size());
}

} // namespace
