/**
 * @file
 * Tests for the security-analysis subsystem (recap::sec).
 *
 * The eviction-strategy searches are pinned against hand-derivable
 * ground truth: LRU and FIFO at associativity w need exactly w
 * accesses over w distinct lines, the insertion-throttled policies
 * resist blind conflict streams but not adaptive attackers, and the
 * LRU stealthy probe is the textbook 2w-1 cycle. Every search must
 * either complete or abstain explicitly under a tiny budget.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "recap/common/error.hh"
#include "recap/policy/compiled.hh"
#include "recap/policy/factory.hh"
#include "recap/sec/profile.hh"
#include "recap/trace/generators.hh"

namespace
{

using namespace recap;
using sec::SecOutcome;

sec::EvictStrategyResult
evictFor(const std::string& spec, unsigned ways)
{
    const auto view = sec::viewForSpec(spec, ways);
    EXPECT_TRUE(view.has_value()) << spec << " @" << ways;
    return sec::evictStrategy(*view);
}

// --- CompiledTableView ------------------------------------------------

TEST(CompiledTableView, RequiresTable)
{
    EXPECT_THROW(policy::CompiledTableView(nullptr), UsageError);
}

TEST(CompiledTableView, FilledStateFoldsSequentialFill)
{
    const auto table = policy::compiledTableFor("lru", 2, {});
    ASSERT_NE(table, nullptr);
    const policy::CompiledTableView view(table);
    uint32_t expected = view.resetState();
    expected = view.fillNext(expected, 0);
    expected = view.fillNext(expected, 1);
    EXPECT_EQ(view.filledState(), expected);
}

TEST(CompiledTableView, FullSetReachableStartsAtPrime)
{
    const auto table = policy::compiledTableFor("plru", 4, {});
    ASSERT_NE(table, nullptr);
    const policy::CompiledTableView view(table);
    const auto reachable = view.fullSetReachable();
    ASSERT_FALSE(reachable.empty());
    EXPECT_EQ(reachable.front(), view.filledState());
    // BFS interning: no duplicates, all states in range.
    std::set<uint32_t> seen;
    for (const uint32_t s : reachable) {
        EXPECT_LT(s, view.numStates());
        EXPECT_TRUE(seen.insert(s).second);
    }
}

TEST(CompiledTableView, ForwardsTableQueries)
{
    const auto table = policy::compiledTableFor("fifo", 4, {});
    ASSERT_NE(table, nullptr);
    const policy::CompiledTableView view(table);
    EXPECT_EQ(view.ways(), 4u);
    EXPECT_EQ(view.numStates(), table->numStates());
    EXPECT_EQ(view.policyName(), table->policyName());
    EXPECT_EQ(view.table(), table);
}

TEST(ViewForSpec, MetadataPoliciesDoNotCompile)
{
    EXPECT_FALSE(sec::viewForSpec("ship", 4).has_value());
    EXPECT_FALSE(sec::viewForSpec("eaf", 4).has_value());
}

TEST(ViewForSpec, CompileBudgetIsHonoured)
{
    sec::SecBudget tiny;
    tiny.compile.maxStates = 2;
    EXPECT_FALSE(sec::viewForSpec("lru", 4, tiny).has_value());
}

// --- Eviction strategies ---------------------------------------------

TEST(EvictStrategy, LruFifoPlruBlindMatchGroundTruth)
{
    for (const char* spec : {"lru", "fifo", "plru"}) {
        for (const unsigned w : {2u, 4u, 8u}) {
            const auto r = evictFor(spec, w);
            EXPECT_EQ(r.outcome, SecOutcome::kComplete);
            EXPECT_FALSE(r.pureMissUnbounded) << spec << " @" << w;
            EXPECT_EQ(r.pureMissLen, w) << spec << " @" << w;
        }
    }
}

TEST(EvictStrategy, LruFifoInformedNeedWaysDistinctLines)
{
    for (const char* spec : {"lru", "fifo"}) {
        for (const unsigned w : {2u, 4u}) {
            const auto r = evictFor(spec, w);
            ASSERT_EQ(r.informedOutcome, SecOutcome::kComplete);
            EXPECT_FALSE(r.informedUnbounded);
            EXPECT_EQ(r.informedLen, w) << spec << " @" << w;
            EXPECT_EQ(r.informedMinLines, w) << spec << " @" << w;
        }
    }
}

TEST(EvictStrategy, PlruAdaptiveAttackerSavesALine)
{
    // PLRU@4: four accesses still needed, but steering the tree lets
    // the attacker get by with three distinct lines.
    const auto r = evictFor("plru", 4);
    ASSERT_EQ(r.informedOutcome, SecOutcome::kComplete);
    EXPECT_EQ(r.informedLen, 4u);
    EXPECT_EQ(r.informedMinLines, 3u);
}

TEST(EvictStrategy, LipResistsBlindStreamsButNotAdaptiveOnes)
{
    for (const unsigned w : {2u, 4u}) {
        const auto r = evictFor("lip", w);
        EXPECT_EQ(r.outcome, SecOutcome::kComplete);
        EXPECT_TRUE(r.pureMissUnbounded) << "lip @" << w;
        ASSERT_EQ(r.informedOutcome, SecOutcome::kComplete);
        EXPECT_FALSE(r.informedUnbounded);
        EXPECT_GT(r.informedLen, w) << "lip @" << w;
    }
}

TEST(EvictStrategy, SrripPinnedValues)
{
    const auto r = evictFor("srrip:2", 2);
    EXPECT_EQ(r.pureMissLen, 4u);
    EXPECT_EQ(r.informedLen, 3u);
    EXPECT_EQ(r.informedMinLines, 2u);
}

TEST(EvictStrategy, InformedNeverBeatenByBlind)
{
    for (const char* spec : {"lru", "fifo", "plru", "nru", "srrip:2",
                             "slru", "dip:4,3,4"}) {
        const auto r = evictFor(spec, 4);
        if (r.outcome != SecOutcome::kComplete ||
            r.informedOutcome != SecOutcome::kComplete ||
            r.pureMissUnbounded || r.informedUnbounded) {
            continue;
        }
        EXPECT_LE(r.informedLen, r.pureMissLen) << spec;
    }
}

TEST(EvictStrategy, TinyBudgetAbstainsExplicitly)
{
    const auto view = sec::viewForSpec("lru", 4);
    ASSERT_TRUE(view.has_value());
    sec::SecBudget tiny;
    tiny.maxConfigs = 10;
    const auto r = sec::evictStrategy(*view, tiny);
    EXPECT_EQ(r.informedOutcome, SecOutcome::kOverBudget);
    // The blind tier is linear in the state count and still answers.
    EXPECT_EQ(r.outcome, SecOutcome::kComplete);
}

TEST(EvictStrategy, CrossCheckAgainstEvictBound)
{
    for (const char* spec :
         {"lru", "fifo", "plru", "nru", "lip", "bip", "srrip:2",
          "slru", "dip:4,3,4"}) {
        for (const unsigned w : {2u, 4u}) {
            if (!policy::specSupportsWays(spec, w))
                continue;
            const auto check = sec::crossCheckEvictBound(spec, w);
            EXPECT_TRUE(check.consistent)
                << spec << " @" << w << ": " << check.detail;
        }
    }
}

// --- Stealthy probes --------------------------------------------------

TEST(Stealth, LruAdmitsTextbookCycle)
{
    // LRU@k: touch the displaced line, then refresh the other k-1
    // attacker lines back into recency order — 2k-1 accesses.
    for (const unsigned w : {2u, 4u}) {
        const auto view = sec::viewForSpec("lru", w);
        ASSERT_TRUE(view.has_value());
        const auto r = sec::stealthProbe(*view);
        EXPECT_EQ(r.outcome, SecOutcome::kComplete);
        EXPECT_TRUE(r.feasible);
        EXPECT_EQ(r.probeLen, 2u * w - 1);
        EXPECT_EQ(r.probe.size(), r.probeLen);
        EXPECT_EQ(r.prepLen, 0u);
    }
}

TEST(Stealth, FifoHasNoStealthyCycle)
{
    // FIFO ignores touches entirely: no hit-only sequence can repair
    // the queue after the victim's insertion, so the monitoring line
    // cannot be re-armed stealthily.
    for (const unsigned w : {2u, 4u}) {
        const auto view = sec::viewForSpec("fifo", w);
        ASSERT_TRUE(view.has_value());
        const auto r = sec::stealthProbe(*view);
        EXPECT_EQ(r.outcome, SecOutcome::kComplete);
        EXPECT_FALSE(r.feasible);
    }
}

TEST(Stealth, ProbeWordStaysInRange)
{
    const auto view = sec::viewForSpec("plru", 4);
    ASSERT_TRUE(view.has_value());
    const auto r = sec::stealthProbe(*view);
    ASSERT_TRUE(r.feasible);
    EXPECT_LT(r.monitoredWay, 4u);
    for (const auto w : r.probe)
        EXPECT_LT(w, 4u);
    // Exactly one probe access reloads the displaced line.
    unsigned reloads = 0;
    for (const auto w : r.probe)
        if (w == r.monitoredWay)
            ++reloads;
    EXPECT_GE(reloads, 1u);
}

TEST(Stealth, TinyBudgetAbstainsExplicitly)
{
    const auto view = sec::viewForSpec("plru", 4);
    ASSERT_TRUE(view.has_value());
    sec::SecBudget tiny;
    tiny.maxConfigs = 3;
    const auto r = sec::stealthProbe(*view, tiny);
    EXPECT_EQ(r.outcome, SecOutcome::kOverBudget);
}

// --- Observability ----------------------------------------------------

TEST(Observability, CountsAreConsistent)
{
    const auto view = sec::viewForSpec("lru", 2);
    ASSERT_TRUE(view.has_value());
    const auto r = sec::observability(*view);
    ASSERT_EQ(r.outcome, SecOutcome::kComplete);
    EXPECT_EQ(r.patterns, 16u); // 2 victim lines, horizon 2*2
    EXPECT_GE(r.observations, 1u);
    EXPECT_LE(r.observations, r.reachedConfigs);
    EXPECT_NEAR(r.leakedBits,
                std::log2(static_cast<double>(r.observations)),
                1e-12);
    EXPECT_GE(r.minClass, 1u);
    EXPECT_LE(r.minClass, r.maxClass);
    EXPECT_LE(r.maxClass, r.patterns);
}

TEST(Observability, PlruLeaksWhereLruAbsorbs)
{
    // Pinned from the sweep: the probe cascade masks every victim
    // pattern under LRU@4, while PLRU@4's tree state leaks one bit.
    const auto lru = sec::viewForSpec("lru", 4);
    const auto plru = sec::viewForSpec("plru", 4);
    ASSERT_TRUE(lru.has_value());
    ASSERT_TRUE(plru.has_value());
    EXPECT_EQ(sec::observability(*lru).observations, 1u);
    EXPECT_EQ(sec::observability(*plru).observations, 2u);
}

TEST(Observability, HonoursHorizonAndAlphabet)
{
    const auto view = sec::viewForSpec("lru", 2);
    ASSERT_TRUE(view.has_value());
    sec::ObservabilityConfig cfg;
    cfg.victimLines = 3;
    cfg.horizon = 2;
    const auto r = sec::observability(*view, cfg);
    ASSERT_EQ(r.outcome, SecOutcome::kComplete);
    EXPECT_EQ(r.patterns, 9u);
}

TEST(Observability, TinyBudgetAbstainsExplicitly)
{
    const auto view = sec::viewForSpec("plru", 4);
    ASSERT_TRUE(view.has_value());
    sec::SecBudget tiny;
    tiny.maxConfigs = 2;
    const auto r = sec::observability(*view, {}, tiny);
    EXPECT_EQ(r.outcome, SecOutcome::kOverBudget);
}

// --- Profiles and ranking ---------------------------------------------

TEST(SecurityProfile, CompleteForLru)
{
    const auto p = sec::securityProfile("lru", 4);
    EXPECT_TRUE(p.compiled);
    EXPECT_FALSE(p.partial());
    const double score = sec::leakageScore(p);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 3.0);
    // LRU: stealth feasible (1) + minimal eviction sets (1).
    EXPECT_NEAR(score, 2.0, 1e-9);
}

TEST(SecurityProfile, NotCompiledStaysPartialWithZeroScore)
{
    const auto p = sec::securityProfile("ship", 4);
    EXPECT_FALSE(p.compiled);
    EXPECT_TRUE(p.partial());
    EXPECT_EQ(sec::leakageScore(p), 0.0);
}

TEST(SecuritySweep, FiltersUnsupportedWaysAndRanks)
{
    sec::ProfileConfig cfg;
    cfg.numThreads = 2;
    auto profiles =
        sec::securitySweep({"lru", "plru"}, {2, 3}, cfg);
    // plru@3 is not a valid configuration and must be skipped.
    ASSERT_EQ(profiles.size(), 3u);
    EXPECT_EQ(profiles[0].spec, "lru");
    EXPECT_EQ(profiles[2].spec, "plru");
    EXPECT_EQ(profiles[2].ways, 2u);

    sec::sortByLeakage(profiles);
    for (size_t i = 1; i < profiles.size(); ++i) {
        EXPECT_GE(sec::leakageScore(profiles[i - 1]),
                  sec::leakageScore(profiles[i]));
    }
}

TEST(SecuritySweep, DeterministicAcrossThreadCounts)
{
    sec::ProfileConfig serial;
    serial.numThreads = 1;
    sec::ProfileConfig parallel;
    parallel.numThreads = 4;
    const auto a = sec::securitySweep({"lru", "fifo", "nru"}, {2, 4},
                                      serial);
    const auto b = sec::securitySweep({"lru", "fifo", "nru"}, {2, 4},
                                      parallel);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].spec, b[i].spec);
        EXPECT_EQ(a[i].evict.informedLen, b[i].evict.informedLen);
        EXPECT_EQ(a[i].stealth.probeLen, b[i].stealth.probeLen);
        EXPECT_EQ(a[i].observe.observations,
                  b[i].observe.observations);
    }
}

// --- Attacker/victim trace generator ----------------------------------

TEST(AttackerVictim, RoundStructureAndSetMapping)
{
    trace::AttackerVictimConfig cfg;
    cfg.geometry = cache::Geometry{64, 64, 4};
    cfg.targetSet = 5;
    cfg.rounds = 3;
    cfg.victimAccessesPerRound = 6;
    const auto t = trace::attackerVictimInterleave(cfg);
    ASSERT_EQ(t.size(), 3u * (2 * 4 + 6));
    std::set<uint64_t> tags;
    for (const auto addr : t) {
        EXPECT_EQ(cfg.geometry.setIndex(addr), 5u);
        tags.insert(cfg.geometry.tag(addr));
    }
    // 4 attacker lines + 2 victim lines, all distinct tags.
    EXPECT_EQ(tags.size(), 6u);
}

TEST(AttackerVictim, ScanVictimIsDeterministicRoundRobin)
{
    trace::AttackerVictimConfig cfg;
    cfg.geometry = cache::Geometry{64, 16, 2};
    cfg.victimKind = trace::VictimPhaseKind::kScan;
    cfg.victimLines = 3;
    cfg.rounds = 1;
    cfg.victimAccessesPerRound = 6;
    const auto t = trace::attackerVictimInterleave(cfg);
    // Victim slice sits between prime and probe.
    const unsigned attackers = cfg.geometry.ways;
    for (unsigned a = 0; a < 6; ++a) {
        const auto addr = t[attackers + a];
        const uint64_t tag = cfg.geometry.tag(addr);
        EXPECT_EQ(tag, attackers + a % 3);
    }
}

TEST(AttackerVictim, SuiteCoversEveryVictimKind)
{
    const auto suite =
        trace::attackerVictimSuite(cache::Geometry{64, 64, 4});
    ASSERT_EQ(suite.size(), 3u);
    EXPECT_EQ(suite[0].name, "attacker-victim-zipf");
    EXPECT_EQ(suite[1].name, "attacker-victim-scan");
    EXPECT_EQ(suite[2].name, "attacker-victim-reuse");
    for (const auto& w : suite)
        EXPECT_FALSE(w.trace.empty());
}

TEST(AttackerVictim, RejectsBadConfigs)
{
    trace::AttackerVictimConfig cfg;
    cfg.targetSet = 1u << 20;
    EXPECT_THROW(trace::attackerVictimInterleave(cfg), UsageError);
    cfg = {};
    cfg.victimLines = 0;
    EXPECT_THROW(trace::attackerVictimInterleave(cfg), UsageError);
}

} // namespace
