/**
 * @file
 * Tests for the composable fault-injection model: per-source
 * behaviour, seed determinism, the NoiseConfig compatibility shim,
 * the hostile() intensity scaling, and the jitter regression (a
 * zero-cycle jitter source must inject nothing and never underflow).
 */

#include <gtest/gtest.h>

#include <set>

#include "recap/common/rng.hh"
#include "recap/hw/catalog.hh"
#include "recap/hw/faults.hh"
#include "recap/hw/machine.hh"

namespace
{

using namespace recap;
using namespace recap::hw;

cache::Geometry
l1Geometry()
{
    return catalogMachine("core2-e6300").levels.front().geometry();
}

TEST(FaultConfig, DefaultIsNoiseless)
{
    const FaultConfig cfg;
    EXPECT_FALSE(cfg.anyAccessFaults());
    EXPECT_FALSE(cfg.anyLatencyFaults());
    EXPECT_FALSE(cfg.anyCounterFaults());
    EXPECT_FALSE(cfg.anyFaults());
}

TEST(FaultConfig, FromNoiseMapsTheLegacyKnobs)
{
    NoiseConfig noise;
    noise.disturbProbability = 0.25;
    noise.latencyJitterProbability = 0.5;
    noise.latencyJitterCycles = 12;
    const FaultConfig cfg = FaultConfig::fromNoise(noise);
    EXPECT_TRUE(cfg.disturb.enabled);
    EXPECT_DOUBLE_EQ(cfg.disturb.probability, 0.25);
    EXPECT_TRUE(cfg.jitter.enabled);
    EXPECT_DOUBLE_EQ(cfg.jitter.probability, 0.5);
    EXPECT_EQ(cfg.jitter.cycles, 12u);
    // Nothing else sneaks in through the shim.
    EXPECT_FALSE(cfg.adjacentLine.enabled);
    EXPECT_FALSE(cfg.stream.enabled);
    EXPECT_FALSE(cfg.interrupts.enabled);
    EXPECT_FALSE(cfg.tlb.enabled);
    EXPECT_FALSE(cfg.counters.enabled);
    EXPECT_FALSE(cfg.phases.enabled);
}

TEST(FaultConfig, FromZeroNoiseIsNoiseless)
{
    EXPECT_FALSE(FaultConfig::fromNoise(NoiseConfig{}).anyFaults());
}

TEST(FaultConfig, HostileScalesWithIntensity)
{
    EXPECT_FALSE(FaultConfig::hostile(0.0).anyFaults());

    const FaultConfig one = FaultConfig::hostile(1.0);
    EXPECT_TRUE(one.disturb.enabled);
    EXPECT_TRUE(one.adjacentLine.enabled);
    EXPECT_TRUE(one.stream.enabled);
    EXPECT_TRUE(one.interrupts.enabled);
    EXPECT_TRUE(one.tlb.enabled);
    EXPECT_TRUE(one.jitter.enabled);
    EXPECT_TRUE(one.counters.enabled);
    EXPECT_TRUE(one.phases.enabled);

    const FaultConfig twice = FaultConfig::hostile(2.0);
    EXPECT_GT(twice.disturb.probability, one.disturb.probability);
    EXPECT_GT(twice.jitter.probability, one.jitter.probability);
    // Interrupt bursts come more often, never less.
    EXPECT_LE(twice.interrupts.meanQuietLoads,
              one.interrupts.meanQuietLoads);

    // Probabilities stay probabilities even at absurd intensities.
    const FaultConfig extreme = FaultConfig::hostile(1000.0);
    EXPECT_LE(extreme.disturb.probability, 1.0);
    EXPECT_LE(extreme.adjacentLine.probability, 1.0);
    EXPECT_LE(extreme.tlb.probability, 1.0);
    EXPECT_LE(extreme.jitter.probability, 1.0);
    EXPECT_LE(extreme.counters.garbleProbability, 1.0);
    EXPECT_LE(extreme.counters.dropProbability, 1.0);
}

TEST(FaultModel, NoiselessModelIsPassthrough)
{
    FaultModel model(FaultConfig{}, 7, l1Geometry());
    for (int i = 0; i < 100; ++i) {
        const auto plan = model.beforeLoad(64 * i);
        EXPECT_TRUE(plan.disturbances.empty());
        EXPECT_TRUE(plan.background.empty());
        EXPECT_EQ(plan.latencyPenalty, 0u);
        EXPECT_EQ(model.perturbLatency(10), 10u);
    }
}

TEST(FaultModel, DisturbancesAliasTheProbedSet)
{
    FaultConfig cfg;
    cfg.disturb.enabled = true;
    cfg.disturb.probability = 1.0;
    const auto l1 = l1Geometry();
    FaultModel model(cfg, 3, l1);
    const cache::Addr victim = 5 * l1.lineSize;
    for (int i = 0; i < 200; ++i) {
        const auto plan = model.beforeLoad(victim);
        ASSERT_EQ(plan.disturbances.size(), 1u);
        EXPECT_EQ(l1.setIndex(plan.disturbances[0]),
                  l1.setIndex(victim));
        EXPECT_NE(plan.disturbances[0], victim);
    }
}

TEST(FaultModel, AdjacentLinePrefetcherFetchesTheBuddy)
{
    FaultConfig cfg;
    cfg.adjacentLine.enabled = true;
    cfg.adjacentLine.probability = 1.0;
    const auto l1 = l1Geometry();
    FaultModel model(cfg, 3, l1);
    // The buddy of an even line is the next line; of an odd line, the
    // previous one (128-byte-aligned pair).
    const auto even = model.beforeLoad(0);
    ASSERT_EQ(even.background.size(), 1u);
    EXPECT_EQ(even.background[0], l1.lineSize);
    const auto odd = model.beforeLoad(l1.lineSize);
    ASSERT_EQ(odd.background.size(), 1u);
    EXPECT_EQ(odd.background[0], 0u);
}

TEST(FaultModel, StreamPrefetcherArmsOnAscendingRuns)
{
    FaultConfig cfg;
    cfg.stream.enabled = true;
    cfg.stream.trainLength = 3;
    cfg.stream.degree = 2;
    const auto l1 = l1Geometry();
    FaultModel model(cfg, 3, l1);

    // A random-looking pattern never arms the prefetcher.
    EXPECT_TRUE(model.beforeLoad(0).background.empty());
    EXPECT_TRUE(model.beforeLoad(7 * l1.lineSize).background.empty());
    EXPECT_TRUE(model.beforeLoad(2 * l1.lineSize).background.empty());

    // An ascending +1-line stream arms it after trainLength strides
    // and then prefetches `degree` lines ahead.
    std::size_t prefetched = 0;
    for (unsigned i = 10; i < 20; ++i) {
        const auto plan = model.beforeLoad(i * l1.lineSize);
        prefetched += plan.background.size();
        for (cache::Addr a : plan.background)
            EXPECT_GT(a, i * l1.lineSize);
    }
    EXPECT_GT(prefetched, 0u);
}

TEST(FaultModel, InterruptBurstsEvictAndPenalise)
{
    FaultConfig cfg;
    cfg.interrupts.enabled = true;
    cfg.interrupts.meanQuietLoads = 4.0; // bursts come fast
    cfg.interrupts.burstAccesses = 8;
    cfg.interrupts.latencyPenalty = 500;
    FaultModel model(cfg, 11, l1Geometry());

    std::size_t bursts = 0;
    for (int i = 0; i < 400; ++i) {
        const auto plan = model.beforeLoad(0);
        if (plan.latencyPenalty > 0) {
            ++bursts;
            EXPECT_EQ(plan.latencyPenalty, 500u);
            EXPECT_EQ(plan.background.size(), 8u);
            // The burst's penalty flows into the latency reading.
            EXPECT_GE(model.perturbLatency(10, plan.latencyPenalty),
                      510u);
        } else {
            EXPECT_EQ(model.perturbLatency(10, 0), 10u);
        }
    }
    EXPECT_GT(bursts, 10u);
}

TEST(FaultModel, TlbOutliersInflateSomeReadings)
{
    FaultConfig cfg;
    cfg.tlb.enabled = true;
    cfg.tlb.probability = 0.5;
    cfg.tlb.penalty = 150;
    FaultModel model(cfg, 13, l1Geometry());
    std::size_t outliers = 0;
    for (int i = 0; i < 300; ++i) {
        const uint64_t t = model.perturbLatency(10);
        ASSERT_GE(t, 10u);
        if (t >= 160)
            ++outliers;
    }
    EXPECT_GT(outliers, 50u);
    EXPECT_LT(outliers, 250u);
}

TEST(FaultModel, JitterIsStrictlyAdditive)
{
    FaultConfig cfg;
    cfg.jitter.enabled = true;
    cfg.jitter.probability = 1.0;
    cfg.jitter.cycles = 10;
    FaultModel model(cfg, 17, l1Geometry());
    for (int i = 0; i < 200; ++i) {
        const uint64_t t = model.perturbLatency(3);
        EXPECT_GE(t, 4u); // always inflated, never deflated
        EXPECT_LE(t, 13u);
    }
}

// Regression: the legacy noise path drew nextBelow(latencyJitterCycles)
// unguarded, which is ill-formed at cycles=0 (and a symmetric +/-
// jitter could underflow / invert level ordering).
TEST(FaultModel, ZeroCycleJitterInjectsNothing)
{
    FaultConfig cfg;
    cfg.jitter.enabled = true;
    cfg.jitter.probability = 1.0;
    cfg.jitter.cycles = 0;
    FaultModel model(cfg, 17, l1Geometry());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(model.perturbLatency(3), 3u);
}

TEST(FaultModel, CounterGarblingPerturbsReads)
{
    FaultConfig cfg;
    cfg.counters.enabled = true;
    cfg.counters.garbleProbability = 1.0;
    cfg.counters.dropProbability = 0.0;
    cfg.counters.garbleMagnitude = 2;
    FaultModel model(cfg, 19, l1Geometry());
    const CounterSnapshot exact{{100, 50, 50, 10}};
    std::size_t perturbed = 0;
    for (int i = 0; i < 50; ++i) {
        const auto read = model.readCounters(exact);
        ASSERT_EQ(read.words.size(), exact.words.size());
        for (std::size_t w = 0; w < read.words.size(); ++w) {
            const uint64_t delta = read.words[w] > exact.words[w]
                ? read.words[w] - exact.words[w]
                : exact.words[w] - read.words[w];
            EXPECT_LE(delta, 2u);
            perturbed += delta != 0;
        }
    }
    EXPECT_GT(perturbed, 0u);
}

TEST(FaultModel, DroppedCounterReadsReturnTheStaleSnapshot)
{
    FaultConfig cfg;
    cfg.counters.enabled = true;
    cfg.counters.garbleProbability = 0.0;
    cfg.counters.dropProbability = 1.0;
    FaultModel model(cfg, 23, l1Geometry());
    // The very first read has no stale snapshot to fall back to.
    const auto first = model.readCounters({{1, 2, 3}});
    EXPECT_EQ(first.words, (std::vector<uint64_t>{1, 2, 3}));
    // Every later read drops and replays the previous snapshot.
    const auto second = model.readCounters({{4, 5, 6}});
    EXPECT_EQ(second.words, first.words);
}

TEST(FaultModel, PhasesAlternateQuietAndBursty)
{
    FaultConfig cfg;
    cfg.phases.enabled = true;
    cfg.phases.meanQuietLoads = 50.0;
    cfg.phases.meanBurstyLoads = 50.0;
    cfg.disturb.enabled = true;
    cfg.disturb.probability = 0.05;
    cfg.phases.burstyMultiplier = 8.0;
    FaultModel model(cfg, 29, l1Geometry());
    std::size_t burstyLoads = 0;
    std::size_t quietDisturbs = 0;
    std::size_t burstyDisturbs = 0;
    for (int i = 0; i < 4000; ++i) {
        const bool bursty = model.inBurstyPhase();
        const auto plan = model.beforeLoad(0);
        burstyLoads += bursty;
        (bursty ? burstyDisturbs : quietDisturbs) +=
            plan.disturbances.size();
    }
    // Both phases occur, and the bursty phase disturbs much more
    // often per load.
    EXPECT_GT(burstyLoads, 500u);
    EXPECT_LT(burstyLoads, 3500u);
    EXPECT_GT(burstyDisturbs * 1000 / burstyLoads,
              2 * (quietDisturbs * 1000 / (4000 - burstyLoads) + 1));
}

TEST(FaultModel, EqualSeedsReplayIdentically)
{
    const FaultConfig cfg = FaultConfig::hostile(1.0);
    const auto l1 = l1Geometry();
    FaultModel a(cfg, 42, l1);
    FaultModel b(cfg, 42, l1);
    Rng addrs(5);
    for (int i = 0; i < 2000; ++i) {
        const cache::Addr addr = 64 * addrs.nextBelow(4096);
        const auto planA = a.beforeLoad(addr);
        const auto planB = b.beforeLoad(addr);
        ASSERT_EQ(planA.disturbances, planB.disturbances);
        ASSERT_EQ(planA.background, planB.background);
        ASSERT_EQ(planA.latencyPenalty, planB.latencyPenalty);
        ASSERT_EQ(a.perturbLatency(10, planA.latencyPenalty),
                  b.perturbLatency(10, planB.latencyPenalty));
    }
    // Counter faults draw from an independent stream: reading them on
    // one model does not perturb its interference sequence.
    (void)a.readCounters({{1, 2, 3}});
    for (int i = 0; i < 100; ++i) {
        const auto planA = a.beforeLoad(0);
        const auto planB = b.beforeLoad(0);
        ASSERT_EQ(planA.disturbances, planB.disturbances);
        ASSERT_EQ(planA.background, planB.background);
    }
}

TEST(FaultModel, DifferentSeedsDiverge)
{
    FaultConfig cfg;
    cfg.disturb.enabled = true;
    cfg.disturb.probability = 0.5;
    const auto l1 = l1Geometry();
    FaultModel a(cfg, 1, l1);
    FaultModel b(cfg, 2, l1);
    std::size_t differing = 0;
    for (int i = 0; i < 200; ++i) {
        if (a.beforeLoad(0).disturbances !=
            b.beforeLoad(0).disturbances)
            ++differing;
    }
    EXPECT_GT(differing, 0u);
}

// The two Machine constructors must behave identically for matching
// configurations: the NoiseConfig path is a pure shim.
TEST(MachineFaults, NoiseShimMatchesFaultConfigPath)
{
    NoiseConfig noise;
    noise.disturbProbability = 0.2;
    noise.latencyJitterProbability = 0.3;
    noise.latencyJitterCycles = 8;
    const auto spec = catalogMachine("core2-e6300");
    Machine viaNoise(spec, 77, noise);
    Machine viaFaults(spec, 77, FaultConfig::fromNoise(noise));
    Rng addrs(9);
    for (int i = 0; i < 1500; ++i) {
        const cache::Addr addr = 64 * addrs.nextBelow(2048);
        ASSERT_EQ(viaNoise.timedAccess(addr),
                  viaFaults.timedAccess(addr));
    }
    EXPECT_EQ(viaNoise.loadsIssued(), viaFaults.loadsIssued());
}

// Regression for the legacy jitter path: latencyJitterCycles = 0 with
// jitter probability 1 must be a no-op, not an Rng precondition crash.
TEST(MachineFaults, ZeroJitterCyclesIsCleanOnTheMachine)
{
    NoiseConfig noise;
    noise.latencyJitterProbability = 1.0;
    noise.latencyJitterCycles = 0;
    Machine m(catalogMachine("core2-e6300"), 1, noise);
    m.access(0);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(m.timedAccess(0), 3u);
}

TEST(MachineFaults, BackgroundTrafficIsNotChargedToTheExperimenter)
{
    FaultConfig cfg;
    cfg.adjacentLine.enabled = true;
    cfg.adjacentLine.probability = 1.0;
    Machine m(catalogMachine("core2-e6300"), 1, cfg);
    m.access(0);
    // The buddy fetch lands in the caches but is not an issued load.
    EXPECT_EQ(m.loadsIssued(), 1u);
    const auto counts = m.counters();
    EXPECT_EQ(counts.levels[0].accesses, 2u);
}

TEST(MachineFaults, HostileMachineStaysSeedDeterministic)
{
    const auto spec = catalogMachine("core2-e6300");
    const FaultConfig cfg = FaultConfig::hostile(1.5);
    Machine a(spec, 123, cfg);
    Machine b(spec, 123, cfg);
    Rng addrs(31);
    for (int i = 0; i < 3000; ++i) {
        const cache::Addr addr = 64 * addrs.nextBelow(4096);
        ASSERT_EQ(a.timedAccess(addr), b.timedAccess(addr));
    }
    const auto ca = a.counters();
    const auto cb = b.counters();
    EXPECT_EQ(ca.memoryAccesses, cb.memoryAccesses);
    ASSERT_EQ(ca.levels.size(), cb.levels.size());
    for (std::size_t i = 0; i < ca.levels.size(); ++i) {
        EXPECT_EQ(ca.levels[i].accesses, cb.levels[i].accesses);
        EXPECT_EQ(ca.levels[i].hits, cb.levels[i].hits);
    }
    EXPECT_EQ(a.loadsIssued(), b.loadsIssued());
}

} // namespace
