/**
 * @file
 * Tests for set-dueling adaptivity detection.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "recap/hw/catalog.hh"
#include "recap/infer/adaptive_detect.hh"

namespace
{

using namespace recap;
using infer::AdaptiveDetectConfig;
using infer::AdaptiveReport;
using infer::DiscoveredGeometry;
using infer::MeasurementContext;

DiscoveredGeometry
geometryOf(const hw::MachineSpec& spec)
{
    DiscoveredGeometry geom;
    geom.lineSize = 64;
    for (const auto& lvl : spec.levels) {
        const auto g = lvl.geometry();
        geom.levels.push_back({64, g.numSets, g.ways});
    }
    return geom;
}

AdaptiveReport
detect_on(const std::string& machineName, unsigned level,
          unsigned windowSets = 64)
{
    auto spec = hw::reducedSpec(hw::catalogMachine(machineName), 1024);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    AdaptiveDetectConfig cfg;
    cfg.windowSets = windowSets;
    return detectAdaptive(ctx, geometryOf(spec), level, cfg);
}

TEST(AdaptiveDetect, FindsIvyBridgeSetDueling)
{
    const auto report = detect_on("ivybridge-i5", 2);
    ASSERT_TRUE(report.adaptive);
    EXPECT_FALSE(report.heterogeneousOnly);
    // The 64-set window of a 1024-set cache with 32 leaders per
    // policy contains two of each.
    EXPECT_EQ(report.leadersSelected.size(), 2u);
    EXPECT_EQ(report.leadersUnselected.size(), 2u);
    EXPECT_GT(report.loadsUsed, 0u);
}

TEST(AdaptiveDetect, IdentifiesBothConstituents)
{
    const auto report = detect_on("ivybridge-i5", 2);
    ASSERT_TRUE(report.adaptive);
    // The pre-bias drives the duel to the thrash-resistant variant
    // (M3 insertion), so it reads as the selected policy.
    EXPECT_EQ(report.policySelected.verdict, "qlru:H1,M3,R0,U2");
    EXPECT_EQ(report.policyUnselected.verdict, "qlru:H1,M1,R0,U2");
    EXPECT_TRUE(report.policySelected.decided);
    EXPECT_TRUE(report.policyUnselected.decided);
}

TEST(AdaptiveDetect, LeaderPlacementMatchesGroundTruth)
{
    auto spec = hw::reducedSpec(hw::catalogMachine("ivybridge-i5"),
                                1024);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    AdaptiveDetectConfig cfg;
    cfg.windowSets = 64;
    const auto report = detectAdaptive(ctx, geometryOf(spec), 2, cfg);
    ASSERT_TRUE(report.adaptive);

    for (unsigned s : report.leadersSelected)
        EXPECT_NE(machine.levelSetRole(2, s),
                  cache::Cache::SetRole::kFollower)
            << "set " << s;
    for (unsigned s : report.leadersUnselected)
        EXPECT_NE(machine.levelSetRole(2, s),
                  cache::Cache::SetRole::kFollower)
            << "set " << s;
    // The two leader groups must be of opposite kinds.
    ASSERT_FALSE(report.leadersSelected.empty());
    ASSERT_FALSE(report.leadersUnselected.empty());
    EXPECT_NE(machine.levelSetRole(2, report.leadersSelected.front()),
              machine.levelSetRole(2,
                                   report.leadersUnselected.front()));
}

TEST(AdaptiveDetect, StaticLevelsReadUniform)
{
    for (unsigned level : {0u, 1u}) {
        const auto report = detect_on("ivybridge-i5", level, 32);
        EXPECT_FALSE(report.adaptive) << "level " << level;
        EXPECT_FALSE(report.heterogeneousOnly) << "level " << level;
    }
}

TEST(AdaptiveDetect, StaticL3ReadsUniform)
{
    const auto report = detect_on("sandybridge-i5", 2);
    EXPECT_FALSE(report.adaptive);
    EXPECT_FALSE(report.heterogeneousOnly);
    EXPECT_TRUE(report.leadersSelected.empty());
}

TEST(AdaptiveDetect, WindowClampedToCacheSets)
{
    // Requesting a window larger than the cache must not break.
    auto spec = hw::reducedSpec(hw::catalogMachine("atom-d525"), 128);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    AdaptiveDetectConfig cfg;
    cfg.windowSets = 4096;
    const auto report = detectAdaptive(ctx, geometryOf(spec), 0, cfg);
    EXPECT_FALSE(report.adaptive);
}

} // namespace
