/**
 * @file
 * Chaos-harness tests for the fault-tolerant query service.
 *
 * The contract under test: NO request is ever lost — every line
 * handed to ServerCore ends in exactly one taxonomy outcome
 * (answered / aborted / shed / degraded, or silent for blank lines),
 * under concurrent hostile clients, injected disconnects, slow
 * readers, malformed floods, scripted clock jumps and a machine
 * running FaultConfig::hostile(2). Breaker trip / half-open / close
 * transitions are pinned deterministically with an injected flaky
 * oracle and a scripted clock.
 *
 * RECAP_CHAOS_SMOKE=N scales the stochastic scenarios up N-fold (CI
 * runs a larger sweep; the default is sized for tier-1).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <future>
#include <set>
#include <sstream>
#include <thread>

#include "recap/hw/catalog.hh"
#include "recap/hw/machine.hh"
#include "recap/infer/measurement.hh"
#include "recap/query/chaos.hh"
#include "recap/query/service.hh"

namespace
{

using namespace recap;
using namespace recap::query;

bool
contains(const std::string& haystack, const std::string& needle)
{
    return haystack.find(needle) != std::string::npos;
}

unsigned
chaosScale()
{
    if (const char* env = std::getenv("RECAP_CHAOS_SMOKE")) {
        const int v = std::atoi(env);
        if (v > 1)
            return static_cast<unsigned>(v);
    }
    return 1;
}

/** The canonical reason names a request may legitimately end with. */
const std::set<std::string>&
knownReasons()
{
    static const std::set<std::string> names = {
        "timeout",        "access-budget", "shed",
        "breaker-open",   "line-too-long", "too-many-queries",
        "query-too-long", "no-quorum",     "oracle-failure",
        "disconnect",
    };
    return names;
}

TEST(ChaosPrimitives, ZipfSamplerIsDeterministicAndHotHeaded)
{
    const ZipfSampler zipf(10, 1.1);
    Rng a(42);
    Rng b(42);
    std::vector<std::size_t> counts(10, 0);
    for (int i = 0; i < 2000; ++i) {
        const std::size_t s = zipf.sample(a);
        ASSERT_EQ(s, zipf.sample(b)); // seed-deterministic
        ++counts[s];
    }
    // Index 0 carries the most mass, strictly more than the tail.
    EXPECT_GT(counts[0], counts[5]);
    EXPECT_GT(counts[0], counts[9]);
    EXPECT_GT(counts[0], 400u);
}

TEST(ChaosPrimitives, ChaosClockTicksAndJumps)
{
    ChaosClock clock(2, 3, 100);
    EXPECT_EQ(clock.read(), 3u);   // 1 + 2
    EXPECT_EQ(clock.read(), 5u);
    EXPECT_EQ(clock.read(), 107u); // third reading jumps +100
    EXPECT_EQ(clock.read(), 109u);
}

TEST(ChaosPrimitives, OutcomeNamesAreCanonical)
{
    EXPECT_STREQ(outcomeName(Outcome::kAnswered), "answered");
    EXPECT_STREQ(outcomeName(Outcome::kAborted), "aborted");
    EXPECT_STREQ(outcomeName(Outcome::kShed), "shed");
    EXPECT_STREQ(outcomeName(Outcome::kDegraded), "degraded");
    EXPECT_STREQ(outcomeName(Outcome::kSilent), "silent");
}

TEST(ChaosTaxonomy, EveryRequestClassifiedUnderConcurrentChaos)
{
    // >= 10k requests, 16 concurrent clients over 2 policy shards,
    // with disconnects, slow readers, malformed floods and oversized
    // lines all injected. The invariant: nothing crashes, nothing
    // hangs, and every single request ends in exactly one outcome.
    PolicyOracle shard0("lru", 8, 1);
    PolicyOracle shard1("lru", 8, 2);

    ServiceConfig cfg;
    cfg.session.limits.maxLineBytes = 1024;
    cfg.maxConcurrent = 4;
    cfg.maxQueue = 8;
    ServerCore core({&shard0, &shard1}, cfg);

    ChaosConfig chaos;
    chaos.clients = 16;
    chaos.requestsPerClient = 640 * chaosScale();
    chaos.seed = 7;
    chaos.disconnectEveryN = 7;
    chaos.slowReaderEveryN = 13;
    chaos.slowReaderMillis = 1;
    chaos.malformedEveryN = 11;
    chaos.oversizeEveryN = 17;

    const ChaosReport report = runChaos(core, chaos);

    EXPECT_EQ(report.issued,
              uint64_t{chaos.clients} * chaos.requestsPerClient);
    EXPECT_TRUE(report.complete())
        << report.classified() << " classified of " << report.issued;
    EXPECT_GT(report.answered, report.issued / 2);
    EXPECT_GT(report.aborted, 0u); // oversized lines
    EXPECT_GT(report.deliveredFailures, 0u); // disconnect injection
    for (const auto& [reason, count] : report.byReason)
        EXPECT_TRUE(knownReasons().count(reason))
            << "unknown reason " << reason << " x" << count;

    // The service's own accounting agrees with the client tallies.
    const ServiceStats stats = core.stats();
    EXPECT_EQ(stats.answered, report.answered);
    EXPECT_EQ(stats.aborted, report.aborted);
    EXPECT_EQ(stats.shed, report.shed);
    EXPECT_EQ(stats.degraded, report.degraded);
    EXPECT_EQ(stats.disconnects, report.deliveredFailures);

    // A healthy policy backend never trips its breakers.
    EXPECT_EQ(core.breaker(0).state(),
              CircuitBreaker::State::kClosed);
    EXPECT_EQ(core.breaker(1).state(),
              CircuitBreaker::State::kClosed);
    EXPECT_EQ(core.breaker(0).counters().trips, 0u);
}

TEST(ChaosService, HealthAnswersShardBreakerAndOutcomeState)
{
    PolicyOracle oracle("lru", 4, 1);
    ServerCore core({&oracle}, {});
    EXPECT_EQ(core.handle(0, "a b c d a?").outcome,
              Outcome::kAnswered);
    const auto health = core.handle(0, ":health");
    EXPECT_EQ(health.outcome, Outcome::kAnswered);
    EXPECT_TRUE(contains(health.json, "\"health\"")) << health.json;
    EXPECT_TRUE(contains(health.json, "\"breaker\":\"closed\""))
        << health.json;
    EXPECT_TRUE(contains(health.json, "\"answered\":1"))
        << health.json;
}

TEST(ChaosService, HealthReportsPerShardLatencyHistogram)
{
    PolicyOracle oracle("lru", 4, 1);
    ChaosClock clock(1);
    ServiceConfig cfg;
    cfg.session.clock = clock.fn();
    ServerCore core({&oracle}, cfg);

    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(core.handle(0, "a b c d a?").outcome,
                  Outcome::kAnswered);

    const auto health = core.handle(0, ":health");
    // Three admitted requests landed in the histogram; :health
    // itself is served before admission and must not count.
    EXPECT_TRUE(contains(health.json, "\"latency\":{\"count\":3"))
        << health.json;
    EXPECT_TRUE(contains(health.json, "\"p50_ms\":")) << health.json;
    EXPECT_TRUE(contains(health.json, "\"p99_ms\":")) << health.json;
    EXPECT_TRUE(contains(health.json, "\"buckets\":["))
        << health.json;
    // With a 1 ms/reading scripted clock every request takes a few
    // ms, so the quantiles are small but non-trivial to compute —
    // p99 can never undercut p50.
    const auto at = [&](const char* key) {
        const std::size_t pos = health.json.find(key);
        EXPECT_NE(pos, std::string::npos) << key;
        return std::strtoull(
            health.json.c_str() + pos + std::strlen(key), nullptr,
            10);
    };
    EXPECT_GE(at("\"p99_ms\":"), at("\"p50_ms\":"));
}

TEST(ChaosService, HealthExposesBreakerTransitionLog)
{
    PolicyOracle inner("lru", 4, 1);
    FlakyOracle flaky(inner, 0);
    ChaosClock clock(1);
    ServiceConfig cfg;
    cfg.session.clock = clock.fn();
    cfg.breaker.failureThreshold = 3;
    cfg.breaker.openMillis = 50;
    cfg.breaker.halfOpenSuccesses = 2;
    ServerCore core({&flaky}, cfg);

    // A fresh breaker has an empty transition log.
    const auto before = core.handle(0, ":health");
    EXPECT_TRUE(contains(before.json, "\"transitions\":[]"))
        << before.json;

    // Trip it: three consecutive oracle failures.
    flaky.arm(3);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(core.handle(0, "a b c d a?").outcome,
                  Outcome::kAborted);
    ASSERT_EQ(core.breaker(0).state(), CircuitBreaker::State::kOpen);

    const auto after = core.handle(0, ":health");
    EXPECT_TRUE(contains(after.json, "\"breaker\":\"open\""))
        << after.json;
    EXPECT_TRUE(contains(
        after.json,
        "\"transitions\":[{\"from\":\"closed\",\"to\":\"open\","
        "\"at\":"))
        << after.json;
}

TEST(ChaosAdmission, ShedsWithStructuredAnswerWhenSaturated)
{
    PolicyOracle oracle("lru", 4, 1);
    ServiceConfig cfg;
    cfg.maxConcurrent = 1;
    cfg.maxQueue = 0; // no waiting: busy means shed
    ServerCore core({&oracle}, cfg);

    std::promise<void> entered;
    std::promise<void> unblock;
    std::thread holder([&] {
        // The slow reader holds its admission slot while its sink
        // blocks — that is the backpressure the shed relies on.
        core.handle(0, "a b a?", [&](const std::string&) {
            entered.set_value();
            unblock.get_future().wait();
        });
    });
    entered.get_future().wait();

    const auto resp = core.handle(1, "a b a?");
    EXPECT_EQ(resp.outcome, Outcome::kShed);
    EXPECT_EQ(resp.reason, AbortReason::kShed);
    EXPECT_TRUE(contains(resp.json, "\"aborted\":\"shed\""))
        << resp.json;

    unblock.set_value();
    holder.join();
    EXPECT_EQ(core.stats().shed, 1u);
    EXPECT_EQ(core.stats().answered, 1u);
}

TEST(ChaosAdmission, QueueWaitCountsAgainstTheRequestDeadline)
{
    PolicyOracle oracle("lru", 4, 1);
    ChaosClock clock(20); // 20 ms per reading
    ServiceConfig cfg;
    cfg.maxConcurrent = 1;
    cfg.maxQueue = 4;
    cfg.session.limits.timeoutMillis = 50;
    cfg.session.clock = clock.fn();
    ServerCore core({&oracle}, cfg);

    std::promise<void> entered;
    std::promise<void> unblock;
    std::thread holder([&] {
        core.handle(0, "a b a?", [&](const std::string&) {
            entered.set_value();
            unblock.get_future().wait();
        });
    });
    entered.get_future().wait();

    // The queued request's 50 ms budget burns at 20 ms per clock
    // reading while it waits; it must abort as a timeout, not hang.
    const auto resp = core.handle(1, "a b a?");
    EXPECT_EQ(resp.outcome, Outcome::kAborted);
    EXPECT_EQ(resp.reason, AbortReason::kTimeout);
    EXPECT_TRUE(contains(resp.json, "queued")) << resp.json;

    unblock.set_value();
    holder.join();
}

TEST(ChaosRetry, TransientOracleFailuresAreRetriedAndRecover)
{
    PolicyOracle inner("lru", 4, 1);
    FlakyOracle flaky(inner, 0);
    ServiceConfig cfg;
    cfg.retry.maxAttempts = 3;
    cfg.retry.baseDelayMillis = 1;
    cfg.retry.jitter = 0.0;
    cfg.breaker.failureThreshold = 100; // keep it closed here
    ServerCore core({&flaky}, cfg);

    flaky.arm(2); // first two attempts fail, the third succeeds
    const auto resp = core.handle(0, "a b c d a?");
    EXPECT_EQ(resp.outcome, Outcome::kAnswered);
    EXPECT_EQ(resp.attempts, 3u);
    EXPECT_TRUE(contains(resp.json, "\"ok\":true")) << resp.json;
    EXPECT_EQ(core.stats().retries, 2u);

    // With retries exhausted the failure surfaces structurally.
    flaky.arm(5);
    const auto failed = core.handle(0, "a b c d a?");
    EXPECT_EQ(failed.outcome, Outcome::kAborted);
    EXPECT_EQ(failed.reason, AbortReason::kOracleFailure);
    EXPECT_TRUE(
        contains(failed.json, "\"aborted\":\"oracle-failure\""))
        << failed.json;
}

TEST(ChaosBreaker, TripsServesDegradedHalfOpensAndCloses)
{
    PolicyOracle inner("lru", 4, 1);
    FlakyOracle flaky(inner, 0);
    ChaosClock clock(1);
    ServiceConfig cfg;
    cfg.session.clock = clock.fn();
    cfg.breaker.failureThreshold = 3;
    cfg.breaker.openMillis = 50;
    cfg.breaker.halfOpenSuccesses = 2;
    ServerCore core({&flaky}, cfg);

    // 1. A healthy answer populates the degraded cache.
    EXPECT_EQ(core.handle(0, "a b c d a?").outcome,
              Outcome::kAnswered);

    // 2. Three consecutive oracle failures trip the breaker.
    flaky.arm(3);
    for (int i = 0; i < 3; ++i) {
        const auto resp = core.handle(0, "a b c d a?");
        EXPECT_EQ(resp.outcome, Outcome::kAborted);
        EXPECT_EQ(resp.reason, AbortReason::kOracleFailure);
    }
    EXPECT_EQ(core.breaker(0).state(), CircuitBreaker::State::kOpen);

    // 3. While open: the hot request replays from the cache...
    const auto cached = core.handle(0, "a b c d a?");
    EXPECT_EQ(cached.outcome, Outcome::kDegraded);
    EXPECT_TRUE(cached.fromCache);
    EXPECT_TRUE(contains(cached.json, "\"degraded\":true"))
        << cached.json;
    EXPECT_TRUE(contains(cached.json, "\"cached\":true"))
        << cached.json;
    EXPECT_TRUE(contains(cached.json, "\"probes\"")) << cached.json;

    // ...and a cold request abstains, structurally.
    const auto cold = core.handle(0, "x y z x?");
    EXPECT_EQ(cold.outcome, Outcome::kDegraded);
    EXPECT_FALSE(cold.fromCache);
    EXPECT_TRUE(contains(cold.json, "\"aborted\":\"breaker-open\""))
        << cold.json;

    // 4. After the open dwell the next request is the half-open
    // probe; two successes close the breaker again.
    for (int i = 0; i < 70; ++i)
        clock.read();
    EXPECT_EQ(core.handle(0, "a b c d a?").outcome,
              Outcome::kAnswered);
    EXPECT_EQ(core.handle(0, "a b c d a?").outcome,
              Outcome::kAnswered);
    EXPECT_EQ(core.breaker(0).state(),
              CircuitBreaker::State::kClosed);

    // 5. The transition log pins the exact state sequence.
    const auto transitions = core.breaker(0).transitions();
    ASSERT_EQ(transitions.size(), 3u);
    EXPECT_EQ(transitions[0].from, CircuitBreaker::State::kClosed);
    EXPECT_EQ(transitions[0].to, CircuitBreaker::State::kOpen);
    EXPECT_EQ(transitions[1].from, CircuitBreaker::State::kOpen);
    EXPECT_EQ(transitions[1].to, CircuitBreaker::State::kHalfOpen);
    EXPECT_EQ(transitions[2].from,
              CircuitBreaker::State::kHalfOpen);
    EXPECT_EQ(transitions[2].to, CircuitBreaker::State::kClosed);
    EXPECT_EQ(core.breaker(0).counters().trips, 1u);
    EXPECT_EQ(core.breaker(0).counters().closes, 1u);
}

namespace
{

/**
 * Aborts (with a structured reason) any query mentioning block "x";
 * everything else goes to the real policy oracle. Lets one session
 * abort deterministically while another stays healthy on the SAME
 * shard.
 */
class PoisonOracle : public QueryOracle
{
  public:
    unsigned ways() const override { return inner_.ways(); }
    std::string describe() const override
    {
        return "poison(" + inner_.describe() + ")";
    }
    QueryVerdict evaluate(const CompiledQuery& query) override
    {
        if (contains(query.text, "x"))
            throw RequestAborted("poisoned request",
                                 AbortReason::kAccessBudget);
        return inner_.evaluate(query);
    }
    uint64_t experimentsRun() const override
    {
        return inner_.experimentsRun();
    }
    uint64_t accessesIssued() const override
    {
        return inner_.accessesIssued();
    }

  private:
    PolicyOracle inner_{"lru", 4, 1};
};

} // namespace

TEST(ChaosIsolation, SessionsOnTheSameShardDoNotShareAborts)
{
    // Sessions 0 and 1 both pin to the single shard. Session 1's
    // every request aborts; session 0 must never see anything but
    // clean answers, no matter how the threads interleave. Run under
    // -DRECAP_SANITIZE=thread this also proves the checkpoint
    // install/clear and cache handoff are race-free.
    PoisonOracle oracle;
    ServiceConfig cfg;
    cfg.breaker.enabled = false; // aborts here must not trip it
    cfg.maxConcurrent = 4;
    ServerCore core({&oracle}, cfg);

    constexpr int kRequests = 250;
    std::vector<ServerCore::Response> healthy(kRequests);
    std::vector<ServerCore::Response> poisoned(kRequests);
    std::thread a([&] {
        for (int i = 0; i < kRequests; ++i)
            healthy[i] = core.handle(0, "a b c a?");
    });
    std::thread b([&] {
        for (int i = 0; i < kRequests; ++i)
            poisoned[i] = core.handle(1, "x a x?");
    });
    a.join();
    b.join();

    for (int i = 0; i < kRequests; ++i) {
        EXPECT_EQ(healthy[i].outcome, Outcome::kAnswered)
            << i << ": " << healthy[i].json;
        EXPECT_TRUE(contains(healthy[i].json, "\"ok\":true"))
            << healthy[i].json;
        EXPECT_EQ(poisoned[i].outcome, Outcome::kAborted) << i;
        EXPECT_EQ(poisoned[i].reason, AbortReason::kAccessBudget)
            << i;
    }
}

namespace
{

/** One machine-backed oracle shard for the hostile chaos run. */
struct HostileShard
{
    hw::Machine machine;
    infer::MeasurementContext ctx;
    MachineOracle oracle;

    HostileShard(const hw::MachineSpec& spec, uint64_t seed,
                 double hostileIntensity,
                 const MachineOracleConfig& cfg)
        : machine(spec, seed,
                  hw::FaultConfig::hostile(hostileIntensity)),
          ctx(machine),
          oracle(ctx, infer::assumedGeometry(spec), 0, cfg)
    {}
};

} // namespace

TEST(ChaosHostile, MachineShardsSurviveHostileIntensity2)
{
    // The acceptance scenario: MachineOracle shards over
    // FaultConfig::hostile(2.0) with adaptive voting, concurrent
    // clients, disconnect + slow-reader + malformed injection and
    // retries enabled. Every request must classify; abstentions
    // (no-quorum) and aborts are legitimate outcomes, crashes and
    // hangs are not.
    const auto spec =
        hw::reducedSpec(hw::catalogMachine("core2-e6300"), 64);
    MachineOracleConfig mcfg;
    mcfg.prober.vote.enabled = true;
    HostileShard shard0(spec, 11, 2.0, mcfg);
    HostileShard shard1(spec, 12, 2.0, mcfg);

    ServiceConfig cfg;
    cfg.session.limits.timeoutMillis = 10'000;
    cfg.retry.maxAttempts = 2;
    cfg.retry.baseDelayMillis = 1;
    cfg.breaker.failureThreshold = 5;
    cfg.breaker.openMillis = 20;
    ServerCore core({&shard0.oracle, &shard1.oracle}, cfg);

    ChaosConfig chaos;
    chaos.clients = 4;
    chaos.requestsPerClient = 12 * chaosScale();
    chaos.seed = 23;
    chaos.requestPool = {"a b a?", "a b c a?", "b a b?", ":stats"};
    chaos.disconnectEveryN = 5;
    chaos.slowReaderEveryN = 7;
    chaos.slowReaderMillis = 1;
    chaos.malformedEveryN = 9;

    const ChaosReport report = runChaos(core, chaos);

    EXPECT_EQ(report.issued,
              uint64_t{chaos.clients} * chaos.requestsPerClient);
    EXPECT_TRUE(report.complete())
        << report.classified() << " classified of " << report.issued;
    EXPECT_GT(report.answered, 0u);
    for (const auto& [reason, count] : report.byReason)
        EXPECT_TRUE(knownReasons().count(reason))
            << "unknown reason " << reason << " x" << count;
}

TEST(ChaosService, FramingRoutesSessionsAndEchoesPrefixes)
{
    PolicyOracle oracle("lru", 4, 1);
    ServerCore core({&oracle}, {});
    std::istringstream in("a b c d a?\n"
                          "1> :ways\n"
                          "9> :quit\n" // only ends session 9
                          "# comment\n"
                          ":quit\n");
    std::ostringstream out;
    const unsigned answered = runService(in, out, core);
    EXPECT_EQ(answered, 4u);

    std::vector<std::string> lines;
    std::istringstream parsed(out.str());
    for (std::string line; std::getline(parsed, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_TRUE(contains(lines[0], "\"ok\":true")) << lines[0];
    EXPECT_FALSE(contains(lines[0], ">")) << lines[0];
    EXPECT_TRUE(lines[1].rfind("1> ", 0) == 0) << lines[1];
    EXPECT_TRUE(contains(lines[1], "\"ways\":4")) << lines[1];
    EXPECT_TRUE(lines[2].rfind("9> ", 0) == 0) << lines[2];
    EXPECT_TRUE(contains(lines[2], "\"bye\":true")) << lines[2];
    EXPECT_TRUE(contains(lines[3], "\"bye\":true")) << lines[3];
}

TEST(ChaosService, SessionIdsBeyondTheLimitAreRefusedCleanly)
{
    PolicyOracle oracle("lru", 4, 1);
    ServiceConfig cfg;
    cfg.maxSessions = 4;
    ServerCore core({&oracle}, cfg);
    const auto resp = core.handle(99, ":ways");
    EXPECT_EQ(resp.outcome, Outcome::kAnswered);
    EXPECT_TRUE(resp.clientFault);
    EXPECT_TRUE(contains(resp.json, "out of range")) << resp.json;
}

} // namespace
