/**
 * @file
 * Tests for geometry-free eviction-set discovery.
 */

#include <gtest/gtest.h>

#include "recap/common/error.hh"
#include "recap/hw/catalog.hh"
#include "recap/infer/eviction_sets.hh"

namespace
{

using namespace recap;
using infer::EvictionSetConfig;
using infer::EvictionSetFinder;
using infer::MeasurementContext;

hw::MachineSpec
singleLevelSpec(const std::string& policy, unsigned ways,
                unsigned sets = 64)
{
    hw::MachineSpec spec;
    spec.name = "rig";
    spec.description = "single-level rig";
    hw::CacheLevelSpec lvl;
    lvl.name = "L1";
    lvl.capacityBytes = uint64_t{64} * sets * ways;
    lvl.ways = ways;
    lvl.hitLatency = 4;
    lvl.policySpec = policy;
    spec.levels = {lvl};
    spec.memoryLatency = 100;
    return spec;
}

EvictionSetConfig
configFor(unsigned ways)
{
    EvictionSetConfig cfg;
    cfg.level = 0;
    cfg.ways = ways;
    return cfg;
}

TEST(EvictionSets, EvictsDetectsConflictPressure)
{
    const auto spec = singleLevelSpec("lru", 4);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    EvictionSetFinder finder(ctx, configFor(4));

    const cache::Addr target = uint64_t{1} << 30;
    const uint64_t set_stride = 64 * 64;

    // Same-set conflicts: 4 lines evict a 4-way set.
    std::vector<cache::Addr> same_set;
    for (unsigned i = 1; i <= 4; ++i)
        same_set.push_back(target + i * set_stride);
    EXPECT_TRUE(finder.evicts(target, same_set));

    // Too few conflicts do not.
    same_set.pop_back();
    EXPECT_FALSE(finder.evicts(target, same_set));

    // Different-set lines never do.
    std::vector<cache::Addr> other_set;
    for (unsigned i = 1; i <= 16; ++i)
        other_set.push_back(target + 64 + i * set_stride);
    EXPECT_FALSE(finder.evicts(target, other_set));
}

TEST(EvictionSets, ReducesToMinimalSet)
{
    const auto spec = singleLevelSpec("lru", 8);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    EvictionSetFinder finder(ctx, configFor(8));

    const cache::Addr target = uint64_t{1} << 30;
    const uint64_t set_stride = 64 * 64;
    const auto geom = spec.levels[0].geometry();

    // A pool mixing 12 same-set lines with 60 decoys.
    std::vector<cache::Addr> pool;
    for (unsigned i = 1; i <= 12; ++i)
        pool.push_back(target + i * set_stride);
    for (unsigned i = 1; i <= 60; ++i)
        pool.push_back(target + 64 * i + i * set_stride);

    const auto result = finder.reduce(target, pool);
    ASSERT_TRUE(result.evictionSet.has_value());
    EXPECT_EQ(result.evictionSet->size(), 8u);
    for (cache::Addr line : *result.evictionSet)
        EXPECT_EQ(geom.setIndex(line), geom.setIndex(target));
    EXPECT_GT(result.tests, 0u);
    EXPECT_GT(result.loadsUsed, 0u);
}

TEST(EvictionSets, FailsGracefullyWithoutConflicts)
{
    const auto spec = singleLevelSpec("lru", 8);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    EvictionSetFinder finder(ctx, configFor(8));

    const cache::Addr target = uint64_t{1} << 30;
    // Decoys only: not enough same-set pressure.
    std::vector<cache::Addr> pool;
    for (unsigned i = 1; i <= 40; ++i)
        pool.push_back(target + 64 * (i % 63 + 1));
    const auto result = finder.reduce(target, pool);
    EXPECT_FALSE(result.evictionSet.has_value());
}

TEST(EvictionSets, FindFromRegionOnRandomPool)
{
    // The end-to-end flow: random lines over a span 4x the cache.
    const auto spec = singleLevelSpec("lru", 8);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    EvictionSetFinder finder(ctx, configFor(8));

    const auto geom = spec.levels[0].geometry();
    const cache::Addr target = uint64_t{1} << 30;
    const auto result = finder.findFromRegion(
        target, target + 64, 4 * geom.sizeBytes(), 1500, 11);
    ASSERT_TRUE(result.evictionSet.has_value());
    EXPECT_EQ(result.evictionSet->size(), 8u);
    for (cache::Addr line : *result.evictionSet)
        EXPECT_EQ(geom.setIndex(line), geom.setIndex(target));
}

TEST(EvictionSets, WorksForPlruAndNru)
{
    for (const std::string policy : {"plru", "nru"}) {
        const auto spec = singleLevelSpec(policy, 8);
        hw::Machine machine(spec);
        MeasurementContext ctx(machine);
        EvictionSetFinder finder(ctx, configFor(8));
        const auto geom = spec.levels[0].geometry();
        const cache::Addr target = uint64_t{1} << 30;
        const auto result = finder.findFromRegion(
            target, target + 64, 4 * geom.sizeBytes(), 1500, 7);
        ASSERT_TRUE(result.evictionSet.has_value()) << policy;
        for (cache::Addr line : *result.evictionSet)
            EXPECT_EQ(geom.setIndex(line), geom.setIndex(target))
                << policy;
    }
}

TEST(EvictionSets, RejectsBadConfig)
{
    const auto spec = singleLevelSpec("lru", 4);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    EvictionSetConfig cfg;
    cfg.level = 3;
    EXPECT_THROW(EvictionSetFinder(ctx, cfg), UsageError);
    cfg.level = 0;
    cfg.ways = 0;
    EXPECT_THROW(EvictionSetFinder(ctx, cfg), UsageError);
}

} // namespace
