/**
 * @file
 * Tests for the predictability metrics (state-space analysis): the
 * classic results must be reproduced — LRU's bounds are tight, PLRU
 * admits unbounded adversarial survival for k >= 4.
 */

#include <gtest/gtest.h>

#include "recap/eval/predictability.hh"
#include "recap/policy/factory.hh"

namespace
{

using namespace recap;
using eval::evictBound;
using eval::missTurnover;
using eval::PredictabilityConfig;

TEST(MissTurnover, LruIsExactlyK)
{
    for (unsigned k : {2u, 4u, 8u}) {
        const auto r = missTurnover(*policy::makePolicy("lru", k));
        ASSERT_TRUE(r.value.has_value()) << "k=" << k;
        EXPECT_EQ(*r.value, k) << "k=" << k;
    }
}

TEST(MissTurnover, FifoIsExactlyK)
{
    for (unsigned k : {2u, 4u, 8u}) {
        const auto r = missTurnover(*policy::makePolicy("fifo", k));
        ASSERT_TRUE(r.value.has_value());
        EXPECT_EQ(*r.value, k);
    }
}

TEST(MissTurnover, PlruIsExactlyKUnderPureMisses)
{
    // Consecutive fills tour all tree leaves: no state stretches the
    // pure-miss turnover beyond k.
    for (unsigned k : {2u, 4u, 8u}) {
        const auto r = missTurnover(*policy::makePolicy("plru", k));
        ASSERT_TRUE(r.value.has_value()) << "k=" << k;
        EXPECT_EQ(*r.value, k) << "k=" << k;
    }
}

TEST(MissTurnover, NruBounded)
{
    const auto r = missTurnover(*policy::makePolicy("nru", 4));
    ASSERT_TRUE(r.value.has_value());
    EXPECT_GE(*r.value, 4u);
    EXPECT_LE(*r.value, 8u);
}

TEST(MissTurnover, LipNeverCompletes)
{
    // LIP inserts at the LRU end: a miss stream keeps replacing the
    // same way, so the original content is never fully displaced.
    const auto r = missTurnover(*policy::makePolicy("lip", 4));
    EXPECT_TRUE(r.unbounded);
}

TEST(EvictBound, LruIsKMinusOne)
{
    for (unsigned k : {2u, 4u, 8u}) {
        const auto r = evictBound(*policy::makePolicy("lru", k));
        ASSERT_TRUE(r.value.has_value()) << "k=" << k;
        EXPECT_EQ(*r.value, k - 1) << "k=" << k;
    }
}

TEST(EvictBound, FifoIsKMinusOne)
{
    for (unsigned k : {2u, 4u}) {
        const auto r = evictBound(*policy::makePolicy("fifo", k));
        ASSERT_TRUE(r.value.has_value());
        EXPECT_EQ(*r.value, k - 1);
    }
}

TEST(EvictBound, PlruTwoWaysEqualsLru)
{
    const auto r = evictBound(*policy::makePolicy("plru", 2));
    ASSERT_TRUE(r.value.has_value());
    EXPECT_EQ(*r.value, 1u);
}

TEST(EvictBound, PlruUnboundedAtFourWays)
{
    // The classic predictability result: with k >= 4 an adversary
    // can keep re-pointing the PLRU tree away from a victim line
    // forever (hit a protected neighbour, then miss safely).
    const auto r = evictBound(*policy::makePolicy("plru", 4));
    EXPECT_TRUE(r.unbounded);
}

TEST(EvictBound, PlruUnboundedAtEightWays)
{
    const auto r = evictBound(*policy::makePolicy("plru", 8));
    EXPECT_TRUE(r.unbounded);
}

TEST(EvictBound, NruFinite)
{
    const auto r = evictBound(*policy::makePolicy("nru", 4));
    ASSERT_FALSE(r.unbounded);
    ASSERT_TRUE(r.value.has_value());
    EXPECT_GE(*r.value, 3u);
}

TEST(EvictBound, BudgetExhaustionIsReportedNotWrong)
{
    PredictabilityConfig cfg;
    cfg.maxStates = 5;
    const auto r = evictBound(*policy::makePolicy("lru", 8), cfg);
    EXPECT_TRUE(r.exhaustedBudget);
    EXPECT_FALSE(r.value.has_value());
    EXPECT_EQ(r.render(), ">budget");
}

// Pinned values for the adaptive/metadata policies: these exercise
// the interpreted fallback paths (set-dueling state, EAF filter) and
// must stay bit-stable — a drift means the policy semantics changed.
TEST(MissTurnover, AdaptivePoliciesPinned)
{
    EXPECT_EQ(*missTurnover(*policy::makePolicy("dip", 2)).value,
              14u);
    EXPECT_EQ(*missTurnover(*policy::makePolicy("drrip", 2)).value,
              17u);
    EXPECT_EQ(*missTurnover(*policy::makePolicy("eaf", 2)).value,
              17u);
    EXPECT_EQ(*missTurnover(*policy::makePolicy("eaf", 4)).value,
              49u);
}

TEST(EvictBound, AdaptivePoliciesPinned)
{
    EXPECT_EQ(*evictBound(*policy::makePolicy("dip", 2)).value, 1u);
    EXPECT_EQ(*evictBound(*policy::makePolicy("drrip", 2)).value,
              1u);
    EXPECT_EQ(*evictBound(*policy::makePolicy("eaf", 2)).value, 15u);
    EXPECT_EQ(*evictBound(*policy::makePolicy("eaf", 4)).value, 45u);
}

TEST(MetricResult, Rendering)
{
    eval::MetricResult r;
    r.value = 7;
    EXPECT_EQ(r.render(), "7");
    eval::MetricResult u;
    u.unbounded = true;
    EXPECT_EQ(u.render(), "unbounded");
}

} // namespace
