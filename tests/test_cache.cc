/**
 * @file
 * Tests for the single-level cache model.
 */

#include <gtest/gtest.h>

#include "recap/cache/cache.hh"
#include "recap/common/error.hh"

namespace
{

using namespace recap::cache;
using recap::UsageError;

Geometry
smallGeom()
{
    return Geometry{64, 4, 2}; // 4 sets, 2 ways, 512 B
}

TEST(Cache, ColdMissesThenHits)
{
    Cache c(smallGeom(), "lru", "L1");
    EXPECT_FALSE(c.access(0));
    EXPECT_TRUE(c.access(0));
    EXPECT_TRUE(c.access(63));   // same line
    EXPECT_FALSE(c.access(64));  // next line, different set
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().hits, 2u);
    EXPECT_EQ(c.stats().misses, 2u);
    EXPECT_EQ(c.stats().evictions, 0u);
}

TEST(Cache, ConflictEvictionWithinSet)
{
    Cache c(smallGeom(), "lru", "L1");
    const Addr stride = 64 * 4; // same-set stride
    c.access(0);
    c.access(stride);
    EXPECT_TRUE(c.probe(0));
    c.access(2 * stride); // evicts line 0 under LRU
    EXPECT_FALSE(c.probe(0));
    EXPECT_TRUE(c.probe(stride));
    EXPECT_TRUE(c.probe(2 * stride));
    EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, AccessDetailedReportsEviction)
{
    Cache c(smallGeom(), "lru", "L1");
    const Addr stride = 64 * 4;
    c.access(64);          // set 1
    c.access(64 + stride); // set 1
    const auto r = c.accessDetailed(64 + 2 * stride);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.setIndex, 1u);
    ASSERT_TRUE(r.evictedBlock.has_value());
    EXPECT_EQ(*r.evictedBlock, 64u);
}

TEST(Cache, ProbeHasNoSideEffects)
{
    Cache c(smallGeom(), "lru", "L1");
    c.access(0);
    const auto stats = c.stats();
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(4096));
    EXPECT_EQ(c.stats().accesses, stats.accesses);
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c(smallGeom(), "lru", "L1");
    for (Addr a = 0; a < 512; a += 64)
        c.access(a);
    c.flush();
    for (Addr a = 0; a < 512; a += 64)
        EXPECT_FALSE(c.probe(a));
}

TEST(Cache, InvalidateSingleLine)
{
    Cache c(smallGeom(), "lru", "L1");
    c.access(0);
    c.access(64);
    c.invalidate(0);
    EXPECT_FALSE(c.probe(0));
    EXPECT_TRUE(c.probe(64));
    // Invalidating a non-resident line is a no-op.
    EXPECT_NO_THROW(c.invalidate(1 << 20));
}

TEST(Cache, MissRatio)
{
    Cache c(smallGeom(), "lru", "L1");
    c.access(0);
    c.access(0);
    c.access(0);
    c.access(0);
    EXPECT_DOUBLE_EQ(c.stats().missRatio(), 0.25);
    c.resetStats();
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_DOUBLE_EQ(c.stats().missRatio(), 0.0);
}

TEST(Cache, PolicySpecQueries)
{
    Cache c(smallGeom(), "plru", "L1");
    EXPECT_EQ(c.policySpec(), "plru");
    EXPECT_FALSE(c.isAdaptive());
    EXPECT_THROW(c.psel(), UsageError);
    EXPECT_EQ(c.setRole(0), Cache::SetRole::kFollower);
}

TEST(Cache, DistinctSetsAreIndependent)
{
    Cache c(smallGeom(), "lru", "L1");
    // Fill set 0 completely; set 1 lines must be unaffected.
    const Addr stride = 64 * 4;
    c.access(64); // set 1
    for (unsigned i = 0; i < 8; ++i)
        c.access(i * stride); // set 0 conflicts
    EXPECT_TRUE(c.probe(64));
}

TEST(Cache, LruVsFifoBehaviouralDifference)
{
    // Classic distinguishing sequence: refresh the oldest line, then
    // force an eviction. LRU keeps it, FIFO evicts it.
    Cache lru(smallGeom(), "lru", "lru");
    Cache fifo(smallGeom(), "fifo", "fifo");
    const Addr stride = 64 * 4;
    for (auto* c : {&lru, &fifo}) {
        c->access(0);
        c->access(stride);
        c->access(0);              // refresh
        c->access(2 * stride);     // eviction decision differs
    }
    EXPECT_TRUE(lru.probe(0));
    EXPECT_FALSE(lru.probe(stride));
    EXPECT_FALSE(fifo.probe(0));
    EXPECT_TRUE(fifo.probe(stride));
}

TEST(Cache, MoveConstructible)
{
    Cache a(smallGeom(), "lru", "L1");
    a.access(0);
    Cache b(std::move(a));
    EXPECT_TRUE(b.probe(0));
    EXPECT_EQ(b.name(), "L1");
}

} // namespace
