/**
 * @file
 * Tests for the membership-query DSL: lexer/parser structure, precise
 * error positions, canonical printing with the parse(print(ast)) ==
 * ast round-trip property (directed and fuzzed), and compilation to
 * the flat step form (interning, repetition expansion, guards).
 */

#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "recap/common/error.hh"
#include "recap/common/rng.hh"
#include "recap/query/ast.hh"
#include "recap/query/parse.hh"

namespace
{

using namespace recap;
using query::Access;
using query::BlockId;
using query::CompiledQuery;
using query::Flush;
using query::Group;
using query::Node;
using query::ParseError;
using query::parseQuery;
using query::Query;
using query::Step;

TEST(QueryParse, SingleProbedAccess)
{
    const Query q = parseQuery("a?");
    ASSERT_EQ(q.items.size(), 1u);
    const auto& access = std::get<Access>(q.items[0].op);
    EXPECT_EQ(access.block, "a");
    EXPECT_TRUE(access.probe);
    EXPECT_EQ(q.items[0].repeat, 1u);
}

TEST(QueryParse, AccessFlushGroupAndRepeat)
{
    const Query q = parseQuery("a b? @ ( c d )^3 e^2");
    ASSERT_EQ(q.items.size(), 5u);
    EXPECT_FALSE(std::get<Access>(q.items[0].op).probe);
    EXPECT_TRUE(std::get<Access>(q.items[1].op).probe);
    EXPECT_TRUE(std::holds_alternative<Flush>(q.items[2].op));
    const auto& group = std::get<Group>(q.items[3].op);
    ASSERT_EQ(group.items.size(), 2u);
    EXPECT_EQ(q.items[3].repeat, 3u);
    EXPECT_EQ(std::get<Access>(q.items[4].op).block, "e");
    EXPECT_EQ(q.items[4].repeat, 2u);
}

TEST(QueryParse, WhitespaceAndCommentsAreInsignificant)
{
    const Query terse = parseQuery("a b?(c @)^2");
    const Query spaced =
        parseQuery("  a\tb?  ( c  @ )^2   # trailing comment");
    EXPECT_EQ(terse, spaced);
}

TEST(QueryParse, NamesAllowUnderscoresAndDigits)
{
    const Query q = parseQuery("_x9 Block_2?");
    EXPECT_EQ(std::get<Access>(q.items[0].op).block, "_x9");
    EXPECT_EQ(std::get<Access>(q.items[1].op).block, "Block_2");
}

TEST(QueryParse, NestedGroups)
{
    const Query q = parseQuery("( a ( b c? )^2 )^4");
    const auto& outer = std::get<Group>(q.items[0].op);
    ASSERT_EQ(outer.items.size(), 2u);
    const auto& inner = std::get<Group>(outer.items[1].op);
    EXPECT_EQ(inner.items.size(), 2u);
    EXPECT_EQ(outer.items[1].repeat, 2u);
    EXPECT_EQ(q.items[0].repeat, 4u);
}

void
expectError(const std::string& text, std::size_t position)
{
    try {
        parseQuery(text);
        FAIL() << "expected ParseError for: " << text;
    } catch (const ParseError& e) {
        EXPECT_EQ(e.position(), position) << text << ": " << e.what();
        EXPECT_FALSE(e.message().empty());
    }
}

TEST(QueryParse, ErrorPositionsArePrecise)
{
    expectError("", 0);            // empty query
    expectError("   # only", 9);   // nothing but a comment
    expectError("?", 0);           // probe without a name
    expectError("a b $", 4);       // unexpected character
    expectError("a^0", 2);         // zero repetition
    expectError("a^", 1);          // missing count (points at '^')
    expectError("a^x", 2);         // non-count after '^'
    expectError("a )", 2);         // stray ')'
    expectError("( a b", 5);       // unterminated group
    expectError("()", 0);          // empty group (points at '(')
    expectError("a 3", 2);         // count without '^'
    expectError("a^99999999999", 2); // count overflow
}

TEST(QueryParse, PrintIsCanonical)
{
    EXPECT_EQ(query::print(parseQuery("  a   b?(c @)^2 ")),
              "a b? ( c @ )^2");
    EXPECT_EQ(query::print(parseQuery("a^1")), "a");
    EXPECT_EQ(query::print(parseQuery("( a )^5")), "( a )^5");
}

TEST(QueryParse, RoundTripOnDirectedExamples)
{
    const char* kExamples[] = {
        "a",
        "a?",
        "@",
        "a b c d a?",
        "a b c d a? @ a?",
        "( a b )^3 c?",
        "( a ( b? @ )^2 c )^7 _tail9",
        "x^1000000000",
    };
    for (const char* text : kExamples) {
        const Query q = parseQuery(text);
        EXPECT_EQ(parseQuery(query::print(q)), q) << text;
    }
}

/** Generates a random valid AST (the round-trip fuzz driver). */
Node
randomNode(Rng& rng, unsigned depth)
{
    Node node;
    const auto pick = rng.nextBelow(depth == 0 ? 3 : 4);
    if (pick == 0) {
        node.op = Flush{};
    } else if (pick < 3) {
        Access access;
        static const char* kNames[] = {"a", "b",  "c",   "x_1",
                                       "Z", "_u", "q9q", "blk"};
        access.block = kNames[rng.nextBelow(8)];
        access.probe = rng.nextBool(0.3);
        node.op = std::move(access);
    } else {
        Group group;
        const auto n = 1 + rng.nextBelow(3);
        for (std::size_t i = 0; i < n; ++i)
            group.items.push_back(randomNode(rng, depth - 1));
        node.op = std::move(group);
    }
    if (rng.nextBool(0.3))
        node.repeat = 2 + static_cast<unsigned>(rng.nextBelow(5));
    return node;
}

TEST(QueryParse, RoundTripPropertyFuzzed)
{
    Rng rng(20260806);
    for (int iter = 0; iter < 500; ++iter) {
        Query q;
        const auto n = 1 + rng.nextBelow(6);
        for (std::size_t i = 0; i < n; ++i)
            q.items.push_back(randomNode(rng, 3));
        const std::string text = query::print(q);
        ASSERT_EQ(parseQuery(text), q) << text;
        // Canonical text is a fixed point of print∘parse.
        ASSERT_EQ(query::print(parseQuery(text)), text) << text;
    }
}

TEST(QueryParse, ArbitraryBytesNeverCrash)
{
    // Anything but a clean parse must surface as ParseError (never a
    // crash, never another exception type).
    static const char kCharset[] =
        "ab?@()^ 019_#$%\\\"\n\t\xff\x01;:~";
    Rng rng(424242);
    for (int iter = 0; iter < 4000; ++iter) {
        std::string text;
        const auto len = rng.nextBelow(24);
        for (std::size_t i = 0; i < len; ++i)
            text += kCharset[rng.nextBelow(sizeof kCharset - 1)];
        try {
            const Query q = parseQuery(text);
            EXPECT_FALSE(q.items.empty());
        } catch (const ParseError& e) {
            EXPECT_LE(e.position(), text.size()) << text;
        }
    }
}

TEST(QueryParse, FuzzedParsesSurviveCompileOrReportUsageErrors)
{
    Rng rng(7);
    for (int iter = 0; iter < 500; ++iter) {
        Query q;
        const auto n = 1 + rng.nextBelow(4);
        for (std::size_t i = 0; i < n; ++i)
            q.items.push_back(randomNode(rng, 2));
        try {
            const CompiledQuery compiled =
                query::compile(q, /*maxSteps=*/512);
            EXPECT_FALSE(compiled.steps.empty());
        } catch (const UsageError&) {
            // all-flush queries or oversized expansions
        }
    }
}

TEST(QueryCompile, InternsNamesInFirstOccurrenceOrder)
{
    const CompiledQuery q =
        query::compile(parseQuery("a b a c? @ b?"));
    ASSERT_EQ(q.steps.size(), 6u);
    EXPECT_EQ(q.steps[0].block, 1u);
    EXPECT_EQ(q.steps[1].block, 2u);
    EXPECT_EQ(q.steps[2].block, 1u);
    EXPECT_EQ(q.steps[3].block, 3u);
    EXPECT_TRUE(q.steps[3].probe);
    EXPECT_TRUE(q.steps[4].flush);
    EXPECT_EQ(q.steps[5].block, 2u);
    ASSERT_EQ(q.blockNames.size(), 3u);
    EXPECT_EQ(q.blockName(1), "a");
    EXPECT_EQ(q.blockName(3), "c");
    EXPECT_EQ(q.probeCount(), 2u);
    EXPECT_EQ(q.text, "a b a c? @ b?");
}

TEST(QueryCompile, ExpandsRepetitions)
{
    const CompiledQuery q = query::compile(parseQuery("( a b )^3 a^2"));
    ASSERT_EQ(q.steps.size(), 8u);
    for (int i = 0; i < 6; i += 2) {
        EXPECT_EQ(q.steps[i].block, 1u);
        EXPECT_EQ(q.steps[i + 1].block, 2u);
    }
    EXPECT_EQ(q.steps[6].block, 1u);
    EXPECT_EQ(q.steps[7].block, 1u);
}

TEST(QueryCompile, GuardsAgainstExponentialExpansion)
{
    // 100^4 steps from 24 characters of text.
    const Query q =
        parseQuery("( ( ( a^100 )^100 )^100 )^100");
    EXPECT_THROW(query::compile(q), UsageError);
    EXPECT_THROW(query::compile(parseQuery("a^10"), 5), UsageError);
}

TEST(QueryCompile, RejectsAccessFreeQueries)
{
    EXPECT_THROW(query::compile(parseQuery("@ @^3")), UsageError);
}

TEST(QueryCompile, ProgrammaticBuildersShapeAndFallbackNames)
{
    const CompiledQuery survival =
        query::makeSurvivalQuery({5, 7, 5}, 9);
    ASSERT_EQ(survival.steps.size(), 4u);
    EXPECT_FALSE(survival.steps[0].probe);
    EXPECT_EQ(survival.steps[3].block, 9u);
    EXPECT_TRUE(survival.steps[3].probe);
    EXPECT_EQ(survival.probeCount(), 1u);
    EXPECT_EQ(survival.blockName(9), "b9");

    const CompiledQuery all = query::makeObserveAllQuery({1, 2, 1});
    ASSERT_EQ(all.steps.size(), 3u);
    for (const Step& step : all.steps)
        EXPECT_TRUE(step.probe);
}

} // namespace
