/**
 * @file
 * Tests for the permutation-policy engine: analytic LRU/FIFO forms,
 * derivation from concrete policies, and executability.
 */

#include <gtest/gtest.h>

#include "recap/common/error.hh"
#include "recap/common/rng.hh"
#include "recap/policy/fifo.hh"
#include "recap/policy/lru.hh"
#include "recap/policy/nru.hh"
#include "recap/policy/permutation.hh"
#include "recap/policy/plru.hh"
#include "recap/policy/qlru.hh"
#include "recap/policy/set_model.hh"
#include "recap/policy/rrip.hh"

namespace
{

using namespace recap;
using policy::PermutationPolicy;
using policy::Permutation;
using policy::SetModel;

TEST(PermutationBasics, IdentityAndValidation)
{
    EXPECT_TRUE(policy::isPermutation({0, 1, 2, 3}));
    EXPECT_TRUE(policy::isPermutation({3, 1, 0, 2}));
    EXPECT_FALSE(policy::isPermutation({0, 0, 2, 3}));
    EXPECT_FALSE(policy::isPermutation({0, 1, 2, 4}));
    EXPECT_EQ(policy::identityPermutation(3), (Permutation{0, 1, 2}));
}

TEST(PermutationBasics, RejectsMalformedVectors)
{
    std::vector<Permutation> hits(4, policy::identityPermutation(4));
    Permutation bad{0, 0, 1, 2};
    EXPECT_THROW(PermutationPolicy(4, hits, bad), UsageError);
    hits[2] = bad;
    EXPECT_THROW(
        PermutationPolicy(4, hits, policy::identityPermutation(4)),
        UsageError);
    EXPECT_THROW(
        PermutationPolicy(4, {}, policy::identityPermutation(4)),
        UsageError);
}

/** The analytic LRU permutation form must behave exactly like LRU. */
TEST(PermutationLru, MatchesConcreteLruExactly)
{
    for (unsigned k : {1u, 2u, 3u, 4u, 8u}) {
        auto perm = PermutationPolicy::lru(k);
        policy::LruPolicy lru(k);
        SetModel a(perm.clone());
        SetModel b(lru.clone());
        Rng rng(42 + k);
        for (int i = 0; i < 2000; ++i) {
            const auto block = rng.nextBelow(k + 3);
            ASSERT_EQ(a.access(block), b.access(block))
                << "k=" << k << " step " << i;
        }
        ASSERT_EQ(a.evictionOrder(), b.evictionOrder()) << "k=" << k;
    }
}

TEST(PermutationFifo, MatchesConcreteFifoExactly)
{
    for (unsigned k : {2u, 4u, 6u, 8u}) {
        auto perm = PermutationPolicy::fifo(k);
        policy::FifoPolicy fifo(k);
        SetModel a(perm.clone());
        SetModel b(fifo.clone());
        Rng rng(99 + k);
        for (int i = 0; i < 2000; ++i) {
            const auto block = rng.nextBelow(k + 2);
            ASSERT_EQ(a.access(block), b.access(block))
                << "k=" << k << " step " << i;
        }
    }
}

TEST(PermutationDerive, LruDerivesToAnalyticVectors)
{
    for (unsigned k : {2u, 4u, 8u}) {
        policy::LruPolicy lru(k);
        auto derived = PermutationPolicy::derive(lru);
        ASSERT_TRUE(derived.has_value()) << "k=" << k;
        EXPECT_TRUE(derived->sameVectors(PermutationPolicy::lru(k)));
    }
}

TEST(PermutationDerive, FifoDerivesToAnalyticVectors)
{
    for (unsigned k : {2u, 4u, 8u}) {
        policy::FifoPolicy fifo(k);
        auto derived = PermutationPolicy::derive(fifo);
        ASSERT_TRUE(derived.has_value()) << "k=" << k;
        EXPECT_TRUE(derived->sameVectors(PermutationPolicy::fifo(k)));
    }
}

/**
 * Tree-PLRU is a permutation policy (a key observation of the
 * paper's formalism); the derived form must reproduce it exactly.
 */
TEST(PermutationDerive, TreePlruIsAPermutationPolicy)
{
    for (unsigned k : {2u, 4u, 8u, 16u}) {
        policy::TreePlruPolicy plru(k);
        auto derived = PermutationPolicy::derive(plru);
        ASSERT_TRUE(derived.has_value()) << "k=" << k;

        SetModel a(derived->clone());
        SetModel b(plru.clone());
        Rng rng(7 + k);
        for (int i = 0; i < 4000; ++i) {
            const auto block = rng.nextBelow(k + 2);
            ASSERT_EQ(a.access(block), b.access(block))
                << "k=" << k << " step " << i;
        }
    }
}

TEST(PermutationDerive, PlruFactoryProducesNamedPolicy)
{
    auto plru = PermutationPolicy::plru(8);
    EXPECT_EQ(plru.name(), "PLRU");
    EXPECT_EQ(plru.ways(), 8u);
}

/** Non-permutation policies must be refuted by derive(). */
TEST(PermutationDerive, NruIsNotAPermutationPolicy)
{
    for (unsigned k : {4u, 8u}) {
        policy::NruPolicy nru(k);
        EXPECT_FALSE(PermutationPolicy::derive(nru).has_value())
            << "k=" << k;
    }
}

TEST(PermutationDerive, QlruIsNotAPermutationPolicy)
{
    policy::QlruPolicy qlru(8, policy::QlruParams::parse("H1,M1,R0,U2"));
    EXPECT_FALSE(PermutationPolicy::derive(qlru).has_value());
}

TEST(PermutationDerive, SrripIsNotAPermutationPolicy)
{
    policy::SrripPolicy srrip(8);
    EXPECT_FALSE(PermutationPolicy::derive(srrip).has_value());
}

/**
 * LIP is representable as a permutation policy in principle, but its
 * misses keep evicting the newest insert, so eviction-order probing
 * (which needs k fresh misses to evict the k resident blocks) cannot
 * derive it. derive() must refuse rather than return a wrong model.
 */
TEST(PermutationDerive, LipIsNotDerivableByEvictionOrderProbing)
{
    policy::LipPolicy lip(4);
    EXPECT_FALSE(PermutationPolicy::derive(lip).has_value());
}

TEST(PermutationExec, VictimFollowsOrder)
{
    auto lru = PermutationPolicy::lru(4);
    lru.reset();
    EXPECT_EQ(lru.victim(), lru.orderAt(0));
    lru.fill(lru.victim());
    EXPECT_EQ(lru.victim(), lru.orderAt(0));
}

TEST(PermutationExec, CloneIsIndependent)
{
    auto lru = PermutationPolicy::lru(4);
    auto copy = lru.clone();
    lru.touch(2);
    EXPECT_NE(copy->stateKey(), lru.stateKey());
}

} // namespace
