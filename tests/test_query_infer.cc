/**
 * @file
 * Differential tests for the query-layer rewiring of the inference
 * techniques: routing PermutationInference and CandidateSearch probes
 * through query::MachineOracle batches must leave every verdict
 * unchanged relative to the pre-query-layer direct SetProber path.
 */

#include <gtest/gtest.h>

#include "recap/hw/catalog.hh"
#include "recap/infer/candidate_search.hh"
#include "recap/infer/geometry_probe.hh"
#include "recap/infer/naming.hh"
#include "recap/infer/permutation_infer.hh"
#include "recap/infer/set_prober.hh"
#include "recap/policy/factory.hh"

namespace
{

using namespace recap;
using infer::CandidateSearch;
using infer::CandidateSearchConfig;
using infer::CandidateSearchResult;
using infer::MeasurementContext;
using infer::PermutationInference;
using infer::PermutationInferenceConfig;
using infer::PermutationInferenceResult;
using infer::SetProber;
using infer::SetProberConfig;

/** A single-level machine with the given hidden policy. */
hw::MachineSpec
singleLevelSpec(const std::string& policy, unsigned ways,
                unsigned sets = 64)
{
    hw::MachineSpec spec;
    spec.name = "probe-rig";
    spec.description = "single-level test machine";
    hw::CacheLevelSpec lvl;
    lvl.name = "L1";
    lvl.capacityBytes = uint64_t{64} * sets * ways;
    lvl.ways = ways;
    lvl.hitLatency = 4;
    lvl.policySpec = policy;
    spec.levels = {lvl};
    spec.memoryLatency = 100;
    return spec;
}

PermutationInferenceResult
inferOnce(const std::string& policy, unsigned ways,
          const PermutationInferenceConfig& cfg)
{
    const auto spec = singleLevelSpec(policy, ways);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    SetProber prober(ctx, infer::assumedGeometry(spec), 0);
    return PermutationInference(prober, cfg).run();
}

TEST(QueryInfer, PermutationVerdictsMatchTheDirectPath)
{
    for (const char* policy : {"lru", "fifo", "plru", "nru", "srrip",
                               "qlru:H1,M1,R0,U2"}) {
        for (unsigned ways : {4u, 8u}) {
            PermutationInferenceConfig direct;
            direct.useQueryLayer = false;
            PermutationInferenceConfig query;
            query.useQueryLayer = true;
            const auto before = inferOnce(policy, ways, direct);
            const auto after = inferOnce(policy, ways, query);

            ASSERT_EQ(before.isPermutation, after.isPermutation)
                << policy << " k=" << ways << ": "
                << before.failureReason << " / "
                << after.failureReason;
            if (before.isPermutation) {
                EXPECT_EQ(
                    infer::canonicalPermutationName(*before.policy),
                    infer::canonicalPermutationName(*after.policy))
                    << policy << " k=" << ways;
            } else {
                EXPECT_EQ(before.failureReason, after.failureReason)
                    << policy << " k=" << ways;
            }
            EXPECT_GT(after.experimentsUsed, 0u);
            EXPECT_GT(after.loadsUsed, 0u);
        }
    }
}

TEST(QueryInfer, PermutationDifferentialHoldsForAblationSettings)
{
    // Linear-scan survival and disabled spot check exercise the other
    // batching shapes (lockstep upward scan, full hit-perm loop).
    for (const char* policy : {"fifo", "nru"}) {
        PermutationInferenceConfig direct;
        direct.useQueryLayer = false;
        direct.binarySearchSurvival = false;
        direct.earlySpotCheck = false;
        PermutationInferenceConfig query = direct;
        query.useQueryLayer = true;
        const auto before = inferOnce(policy, 8, direct);
        const auto after = inferOnce(policy, 8, query);
        ASSERT_EQ(before.isPermutation, after.isPermutation) << policy;
        if (!before.isPermutation) {
            EXPECT_EQ(before.failureReason, after.failureReason)
                << policy;
        }
    }
}

TEST(QueryInfer, NoisyPermutationInferenceStillRecoversLru)
{
    const auto spec = singleLevelSpec("lru", 4);
    hw::NoiseConfig noise;
    noise.disturbProbability = 0.005;
    hw::Machine machine(spec, /*seed=*/1, noise);
    MeasurementContext ctx(machine);
    SetProberConfig pc;
    pc.voteRepeats = 9;
    SetProber prober(ctx, infer::assumedGeometry(spec), 0, pc);
    PermutationInferenceConfig cfg;
    cfg.useQueryLayer = true;
    const auto result = PermutationInference(prober, cfg).run();
    ASSERT_TRUE(result.isPermutation) << result.failureReason;
    EXPECT_EQ(infer::canonicalPermutationName(*result.policy), "LRU");
}

CandidateSearchResult
searchOnce(const std::string& policy, bool useQueryLayer)
{
    const auto spec = singleLevelSpec(policy, 8);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    SetProber prober(ctx, infer::assumedGeometry(spec), 0);
    CandidateSearchConfig cfg;
    cfg.useQueryLayer = useQueryLayer;
    cfg.numThreads = 1;
    const std::vector<std::string> candidates{
        "lru",  "fifo", "plru",  "nru",
        "bip",  "srrip", "brrip", "qlru:H1,M1,R0,U2",
    };
    return CandidateSearch(prober, candidates, cfg).run();
}

TEST(QueryInfer, CandidateSearchVerdictsMatchTheDirectPath)
{
    for (const char* policy : {"nru", "srrip", "qlru:H1,M1,R0,U2"}) {
        const auto direct = searchOnce(policy, false);
        const auto query = searchOnce(policy, true);
        EXPECT_EQ(direct.survivors, query.survivors) << policy;
        EXPECT_EQ(direct.decided, query.decided) << policy;
        EXPECT_EQ(direct.verdict, query.verdict) << policy;
        EXPECT_EQ(direct.roundsRun, query.roundsRun) << policy;
        EXPECT_EQ(direct.verdict, policy) << "search missed";
        EXPECT_GT(query.experimentsUsed, 0u);
    }
}

TEST(QueryInfer, QueryLayerCostEqualsTheContextDelta)
{
    // Satellite contract: with the query layer on, every experiment
    // an inference runs is visible in MeasurementContext's counters
    // (nothing bypasses beginExperiment()).
    const auto spec = singleLevelSpec("lru", 8);
    hw::Machine machine(spec);
    MeasurementContext ctx(machine);
    SetProber prober(ctx, infer::assumedGeometry(spec), 0);
    PermutationInferenceConfig cfg;
    cfg.useQueryLayer = true;
    const auto result = PermutationInference(prober, cfg).run();
    ASSERT_TRUE(result.isPermutation) << result.failureReason;
    EXPECT_EQ(result.experimentsUsed, ctx.experimentsRun());
    EXPECT_EQ(result.loadsUsed, ctx.loadsIssued());
}

} // namespace
