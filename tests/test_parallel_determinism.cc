/**
 * @file
 * Differential serial-vs-parallel harness: every parallelized layer
 * (eval::sweep grids, infer::candidate_search elimination,
 * eval::predictabilitySweep, and the full inference pipeline /
 * report) must produce BIT-IDENTICAL results for num_threads = 1
 * (the exact legacy serial path) and any other thread count, across
 * root seeds. This is the determinism contract of
 * recap::common::parallel, checked end to end.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "recap/common/parallel.hh"
#include "recap/eval/predictability.hh"
#include "recap/eval/sweep.hh"
#include "recap/hw/machine.hh"
#include "recap/infer/candidate_search.hh"
#include "recap/infer/pipeline.hh"
#include "recap/infer/report.hh"
#include "recap/trace/generators.hh"

namespace
{

using namespace recap;

std::vector<unsigned>
threadCountsUnderTest()
{
    return {2u, 4u, TaskPool::hardwareThreads()};
}

/** Bit-exact grid comparison (doubles compared with ==). */
void
expectSameSweep(const eval::SweepResult& serial,
                const eval::SweepResult& parallel,
                const std::string& label)
{
    EXPECT_EQ(serial.rowLabels, parallel.rowLabels) << label;
    EXPECT_EQ(serial.columnLabels, parallel.columnLabels) << label;
    ASSERT_EQ(serial.cells.size(), parallel.cells.size()) << label;
    for (size_t i = 0; i < serial.cells.size(); ++i) {
        const auto& a = serial.cells[i];
        const auto& b = parallel.cells[i];
        EXPECT_EQ(a.rowLabel, b.rowLabel) << label << " cell " << i;
        EXPECT_EQ(a.columnLabel, b.columnLabel)
            << label << " cell " << i;
        EXPECT_EQ(a.misses, b.misses) << label << " cell " << i;
        EXPECT_EQ(a.accesses, b.accesses) << label << " cell " << i;
        EXPECT_EQ(a.missRatio, b.missRatio) << label << " cell " << i;
    }
}

TEST(ParallelDeterminism, PolicyWorkloadSweepBitIdentical)
{
    const cache::Geometry geom{64, 64, 8};
    const std::vector<std::string> specs = {"lru", "fifo", "plru",
                                            "random", "bip"};
    std::vector<trace::Workload> workloads;
    workloads.push_back(
        {"zipf", "", trace::zipf(64 * 1024, 20000, 0.9, 5)});
    workloads.push_back(
        {"scan", "", trace::sequentialScan(96 * 1024, 2)});

    for (uint64_t seed : {1ull, 42ull, 31337ull}) {
        eval::SweepOptions serial_opts;
        serial_opts.seed = seed;
        serial_opts.numThreads = 1;
        const auto serial = eval::policyWorkloadSweep(
            geom, specs, workloads, serial_opts);
        for (unsigned threads : threadCountsUnderTest()) {
            eval::SweepOptions opts = serial_opts;
            opts.numThreads = threads;
            expectSameSweep(
                serial,
                eval::policyWorkloadSweep(geom, specs, workloads,
                                          opts),
                "seed " + std::to_string(seed) + " threads " +
                    std::to_string(threads));
        }
    }
}

TEST(ParallelDeterminism, SizeSweepBitIdentical)
{
    const auto workload = trace::zipf(64 * 1024, 15000, 0.9, 7);
    const std::vector<std::string> specs = {"lru", "random"};
    eval::SweepOptions serial_opts;
    serial_opts.seed = 77;
    serial_opts.numThreads = 1;
    const auto serial = eval::sizeSweep(specs, workload, 8 * 1024,
                                        64 * 1024, 8, 64, serial_opts);
    for (unsigned threads : threadCountsUnderTest()) {
        eval::SweepOptions opts = serial_opts;
        opts.numThreads = threads;
        expectSameSweep(serial,
                        eval::sizeSweep(specs, workload, 8 * 1024,
                                        64 * 1024, 8, 64, opts),
                        "threads " + std::to_string(threads));
    }
}

TEST(ParallelDeterminism, AssociativitySweepBitIdentical)
{
    // Includes plru so the jagged-grid path (skipped cells at
    // non-power-of-two ways... here all ways are powers of two, but
    // plru still exercises per-cell support filtering) is covered.
    const auto workload = trace::zipf(32 * 1024, 10000, 0.9, 9);
    const std::vector<std::string> specs = {"lru", "plru", "random"};
    eval::SweepOptions serial_opts;
    serial_opts.seed = 5;
    serial_opts.numThreads = 1;
    const auto serial = eval::associativitySweep(
        specs, workload, 16 * 1024, 2, 8, 64, serial_opts);
    for (unsigned threads : threadCountsUnderTest()) {
        eval::SweepOptions opts = serial_opts;
        opts.numThreads = threads;
        expectSameSweep(serial,
                        eval::associativitySweep(specs, workload,
                                                 16 * 1024, 2, 8, 64,
                                                 opts),
                        "threads " + std::to_string(threads));
    }
}

TEST(ParallelDeterminism, SweepSeedIsExplicitAndReproducible)
{
    // Same explicit seed => identical grid, even with parallelism on.
    const cache::Geometry geom{64, 32, 4};
    std::vector<trace::Workload> workloads;
    workloads.push_back(
        {"zipf", "", trace::zipf(32 * 1024, 8000, 0.9, 3)});
    eval::SweepOptions opts;
    opts.seed = 123;
    opts.numThreads = 4;
    const auto a =
        eval::policyWorkloadSweep(geom, {"random"}, workloads, opts);
    const auto b =
        eval::policyWorkloadSweep(geom, {"random"}, workloads, opts);
    expectSameSweep(a, b, "same-seed replay");
}

hw::MachineSpec
singleLevelSpec(const std::string& policy, unsigned ways)
{
    hw::MachineSpec spec;
    spec.name = "probe-rig";
    spec.description = "single-level test machine";
    hw::CacheLevelSpec lvl;
    lvl.name = "L1";
    lvl.capacityBytes = uint64_t{64} * 64 * ways;
    lvl.ways = ways;
    lvl.hitLatency = 4;
    lvl.policySpec = policy;
    spec.levels = {lvl};
    spec.memoryLatency = 100;
    return spec;
}

infer::CandidateSearchResult
runSearch(const std::string& truth, unsigned ways, unsigned threads)
{
    auto spec = singleLevelSpec(truth, ways);
    hw::Machine machine(spec);
    infer::MeasurementContext ctx(machine);
    infer::DiscoveredGeometry geom;
    geom.lineSize = 64;
    geom.levels.push_back({64, 64, ways});
    infer::SetProber prober(ctx, geom, 0);
    infer::CandidateSearchConfig cfg;
    cfg.numThreads = threads;
    infer::CandidateSearch search(
        prober, infer::defaultCandidateSpecs(ways), cfg);
    return search.run();
}

TEST(ParallelDeterminism, CandidateSearchBitIdentical)
{
    for (const std::string& truth :
         {std::string("nru"), std::string("qlru:H1,M1,R0,U2")}) {
        const auto serial = runSearch(truth, 8, 1);
        for (unsigned threads : threadCountsUnderTest()) {
            const auto parallel = runSearch(truth, 8, threads);
            EXPECT_EQ(serial.survivors, parallel.survivors)
                << truth << " threads " << threads;
            EXPECT_EQ(serial.verdict, parallel.verdict)
                << truth << " threads " << threads;
            EXPECT_EQ(serial.decided, parallel.decided)
                << truth << " threads " << threads;
            EXPECT_EQ(serial.roundsRun, parallel.roundsRun)
                << truth << " threads " << threads;
            EXPECT_EQ(serial.loadsUsed, parallel.loadsUsed)
                << truth << " threads " << threads;
        }
    }
}

void
expectSameMetric(const eval::MetricResult& a,
                 const eval::MetricResult& b, const std::string& label)
{
    EXPECT_EQ(a.value, b.value) << label;
    EXPECT_EQ(a.unbounded, b.unbounded) << label;
    EXPECT_EQ(a.exhaustedBudget, b.exhaustedBudget) << label;
    EXPECT_EQ(a.statesExplored, b.statesExplored) << label;
    EXPECT_EQ(a.render(), b.render()) << label;
}

TEST(ParallelDeterminism, PredictabilitySweepBitIdentical)
{
    const std::vector<std::string> specs = {"lru", "fifo", "plru",
                                            "nru", "srrip"};
    const std::vector<unsigned> ways = {2, 4, 8};
    eval::PredictabilityConfig serial_cfg;
    serial_cfg.maxStates = 100'000;
    serial_cfg.numThreads = 1;
    const auto serial =
        eval::predictabilitySweep(specs, ways, serial_cfg);
    ASSERT_FALSE(serial.empty());
    for (unsigned threads : threadCountsUnderTest()) {
        eval::PredictabilityConfig cfg = serial_cfg;
        cfg.numThreads = threads;
        const auto parallel =
            eval::predictabilitySweep(specs, ways, cfg);
        ASSERT_EQ(serial.size(), parallel.size());
        for (size_t i = 0; i < serial.size(); ++i) {
            const std::string label = serial[i].spec + "/k" +
                std::to_string(serial[i].ways) + " threads " +
                std::to_string(threads);
            EXPECT_EQ(serial[i].spec, parallel[i].spec) << label;
            EXPECT_EQ(serial[i].ways, parallel[i].ways) << label;
            expectSameMetric(serial[i].turnover, parallel[i].turnover,
                             label + " turnover");
            expectSameMetric(serial[i].evictBound,
                             parallel[i].evictBound,
                             label + " evictBound");
        }
    }
}

TEST(ParallelDeterminism, PredictabilitySweepSkipsUnsupported)
{
    // plru at k=6 must be skipped identically on both paths.
    const auto rows = eval::predictabilitySweep({"plru", "lru"},
                                                {4, 6}, {});
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].spec, "plru");
    EXPECT_EQ(rows[0].ways, 4u);
    EXPECT_EQ(rows[1].spec, "lru");
    EXPECT_EQ(rows[2].ways, 6u);
}

/** Renders a machine report to text for whole-output comparison. */
std::string
renderReport(const infer::MachineReport& report,
             const hw::MachineSpec& truth)
{
    std::ostringstream os;
    infer::printMachineReport(os, report, &truth);
    return os.str();
}

TEST(ParallelDeterminism, PipelineReportBitIdentical)
{
    // nru forces the candidate-search path through the pipeline; the
    // whole report (verdicts, agreement, measurement cost, rendered
    // text) must not depend on the thread count.
    auto run = [](unsigned threads) {
        auto spec = singleLevelSpec("nru", 8);
        hw::Machine machine(spec);
        infer::InferenceOptions opts;
        opts.search.numThreads = threads;
        return infer::inferMachine(machine, opts);
    };
    const auto spec = singleLevelSpec("nru", 8);
    const auto serial = run(1);
    const std::string serial_text = renderReport(serial, spec);
    for (unsigned threads : {4u, TaskPool::hardwareThreads()}) {
        const auto parallel = run(threads);
        ASSERT_EQ(serial.levels.size(), parallel.levels.size());
        for (size_t i = 0; i < serial.levels.size(); ++i) {
            const auto& a = serial.levels[i];
            const auto& b = parallel.levels[i];
            EXPECT_EQ(a.verdict, b.verdict) << "threads " << threads;
            EXPECT_EQ(a.survivors, b.survivors)
                << "threads " << threads;
            EXPECT_EQ(a.agreement, b.agreement)
                << "threads " << threads;
            EXPECT_EQ(a.loadsUsed, b.loadsUsed)
                << "threads " << threads;
        }
        EXPECT_EQ(serial.totalLoads, parallel.totalLoads)
            << "threads " << threads;
        EXPECT_EQ(serial_text, renderReport(parallel, spec))
            << "threads " << threads;
    }
}

} // namespace
