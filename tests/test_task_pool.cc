/**
 * @file
 * Tests for the TaskPool execution engine: ordering of assembled
 * results, bounded-queue backpressure, exception propagation,
 * shutdown semantics, and per-task seed derivation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "recap/common/error.hh"
#include "recap/common/parallel.hh"
#include "recap/common/rng.hh"

namespace
{

using namespace recap;

TEST(DeriveTaskSeed, StableAndDistinct)
{
    EXPECT_EQ(deriveTaskSeed(42, 7), deriveTaskSeed(42, 7));
    std::set<uint64_t> seeds;
    for (uint64_t i = 0; i < 1000; ++i)
        seeds.insert(deriveTaskSeed(42, i));
    EXPECT_EQ(seeds.size(), 1000u) << "index collisions";
    EXPECT_NE(deriveTaskSeed(42, 0), deriveTaskSeed(43, 0));
    EXPECT_NE(deriveTaskSeed(42, 0), uint64_t{42});
}

TEST(DeriveTaskSeed, DrivesIndependentRngStreams)
{
    Rng a(deriveTaskSeed(1, 0));
    Rng b(deriveTaskSeed(1, 1));
    // Streams must not be shifted copies of each other.
    EXPECT_NE(a.next(), b.next());
}

TEST(TaskPool, ResolvesThreadCounts)
{
    EXPECT_GE(TaskPool::hardwareThreads(), 1u);
    EXPECT_EQ(resolveThreads(0), TaskPool::hardwareThreads());
    EXPECT_EQ(resolveThreads(3), 3u);
    TaskPool pool(2);
    EXPECT_EQ(pool.threadCount(), 2u);
}

TEST(TaskPool, RunsEverySubmittedTask)
{
    TaskPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 200; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 200);
}

TEST(TaskPool, WaitWithoutTasksReturns)
{
    TaskPool pool(2);
    pool.wait();
}

TEST(TaskPool, BoundedQueueBackpressureStillCompletesAll)
{
    // Tiny queue: the submitter must block and hand off, but every
    // task still runs exactly once.
    TaskPool pool(2, /*queueCapacity=*/2);
    std::atomic<int> count{0};
    for (int i = 0; i < 500; ++i)
        pool.submit([&count] {
            ++count;
        });
    pool.wait();
    EXPECT_EQ(count.load(), 500);
}

TEST(TaskPool, FirstExceptionPropagatesToWait)
{
    TaskPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&ran, i] {
            ++ran;
            if (i == 3)
                throw UsageError("task 3 failed");
        });
    EXPECT_THROW(pool.wait(), UsageError);
    // Sibling tasks were not cancelled.
    EXPECT_EQ(ran.load(), 8);
    // The error was consumed; the pool stays usable.
    pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 9);
}

TEST(TaskPool, SubmitAfterShutdownThrows)
{
    TaskPool pool(2);
    pool.shutdown();
    EXPECT_THROW(pool.submit([] {}), UsageError);
}

TEST(TaskPool, ShutdownDrainsQueuedTasks)
{
    std::atomic<int> count{0};
    TaskPool pool(1);
    for (int i = 0; i < 50; ++i)
        pool.submit([&count] {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
            ++count;
        });
    pool.shutdown();
    EXPECT_EQ(count.load(), 50);
    pool.shutdown(); // idempotent
}

TEST(TaskPool, DestructorJoinsAndDrains)
{
    std::atomic<int> count{0};
    {
        TaskPool pool(3);
        for (int i = 0; i < 100; ++i)
            pool.submit([&count] { ++count; });
    }
    EXPECT_EQ(count.load(), 100);
}

TEST(TaskPool, EmptyTaskRejected)
{
    TaskPool pool(1);
    EXPECT_THROW(pool.submit(std::function<void()>{}), UsageError);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    std::vector<int> hits(1000, 0);
    parallelFor(hits.size(), 4,
                [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelFor, ZeroCountIsANoop)
{
    int calls = 0;
    parallelFor(0, 4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SerialPathRunsInline)
{
    // numThreads == 1 must execute on the calling thread in index
    // order — the exact legacy serial path.
    const auto caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    parallelFor(64, 1, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 64u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, ExceptionPropagates)
{
    EXPECT_THROW(
        parallelFor(100, 4,
                    [](std::size_t i) {
                        if (i == 37)
                            throw UsageError("index 37");
                    }),
        UsageError);
    // Serial path propagates identically.
    EXPECT_THROW(
        parallelFor(100, 1,
                    [](std::size_t i) {
                        if (i == 37)
                            throw UsageError("index 37");
                    }),
        UsageError);
}

TEST(ParallelFor, SeededResultsIdenticalAcrossThreadCounts)
{
    // The determinism contract in one picture: task i draws from
    // Rng(deriveTaskSeed(root, i)), so the assembled vector is a pure
    // function of the root seed, not of the thread count.
    auto run = [](unsigned threads) {
        std::vector<uint64_t> out(512);
        parallelFor(out.size(), threads, [&](std::size_t i) {
            Rng rng(deriveTaskSeed(9001, i));
            uint64_t acc = 0;
            for (int k = 0; k < 100; ++k)
                acc += rng.nextBelow(1u << 20);
            out[i] = acc;
        });
        return out;
    };
    const auto serial = run(1);
    EXPECT_EQ(run(2), serial);
    EXPECT_EQ(run(4), serial);
    EXPECT_EQ(run(TaskPool::hardwareThreads()), serial);
}

TEST(ParallelFor, ReusablePoolAssemblesInOrder)
{
    TaskPool pool(4);
    std::vector<std::size_t> out(300);
    parallelFor(pool, out.size(),
                [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], i * i);
    // Second batch on the same pool.
    parallelFor(pool, out.size(),
                [&](std::size_t i) { out[i] = i + 1; });
    for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], i + 1);
}

} // namespace
