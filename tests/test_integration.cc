/**
 * @file
 * Cross-module integration tests: the full story of the paper on one
 * machine — reverse-engineer the policies from measurements, then
 * evaluate the recovered policies against baselines and verify the
 * evaluation is faithful to the machine itself.
 */

#include <gtest/gtest.h>

#include "recap/eval/opt.hh"
#include "recap/eval/simulate.hh"
#include "recap/hw/catalog.hh"
#include "recap/infer/pipeline.hh"
#include "recap/policy/factory.hh"
#include "recap/trace/generators.hh"

namespace
{

using namespace recap;

TEST(Integration, InferThenEvaluateSandyBridge)
{
    // Step 1: reverse-engineer the reduced Sandy Bridge.
    auto spec = hw::reducedSpec(hw::catalogMachine("sandybridge-i5"),
                                256);
    hw::Machine machine(spec);
    infer::InferenceOptions opts;
    opts.adaptive.windowSets = 32;
    const auto report = infer::inferMachine(machine, opts);
    ASSERT_EQ(report.levels.size(), 3u);

    // Step 2: the recovered L3 policy spec must be usable by the
    // evaluation harness directly.
    ASSERT_FALSE(report.levels[2].survivors.empty());
    const std::string recovered = report.levels[2].survivors.front();

    const auto geom = spec.levels[2].geometry();
    trace::SuiteConfig cfg;
    cfg.cacheBytes = geom.sizeBytes();
    cfg.accessesPerWorkload = 30000;
    const auto suite = trace::specLikeSuite(cfg);

    for (const auto& workload : suite) {
        const auto recovered_stats =
            eval::simulateTrace(geom, recovered, workload.trace);
        const auto truth_stats = eval::simulateTrace(
            geom, spec.levels[2].policySpec, workload.trace);
        // The recovered policy is behaviourally identical to the
        // hidden one, so the evaluation numbers must coincide.
        EXPECT_EQ(recovered_stats.misses, truth_stats.misses)
            << workload.name;
        const auto opt = eval::simulateOpt(geom, workload.trace);
        EXPECT_LE(opt.misses, recovered_stats.misses) << workload.name;
    }
}

TEST(Integration, InferredVerdictsMatchGroundTruthAcrossCatalog)
{
    // The Table-2 property on a fast subset: for each machine the
    // verdict string must agree with the hidden policy's name.
    for (const std::string name :
         {"atom-d525", "core2-e6750", "westmere-i5"}) {
        auto spec = hw::reducedSpec(hw::catalogMachine(name), 256);
        hw::Machine machine(spec);
        infer::InferenceOptions opts;
        opts.adaptive.windowSets = 32;
        const auto report = infer::inferMachine(machine, opts);
        ASSERT_EQ(report.levels.size(), spec.levels.size()) << name;
        for (size_t i = 0; i < spec.levels.size(); ++i) {
            const auto truth =
                policy::makePolicy(spec.levels[i].policySpec,
                                   spec.levels[i].ways)
                    ->name();
            EXPECT_EQ(report.levels[i].verdict.rfind(truth, 0), 0u)
                << name << " L" << i + 1 << ": expected " << truth
                << ", got " << report.levels[i].verdict;
        }
    }
}

TEST(Integration, NoisyMachineStillYieldsCorrectVerdicts)
{
    hw::NoiseConfig noise;
    noise.disturbProbability = 0.002;
    noise.latencyJitterProbability = 0.01;
    auto spec = hw::reducedSpec(hw::catalogMachine("core2-e6300"), 256);
    hw::Machine machine(spec, 3, noise);
    infer::InferenceOptions opts;
    opts.voteRepeats = 5;
    opts.adaptive.windowSets = 32;
    const auto report = infer::inferMachine(machine, opts);
    EXPECT_EQ(report.levels[0].verdict, "PLRU");
    EXPECT_EQ(report.levels[1].verdict, "PLRU");
}

TEST(Integration, EvaluationShapeHoldsOnThrashWorkload)
{
    // The evaluation-side claim the paper's figures rest on: on a
    // thrash-prone workload the thrash-resistant QLRU variant that
    // Ivy Bridge duels in beats the LRU-like variant, and the
    // adaptive composition is at least as good as the worse one on
    // BOTH phases.
    cache::Geometry geom{64, 128, 12}; // reduced L3 slice
    const auto thrash = trace::sequentialScan(2 * geom.sizeBytes(), 6);
    const auto m1 =
        eval::simulateTrace(geom, "qlru:H1,M1,R0,U2", thrash);
    const auto m3 =
        eval::simulateTrace(geom, "qlru:H1,M3,R0,U2", thrash);
    EXPECT_LT(m3.missRatio(), m1.missRatio());

    const auto reuse = trace::zipf(geom.sizeBytes(), 50000, 0.9, 5);
    const auto m1_reuse =
        eval::simulateTrace(geom, "qlru:H1,M1,R0,U2", reuse);
    const auto m3_reuse =
        eval::simulateTrace(geom, "qlru:H1,M3,R0,U2", reuse);
    // On reuse-friendly skew the LRU-like variant must not lose
    // badly (this is why the duel exists).
    EXPECT_LT(m1_reuse.missRatio(), m3_reuse.missRatio() * 1.5);
}

} // namespace
