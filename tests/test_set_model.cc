/**
 * @file
 * Tests for SetModel, the contents+policy automaton the inference
 * machinery reasons over.
 */

#include <gtest/gtest.h>

#include "recap/common/error.hh"
#include "recap/policy/factory.hh"
#include "recap/policy/lru.hh"
#include "recap/policy/set_model.hh"

namespace
{

using namespace recap::policy;
using recap::UsageError;

SetModel
lruModel(unsigned ways)
{
    return SetModel(std::make_unique<LruPolicy>(ways));
}

TEST(SetModel, StartsEmpty)
{
    SetModel m = lruModel(4);
    EXPECT_EQ(m.ways(), 4u);
    EXPECT_EQ(m.validCount(), 0u);
    EXPECT_FALSE(m.contains(7));
    for (unsigned w = 0; w < 4; ++w)
        EXPECT_FALSE(m.isValid(w));
}

TEST(SetModel, ColdFillsUseLowestInvalidWay)
{
    SetModel m = lruModel(4);
    EXPECT_FALSE(m.access(10));
    EXPECT_TRUE(m.isValid(0));
    EXPECT_EQ(m.blockAt(0), 10u);
    EXPECT_FALSE(m.access(11));
    EXPECT_EQ(m.blockAt(1), 11u);
    EXPECT_EQ(m.validCount(), 2u);
}

TEST(SetModel, HitsReportedCorrectly)
{
    SetModel m = lruModel(2);
    EXPECT_FALSE(m.access(5));
    EXPECT_TRUE(m.access(5));
    EXPECT_FALSE(m.access(6));
    EXPECT_TRUE(m.access(5));
    EXPECT_TRUE(m.access(6));
}

TEST(SetModel, EvictionReplacesVictim)
{
    SetModel m = lruModel(2);
    m.access(1);
    m.access(2);
    m.access(3); // evicts block 1 (LRU)
    EXPECT_FALSE(m.contains(1));
    EXPECT_TRUE(m.contains(2));
    EXPECT_TRUE(m.contains(3));
}

TEST(SetModel, FlushEmptiesAndResets)
{
    SetModel m = lruModel(4);
    for (BlockId b = 0; b < 4; ++b)
        m.access(b);
    m.flush();
    EXPECT_EQ(m.validCount(), 0u);
    EXPECT_FALSE(m.contains(0));
    // After a flush, cold fills start at way 0 again.
    m.access(42);
    EXPECT_EQ(m.blockAt(0), 42u);
}

TEST(SetModel, BlockAtChecksValidity)
{
    SetModel m = lruModel(4);
    EXPECT_THROW(m.blockAt(0), UsageError);
    EXPECT_THROW(m.blockAt(9), UsageError);
}

TEST(SetModel, EvictionOrderMatchesLruStack)
{
    SetModel m = lruModel(4);
    for (BlockId b = 1; b <= 4; ++b)
        m.access(b);
    m.access(2); // 2 becomes MRU
    const auto order = m.evictionOrder();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 1u);
    EXPECT_EQ(order[1], 3u);
    EXPECT_EQ(order[2], 4u);
    EXPECT_EQ(order[3], 2u);
}

TEST(SetModel, EvictionOrderDoesNotPerturbState)
{
    SetModel m = lruModel(4);
    for (BlockId b = 1; b <= 4; ++b)
        m.access(b);
    const std::string key = m.stateKey();
    (void)m.evictionOrder();
    EXPECT_EQ(m.stateKey(), key);
}

TEST(SetModel, EvictionOrderRequiresFullSet)
{
    SetModel m = lruModel(4);
    m.access(1);
    EXPECT_THROW(m.evictionOrder(), UsageError);
}

TEST(SetModel, CopyIsDeep)
{
    SetModel m = lruModel(2);
    m.access(1);
    SetModel copy(m);
    copy.access(2);
    copy.access(3);
    EXPECT_TRUE(m.contains(1));
    EXPECT_FALSE(m.contains(3));
    EXPECT_TRUE(copy.contains(3));
}

TEST(SetModel, AssignmentIsDeep)
{
    SetModel a = lruModel(2);
    SetModel b = lruModel(2);
    a.access(1);
    b = a;
    b.access(2);
    b.access(3);
    EXPECT_TRUE(a.contains(1));
    EXPECT_FALSE(a.contains(2));
}

TEST(SetModel, StateKeyInvariantUnderBlockRenaming)
{
    SetModel a = lruModel(4);
    SetModel b = lruModel(4);
    // Same access pattern with renamed block ids.
    for (BlockId x : {1u, 2u, 3u, 1u, 4u})
        a.access(x);
    for (BlockId x : {100u, 200u, 300u, 100u, 400u})
        b.access(x);
    EXPECT_EQ(a.stateKey(), b.stateKey());
}

TEST(SetModel, StateKeyDistinguishesDifferentStates)
{
    SetModel a = lruModel(4);
    SetModel b = lruModel(4);
    for (BlockId x : {1u, 2u, 3u, 4u})
        a.access(x);
    for (BlockId x : {1u, 2u, 3u, 4u})
        b.access(x);
    b.access(1); // different recency
    EXPECT_NE(a.stateKey(), b.stateKey());
}

TEST(SetModel, NextFillWayPrefersInvalid)
{
    SetModel m = lruModel(3);
    EXPECT_EQ(m.nextFillWay(), 0u);
    m.access(1);
    EXPECT_EQ(m.nextFillWay(), 1u);
    m.access(2);
    m.access(3);
    // Full set: policy victim decides (way 0 for fresh LRU).
    EXPECT_EQ(m.nextFillWay(), 0u);
}

TEST(SetModel, WorksForEveryRegistryPolicy)
{
    for (const auto& spec : recap::policy::baselineSpecs()) {
        if (!specSupportsWays(spec, 4))
            continue;
        SetModel m(makePolicy(spec, 4));
        for (BlockId b = 0; b < 12; ++b)
            m.access(b % 6);
        EXPECT_LE(m.validCount(), 4u) << spec;
        EXPECT_EQ(m.evictionOrder().size(), 4u) << spec;
    }
}

} // namespace
