/**
 * @file
 * Differential fuzzing of the compiled hierarchy: random
 * inclusive/exclusive/non-inclusive hierarchy specs (random depths,
 * geometries, policies — compiled and fallback, static and
 * adaptive) x random load/store traces, asserting the compiled and
 * interpreted paths agree on served levels, statistics, final tag
 * images, and back-invalidation counts. Runs clean under ASan/TSan
 * (the sanitizer CI jobs build this test like any other).
 */

#include <gtest/gtest.h>

#include "recap/common/rng.hh"
#include "recap/hier/simulate.hh"
#include "recap/hw/spec.hh"
#include "recap/trace/trace.hh"

namespace
{

using namespace recap;

/** Policy pool mixing compiled, fallback, and stochastic specs. */
const char* const kPolicies[] = {
    "lru", "plru", "nru", "fifo", "qlru:H1,M1,R0,U2", "srrip",
    "lip", "random",
};

hw::MachineSpec
randomSpec(Rng& rng)
{
    hw::MachineSpec spec;
    spec.name = "fuzz";
    spec.description = "randomized hierarchy";
    const unsigned depth = 1 + static_cast<unsigned>(rng.nextBelow(3));
    unsigned latency = 2;
    const unsigned lineSize = 64;
    for (unsigned i = 0; i < depth; ++i) {
        hw::CacheLevelSpec lvl;
        lvl.name = "L" + std::to_string(i + 1);
        // PLRU needs power-of-two ways; keep every way count one.
        const unsigned ways =
            1u << (1 + static_cast<unsigned>(rng.nextBelow(3)));
        const unsigned sets =
            1u << (2 + static_cast<unsigned>(rng.nextBelow(4)));
        lvl.ways = ways;
        lvl.lineSize = lineSize;
        lvl.capacityBytes =
            static_cast<uint64_t>(sets) * ways * lineSize;
        latency += 1 + static_cast<unsigned>(rng.nextBelow(8));
        lvl.hitLatency = latency;
        lvl.policySpec = kPolicies[rng.nextBelow(std::size(kPolicies))];
        if (rng.nextBool(0.3)) {
            // Adaptive level: duel two random policies.
            lvl.policySpecB =
                kPolicies[rng.nextBelow(std::size(kPolicies))];
            lvl.duel.leaderSetsPerPolicy = 1 + static_cast<unsigned>(
                rng.nextBelow(sets / 2));
            lvl.duel.pselBits =
                1 + static_cast<unsigned>(rng.nextBelow(10));
        }
        spec.levels.push_back(lvl);
    }
    spec.memoryLatency = latency + 20;
    return spec;
}

trace::RefTrace
randomRefs(Rng& rng, size_t count, uint64_t footprint)
{
    trace::RefTrace refs;
    refs.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        trace::MemRef r;
        r.addr = rng.nextBelow(footprint);
        r.write = rng.nextBool(0.3);
        refs.push_back(r);
    }
    return refs;
}

TEST(HierFuzz, RandomSpecsAndTracesAgreeWithInterpreted)
{
    Rng rng(0xf022beef);
    constexpr unsigned kRounds = 40;
    const cache::InclusionMode modes[] = {
        cache::InclusionMode::kNonInclusive,
        cache::InclusionMode::kInclusive,
        cache::InclusionMode::kExclusive,
    };
    for (unsigned round = 0; round < kRounds; ++round) {
        const auto spec = randomSpec(rng);
        // Footprint a few times the whole stack, so outer levels
        // evict (exercising back-invalidation and victim cascades).
        uint64_t footprint = 64;
        for (const auto& lvl : spec.levels)
            footprint += lvl.capacityBytes;
        const auto refs =
            randomRefs(rng, 4000, 3 * footprint);

        hier::CrossCheckOptions opts;
        opts.mode = modes[round % std::size(modes)];
        opts.seed = 1 + round;
        const auto report = hier::crossCheck(spec, refs, opts);
        ASSERT_TRUE(report.ok)
            << "round " << round << " ["
            << cache::inclusionModeName(opts.mode)
            << "]: " << report.detail;
    }
}

TEST(HierFuzz, BackInvalidationCountsMatchUnderPressure)
{
    // Deliberately inverted hierarchy (big L1, tiny L2) in inclusive
    // mode: L2 evicts constantly, so back-invalidation is the common
    // case, not the corner case.
    Rng rng(0xabcdef);
    for (unsigned round = 0; round < 10; ++round) {
        hw::MachineSpec spec;
        spec.name = "inverted";
        spec.description = "big L1 over tiny L2";
        hw::CacheLevelSpec l1;
        l1.name = "L1";
        l1.ways = 8;
        l1.capacityBytes = 64 * 64 * 8;
        l1.hitLatency = 3;
        l1.policySpec = "plru";
        hw::CacheLevelSpec l2;
        l2.name = "L2";
        l2.ways = 2;
        l2.capacityBytes = 4 * 64 * 2;
        l2.hitLatency = 10;
        l2.policySpec = round % 2 ? "lru" : "random";
        spec.levels = {l1, l2};
        spec.memoryLatency = 50;

        hier::CrossCheckOptions opts;
        opts.mode = cache::InclusionMode::kInclusive;
        opts.seed = 100 + round;
        const auto refs = randomRefs(rng, 3000, 256 * 1024);
        const auto report = hier::crossCheck(spec, refs, opts);
        ASSERT_TRUE(report.ok)
            << "round " << round << ": " << report.detail;

        // The counter itself must be live (crossCheck already
        // asserted compiled == interpreted).
        hier::Options hopts;
        hopts.mode = cache::InclusionMode::kInclusive;
        hier::Hierarchy h(spec, 100 + round, hopts);
        for (const auto& r : refs)
            h.access(r.addr, r.write);
        EXPECT_GT(h.stats(0).backInvalidations, 0u)
            << "round " << round;
    }
}

} // namespace
