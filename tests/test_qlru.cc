/**
 * @file
 * Tests for the QLRU parameter family.
 */

#include <gtest/gtest.h>

#include "recap/common/error.hh"
#include "recap/common/rng.hh"
#include "recap/policy/nru.hh"
#include "recap/policy/qlru.hh"
#include "recap/policy/set_model.hh"

namespace
{

using namespace recap::policy;
using recap::UsageError;

QlruParams
params(const std::string& text)
{
    return QlruParams::parse(text);
}

TEST(QlruParams, ParseRoundTrip)
{
    for (const auto& p : QlruParams::allVariants())
        EXPECT_EQ(QlruParams::parse(p.shortName()), p);
}

TEST(QlruParams, ParseRejectsGarbage)
{
    EXPECT_THROW(QlruParams::parse(""), UsageError);
    EXPECT_THROW(QlruParams::parse("H0M1R0U2"), UsageError);
    EXPECT_THROW(QlruParams::parse("H2,M1,R0,U2"), UsageError);
    EXPECT_THROW(QlruParams::parse("H0,M4,R0,U2"), UsageError);
    EXPECT_THROW(QlruParams::parse("H0,M1,R2,U2"), UsageError);
    EXPECT_THROW(QlruParams::parse("H0,M1,R0,U3"), UsageError);
}

TEST(QlruParams, GridHas48Variants)
{
    EXPECT_EQ(QlruParams::allVariants().size(), 48u);
}

TEST(Qlru, ColdLinesStartAtMaxAge)
{
    QlruPolicy q(4, params("H0,M1,R0,U2"));
    for (unsigned a : q.ages())
        EXPECT_EQ(a, 3u);
    EXPECT_EQ(q.victim(), 0u); // leftmost age-3 line
}

TEST(Qlru, HitRuleH0SetsAgeZero)
{
    QlruPolicy q(4, params("H0,M2,R0,U0"));
    q.fill(1); // age[1] = 2
    q.touch(1);
    EXPECT_EQ(q.ages()[1], 0u);
}

TEST(Qlru, HitRuleH1Decrements)
{
    QlruPolicy q(4, params("H1,M2,R0,U0"));
    q.fill(1); // age 2
    q.touch(1);
    EXPECT_EQ(q.ages()[1], 1u);
    q.touch(1);
    EXPECT_EQ(q.ages()[1], 0u);
    q.touch(1); // floor at 0
    EXPECT_EQ(q.ages()[1], 0u);
}

TEST(Qlru, MissRuleSetsInsertionAge)
{
    for (unsigned m = 0; m < 4; ++m) {
        QlruPolicy q(4, params("H0,M" + std::to_string(m) + ",R0,U0"));
        q.fill(2);
        EXPECT_EQ(q.ages()[2], m);
    }
}

TEST(Qlru, ReplaceRuleLeftVsRight)
{
    QlruPolicy left(4, params("H0,M0,R0,U0"));
    QlruPolicy right(4, params("H0,M0,R1,U0"));
    // All ages equal (3): R0 picks way 0, R1 picks way 3.
    EXPECT_EQ(left.victim(), 0u);
    EXPECT_EQ(right.victim(), 3u);
}

TEST(Qlru, UpdateRuleU1AgesOthersOnFill)
{
    QlruPolicy q(4, params("H0,M0,R0,U1"));
    q.fill(0);
    q.touch(0); // age[0] = 0
    q.fill(1);  // ages way 0 to 1
    EXPECT_EQ(q.ages()[0], 1u);
    q.fill(2);
    EXPECT_EQ(q.ages()[0], 2u);
    EXPECT_EQ(q.ages()[1], 1u);
}

TEST(Qlru, UpdateRuleU2NormalizesAtFill)
{
    QlruPolicy q(4, params("H0,M1,R0,U2"));
    // Give all lines small ages.
    for (unsigned w = 0; w < 4; ++w) {
        q.fill(w);
        q.touch(w); // age 0
    }
    // No age-3 line exists; filling must normalize first: everyone
    // else jumps to 3, the filled way gets the insertion age.
    q.fill(2);
    EXPECT_EQ(q.ages()[0], 3u);
    EXPECT_EQ(q.ages()[1], 3u);
    EXPECT_EQ(q.ages()[2], 1u);
    EXPECT_EQ(q.ages()[3], 3u);
}

TEST(Qlru, VictimPrefersOldest)
{
    QlruPolicy q(4, params("H0,M1,R0,U0"));
    q.fill(0);
    q.fill(1);
    q.fill(2);
    q.fill(3); // all age 1
    q.touch(0);
    q.touch(1);
    q.touch(3); // ages 0,0,1,0: max age is way 2
    EXPECT_EQ(q.victim(), 2u);
}

TEST(Qlru, NameEncodesParameters)
{
    QlruPolicy q(8, params("H1,M3,R0,U2"));
    EXPECT_EQ(q.name(), "QLRU(H1,M3,R0,U2)");
}

TEST(Qlru, RequiresTwoWays)
{
    EXPECT_THROW(QlruPolicy(1, params("H0,M1,R0,U2")), UsageError);
}

/**
 * The degenerate corner QLRU(H0,M0,R0,U2) collapses onto NRU: ages
 * behave as a single referenced bit. This equivalence is exploited
 * by the candidate search; pin it down here behaviourally.
 */
TEST(Qlru, DegenerateCornerEqualsNru)
{
    for (unsigned k : {2u, 4u, 8u}) {
        SetModel a(std::make_unique<QlruPolicy>(k,
                                                params("H0,M0,R0,U2")));
        SetModel b(std::make_unique<NruPolicy>(k));
        recap::Rng rng(k);
        for (int i = 0; i < 3000; ++i) {
            const BlockId blk = rng.nextBelow(k + 2);
            ASSERT_EQ(a.access(blk), b.access(blk))
                << "k=" << k << " step " << i;
        }
    }
}

TEST(Qlru, ThrashResistantVariantKeepsWorkingSet)
{
    // M3 inserts as immediately evictable: on a cyclic sweep of
    // ways+1 blocks the resident ones keep hitting (BIP-like), while
    // the M1 variant churns like LRU.
    const unsigned k = 8;
    SetModel bipish(std::make_unique<QlruPolicy>(k,
                                                 params("H1,M3,R0,U2")));
    SetModel lruish(std::make_unique<QlruPolicy>(k,
                                                 params("H1,M1,R0,U2")));
    unsigned miss_bipish = 0;
    unsigned miss_lruish = 0;
    for (int round = 0; round < 50; ++round) {
        for (unsigned b = 0; b <= k; ++b) {
            if (!bipish.access(b))
                ++miss_bipish;
            if (!lruish.access(b))
                ++miss_lruish;
        }
    }
    EXPECT_LT(miss_bipish, miss_lruish / 2)
        << "M3 insertion must be markedly more thrash-resistant";
}

} // namespace
