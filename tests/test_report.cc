/**
 * @file
 * Tests for the inference-report renderer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "recap/common/error.hh"
#include "recap/hw/catalog.hh"
#include "recap/infer/report.hh"

namespace
{

using namespace recap;

infer::MachineReport
sampleReport()
{
    infer::MachineReport report;
    report.machineName = "sample";
    report.geometry.lineSize = 64;

    infer::LevelReport l1;
    l1.levelName = "L1";
    l1.geometry = {64, 64, 8};
    l1.isPermutation = true;
    l1.verdict = "PLRU";
    l1.agreement = 1.0;
    l1.loadsUsed = 1234;
    report.levels.push_back(l1);

    infer::LevelReport l2;
    l2.levelName = "L2";
    l2.geometry = {64, 512, 12};
    l2.adaptive = true;
    l2.verdict = "adaptive (set dueling): A vs B";
    l2.agreement = 0.995;
    l2.loadsUsed = 99999;
    report.levels.push_back(l2);
    report.totalLoads = 101233;
    return report;
}

TEST(Report, DescribeGroundTruthStatic)
{
    hw::CacheLevelSpec lvl;
    lvl.name = "L1";
    lvl.capacityBytes = 32 * 1024;
    lvl.ways = 8;
    lvl.hitLatency = 4;
    lvl.policySpec = "plru";
    EXPECT_EQ(infer::describeGroundTruth(lvl), "PLRU");
}

TEST(Report, DescribeGroundTruthAdaptive)
{
    const auto spec = hw::catalogMachine("ivybridge-i5");
    const auto truth = infer::describeGroundTruth(spec.levels[2]);
    EXPECT_NE(truth.find("adaptive:"), std::string::npos);
    EXPECT_NE(truth.find("QLRU(H1,M3,R0,U2)"), std::string::npos);
    EXPECT_NE(truth.find("QLRU(H1,M1,R0,U2)"), std::string::npos);
}

TEST(Report, PrintWithoutTruthColumn)
{
    std::ostringstream oss;
    infer::printMachineReport(oss, sampleReport());
    const std::string out = oss.str();
    EXPECT_NE(out.find("PLRU"), std::string::npos);
    EXPECT_NE(out.find("set-dueling detect"), std::string::npos);
    EXPECT_NE(out.find("permutation infer"), std::string::npos);
    EXPECT_NE(out.find("Total loads issued: 101233"),
              std::string::npos);
    EXPECT_EQ(out.find("ground truth"), std::string::npos);
}

TEST(Report, PrintWithTruthColumn)
{
    auto spec = hw::catalogMachine("core2-e6300");
    infer::MachineReport report = sampleReport();
    report.levels.resize(2);
    std::ostringstream oss;
    infer::printMachineReport(oss, report, &spec);
    const std::string out = oss.str();
    EXPECT_NE(out.find("ground truth"), std::string::npos);
    EXPECT_NE(out.find("32 KiB"), std::string::npos);
}

TEST(Report, TruthLevelCountMustMatch)
{
    auto spec = hw::catalogMachine("nehalem-i5"); // three levels
    const auto report = sampleReport();           // two levels
    std::ostringstream oss;
    EXPECT_THROW(infer::printMachineReport(oss, report, &spec),
                 UsageError);
}

} // namespace
