/**
 * @file
 * Tests for the measurement context and the majority-voting helper.
 */

#include <gtest/gtest.h>

#include "recap/common/error.hh"
#include "recap/common/rng.hh"
#include "recap/hw/catalog.hh"
#include "recap/infer/measurement.hh"

namespace
{

using namespace recap;
using infer::MeasurementContext;
using infer::majorityVote;

TEST(Measurement, TimedLevelClassifies)
{
    hw::Machine machine(hw::catalogMachine("core2-e6300"));
    MeasurementContext ctx(machine);
    EXPECT_EQ(ctx.depth(), 2u);
    EXPECT_EQ(ctx.timedLevel(0), 2u); // cold: memory
    EXPECT_EQ(ctx.timedLevel(0), 0u); // hot: L1
}

TEST(Measurement, CountedHitDelta)
{
    hw::Machine machine(hw::catalogMachine("core2-e6300"));
    MeasurementContext ctx(machine);
    EXPECT_FALSE(ctx.countedHit(0, 0));
    EXPECT_TRUE(ctx.countedHit(0, 0));
    EXPECT_THROW(ctx.countedHit(7, 0), UsageError);
}

TEST(Measurement, ObserveAtLevelReached)
{
    hw::Machine machine(hw::catalogMachine("core2-e6300"));
    MeasurementContext ctx(machine);
    ctx.access(0); // cold fill of all levels
    // A hot line hits L1 and never reaches L2.
    const auto obs = ctx.observeAtLevel(1, 0);
    EXPECT_FALSE(obs.reached);
    EXPECT_FALSE(obs.hit);
}

TEST(Measurement, FlushResetsContents)
{
    hw::Machine machine(hw::catalogMachine("core2-e6300"));
    MeasurementContext ctx(machine);
    ctx.access(0);
    ctx.flush();
    EXPECT_FALSE(ctx.countedHit(0, 0));
}

TEST(Measurement, ExperimentCounter)
{
    hw::Machine machine(hw::catalogMachine("core2-e6300"));
    MeasurementContext ctx(machine);
    EXPECT_EQ(ctx.experimentsRun(), 0u);
    ctx.beginExperiment();
    ctx.beginExperiment();
    EXPECT_EQ(ctx.experimentsRun(), 2u);
}

TEST(MajorityVote, UnanimousAndSplit)
{
    int calls = 0;
    EXPECT_TRUE(majorityVote(5, [&] { ++calls; return true; }));
    EXPECT_EQ(calls, 5);
    EXPECT_FALSE(majorityVote(5, [] { return false; }));

    // 2 of 5 true -> false; 3 of 5 -> true.
    int i = 0;
    EXPECT_FALSE(majorityVote(5, [&] { return ++i <= 2; }));
    i = 0;
    EXPECT_TRUE(majorityVote(5, [&] { return ++i <= 3; }));
}

TEST(MajorityVote, EvenRepeatsRoundedUp)
{
    int calls = 0;
    majorityVote(4, [&] { ++calls; return true; });
    EXPECT_EQ(calls, 5);
}

TEST(MajorityVote, SingleRepeatTrustsOneRun)
{
    int calls = 0;
    EXPECT_TRUE(majorityVote(1, [&] { ++calls; return true; }));
    EXPECT_EQ(calls, 1);
    EXPECT_THROW(majorityVote(0, [] { return true; }), UsageError);
}

TEST(MajorityVote, DefeatsMinorityNoise)
{
    // A 20%-flaky observation voted 9 times: the majority answer is
    // essentially always the true one for a fixed error pattern.
    Rng rng(4);
    int wrong = 0;
    for (int trial = 0; trial < 200; ++trial) {
        const bool voted = majorityVote(9, [&] {
            return rng.nextBool(0.2) ? false : true;
        });
        if (!voted)
            ++wrong;
    }
    EXPECT_LE(wrong, 4);
}

} // namespace
