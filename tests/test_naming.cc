/**
 * @file
 * Tests for canonical policy naming.
 */

#include <gtest/gtest.h>

#include "recap/infer/naming.hh"
#include "recap/policy/permutation.hh"

namespace
{

using namespace recap;
using policy::PermutationPolicy;

TEST(Naming, RecognizesLru)
{
    for (unsigned k : {2u, 4u, 8u, 16u}) {
        EXPECT_EQ(infer::canonicalPermutationName(
                      PermutationPolicy::lru(k)),
                  "LRU");
    }
}

TEST(Naming, RecognizesFifo)
{
    for (unsigned k : {2u, 4u, 8u}) {
        EXPECT_EQ(infer::canonicalPermutationName(
                      PermutationPolicy::fifo(k)),
                  "FIFO");
    }
}

TEST(Naming, RecognizesPlru)
{
    for (unsigned k : {4u, 8u, 16u}) {
        EXPECT_EQ(infer::canonicalPermutationName(
                      PermutationPolicy::plru(k)),
                  "PLRU");
    }
}

TEST(Naming, PlruAtTwoWaysIsLru)
{
    // At k=2 tree-PLRU degenerates to LRU, and the vectors coincide;
    // naming must pick the LRU label (checked first).
    EXPECT_EQ(infer::canonicalPermutationName(PermutationPolicy::plru(2)),
              "LRU");
}

TEST(Naming, UnrecognizedVectorsGetGenericLabel)
{
    // Swap two hit permutations of LRU to make an artificial policy.
    auto lru = PermutationPolicy::lru(4);
    auto hits = lru.hitPermutations();
    std::swap(hits[1], hits[2]);
    PermutationPolicy weird(4, hits, lru.missPermutation());
    EXPECT_EQ(infer::canonicalPermutationName(weird),
              "Permutation(k=4)");
}

TEST(Naming, NonPowerOfTwoSkipsPlruComparison)
{
    // Must not throw for k where tree-PLRU does not exist.
    auto lru = PermutationPolicy::lru(6);
    EXPECT_EQ(infer::canonicalPermutationName(lru), "LRU");
}

TEST(Naming, PrettySpecNames)
{
    EXPECT_EQ(infer::prettySpecName("nru", 8), "NRU");
    EXPECT_EQ(infer::prettySpecName("bitplru", 8), "BitPLRU");
    EXPECT_EQ(infer::prettySpecName("qlru:H1,M1,R0,U2", 8),
              "QLRU(H1,M1,R0,U2)");
    EXPECT_EQ(infer::prettySpecName("srrip", 8), "SRRIP2");
}

} // namespace
