/**
 * @file
 * Behavioural unit tests for the individual replacement policies:
 * known access sequences with hand-computed expected outcomes.
 */

#include <gtest/gtest.h>

#include "recap/common/error.hh"
#include "recap/policy/factory.hh"
#include "recap/policy/fifo.hh"
#include "recap/policy/lru.hh"
#include "recap/policy/nru.hh"
#include "recap/policy/plru.hh"
#include "recap/policy/random.hh"

namespace
{

using namespace recap::policy;
using recap::UsageError;

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy lru(4);
    // Fill 0..3: way 0 is oldest.
    for (unsigned w = 0; w < 4; ++w)
        lru.fill(w);
    EXPECT_EQ(lru.victim(), 0u);
    lru.touch(0); // refresh way 0: way 1 becomes oldest
    EXPECT_EQ(lru.victim(), 1u);
    lru.touch(1);
    EXPECT_EQ(lru.victim(), 2u);
}

TEST(Lru, RecencyOrderTracksAccesses)
{
    LruPolicy lru(4);
    for (unsigned w = 0; w < 4; ++w)
        lru.fill(w);
    lru.touch(1);
    const auto order = lru.recencyOrder();
    EXPECT_EQ(order.front(), 1u); // MRU
    EXPECT_EQ(order.back(), 0u);  // LRU
}

TEST(Lru, ResetRestoresInitialVictim)
{
    LruPolicy lru(4);
    lru.fill(3);
    lru.touch(3);
    lru.reset();
    EXPECT_EQ(lru.victim(), 3u);
}

TEST(Lru, RejectsOutOfRangeWay)
{
    LruPolicy lru(4);
    EXPECT_THROW(lru.touch(4), UsageError);
    EXPECT_THROW(lru.fill(100), UsageError);
}

TEST(Fifo, HitsDoNotRefresh)
{
    FifoPolicy fifo(4);
    for (unsigned w = 0; w < 4; ++w)
        fifo.fill(w);
    EXPECT_EQ(fifo.victim(), 0u);
    fifo.touch(0); // FIFO ignores hits
    EXPECT_EQ(fifo.victim(), 0u);
    fifo.fill(0);  // refill moves way 0 to the queue tail
    EXPECT_EQ(fifo.victim(), 1u);
}

TEST(Fifo, EvictionFollowsInsertionOrder)
{
    FifoPolicy fifo(3);
    fifo.fill(2);
    fifo.fill(0);
    fifo.fill(1);
    EXPECT_EQ(fifo.victim(), 2u);
    fifo.fill(2);
    EXPECT_EQ(fifo.victim(), 0u);
    fifo.fill(0);
    EXPECT_EQ(fifo.victim(), 1u);
}

TEST(Lip, InsertsAtLruPosition)
{
    LipPolicy lip(4);
    for (unsigned w = 0; w < 4; ++w)
        lip.fill(w);
    // The most recent fill sits at the LRU end: immediate victim.
    EXPECT_EQ(lip.victim(), 3u);
    lip.touch(3); // a reuse promotes to MRU
    EXPECT_EQ(lip.victim(), 2u);
}

TEST(Bip, ThrottledMruInsertion)
{
    // throttle=2: fills alternate MRU, LRU, MRU, LRU...
    BipPolicy bip(4, 2);
    bip.fill(0); // MRU insertion
    EXPECT_NE(bip.victim(), 0u);
    bip.fill(1); // LRU insertion
    EXPECT_EQ(bip.victim(), 1u);
    bip.fill(2); // MRU insertion again
    EXPECT_NE(bip.victim(), 2u);
}

TEST(Bip, ThrottleOneDegeneratesToLip)
{
    BipPolicy bip(4, 1);
    for (unsigned w = 0; w < 4; ++w)
        bip.fill(w);
    // throttle 1 means every fill is the "1-in-1" MRU fill.
    EXPECT_EQ(bip.victim(), 0u);
}

TEST(Bip, RejectsZeroThrottle)
{
    EXPECT_THROW(BipPolicy(4, 0), UsageError);
}

TEST(TreePlru, VictimChainCoversAllWays)
{
    TreePlruPolicy plru(8);
    std::vector<bool> seen(8, false);
    for (int i = 0; i < 8; ++i) {
        const Way v = plru.victim();
        ASSERT_LT(v, 8u);
        EXPECT_FALSE(seen[v]) << "victim repeated before full tour";
        seen[v] = true;
        plru.fill(v);
    }
}

TEST(TreePlru, AccessProtectsWay)
{
    TreePlruPolicy plru(4);
    for (int i = 0; i < 16; ++i) {
        const Way w = static_cast<Way>(i % 4);
        plru.touch(w);
        EXPECT_NE(plru.victim(), w)
            << "just-touched way must not be the victim";
    }
}

TEST(TreePlru, KnownSequenceK4)
{
    TreePlruPolicy plru(4);
    // From the all-zero tree the victim chain is 0, 2, 1, 3.
    EXPECT_EQ(plru.victim(), 0u);
    plru.fill(0);
    EXPECT_EQ(plru.victim(), 2u);
    plru.fill(2);
    EXPECT_EQ(plru.victim(), 1u);
    plru.fill(1);
    EXPECT_EQ(plru.victim(), 3u);
}

TEST(TreePlru, RequiresPowerOfTwo)
{
    EXPECT_THROW(TreePlruPolicy(6), UsageError);
    EXPECT_THROW(TreePlruPolicy(1), UsageError);
    EXPECT_NO_THROW(TreePlruPolicy(2));
    EXPECT_NO_THROW(TreePlruPolicy(16));
}

TEST(BitPlru, SaturationKeepsOnlyNewestMark)
{
    BitPlruPolicy mru(4);
    mru.touch(0);
    mru.touch(1);
    mru.touch(2);
    EXPECT_EQ(mru.victim(), 3u);
    // This access would saturate: all other bits clear first.
    mru.touch(3);
    const auto bits = mru.mruBits();
    EXPECT_FALSE(bits[0]);
    EXPECT_FALSE(bits[1]);
    EXPECT_FALSE(bits[2]);
    EXPECT_TRUE(bits[3]);
    EXPECT_EQ(mru.victim(), 0u);
}

TEST(Nru, LazyClearAtVictimTime)
{
    NruPolicy nru(4);
    nru.touch(0);
    nru.touch(1);
    nru.touch(2);
    EXPECT_EQ(nru.victim(), 3u);
    nru.touch(3);
    // All bits set now; victim() models the lazy clear: way 0.
    EXPECT_EQ(nru.victim(), 0u);
    // fill() commits the clear and marks the filled way only.
    nru.fill(0);
    const auto bits = nru.referenceBits();
    EXPECT_TRUE(bits[0]);
    EXPECT_FALSE(bits[1]);
    EXPECT_EQ(nru.victim(), 1u);
}

TEST(Nru, VictimHasNoSideEffects)
{
    NruPolicy nru(4);
    nru.touch(0);
    const auto key_before = nru.stateKey();
    (void)nru.victim();
    (void)nru.victim();
    EXPECT_EQ(nru.stateKey(), key_before);
}

TEST(Random, DeterministicUnderSeed)
{
    RandomPolicy a(8, 42);
    RandomPolicy b(8, 42);
    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(a.victim(), b.victim());
        a.fill(a.victim());
        b.fill(b.victim());
    }
}

TEST(Random, ResetReplaysStream)
{
    RandomPolicy p(8, 7);
    std::vector<Way> first;
    for (int i = 0; i < 20; ++i) {
        first.push_back(p.victim());
        p.fill(p.victim());
    }
    p.reset();
    for (int i = 0; i < 20; ++i) {
        ASSERT_EQ(p.victim(), first[i]);
        p.fill(p.victim());
    }
}

TEST(Random, HitsConsumeNoRandomness)
{
    RandomPolicy p(8, 9);
    const Way v = p.victim();
    p.touch(3);
    p.touch(5);
    EXPECT_EQ(p.victim(), v);
}

TEST(Factory, CreatesEveryBaselineSpec)
{
    for (const auto& spec : baselineSpecs()) {
        if (!specSupportsWays(spec, 8))
            continue;
        auto policy = makePolicy(spec, 8);
        ASSERT_NE(policy, nullptr) << spec;
        EXPECT_EQ(policy->ways(), 8u) << spec;
        EXPECT_FALSE(policy->name().empty()) << spec;
    }
}

TEST(Factory, ParsesParameterizedSpecs)
{
    EXPECT_EQ(makePolicy("bip:8", 4)->name(), "BIP");
    EXPECT_EQ(makePolicy("srrip:3", 4)->name(), "SRRIP3");
    EXPECT_EQ(makePolicy("brrip:2,16", 4)->name(), "BRRIP2");
    EXPECT_EQ(makePolicy("qlru:H0,M2,R1,U1", 4)->name(),
              "QLRU(H0,M2,R1,U1)");
    EXPECT_EQ(makePolicy("perm-plru", 8)->name(), "PLRU");
}

TEST(Factory, RejectsUnknownSpecs)
{
    EXPECT_THROW(makePolicy("mystery", 4), UsageError);
    EXPECT_THROW(makePolicy("qlru:bogus", 4), UsageError);
    EXPECT_THROW(makePolicy("bip:x", 4), UsageError);
    EXPECT_FALSE(isKnownPolicySpec("nope"));
    EXPECT_TRUE(isKnownPolicySpec("lru"));
}

TEST(Factory, SpecSupportsWaysMatchesReality)
{
    EXPECT_TRUE(specSupportsWays("plru", 8));
    EXPECT_FALSE(specSupportsWays("plru", 6));
    EXPECT_TRUE(specSupportsWays("nru", 6));
    EXPECT_TRUE(specSupportsWays("lru", 1));
    EXPECT_FALSE(specSupportsWays("nru", 1));
}

} // namespace
