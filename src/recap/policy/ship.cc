#include "recap/policy/ship.hh"

#include "recap/common/error.hh"

namespace recap::policy
{

ShipPolicy::ShipPolicy(unsigned ways, unsigned bits, unsigned sigBits,
                       unsigned ctrBits)
    : SrripPolicy(ways, bits), sigBits_(sigBits),
      ctrMax_((1u << ctrBits) - 1)
{
    require(ways >= 2, "ShipPolicy: needs at least 2 ways");
    require(sigBits >= 1 && sigBits <= 14,
            "ShipPolicy: sigBits must be in [1,14]");
    require(ctrBits >= 1 && ctrBits <= 8,
            "ShipPolicy: ctrBits must be in [1,8]");
    ShipPolicy::reset();
}

void
ShipPolicy::reset()
{
    SrripPolicy::reset();
    // Counters start weakly reused: cold signatures insert long until
    // they prove themselves streaming.
    shct_.assign(size_t{1} << sigBits_, 1);
    sig_.assign(ways_, 0);
    outcome_.assign(ways_, false);
    tracked_.assign(ways_, false);
    pendingPc_ = 0;
    pendingHasPc_ = false;
}

void
ShipPolicy::beginAccess(const AccessMeta& meta)
{
    pendingPc_ = meta.hasPc ? meta.pc : 0;
    pendingHasPc_ = meta.hasPc;
}

void
ShipPolicy::touch(Way way)
{
    checkWay(way);
    rrpv_[way] = 0;
    // Every re-reference strengthens the line's signature.
    outcome_[way] = true;
    if (tracked_[way] && shct_[sig_[way]] < ctrMax_)
        ++shct_[sig_[way]];
    pendingHasPc_ = false;
    pendingPc_ = 0;
}

void
ShipPolicy::fill(Way way)
{
    checkWay(way);
    // The displaced line's verdict: never reused weakens its
    // signature.
    if (tracked_[way] && !outcome_[way] && shct_[sig_[way]] > 0)
        --shct_[sig_[way]];

    const unsigned sig =
        signatureOf(pendingHasPc_ ? pendingPc_ : 0);
    ageUntilVictimExists();
    // Zero counter = confirmed streaming signature: insert distant
    // (immediately evictable). Anything else inserts long.
    rrpv_[way] = shct_[sig] == 0
        ? maxRrpv_ : (maxRrpv_ == 0 ? 0 : maxRrpv_ - 1);
    sig_[way] = sig;
    outcome_[way] = false;
    tracked_[way] = true;
    pendingHasPc_ = false;
    pendingPc_ = 0;
}

PolicyPtr
ShipPolicy::clone() const
{
    return std::make_unique<ShipPolicy>(*this);
}

std::string
ShipPolicy::stateKey() const
{
    std::string key = SrripPolicy::stateKey();
    key += ":";
    for (unsigned w = 0; w < ways_; ++w) {
        if (!tracked_[w]) {
            key += "-";
            continue;
        }
        key += std::to_string(sig_[w]);
        key += outcome_[w] ? "r" : "u";
    }
    key += ":";
    for (unsigned c : shct_)
        key += std::to_string(c);
    key += ":";
    key += pendingHasPc_ ? std::to_string(signatureOf(pendingPc_))
                         : std::string("-");
    return key;
}

unsigned
ShipPolicy::shctAt(unsigned signature) const
{
    require(signature < shct_.size(),
            "ShipPolicy::shctAt: signature out of range");
    return shct_[signature];
}

unsigned
ShipPolicy::signatureOf(uint64_t pc) const
{
    // Fibonacci multiplicative hash folded to sigBits_.
    const uint64_t h = pc * 0x9E3779B97F4A7C15ull;
    return static_cast<unsigned>(h >> (64 - sigBits_));
}

} // namespace recap::policy
