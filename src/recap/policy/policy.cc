#include "recap/policy/policy.hh"

#include "recap/common/error.hh"

namespace recap::policy
{

ReplacementPolicy::ReplacementPolicy(unsigned ways)
    : ways_(ways)
{
    require(ways >= 1, "ReplacementPolicy: associativity must be >= 1");
}

void
ReplacementPolicy::checkWay(Way way) const
{
    require(way < ways_, "ReplacementPolicy: way index out of range");
}

} // namespace recap::policy
