/**
 * @file
 * String-spec factory for replacement policies.
 *
 * Policy specs are short strings used throughout the benches,
 * examples and the machine catalog:
 *
 *   "lru" | "fifo" | "plru" | "bitplru" | "nru" | "random"
 *   "lip" | "bip" | "bip:<throttle>"
 *   "srrip" | "srrip:<bits>" | "brrip" | "brrip:<bits>,<throttle>"
 *   "slru" | "slru:<protectedWays>"
 *   "qlru:<H>,<M>,<R>,<U>"   e.g. "qlru:H1,M1,R0,U2"
 *   "dip" | "dip:<throttle>,<pselBits>,<epochLen>"
 *   "drrip" | "drrip:<bits>,<throttle>,<pselBits>,<epochLen>"
 *   "ship" | "ship:<bits>,<sigBits>,<ctrBits>"
 *   "eaf" | "eaf:<filterCap>,<throttle>"
 *   "perm-lru" | "perm-fifo" | "perm-plru"  (permutation-engine forms)
 *
 * Trailing parameters may be omitted to take their defaults.
 */

#ifndef RECAP_POLICY_FACTORY_HH_
#define RECAP_POLICY_FACTORY_HH_

#include <string>
#include <vector>

#include "recap/policy/policy.hh"

namespace recap::policy
{

/**
 * Creates a policy from a spec string.
 *
 * @param spec Policy spec (see file comment).
 * @param ways Associativity.
 * @param seed Seed for stochastic policies ("random").
 * @throws UsageError for unknown specs or invalid parameters.
 */
PolicyPtr makePolicy(const std::string& spec, unsigned ways,
                     uint64_t seed = 1);

/** True iff makePolicy would accept @p spec. */
bool isKnownPolicySpec(const std::string& spec);

/** Policy family names makePolicy accepts, in presentation order. */
std::vector<std::string> knownPolicyNames();

/**
 * Deterministic baseline specs used by the evaluation benches, in
 * presentation order. All work at any associativity >= 2 except
 * "plru"/"perm-plru", which need a power of two; callers filter with
 * specSupportsWays().
 */
std::vector<std::string> baselineSpecs();

/**
 * The modern-LLC policy specs (DIP/DRRIP/SHiP/EAF) in their default
 * parameterizations, plus compile-tractable small parameterizations
 * of the dueling policies. All require associativity >= 2.
 */
std::vector<std::string> modernSpecs();

/**
 * Every deterministic spec the factory can build: baselineSpecs()
 * followed by modernSpecs(). The catalog-wide differential sweep
 * enumerates this list so new policies get compiled-path coverage
 * automatically.
 */
std::vector<std::string> catalogSpecs();

/** True iff @p spec can be instantiated at associativity @p ways. */
bool specSupportsWays(const std::string& spec, unsigned ways);

} // namespace recap::policy

#endif // RECAP_POLICY_FACTORY_HH_
