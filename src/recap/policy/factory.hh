/**
 * @file
 * String-spec factory for replacement policies.
 *
 * Policy specs are short strings used throughout the benches,
 * examples and the machine catalog:
 *
 *   "lru" | "fifo" | "plru" | "bitplru" | "nru" | "random"
 *   "lip" | "bip" | "bip:<throttle>"
 *   "srrip" | "srrip:<bits>" | "brrip" | "brrip:<bits>,<throttle>"
 *   "slru" | "slru:<protectedWays>"
 *   "qlru:<H>,<M>,<R>,<U>"   e.g. "qlru:H1,M1,R0,U2"
 *   "perm-lru" | "perm-fifo" | "perm-plru"  (permutation-engine forms)
 */

#ifndef RECAP_POLICY_FACTORY_HH_
#define RECAP_POLICY_FACTORY_HH_

#include <string>
#include <vector>

#include "recap/policy/policy.hh"

namespace recap::policy
{

/**
 * Creates a policy from a spec string.
 *
 * @param spec Policy spec (see file comment).
 * @param ways Associativity.
 * @param seed Seed for stochastic policies ("random").
 * @throws UsageError for unknown specs or invalid parameters.
 */
PolicyPtr makePolicy(const std::string& spec, unsigned ways,
                     uint64_t seed = 1);

/** True iff makePolicy would accept @p spec. */
bool isKnownPolicySpec(const std::string& spec);

/**
 * Deterministic baseline specs used by the evaluation benches, in
 * presentation order. All work at any associativity >= 2 except
 * "plru"/"perm-plru", which need a power of two; callers filter with
 * specSupportsWays().
 */
std::vector<std::string> baselineSpecs();

/** True iff @p spec can be instantiated at associativity @p ways. */
bool specSupportsWays(const std::string& spec, unsigned ways);

} // namespace recap::policy

#endif // RECAP_POLICY_FACTORY_HH_
