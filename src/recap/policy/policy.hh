/**
 * @file
 * Abstract interface for cache replacement policies.
 *
 * Following Abel & Reineke's modelling, a replacement policy is a
 * deterministic finite automaton attached to one cache set of
 * associativity k. Its inputs are "hit on way w" and "fill way w";
 * its single output is the victim way it would evict next.
 *
 * The interface deliberately separates victim() (a pure query) from
 * fill() (the state update after installing a line) so that callers
 * such as the cache model can fill invalid ways without consulting the
 * victim logic, exactly as hardware does during cold misses.
 */

#ifndef RECAP_POLICY_POLICY_HH_
#define RECAP_POLICY_POLICY_HH_

#include <cstdint>
#include <memory>
#include <string>

namespace recap::policy
{

/** Index of a way within one cache set. */
using Way = unsigned;

/**
 * Optional side information about the access currently being applied
 * to the automaton.
 *
 * Classic permutation-class policies decide purely on way indices,
 * but modern predictor policies consume more: SHiP needs the program
 * counter of the accessing instruction, EAF needs the identity of the
 * block being installed. Drivers (SetModel, cache::Cache) publish
 * this record via beginAccess() before the touch()/fill() of each
 * access; policies that do not override usesMeta() never see it.
 */
struct AccessMeta
{
    uint64_t block = 0; ///< identifier of the block being accessed
    bool hasBlock = false;
    uint64_t pc = 0;    ///< program counter of the access
    bool hasPc = false;
};

/**
 * A replacement policy automaton for a single cache set.
 *
 * Implementations must be deterministic given their constructor
 * arguments (including any RNG seed), must keep victim() free of side
 * effects, and must support cloning so that the inference engine and
 * the equivalence checker can fork hypothetical futures.
 */
class ReplacementPolicy
{
  public:
    /**
     * @param ways Associativity of the set; must be at least 1.
     *             Subclasses may impose further constraints (e.g.
     *             tree-PLRU requires a power of two).
     */
    explicit ReplacementPolicy(unsigned ways);

    virtual ~ReplacementPolicy() = default;

    ReplacementPolicy(const ReplacementPolicy&) = default;
    ReplacementPolicy& operator=(const ReplacementPolicy&) = default;

    /** Associativity this instance was built for. */
    unsigned ways() const { return ways_; }

    /** Returns to the initial (post-flush) state. */
    virtual void reset() = 0;

    /** Updates state after a hit on @p way. */
    virtual void touch(Way way) = 0;

    /**
     * Returns the way that would be evicted by the next miss.
     * Must not change observable state.
     */
    virtual Way victim() const = 0;

    /** Updates state after installing a new line into @p way. */
    virtual void fill(Way way) = 0;

    /** Canonical human-readable policy name, e.g. "PLRU" or "QLRU". */
    virtual std::string name() const = 0;

    /** Deep copy preserving the current state. */
    virtual std::unique_ptr<ReplacementPolicy> clone() const = 0;

    /**
     * Canonical encoding of the current control state, used for state
     * hashing by the equivalence checker and the predictability
     * analysis. Two states with equal keys must behave identically.
     */
    virtual std::string stateKey() const = 0;

    /**
     * True iff the policy consumes AccessMeta. Meta-consuming
     * automata are excluded from table compilation (their behaviour
     * is not a function of way-index inputs alone) and drivers must
     * call beginAccess() before each access's touch()/fill().
     */
    virtual bool usesMeta() const { return false; }

    /**
     * Publishes side information for the access whose touch()/fill()
     * follows. Only called by drivers when usesMeta() is true; the
     * default implementation ignores it.
     */
    virtual void beginAccess(const AccessMeta& meta) { (void)meta; }

  protected:
    /** Throws UsageError unless 0 <= way < ways(). */
    void checkWay(Way way) const;

    unsigned ways_;
};

/** Convenience alias for owning policy handles. */
using PolicyPtr = std::unique_ptr<ReplacementPolicy>;

} // namespace recap::policy

#endif // RECAP_POLICY_POLICY_HH_
