#include "recap/policy/plru.hh"

#include "recap/common/bitops.hh"
#include "recap/common/error.hh"

namespace recap::policy
{

TreePlruPolicy::TreePlruPolicy(unsigned ways)
    : ReplacementPolicy(ways), levels_(log2Floor(ways))
{
    require(ways >= 2 && isPowerOfTwo(ways),
            "TreePlruPolicy: associativity must be a power of two >= 2");
    TreePlruPolicy::reset();
}

void
TreePlruPolicy::reset()
{
    bits_.assign(ways_ - 1, false);
}

void
TreePlruPolicy::touch(Way way)
{
    checkWay(way);
    markAccessed(way);
}

Way
TreePlruPolicy::victim() const
{
    // Follow the direction bits from the root to a leaf.
    unsigned node = 0;
    unsigned way = 0;
    for (unsigned level = 0; level < levels_; ++level) {
        const bool go_right = bits_[node];
        way = (way << 1) | (go_right ? 1u : 0u);
        node = 2 * node + (go_right ? 2 : 1);
    }
    return way;
}

void
TreePlruPolicy::fill(Way way)
{
    checkWay(way);
    markAccessed(way);
}

PolicyPtr
TreePlruPolicy::clone() const
{
    return std::make_unique<TreePlruPolicy>(*this);
}

std::string
TreePlruPolicy::stateKey() const
{
    std::string key;
    key.reserve(bits_.size());
    for (bool b : bits_)
        key.push_back(b ? '1' : '0');
    return key;
}

void
TreePlruPolicy::markAccessed(Way way)
{
    // Walk from the root towards the accessed leaf; at each node,
    // point the bit at the sibling subtree (away from the access).
    unsigned node = 0;
    for (unsigned level = 0; level < levels_; ++level) {
        const unsigned shift = levels_ - 1 - level;
        const bool went_right = (way >> shift) & 1u;
        bits_[node] = !went_right;
        node = 2 * node + (went_right ? 2 : 1);
    }
}

BitPlruPolicy::BitPlruPolicy(unsigned ways)
    : ReplacementPolicy(ways)
{
    require(ways >= 2, "BitPlruPolicy: associativity must be >= 2");
    BitPlruPolicy::reset();
}

void
BitPlruPolicy::reset()
{
    bits_.assign(ways_, false);
}

void
BitPlruPolicy::touch(Way way)
{
    checkWay(way);
    mark(way);
}

Way
BitPlruPolicy::victim() const
{
    for (unsigned w = 0; w < ways_; ++w)
        if (!bits_[w])
            return w;
    // Unreachable: mark() never leaves all bits set.
    return 0;
}

void
BitPlruPolicy::fill(Way way)
{
    checkWay(way);
    mark(way);
}

PolicyPtr
BitPlruPolicy::clone() const
{
    return std::make_unique<BitPlruPolicy>(*this);
}

std::string
BitPlruPolicy::stateKey() const
{
    std::string key;
    key.reserve(bits_.size());
    for (bool b : bits_)
        key.push_back(b ? '1' : '0');
    return key;
}

void
BitPlruPolicy::mark(Way way)
{
    unsigned set_bits = 0;
    for (unsigned w = 0; w < ways_; ++w)
        if (bits_[w])
            ++set_bits;
    const bool would_saturate = !bits_[way] && set_bits == ways_ - 1;
    if (would_saturate)
        bits_.assign(ways_, false);
    bits_[way] = true;
}

} // namespace recap::policy
