/**
 * @file
 * True least-recently-used replacement and its insertion-point
 * variants LIP (LRU-insertion policy) and BIP (bimodal insertion
 * policy), all sharing one recency-stack implementation.
 */

#ifndef RECAP_POLICY_LRU_HH_
#define RECAP_POLICY_LRU_HH_

#include <vector>

#include "recap/policy/policy.hh"

namespace recap::policy
{

/**
 * Shared recency-stack machinery for LRU/LIP/BIP.
 *
 * The state is a total order over ways; position 0 is most recently
 * used and position ways-1 is the eviction candidate.
 */
class RecencyStackPolicy : public ReplacementPolicy
{
  public:
    explicit RecencyStackPolicy(unsigned ways);

    void reset() override;
    void touch(Way way) override;
    Way victim() const override;
    std::string stateKey() const override;

    /** Exposes the current recency order (index 0 = MRU) for tests. */
    std::vector<Way> recencyOrder() const { return stack_; }

  protected:
    /** Moves @p way to the MRU position. */
    void moveToMru(Way way);

    /** Moves @p way to the LRU position. */
    void moveToLru(Way way);

    /** Position of @p way in the stack (0 = MRU). */
    unsigned positionOf(Way way) const;

    /** stack_[i] = way at recency position i; 0 = MRU. */
    std::vector<Way> stack_;
};

/** Classic LRU: hits and fills both promote to MRU. */
class LruPolicy final : public RecencyStackPolicy
{
  public:
    explicit LruPolicy(unsigned ways);

    void fill(Way way) override;
    std::string name() const override { return "LRU"; }
    PolicyPtr clone() const override;
};

/**
 * LIP (Qureshi et al.): fills insert at the LRU position, so a line
 * must be reused once before it gains any retention priority. Hits
 * promote to MRU like LRU.
 */
class LipPolicy final : public RecencyStackPolicy
{
  public:
    explicit LipPolicy(unsigned ways);

    void fill(Way way) override;
    std::string name() const override { return "LIP"; }
    PolicyPtr clone() const override;
};

/**
 * BIP: like LIP, but every epsilon-th fill inserts at MRU instead.
 * recap uses a deterministic 1-in-throttle counter rather than a coin
 * flip so that experiments are reproducible.
 */
class BipPolicy final : public RecencyStackPolicy
{
  public:
    /**
     * @param ways     Associativity.
     * @param throttle Every throttle-th fill goes to MRU; must be >= 1.
     *                 throttle == 1 degenerates to LRU insertion.
     */
    explicit BipPolicy(unsigned ways, unsigned throttle = 32);

    void reset() override;
    void fill(Way way) override;
    std::string name() const override { return "BIP"; }
    PolicyPtr clone() const override;
    std::string stateKey() const override;

    unsigned throttle() const { return throttle_; }

  private:
    unsigned throttle_;
    unsigned fillCount_ = 0;
};

} // namespace recap::policy

#endif // RECAP_POLICY_LRU_HH_
