#include "recap/policy/set_model.hh"

#include <algorithm>
#include <map>

#include "recap/common/error.hh"

namespace recap::policy
{

SetModel::SetModel(PolicyPtr policy)
    : policy_(std::move(policy))
{
    require(policy_ != nullptr, "SetModel: policy must not be null");
    blocks_.assign(policy_->ways(), 0);
    valid_.assign(policy_->ways(), false);
}

SetModel::SetModel(const SetModel& other)
    : policy_(other.policy_->clone()),
      blocks_(other.blocks_),
      valid_(other.valid_)
{}

SetModel&
SetModel::operator=(const SetModel& other)
{
    if (this != &other) {
        policy_ = other.policy_->clone();
        blocks_ = other.blocks_;
        valid_ = other.valid_;
    }
    return *this;
}

unsigned
SetModel::ways() const
{
    return policy_->ways();
}

bool
SetModel::access(BlockId block)
{
    AccessMeta meta;
    meta.block = block;
    meta.hasBlock = true;
    return accessImpl(block, meta);
}

bool
SetModel::accessWithPc(BlockId block, uint64_t pc)
{
    AccessMeta meta;
    meta.block = block;
    meta.hasBlock = true;
    meta.pc = pc;
    meta.hasPc = true;
    return accessImpl(block, meta);
}

bool
SetModel::accessImpl(BlockId block, const AccessMeta& meta)
{
    if (policy_->usesMeta())
        policy_->beginAccess(meta);
    for (unsigned w = 0; w < ways(); ++w) {
        if (valid_[w] && blocks_[w] == block) {
            policy_->touch(w);
            return true;
        }
    }
    const Way way = nextFillWay();
    blocks_[way] = block;
    valid_[way] = true;
    policy_->fill(way);
    return false;
}

void
SetModel::flush()
{
    std::fill(valid_.begin(), valid_.end(), false);
    policy_->reset();
}

bool
SetModel::contains(BlockId block) const
{
    for (unsigned w = 0; w < ways(); ++w)
        if (valid_[w] && blocks_[w] == block)
            return true;
    return false;
}

BlockId
SetModel::blockAt(Way way) const
{
    require(way < ways(), "SetModel::blockAt: way out of range");
    require(valid_[way], "SetModel::blockAt: way is invalid");
    return blocks_[way];
}

bool
SetModel::isValid(Way way) const
{
    require(way < ways(), "SetModel::isValid: way out of range");
    return valid_[way];
}

unsigned
SetModel::validCount() const
{
    unsigned n = 0;
    for (bool v : valid_)
        if (v)
            ++n;
    return n;
}

Way
SetModel::nextFillWay() const
{
    for (unsigned w = 0; w < ways(); ++w)
        if (!valid_[w])
            return w;
    return policy_->victim();
}

std::vector<BlockId>
SetModel::evictionOrder() const
{
    require(validCount() == ways(),
            "SetModel::evictionOrder: set must be full");
    SetModel probe(*this);
    std::vector<BlockId> order;
    order.reserve(ways());
    // Fresh block ids that cannot collide with resident blocks.
    BlockId fresh = 0;
    for (unsigned w = 0; w < ways(); ++w)
        fresh = std::max(fresh, blocks_[w] + 1);
    for (unsigned i = 0; i < ways(); ++i) {
        const Way v = probe.policy().victim();
        order.push_back(probe.blockAt(v));
        probe.access(fresh++);
    }
    return order;
}

std::string
SetModel::stateKey() const
{
    // Rename blocks by first appearance across ways so that keys are
    // invariant under block renaming.
    std::map<BlockId, char> names;
    std::string key;
    key.reserve(ways() + 1 + policy_->stateKey().size());
    for (unsigned w = 0; w < ways(); ++w) {
        if (!valid_[w]) {
            key.push_back('.');
            continue;
        }
        auto [it, inserted] = names.emplace(
            blocks_[w], static_cast<char>('A' + names.size()));
        key.push_back(it->second);
        (void)inserted;
    }
    key.push_back('/');
    key += policy_->stateKey();
    return key;
}

} // namespace recap::policy
