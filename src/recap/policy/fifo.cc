#include "recap/policy/fifo.hh"

#include <algorithm>

#include "recap/common/error.hh"

namespace recap::policy
{

FifoPolicy::FifoPolicy(unsigned ways)
    : ReplacementPolicy(ways)
{
    FifoPolicy::reset();
}

void
FifoPolicy::reset()
{
    queue_.resize(ways_);
    // Initial queue: way 0 is evicted first.
    for (unsigned i = 0; i < ways_; ++i)
        queue_[i] = i;
}

void
FifoPolicy::touch(Way way)
{
    checkWay(way);
    // Hits do not affect FIFO order.
}

Way
FifoPolicy::victim() const
{
    return queue_.front();
}

void
FifoPolicy::fill(Way way)
{
    checkWay(way);
    auto it = std::find(queue_.begin(), queue_.end(), way);
    ensure(it != queue_.end(), "FifoPolicy: way missing in queue");
    queue_.erase(it);
    queue_.push_back(way);
}

PolicyPtr
FifoPolicy::clone() const
{
    return std::make_unique<FifoPolicy>(*this);
}

std::string
FifoPolicy::stateKey() const
{
    std::string key;
    key.reserve(queue_.size());
    for (Way w : queue_)
        key.push_back(static_cast<char>('a' + w));
    return key;
}

} // namespace recap::policy
