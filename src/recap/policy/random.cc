#include "recap/policy/random.hh"

namespace recap::policy
{

RandomPolicy::RandomPolicy(unsigned ways, uint64_t seed)
    : ReplacementPolicy(ways), seed_(seed), rng_(seed), pending_(0)
{
    RandomPolicy::reset();
}

void
RandomPolicy::reset()
{
    rng_ = Rng(seed_);
    draws_ = 0;
    pending_ = static_cast<Way>(rng_.nextBelow(ways_));
    ++draws_;
}

void
RandomPolicy::touch(Way way)
{
    checkWay(way);
    // Random replacement ignores hits.
}

Way
RandomPolicy::victim() const
{
    return pending_;
}

void
RandomPolicy::fill(Way way)
{
    checkWay(way);
    pending_ = static_cast<Way>(rng_.nextBelow(ways_));
    ++draws_;
}

PolicyPtr
RandomPolicy::clone() const
{
    return std::make_unique<RandomPolicy>(*this);
}

std::string
RandomPolicy::stateKey() const
{
    // The stream position fully determines future behaviour.
    return "rnd:" + std::to_string(draws_) + ":" +
           std::to_string(pending_);
}

} // namespace recap::policy
