/**
 * @file
 * Re-reference interval prediction policies: SRRIP and BRRIP
 * (Jaleel et al.), included both as evaluation baselines and as
 * candidate shapes for the age-based L3 policies of the Sandy
 * Bridge / Ivy Bridge generation.
 */

#ifndef RECAP_POLICY_RRIP_HH_
#define RECAP_POLICY_RRIP_HH_

#include <vector>

#include "recap/policy/policy.hh"

namespace recap::policy
{

/**
 * SRRIP-HP: each line carries an M-bit re-reference prediction value
 * (RRPV). Hits set RRPV to 0; fills insert with RRPV = max-1
 * ("long"); the victim is the lowest-index way with RRPV == max,
 * aging every line upward until one exists.
 *
 * victim() is pure: the aging needed to expose a victim is computed
 * functionally and committed by fill().
 */
class SrripPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param ways Associativity.
     * @param bits RRPV width in bits; must be in [1, 8].
     */
    explicit SrripPolicy(unsigned ways, unsigned bits = 2);

    void reset() override;
    void touch(Way way) override;
    Way victim() const override;
    void fill(Way way) override;
    std::string name() const override;
    PolicyPtr clone() const override;
    std::string stateKey() const override;

    unsigned maxRrpv() const { return maxRrpv_; }

    /** Raw RRPVs, for white-box tests. */
    std::vector<unsigned> rrpvs() const { return rrpv_; }

  protected:
    /** RRPV a fill assigns to the incoming line. */
    virtual unsigned insertionRrpv();

    /** Ages all lines so at least one reaches maxRrpv_. */
    void ageUntilVictimExists();

    /** Lowest-index way with RRPV == maxRrpv_, or ways() if none. */
    Way findVictim(const std::vector<unsigned>& rrpv) const;

    unsigned bits_;
    unsigned maxRrpv_;
    std::vector<unsigned> rrpv_;
};

/**
 * BRRIP: like SRRIP but inserts with distant RRPV (max) most of the
 * time and long RRPV (max-1) only every throttle-th fill, making it
 * thrash-resistant. Deterministic counter, as with BipPolicy.
 */
class BrripPolicy final : public SrripPolicy
{
  public:
    explicit BrripPolicy(unsigned ways, unsigned bits = 2,
                         unsigned throttle = 32);

    void reset() override;
    std::string name() const override;
    PolicyPtr clone() const override;
    std::string stateKey() const override;

  protected:
    unsigned insertionRrpv() override;

  private:
    unsigned throttle_;
    unsigned fillCount_ = 0;
};

} // namespace recap::policy

#endif // RECAP_POLICY_RRIP_HH_
