#include "recap/policy/drrip.hh"

#include "recap/common/error.hh"

namespace recap::policy
{

DrripPolicy::DrripPolicy(unsigned ways, unsigned bits,
                         unsigned throttle, unsigned pselBits,
                         unsigned epochLen)
    : SrripPolicy(ways, bits), throttle_(throttle),
      duel_(pselBits, epochLen)
{
    require(ways >= 2, "DrripPolicy: needs at least 2 ways");
    require(throttle >= 1, "DrripPolicy: throttle must be >= 1");
}

void
DrripPolicy::reset()
{
    SrripPolicy::reset();
    fillCount_ = 0;
    duel_.reset();
}

void
DrripPolicy::touch(Way way)
{
    SrripPolicy::touch(way);
    duel_.advance();
}

void
DrripPolicy::fill(Way way)
{
    checkWay(way);
    const DuelMode mode = duel_.mode();
    duel_.onMiss(mode);

    const bool brrip = mode == DuelMode::kLeaderB ||
                       (mode == DuelMode::kFollower &&
                        duel_.followerPicksB());
    // SRRIP constituent inserts long; BRRIP inserts distant except
    // for the 1-in-throttle long insert. The throttle counter runs on
    // every fill so constituent B matches a free-standing
    // BrripPolicy.
    unsigned rrpv = maxRrpv_ == 0 ? 0 : maxRrpv_ - 1;
    if (brrip && fillCount_ != 0)
        rrpv = maxRrpv_;
    fillCount_ = (fillCount_ + 1) % throttle_;

    ageUntilVictimExists();
    rrpv_[way] = rrpv;
    duel_.advance();
}

std::string
DrripPolicy::name() const
{
    return "DRRIP" + std::to_string(bits_);
}

PolicyPtr
DrripPolicy::clone() const
{
    return std::make_unique<DrripPolicy>(*this);
}

std::string
DrripPolicy::stateKey() const
{
    return SrripPolicy::stateKey() + ":" +
           std::to_string(fillCount_) + ":" + duel_.key();
}

} // namespace recap::policy
