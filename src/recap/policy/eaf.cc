#include "recap/policy/eaf.hh"

#include <algorithm>

#include "recap/common/error.hh"

namespace recap::policy
{

EafPolicy::EafPolicy(unsigned ways, unsigned filterCap,
                     unsigned throttle)
    : RecencyStackPolicy(ways),
      filterCap_(filterCap == 0 ? ways : filterCap),
      throttle_(throttle)
{
    require(ways >= 2, "EafPolicy: needs at least 2 ways");
    require(throttle >= 1, "EafPolicy: throttle must be >= 1");
    EafPolicy::reset();
}

void
EafPolicy::reset()
{
    RecencyStackPolicy::reset();
    fillCount_ = 0;
    filter_.clear();
    blockOf_.assign(ways_, 0);
    haveBlock_.assign(ways_, false);
    pendingBlock_ = 0;
    pendingHasBlock_ = false;
}

void
EafPolicy::beginAccess(const AccessMeta& meta)
{
    pendingBlock_ = meta.hasBlock ? meta.block : 0;
    pendingHasBlock_ = meta.hasBlock;
}

void
EafPolicy::touch(Way way)
{
    RecencyStackPolicy::touch(way);
    // A hit consumes the published access metadata.
    pendingBlock_ = 0;
    pendingHasBlock_ = false;
}

void
EafPolicy::fill(Way way)
{
    checkWay(way);

    // Was the incoming block evicted recently? Membership grants MRU
    // insertion and retires the filter entry.
    bool reusePredicted = false;
    if (pendingHasBlock_) {
        const auto it = std::find(filter_.begin(), filter_.end(),
                                  pendingBlock_);
        if (it != filter_.end()) {
            filter_.erase(it);
            reusePredicted = true;
        }
    }

    // The displaced block enters the filter (oldest entry falls out).
    if (haveBlock_[way]) {
        filter_.push_back(blockOf_[way]);
        if (filter_.size() > filterCap_)
            filter_.pop_front();
    }

    if (reusePredicted || fillCount_ == 0)
        moveToMru(way);
    else
        moveToLru(way);
    fillCount_ = (fillCount_ + 1) % throttle_;

    blockOf_[way] = pendingBlock_;
    haveBlock_[way] = pendingHasBlock_;
    pendingBlock_ = 0;
    pendingHasBlock_ = false;
}

PolicyPtr
EafPolicy::clone() const
{
    return std::make_unique<EafPolicy>(*this);
}

std::string
EafPolicy::stateKey() const
{
    std::string key = RecencyStackPolicy::stateKey();
    key += ":" + std::to_string(fillCount_) + ":";
    for (unsigned w = 0; w < ways_; ++w) {
        key += haveBlock_[w] ? std::to_string(blockOf_[w])
                             : std::string("-");
        key += ",";
    }
    key += "f";
    for (uint64_t b : filter_)
        key += std::to_string(b) + ",";
    key += pendingHasBlock_ ? std::to_string(pendingBlock_)
                            : std::string("-");
    return key;
}

bool
EafPolicy::filterContains(uint64_t block) const
{
    return std::find(filter_.begin(), filter_.end(), block) !=
           filter_.end();
}

} // namespace recap::policy
