#include "recap/policy/slru.hh"

#include <algorithm>

#include "recap/common/error.hh"

namespace recap::policy
{

SlruPolicy::SlruPolicy(unsigned ways, unsigned protectedWays)
    : ReplacementPolicy(ways),
      protectedWays_(protectedWays ? protectedWays : ways / 2)
{
    require(ways >= 2, "SlruPolicy: associativity must be >= 2");
    require(protectedWays_ >= 1 && protectedWays_ < ways,
            "SlruPolicy: protected segment must be in [1, ways-1]");
    SlruPolicy::reset();
}

void
SlruPolicy::reset()
{
    protected_.clear();
    probation_.clear();
    // All ways start probationary, way 0 most recently "used" so the
    // highest way index is the first victim.
    for (unsigned w = 0; w < ways_; ++w)
        probation_.push_back(w);
}

void
SlruPolicy::touch(Way way)
{
    checkWay(way);
    const bool was_protected =
        std::find(protected_.begin(), protected_.end(), way) !=
        protected_.end();
    remove(way);
    if (was_protected) {
        // Refresh within the protected segment.
        protected_.insert(protected_.begin(), way);
    } else {
        promote(way);
    }
}

Way
SlruPolicy::victim() const
{
    if (!probation_.empty())
        return probation_.back();
    return protected_.back();
}

void
SlruPolicy::fill(Way way)
{
    checkWay(way);
    remove(way);
    probation_.insert(probation_.begin(), way);
}

PolicyPtr
SlruPolicy::clone() const
{
    return std::make_unique<SlruPolicy>(*this);
}

std::string
SlruPolicy::stateKey() const
{
    std::string key;
    key.reserve(ways_ + 1);
    for (Way w : protected_)
        key.push_back(static_cast<char>('a' + w));
    key.push_back('|');
    for (Way w : probation_)
        key.push_back(static_cast<char>('a' + w));
    return key;
}

void
SlruPolicy::remove(Way way)
{
    auto it = std::find(protected_.begin(), protected_.end(), way);
    if (it != protected_.end()) {
        protected_.erase(it);
        return;
    }
    it = std::find(probation_.begin(), probation_.end(), way);
    ensure(it != probation_.end(), "SlruPolicy: way in no segment");
    probation_.erase(it);
}

void
SlruPolicy::promote(Way way)
{
    protected_.insert(protected_.begin(), way);
    if (protected_.size() > protectedWays_) {
        const Way demoted = protected_.back();
        protected_.pop_back();
        probation_.insert(probation_.begin(), demoted);
    }
}

} // namespace recap::policy
