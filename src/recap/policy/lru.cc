#include "recap/policy/lru.hh"

#include <algorithm>

#include "recap/common/error.hh"

namespace recap::policy
{

RecencyStackPolicy::RecencyStackPolicy(unsigned ways)
    : ReplacementPolicy(ways)
{
    RecencyStackPolicy::reset();
}

void
RecencyStackPolicy::reset()
{
    stack_.resize(ways_);
    // Initial order: way 0 is MRU, way ways-1 is the first victim.
    for (unsigned i = 0; i < ways_; ++i)
        stack_[i] = i;
}

void
RecencyStackPolicy::touch(Way way)
{
    checkWay(way);
    moveToMru(way);
}

Way
RecencyStackPolicy::victim() const
{
    return stack_.back();
}

std::string
RecencyStackPolicy::stateKey() const
{
    std::string key;
    key.reserve(stack_.size());
    for (Way w : stack_)
        key.push_back(static_cast<char>('a' + w));
    return key;
}

void
RecencyStackPolicy::moveToMru(Way way)
{
    auto it = std::find(stack_.begin(), stack_.end(), way);
    ensure(it != stack_.end(), "RecencyStackPolicy: way missing in stack");
    stack_.erase(it);
    stack_.insert(stack_.begin(), way);
}

void
RecencyStackPolicy::moveToLru(Way way)
{
    auto it = std::find(stack_.begin(), stack_.end(), way);
    ensure(it != stack_.end(), "RecencyStackPolicy: way missing in stack");
    stack_.erase(it);
    stack_.push_back(way);
}

unsigned
RecencyStackPolicy::positionOf(Way way) const
{
    auto it = std::find(stack_.begin(), stack_.end(), way);
    ensure(it != stack_.end(), "RecencyStackPolicy: way missing in stack");
    return static_cast<unsigned>(it - stack_.begin());
}

LruPolicy::LruPolicy(unsigned ways)
    : RecencyStackPolicy(ways)
{}

void
LruPolicy::fill(Way way)
{
    checkWay(way);
    moveToMru(way);
}

PolicyPtr
LruPolicy::clone() const
{
    return std::make_unique<LruPolicy>(*this);
}

LipPolicy::LipPolicy(unsigned ways)
    : RecencyStackPolicy(ways)
{}

void
LipPolicy::fill(Way way)
{
    checkWay(way);
    moveToLru(way);
}

PolicyPtr
LipPolicy::clone() const
{
    return std::make_unique<LipPolicy>(*this);
}

BipPolicy::BipPolicy(unsigned ways, unsigned throttle)
    : RecencyStackPolicy(ways), throttle_(throttle)
{
    require(throttle >= 1, "BipPolicy: throttle must be >= 1");
}

void
BipPolicy::reset()
{
    RecencyStackPolicy::reset();
    fillCount_ = 0;
}

void
BipPolicy::fill(Way way)
{
    checkWay(way);
    // The 1-in-throttle fill gets full retention priority; all others
    // are inserted as immediate eviction candidates.
    if (fillCount_ == 0)
        moveToMru(way);
    else
        moveToLru(way);
    fillCount_ = (fillCount_ + 1) % throttle_;
}

PolicyPtr
BipPolicy::clone() const
{
    return std::make_unique<BipPolicy>(*this);
}

std::string
BipPolicy::stateKey() const
{
    return RecencyStackPolicy::stateKey() + ":" +
           std::to_string(fillCount_);
}

} // namespace recap::policy
