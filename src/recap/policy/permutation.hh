/**
 * @file
 * Permutation policies: the formal policy class at the heart of Abel
 * & Reineke's inference method.
 *
 * A permutation policy's state is a total order over the resident
 * lines. Positions are indexed by eviction priority: position 0 is
 * the next victim, position k-1 survives longest. A hit on the line
 * at position p rearranges the order by a fixed permutation Pi_p that
 * depends only on p; a miss evicts position 0, conceptually places
 * the incoming line at position 0, and then applies a fixed miss
 * permutation. LRU, FIFO and tree-PLRU are all permutation policies;
 * NRU, QLRU and the RRIP family are not.
 */

#ifndef RECAP_POLICY_PERMUTATION_HH_
#define RECAP_POLICY_PERMUTATION_HH_

#include <optional>
#include <vector>

#include "recap/common/rng.hh"
#include "recap/policy/policy.hh"

namespace recap::policy
{

/** Pi[j] = new position of the element that was at position j. */
using Permutation = std::vector<unsigned>;

/** Returns true iff @p pi is a permutation of {0,..,pi.size()-1}. */
bool isPermutation(const Permutation& pi);

/** The identity permutation on k elements. */
Permutation identityPermutation(unsigned k);

/**
 * A replacement policy defined by k hit permutations plus one miss
 * permutation, executable like any other ReplacementPolicy.
 */
class PermutationPolicy final : public ReplacementPolicy
{
  public:
    /**
     * How fills into a way other than the current victim (cold fills
     * into invalid ways, chosen by the cache's priority encoder) are
     * modelled. True misses always evict position 0 and apply the
     * miss permutation.
     */
    enum class FillRule
    {
        /** Treat the filled way as if it sat at position 0. LRU-like
         *  policies whose fill update is position-independent. */
        kInsertAtVictim,
        /** Apply the hit permutation of the way's current position.
         *  Policies whose fill update equals their hit update
         *  (e.g. tree-PLRU). */
        kTouch,
    };

    /**
     * @param ways         Associativity k.
     * @param hitPerms     k permutations; hitPerms[p] is applied on a
     *                     hit at position p.
     * @param missPerm     Permutation applied after a miss inserts
     *                     the new line at position 0.
     * @param displayName  Optional canonical name (e.g. "LRU").
     * @param fillRule     Cold-fill modelling (see FillRule).
     * @param initialOrder Eviction order over ways in the reset
     *                     state (position -> way); empty selects the
     *                     identity. Matters only under
     *                     FillRule::kTouch, where cold-fill updates
     *                     depend on the pre-fill order (tree-PLRU's
     *                     reset order, for instance, is the
     *                     bit-reversal order, not the identity).
     */
    PermutationPolicy(unsigned ways,
                      std::vector<Permutation> hitPerms,
                      Permutation missPerm,
                      std::string displayName = "",
                      FillRule fillRule = FillRule::kInsertAtVictim,
                      std::vector<Way> initialOrder = {});

    void reset() override;
    void touch(Way way) override;
    Way victim() const override;
    void fill(Way way) override;
    std::string name() const override;
    PolicyPtr clone() const override;
    std::string stateKey() const override;

    const std::vector<Permutation>& hitPermutations() const
    {
        return hitPerms_;
    }

    const Permutation& missPermutation() const { return missPerm_; }

    FillRule fillRule() const { return fillRule_; }

    /** The reset-state eviction order over ways (position -> way). */
    const std::vector<Way>& initialOrder() const
    {
        return initialOrder_;
    }

    /** Current order: orderAt(pos) = way at eviction position pos. */
    Way orderAt(unsigned pos) const;

    /** True iff both policies have identical permutation vectors. */
    bool sameVectors(const PermutationPolicy& other) const;

    /** Analytic LRU as a permutation policy. */
    static PermutationPolicy lru(unsigned ways);

    /** Analytic FIFO as a permutation policy. */
    static PermutationPolicy fifo(unsigned ways);

    /** Tree-PLRU derived as a permutation policy (power-of-two k). */
    static PermutationPolicy plru(unsigned ways);

    /**
     * Attempts to express @p proto as a permutation policy.
     *
     * Derives candidate permutation vectors from the prototype's
     * behaviour in a canonical state by eviction-order probing, then
     * validates them against the prototype on @p verifyRounds random
     * access sequences (both cold-fill rules are tried). Returns
     * nullopt if the prototype is not a permutation policy, or not
     * derivable by eviction-order probing: probing assumes that k
     * consecutive fresh misses evict the k previously resident
     * blocks, which LRU, FIFO and tree-PLRU satisfy but e.g. LIP
     * (whose misses keep killing the newest insert) does not.
     */
    static std::optional<PermutationPolicy>
    derive(const ReplacementPolicy& proto, unsigned verifyRounds = 64,
           uint64_t seed = 12345);

  private:
    /** Applies @p pi to the current order. */
    void applyPermutation(const Permutation& pi);

    /** Position of @p way in the current order. */
    unsigned positionOf(Way way) const;

    std::vector<Permutation> hitPerms_;
    Permutation missPerm_;
    std::string displayName_;
    FillRule fillRule_;
    std::vector<Way> initialOrder_;
    /** order_[pos] = way at eviction position pos (0 = next victim). */
    std::vector<Way> order_;
};

} // namespace recap::policy

#endif // RECAP_POLICY_PERMUTATION_HH_
