#include "recap/policy/nru.hh"

#include "recap/common/error.hh"

namespace recap::policy
{

NruPolicy::NruPolicy(unsigned ways)
    : ReplacementPolicy(ways)
{
    require(ways >= 2, "NruPolicy: associativity must be >= 2");
    NruPolicy::reset();
}

void
NruPolicy::reset()
{
    bits_.assign(ways_, false);
}

void
NruPolicy::touch(Way way)
{
    checkWay(way);
    bits_[way] = true;
}

Way
NruPolicy::victim() const
{
    if (allSet()) {
        // Lazy clear: with every bit set the next victim is way 0.
        return 0;
    }
    for (unsigned w = 0; w < ways_; ++w)
        if (!bits_[w])
            return w;
    return 0; // unreachable
}

void
NruPolicy::fill(Way way)
{
    checkWay(way);
    // Commit the lazy clear that victim() modelled, then mark the
    // freshly installed line as referenced.
    if (allSet())
        bits_.assign(ways_, false);
    bits_[way] = true;
}

PolicyPtr
NruPolicy::clone() const
{
    return std::make_unique<NruPolicy>(*this);
}

std::string
NruPolicy::stateKey() const
{
    std::string key;
    key.reserve(bits_.size());
    for (bool b : bits_)
        key.push_back(b ? '1' : '0');
    return key;
}

bool
NruPolicy::allSet() const
{
    for (bool b : bits_)
        if (!b)
            return false;
    return true;
}

} // namespace recap::policy
