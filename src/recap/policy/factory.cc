#include "recap/policy/factory.hh"

#include <charconv>

#include "recap/common/bitops.hh"
#include "recap/common/error.hh"
#include "recap/policy/dip.hh"
#include "recap/policy/drrip.hh"
#include "recap/policy/eaf.hh"
#include "recap/policy/fifo.hh"
#include "recap/policy/lru.hh"
#include "recap/policy/nru.hh"
#include "recap/policy/permutation.hh"
#include "recap/policy/plru.hh"
#include "recap/policy/qlru.hh"
#include "recap/policy/random.hh"
#include "recap/policy/rrip.hh"
#include "recap/policy/ship.hh"
#include "recap/policy/slru.hh"

namespace recap::policy
{

namespace
{

/** Splits "name:args" into (name, args); a bare trailing colon is a
 *  malformed spec. */
std::pair<std::string, std::string>
splitSpec(const std::string& spec)
{
    const auto colon = spec.find(':');
    if (colon == std::string::npos)
        return {spec, ""};
    require(colon + 1 < spec.size(),
            "makePolicy: empty parameter list in '" + spec + "'");
    return {spec.substr(0, colon), spec.substr(colon + 1)};
}

unsigned
parseUnsigned(const std::string& text, const std::string& what)
{
    unsigned value = 0;
    const auto [ptr, ec] = std::from_chars(text.data(),
                                           text.data() + text.size(),
                                           value);
    require(ec == std::errc() && ptr == text.data() + text.size(),
            "makePolicy: bad " + what + " '" + text + "'");
    return value;
}

/** Splits "a,b" into two strings; second may be missing. */
std::pair<std::string, std::string>
splitComma(const std::string& text)
{
    const auto comma = text.find(',');
    if (comma == std::string::npos)
        return {text, ""};
    return {text.substr(0, comma), text.substr(comma + 1)};
}

/**
 * Parses a comma-separated parameter list of at most
 * defaults.size() unsigned values; omitted trailing parameters take
 * their defaults.
 */
std::vector<unsigned>
parseParams(const std::string& args, std::vector<unsigned> defaults,
            const std::string& what)
{
    if (args.empty())
        return defaults;
    std::string rest = args;
    for (size_t i = 0; i < defaults.size(); ++i) {
        const auto [head, tail] = splitComma(rest);
        defaults[i] = parseUnsigned(head, what + " parameter " +
                                              std::to_string(i + 1));
        if (tail.empty()) {
            require(rest.find(',') == std::string::npos,
                    "makePolicy: empty " + what + " parameter");
            return defaults;
        }
        rest = tail;
    }
    throw UsageError("makePolicy: too many " + what + " parameters '" +
                     args + "'");
}

} // namespace

PolicyPtr
makePolicy(const std::string& spec, unsigned ways, uint64_t seed)
{
    const auto [name, args] = splitSpec(spec);

    if (name == "lru") {
        return std::make_unique<LruPolicy>(ways);
    } else if (name == "fifo") {
        return std::make_unique<FifoPolicy>(ways);
    } else if (name == "plru") {
        return std::make_unique<TreePlruPolicy>(ways);
    } else if (name == "bitplru") {
        return std::make_unique<BitPlruPolicy>(ways);
    } else if (name == "nru") {
        return std::make_unique<NruPolicy>(ways);
    } else if (name == "random") {
        return std::make_unique<RandomPolicy>(ways, seed);
    } else if (name == "lip") {
        return std::make_unique<LipPolicy>(ways);
    } else if (name == "bip") {
        const unsigned throttle =
            args.empty() ? 32 : parseUnsigned(args, "BIP throttle");
        return std::make_unique<BipPolicy>(ways, throttle);
    } else if (name == "srrip") {
        const unsigned bits =
            args.empty() ? 2 : parseUnsigned(args, "SRRIP bits");
        return std::make_unique<SrripPolicy>(ways, bits);
    } else if (name == "brrip") {
        if (args.empty())
            return std::make_unique<BrripPolicy>(ways);
        const auto [bits_text, throttle_text] = splitComma(args);
        const unsigned bits = parseUnsigned(bits_text, "BRRIP bits");
        const unsigned throttle = throttle_text.empty()
            ? 32 : parseUnsigned(throttle_text, "BRRIP throttle");
        return std::make_unique<BrripPolicy>(ways, bits, throttle);
    } else if (name == "slru") {
        const unsigned protected_ways =
            args.empty() ? 0 : parseUnsigned(args, "SLRU protected");
        return std::make_unique<SlruPolicy>(ways, protected_ways);
    } else if (name == "qlru") {
        require(!args.empty(), "makePolicy: qlru needs parameters");
        return std::make_unique<QlruPolicy>(ways, QlruParams::parse(args));
    } else if (name == "dip") {
        const auto p = parseParams(args, {16, 4, 4}, "DIP");
        return std::make_unique<DipPolicy>(ways, p[0], p[1], p[2]);
    } else if (name == "drrip") {
        const auto p = parseParams(args, {2, 16, 4, 4}, "DRRIP");
        return std::make_unique<DrripPolicy>(ways, p[0], p[1], p[2],
                                             p[3]);
    } else if (name == "ship") {
        const auto p = parseParams(args, {2, 4, 2}, "SHiP");
        return std::make_unique<ShipPolicy>(ways, p[0], p[1], p[2]);
    } else if (name == "eaf") {
        const auto p = parseParams(args, {0, 16}, "EAF");
        return std::make_unique<EafPolicy>(ways, p[0], p[1]);
    } else if (name == "perm-lru") {
        return std::make_unique<PermutationPolicy>(
            PermutationPolicy::lru(ways));
    } else if (name == "perm-fifo") {
        return std::make_unique<PermutationPolicy>(
            PermutationPolicy::fifo(ways));
    } else if (name == "perm-plru") {
        return std::make_unique<PermutationPolicy>(
            PermutationPolicy::plru(ways));
    }

    std::string known;
    for (const auto& k : knownPolicyNames())
        known += known.empty() ? k : ", " + k;
    throw UsageError("makePolicy: unknown policy spec '" + spec +
                     "' (known policies: " + known + ")");
}

bool
isKnownPolicySpec(const std::string& spec)
{
    try {
        // Associativity 4 satisfies every policy's constraints.
        (void)makePolicy(spec, 4);
        return true;
    } catch (const UsageError&) {
        return false;
    }
}

std::vector<std::string>
knownPolicyNames()
{
    return {
        "lru", "fifo", "plru", "bitplru", "nru", "random",
        "lip", "bip", "srrip", "brrip", "slru", "qlru",
        "dip", "drrip", "ship", "eaf",
        "perm-lru", "perm-fifo", "perm-plru",
    };
}

std::vector<std::string>
baselineSpecs()
{
    return {
        "lru", "fifo", "plru", "bitplru", "nru", "random",
        "lip", "bip", "srrip", "brrip", "slru",
        "qlru:H1,M1,R0,U2", "qlru:H1,M3,R0,U2",
    };
}

std::vector<std::string>
modernSpecs()
{
    return {
        // Default parameterizations.
        "dip", "drrip", "ship", "eaf",
        // Compile-tractable small parameterizations, so the dueling
        // automata also get compiled-path differential coverage
        // (the defaults exceed the CompileBudget beyond 2 ways).
        "dip:4,3,4", "drrip:1,4,3,4",
    };
}

std::vector<std::string>
catalogSpecs()
{
    auto specs = baselineSpecs();
    const auto modern = modernSpecs();
    specs.insert(specs.end(), modern.begin(), modern.end());
    return specs;
}

bool
specSupportsWays(const std::string& spec, unsigned ways)
{
    const auto [name, args] = splitSpec(spec);
    (void)args;
    if (name == "plru" || name == "perm-plru")
        return ways >= 2 && isPowerOfTwo(ways);
    if (name == "lru" || name == "fifo" || name == "lip" ||
        name == "bip" || name == "random" ||
        name == "perm-lru" || name == "perm-fifo") {
        return ways >= 1;
    }
    // Remaining families need at least two ways.
    return ways >= 2;
}

} // namespace recap::policy
