/**
 * @file
 * DIP — dynamic insertion policy (Qureshi et al., ISCA 2007):
 * set dueling between LRU insertion and bimodal (BIP) insertion over
 * one shared recency stack, realised with the temporal-dueling PSEL
 * of duel.hh so the whole mechanism fits in a single per-set
 * automaton.
 */

#ifndef RECAP_POLICY_DIP_HH_
#define RECAP_POLICY_DIP_HH_

#include "recap/policy/duel.hh"
#include "recap/policy/lru.hh"

namespace recap::policy
{

/**
 * DIP over a single recency stack. Hits promote to MRU regardless of
 * the duel; only the insertion point of a fill is contested:
 * constituent A inserts at MRU (LRU policy), constituent B inserts
 * LIP-style at LRU except for every throttle-th fill (BIP).
 *
 * Defaults are sized for tractability of the compiled enumeration at
 * low associativity rather than to the paper's 10-bit PSEL: the
 * automaton's state space is
 * ways! * throttle * 2^pselBits * 4*epochLen.
 *
 * epochLen must stay small relative to the PSEL range: one leader
 * epoch can train PSEL by at most epochLen, and if that exceeds the
 * counter range a single epoch saturates it and the duel degenerates
 * to "whichever leader epoch ran last". With the defaults (epoch 4,
 * 4-bit PSEL) tipping the counter takes several consistent epochs.
 */
class DipPolicy final : public RecencyStackPolicy
{
  public:
    /**
     * @param ways     Associativity; must be >= 2.
     * @param throttle BIP constituent's 1-in-throttle MRU insertion.
     * @param pselBits PSEL width in bits.
     * @param epochLen Inputs per leader epoch (see duel.hh).
     */
    explicit DipPolicy(unsigned ways, unsigned throttle = 16,
                       unsigned pselBits = 4, unsigned epochLen = 4);

    void reset() override;
    void touch(Way way) override;
    void fill(Way way) override;
    std::string name() const override { return "DIP"; }
    PolicyPtr clone() const override;
    std::string stateKey() const override;

    /** White-box accessors for the convergence property tests. */
    unsigned psel() const { return duel_.psel(); }
    unsigned pselMidpoint() const { return duel_.pselMidpoint(); }
    bool followerPicksBip() const { return duel_.followerPicksB(); }

  private:
    unsigned throttle_;
    unsigned fillCount_ = 0;
    TemporalDuel duel_;
};

} // namespace recap::policy

#endif // RECAP_POLICY_DIP_HH_
