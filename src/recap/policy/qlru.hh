/**
 * @file
 * The QLRU ("quad-age LRU") policy family.
 *
 * Modern Intel last-level caches implement 2-bit age-based policies
 * that come in many closely related variants; Abel & Reineke's work
 * distinguishes them by four orthogonal parameters. recap models the
 * family with explicit enumerated options so that the inference
 * engine can search the grid:
 *
 *  - Hit rule      (H): what happens to a line's age on a hit.
 *  - Miss rule     (M): the age assigned to a freshly inserted line.
 *  - Replace rule  (R): which maximal-age line is chosen as victim.
 *  - Update rule   (U): when/how the other lines age.
 *
 * Ages are in {0,..,3}; age 3 means "evict me next".
 */

#ifndef RECAP_POLICY_QLRU_HH_
#define RECAP_POLICY_QLRU_HH_

#include <string>
#include <vector>

#include "recap/policy/policy.hh"

namespace recap::policy
{

/** Parameter grid describing one member of the QLRU family. */
struct QlruParams
{
    /** Effect of a hit on the accessed line's age. */
    enum class Hit
    {
        kH0, ///< hit sets age to 0
        kH1, ///< hit decrements age (floor at 0)
    };

    /** Age assigned to a line installed by a miss. */
    enum class Miss
    {
        kM0, ///< insert at age 0 (maximum retention)
        kM1, ///< insert at age 1
        kM2, ///< insert at age 2
        kM3, ///< insert at age 3 (immediately evictable again)
    };

    /** Victim choice among the lines of maximal age. */
    enum class Replace
    {
        kR0, ///< leftmost line with age 3 (after aging, if any)
        kR1, ///< rightmost line with age 3 (after aging, if any)
    };

    /** Aging discipline for the non-accessed lines. */
    enum class Update
    {
        kU0, ///< lazy: ages change only via hits/fills; victim is the
             ///< leftmost/rightmost line of *maximal* current age
        kU1, ///< on-miss: every fill also increments all other lines'
             ///< ages (saturating at 3)
        kU2, ///< normalize: when no line has age 3 at victim time, add
             ///< (3 - max age) to every line, then pick an age-3 line
    };

    Hit hit = Hit::kH0;
    Miss miss = Miss::kM1;
    Replace replace = Replace::kR0;
    Update update = Update::kU2;

    /** Short canonical form, e.g. "H0,M1,R0,U2". */
    std::string shortName() const;

    /** Parses "H0,M1,R0,U2"-style strings; throws UsageError. */
    static QlruParams parse(const std::string& text);

    /** All 48 members of the grid, in a fixed enumeration order. */
    static std::vector<QlruParams> allVariants();

    bool operator==(const QlruParams& other) const = default;
};

/**
 * A QLRU-family policy instance.
 *
 * victim() is pure: for Update::kU2 the normalization it implies is
 * computed functionally and committed by fill().
 */
class QlruPolicy final : public ReplacementPolicy
{
  public:
    QlruPolicy(unsigned ways, QlruParams params);

    void reset() override;
    void touch(Way way) override;
    Way victim() const override;
    void fill(Way way) override;
    std::string name() const override;
    PolicyPtr clone() const override;
    std::string stateKey() const override;

    const QlruParams& params() const { return params_; }

    /** Raw ages, for white-box tests. */
    std::vector<unsigned> ages() const { return age_; }

  private:
    static constexpr unsigned kMaxAge = 3;

    /** Victim under the replace rule for the given age vector. */
    Way selectVictim(const std::vector<unsigned>& age) const;

    /** Applies Update::kU2 normalization to @p age if needed. */
    void normalize(std::vector<unsigned>& age) const;

    QlruParams params_;
    std::vector<unsigned> age_;
};

} // namespace recap::policy

#endif // RECAP_POLICY_QLRU_HH_
