#include "recap/policy/qlru.hh"

#include <algorithm>

#include "recap/common/error.hh"

namespace recap::policy
{

std::string
QlruParams::shortName() const
{
    std::string s;
    s += 'H';
    s += static_cast<char>('0' + static_cast<int>(hit));
    s += ",M";
    s += static_cast<char>('0' + static_cast<int>(miss));
    s += ",R";
    s += static_cast<char>('0' + static_cast<int>(replace));
    s += ",U";
    s += static_cast<char>('0' + static_cast<int>(update));
    return s;
}

QlruParams
QlruParams::parse(const std::string& text)
{
    auto bad = [&] {
        throw UsageError("QlruParams::parse: expected 'Hx,Mx,Rx,Ux', got '"
                         + text + "'");
    };
    // Expected shape: H<d>,M<d>,R<d>,U<d>
    if (text.size() != 11 || text[0] != 'H' || text[2] != ',' ||
        text[3] != 'M' || text[5] != ',' || text[6] != 'R' ||
        text[8] != ',' || text[9] != 'U') {
        bad();
    }
    const int h = text[1] - '0';
    const int m = text[4] - '0';
    const int r = text[7] - '0';
    const int u = text[10] - '0';
    if (h < 0 || h > 1 || m < 0 || m > 3 || r < 0 || r > 1 ||
        u < 0 || u > 2) {
        bad();
    }
    QlruParams p;
    p.hit = static_cast<Hit>(h);
    p.miss = static_cast<Miss>(m);
    p.replace = static_cast<Replace>(r);
    p.update = static_cast<Update>(u);
    return p;
}

std::vector<QlruParams>
QlruParams::allVariants()
{
    std::vector<QlruParams> all;
    all.reserve(2 * 4 * 2 * 3);
    for (int h = 0; h < 2; ++h) {
        for (int m = 0; m < 4; ++m) {
            for (int r = 0; r < 2; ++r) {
                for (int u = 0; u < 3; ++u) {
                    QlruParams p;
                    p.hit = static_cast<Hit>(h);
                    p.miss = static_cast<Miss>(m);
                    p.replace = static_cast<Replace>(r);
                    p.update = static_cast<Update>(u);
                    all.push_back(p);
                }
            }
        }
    }
    return all;
}

QlruPolicy::QlruPolicy(unsigned ways, QlruParams params)
    : ReplacementPolicy(ways), params_(params)
{
    require(ways >= 2, "QlruPolicy: associativity must be >= 2");
    QlruPolicy::reset();
}

void
QlruPolicy::reset()
{
    // Cold lines carry the maximal age: immediately evictable.
    age_.assign(ways_, kMaxAge);
}

void
QlruPolicy::touch(Way way)
{
    checkWay(way);
    switch (params_.hit) {
      case QlruParams::Hit::kH0:
        age_[way] = 0;
        break;
      case QlruParams::Hit::kH1:
        if (age_[way] > 0)
            --age_[way];
        break;
    }
}

Way
QlruPolicy::victim() const
{
    // All update rules choose among the maximal-age lines; they differ
    // only in which state change is committed at fill time.
    return selectVictim(age_);
}

void
QlruPolicy::fill(Way way)
{
    checkWay(way);
    switch (params_.update) {
      case QlruParams::Update::kU0:
        break;
      case QlruParams::Update::kU1:
        for (unsigned w = 0; w < ways_; ++w)
            if (w != way && age_[w] < kMaxAge)
                ++age_[w];
        break;
      case QlruParams::Update::kU2:
        normalize(age_);
        break;
    }
    age_[way] = static_cast<unsigned>(params_.miss);
}

std::string
QlruPolicy::name() const
{
    return "QLRU(" + params_.shortName() + ")";
}

PolicyPtr
QlruPolicy::clone() const
{
    return std::make_unique<QlruPolicy>(*this);
}

std::string
QlruPolicy::stateKey() const
{
    std::string key;
    key.reserve(age_.size());
    for (unsigned a : age_)
        key.push_back(static_cast<char>('0' + a));
    return key;
}

Way
QlruPolicy::selectVictim(const std::vector<unsigned>& age) const
{
    const unsigned max_age = *std::max_element(age.begin(), age.end());
    if (params_.replace == QlruParams::Replace::kR0) {
        for (unsigned w = 0; w < ways_; ++w)
            if (age[w] == max_age)
                return w;
    } else {
        for (unsigned w = ways_; w-- > 0;)
            if (age[w] == max_age)
                return w;
    }
    return 0; // unreachable
}

void
QlruPolicy::normalize(std::vector<unsigned>& age) const
{
    const unsigned max_age = *std::max_element(age.begin(), age.end());
    if (max_age >= kMaxAge)
        return;
    const unsigned delta = kMaxAge - max_age;
    for (auto& a : age)
        a += delta;
}

} // namespace recap::policy
