/**
 * @file
 * EAF — evicted address filter (Seshadri et al., PACT 2012): a
 * bounded FIFO of recently evicted block addresses steers insertion.
 * A block that was evicted recently and comes back is presumed to
 * have genuine reuse and is inserted at MRU; everything else gets
 * BIP-style bimodal insertion, protecting the working set against
 * streams.
 *
 * Block identities arrive through the AccessMeta side channel
 * (usesMeta()), so EAF never table-compiles. Driven without metadata
 * it degenerates to exactly BIP — the filter never populates.
 */

#ifndef RECAP_POLICY_EAF_HH_
#define RECAP_POLICY_EAF_HH_

#include <deque>
#include <vector>

#include "recap/policy/lru.hh"

namespace recap::policy
{

class EafPolicy final : public RecencyStackPolicy
{
  public:
    /**
     * @param ways      Associativity; must be >= 2.
     * @param filterCap Max evicted addresses remembered; 0 sizes the
     *                  filter to the associativity.
     * @param throttle  BIP 1-in-throttle MRU insertion for blocks
     *                  missing from the filter.
     */
    explicit EafPolicy(unsigned ways, unsigned filterCap = 0,
                       unsigned throttle = 16);

    void reset() override;
    void touch(Way way) override;
    void fill(Way way) override;
    std::string name() const override { return "EAF"; }
    PolicyPtr clone() const override;
    std::string stateKey() const override;

    bool usesMeta() const override { return true; }
    void beginAccess(const AccessMeta& meta) override;

    /** True iff @p block is currently in the filter (for tests). */
    bool filterContains(uint64_t block) const;

    /** Current filter occupancy (for tests). */
    size_t filterSize() const { return filter_.size(); }

  private:
    unsigned filterCap_;
    unsigned throttle_;
    unsigned fillCount_ = 0;
    std::deque<uint64_t> filter_;    ///< front = oldest eviction
    std::vector<uint64_t> blockOf_;  ///< block resident in each way
    std::vector<bool> haveBlock_;    ///< blockOf_ entry is meaningful
    uint64_t pendingBlock_ = 0;
    bool pendingHasBlock_ = false;
};

} // namespace recap::policy

#endif // RECAP_POLICY_EAF_HH_
