/**
 * @file
 * Pseudo-random replacement, the classic baseline the paper's
 * evaluation compares the reverse-engineered policies against.
 */

#ifndef RECAP_POLICY_RANDOM_HH_
#define RECAP_POLICY_RANDOM_HH_

#include "recap/common/rng.hh"
#include "recap/policy/policy.hh"

namespace recap::policy
{

/**
 * Random replacement with a deterministic seeded stream.
 *
 * Because victim() must be pure, the victim for the *next* miss is
 * pre-drawn and only advanced by fill(); hits do not consume
 * randomness, matching LFSR-based hardware implementations where the
 * register steps per replacement.
 */
class RandomPolicy final : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(unsigned ways, uint64_t seed = 1);

    void reset() override;
    void touch(Way way) override;
    Way victim() const override;
    void fill(Way way) override;
    std::string name() const override { return "Random"; }
    PolicyPtr clone() const override;
    std::string stateKey() const override;

  private:
    uint64_t seed_;
    Rng rng_;
    Way pending_;
    uint64_t draws_ = 0;
};

} // namespace recap::policy

#endif // RECAP_POLICY_RANDOM_HH_
