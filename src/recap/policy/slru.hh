/**
 * @file
 * Segmented LRU (SLRU): a protected/probationary two-segment policy,
 * included to broaden the candidate library beyond the families the
 * catalog machines use.
 */

#ifndef RECAP_POLICY_SLRU_HH_
#define RECAP_POLICY_SLRU_HH_

#include <vector>

#include "recap/policy/policy.hh"

namespace recap::policy
{

/**
 * SLRU: ways are split into a probationary and a protected segment,
 * each kept in LRU order.
 *
 *  - Fills insert at the MRU end of the probationary segment.
 *  - A hit on a probationary line promotes it to the MRU end of the
 *    protected segment; if the protected segment is over capacity,
 *    its LRU line is demoted to the probationary MRU position.
 *  - A hit on a protected line moves it to the protected MRU end.
 *  - The victim is the probationary LRU line; if the probationary
 *    segment is empty, the protected LRU line.
 *
 * The segmentation gives scan resistance similar to LIP while
 * preserving LRU ordering among reused lines.
 */
class SlruPolicy final : public ReplacementPolicy
{
  public:
    /**
     * @param ways          Associativity.
     * @param protectedWays Capacity of the protected segment; must
     *                      be in [1, ways-1].
     */
    explicit SlruPolicy(unsigned ways, unsigned protectedWays = 0);

    void reset() override;
    void touch(Way way) override;
    Way victim() const override;
    void fill(Way way) override;
    std::string name() const override { return "SLRU"; }
    PolicyPtr clone() const override;
    std::string stateKey() const override;

    unsigned protectedCapacity() const { return protectedWays_; }

    /** Protected segment order (MRU first), for white-box tests. */
    std::vector<Way> protectedSegment() const { return protected_; }

    /** Probationary segment order (MRU first), for tests. */
    std::vector<Way> probationarySegment() const { return probation_; }

  private:
    /** Removes @p way from whichever segment holds it. */
    void remove(Way way);

    /** Inserts at the protected MRU end, demoting on overflow. */
    void promote(Way way);

    unsigned protectedWays_;
    /** Both segments store ways MRU-first. */
    std::vector<Way> protected_;
    std::vector<Way> probation_;
};

} // namespace recap::policy

#endif // RECAP_POLICY_SLRU_HH_
