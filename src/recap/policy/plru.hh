/**
 * @file
 * Tree-based pseudo-LRU (the policy Abel & Reineke found in the L1
 * and most L2 caches of the Intel machines they examined).
 */

#ifndef RECAP_POLICY_PLRU_HH_
#define RECAP_POLICY_PLRU_HH_

#include <vector>

#include "recap/policy/policy.hh"

namespace recap::policy
{

/**
 * Tree-PLRU for power-of-two associativities.
 *
 * The state is a complete binary tree of ways-1 direction bits stored
 * in heap order (node 0 is the root; children of node n are 2n+1 and
 * 2n+2). Bit value 0 means "the colder half is the left subtree", so
 * victim() follows bits as-is and an access flips the bits on its
 * root-to-leaf path to point away from the accessed way.
 */
class TreePlruPolicy final : public ReplacementPolicy
{
  public:
    /** @param ways Associativity; must be a power of two >= 2. */
    explicit TreePlruPolicy(unsigned ways);

    void reset() override;
    void touch(Way way) override;
    Way victim() const override;
    void fill(Way way) override;
    std::string name() const override { return "PLRU"; }
    PolicyPtr clone() const override;
    std::string stateKey() const override;

    /** Raw tree bits in heap order, for white-box tests. */
    std::vector<bool> treeBits() const { return bits_; }

  private:
    /** Points every node on the path to @p way away from it. */
    void markAccessed(Way way);

    /** bits_[n]: 0 -> colder side is left child, 1 -> right child. */
    std::vector<bool> bits_;
    unsigned levels_;
};

/**
 * Bit-PLRU, also known as the MRU policy: one status bit per way.
 *
 * Accessing a line sets its bit; when the access would make all bits
 * one, every *other* bit is cleared first, so the most recent access
 * is the only marked line. The victim is the lowest-index way with a
 * clear bit.
 */
class BitPlruPolicy final : public ReplacementPolicy
{
  public:
    explicit BitPlruPolicy(unsigned ways);

    void reset() override;
    void touch(Way way) override;
    Way victim() const override;
    void fill(Way way) override;
    std::string name() const override { return "BitPLRU"; }
    PolicyPtr clone() const override;
    std::string stateKey() const override;

    /** Raw MRU bits, for white-box tests. */
    std::vector<bool> mruBits() const { return bits_; }

  private:
    void mark(Way way);

    std::vector<bool> bits_;
};

} // namespace recap::policy

#endif // RECAP_POLICY_PLRU_HH_
