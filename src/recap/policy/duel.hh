/**
 * @file
 * Temporal set dueling: the PSEL machinery of DIP/DRRIP recast as
 * per-automaton state.
 *
 * Hardware DIP dedicates a few *leader sets* to each constituent
 * policy and trains one global PSEL counter from their misses. A
 * ReplacementPolicy automaton, however, is scoped to a single set and
 * must stay a self-contained deterministic machine, so recap duels in
 * *time* instead of space: the input stream is divided into fixed
 * epochs, a fraction of which are dedicated to each constituent
 * policy (the automaton then inserts with that policy regardless of
 * PSEL), and the rest follow PSEL's verdict. Misses during a leader
 * epoch train PSEL exactly as leader-set misses do in hardware, and
 * epoch position advances on every input (hit or fill) so that a
 * policy that misses more often trains PSEL faster — the same
 * miss-rate feedback signal, folded into finite automaton state.
 *
 * The epoch cycle has length 4*epochLen:
 *   [0, W)    leader epoch for constituent A
 *   [W, 2W)   leader epoch for constituent B
 *   [2W, 4W)  follower epochs (PSEL decides)
 * with W = epochLen. Followers get half the cycle, mirroring the
 * follower-set majority of the spatial scheme.
 */

#ifndef RECAP_POLICY_DUEL_HH_
#define RECAP_POLICY_DUEL_HH_

#include <cstdint>
#include <string>

#include "recap/common/error.hh"

namespace recap::policy
{

/** Which constituent governs the current input's insertion. */
enum class DuelMode { kLeaderA, kLeaderB, kFollower };

/**
 * The PSEL counter plus epoch clock shared by the temporal-dueling
 * policies. Plain value type: policies embed it and clone it by copy.
 */
class TemporalDuel
{
  public:
    /**
     * @param pselBits Saturating-counter width in bits, in [1, 16].
     * @param epochLen Inputs per leader epoch; must be >= 1.
     */
    TemporalDuel(unsigned pselBits, unsigned epochLen)
        : pselMax_((1u << pselBits) - 1), epochLen_(epochLen)
    {
        require(pselBits >= 1 && pselBits <= 16,
                "TemporalDuel: pselBits must be in [1,16]");
        require(epochLen >= 1,
                "TemporalDuel: epochLen must be >= 1");
        reset();
    }

    void reset()
    {
        psel_ = pselMidpoint();
        pos_ = 0;
    }

    /** Constituent governing the current input. */
    DuelMode mode() const
    {
        if (pos_ < epochLen_)
            return DuelMode::kLeaderA;
        if (pos_ < 2 * epochLen_)
            return DuelMode::kLeaderB;
        return DuelMode::kFollower;
    }

    /** True iff a follower input should use constituent B. */
    bool followerPicksB() const { return psel_ >= pselMidpoint(); }

    /**
     * Trains PSEL for a miss observed under @p mode: a miss in an
     * A-leader epoch is evidence for B (PSEL saturates up), and vice
     * versa. Follower misses train nothing, as in hardware.
     */
    void onMiss(DuelMode mode)
    {
        if (mode == DuelMode::kLeaderA && psel_ < pselMax_)
            ++psel_;
        else if (mode == DuelMode::kLeaderB && psel_ > 0)
            --psel_;
    }

    /** Advances the epoch clock by one input (hit or fill). */
    void advance() { pos_ = (pos_ + 1) % (4 * epochLen_); }

    /** PSEL value, for white-box convergence tests. */
    unsigned psel() const { return psel_; }

    /** Smallest PSEL value that selects constituent B. */
    unsigned pselMidpoint() const { return (pselMax_ + 1) / 2; }

    /** Canonical fragment for the owning policy's stateKey(). */
    std::string key() const
    {
        return std::to_string(psel_) + "@" + std::to_string(pos_);
    }

  private:
    unsigned pselMax_;
    unsigned epochLen_;
    unsigned psel_ = 0;
    unsigned pos_ = 0;
};

} // namespace recap::policy

#endif // RECAP_POLICY_DUEL_HH_
