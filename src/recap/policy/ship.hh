/**
 * @file
 * SHiP — signature-based hit prediction (Wu et al., MICRO 2011):
 * SRRIP augmented with a signature history counter table (SHCT)
 * indexed by a hash of the accessing instruction's program counter.
 * Lines whose signature has no history of reuse are inserted distant
 * (immediately evictable); signatures with reuse history insert long.
 *
 * The PC arrives through the AccessMeta side channel (usesMeta()),
 * so SHiP is excluded from table compilation and always runs
 * interpreted. Driven without metadata (e.g. by the learning
 * oracle), every access falls into signature 0 and the policy
 * degenerates to a single-signature adaptive SRRIP — still a
 * well-defined deterministic automaton.
 */

#ifndef RECAP_POLICY_SHIP_HH_
#define RECAP_POLICY_SHIP_HH_

#include <vector>

#include "recap/policy/rrip.hh"

namespace recap::policy
{

class ShipPolicy final : public SrripPolicy
{
  public:
    /**
     * @param ways    Associativity; must be >= 2.
     * @param bits    RRPV width in bits.
     * @param sigBits SHCT index width; the table has 2^sigBits
     *                saturating counters. Must be in [1, 14].
     * @param ctrBits SHCT counter width in bits, in [1, 8].
     */
    explicit ShipPolicy(unsigned ways, unsigned bits = 2,
                        unsigned sigBits = 4, unsigned ctrBits = 2);

    void reset() override;
    void touch(Way way) override;
    void fill(Way way) override;
    std::string name() const override { return "SHiP"; }
    PolicyPtr clone() const override;
    std::string stateKey() const override;

    bool usesMeta() const override { return true; }
    void beginAccess(const AccessMeta& meta) override;

    /** SHCT counter for @p signature, for white-box tests. */
    unsigned shctAt(unsigned signature) const;

    /** The signature a given PC hashes to. */
    unsigned signatureOf(uint64_t pc) const;

  private:
    unsigned sigBits_;
    unsigned ctrMax_;
    std::vector<unsigned> shct_;     ///< 2^sigBits counters
    std::vector<unsigned> sig_;      ///< per-line signature
    std::vector<bool> outcome_;      ///< line was reused since fill
    std::vector<bool> tracked_;      ///< line was filled with a signature
    uint64_t pendingPc_ = 0;
    bool pendingHasPc_ = false;
};

} // namespace recap::policy

#endif // RECAP_POLICY_SHIP_HH_
