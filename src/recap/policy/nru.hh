/**
 * @file
 * Not-recently-used replacement (one reference bit per line, cleared
 * lazily at victim-selection time), the style of policy reported for
 * the L3 caches of the Nehalem/Westmere generation.
 */

#ifndef RECAP_POLICY_NRU_HH_
#define RECAP_POLICY_NRU_HH_

#include <vector>

#include "recap/policy/policy.hh"

namespace recap::policy
{

/**
 * NRU: every access sets the line's reference bit. The victim is the
 * lowest-index way whose bit is clear; if all bits are set when a
 * victim is needed, all bits are (conceptually) cleared first.
 *
 * Unlike BitPLRU, saturation is resolved at victim-selection time,
 * not at access time, which yields a different automaton: after
 * saturation NRU forgets *all* recency information, including the
 * most recent access.
 *
 * victim() must be side-effect free, so the lazy clear is modelled
 * functionally there and committed in fill().
 */
class NruPolicy final : public ReplacementPolicy
{
  public:
    explicit NruPolicy(unsigned ways);

    void reset() override;
    void touch(Way way) override;
    Way victim() const override;
    void fill(Way way) override;
    std::string name() const override { return "NRU"; }
    PolicyPtr clone() const override;
    std::string stateKey() const override;

    /** Raw reference bits, for white-box tests. */
    std::vector<bool> referenceBits() const { return bits_; }

  private:
    bool allSet() const;

    std::vector<bool> bits_;
};

} // namespace recap::policy

#endif // RECAP_POLICY_NRU_HH_
