#include "recap/policy/dip.hh"

#include "recap/common/error.hh"

namespace recap::policy
{

DipPolicy::DipPolicy(unsigned ways, unsigned throttle,
                     unsigned pselBits, unsigned epochLen)
    : RecencyStackPolicy(ways), throttle_(throttle),
      duel_(pselBits, epochLen)
{
    require(ways >= 2, "DipPolicy: needs at least 2 ways");
    require(throttle >= 1, "DipPolicy: throttle must be >= 1");
}

void
DipPolicy::reset()
{
    RecencyStackPolicy::reset();
    fillCount_ = 0;
    duel_.reset();
}

void
DipPolicy::touch(Way way)
{
    checkWay(way);
    moveToMru(way);
    duel_.advance();
}

void
DipPolicy::fill(Way way)
{
    checkWay(way);
    // Train first: the miss is attributed to the constituent that
    // governed the epoch it occurred in.
    const DuelMode mode = duel_.mode();
    duel_.onMiss(mode);

    const bool bip = mode == DuelMode::kLeaderB ||
                     (mode == DuelMode::kFollower &&
                      duel_.followerPicksB());
    if (!bip || fillCount_ == 0)
        moveToMru(way);
    else
        moveToLru(way);
    // The BIP throttle counter runs on every fill so constituent B's
    // behaviour matches a free-standing BipPolicy.
    fillCount_ = (fillCount_ + 1) % throttle_;
    duel_.advance();
}

PolicyPtr
DipPolicy::clone() const
{
    return std::make_unique<DipPolicy>(*this);
}

std::string
DipPolicy::stateKey() const
{
    return RecencyStackPolicy::stateKey() + ":" +
           std::to_string(fillCount_) + ":" + duel_.key();
}

} // namespace recap::policy
