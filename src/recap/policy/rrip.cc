#include "recap/policy/rrip.hh"

#include <algorithm>

#include "recap/common/error.hh"

namespace recap::policy
{

SrripPolicy::SrripPolicy(unsigned ways, unsigned bits)
    : ReplacementPolicy(ways), bits_(bits),
      maxRrpv_((1u << bits) - 1)
{
    require(bits >= 1 && bits <= 8, "SrripPolicy: bits must be in [1,8]");
    SrripPolicy::reset();
}

void
SrripPolicy::reset()
{
    // All lines start distant, i.e. immediately evictable.
    rrpv_.assign(ways_, maxRrpv_);
}

void
SrripPolicy::touch(Way way)
{
    checkWay(way);
    rrpv_[way] = 0; // hit promotion (HP variant)
}

Way
SrripPolicy::victim() const
{
    Way v = findVictim(rrpv_);
    if (v < ways_)
        return v;
    // Functionally age a copy until a victim appears.
    std::vector<unsigned> aged = rrpv_;
    while (true) {
        const unsigned max_seen = *std::max_element(aged.begin(),
                                                    aged.end());
        const unsigned delta = maxRrpv_ - max_seen;
        for (auto& r : aged)
            r += delta ? delta : 1;
        for (auto& r : aged)
            r = std::min(r, maxRrpv_);
        v = findVictim(aged);
        if (v < ways_)
            return v;
    }
}

void
SrripPolicy::fill(Way way)
{
    checkWay(way);
    // Commit the aging victim() modelled, then insert.
    ageUntilVictimExists();
    rrpv_[way] = insertionRrpv();
}

std::string
SrripPolicy::name() const
{
    return "SRRIP" + std::to_string(bits_);
}

PolicyPtr
SrripPolicy::clone() const
{
    return std::make_unique<SrripPolicy>(*this);
}

std::string
SrripPolicy::stateKey() const
{
    std::string key;
    key.reserve(rrpv_.size());
    for (unsigned r : rrpv_)
        key.push_back(static_cast<char>('0' + r));
    return key;
}

unsigned
SrripPolicy::insertionRrpv()
{
    return maxRrpv_ == 0 ? 0 : maxRrpv_ - 1;
}

void
SrripPolicy::ageUntilVictimExists()
{
    if (findVictim(rrpv_) < ways_)
        return;
    const unsigned max_seen = *std::max_element(rrpv_.begin(),
                                                rrpv_.end());
    const unsigned delta = maxRrpv_ - max_seen;
    for (auto& r : rrpv_)
        r = std::min(r + (delta ? delta : 1), maxRrpv_);
    ensure(findVictim(rrpv_) < ways_,
           "SrripPolicy: aging failed to expose a victim");
}

Way
SrripPolicy::findVictim(const std::vector<unsigned>& rrpv) const
{
    for (unsigned w = 0; w < ways_; ++w)
        if (rrpv[w] == maxRrpv_)
            return w;
    return ways_;
}

BrripPolicy::BrripPolicy(unsigned ways, unsigned bits, unsigned throttle)
    : SrripPolicy(ways, bits), throttle_(throttle)
{
    require(throttle >= 1, "BrripPolicy: throttle must be >= 1");
}

void
BrripPolicy::reset()
{
    SrripPolicy::reset();
    fillCount_ = 0;
}

std::string
BrripPolicy::name() const
{
    return "BRRIP" + std::to_string(bits_);
}

PolicyPtr
BrripPolicy::clone() const
{
    return std::make_unique<BrripPolicy>(*this);
}

std::string
BrripPolicy::stateKey() const
{
    return SrripPolicy::stateKey() + ":" + std::to_string(fillCount_);
}

unsigned
BrripPolicy::insertionRrpv()
{
    // The 1-in-throttle fill gets the "long" prediction, all others
    // the "distant" one.
    const unsigned rrpv = (fillCount_ == 0 && maxRrpv_ > 0)
        ? maxRrpv_ - 1 : maxRrpv_;
    fillCount_ = (fillCount_ + 1) % throttle_;
    return rrpv;
}

} // namespace recap::policy
