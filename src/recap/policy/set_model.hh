/**
 * @file
 * SetModel: one cache set (tag contents + replacement policy state)
 * as a self-contained automaton over abstract block identifiers.
 *
 * This is the object the paper's formalism reasons about: the
 * equivalence checker, the permutation deriver and the candidate
 * search all interact with caches at this level, independent of
 * addresses, sets, and hierarchies.
 */

#ifndef RECAP_POLICY_SET_MODEL_HH_
#define RECAP_POLICY_SET_MODEL_HH_

#include <cstdint>
#include <vector>

#include "recap/policy/policy.hh"

namespace recap::policy
{

/** Abstract identifier of a memory block mapping to the set. */
using BlockId = uint64_t;

/**
 * One cache set driven by abstract block accesses.
 *
 * Cold misses fill the lowest-index invalid way (as hardware does);
 * once the set is full, the replacement policy chooses victims.
 */
class SetModel
{
  public:
    /** Takes ownership of @p policy; the model starts empty. */
    explicit SetModel(PolicyPtr policy);

    SetModel(const SetModel& other);
    SetModel& operator=(const SetModel& other);
    SetModel(SetModel&&) noexcept = default;
    SetModel& operator=(SetModel&&) noexcept = default;

    /** Associativity. */
    unsigned ways() const;

    /**
     * Performs one access to @p block.
     * @return true on hit, false on miss.
     */
    bool access(BlockId block);

    /**
     * Performs one access to @p block annotated with the program
     * counter @p pc, for PC-indexed predictor policies (SHiP).
     * @return true on hit, false on miss.
     */
    bool accessWithPc(BlockId block, uint64_t pc);

    /** Empties the set and resets the policy (models a flush). */
    void flush();

    /** True iff @p block currently resides in the set. */
    bool contains(BlockId block) const;

    /** Block in @p way; requires the way to be valid. */
    BlockId blockAt(Way way) const;

    /** True iff @p way holds a valid block. */
    bool isValid(Way way) const;

    /** Number of valid ways. */
    unsigned validCount() const;

    /** The way the next miss would fill. */
    Way nextFillWay() const;

    /**
     * The blocks currently resident, in eviction order: element 0
     * would be evicted by the next miss, element ways()-1 last. The
     * computation forks the state; the model itself is unchanged.
     * Requires a full set.
     */
    std::vector<BlockId> evictionOrder() const;

    /**
     * Canonical joint state of contents and policy, with block ids
     * renamed by first occurrence so that two states that differ only
     * in block naming compare equal.
     */
    std::string stateKey() const;

    /** Read-only access to the underlying policy. */
    const ReplacementPolicy& policy() const { return *policy_; }

  private:
    /** Shared access path; publishes @p meta when the policy asks. */
    bool accessImpl(BlockId block, const AccessMeta& meta);

    PolicyPtr policy_;
    /** blocks_[w] holds the block in way w; valid_[w] gates it. */
    std::vector<BlockId> blocks_;
    std::vector<bool> valid_;
};

} // namespace recap::policy

#endif // RECAP_POLICY_SET_MODEL_HH_
