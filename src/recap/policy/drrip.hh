/**
 * @file
 * DRRIP — dynamic re-reference interval prediction (Jaleel et al.,
 * ISCA 2010): set dueling between SRRIP and BRRIP insertion over one
 * shared RRPV vector, using the temporal-dueling PSEL of duel.hh.
 */

#ifndef RECAP_POLICY_DRRIP_HH_
#define RECAP_POLICY_DRRIP_HH_

#include "recap/policy/duel.hh"
#include "recap/policy/rrip.hh"

namespace recap::policy
{

/**
 * DRRIP over a single RRPV vector. Hits and victim selection follow
 * SRRIP-HP unchanged; only the insertion RRPV of a fill is
 * contested: constituent A inserts long (max-1, SRRIP), constituent B
 * inserts distant (max) except for every throttle-th fill (BRRIP).
 *
 * State space: (maxRrpv+1)^ways * throttle * 2^pselBits * 4*epochLen
 * — tractable at 2 ways with default parameters, beyond the default
 * CompileBudget at 4+ ways, where DRRIP exercises the interpreted
 * fallback. epochLen must stay small relative to the PSEL range
 * (see DipPolicy).
 */
class DrripPolicy final : public SrripPolicy
{
  public:
    /**
     * @param ways     Associativity; must be >= 2.
     * @param bits     RRPV width in bits.
     * @param throttle BRRIP constituent's 1-in-throttle long insert.
     * @param pselBits PSEL width in bits.
     * @param epochLen Inputs per leader epoch (see duel.hh).
     */
    explicit DrripPolicy(unsigned ways, unsigned bits = 2,
                         unsigned throttle = 16,
                         unsigned pselBits = 4, unsigned epochLen = 4);

    void reset() override;
    void touch(Way way) override;
    void fill(Way way) override;
    std::string name() const override;
    PolicyPtr clone() const override;
    std::string stateKey() const override;

    /** White-box accessors for the convergence property tests. */
    unsigned psel() const { return duel_.psel(); }
    unsigned pselMidpoint() const { return duel_.pselMidpoint(); }
    bool followerPicksBrrip() const { return duel_.followerPicksB(); }

  private:
    unsigned throttle_;
    unsigned fillCount_ = 0;
    TemporalDuel duel_;
};

} // namespace recap::policy

#endif // RECAP_POLICY_DRRIP_HH_
