#include "recap/policy/compiled.hh"

#include <deque>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "recap/common/error.hh"
#include "recap/policy/factory.hh"

namespace recap::policy
{

namespace
{

/** Hard cap keeping victim_ entries in 16 bits. */
constexpr unsigned kMaxCompiledWays = 1u << 15;

} // namespace

CompiledTablePtr
compilePolicy(const ReplacementPolicy& proto,
              const CompileBudget& budget)
{
    const unsigned k = proto.ways();
    if (k == 0 || k > kMaxCompiledWays || budget.maxStates == 0)
        return nullptr;
    // Meta-consuming policies (SHiP, EAF) are not functions of the
    // way-index input alphabet alone — a table compiled from
    // touch/fill transitions would silently diverge from the
    // interpreted automaton the moment a driver publishes metadata.
    if (proto.usesMeta())
        return nullptr;

    // Bytes one state costs across the three tables plus its key
    // (keys are bounded below by the key length of the initial
    // state; policies with per-state key growth are caught by the
    // running estimate as states are interned).
    const auto tableBytes = [&](uint64_t states, uint64_t keyBytes) {
        return states * (uint64_t{2} * k * sizeof(uint32_t) +
                         sizeof(uint16_t)) +
               keyBytes;
    };

    auto table = std::make_shared<CompiledTable>();
    table->ways_ = k;
    table->policyName_ = proto.name();

    // BFS over stateKey-canonical control states. Two states with
    // equal keys must behave identically (the documented
    // ReplacementPolicy contract), so interning by key yields the
    // exact reachable quotient automaton.
    std::unordered_map<std::string, uint32_t> ids;
    std::vector<PolicyPtr> states;
    uint64_t keyBytes = 0;

    PolicyPtr initial = proto.clone();
    initial->reset();
    {
        std::string key = initial->stateKey();
        keyBytes += key.size();
        ids.emplace(std::move(key), 0);
    }
    states.push_back(std::move(initial));

    const auto intern = [&](PolicyPtr&& succ) -> uint32_t {
        std::string key = succ->stateKey();
        const auto it = ids.find(key);
        if (it != ids.end())
            return it->second;
        const auto id = static_cast<uint32_t>(states.size());
        keyBytes += key.size();
        ids.emplace(std::move(key), id);
        states.push_back(std::move(succ));
        return id;
    };

    for (uint32_t at = 0; at < states.size(); ++at) {
        if (states.size() > budget.maxStates ||
            tableBytes(states.size(), keyBytes) >
                budget.maxTableBytes) {
            return nullptr;
        }
        for (unsigned w = 0; w < k; ++w) {
            PolicyPtr succ = states[at]->clone();
            succ->touch(w);
            table->touchNext_.push_back(intern(std::move(succ)));
        }
        for (unsigned w = 0; w < k; ++w) {
            PolicyPtr succ = states[at]->clone();
            succ->fill(w);
            table->fillNext_.push_back(intern(std::move(succ)));
        }
    }

    const auto n = static_cast<uint32_t>(states.size());
    table->numStates_ = n;
    table->victim_.reserve(n);
    table->keys_.resize(n);
    for (uint32_t s = 0; s < n; ++s) {
        const Way v = states[s]->victim();
        ensure(v < k, "compilePolicy: victim out of range");
        table->victim_.push_back(static_cast<uint16_t>(v));
        table->keys_[s] = states[s]->stateKey();
    }
    // The BFS loop appended one row per expanded state; rows for
    // states interned after their own expansion never run, so the
    // tables are complete exactly when every state was expanded.
    ensure(table->touchNext_.size() ==
               static_cast<std::size_t>(n) * k,
           "compilePolicy: incomplete transition table");

    // Narrow mirrors for the batch kernels (see CompiledTable::narrow).
    if (n <= (uint64_t{1} << 16)) {
        table->touchNext16_.assign(table->touchNext_.begin(),
                                   table->touchNext_.end());
        table->fillNext16_.assign(table->fillNext_.begin(),
                                  table->fillNext_.end());
    }
    return table;
}

CompiledTableView::CompiledTableView(CompiledTablePtr table)
    : table_(std::move(table))
{
    require(table_ != nullptr,
            "CompiledTableView: table must not be null");
}

uint32_t
CompiledTableView::filledState() const
{
    uint32_t state = 0;
    for (unsigned w = 0; w < ways(); ++w)
        state = table_->fillNext(state, w);
    return state;
}

std::vector<uint32_t>
CompiledTableView::fullSetReachable() const
{
    const unsigned k = ways();
    std::vector<bool> visited(numStates(), false);
    std::vector<uint32_t> order;
    std::deque<uint32_t> frontier;
    const uint32_t start = filledState();
    visited[start] = true;
    frontier.push_back(start);
    while (!frontier.empty()) {
        const uint32_t state = frontier.front();
        frontier.pop_front();
        order.push_back(state);
        const auto push = [&](uint32_t next) {
            if (!visited[next]) {
                visited[next] = true;
                frontier.push_back(next);
            }
        };
        for (unsigned w = 0; w < k; ++w)
            push(table_->touchNext(state, w));
        push(table_->fillNext(state, table_->victim(state)));
    }
    return order;
}

TableLanes::TableLanes(std::vector<CompiledTablePtr> tables)
    : tables_(std::move(tables))
{
    require(!tables_.empty(),
            "TableLanes: need at least one compiled table");
    for (const auto& table : tables_) {
        require(table != nullptr,
                "TableLanes: table must not be null");
        if (ways_ == 0)
            ways_ = table->ways();
        require(table->ways() == ways_,
                "TableLanes: lanes disagree on associativity");
        Lane lane;
        if (table->narrow()) {
            lane.touch16 = table->touchData16();
            lane.fill16 = table->fillData16();
        } else {
            lane.touch32 = table->touchData();
            lane.fill32 = table->fillData();
        }
        lane.victim = table->victimData();
        lane.numStates = table->numStates();
        lanes_.push_back(lane);
    }
}

CompiledTablePtr
compiledTableFor(const std::string& spec, unsigned ways,
                 const CompileBudget& budget)
{
    // Negative results are cached too: an over-budget enumeration is
    // the expensive case, and sweeps ask for the same (spec, ways)
    // once per grid cell.
    struct CacheEntry
    {
        bool attempted = false;
        CompiledTablePtr table;
    };
    static std::mutex mutex;
    static std::unordered_map<std::string, CacheEntry> cache;

    const std::string key = spec + "|" + std::to_string(ways) + "|" +
                            std::to_string(budget.maxStates) + "|" +
                            std::to_string(budget.maxTableBytes);
    {
        std::lock_guard<std::mutex> lock(mutex);
        const auto it = cache.find(key);
        if (it != cache.end() && it->second.attempted)
            return it->second.table;
    }

    // Compile outside the lock (enumerations can take a while and
    // must not serialize unrelated lookups). A racing duplicate
    // compilation is harmless: both produce identical tables and one
    // wins the cache slot.
    CompiledTablePtr table;
    if (isKnownPolicySpec(spec) && specSupportsWays(spec, ways))
        table = compilePolicy(*makePolicy(spec, ways), budget);

    std::lock_guard<std::mutex> lock(mutex);
    CacheEntry& entry = cache[key];
    if (!entry.attempted) {
        entry.attempted = true;
        entry.table = table;
    }
    return entry.table;
}

CompiledPolicy::CompiledPolicy(CompiledTablePtr table)
    : ReplacementPolicy(table ? table->ways() : 1),
      table_(std::move(table))
{
    require(table_ != nullptr,
            "CompiledPolicy: table must not be null");
}

PolicyPtr
makeCompiledOrFallback(const std::string& spec, unsigned ways,
                       uint64_t seed, const CompileBudget& budget)
{
    if (CompiledTablePtr table = compiledTableFor(spec, ways, budget))
        return std::make_unique<CompiledPolicy>(std::move(table));
    return makePolicy(spec, ways, seed);
}

} // namespace recap::policy
