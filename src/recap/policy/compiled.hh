/**
 * @file
 * Compiled replacement-policy automata: the interpreter-free fast
 * path of the simulation stack.
 *
 * Every policy in the catalog is a deterministic finite automaton
 * (that is the paper's whole premise), yet the interpreted
 * ReplacementPolicy interface pays a virtual touch/fill/victim
 * dispatch plus unique_ptr clone churn on every simulated access.
 * compilePolicy() enumerates the reachable control states of a policy
 * (breadth-first over ReplacementPolicy::stateKey, the same
 * canonicalization the learn:: extraction machinery builds on) into
 * dense state x input -> state transition tables:
 *
 *     touchNext[state * ways + w]  state after a hit on way w
 *     fillNext [state * ways + w]  state after filling way w
 *     victim   [state]             way the next miss would evict
 *
 * so the hot loop becomes three array lookups, state forking becomes
 * an integer copy, and the batch kernels in eval/ and query/ can keep
 * per-set state in structure-of-arrays form.
 *
 * Policies whose reachable state space exceeds the budget (the
 * stochastic "random" policy, whose stateKey encodes an unbounded
 * stream position; big way-order policies such as LRU at k = 16)
 * simply fail to compile: compilePolicy() returns nullptr and every
 * consumer falls back to the interpreted automaton, with behaviour
 * pinned bit-identical by tests/test_compiled_policy.cc.
 */

#ifndef RECAP_POLICY_COMPILED_HH_
#define RECAP_POLICY_COMPILED_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "recap/policy/policy.hh"

namespace recap::policy
{

/** Limits on the state enumeration of compilePolicy(). */
struct CompileBudget
{
    /**
     * Abort compilation beyond this many control states. The default
     * admits every catalog policy at k <= 8 except the throttled
     * insertion policies (BIP/BRRIP multiply the base state count by
     * their throttle) and covers PLRU/NRU-style policies up to
     * k = 16; LRU-order policies at k = 16 (16! states) and the
     * stochastic "random" policy (unbounded stream counter) exceed it
     * and fall back to interpretation.
     */
    uint64_t maxStates = 1u << 17;

    /** Abort when the transition tables would exceed this size. */
    uint64_t maxTableBytes = uint64_t{96} << 20;
};

/**
 * Immutable transition tables of one compiled policy. State 0 is the
 * post-reset state; states are numbered in BFS order (ascending
 * touch-then-fill edge exploration), so compiling the same policy
 * twice yields identical tables.
 */
class CompiledTable
{
  public:
    unsigned ways() const { return ways_; }
    uint32_t numStates() const { return numStates_; }

    /** name() of the policy this table was compiled from. */
    const std::string& policyName() const { return policyName_; }

    uint32_t touchNext(uint32_t state, Way way) const
    {
        return touchNext_[static_cast<std::size_t>(state) * ways_ +
                          way];
    }

    uint32_t fillNext(uint32_t state, Way way) const
    {
        return fillNext_[static_cast<std::size_t>(state) * ways_ +
                         way];
    }

    Way victim(uint32_t state) const { return victim_[state]; }

    /** Interpreted stateKey() of @p state (bit-exact passthrough). */
    const std::string& stateKey(uint32_t state) const
    {
        return keys_[state];
    }

    /** Raw table base pointers for the batch kernels' inner loops. */
    const uint32_t* touchData() const { return touchNext_.data(); }
    const uint32_t* fillData() const { return fillNext_.data(); }
    const uint16_t* victimData() const { return victim_.data(); }

    /**
     * True when the automaton has at most 2^16 states; the narrow
     * uint16 mirrors below are then populated. Halving the table
     * footprint matters: at 64k states the uint32 tables are 2 MiB
     * each and state-indexed lookups thrash L2, while the narrow
     * mirrors keep both tables resident.
     */
    bool narrow() const { return !touchNext16_.empty(); }
    const uint16_t* touchData16() const { return touchNext16_.data(); }
    const uint16_t* fillData16() const { return fillNext16_.data(); }

  private:
    friend std::shared_ptr<const CompiledTable>
    compilePolicy(const ReplacementPolicy&, const CompileBudget&);

    unsigned ways_ = 0;
    uint32_t numStates_ = 0;
    std::string policyName_;
    std::vector<uint32_t> touchNext_;
    std::vector<uint32_t> fillNext_;
    std::vector<uint16_t> victim_;
    std::vector<std::string> keys_;
    std::vector<uint16_t> touchNext16_;
    std::vector<uint16_t> fillNext16_;
};

/** Shared, immutable handle: one table serves any number of sets. */
using CompiledTablePtr = std::shared_ptr<const CompiledTable>;

/**
 * Safe read-only view of a compiled table for analysis consumers
 * (the sec:: searches, future model checkers): a copyable value that
 * keeps the shared table alive and exposes exactly the transition
 * and victim lookups plus the canonical derived states every
 * analysis needs, so consumers neither re-compile nor reach into
 * CompiledTable internals.
 */
class CompiledTableView
{
  public:
    /** @throws UsageError when @p table is null. */
    explicit CompiledTableView(CompiledTablePtr table);

    unsigned ways() const { return table_->ways(); }
    uint32_t numStates() const { return table_->numStates(); }
    const std::string& policyName() const
    {
        return table_->policyName();
    }

    uint32_t touchNext(uint32_t state, Way way) const
    {
        return table_->touchNext(state, way);
    }

    uint32_t fillNext(uint32_t state, Way way) const
    {
        return table_->fillNext(state, way);
    }

    Way victim(uint32_t state) const { return table_->victim(state); }

    /** The post-reset state (always index 0 by construction). */
    uint32_t resetState() const { return 0; }

    /**
     * The canonical full-set state: reset followed by a sequential
     * fill of ways 0..k-1 — the same preparation the predictability
     * metrics and the eviction-game roots use.
     */
    uint32_t filledState() const;

    /**
     * Every state reachable from filledState() under full-set inputs
     * (touch on any way, one filled miss per state), in BFS order —
     * the state universe of a warm set, which the security searches
     * take as the set of possible initial policy configurations.
     */
    std::vector<uint32_t> fullSetReachable() const;

    /** The shared table the view reads from. */
    const CompiledTablePtr& table() const { return table_; }

  private:
    CompiledTablePtr table_;
};

/**
 * Hoisted raw-pointer view over the transition tables of several
 * compiled policies at one shared associativity — the lane array of
 * the multi-policy lockstep kernel (eval/multi_kernel.hh).
 *
 * The kernel steps N automatons per decoded access; going through
 * CompiledTablePtr would pay a shared_ptr dereference plus a
 * narrow() branch per lane per access. This view resolves both once:
 * it keeps the shared tables alive and exposes, per lane, the raw
 * base pointers of the narrow uint16 mirrors (when the automaton
 * fits 2^16 states) or the wide uint32 tables, plus the victim
 * vector, so the inner loop is pure array arithmetic.
 */
class TableLanes
{
  public:
    /** Raw table pointers of one lane. Exactly one of the
     *  touch16/touch32 pairs is non-null (likewise fill). */
    struct Lane
    {
        const uint16_t* touch16 = nullptr;
        const uint16_t* fill16 = nullptr;
        const uint32_t* touch32 = nullptr;
        const uint32_t* fill32 = nullptr;
        const uint16_t* victim = nullptr;
        uint32_t numStates = 0;
    };

    TableLanes() = default;

    /**
     * @throws UsageError when @p tables is empty, contains a null
     *         entry, or the tables disagree on associativity.
     */
    explicit TableLanes(std::vector<CompiledTablePtr> tables);

    /** Shared associativity of every lane. */
    unsigned ways() const { return ways_; }

    std::size_t size() const { return lanes_.size(); }
    bool empty() const { return lanes_.empty(); }

    const Lane& operator[](std::size_t lane) const
    {
        return lanes_[lane];
    }

    /** The shared table lane @p lane reads from. */
    const CompiledTablePtr& table(std::size_t lane) const
    {
        return tables_[lane];
    }

  private:
    unsigned ways_ = 0;
    std::vector<CompiledTablePtr> tables_;
    std::vector<Lane> lanes_;
};

/**
 * Enumerates the reachable control states of @p proto (closed under
 * every touch(w)/fill(w) input, so the table is total even for fill
 * patterns only adaptive caches produce) and builds its transition
 * tables.
 *
 * @return nullptr when the state space exceeds @p budget — the
 *         caller must keep using the interpreted policy.
 */
CompiledTablePtr compilePolicy(const ReplacementPolicy& proto,
                               const CompileBudget& budget = {});

/**
 * Process-wide memoized compilation of factory specs: at most one
 * enumeration (including at most one failed over-budget enumeration)
 * per (spec, ways, budget) for the process lifetime. Thread-safe.
 * Only deterministic policies compile, so the factory seed is
 * irrelevant to the result; "random" misses the budget by design.
 */
CompiledTablePtr compiledTableFor(const std::string& spec,
                                  unsigned ways,
                                  const CompileBudget& budget = {});

/**
 * Drop-in ReplacementPolicy running on a compiled table: state is one
 * integer, clone() copies no vectors, and name()/stateKey() are
 * bit-exact passthroughs of the source policy so every stateKey-based
 * consumer (equivalence checker, predictability exploration, learn::
 * extraction) behaves identically on the compiled form.
 */
class CompiledPolicy : public ReplacementPolicy
{
  public:
    explicit CompiledPolicy(CompiledTablePtr table);

    void reset() override { state_ = 0; }

    void touch(Way way) override
    {
        checkWay(way);
        state_ = table_->touchNext(state_, way);
    }

    Way victim() const override { return table_->victim(state_); }

    void fill(Way way) override
    {
        checkWay(way);
        state_ = table_->fillNext(state_, way);
    }

    std::string name() const override { return table_->policyName(); }

    PolicyPtr clone() const override
    {
        return std::make_unique<CompiledPolicy>(*this);
    }

    std::string stateKey() const override
    {
        return table_->stateKey(state_);
    }

    /** The shared table this instance runs on. */
    const CompiledTablePtr& table() const { return table_; }

    /** Current control state as a table index. */
    uint32_t stateIndex() const { return state_; }

  private:
    CompiledTablePtr table_;
    uint32_t state_ = 0;
};

/**
 * makePolicy(), upgraded to the compiled form when the spec fits the
 * budget; the interpreted policy otherwise. Either result behaves
 * identically — the upgrade is purely a performance choice.
 */
PolicyPtr makeCompiledOrFallback(const std::string& spec,
                                 unsigned ways, uint64_t seed = 1,
                                 const CompileBudget& budget = {});

} // namespace recap::policy

#endif // RECAP_POLICY_COMPILED_HH_
