#include "recap/policy/permutation.hh"

#include <algorithm>

#include "recap/common/error.hh"
#include "recap/policy/plru.hh"
#include "recap/policy/set_model.hh"

namespace recap::policy
{

bool
isPermutation(const Permutation& pi)
{
    std::vector<bool> seen(pi.size(), false);
    for (unsigned v : pi) {
        if (v >= pi.size() || seen[v])
            return false;
        seen[v] = true;
    }
    return true;
}

Permutation
identityPermutation(unsigned k)
{
    Permutation pi(k);
    for (unsigned i = 0; i < k; ++i)
        pi[i] = i;
    return pi;
}

PermutationPolicy::PermutationPolicy(unsigned ways,
                                     std::vector<Permutation> hitPerms,
                                     Permutation missPerm,
                                     std::string displayName,
                                     FillRule fillRule,
                                     std::vector<Way> initialOrder)
    : ReplacementPolicy(ways),
      hitPerms_(std::move(hitPerms)),
      missPerm_(std::move(missPerm)),
      displayName_(std::move(displayName)),
      fillRule_(fillRule),
      initialOrder_(std::move(initialOrder))
{
    require(hitPerms_.size() == ways,
            "PermutationPolicy: need exactly one hit permutation per way");
    for (const auto& pi : hitPerms_)
        require(pi.size() == ways && isPermutation(pi),
                "PermutationPolicy: invalid hit permutation");
    require(missPerm_.size() == ways && isPermutation(missPerm_),
            "PermutationPolicy: invalid miss permutation");
    if (initialOrder_.empty()) {
        initialOrder_.resize(ways);
        for (unsigned i = 0; i < ways; ++i)
            initialOrder_[i] = i;
    }
    // The initial order must place each way exactly once.
    {
        Permutation as_perm(initialOrder_.begin(), initialOrder_.end());
        require(as_perm.size() == ways && isPermutation(as_perm),
                "PermutationPolicy: invalid initial order");
    }
    PermutationPolicy::reset();
}

void
PermutationPolicy::reset()
{
    order_ = initialOrder_;
}

void
PermutationPolicy::touch(Way way)
{
    checkWay(way);
    applyPermutation(hitPerms_[positionOf(way)]);
}

Way
PermutationPolicy::victim() const
{
    return order_[0];
}

void
PermutationPolicy::fill(Way way)
{
    checkWay(way);
    // A true miss fills the victim: the incoming line takes position
    // 0 and the miss permutation is applied. Cold fills into other
    // (invalid) ways follow the configured fill rule.
    if (way != order_[0] && fillRule_ == FillRule::kTouch) {
        applyPermutation(hitPerms_[positionOf(way)]);
        return;
    }
    auto it = std::find(order_.begin(), order_.end(), way);
    ensure(it != order_.end(), "PermutationPolicy: way missing in order");
    order_.erase(it);
    order_.insert(order_.begin(), way);
    applyPermutation(missPerm_);
}

std::string
PermutationPolicy::name() const
{
    return displayName_.empty() ? "Permutation" : displayName_;
}

PolicyPtr
PermutationPolicy::clone() const
{
    return std::make_unique<PermutationPolicy>(*this);
}

std::string
PermutationPolicy::stateKey() const
{
    std::string key;
    key.reserve(order_.size());
    for (Way w : order_)
        key.push_back(static_cast<char>('a' + w));
    return key;
}

Way
PermutationPolicy::orderAt(unsigned pos) const
{
    require(pos < ways_, "PermutationPolicy::orderAt: position range");
    return order_[pos];
}

bool
PermutationPolicy::sameVectors(const PermutationPolicy& other) const
{
    return ways_ == other.ways_ && hitPerms_ == other.hitPerms_ &&
           missPerm_ == other.missPerm_;
}

PermutationPolicy
PermutationPolicy::lru(unsigned ways)
{
    std::vector<Permutation> hits(ways);
    for (unsigned p = 0; p < ways; ++p) {
        Permutation pi(ways);
        for (unsigned j = 0; j < ways; ++j) {
            if (j < p)
                pi[j] = j;          // safer lines keep their slot
            else if (j == p)
                pi[j] = ways - 1;   // hit line becomes safest
            else
                pi[j] = j - 1;      // lines above the hit slide down
        }
        hits[p] = std::move(pi);
    }
    Permutation miss(ways);
    miss[0] = ways - 1;             // new line becomes safest
    for (unsigned j = 1; j < ways; ++j)
        miss[j] = j - 1;
    return PermutationPolicy(ways, std::move(hits), std::move(miss),
                             "LRU");
}

PermutationPolicy
PermutationPolicy::fifo(unsigned ways)
{
    std::vector<Permutation> hits(ways, identityPermutation(ways));
    Permutation miss(ways);
    miss[0] = ways - 1;
    for (unsigned j = 1; j < ways; ++j)
        miss[j] = j - 1;
    return PermutationPolicy(ways, std::move(hits), std::move(miss),
                             "FIFO");
}

PermutationPolicy
PermutationPolicy::plru(unsigned ways)
{
    TreePlruPolicy proto(ways);
    auto derived = derive(proto);
    ensure(derived.has_value(),
           "PermutationPolicy::plru: tree-PLRU failed derivation");
    return PermutationPolicy(ways, derived->hitPermutations(),
                             derived->missPermutation(), "PLRU",
                             derived->fillRule(),
                             derived->initialOrder());
}

std::optional<PermutationPolicy>
PermutationPolicy::derive(const ReplacementPolicy& proto,
                          unsigned verifyRounds, uint64_t seed)
{
    const unsigned k = proto.ways();
    if (k < 1)
        return std::nullopt;

    // Build the canonical state: flush, then fill blocks 1..k.
    SetModel base(proto.clone());
    base.flush();
    for (unsigned b = 1; b <= k; ++b)
        base.access(b);
    const std::vector<BlockId> ord = base.evictionOrder();

    auto index_of = [&](const std::vector<BlockId>& seq, BlockId b)
        -> std::optional<unsigned> {
        for (unsigned i = 0; i < seq.size(); ++i)
            if (seq[i] == b)
                return i;
        return std::nullopt;
    };

    // Hit permutations: touch the line at each position and see how
    // the eviction order rearranges.
    std::vector<Permutation> hits(k);
    for (unsigned p = 0; p < k; ++p) {
        SetModel probe(base);
        probe.access(ord[p]); // hit
        const std::vector<BlockId> after = probe.evictionOrder();
        Permutation pi(k);
        for (unsigned j = 0; j < k; ++j) {
            auto pos = index_of(after, ord[j]);
            if (!pos)
                return std::nullopt; // a hit evicted a line: not perm.
            pi[j] = *pos;
        }
        if (!isPermutation(pi))
            return std::nullopt;
        hits[p] = std::move(pi);
    }

    // Miss permutation: insert a fresh block, which must evict the
    // position-0 line; the incoming block stands for old position 0.
    Permutation miss(k);
    {
        SetModel probe(base);
        const BlockId fresh = 1000 + k;
        probe.access(fresh); // miss
        const std::vector<BlockId> after = probe.evictionOrder();
        auto new_pos = index_of(after, fresh);
        if (!new_pos)
            return std::nullopt;
        miss[0] = *new_pos;
        for (unsigned j = 1; j < k; ++j) {
            auto pos = index_of(after, ord[j]);
            if (!pos)
                return std::nullopt; // wrong line was evicted
            miss[j] = *pos;
        }
        if (!isPermutation(miss))
            return std::nullopt;
    }

    // Validate against the prototype on random access sequences: a
    // true permutation policy matches everywhere. Both cold-fill
    // rules are tried; sequences start from a flush, so cold fills
    // are exercised.
    auto validates = [&](const PermutationPolicy& candidate) {
        Rng rng(seed);
        for (unsigned round = 0; round < verifyRounds; ++round) {
            SetModel ref(proto.clone());
            SetModel hyp(candidate.clone());
            ref.flush();
            hyp.flush();
            const unsigned universe = k + 1 + static_cast<unsigned>(
                rng.nextBelow(k + 1));
            const unsigned length = 8 * k + static_cast<unsigned>(
                rng.nextBelow(8 * k + 1));
            for (unsigned i = 0; i < length; ++i) {
                const BlockId b = rng.nextBelow(universe);
                if (ref.access(b) != hyp.access(b))
                    return false;
            }
            if (ref.validCount() == k && hyp.validCount() == k &&
                ref.evictionOrder() != hyp.evictionOrder()) {
                return false;
            }
        }
        return true;
    };

    // The prototype's reset-state eviction order over ways, read off
    // white-box by following victim() through consecutive fills.
    std::vector<Way> init_order;
    {
        PolicyPtr s = proto.clone();
        s->reset();
        std::vector<bool> seen(k, false);
        for (unsigned i = 0; i < k; ++i) {
            const Way v = s->victim();
            if (v >= k || seen[v])
                break; // repeated victim: probing assumption violated
            seen[v] = true;
            init_order.push_back(v);
            s->fill(v);
        }
    }

    std::vector<std::vector<Way>> order_hypotheses;
    if (init_order.size() == k)
        order_hypotheses.push_back(init_order);
    order_hypotheses.push_back({}); // identity fallback

    for (FillRule rule : {FillRule::kInsertAtVictim, FillRule::kTouch}) {
        for (const auto& order : order_hypotheses) {
            PermutationPolicy candidate(k, hits, miss, "", rule, order);
            if (validates(candidate))
                return candidate;
        }
    }
    return std::nullopt;
}

void
PermutationPolicy::applyPermutation(const Permutation& pi)
{
    std::vector<Way> next(ways_);
    for (unsigned j = 0; j < ways_; ++j)
        next[pi[j]] = order_[j];
    order_ = std::move(next);
}

unsigned
PermutationPolicy::positionOf(Way way) const
{
    auto it = std::find(order_.begin(), order_.end(), way);
    ensure(it != order_.end(), "PermutationPolicy: way missing in order");
    return static_cast<unsigned>(it - order_.begin());
}

} // namespace recap::policy
