/**
 * @file
 * First-in first-out (round-robin) replacement.
 */

#ifndef RECAP_POLICY_FIFO_HH_
#define RECAP_POLICY_FIFO_HH_

#include <vector>

#include "recap/policy/policy.hh"

namespace recap::policy
{

/**
 * FIFO replacement: lines are evicted in insertion order and hits do
 * not refresh a line's position. The state is the insertion queue.
 */
class FifoPolicy final : public ReplacementPolicy
{
  public:
    explicit FifoPolicy(unsigned ways);

    void reset() override;
    void touch(Way way) override;
    Way victim() const override;
    void fill(Way way) override;
    std::string name() const override { return "FIFO"; }
    PolicyPtr clone() const override;
    std::string stateKey() const override;

    /** Current insertion order (index 0 = oldest = next victim). */
    std::vector<Way> insertionOrder() const { return queue_; }

  private:
    /** queue_[0] is the oldest line (next victim). */
    std::vector<Way> queue_;
};

} // namespace recap::policy

#endif // RECAP_POLICY_FIFO_HH_
