/**
 * @file
 * The learner's view of the system under learning: a Teacher answers
 * batches of membership words ("replay this access sequence from a
 * flush and report every hit/miss") and keeps cost counters.
 *
 * OracleTeacher adapts any query::QueryOracle — the replay-exact
 * PolicyOracle or the measuring MachineOracle — by compiling each
 * word into an observe-all membership query and answering whole
 * batches through evaluateBatch(), so observation-table rows ride
 * the prefix-sharing evaluator (rows extend each other by
 * construction, which is where the learner's measurement savings
 * come from) and machine-side answers inherit the robust voting /
 * abstention semantics of PR 3: an answer whose probes did not all
 * reach a quorum is flagged !determined, and the learner abstains
 * instead of learning from noise.
 *
 * PrefixStore is the teacher-consistency ledger: every answered word
 * contributes the outcome of each of its prefixes, and a later
 * answer that contradicts a recorded prefix exposes a garbled
 * (fault-injected) teacher. The learner turns such conflicts into
 * LearnOutcome::kAbstained rather than a wrong automaton.
 */

#ifndef RECAP_LEARN_TEACHER_HH_
#define RECAP_LEARN_TEACHER_HH_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "recap/learn/mealy.hh"
#include "recap/query/oracle.hh"

namespace recap::learn
{

/** One answered membership word. */
struct TeacherAnswer
{
    /** Hit/miss outcome of every position, in access order. */
    std::vector<bool> outputs;

    /**
     * False when any position failed to reach a vote quorum (the
     * outputs are then untrustworthy and the learner must abstain).
     */
    bool determined = true;

    /** Lowest per-position vote confidence behind the answer. */
    double confidence = 1.0;
};

/** Answers membership words; the learner's only window on the SUL. */
class Teacher
{
  public:
    virtual ~Teacher() = default;

    /** Associativity of the set under learning. */
    virtual unsigned ways() const = 0;

    /** Human-readable backend description. */
    virtual std::string describe() const = 0;

    /**
     * Answers every word of @p words (each replayed from a flushed
     * set), in input order.
     */
    virtual std::vector<TeacherAnswer>
    answer(const std::vector<Word>& words) = 0;

    /** Membership words asked so far. */
    virtual uint64_t wordsAsked() const = 0;

    /** Accesses/loads the answers cost so far. */
    virtual uint64_t accessesUsed() const = 0;

    /** Experiments the answers cost so far. */
    virtual uint64_t experimentsUsed() const = 0;
};

/** Teacher over a query::QueryOracle backend. */
class OracleTeacher : public Teacher
{
  public:
    /**
     * Borrows @p oracle. @p batch controls prefix sharing and the
     * policy backend's worker threads; the cost counters below
     * measure this teacher only (not other users of the oracle).
     */
    explicit OracleTeacher(query::QueryOracle& oracle,
                           const query::BatchOptions& batch = {});

    unsigned ways() const override;
    std::string describe() const override;
    std::vector<TeacherAnswer>
    answer(const std::vector<Word>& words) override;
    uint64_t wordsAsked() const override { return wordsAsked_; }
    uint64_t accessesUsed() const override { return accesses_; }
    uint64_t experimentsUsed() const override { return experiments_; }

    /** Cumulative batch statistics (prefix-sharing accounting). */
    const query::BatchStats& batchStats() const { return stats_; }

  private:
    query::QueryOracle& oracle_;
    query::BatchOptions batch_;
    query::BatchStats stats_;
    uint64_t wordsAsked_ = 0;
    uint64_t accesses_ = 0;
    uint64_t experiments_ = 0;
};

/**
 * Prefix-consistency ledger over answered words. Deterministic
 * teachers answer every prefix identically wherever it occurs;
 * record() reports a conflict (without overwriting the first
 * recording) when they don't.
 */
class PrefixStore
{
  public:
    /** Result of recording one answered word. */
    struct Recording
    {
        /** False iff some prefix contradicted an earlier answer. */
        bool consistent = true;

        /** First conflicting prefix length (0 when consistent). */
        std::size_t conflictAt = 0;
    };

    /** Records the per-prefix outcomes of one answered word. */
    Recording record(const Word& word,
                     const std::vector<bool>& outputs);

    /**
     * Looks up the recorded outcome of the last symbol of @p word;
     * returns -1 when unknown, else 0/1.
     */
    int lookup(const Word& word) const;

    /** Number of distinct recorded prefixes. */
    std::size_t size() const { return outcomes_.size(); }

    /**
     * Checks @p machine against every recorded prefix outcome;
     * returns the number of disagreements (0 = the hypothesis
     * explains all evidence seen so far).
     */
    uint64_t countMismatches(const MealyMachine& machine) const;

    /**
     * The first (shortest, then lexicographically smallest) recorded
     * word whose outcome @p machine mispredicts, if any — a free
     * counterexample before any new query is spent.
     */
    std::optional<Word>
    firstMismatch(const MealyMachine& machine) const;

  private:
    std::map<Word, bool> outcomes_;
};

} // namespace recap::learn

#endif // RECAP_LEARN_TEACHER_HH_
