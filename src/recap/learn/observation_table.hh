/**
 * @file
 * The L* observation table: the learner's evidence structure.
 *
 * Rows are access words (prefixes) — the short prefixes S plus their
 * one-symbol extensions S·A — and columns are distinguishing
 * suffixes E. Cell (u, e) holds the hit/miss outputs of e's symbols
 * when u·e is replayed from a flush. Two prefixes with equal rows
 * are (as far as the evidence goes) the same SUL state.
 *
 * The table is backed by a PrefixStore of *whole-word* outcomes:
 * because every membership query observes every position, one
 * answered word fills the cells of all its prefixes at once, and the
 * same store doubles as the teacher-consistency ledger. S stays
 * prefix-closed and its rows pairwise distinct (the Rivest–Schapire
 * discipline), which keeps the table consistent by construction;
 * isConsistent() still verifies it for the invariant tests.
 *
 * E always contains every single-symbol suffix, so a closed table
 * directly yields a well-defined Mealy hypothesis.
 */

#ifndef RECAP_LEARN_OBSERVATION_TABLE_HH_
#define RECAP_LEARN_OBSERVATION_TABLE_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "recap/learn/mealy.hh"
#include "recap/learn/teacher.hh"

namespace recap::learn
{

/** The L* observation table over a dense learner alphabet. */
class ObservationTable
{
  public:
    /**
     * Starts with S = {ε} and E = all single-symbol suffixes.
     * @param alphabet Learner alphabet size (>= 1).
     */
    explicit ObservationTable(unsigned alphabet);

    unsigned alphabet() const { return alphabet_; }

    /** Short prefixes S, in insertion order (prefix-closed). */
    const std::vector<Word>& prefixes() const { return prefixes_; }

    /** Distinguishing suffixes E, in insertion order. */
    const std::vector<Word>& suffixes() const { return suffixes_; }

    /** The evidence ledger (also records equivalence-test words). */
    PrefixStore& store() { return store_; }
    const PrefixStore& store() const { return store_; }

    /**
     * Words u·e (u in S ∪ S·A, e in E) whose outcome is not yet in
     * the store, deduplicated, in deterministic order. Empty means
     * the table is filled.
     */
    std::vector<Word> missingWords() const;

    /** True iff every cell is answerable from the store. */
    bool filled() const { return missingWords().empty(); }

    /**
     * Row signature of prefix @p u: the concatenated cell outputs
     * over E. Requires the table to be filled for @p u.
     */
    std::string rowKey(const Word& u) const;

    /**
     * Closedness: every row of S·A equals the row of some prefix in
     * S. When it fails, @p witness (if non-null) receives the first
     * offending extension — the prefix to promote into S.
     * Requires filled().
     */
    bool isClosed(Word* witness = nullptr) const;

    /**
     * Consistency: prefixes with equal rows have equal extension
     * rows for every symbol. Holds by construction under the
     * distinct-rows discipline; exposed for the invariant tests.
     * Requires filled().
     */
    bool isConsistent() const;

    /**
     * Moves extension @p u into S (it must extend a current S prefix
     * by one symbol). Returns false (no-op) if already present.
     */
    bool promote(const Word& u);

    /** Adds suffix @p e to E. Returns false (no-op) if present. */
    bool addSuffix(const Word& e);

    /**
     * Builds the hypothesis machine from a filled, closed table:
     * states are the distinct rows of S (state 0 = row(ε)),
     * transitions follow row(u·a), outputs come from the
     * single-symbol cells. Also returns, per state, the access word
     * (its S prefix) via @p accessWords when non-null.
     */
    MealyMachine
    buildHypothesis(std::vector<Word>* accessWords = nullptr) const;

  private:
    /**
     * Incrementally maintained row: the key accumulates cell outputs
     * suffix by suffix (cells are immutable once recorded, and E only
     * grows, so nothing ever invalidates).
     */
    struct RowCache
    {
        std::string key;
        std::size_t suffixesDone = 0;
    };

    /**
     * Advances @p row's cache over newly answerable suffixes; when
     * @p missing is non-null, unanswerable cell words are appended
     * there. Returns true iff the row is complete.
     */
    bool refreshRow(const Word& row, RowCache& cache,
                    std::vector<Word>* missing) const;

    /** Complete row key of @p row (requires all cells recorded). */
    const std::string& cachedRowKey(const Word& row) const;

    unsigned alphabet_;
    std::vector<Word> prefixes_;
    std::vector<Word> suffixes_;
    PrefixStore store_;
    mutable std::map<Word, RowCache> rowCache_;
};

} // namespace recap::learn

#endif // RECAP_LEARN_OBSERVATION_TABLE_HH_
