/**
 * @file
 * LearnedPolicy: a learned Mealy machine wrapped as a first-class
 * policy::ReplacementPolicy, so automata recovered by the active
 * learner plug into everything the rest of recap does with policies —
 * SetModel, cache::Cache, eval::simulate/sweep, the predictability
 * analysis, and the pipeline's agreement measurement.
 *
 * The adapter inverts the learner's abstraction: the machine speaks
 * "block accesses cause hit/miss", the policy interface speaks
 * "touch way / fill way / name a victim". It bridges the two by
 * maintaining the correspondence between ways and machine symbols
 * (a block-assignment map under concrete semantics, an access-recency
 * list under recency-role semantics) and by answering victim() with
 * fork-and-probe simulation: clone the machine state, feed one fresh
 * block, and probe which resident's next access turned into a miss —
 * that resident's way is the victim.
 *
 * victim() degrades gracefully (deepest/last candidate) when the
 * machine is not a perfect policy image; downstream agreement gates
 * catch such models instead of the adapter throwing mid-simulation.
 */

#ifndef RECAP_LEARN_LEARNED_POLICY_HH_
#define RECAP_LEARN_LEARNED_POLICY_HH_

#include <string>
#include <vector>

#include "recap/learn/lstar.hh"
#include "recap/learn/mealy.hh"
#include "recap/policy/policy.hh"

namespace recap::learn
{

/** A learned automaton acting as a replacement policy. */
class LearnedPolicy final : public policy::ReplacementPolicy
{
  public:
    /**
     * @param ways      Associativity the machine was learned at.
     * @param machine   Learned machine; alphabet must be >= ways + 1
     *                  (ways resident symbols plus one fresh block).
     * @param semantics Symbol semantics the machine was learned
     *                  under; the adapter tracks ways accordingly.
     * @param name      Reported policy name.
     */
    LearnedPolicy(unsigned ways, MealyMachine machine,
                  SymbolSemantics semantics,
                  std::string name = "Learned");

    void reset() override;
    void touch(policy::Way way) override;
    policy::Way victim() const override;
    void fill(policy::Way way) override;
    std::string name() const override;
    policy::PolicyPtr clone() const override;
    std::string stateKey() const override;

    /** The wrapped machine. */
    const MealyMachine& machine() const { return machine_; }

    /** The symbol semantics the adapter is tracking. */
    SymbolSemantics semantics() const { return semantics_; }

  private:
    /** Machine symbol currently standing for @p way's block. */
    Symbol symbolOf(policy::Way way) const;

    MealyMachine machine_;
    SymbolSemantics semantics_;
    std::string name_;

    /** Current machine state. */
    unsigned state_ = 0;

    /**
     * Concrete semantics: assignment_[w] = machine symbol of the
     * block in way w (kNone = invalid way).
     * Role semantics: recency_ lists ways by access recency, most
     * recent first, capped at alphabet-1 entries; kEvicted entries
     * are stale blocks that were evicted but still occupy a recency
     * rank (role ranks count accesses, not residency).
     */
    std::vector<int> assignment_;
    std::vector<int> recency_;

    static constexpr int kNone = -1;
    static constexpr int kEvicted = -2;
};

} // namespace recap::learn

#endif // RECAP_LEARN_LEARNED_POLICY_HH_
