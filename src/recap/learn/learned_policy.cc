#include "recap/learn/learned_policy.hh"

#include <algorithm>
#include <sstream>

#include "recap/common/error.hh"

namespace recap::learn
{

LearnedPolicy::LearnedPolicy(unsigned ways, MealyMachine machine,
                             SymbolSemantics semantics,
                             std::string name)
    : ReplacementPolicy(ways), machine_(std::move(machine)),
      semantics_(semantics), name_(std::move(name))
{
    require(machine_.numStates() >= 1,
            "LearnedPolicy: empty machine");
    require(machine_.alphabet() >= ways + 1,
            "LearnedPolicy: alphabet must cover ways + 1 symbols");
    reset();
}

void
LearnedPolicy::reset()
{
    state_ = 0;
    assignment_.assign(ways_, kNone);
    recency_.clear();
}

Symbol
LearnedPolicy::symbolOf(policy::Way way) const
{
    if (semantics_ == SymbolSemantics::kConcreteBlocks) {
        const int sym = assignment_[way];
        require(sym != kNone,
                "LearnedPolicy: way has no assigned symbol");
        return static_cast<Symbol>(sym);
    }
    const auto it = std::find(recency_.begin(), recency_.end(),
                              static_cast<int>(way));
    if (it == recency_.end()) {
        // The way's block fell off the trackable recency window
        // (deeper than the machine's role alphabet). Degrade to the
        // fresh symbol: inexact, but downstream agreement gates are
        // the safety net, not exceptions mid-simulation.
        return machine_.alphabet() - 1;
    }
    return static_cast<Symbol>(it - recency_.begin());
}

void
LearnedPolicy::touch(policy::Way way)
{
    checkWay(way);
    const Symbol symbol = symbolOf(way);
    state_ = machine_.next(state_, symbol);
    if (semantics_ == SymbolSemantics::kRecencyRoles) {
        const auto it = std::find(recency_.begin(), recency_.end(),
                                  static_cast<int>(way));
        if (it != recency_.end())
            recency_.erase(it);
        recency_.insert(recency_.begin(), static_cast<int>(way));
        if (recency_.size() >= machine_.alphabet())
            recency_.resize(machine_.alphabet() - 1);
    }
}

void
LearnedPolicy::fill(policy::Way way)
{
    checkWay(way);
    if (semantics_ == SymbolSemantics::kRecencyRoles) {
        // The way's previous block (if any) is evicted but keeps its
        // recency rank; the incoming block becomes rank 0.
        for (int& entry : recency_) {
            if (entry == static_cast<int>(way))
                entry = kEvicted;
        }
        state_ = machine_.next(state_, machine_.alphabet() - 1);
        recency_.insert(recency_.begin(), static_cast<int>(way));
        if (recency_.size() >= machine_.alphabet())
            recency_.resize(machine_.alphabet() - 1);
        return;
    }

    // Concrete semantics: the incoming block is the smallest symbol
    // not standing for any resident.
    std::vector<bool> used(machine_.alphabet(), false);
    for (int sym : assignment_) {
        if (sym != kNone)
            used[static_cast<std::size_t>(sym)] = true;
    }
    Symbol fresh = 0;
    while (fresh < machine_.alphabet() && used[fresh])
        ++fresh;
    ensure(fresh < machine_.alphabet(),
           "LearnedPolicy: no fresh symbol available");
    const int oldSym = assignment_[way];
    const unsigned nextState = machine_.next(state_, fresh);

    if (oldSym != kNone) {
        // The machine evicted exactly one resident on this miss;
        // if it was not this way's block, realign the assignment so
        // the machine's residents keep matching the cache's.
        int evicted = kNone;
        unsigned evictedCount = 0;
        for (int sym : assignment_) {
            if (sym != kNone &&
                !machine_.output(nextState,
                                 static_cast<Symbol>(sym))) {
                evicted = sym;
                ++evictedCount;
            }
        }
        if (evictedCount == 1 && evicted != oldSym) {
            for (policy::Way w = 0; w < ways_; ++w) {
                if (assignment_[w] == evicted)
                    assignment_[w] = oldSym;
            }
        }
    }
    assignment_[way] = static_cast<int>(fresh);
    state_ = nextState;
}

policy::Way
LearnedPolicy::victim() const
{
    // Invalid ways are filled cold, lowest first, before the policy
    // logic is consulted (matching SetModel / cache::Cache).
    if (semantics_ == SymbolSemantics::kConcreteBlocks) {
        for (policy::Way w = 0; w < ways_; ++w) {
            if (assignment_[w] == kNone)
                return w;
        }
    } else {
        for (policy::Way w = 0; w < ways_; ++w) {
            if (std::find(recency_.begin(), recency_.end(),
                          static_cast<int>(w)) == recency_.end())
                return w;
        }
    }

    // Fork-and-probe: feed one fresh block, then ask the machine
    // which resident's next access now misses — that one was
    // evicted. (A probe is a single output lookup; it does not
    // advance any state.)
    std::vector<policy::Way> misses;
    if (semantics_ == SymbolSemantics::kConcreteBlocks) {
        std::vector<bool> used(machine_.alphabet(), false);
        for (int sym : assignment_)
            if (sym != kNone)
                used[static_cast<std::size_t>(sym)] = true;
        Symbol fresh = 0;
        while (fresh < machine_.alphabet() && used[fresh])
            ++fresh;
        ensure(fresh < machine_.alphabet(),
               "LearnedPolicy: no fresh symbol available");
        const unsigned simState = machine_.next(state_, fresh);
        for (policy::Way w = 0; w < ways_; ++w) {
            if (!machine_.output(
                    simState,
                    static_cast<Symbol>(assignment_[w]))) {
                misses.push_back(w);
            }
        }
    } else {
        const unsigned simState =
            machine_.next(state_, machine_.alphabet() - 1);
        // Post-fill, every tracked entry shifts one rank deeper.
        std::vector<int> shifted = recency_;
        shifted.insert(shifted.begin(), kEvicted);
        for (policy::Way w = 0; w < ways_; ++w) {
            const auto it = std::find(shifted.begin(), shifted.end(),
                                      static_cast<int>(w));
            if (it == shifted.end() ||
                static_cast<unsigned>(it - shifted.begin()) + 1 >=
                    machine_.alphabet()) {
                // Unprobeable: deeper than the role window; treat as
                // the eviction candidate of last resort.
                misses.push_back(w);
                continue;
            }
            const Symbol rank =
                static_cast<Symbol>(it - shifted.begin());
            if (!machine_.output(simState, rank))
                misses.push_back(w);
        }
    }
    if (misses.size() == 1)
        return misses.front();
    if (!misses.empty())
        return misses.front();
    // No probe missed: the machine is not a perfect policy image.
    // Fall back to the last way; agreement measurement downstream
    // exposes such models.
    return ways_ - 1;
}

std::string
LearnedPolicy::name() const
{
    return name_;
}

policy::PolicyPtr
LearnedPolicy::clone() const
{
    return std::make_unique<LearnedPolicy>(*this);
}

std::string
LearnedPolicy::stateKey() const
{
    std::ostringstream os;
    os << "learned:"
       << (semantics_ == SymbolSemantics::kConcreteBlocks ? "c" : "r")
       << ":" << state_ << ":";
    if (semantics_ == SymbolSemantics::kConcreteBlocks) {
        for (int sym : assignment_)
            os << sym << ",";
    } else {
        for (int entry : recency_)
            os << entry << ",";
    }
    return os.str();
}

} // namespace recap::learn
