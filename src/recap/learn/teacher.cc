#include "recap/learn/teacher.hh"

#include "recap/common/error.hh"

namespace recap::learn
{

namespace
{

/** Compiles a word into an observe-every-position query. */
query::CompiledQuery
wordQuery(const Word& word)
{
    std::vector<query::BlockId> blocks;
    blocks.reserve(word.size());
    for (Symbol symbol : word)
        blocks.push_back(static_cast<query::BlockId>(symbol) + 1);
    return query::makeObserveAllQuery(blocks);
}

} // namespace

OracleTeacher::OracleTeacher(query::QueryOracle& oracle,
                             const query::BatchOptions& batch)
    : oracle_(oracle), batch_(batch)
{}

unsigned
OracleTeacher::ways() const
{
    return oracle_.ways();
}

std::string
OracleTeacher::describe() const
{
    return "teacher over " + oracle_.describe();
}

std::vector<TeacherAnswer>
OracleTeacher::answer(const std::vector<Word>& words)
{
    std::vector<query::CompiledQuery> queries;
    queries.reserve(words.size());
    for (const Word& word : words) {
        require(!word.empty(), "OracleTeacher: empty word");
        queries.push_back(wordQuery(word));
    }

    const uint64_t expBefore = oracle_.experimentsRun();
    const uint64_t accBefore = oracle_.accessesIssued();
    const auto verdicts =
        oracle_.evaluateBatch(queries, batch_, &stats_);
    experiments_ += oracle_.experimentsRun() - expBefore;
    accesses_ += oracle_.accessesIssued() - accBefore;
    wordsAsked_ += words.size();

    std::vector<TeacherAnswer> answers(words.size());
    for (std::size_t i = 0; i < words.size(); ++i) {
        const query::QueryVerdict& verdict = verdicts[i];
        ensure(verdict.probes.size() == words[i].size(),
               "OracleTeacher: probe count mismatch");
        TeacherAnswer& answer = answers[i];
        answer.outputs.reserve(words[i].size());
        for (const query::ProbeOutcome& probe : verdict.probes) {
            answer.outputs.push_back(probe.hit);
            answer.determined =
                answer.determined && probe.determined;
            answer.confidence =
                std::min(answer.confidence, probe.confidence);
        }
    }
    return answers;
}

PrefixStore::Recording
PrefixStore::record(const Word& word, const std::vector<bool>& outputs)
{
    require(word.size() == outputs.size(),
            "PrefixStore::record: length mismatch");
    Recording recording;
    Word prefix;
    prefix.reserve(word.size());
    for (std::size_t i = 0; i < word.size(); ++i) {
        prefix.push_back(word[i]);
        const auto [it, inserted] =
            outcomes_.try_emplace(prefix, outputs[i]);
        if (!inserted && it->second != outputs[i]) {
            recording.consistent = false;
            recording.conflictAt = i + 1;
            return recording;
        }
    }
    return recording;
}

int
PrefixStore::lookup(const Word& word) const
{
    const auto it = outcomes_.find(word);
    if (it == outcomes_.end())
        return -1;
    return it->second ? 1 : 0;
}

uint64_t
PrefixStore::countMismatches(const MealyMachine& machine) const
{
    uint64_t mismatches = 0;
    for (const auto& [word, outcome] : outcomes_)
        if (machine.lastOutput(word) != outcome)
            ++mismatches;
    return mismatches;
}

std::optional<Word>
PrefixStore::firstMismatch(const MealyMachine& machine) const
{
    std::optional<Word> best;
    for (const auto& [word, outcome] : outcomes_) {
        if (best && word.size() >= best->size())
            continue;
        if (machine.lastOutput(word) != outcome)
            best = word;
    }
    return best;
}

} // namespace recap::learn
