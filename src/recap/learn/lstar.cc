#include "recap/learn/lstar.hh"

#include <algorithm>

#include "recap/common/error.hh"
#include "recap/common/parallel.hh"
#include "recap/common/rng.hh"

namespace recap::learn
{

namespace
{

/** u · v[from:]. */
Word
spliced(const Word& u, const Word& v, std::size_t from)
{
    Word word = u;
    word.insert(word.end(), v.begin() + from, v.end());
    return word;
}

} // namespace

LStarLearner::LStarLearner(Teacher& teacher,
                           const LearnOptions& options)
    : teacher_(teacher), options_(options),
      alphabet_(options.alphabet != 0 ? options.alphabet
                                      : teacher.ways() + 1),
      table_(alphabet_)
{
    require(alphabet_ >= 2, "LStarLearner: alphabet too small");
}

void
LStarLearner::setReference(const MealyMachine& reference)
{
    require(reference.alphabet() == alphabet_,
            "LStarLearner::setReference: alphabet mismatch");
    reference_ = reference;
}

Word
LStarLearner::concretize(const Word& word, SymbolSemantics semantics,
                         unsigned alphabet)
{
    if (semantics == SymbolSemantics::kConcreteBlocks) {
        Word concrete;
        concrete.reserve(word.size());
        for (Symbol symbol : word)
            concrete.push_back(symbol + 1);
        return concrete;
    }

    // Recency roles: symbol s < alphabet-1 names the (s+1)-th most
    // recently accessed distinct block of the word so far; the last
    // symbol (and any rank beyond the current distinct count) names
    // a fresh block. Block ids are handed out from 1 upward in order
    // of first appearance, so equal role words instantiate to equal
    // concrete words.
    Word concrete;
    concrete.reserve(word.size());
    std::vector<Symbol> recency; // most recent first
    Symbol nextFresh = 1;
    for (Symbol symbol : word) {
        Symbol block;
        if (symbol + 1 < alphabet &&
            static_cast<std::size_t>(symbol) < recency.size()) {
            block = recency[symbol];
            recency.erase(recency.begin() + symbol);
        } else {
            block = nextFresh++;
        }
        recency.insert(recency.begin(), block);
        concrete.push_back(block);
    }
    return concrete;
}

void
LStarLearner::abstain(const std::string& reason)
{
    abstained_ = true;
    if (!diagnostics_.empty())
        diagnostics_ += "; ";
    diagnostics_ += reason;
}

bool
LStarLearner::ask(const std::vector<Word>& words)
{
    if (words.empty())
        return true;
    if (teacher_.wordsAsked() + words.size() > options_.maxWords) {
        abstain("membership budget exhausted (" +
                std::to_string(options_.maxWords) + " words)");
        return false;
    }

    std::vector<Word> concrete;
    concrete.reserve(words.size());
    for (const Word& word : words) {
        concrete.push_back(
            concretize(word, options_.semantics, alphabet_));
    }
    const std::vector<TeacherAnswer> answers =
        teacher_.answer(concrete);
    ensure(answers.size() == words.size(),
           "LStarLearner: teacher answer count mismatch");

    for (std::size_t i = 0; i < words.size(); ++i) {
        const TeacherAnswer& answer = answers[i];
        teacherConfidence_ =
            std::min(teacherConfidence_, answer.confidence);
        if (!answer.determined) {
            abstain("teacher answer without quorum (word length " +
                    std::to_string(words[i].size()) + ")");
            return false;
        }
        if (answer.confidence < options_.minConfidence) {
            abstain("teacher confidence below threshold");
            return false;
        }
        const PrefixStore::Recording recording =
            table_.store().record(words[i], answer.outputs);
        if (!recording.consistent) {
            abstain("teacher answers are inconsistent (conflict at "
                    "prefix length " +
                    std::to_string(recording.conflictAt) +
                    "): garbled or non-deterministic target");
            return false;
        }
    }
    return true;
}

bool
LStarLearner::closeTable()
{
    for (;;) {
        if (!ask(table_.missingWords()))
            return false;
        if (table_.prefixes().size() > options_.maxStates) {
            abstain("state budget exceeded (" +
                    std::to_string(options_.maxStates) +
                    " states); policy state space too large for "
                    "this semantics");
            return false;
        }
        Word witness;
        if (table_.isClosed(&witness))
            return true;
        table_.promote(witness);
    }
}

bool
LStarLearner::processCounterexample(
    const Word& ce, const MealyMachine& hypothesis,
    const std::vector<Word>& accessWords)
{
    const std::size_t m = ce.size();
    if (m < 2) {
        // Length-1 counterexamples cannot exist: E contains every
        // single symbol and state 0 is represented by ε.
        abstain("degenerate counterexample");
        return false;
    }

    // accessString(i) = the S word representing the hypothesis state
    // reached after ce[:i].
    std::vector<unsigned> stateAfter(m);
    {
        unsigned state = 0;
        for (std::size_t i = 0; i < m; ++i) {
            state = i == 0 ? 0 : hypothesis.next(state, ce[i - 1]);
            stateAfter[i] = state;
        }
    }
    const auto dValue = [&](std::size_t i) -> int {
        const Word word = spliced(accessWords[stateAfter[i]], ce, i);
        const int known = table_.store().lookup(word);
        if (known >= 0)
            return known;
        if (!ask({word}))
            return -1;
        return table_.store().lookup(word);
    };

    // Rivest–Schapire: d(0) = SUL(ce) and d(m-1) = the hypothesis
    // prediction differ; binary-search the flip point.
    const int d0 = dValue(0);
    std::size_t lo = 0;
    std::size_t hi = m - 1;
    const int dHi = dValue(hi);
    if (d0 < 0 || dHi < 0)
        return false;
    if (d0 == dHi) {
        abstain("counterexample reduction failed (teacher drift?)");
        return false;
    }
    // Invariant: d(lo) == d0 != d(hi).
    while (hi - lo > 1) {
        const std::size_t mid = lo + (hi - lo) / 2;
        const int dMid = dValue(mid);
        if (dMid < 0)
            return false;
        if (dMid == d0)
            lo = mid;
        else
            hi = mid;
    }

    // The suffix ce[lo+1:] distinguishes two rows the hypothesis
    // currently merges.
    Word suffix(ce.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
                ce.end());
    if (table_.addSuffix(suffix))
        return true;
    // Fallback (should not trigger): add the longest new suffix of
    // the counterexample so the loop always makes progress.
    for (std::size_t from = 0; from < m; ++from) {
        Word candidate(ce.begin() + static_cast<std::ptrdiff_t>(from),
                       ce.end());
        if (table_.addSuffix(candidate))
            return true;
    }
    abstain("counterexample yields no new suffix");
    return false;
}

std::optional<Word>
LStarLearner::findCounterexample(const MealyMachine& hypothesis,
                                 const std::vector<Word>& accessWords,
                                 unsigned round)
{
    equivalenceWords_ = 0;

    // (a) Free pass: every recorded word is evidence; a hypothesis
    // that mispredicts any of them is refuted without new queries.
    if (const auto recorded = table_.store().firstMismatch(hypothesis))
        return recorded;

    // All hypothesis-side simulation below runs through the
    // unchecked raw-table walker; symbols come from this learner's
    // own alphabet, so the elided range checks cannot fire.
    const MealyMachine::Walker walker(hypothesis);

    // Given a batch of asked words, return the shortest prefix of
    // any of them where store and hypothesis disagree.
    std::vector<bool> predicted;
    const auto scan =
        [&](const std::vector<Word>& words) -> std::optional<Word> {
        std::optional<Word> best;
        for (const Word& word : words) {
            walker.run(word, predicted);
            Word prefix;
            for (std::size_t i = 0; i < word.size(); ++i) {
                prefix.push_back(word[i]);
                if (best && prefix.size() >= best->size())
                    break;
                const int actual = table_.store().lookup(prefix);
                ensure(actual >= 0, "equivalence word not recorded");
                if (actual != static_cast<int>(predicted[i])) {
                    best = prefix;
                    break;
                }
            }
        }
        return best;
    };

    // (b) Perfect oracle, when a reference machine is available.
    if (reference_) {
        const Word ce = reference_->distinguishingWord(hypothesis);
        if (ce.empty()) {
            complete_ = true;
            return std::nullopt;
        }
        if (!ask({ce}))
            return std::nullopt;
        const auto found = scan({ce});
        if (!found) {
            abstain("reference counterexample not reproduced by "
                    "teacher (mismatched reference?)");
            return std::nullopt;
        }
        return found;
    }

    // (c) Random words, one derived stream per refinement round.
    Rng rng(deriveTaskSeed(options_.seed, round));
    const unsigned maxLen = options_.randomWordLength != 0
                                ? options_.randomWordLength
                                : 4 * teacher_.ways() + 4;
    std::vector<Word> randomWords;
    randomWords.reserve(options_.randomWordsPerRound);
    for (unsigned i = 0; i < options_.randomWordsPerRound; ++i) {
        Word word(rng.nextInRange(1, maxLen));
        for (Symbol& symbol : word)
            symbol = static_cast<Symbol>(rng.nextBelow(alphabet_));
        randomWords.push_back(std::move(word));
    }
    if (!ask(randomWords))
        return std::nullopt;
    if (auto found = scan(randomWords))
        return found;
    equivalenceWords_ += randomWords.size();

    // (d) Bounded W-method: transition cover x middles up to the
    // depth x the table's distinguishing suffixes. Complete whenever
    // the true machine has at most states + depth states.
    if (!options_.wMethod)
        return std::nullopt;
    std::vector<Word> middles{{}};
    for (unsigned d = 0; d < options_.wMethodDepth; ++d) {
        std::vector<Word> grown;
        for (const Word& mid : middles) {
            if (mid.size() != d)
                continue;
            for (Symbol a = 0; a < alphabet_; ++a) {
                Word next = mid;
                next.push_back(a);
                grown.push_back(std::move(next));
            }
        }
        middles.insert(middles.end(), grown.begin(), grown.end());
    }
    const uint64_t suiteSize =
        static_cast<uint64_t>(accessWords.size()) * (1 + alphabet_) *
        middles.size() * table_.suffixes().size();
    if (suiteSize > options_.wMethodMaxWords) {
        // Too large to run; random testing remains the only
        // evidence. Flag it so reports stay honest about how weakly
        // the final hypothesis was tested.
        if (diagnostics_.find("W-method skipped") ==
            std::string::npos) {
            if (!diagnostics_.empty())
                diagnostics_ += "; ";
            diagnostics_ += "W-method skipped (suite of " +
                            std::to_string(suiteSize) +
                            " words exceeds bound)";
        }
        return std::nullopt;
    }
    std::vector<Word> suite;
    suite.reserve(suiteSize);
    for (const Word& access : accessWords) {
        for (Symbol a = 0; a <= alphabet_; ++a) {
            Word base = access;
            if (a < alphabet_)
                base.push_back(a);
            for (const Word& mid : middles) {
                for (const Word& e : table_.suffixes()) {
                    Word word = base;
                    word.insert(word.end(), mid.begin(), mid.end());
                    word.insert(word.end(), e.begin(), e.end());
                    suite.push_back(std::move(word));
                }
            }
        }
    }

    // Hypothesis-side predictions run under the deterministic
    // parallel engine; the SUL side is one prefix-shared batch.
    std::vector<uint8_t> suitePredicted(suite.size());
    parallelFor(suite.size(), options_.numThreads,
                [&](std::size_t i) {
                    suitePredicted[i] =
                        walker.lastOutput(suite[i]) ? 1 : 0;
                });
    if (!ask(suite))
        return std::nullopt;
    std::optional<Word> best;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const int actual = table_.store().lookup(suite[i]);
        ensure(actual >= 0, "W-method word not recorded");
        if (actual != suitePredicted[i] &&
            (!best || suite[i].size() < best->size())) {
            best = suite[i];
        }
    }
    if (best) {
        // Shorten to the first position where outputs diverge.
        return scan({*best});
    }
    equivalenceWords_ += suite.size();
    return std::nullopt;
}

LearnResult
LStarLearner::run()
{
    LearnResult result;
    result.semantics = options_.semantics;

    MealyMachine learned;
    std::vector<Word> accessWords;
    unsigned refinements = 0;
    bool converged = false;

    for (unsigned round = 0;; ++round) {
        if (round >= options_.maxRounds) {
            abstain("refinement budget exhausted");
            break;
        }
        if (!closeTable())
            break;
        MealyMachine hypothesis = table_.buildHypothesis(&accessWords);
        if (hypothesis.numStates() > options_.maxStates) {
            abstain("state budget exceeded");
            break;
        }
        const std::optional<Word> ce =
            findCounterexample(hypothesis, accessWords, round);
        if (abstained_)
            break;
        if (!ce) {
            learned = std::move(hypothesis);
            converged = true;
            break;
        }
        if (!processCounterexample(*ce, hypothesis, accessWords))
            break;
        ++refinements;
    }

    result.membershipWords = teacher_.wordsAsked();
    result.accessesUsed = teacher_.accessesUsed();
    result.experimentsUsed = teacher_.experimentsUsed();
    result.refinements = refinements;
    result.suffixCount =
        static_cast<unsigned>(table_.suffixes().size());
    result.teacherConfidence = teacherConfidence_;
    result.diagnostics = diagnostics_;
    if (converged) {
        result.outcome = LearnOutcome::kLearned;
        result.machine = std::move(learned);
        result.states = result.machine.numStates();
        result.equivalenceWords = equivalenceWords_;
        result.equivalenceConfidence =
            complete_ ? 1.0
                      : 1.0 - 1.0 / (1.0 + static_cast<double>(
                                               equivalenceWords_));
    }
    return result;
}

} // namespace recap::learn
