/**
 * @file
 * Active learning of replacement-policy automata: L* over an
 * observation table with Rivest–Schapire counterexample processing.
 *
 * The learner asks a Teacher membership words (access sequences from
 * a flushed set, every hit/miss observed), fills an ObservationTable
 * batch-wise (so the rows ride the prefix-sharing evaluator), closes
 * it, and proposes a Mealy hypothesis. An equivalence phase then
 * hunts for counterexamples three ways: replaying all evidence in
 * the PrefixStore, random words from a deriveTaskSeed-derived stream,
 * and a bounded W-method pass (complete up to an assumed extra-state
 * depth; the hypothesis side of the pass runs under parallelFor).
 * Each counterexample is reduced by the Rivest–Schapire binary
 * search to a single new distinguishing suffix.
 *
 * Two symbol semantics are supported:
 *  - kConcreteBlocks: learner symbol s is block s+1. Exact — the
 *    learned machine is the SUL's machine over alphabet blocks — but
 *    the state space is the concrete (contents, policy) space, which
 *    grows combinatorially with associativity.
 *  - kRecencyRoles: learner symbol s < ways is "the (s+1)-th most
 *    recently accessed distinct block of the word so far" and symbol
 *    ways is "a fresh block". Words are instantiated to concrete
 *    blocks on the fly. For renaming-invariant policies whose state
 *    is determined by access recency (LRU above all), this quotients
 *    away block identity and keeps the table tiny even at
 *    associativity 8; policies whose state embeds way order still
 *    blow up and end in a clean abstention.
 *
 * The learner never returns a guess: any undetermined teacher answer
 * (no vote quorum), any PrefixStore conflict (garbled teacher), or
 * any exhausted budget yields LearnOutcome::kAbstained with
 * diagnostics instead of a possibly-wrong automaton.
 */

#ifndef RECAP_LEARN_LSTAR_HH_
#define RECAP_LEARN_LSTAR_HH_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "recap/learn/mealy.hh"
#include "recap/learn/observation_table.hh"
#include "recap/learn/teacher.hh"

namespace recap::learn
{

/** Meaning of the learner's input symbols. */
enum class SymbolSemantics
{
    /** Symbol s = concrete block s+1 (exact, combinatorial). */
    kConcreteBlocks,

    /** Symbols are recency ranks + "fresh" (symmetry-reduced). */
    kRecencyRoles,
};

/** Learner configuration. */
struct LearnOptions
{
    /**
     * Learner alphabet size; 0 selects ways + 1 (enough to exhibit
     * every behaviour of a way-indexed policy in either semantics).
     */
    unsigned alphabet = 0;

    /** Symbol semantics (see SymbolSemantics). */
    SymbolSemantics semantics = SymbolSemantics::kConcreteBlocks;

    /**
     * Root seed. Every random-word equivalence round r draws from
     * Rng(deriveTaskSeed(seed, r)), so runs replay bit-for-bit.
     */
    uint64_t seed = 1;

    /**
     * Worker threads for the hypothesis side of the W-method pass
     * (0 = hardware threads, 1 = serial). Results are identical for
     * any value, per the parallelFor contract.
     */
    unsigned numThreads = 1;

    /** Abstain after this many membership words. */
    uint64_t maxWords = 2'000'000;

    /** Abstain when the hypothesis exceeds this many states. */
    unsigned maxStates = 8192;

    /** Abstain after this many refinement rounds. */
    unsigned maxRounds = 10'000;

    /** Random equivalence words tested per round. */
    unsigned randomWordsPerRound = 256;

    /** Random word length (0 selects 4 * ways + 4). */
    unsigned randomWordLength = 0;

    /** Run the bounded W-method pass when true. */
    bool wMethod = true;

    /** W-method extra-state depth (middle-section length bound). */
    unsigned wMethodDepth = 1;

    /**
     * Skip the W-method when its suite would exceed this many words
     * (it degenerates on huge hypotheses; random testing continues,
     * and the reported equivalence confidence stays low). The policy
     * backend absorbs ~1M words in seconds thanks to prefix sharing;
     * measuring backends should lower this along with maxWords.
     */
    uint64_t wMethodMaxWords = 2'000'000;

    /** Abstain when any answer's confidence falls below this. */
    double minConfidence = 0.0;
};

/** Outcome class: the learner never returns a silent guess. */
enum class LearnOutcome
{
    /** Converged; machine passed every equivalence check. */
    kLearned,

    /** No trustworthy automaton (noise, conflict, or budget). */
    kAbstained,
};

/** Result of a learning run. */
struct LearnResult
{
    LearnOutcome outcome = LearnOutcome::kAbstained;

    /** The learned machine (valid iff outcome == kLearned). */
    MealyMachine machine;

    /** Symbol semantics the machine's alphabet uses. */
    SymbolSemantics semantics = SymbolSemantics::kConcreteBlocks;

    /** States of the learned machine. */
    unsigned states = 0;

    /** Membership words asked. */
    uint64_t membershipWords = 0;

    /** Accesses those words cost (teacher accounting). */
    uint64_t accessesUsed = 0;

    /** Experiments those words cost (teacher accounting). */
    uint64_t experimentsUsed = 0;

    /** Counterexamples processed (equals suffixes added). */
    unsigned refinements = 0;

    /** Final distinguishing-suffix count |E|. */
    unsigned suffixCount = 0;

    /** Equivalence-test words the final hypothesis survived. */
    uint64_t equivalenceWords = 0;

    /**
     * Confidence heuristic in [0, 1): 1 - 1/(1 + survived
     * equivalence words). 1.0 exactly when a complete (W-method
     * within depth, or exact-reference) pass was run.
     */
    double equivalenceConfidence = 0.0;

    /** Lowest teacher answer confidence seen. */
    double teacherConfidence = 1.0;

    /** Human-readable outcome notes (abstention reasons etc.). */
    std::string diagnostics;
};

/**
 * The L* learner. Borrows a Teacher; run() performs one complete
 * learning session.
 */
class LStarLearner
{
  public:
    explicit LStarLearner(Teacher& teacher,
                          const LearnOptions& options = {});

    /**
     * Optional perfect equivalence oracle: when set, each hypothesis
     * is compared against this reference machine (same alphabet and
     * semantics) by product BFS instead of sampling — used by tests
     * and benches where ground truth exists.
     */
    void setReference(const MealyMachine& reference);

    /** Runs the learning session. */
    LearnResult run();

    /** The observation table (inspectable after run()). */
    const ObservationTable& table() const { return table_; }

    /**
     * Instantiates a learner-alphabet word to concrete block ids
     * (1-based) under @p semantics; identity+1 for concrete blocks,
     * recency-rank resolution for roles. Exposed for the adapter and
     * tests.
     */
    static Word concretize(const Word& word,
                           SymbolSemantics semantics,
                           unsigned alphabet);

  private:
    /**
     * Asks the teacher all of @p words (already learner-alphabet),
     * records answers in the store; returns false (with diagnostics)
     * when the learner must abstain.
     */
    bool ask(const std::vector<Word>& words);

    /** Fills and closes the table; false = abstain. */
    bool closeTable();

    /**
     * Rivest–Schapire: reduces counterexample @p ce (learner word
     * whose recorded SUL output differs from the hypothesis) to one
     * distinguishing suffix added to E. False = abstain.
     */
    bool processCounterexample(const Word& ce,
                               const MealyMachine& hypothesis,
                               const std::vector<Word>& accessWords);

    /**
     * Hunts for a counterexample: store replay, random words, then
     * the bounded W-method. Returns the counterexample, or nullopt
     * when the hypothesis survived (equivalenceWords_ updated).
     * Sets abstain_ on teacher failure.
     */
    std::optional<Word>
    findCounterexample(const MealyMachine& hypothesis,
                       const std::vector<Word>& accessWords,
                       unsigned round);

    void abstain(const std::string& reason);

    Teacher& teacher_;
    LearnOptions options_;
    unsigned alphabet_ = 0;
    ObservationTable table_;
    std::optional<MealyMachine> reference_;
    bool abstained_ = false;
    bool complete_ = false;
    uint64_t equivalenceWords_ = 0;
    double teacherConfidence_ = 1.0;
    std::string diagnostics_;
};

} // namespace recap::learn

#endif // RECAP_LEARN_LSTAR_HH_
