/**
 * @file
 * Mealy-machine representation of a replacement policy's observable
 * behaviour, the artifact the active learner produces.
 *
 * The machine's inputs are abstract block accesses (symbol s stands
 * for block id s+1 of one cache set, counted from a flush) and its
 * single-bit output is the hit/miss answer of that access. This is
 * exactly the automaton the paper's formalism reasons about, made
 * explicit: a state is a (contents, policy-state) class, and two
 * policies are behaviourally equivalent iff their machines are.
 *
 * Besides the plain transition structure, this file provides the
 * operations the learning stack needs:
 *  - minimize(): Moore partition refinement to the canonical minimal
 *    machine (the learner's hypotheses are minimal by construction;
 *    ground-truth extractions may not be),
 *  - isomorphicTo(): exact isomorphism of reachable parts (the
 *    strongest form of "learned it right", used by the differential
 *    tests at small associativity),
 *  - automatonOfPolicy(): exact extraction of the machine of a known
 *    policy::ReplacementPolicy by breadth-first exploration over
 *    SetModel state keys — the ground truth the learner is judged
 *    against, and the input of the recap-dot tool,
 *  - toDot(): Graphviz rendering.
 */

#ifndef RECAP_LEARN_MEALY_HH_
#define RECAP_LEARN_MEALY_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "recap/policy/policy.hh"

namespace recap::learn
{

/** Input symbol: block id (symbol + 1) of the probed set. */
using Symbol = uint32_t;

/** An input word (access sequence from a flushed set). */
using Word = std::vector<Symbol>;

/**
 * A deterministic Mealy machine over a dense symbol alphabet with
 * boolean (hit/miss) outputs.
 */
class MealyMachine
{
  public:
    MealyMachine() = default;

    /**
     * @param numStates Number of states; state 0 is initial.
     * @param alphabet  Number of input symbols.
     * Transitions start as self-loops with miss outputs.
     */
    MealyMachine(unsigned numStates, unsigned alphabet);

    unsigned numStates() const { return numStates_; }
    unsigned alphabet() const { return alphabet_; }

    /** Sets the transition state x symbol -> (next, output). */
    void setTransition(unsigned state, Symbol symbol, unsigned next,
                       bool output);

    /** Successor state of @p state on @p symbol. */
    unsigned next(unsigned state, Symbol symbol) const;

    /** Output (true = hit) of @p symbol taken in @p state. */
    bool output(unsigned state, Symbol symbol) const;

    /**
     * Runs @p word from the initial state and returns the per-symbol
     * hit/miss outputs.
     */
    std::vector<bool> run(const Word& word) const;

    /** Output of the last symbol of @p word (requires non-empty). */
    bool lastOutput(const Word& word) const;

    /**
     * Borrowed raw-table view for hot loops (the W-method suite runs
     * millions of words through one fixed hypothesis). Elides the
     * per-symbol range checks of next()/output(): the caller
     * guarantees every symbol is < alphabet(). Must not outlive, or
     * observe mutation of, the machine it was taken from.
     */
    class Walker
    {
      public:
        explicit Walker(const MealyMachine& machine)
            : next_(machine.next_.data()), output_(&machine.output_),
              alphabet_(machine.alphabet_)
        {}

        /** Output of the last symbol of @p word (non-empty). */
        bool lastOutput(const Word& word) const
        {
            uint32_t state = 0;
            for (std::size_t i = 0; i + 1 < word.size(); ++i)
                state = next_[std::size_t{state} * alphabet_ +
                              word[i]];
            return (*output_)[std::size_t{state} * alphabet_ +
                              word.back()];
        }

        /** Per-symbol outputs of @p word, into a reused buffer. */
        void run(const Word& word, std::vector<bool>& outputs) const
        {
            outputs.clear();
            outputs.reserve(word.size());
            uint32_t state = 0;
            for (Symbol symbol : word) {
                const std::size_t i =
                    std::size_t{state} * alphabet_ + symbol;
                outputs.push_back((*output_)[i]);
                state = next_[i];
            }
        }

      private:
        const uint32_t* next_;
        const std::vector<bool>* output_;
        unsigned alphabet_;
    };

    /**
     * The canonical minimal machine of the reachable part: states
     * merged by behavioural equivalence (Moore partition refinement)
     * and renumbered in BFS order from the initial state with
     * ascending-symbol edge exploration. Two machines are
     * behaviourally equivalent iff their minimized forms are
     * isomorphic — and minimized forms are isomorphic iff they are
     * *identical*, because the BFS numbering is canonical.
     */
    MealyMachine minimized() const;

    /**
     * True iff the reachable parts are isomorphic: same alphabet and
     * a bijection of reachable states preserving initial state,
     * transitions, and outputs.
     */
    bool isomorphicTo(const MealyMachine& other) const;

    /**
     * A shortest input word on which the two machines' outputs
     * differ; empty when behaviourally equivalent. Machines must
     * share the alphabet size.
     */
    Word distinguishingWord(const MealyMachine& other) const;

    /**
     * Graphviz DOT rendering. Edges are labelled
     * "b<id>/hit|miss"; parallel edges between the same state pair
     * are merged onto one arrow with comma-joined labels.
     * @param title Graph label ("" = none).
     */
    std::string toDot(const std::string& title = "") const;

  private:
    unsigned numStates_ = 0;
    unsigned alphabet_ = 0;
    /** next_[state * alphabet_ + symbol]. */
    std::vector<uint32_t> next_;
    /** output_[state * alphabet_ + symbol]. */
    std::vector<bool> output_;
};

/**
 * Extracts the exact Mealy machine of @p policy over @p alphabet
 * distinct blocks by BFS over SetModel states (contents + policy
 * state, canonicalized by SetModel::stateKey). The result is the
 * reachable ground-truth automaton the learner should recover;
 * minimize() it before isomorphism comparisons.
 *
 * @param alphabet  Block alphabet size; ways + 1 spans every
 *                  behaviour a way-indexed policy can show.
 * @param maxStates Exploration guard.
 * @throws UsageError when the reachable space exceeds @p maxStates
 *         (a stochastic or non-renaming-invariant policy).
 */
MealyMachine automatonOfPolicy(const policy::ReplacementPolicy& policy,
                               unsigned alphabet,
                               uint64_t maxStates = 1u << 20);

} // namespace recap::learn

#endif // RECAP_LEARN_MEALY_HH_
