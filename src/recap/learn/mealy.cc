#include "recap/learn/mealy.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <numeric>
#include <sstream>
#include <unordered_map>

#include "recap/common/error.hh"
#include "recap/policy/set_model.hh"

namespace recap::learn
{

MealyMachine::MealyMachine(unsigned numStates, unsigned alphabet)
    : numStates_(numStates), alphabet_(alphabet)
{
    require(numStates >= 1, "MealyMachine: need at least one state");
    require(alphabet >= 1, "MealyMachine: need at least one symbol");
    next_.resize(static_cast<std::size_t>(numStates) * alphabet);
    output_.resize(next_.size(), false);
    for (unsigned s = 0; s < numStates; ++s)
        for (unsigned a = 0; a < alphabet; ++a)
            next_[static_cast<std::size_t>(s) * alphabet + a] = s;
}

void
MealyMachine::setTransition(unsigned state, Symbol symbol,
                            unsigned next, bool output)
{
    require(state < numStates_ && next < numStates_ &&
                symbol < alphabet_,
            "MealyMachine::setTransition: out of range");
    const std::size_t i =
        static_cast<std::size_t>(state) * alphabet_ + symbol;
    next_[i] = next;
    output_[i] = output;
}

unsigned
MealyMachine::next(unsigned state, Symbol symbol) const
{
    require(state < numStates_ && symbol < alphabet_,
            "MealyMachine::next: out of range");
    return next_[static_cast<std::size_t>(state) * alphabet_ + symbol];
}

bool
MealyMachine::output(unsigned state, Symbol symbol) const
{
    require(state < numStates_ && symbol < alphabet_,
            "MealyMachine::output: out of range");
    return output_[static_cast<std::size_t>(state) * alphabet_ +
                   symbol];
}

std::vector<bool>
MealyMachine::run(const Word& word) const
{
    std::vector<bool> outputs;
    outputs.reserve(word.size());
    unsigned state = 0;
    for (Symbol symbol : word) {
        outputs.push_back(output(state, symbol));
        state = next(state, symbol);
    }
    return outputs;
}

bool
MealyMachine::lastOutput(const Word& word) const
{
    require(!word.empty(), "MealyMachine::lastOutput: empty word");
    unsigned state = 0;
    for (std::size_t i = 0; i + 1 < word.size(); ++i)
        state = next(state, word[i]);
    return output(state, word.back());
}

namespace
{

/** Reachable states in BFS order (ascending-symbol exploration). */
std::vector<unsigned>
bfsOrder(const MealyMachine& m)
{
    std::vector<unsigned> order;
    std::vector<bool> seen(m.numStates(), false);
    std::deque<unsigned> frontier{0};
    seen[0] = true;
    while (!frontier.empty()) {
        const unsigned state = frontier.front();
        frontier.pop_front();
        order.push_back(state);
        for (Symbol a = 0; a < m.alphabet(); ++a) {
            const unsigned succ = m.next(state, a);
            if (!seen[succ]) {
                seen[succ] = true;
                frontier.push_back(succ);
            }
        }
    }
    return order;
}

} // namespace

MealyMachine
MealyMachine::minimized() const
{
    const std::vector<unsigned> reachable = bfsOrder(*this);

    // Moore partition refinement on the reachable part: start from
    // the per-state output signature, split by successor-class
    // signatures until stable.
    std::vector<int> classOf(numStates_, -1);
    {
        std::map<std::vector<bool>, int> bySignature;
        for (unsigned state : reachable) {
            std::vector<bool> sig(alphabet_);
            for (Symbol a = 0; a < alphabet_; ++a)
                sig[a] = output(state, a);
            const auto [it, inserted] = bySignature.try_emplace(
                sig, static_cast<int>(bySignature.size()));
            (void)inserted;
            classOf[state] = it->second;
        }
    }
    for (;;) {
        std::map<std::vector<int>, int> byKey;
        std::vector<int> nextClass(numStates_, -1);
        for (unsigned state : reachable) {
            std::vector<int> key{classOf[state]};
            for (Symbol a = 0; a < alphabet_; ++a)
                key.push_back(classOf[next(state, a)]);
            const auto [it, inserted] = byKey.try_emplace(
                key, static_cast<int>(byKey.size()));
            (void)inserted;
            nextClass[state] = it->second;
        }
        bool changed = false;
        for (unsigned state : reachable)
            changed |= nextClass[state] != classOf[state];
        classOf = std::move(nextClass);
        if (!changed)
            break;
    }

    // Canonical numbering: BFS over classes from the initial class.
    const unsigned numClasses = 1 + *std::max_element(
        classOf.begin(), classOf.end());
    std::vector<unsigned> representative(numClasses);
    for (auto it = reachable.rbegin(); it != reachable.rend(); ++it)
        representative[classOf[*it]] = *it;
    std::vector<int> renumber(numClasses, -1);
    std::deque<int> frontier{classOf[0]};
    renumber[classOf[0]] = 0;
    unsigned assigned = 1;
    std::vector<int> bfsClasses{classOf[0]};
    while (!frontier.empty()) {
        const int cls = frontier.front();
        frontier.pop_front();
        const unsigned rep = representative[cls];
        for (Symbol a = 0; a < alphabet_; ++a) {
            const int succ = classOf[next(rep, a)];
            if (renumber[succ] < 0) {
                renumber[succ] = static_cast<int>(assigned++);
                frontier.push_back(succ);
                bfsClasses.push_back(succ);
            }
        }
    }

    MealyMachine result(assigned, alphabet_);
    for (int cls : bfsClasses) {
        const unsigned rep = representative[cls];
        for (Symbol a = 0; a < alphabet_; ++a) {
            result.setTransition(
                static_cast<unsigned>(renumber[cls]), a,
                static_cast<unsigned>(renumber[classOf[next(rep, a)]]),
                output(rep, a));
        }
    }
    return result;
}

bool
MealyMachine::isomorphicTo(const MealyMachine& other) const
{
    if (alphabet_ != other.alphabet_)
        return false;
    // Parallel BFS building the bijection; any conflict refutes.
    std::vector<int> toOther(numStates_, -1);
    std::vector<int> toThis(other.numStates_, -1);
    toOther[0] = 0;
    toThis[0] = 0;
    std::deque<unsigned> frontier{0};
    while (!frontier.empty()) {
        const unsigned a = frontier.front();
        frontier.pop_front();
        const unsigned b = static_cast<unsigned>(toOther[a]);
        for (Symbol sym = 0; sym < alphabet_; ++sym) {
            if (output(a, sym) != other.output(b, sym))
                return false;
            const unsigned na = next(a, sym);
            const unsigned nb = other.next(b, sym);
            if (toOther[na] < 0 && toThis[nb] < 0) {
                toOther[na] = static_cast<int>(nb);
                toThis[nb] = static_cast<int>(na);
                frontier.push_back(na);
            } else if (toOther[na] != static_cast<int>(nb) ||
                       toThis[nb] != static_cast<int>(na)) {
                return false;
            }
        }
    }
    return true;
}

Word
MealyMachine::distinguishingWord(const MealyMachine& other) const
{
    require(alphabet_ == other.alphabet_,
            "distinguishingWord: alphabet mismatch");
    // BFS over the product; parent pointers reconstruct the word.
    struct Visit
    {
        uint64_t parent;
        Symbol symbol;
    };
    const uint64_t width = other.numStates_;
    std::unordered_map<uint64_t, Visit> visited;
    std::deque<uint64_t> frontier;
    const auto pack = [width](unsigned a, unsigned b) {
        return static_cast<uint64_t>(a) * width + b;
    };
    visited.emplace(pack(0, 0), Visit{UINT64_MAX, 0});
    frontier.push_back(pack(0, 0));
    while (!frontier.empty()) {
        const uint64_t key = frontier.front();
        frontier.pop_front();
        const unsigned a = static_cast<unsigned>(key / width);
        const unsigned b = static_cast<unsigned>(key % width);
        for (Symbol sym = 0; sym < alphabet_; ++sym) {
            if (output(a, sym) != other.output(b, sym)) {
                Word word{sym};
                uint64_t at = key;
                while (visited.at(at).parent != UINT64_MAX) {
                    word.push_back(visited.at(at).symbol);
                    at = visited.at(at).parent;
                }
                std::reverse(word.begin(), word.end());
                return word;
            }
            const uint64_t succ =
                pack(next(a, sym), other.next(b, sym));
            if (visited.emplace(succ, Visit{key, sym}).second)
                frontier.push_back(succ);
        }
    }
    return {};
}

std::string
MealyMachine::toDot(const std::string& title) const
{
    std::ostringstream os;
    os << "digraph mealy {\n"
       << "    rankdir=LR;\n"
       << "    node [shape=circle, fontname=\"Helvetica\"];\n"
       << "    edge [fontname=\"Helvetica\", fontsize=10];\n";
    if (!title.empty())
        os << "    label=\"" << title << "\"; labelloc=t;\n";
    os << "    init [shape=point];\n    init -> s0;\n";
    for (unsigned state : bfsOrder(*this)) {
        // Merge parallel edges onto one arrow per (state, successor).
        std::map<unsigned, std::vector<std::string>> edges;
        for (Symbol a = 0; a < alphabet_; ++a) {
            edges[next(state, a)].push_back(
                "b" + std::to_string(a + 1) + "/" +
                (output(state, a) ? "hit" : "miss"));
        }
        for (const auto& [succ, labels] : edges) {
            os << "    s" << state << " -> s" << succ << " [label=\"";
            for (std::size_t i = 0; i < labels.size(); ++i)
                os << (i ? "\\n" : "") << labels[i];
            os << "\"];\n";
        }
    }
    os << "}\n";
    return os.str();
}

MealyMachine
automatonOfPolicy(const policy::ReplacementPolicy& policy,
                  unsigned alphabet, uint64_t maxStates)
{
    require(alphabet >= 1, "automatonOfPolicy: empty alphabet");

    // A state is the concrete (contents, policy-state) pair. The
    // SetModel's stateKey canonicalizes block *renaming*, which is
    // exactly what must NOT be merged here: two states with the same
    // shape but different concrete blocks transition differently on
    // a concrete symbol. The key therefore appends the concrete
    // per-way contents.
    const auto keyOf = [](const policy::SetModel& model) {
        std::string key = model.stateKey();
        key += '|';
        for (policy::Way w = 0; w < model.ways(); ++w) {
            if (model.isValid(w))
                key += std::to_string(model.blockAt(w));
            key += ',';
        }
        return key;
    };

    policy::SetModel initial(policy.clone());
    initial.flush();

    std::unordered_map<std::string, unsigned> stateIds;
    std::vector<policy::SetModel> states;
    stateIds.emplace(keyOf(initial), 0);
    states.push_back(initial);

    struct Edge
    {
        unsigned from;
        Symbol symbol;
        unsigned to;
        bool hit;
    };
    std::vector<Edge> edges;

    for (unsigned at = 0; at < states.size(); ++at) {
        for (Symbol a = 0; a < alphabet; ++a) {
            policy::SetModel succ = states[at];
            const bool hit =
                succ.access(static_cast<policy::BlockId>(a) + 1);
            const std::string key = keyOf(succ);
            auto [it, inserted] = stateIds.try_emplace(
                key, static_cast<unsigned>(states.size()));
            if (inserted) {
                require(states.size() < maxStates,
                        "automatonOfPolicy: state budget exceeded "
                        "(stochastic or non-finite policy?)");
                states.push_back(std::move(succ));
            }
            edges.push_back({at, a, it->second, hit});
        }
    }

    MealyMachine machine(static_cast<unsigned>(states.size()),
                         alphabet);
    for (const Edge& e : edges)
        machine.setTransition(e.from, e.symbol, e.to, e.hit);
    return machine;
}

} // namespace recap::learn
