#include "recap/learn/observation_table.hh"

#include <algorithm>
#include <map>
#include <set>

#include "recap/common/error.hh"

namespace recap::learn
{

ObservationTable::ObservationTable(unsigned alphabet)
    : alphabet_(alphabet)
{
    require(alphabet >= 1, "ObservationTable: empty alphabet");
    prefixes_.push_back({});
    for (Symbol a = 0; a < alphabet; ++a)
        suffixes_.push_back({a});
}

bool
ObservationTable::refreshRow(const Word& row, RowCache& cache,
                             std::vector<Word>* missing) const
{
    // Cells are answered by whole-word recordings (every prefix of an
    // answered word is recorded), so cell (row, e) is known iff every
    // prefix row·e[:j] is. The key only grows in suffix order, so it
    // advances up to the first gap; later suffixes are still scanned
    // to batch all of the row's missing words at once.
    bool advancing = true;
    for (std::size_t idx = cache.suffixesDone;
         idx < suffixes_.size(); ++idx) {
        const Word& e = suffixes_[idx];
        Word word = row;
        word.reserve(row.size() + e.size());
        std::string cell;
        bool known = true;
        for (Symbol symbol : e) {
            word.push_back(symbol);
            const int outcome = store_.lookup(word);
            if (outcome < 0) {
                known = false;
                break;
            }
            cell += outcome ? '1' : '0';
        }
        if (known) {
            if (advancing) {
                cache.key += cell;
                cache.key += ';';
                ++cache.suffixesDone;
            }
            continue;
        }
        advancing = false;
        if (missing == nullptr)
            return false;
        // The full row·e word; answering it records every
        // intermediate prefix at once.
        Word full = row;
        full.insert(full.end(), e.begin(), e.end());
        missing->push_back(std::move(full));
    }
    return advancing && cache.suffixesDone == suffixes_.size();
}

const std::string&
ObservationTable::cachedRowKey(const Word& row) const
{
    RowCache& cache = rowCache_[row];
    require(refreshRow(row, cache, nullptr),
            "ObservationTable: row not filled");
    return cache.key;
}

std::vector<Word>
ObservationTable::missingWords() const
{
    std::vector<Word> missing;
    for (const Word& u : prefixes_) {
        for (Symbol a = 0; a <= alphabet_; ++a) {
            Word row = u;
            if (a < alphabet_)
                row.push_back(a); // the S·A row
            refreshRow(row, rowCache_[row], &missing);
        }
    }
    std::sort(missing.begin(), missing.end());
    missing.erase(std::unique(missing.begin(), missing.end()),
                  missing.end());
    return missing;
}

std::string
ObservationTable::rowKey(const Word& u) const
{
    return cachedRowKey(u);
}

bool
ObservationTable::isClosed(Word* witness) const
{
    std::set<std::string> shortRows;
    for (const Word& u : prefixes_)
        shortRows.insert(cachedRowKey(u));
    for (const Word& u : prefixes_) {
        for (Symbol a = 0; a < alphabet_; ++a) {
            Word ext = u;
            ext.push_back(a);
            if (!shortRows.count(cachedRowKey(ext))) {
                if (witness != nullptr)
                    *witness = ext;
                return false;
            }
        }
    }
    return true;
}

bool
ObservationTable::isConsistent() const
{
    std::map<std::string, Word> byRow;
    for (const Word& u : prefixes_) {
        const auto [it, inserted] =
            byRow.try_emplace(cachedRowKey(u), u);
        if (inserted)
            continue;
        for (Symbol a = 0; a < alphabet_; ++a) {
            Word ext1 = it->second;
            Word ext2 = u;
            ext1.push_back(a);
            ext2.push_back(a);
            if (cachedRowKey(ext1) != cachedRowKey(ext2))
                return false;
        }
    }
    return true;
}

bool
ObservationTable::promote(const Word& u)
{
    if (std::find(prefixes_.begin(), prefixes_.end(), u) !=
        prefixes_.end()) {
        return false;
    }
    require(!u.empty(), "ObservationTable::promote: empty word");
    Word parent(u.begin(), u.end() - 1);
    require(std::find(prefixes_.begin(), prefixes_.end(), parent) !=
                prefixes_.end(),
            "ObservationTable::promote: would break prefix closure");
    prefixes_.push_back(u);
    return true;
}

bool
ObservationTable::addSuffix(const Word& e)
{
    require(!e.empty(), "ObservationTable::addSuffix: empty suffix");
    if (std::find(suffixes_.begin(), suffixes_.end(), e) !=
        suffixes_.end()) {
        return false;
    }
    suffixes_.push_back(e);
    return true;
}

MealyMachine
ObservationTable::buildHypothesis(std::vector<Word>* accessWords) const
{
    // States = distinct S rows, numbered by first appearance in S
    // (so state 0 = row(ε), as S starts with ε).
    std::map<std::string, unsigned> stateOf;
    std::vector<const Word*> representative;
    for (const Word& u : prefixes_) {
        const auto [it, inserted] = stateOf.try_emplace(
            cachedRowKey(u),
            static_cast<unsigned>(representative.size()));
        if (inserted)
            representative.push_back(&u);
    }

    MealyMachine machine(
        static_cast<unsigned>(representative.size()), alphabet_);
    for (unsigned s = 0; s < representative.size(); ++s) {
        for (Symbol a = 0; a < alphabet_; ++a) {
            Word ext = *representative[s];
            ext.push_back(a);
            const auto it = stateOf.find(cachedRowKey(ext));
            require(it != stateOf.end(),
                    "ObservationTable::buildHypothesis: table is "
                    "not closed");
            const int outcome = store_.lookup(ext);
            require(outcome >= 0,
                    "ObservationTable::buildHypothesis: cell not "
                    "filled");
            machine.setTransition(s, a, it->second, outcome != 0);
        }
    }
    if (accessWords != nullptr) {
        accessWords->clear();
        for (const Word* u : representative)
            accessWords->push_back(*u);
    }
    return machine;
}

} // namespace recap::learn
