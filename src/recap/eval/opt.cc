#include "recap/eval/opt.hh"

#include <limits>
#include <set>
#include <unordered_map>
#include <vector>

namespace recap::eval
{

namespace
{

constexpr uint64_t kNever = std::numeric_limits<uint64_t>::max();

/**
 * Per-set OPT state: resident blocks ordered by next-use time, so
 * the victim (farthest next use) is the last element.
 */
struct OptSet
{
    /** (nextUse, block), ordered ascending; victim = rbegin. */
    std::set<std::pair<uint64_t, uint64_t>> byNextUse;
    std::unordered_map<uint64_t, uint64_t> nextUseOf; ///< block -> key
};

} // namespace

cache::LevelStats
simulateOpt(const cache::Geometry& geom, const trace::Trace& t)
{
    geom.validate();

    // next_use[i]: index of the next access to the same block after
    // position i (kNever if none).
    std::vector<uint64_t> next_use(t.size());
    {
        std::unordered_map<uint64_t, uint64_t> last_seen;
        for (size_t i = t.size(); i-- > 0;) {
            const uint64_t block = geom.blockNumber(t[i]);
            auto it = last_seen.find(block);
            next_use[i] = it == last_seen.end() ? kNever : it->second;
            last_seen[block] = i;
        }
    }

    std::vector<OptSet> sets(geom.numSets);
    cache::LevelStats stats;

    for (size_t i = 0; i < t.size(); ++i) {
        const uint64_t block = geom.blockNumber(t[i]);
        OptSet& s = sets[geom.setIndex(t[i])];
        ++stats.accesses;

        auto resident = s.nextUseOf.find(block);
        if (resident != s.nextUseOf.end()) {
            ++stats.hits;
            // Refresh the block's next-use key.
            s.byNextUse.erase({resident->second, block});
            resident->second = next_use[i];
            s.byNextUse.insert({next_use[i], block});
            continue;
        }

        ++stats.misses;
        if (s.nextUseOf.size() == geom.ways) {
            // Evict the farthest-next-use block.
            const auto victim = std::prev(s.byNextUse.end());
            s.nextUseOf.erase(victim->second);
            s.byNextUse.erase(victim);
            ++stats.evictions;
        }
        s.nextUseOf[block] = next_use[i];
        s.byNextUse.insert({next_use[i], block});
    }
    return stats;
}

} // namespace recap::eval
