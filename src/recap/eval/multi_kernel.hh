/**
 * @file
 * Multi-policy lockstep simulation kernel (K2): one trace decode,
 * N transition tables per pass.
 *
 * The "generate and test" fallback of the paper and the miss-ratio
 * sweeps (Fig. 3/4) both simulate many candidate policies over the
 * same trace. The single-policy kernel (eval/kernel.hh) re-decodes
 * the trace and re-streams it through the tag scan once per policy;
 * this kernel amortizes both across the whole candidate set:
 *
 *  - the trace is decoded ONCE into (set index, dense block id)
 *    pairs (DecodedTrace) — block ids are first-occurrence dense
 *    uint32 values >= 1, so the per-lane tag matrices hold uint32
 *    instead of uint64, halving scan footprint and doubling the
 *    vector width of the lane-parallel compare, with 0 free as the
 *    empty-way sentinel;
 *  - policies that compile (policy::compiledTableFor) are packed
 *    into lockstep lane groups: tags are interleaved
 *    [set][way][lane] so the fixed-trip-count scan of one access
 *    runs once per lane group as a vectorizable compare-select over
 *    all lanes, and each lane keeps only its own integer policy
 *    state and fill cursor on top of its slice of the group's tag
 *    rows, stepping its hoisted uint16 (or uint32) transition table
 *    (policy::TableLanes);
 *  - lanes whose policies exceed the compile budget fall back to
 *    the interpreted cache::Cache inside the same driver, so the
 *    result vector stays total over the requested specs.
 *
 * Lane groups and fallback lanes are sharded across the shared
 * TaskPool. Results are bit-identical to per-policy
 * simulateTraceKernel() calls — pinned by tests/test_multi_kernel.cc
 * and re-checked in-run by bench_multi_kernel.
 *
 * matchObservationMultiPolicy() is the same kernel specialized to
 * the candidate-elimination shape: one observed block sequence
 * played from a flushed single set against every surviving
 * candidate automaton in lockstep (infer::CandidateSearch).
 */

#ifndef RECAP_EVAL_MULTI_KERNEL_HH_
#define RECAP_EVAL_MULTI_KERNEL_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "recap/cache/cache.hh"
#include "recap/eval/kernel.hh"
#include "recap/policy/compiled.hh"
#include "recap/policy/set_model.hh"
#include "recap/trace/trace.hh"

namespace recap::eval
{

/**
 * A trace decoded once against one geometry: per access, the set
 * index and a dense per-block id (>= 1; ids are assigned by first
 * occurrence, so two accesses carry the same id iff they address the
 * same cache block). Sharing one DecodedTrace across every lane of a
 * pass — and across passes — is where the kernel stops paying
 * per-policy decode.
 */
class DecodedTrace
{
  public:
    DecodedTrace(const cache::Geometry& geom, const trace::Trace& t);

    const cache::Geometry& geometry() const { return geom_; }
    std::size_t size() const { return sets_.size(); }

    const std::vector<uint32_t>& sets() const { return sets_; }
    const std::vector<uint32_t>& ids() const { return ids_; }

    /** Tag (geometry.tag) of the block behind dense id @p id. */
    uint64_t tagOfId(uint32_t id) const;

  private:
    cache::Geometry geom_;
    std::vector<uint32_t> sets_;
    std::vector<uint32_t> ids_;
    std::vector<uint64_t> blockOfId_; ///< [id-1] -> block number
};

/** Execution knobs of the multi-policy entry points. */
struct MultiPolicyOptions
{
    /** Fallback-lane seed when laneSeeds is empty. */
    uint64_t seed = 1;

    /**
     * Per-lane seeds for interpreted fallback lanes (stochastic
     * policies); empty = every lane uses @p seed. Compiled lanes are
     * deterministic and ignore seeds. Must be empty or match the
     * spec count.
     */
    std::vector<uint64_t> laneSeeds;

    /**
     * Worker threads sharding lane groups and fallback lanes over
     * the shared pool (0 = hardware concurrency, 1 = serial).
     * Results are bit-identical for every value.
     */
    unsigned numThreads = 0;

    /** State budget for policy compilation. */
    policy::CompileBudget budget;

    /**
     * Run every lane on the interpreted cache::Cache path (the
     * reference side of differential tests).
     */
    bool forceInterpreted = false;

    /**
     * Upper bound on lanes per lockstep group; clamped to the widest
     * instantiated width (16). Smaller caps trade lane-parallel scan
     * throughput for per-group table working set.
     */
    unsigned maxLanes = 16;

    /** Capture per-lane final SetImages (differential tests). */
    bool captureFinalImages = false;
};

/** Result of one lane of simulateMultiPolicy. */
struct MultiLaneResult
{
    std::string spec;         ///< the lane's policy spec
    cache::LevelStats stats;  ///< identical to simulateTraceKernel
    bool compiled = false;    ///< ran in a lockstep lane group
    std::vector<SetImage> finalImage; ///< when captureFinalImages
};

/**
 * Simulates @p t against every policy in @p specs over the shared
 * geometry @p geom in one pass. Result i corresponds to specs[i]
 * and is bit-identical to simulateTraceKernel(geom, specs[i], t)
 * with the lane's seed.
 *
 * @throws UsageError when a spec does not support geom.ways or
 *         laneSeeds is non-empty with the wrong size.
 */
std::vector<MultiLaneResult>
simulateMultiPolicy(const cache::Geometry& geom,
                    const std::vector<std::string>& specs,
                    const trace::Trace& t,
                    const MultiPolicyOptions& opts = {});

/** simulateMultiPolicy over an already-decoded trace (@p decoded
 *  must stem from @p geom-equal geometry; @p t is the raw trace the
 *  decode was built from, used by interpreted fallback lanes). */
std::vector<MultiLaneResult>
simulateMultiPolicy(const DecodedTrace& decoded,
                    const std::vector<std::string>& specs,
                    const trace::Trace& t,
                    const MultiPolicyOptions& opts = {});

/**
 * Convenience projection of simulateMultiPolicy for the sweep
 * consumers: stats only, positionally matching @p specs.
 */
std::vector<cache::LevelStats>
simulatePoliciesBatch(const cache::Geometry& geom,
                      const std::vector<std::string>& specs,
                      const trace::Trace& t,
                      const MultiPolicyOptions& opts = {});

/**
 * One candidate automaton of matchObservationMultiPolicy: a
 * compiled table when available, the interpreted prototype
 * otherwise. The prototype pointer must stay valid for the call and
 * is required even for compiled lanes (associativity checks).
 */
struct SetLane
{
    policy::CompiledTablePtr table; ///< null -> interpreted fallback
    const policy::ReplacementPolicy* prototype = nullptr;
};

/**
 * Plays @p seq from a flushed single set against every lane in
 * lockstep and reports, per lane, whether the lane's hit/miss
 * sequence agrees with @p observedHits at every position where
 * @p determined is true (undetermined positions advance the state
 * but never eliminate) — the candidate-elimination inner loop of
 * infer::CandidateSearch, bit-identical to a per-candidate
 * policy::SetModel replay.
 *
 * Compiled lanes run in lockstep groups; fallback lanes replay a
 * SetModel clone of their prototype. Work is sharded over the
 * shared pool with @p numThreads (0 = hardware, 1 = serial);
 * results are identical for every value.
 */
std::vector<char>
matchObservationMultiPolicy(unsigned ways,
                            const std::vector<SetLane>& lanes,
                            const std::vector<policy::BlockId>& seq,
                            const std::vector<bool>& observedHits,
                            const std::vector<bool>& determined,
                            unsigned numThreads = 1);

} // namespace recap::eval

#endif // RECAP_EVAL_MULTI_KERNEL_HH_
