#include "recap/eval/multi_kernel.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <type_traits>
#include <unordered_map>

#include "recap/common/bitops.hh"
#include "recap/common/error.hh"
#include "recap/common/parallel.hh"
#include "recap/policy/factory.hh"

namespace recap::eval
{

DecodedTrace::DecodedTrace(const cache::Geometry& geom,
                           const trace::Trace& t)
    : geom_(geom)
{
    geom_.validate();
    const unsigned offsetBits = log2Floor(geom_.lineSize);
    const uint64_t setMask = geom_.numSets - 1;

    sets_.reserve(t.size());
    ids_.reserve(t.size());

    // Open-addressing block -> id map (linear probing, multiply
    // hash). The decode is on the amortized-once path but still
    // dominates single-lane batches, so it avoids unordered_map's
    // per-access allocation and pointer chase. Slot occupancy is
    // "id != 0" (ids start at 1), so block 0 needs no special case.
    std::size_t capLog = 4;
    while ((std::size_t{1} << capLog) < t.size() * 2)
        ++capLog;
    const std::size_t slotMask = (std::size_t{1} << capLog) - 1;
    std::vector<uint64_t> slotBlock(slotMask + 1, 0);
    std::vector<uint32_t> slotId(slotMask + 1, 0);

    for (const cache::Addr addr : t) {
        const uint64_t block = addr >> offsetBits;
        sets_.push_back(static_cast<uint32_t>(block & setMask));
        std::size_t slot =
            (block * uint64_t{0x9E3779B97F4A7C15}) >> (64 - capLog);
        while (slotId[slot] != 0 && slotBlock[slot] != block)
            slot = (slot + 1) & slotMask;
        if (slotId[slot] == 0) {
            require(blockOfId_.size() < UINT32_MAX - 1,
                    "DecodedTrace: too many distinct blocks");
            blockOfId_.push_back(block);
            slotBlock[slot] = block;
            slotId[slot] =
                static_cast<uint32_t>(blockOfId_.size());
        }
        ids_.push_back(slotId[slot]);
    }
}

uint64_t
DecodedTrace::tagOfId(uint32_t id) const
{
    require(id >= 1 && id <= blockOfId_.size(),
            "DecodedTrace: block id out of range");
    const unsigned setBits = log2Floor(geom_.numSets);
    return blockOfId_[id - 1] >> setBits;
}

namespace
{

/** Widest lockstep group the kernel instantiates. */
constexpr unsigned kMaxGroupLanes = 16;

/**
 * Raw per-lane pointers of one lane group, hoisted once. Groups are
 * packed element-width-homogeneous (all-narrow or all-wide), so the
 * hot loop is templated on State and never re-tests narrow() per
 * lane per access.
 */
template <typename State>
struct GroupLanes
{
    const State* touch[kMaxGroupLanes] = {};
    const State* fill[kMaxGroupLanes] = {};
    const uint16_t* victim[kMaxGroupLanes] = {};

    explicit GroupLanes(const policy::TableLanes& tables)
    {
        for (std::size_t l = 0; l < tables.size(); ++l) {
            if constexpr (std::is_same_v<State, uint16_t>) {
                touch[l] = tables[l].touch16;
                fill[l] = tables[l].fill16;
            } else {
                touch[l] = tables[l].touch32;
                fill[l] = tables[l].fill32;
            }
            ensure(touch[l] != nullptr && fill[l] != nullptr,
                   "multi_kernel: lane group mixes table widths");
            victim[l] = tables[l].victim;
        }
    }
};

/** Mutable structure-of-arrays state of one lane group. */
struct GroupState
{
    std::vector<uint32_t> tags;   ///< [set][way][lane], 0 = empty
    std::vector<uint32_t> state;  ///< [set][lane] policy state
    std::vector<uint16_t> filled; ///< [set][lane] fill cursor
    std::array<uint64_t, kMaxGroupLanes> hits{};
    std::array<uint64_t, kMaxGroupLanes> evictions{};

    GroupState(unsigned numSets, unsigned ways, unsigned lanes)
        : tags(static_cast<std::size_t>(numSets) * ways * lanes, 0),
          state(static_cast<std::size_t>(numSets) * lanes, 0),
          filled(static_cast<std::size_t>(numSets) * lanes, 0)
    {}
};

/**
 * The lockstep hot loop: one decoded access updates every lane of
 * the group. kLanes is a compile-time constant so the scan's inner
 * lane loop has a fixed trip count and vectorizes (compare-select
 * over uint32 tags). The per-lane update is branch-free: per-lane
 * hit/miss branches would mispredict independently and serialize a
 * wide group, so the update computes the final way with selects,
 * issues the (independent, overlappable) table gathers, and
 * re-writes the matched tag on hits — a no-op store, since the slot
 * already holds the id. Identical algorithm to kernel.cc's
 * kernelLoop per lane, so results cannot differ: ids are >= 1 and
 * unique per block, ways fill bottom-up, the zeroed tags of ways >=
 * filled never match a real id.
 */
template <typename State, unsigned kLanes, unsigned kFixedWays>
void
lockstepLoop(const uint32_t* __restrict sets,
             const uint32_t* __restrict ids, std::size_t n,
             unsigned waysRT, const GroupLanes<State>& g,
             GroupState& gs)
{
    // Fixed associativity (like kernel.cc) gives the scan a
    // compile-time trip count; kFixedWays == 0 is the generic
    // fallback.
    const unsigned ways = kFixedWays ? kFixedWays : waysRT;
    uint32_t* __restrict tags = gs.tags.data();
    uint32_t* __restrict state = gs.state.data();
    uint16_t* __restrict filled = gs.filled.data();
    const std::size_t rowStride =
        static_cast<std::size_t>(ways) * kLanes;

    for (std::size_t a = 0; a < n; ++a) {
        const uint32_t set = sets[a];
        const uint32_t id = ids[a];
        uint32_t* rowTags = tags + set * rowStride;
        uint32_t* st = state + static_cast<std::size_t>(set) * kLanes;
        uint16_t* fl = filled + static_cast<std::size_t>(set) * kLanes;

        // Lane-parallel scan for the matching way; ways is the
        // no-match sentinel. Two shapes, picked per group width
        // (measured, interleaved A/B): wide groups vectorize the
        // compare-select across lanes, narrow groups have no lane
        // parallelism, so a serial select chain over w stalls — an
        // associative match-bitmask OR plus countr_zero reduces as a
        // tree instead. Both return the lowest match; block ids are
        // unique, so at most one way per lane matches either way.
        uint32_t way[kLanes];
        if constexpr (kLanes >= 4) {
            for (unsigned l = 0; l < kLanes; ++l)
                way[l] = ways;
            for (unsigned w = ways; w-- > 0;) {
                const uint32_t* p =
                    rowTags + static_cast<std::size_t>(w) * kLanes;
                for (unsigned l = 0; l < kLanes; ++l)
                    way[l] = p[l] == id ? w : way[l];
            }
        } else {
            uint64_t mask[kLanes] = {};
            for (unsigned w = 0; w < ways; ++w) {
                const uint32_t* p =
                    rowTags + static_cast<std::size_t>(w) * kLanes;
                for (unsigned l = 0; l < kLanes; ++l)
                    mask[l] |= static_cast<uint64_t>(p[l] == id)
                               << w;
            }
            for (unsigned l = 0; l < kLanes; ++l)
                way[l] = static_cast<uint32_t>(std::countr_zero(
                    mask[l] | (uint64_t{1} << ways)));
        }

        for (unsigned l = 0; l < kLanes; ++l) {
            const uint32_t s = st[l];
            const std::size_t row =
                static_cast<std::size_t>(s) * ways;
            const unsigned f = fl[l];
            const bool hit = way[l] < f;
            // Miss target: the fill cursor while filling, else the
            // policy's victim (the gather is wasted on hits but
            // keeps the lane branch-free).
            const uint32_t missWay =
                f < ways ? f : uint32_t{g.victim[l][s]};
            const uint32_t w = hit ? way[l] : missWay;
            rowTags[static_cast<std::size_t>(w) * kLanes + l] = id;
            gs.hits[l] += hit;
            gs.evictions[l] +=
                static_cast<uint64_t>(!hit && f == ways);
            fl[l] = static_cast<uint16_t>(
                f + static_cast<unsigned>(!hit && f < ways));
            const State* tbl = hit ? g.touch[l] : g.fill[l];
            st[l] = tbl[row + w];
        }
    }
}

template <typename State, unsigned kFixedWays>
void
runLockstep(const uint32_t* sets, const uint32_t* ids, std::size_t n,
            unsigned ways, unsigned lanes, const GroupLanes<State>& g,
            GroupState& gs)
{
    switch (lanes) {
    case 16:
        lockstepLoop<State, 16, kFixedWays>(sets, ids, n, ways, g,
                                            gs);
        break;
    case 8:
        lockstepLoop<State, 8, kFixedWays>(sets, ids, n, ways, g, gs);
        break;
    case 4:
        lockstepLoop<State, 4, kFixedWays>(sets, ids, n, ways, g, gs);
        break;
    case 2:
        lockstepLoop<State, 2, kFixedWays>(sets, ids, n, ways, g, gs);
        break;
    case 1:
        lockstepLoop<State, 1, kFixedWays>(sets, ids, n, ways, g, gs);
        break;
    default:
        throw UsageError("multi_kernel: unsupported lane width " +
                         std::to_string(lanes));
    }
}

template <typename State>
void
runLockstepWays(const uint32_t* sets, const uint32_t* ids,
                std::size_t n, unsigned ways, unsigned lanes,
                const GroupLanes<State>& g, GroupState& gs)
{
    switch (ways) {
    case 2:
        runLockstep<State, 2>(sets, ids, n, ways, lanes, g, gs);
        break;
    case 4:
        runLockstep<State, 4>(sets, ids, n, ways, lanes, g, gs);
        break;
    case 8:
        runLockstep<State, 8>(sets, ids, n, ways, lanes, g, gs);
        break;
    case 16:
        runLockstep<State, 16>(sets, ids, n, ways, lanes, g, gs);
        break;
    default:
        runLockstep<State, 0>(sets, ids, n, ways, lanes, g, gs);
        break;
    }
}

/** Width-dispatching driver over a homogeneous (all-narrow or
 *  all-wide) lane group. */
void
runGroupLoop(const DecodedTrace& decoded, unsigned ways,
             const policy::TableLanes& tables, GroupState& gs)
{
    require(ways < 64,
            "multi_kernel: lockstep groups support < 64 ways");
    const unsigned width = static_cast<unsigned>(tables.size());
    const bool narrow = tables[0].touch16 != nullptr;
    if (narrow) {
        const GroupLanes<uint16_t> g(tables);
        runLockstepWays(decoded.sets().data(), decoded.ids().data(),
                        decoded.size(), ways, width, g, gs);
    } else {
        const GroupLanes<uint32_t> g(tables);
        runLockstepWays(decoded.sets().data(), decoded.ids().data(),
                        decoded.size(), ways, width, g, gs);
    }
}

/**
 * Greedy power-of-two chunking into instantiated group widths. The
 * returned widths may sum past `lanes`: a >= 75%-full tail is padded
 * up to the next width — one wide pass (with a few duplicate,
 * discarded lanes) beats the cascade of narrow straggler passes the
 * exact decomposition would produce (e.g. 7 -> one 8-wide pass, not
 * 4+2+1).
 */
std::vector<unsigned>
groupWidths(std::size_t lanes, unsigned maxLanes)
{
    const unsigned cap = std::min(
        maxLanes == 0 ? kMaxGroupLanes : maxLanes, kMaxGroupLanes);
    std::vector<unsigned> widths;
    std::size_t remaining = lanes;
    while (remaining > 0) {
        unsigned width = 1;
        while (width * 2 <= cap && width * 2 <= remaining)
            width *= 2;
        if (width < remaining && width * 2 <= cap &&
            4 * remaining >= 3 * (width * 2)) {
            widths.push_back(width * 2);
            break;
        }
        widths.push_back(width);
        remaining -= width;
    }
    return widths;
}

/**
 * Per-group budget on the summed footprint of DISTINCT tables.
 * Lanes that share a table are nearly free to co-schedule, but each
 * additional distinct multi-megabyte table added to a group grows
 * its random-gather working set; past the last-level-cache-resident
 * range the group thrashes and runs slower than separate passes.
 */
constexpr std::size_t kGroupTableBudget = std::size_t{3} << 20;

std::size_t
tableFootprint(const policy::CompiledTable& table)
{
    const std::size_t elem = table.narrow() ? 2 : 4;
    return static_cast<std::size_t>(table.numStates()) *
           (static_cast<std::size_t>(table.ways()) * elem * 2 + 2);
}

cache::LevelStats
groupLaneStats(const GroupState& gs, std::size_t accesses,
               unsigned lane)
{
    cache::LevelStats stats;
    stats.accesses = accesses;
    stats.hits = gs.hits[lane];
    stats.misses = accesses - gs.hits[lane];
    stats.evictions = gs.evictions[lane];
    return stats;
}

} // namespace

std::vector<MultiLaneResult>
simulateMultiPolicy(const DecodedTrace& decoded,
                    const std::vector<std::string>& specs,
                    const trace::Trace& t,
                    const MultiPolicyOptions& opts)
{
    const cache::Geometry& geom = decoded.geometry();
    require(decoded.size() == t.size(),
            "simulateMultiPolicy: decoded/raw trace size mismatch");
    require(opts.laneSeeds.empty() ||
                opts.laneSeeds.size() == specs.size(),
            "simulateMultiPolicy: laneSeeds must be empty or match "
            "the spec count");

    std::vector<MultiLaneResult> results(specs.size());
    std::vector<std::size_t> compiledIdx;
    std::vector<std::size_t> fallbackIdx;
    std::vector<policy::CompiledTablePtr> tables(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        results[i].spec = specs[i];
        require(policy::specSupportsWays(specs[i], geom.ways),
                "simulateMultiPolicy: policy '" + specs[i] +
                    "' does not support " +
                    std::to_string(geom.ways) + " ways");
        if (!opts.forceInterpreted)
            tables[i] = policy::compiledTableFor(specs[i], geom.ways,
                                                 opts.budget);
        if (tables[i]) {
            results[i].compiled = true;
            compiledIdx.push_back(i);
        } else {
            fallbackIdx.push_back(i);
        }
    }

    // Compiled lanes are deterministic in (table, trace) — unlike
    // interpreted fallbacks they never consume the lane seed — so
    // lanes sharing one table (compiledTableFor memoizes per spec)
    // are bitwise-identical. Simulate each distinct table once and
    // copy the result to its duplicates afterwards.
    constexpr std::size_t kNoDup = static_cast<std::size_t>(-1);
    std::vector<std::size_t> dupOf(specs.size(), kNoDup);
    {
        std::unordered_map<const policy::CompiledTable*, std::size_t>
            firstLane;
        std::vector<std::size_t> unique;
        for (const std::size_t i : compiledIdx) {
            auto [it, inserted] =
                firstLane.try_emplace(tables[i].get(), i);
            if (inserted)
                unique.push_back(i);
            else
                dupOf[i] = it->second;
        }
        compiledIdx = std::move(unique);
    }

    // Lanes of the same policy share one table; packing them into
    // the same group keeps the state-indexed table working set of a
    // group minimal. Groups are also element-width-homogeneous so
    // the hot loop can be templated on the table element type. Sort
    // by (narrow, spec) — stable and deterministic; lane results are
    // scattered back by index, so order cannot change any result.
    std::stable_sort(compiledIdx.begin(), compiledIdx.end(),
                     [&](std::size_t a, std::size_t b) {
                         const bool na = tables[a]->narrow();
                         const bool nb = tables[b]->narrow();
                         if (na != nb)
                             return na > nb;
                         return specs[a] < specs[b];
                     });

    struct Group
    {
        std::vector<std::size_t> laneIdx;
        unsigned active = 0; ///< real lanes; the rest is padding
    };
    std::vector<Group> groups;
    {
        std::vector<std::size_t> run;
        std::size_t runBytes = 0;
        const auto flushRun = [&] {
            std::size_t next = 0;
            for (const unsigned width :
                 groupWidths(run.size(), opts.maxLanes)) {
                Group group;
                for (unsigned l = 0; l < width && next < run.size();
                     ++l)
                    group.laneIdx.push_back(run[next++]);
                group.active =
                    static_cast<unsigned>(group.laneIdx.size());
                while (group.laneIdx.size() < width)
                    group.laneIdx.push_back(group.laneIdx.front());
                groups.push_back(std::move(group));
            }
            run.clear();
            runBytes = 0;
        };
        for (const std::size_t i : compiledIdx) {
            const bool newTable =
                run.empty() ||
                tables[run.back()].get() != tables[i].get();
            const std::size_t add =
                newTable ? tableFootprint(*tables[i]) : 0;
            const bool mixesWidth =
                !run.empty() && tables[run.front()]->narrow() !=
                                    tables[i]->narrow();
            const bool overBudget =
                !run.empty() && newTable &&
                runBytes + add > kGroupTableBudget;
            if (mixesWidth || overBudget)
                flushRun();
            run.push_back(i);
            runBytes += run.size() == 1
                            ? tableFootprint(*tables[i])
                            : add;
        }
        flushRun();
    }

    const auto laneSeed = [&](std::size_t i) {
        return opts.laneSeeds.empty() ? opts.seed : opts.laneSeeds[i];
    };

    const auto runGroup = [&](const Group& group) {
        // A 1-wide group has no lane parallelism to exploit; the
        // per-policy K1 kernel's predictable hit/miss branch beats
        // the branchless lockstep update there, and the results are
        // bit-identical by construction.
        if (group.laneIdx.size() == 1) {
            const std::size_t i = group.laneIdx.front();
            MultiLaneResult& out = results[i];
            out.stats = simulateCompiled(
                geom, *tables[i], t,
                opts.captureFinalImages ? &out.finalImage : nullptr);
            return;
        }

        std::vector<policy::CompiledTablePtr> groupTables;
        for (const std::size_t i : group.laneIdx)
            groupTables.push_back(tables[i]);
        const policy::TableLanes lanes(std::move(groupTables));
        const unsigned width =
            static_cast<unsigned>(group.laneIdx.size());

        GroupState gs(geom.numSets, geom.ways, width);
        runGroupLoop(decoded, geom.ways, lanes, gs);

        for (unsigned l = 0; l < group.active; ++l) {
            MultiLaneResult& out = results[group.laneIdx[l]];
            out.stats = groupLaneStats(gs, decoded.size(), l);
            if (!opts.captureFinalImages)
                continue;
            out.finalImage.reserve(geom.numSets);
            for (unsigned set = 0; set < geom.numSets; ++set) {
                const std::size_t setBase =
                    static_cast<std::size_t>(set) * geom.ways * width;
                SetImage image;
                image.tags.assign(geom.ways, 0);
                image.valid.assign(geom.ways, false);
                const unsigned live =
                    gs.filled[static_cast<std::size_t>(set) * width +
                              l];
                for (unsigned w = 0; w < live; ++w) {
                    image.tags[w] = decoded.tagOfId(
                        gs.tags[setBase +
                                static_cast<std::size_t>(w) * width +
                                l]);
                    image.valid[w] = true;
                }
                image.policyKey = lanes.table(l)->stateKey(
                    gs.state[static_cast<std::size_t>(set) * width +
                             l]);
                out.finalImage.push_back(std::move(image));
            }
        }
    };

    const auto runFallback = [&](std::size_t i) {
        MultiLaneResult& out = results[i];
        if (opts.captureFinalImages) {
            cache::Cache c(geom, specs[i], "eval", laneSeed(i));
            for (const cache::Addr a : t)
                c.access(a);
            out.stats = c.stats();
            out.finalImage.reserve(geom.numSets);
            for (unsigned set = 0; set < geom.numSets; ++set) {
                const auto image = c.setImage(set);
                out.finalImage.push_back(
                    SetImage{image.tags, image.valid,
                             image.policyKey});
            }
            return;
        }
        KernelOptions kopts;
        kopts.seed = laneSeed(i);
        kopts.budget = opts.budget;
        kopts.forceInterpreted = true;
        out.stats = simulateTraceKernel(geom, specs[i], t, kopts);
    };

    // Lane groups and fallback lanes shard over the shared pool as
    // independent work items; every item writes disjoint results.
    parallelFor(groups.size() + fallbackIdx.size(), opts.numThreads,
                [&](std::size_t item) {
                    if (item < groups.size())
                        runGroup(groups[item]);
                    else
                        runFallback(
                            fallbackIdx[item - groups.size()]);
                });

    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (dupOf[i] == kNoDup)
            continue;
        results[i].stats = results[dupOf[i]].stats;
        results[i].finalImage = results[dupOf[i]].finalImage;
    }
    return results;
}

std::vector<MultiLaneResult>
simulateMultiPolicy(const cache::Geometry& geom,
                    const std::vector<std::string>& specs,
                    const trace::Trace& t,
                    const MultiPolicyOptions& opts)
{
    const DecodedTrace decoded(geom, t);
    return simulateMultiPolicy(decoded, specs, t, opts);
}

std::vector<cache::LevelStats>
simulatePoliciesBatch(const cache::Geometry& geom,
                      const std::vector<std::string>& specs,
                      const trace::Trace& t,
                      const MultiPolicyOptions& opts)
{
    const auto lanes = simulateMultiPolicy(geom, specs, t, opts);
    std::vector<cache::LevelStats> stats;
    stats.reserve(lanes.size());
    for (const auto& lane : lanes)
        stats.push_back(lane.stats);
    return stats;
}

namespace
{

/**
 * Single-set lockstep replay of one observed sequence: the group's
 * tag matrix is one set row, and every position additionally
 * compares the lane's hit against the observation. Mismatched lanes
 * keep stepping (their flag is monotone), matching the per-candidate
 * SetModel replay bit-for-bit.
 */
template <typename State, unsigned kLanes>
void
matchLoop(const uint32_t* seqIds, std::size_t n, unsigned ways,
          const GroupLanes<State>& g, const uint8_t* observedHits,
          const uint8_t* determined, char* match)
{
    std::vector<uint32_t> tags(
        static_cast<std::size_t>(ways) * kLanes, 0);
    uint32_t st[kLanes] = {};
    uint16_t fl[kLanes] = {};
    for (unsigned l = 0; l < kLanes; ++l)
        match[l] = 1;

    for (std::size_t j = 0; j < n; ++j) {
        const uint32_t id = seqIds[j];
        uint32_t way[kLanes];
        if constexpr (kLanes >= 4) {
            for (unsigned l = 0; l < kLanes; ++l)
                way[l] = ways;
            for (unsigned w = ways; w-- > 0;) {
                const uint32_t* p =
                    tags.data() +
                    static_cast<std::size_t>(w) * kLanes;
                for (unsigned l = 0; l < kLanes; ++l)
                    way[l] = p[l] == id ? w : way[l];
            }
        } else {
            uint64_t mask[kLanes] = {};
            for (unsigned w = 0; w < ways; ++w) {
                const uint32_t* p =
                    tags.data() +
                    static_cast<std::size_t>(w) * kLanes;
                for (unsigned l = 0; l < kLanes; ++l)
                    mask[l] |= static_cast<uint64_t>(p[l] == id)
                               << w;
            }
            for (unsigned l = 0; l < kLanes; ++l)
                way[l] = static_cast<uint32_t>(std::countr_zero(
                    mask[l] | (uint64_t{1} << ways)));
        }
        for (unsigned l = 0; l < kLanes; ++l) {
            const uint32_t s = st[l];
            const std::size_t row =
                static_cast<std::size_t>(s) * ways;
            const unsigned f = fl[l];
            const bool hit = way[l] < f;
            const uint32_t missWay =
                f < ways ? f : uint32_t{g.victim[l][s]};
            const uint32_t w = hit ? way[l] : missWay;
            tags[static_cast<std::size_t>(w) * kLanes + l] = id;
            fl[l] = static_cast<uint16_t>(
                f + static_cast<unsigned>(!hit && f < ways));
            const State* tbl = hit ? g.touch[l] : g.fill[l];
            st[l] = tbl[row + w];
            if (determined[j] &&
                hit != static_cast<bool>(observedHits[j]))
                match[l] = 0;
        }
    }
}

template <typename State>
void
runMatch(const uint32_t* seqIds, std::size_t n, unsigned ways,
         unsigned lanes, const GroupLanes<State>& g,
         const uint8_t* observedHits, const uint8_t* determined,
         char* match)
{
    switch (lanes) {
    case 16:
        matchLoop<State, 16>(seqIds, n, ways, g, observedHits,
                             determined, match);
        break;
    case 8:
        matchLoop<State, 8>(seqIds, n, ways, g, observedHits,
                            determined, match);
        break;
    case 4:
        matchLoop<State, 4>(seqIds, n, ways, g, observedHits,
                            determined, match);
        break;
    case 2:
        matchLoop<State, 2>(seqIds, n, ways, g, observedHits,
                            determined, match);
        break;
    case 1:
        matchLoop<State, 1>(seqIds, n, ways, g, observedHits,
                            determined, match);
        break;
    default:
        throw UsageError("multi_kernel: unsupported lane width " +
                         std::to_string(lanes));
    }
}

/** Width-dispatching match driver over one homogeneous group. */
void
runMatchGroup(const uint32_t* seqIds, std::size_t n, unsigned ways,
              const policy::TableLanes& tables,
              const uint8_t* observedHits, const uint8_t* determined,
              char* match)
{
    require(ways < 64,
            "multi_kernel: lockstep groups support < 64 ways");
    const unsigned width = static_cast<unsigned>(tables.size());
    if (tables[0].touch16 != nullptr) {
        const GroupLanes<uint16_t> g(tables);
        runMatch(seqIds, n, ways, width, g, observedHits, determined,
                 match);
    } else {
        const GroupLanes<uint32_t> g(tables);
        runMatch(seqIds, n, ways, width, g, observedHits, determined,
                 match);
    }
}

} // namespace

std::vector<char>
matchObservationMultiPolicy(unsigned ways,
                            const std::vector<SetLane>& lanes,
                            const std::vector<policy::BlockId>& seq,
                            const std::vector<bool>& observedHits,
                            const std::vector<bool>& determined,
                            unsigned numThreads)
{
    require(ways >= 1, "matchObservationMultiPolicy: ways >= 1");
    require(observedHits.size() == seq.size() &&
                determined.size() == seq.size(),
            "matchObservationMultiPolicy: observation/sequence "
            "length mismatch");

    std::vector<char> match(lanes.size(), 1);
    if (lanes.empty() || seq.empty())
        return match;

    std::vector<std::size_t> compiledIdx;
    std::vector<std::size_t> fallbackIdx;
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        require(lanes[i].prototype != nullptr,
                "matchObservationMultiPolicy: null prototype");
        require(lanes[i].prototype->ways() == ways,
                "matchObservationMultiPolicy: lane associativity "
                "mismatch");
        if (lanes[i].table) {
            require(lanes[i].table->ways() == ways,
                    "matchObservationMultiPolicy: table "
                    "associativity mismatch");
            compiledIdx.push_back(i);
        } else {
            fallbackIdx.push_back(i);
        }
    }

    // Dense first-occurrence ids (>= 1), shared by every lane.
    std::vector<uint32_t> seqIds;
    seqIds.reserve(seq.size());
    std::unordered_map<policy::BlockId, uint32_t> idOf;
    for (const policy::BlockId block : seq) {
        auto [it, inserted] = idOf.try_emplace(
            block, static_cast<uint32_t>(idOf.size() + 1));
        (void)inserted;
        seqIds.push_back(it->second);
    }
    std::vector<uint8_t> hitsRaw(seq.size());
    std::vector<uint8_t> determinedRaw(seq.size());
    for (std::size_t j = 0; j < seq.size(); ++j) {
        hitsRaw[j] = observedHits[j] ? 1 : 0;
        determinedRaw[j] = determined[j] ? 1 : 0;
    }

    struct Group
    {
        std::vector<std::size_t> laneIdx;
        unsigned active = 0; ///< real lanes; the rest is padding
    };
    // Width-homogeneous groups: narrow lanes first, then wide, each
    // chunked independently (same invariant as simulateMultiPolicy).
    std::stable_partition(compiledIdx.begin(), compiledIdx.end(),
                          [&](std::size_t i) {
                              return lanes[i].table->narrow();
                          });
    std::vector<Group> groups;
    {
        std::vector<std::size_t> run;
        const auto flushRun = [&] {
            std::size_t next = 0;
            for (const unsigned width :
                 groupWidths(run.size(), kMaxGroupLanes)) {
                Group group;
                for (unsigned l = 0; l < width && next < run.size();
                     ++l)
                    group.laneIdx.push_back(run[next++]);
                group.active =
                    static_cast<unsigned>(group.laneIdx.size());
                while (group.laneIdx.size() < width)
                    group.laneIdx.push_back(group.laneIdx.front());
                groups.push_back(std::move(group));
            }
            run.clear();
        };
        for (const std::size_t i : compiledIdx) {
            if (!run.empty() && lanes[run.front()].table->narrow() !=
                                    lanes[i].table->narrow())
                flushRun();
            run.push_back(i);
        }
        flushRun();
    }

    parallelFor(
        groups.size() + fallbackIdx.size(), numThreads,
        [&](std::size_t item) {
            if (item < groups.size()) {
                const Group& group = groups[item];
                std::vector<policy::CompiledTablePtr> groupTables;
                for (const std::size_t i : group.laneIdx)
                    groupTables.push_back(lanes[i].table);
                const policy::TableLanes tables(
                    std::move(groupTables));
                char groupMatch[kMaxGroupLanes];
                runMatchGroup(seqIds.data(), seqIds.size(), ways,
                              tables, hitsRaw.data(),
                              determinedRaw.data(), groupMatch);
                for (std::size_t l = 0; l < group.active; ++l)
                    match[group.laneIdx[l]] = groupMatch[l];
                return;
            }
            const std::size_t i =
                fallbackIdx[item - groups.size()];
            policy::SetModel model(lanes[i].prototype->clone());
            model.flush();
            bool ok = true;
            for (std::size_t j = 0; j < seq.size(); ++j) {
                const bool hit = model.access(seq[j]);
                if (determinedRaw[j] &&
                    hit != static_cast<bool>(hitsRaw[j])) {
                    ok = false;
                    break;
                }
            }
            match[i] = ok ? 1 : 0;
        });
    return match;
}

} // namespace recap::eval
