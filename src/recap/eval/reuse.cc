#include "recap/eval/reuse.hh"

#include <unordered_map>

#include "recap/common/error.hh"

namespace recap::eval
{

namespace
{

/** Fenwick tree over access positions, for distinct-block counting. */
class Fenwick
{
  public:
    explicit Fenwick(size_t n) : tree_(n + 1, 0) {}

    void
    add(size_t pos, int delta)
    {
        for (size_t i = pos + 1; i < tree_.size(); i += i & (~i + 1))
            tree_[i] += delta;
    }

    /** Sum over positions [0, pos]. */
    int64_t
    prefix(size_t pos) const
    {
        int64_t sum = 0;
        for (size_t i = pos + 1; i > 0; i -= i & (~i + 1))
            sum += tree_[i];
        return sum;
    }

  private:
    std::vector<int64_t> tree_;
};

} // namespace

double
ReuseProfile::lruMissRatio(uint64_t lines) const
{
    if (accesses == 0)
        return 0.0;
    // Accesses at stack distance >= lines miss; cold misses always.
    uint64_t misses = coldMisses;
    for (const auto& [distance, count] : distances.buckets())
        if (static_cast<uint64_t>(distance) >= lines)
            misses += count;
    return static_cast<double>(misses) /
           static_cast<double>(accesses);
}

std::optional<uint64_t>
ReuseProfile::capacityForMissRatio(double targetMissRatio) const
{
    require(targetMissRatio >= 0.0 && targetMissRatio <= 1.0,
            "capacityForMissRatio: target outside [0,1]");
    if (accesses == 0)
        return 1;
    // The largest distance observed bounds the useful capacity.
    uint64_t max_distance = 0;
    for (const auto& [distance, count] : distances.buckets()) {
        (void)count;
        max_distance = std::max(max_distance,
                                static_cast<uint64_t>(distance));
    }
    // Miss ratio is non-increasing in capacity: binary search.
    uint64_t lo = 1;
    uint64_t hi = max_distance + 1;
    if (lruMissRatio(hi) > targetMissRatio)
        return std::nullopt;
    while (lo < hi) {
        const uint64_t mid = lo + (hi - lo) / 2;
        if (lruMissRatio(mid) <= targetMissRatio)
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

ReuseProfile
reuseProfile(const trace::Trace& t, unsigned lineSize)
{
    require(lineSize >= 1, "reuseProfile: line size must be >= 1");
    ReuseProfile profile;
    profile.accesses = t.size();

    Fenwick marks(t.size());
    std::unordered_map<uint64_t, size_t> last_position;
    last_position.reserve(t.size() / 4 + 1);

    for (size_t i = 0; i < t.size(); ++i) {
        const uint64_t block = t[i] / lineSize;
        auto it = last_position.find(block);
        if (it == last_position.end()) {
            ++profile.coldMisses;
        } else {
            // Distinct blocks touched strictly after the previous
            // access to this block = marked positions in
            // (last, i-1], minus the block's own mark.
            const int64_t between =
                marks.prefix(i == 0 ? 0 : i - 1) -
                marks.prefix(it->second);
            profile.distances.add(between);
            marks.add(it->second, -1);
        }
        marks.add(i, +1);
        last_position[block] = i;
    }
    return profile;
}

} // namespace recap::eval
