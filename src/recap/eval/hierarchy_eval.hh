/**
 * @file
 * Whole-hierarchy evaluation: run a trace through a multi-level
 * cache configuration and report per-level statistics plus the
 * average memory access time (AMAT) — the end-to-end performance
 * lens on the reverse-engineered policies.
 *
 * evaluateHierarchy() rides the compiled hier:: subsystem whenever
 * the level policies fit the compile budget and falls back to the
 * interpreted cache::Hierarchy otherwise (mirroring
 * policy::makeCompiledOrFallback); both paths are bit-identical, so
 * the choice is purely a performance one and can be forced for
 * differential measurement via HierarchyOptions.
 */

#ifndef RECAP_EVAL_HIERARCHY_EVAL_HH_
#define RECAP_EVAL_HIERARCHY_EVAL_HH_

#include <string>
#include <vector>

#include "recap/cache/hierarchy.hh"
#include "recap/hw/spec.hh"
#include "recap/policy/compiled.hh"
#include "recap/trace/trace.hh"

namespace recap::eval
{

/** Per-level and end-to-end results of a hierarchy run. */
struct HierarchyResult
{
    std::vector<std::string> levelNames;
    std::vector<cache::LevelStats> levels;
    /** Hits served by each level; last entry = memory accesses. */
    std::vector<uint64_t> servedBy;
    uint64_t accesses = 0;
    uint64_t totalCycles = 0;

    /** Average memory access time in cycles. */
    double amat() const
    {
        return accesses ? static_cast<double>(totalCycles) /
                          static_cast<double>(accesses) : 0.0;
    }
};

/** Evaluation knobs beyond the bare seed. */
struct HierarchyOptions
{
    uint64_t seed = 1;

    /** Cross-level content discipline. */
    cache::InclusionMode inclusion =
        cache::InclusionMode::kNonInclusive;

    /** Compile budget for the fast path's policy tables. */
    policy::CompileBudget budget;

    /**
     * Run the interpreted cache::Hierarchy instead of the compiled
     * subsystem — the baseline side of speedup measurements.
     */
    bool forceInterpreted = false;
};

/**
 * Builds an interpreted Hierarchy from a machine spec (same wiring
 * Machine uses; the reference the compiled path is pinned against).
 */
cache::Hierarchy buildHierarchy(
    const hw::MachineSpec& spec, uint64_t seed = 1,
    cache::InclusionMode mode = cache::InclusionMode::kNonInclusive);

/** Runs a load trace through the spec's hierarchy. */
HierarchyResult evaluateHierarchy(const hw::MachineSpec& spec,
                                  const trace::Trace& t,
                                  uint64_t seed = 1);

/** Runs a reference (load/store) trace through the hierarchy. */
HierarchyResult evaluateHierarchy(const hw::MachineSpec& spec,
                                  const trace::RefTrace& refs,
                                  uint64_t seed = 1);

/** Runs a load trace with explicit options. */
HierarchyResult evaluateHierarchy(const hw::MachineSpec& spec,
                                  const trace::Trace& t,
                                  const HierarchyOptions& opts);

/** Runs a reference trace with explicit options. */
HierarchyResult evaluateHierarchy(const hw::MachineSpec& spec,
                                  const trace::RefTrace& refs,
                                  const HierarchyOptions& opts);

/**
 * Convenience: a copy of @p spec with level @p level's policy
 * replaced by @p policySpec (and adaptivity removed at that level) —
 * for "what if this machine used policy X here?" comparisons.
 */
hw::MachineSpec withLevelPolicy(const hw::MachineSpec& spec,
                                unsigned level,
                                const std::string& policySpec);

} // namespace recap::eval

#endif // RECAP_EVAL_HIERARCHY_EVAL_HH_
