/**
 * @file
 * Belady's OPT: the offline-optimal replacement baseline used to
 * lower-bound every policy's miss ratio in the evaluation figures.
 */

#ifndef RECAP_EVAL_OPT_HH_
#define RECAP_EVAL_OPT_HH_

#include "recap/cache/cache.hh"
#include "recap/trace/trace.hh"

namespace recap::eval
{

/**
 * Simulates @p t against a cache with Belady's optimal replacement
 * (evict the resident line whose next use is farthest in the
 * future). Exact, per-set, O(n log ways).
 */
cache::LevelStats
simulateOpt(const cache::Geometry& geom, const trace::Trace& t);

} // namespace recap::eval

#endif // RECAP_EVAL_OPT_HH_
