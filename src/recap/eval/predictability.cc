#include "recap/eval/predictability.hh"

#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "recap/common/error.hh"
#include "recap/common/parallel.hh"
#include "recap/policy/compiled.hh"
#include "recap/policy/factory.hh"
#include "recap/policy/set_model.hh"

namespace recap::eval
{

namespace
{

using policy::BlockId;
using policy::PolicyPtr;
using policy::SetModel;

/** Key of a full-set game state with the target marked. */
std::string
gameKey(const SetModel& m, BlockId target)
{
    std::map<BlockId, char> names;
    std::string key;
    for (unsigned w = 0; w < m.ways(); ++w) {
        if (!m.isValid(w)) {
            key.push_back('.');
            continue;
        }
        const BlockId b = m.blockAt(w);
        if (b == target) {
            key.push_back('T');
            continue;
        }
        auto [it, ignored] = names.emplace(
            b, static_cast<char>('a' + names.size()));
        (void)ignored;
        key.push_back(it->second);
    }
    key.push_back('/');
    key += m.policy().stateKey();
    return key;
}

/** Compile @p proto under the exploration budget of @p cfg. */
policy::CompiledTablePtr
compileForMetric(const policy::ReplacementPolicy& proto,
                 const PredictabilityConfig& cfg)
{
    policy::CompileBudget budget;
    budget.maxStates = cfg.maxStates;
    return policy::compilePolicy(proto, budget);
}

/**
 * missTurnover over the compiled automaton: the same BFS and the
 * same turnover simulation, but states are table indices and the
 * cycle-detection signature packs (state, originals) into one
 * integer instead of concatenating strings. Requires k <= 32 so the
 * originals mask fits next to the 32-bit state index.
 */
MetricResult
missTurnoverCompiled(const policy::CompiledTable& table,
                     const PredictabilityConfig& cfg)
{
    const unsigned k = table.ways();
    MetricResult result;

    const uint32_t* touchNext = table.touchData();
    const uint32_t* fillNext = table.fillData();
    const uint16_t* victim = table.victimData();

    // Canonical fill to a full set from the reset state (index 0).
    uint32_t initial = 0;
    for (unsigned w = 0; w < k; ++w)
        initial =
            fillNext[static_cast<std::size_t>(initial) * k + w];

    std::vector<bool> visited(table.numStates(), false);
    std::deque<uint32_t> frontier;
    visited[initial] = true;
    frontier.push_back(initial);

    uint64_t worst = 0;
    std::unordered_set<uint64_t> seen;

    while (!frontier.empty()) {
        const uint32_t state = frontier.front();
        frontier.pop_front();
        ++result.statesExplored;
        if (result.statesExplored > cfg.maxStates) {
            result.exhaustedBudget = true;
            return result;
        }

        // Turnover from this state: consecutive misses until every
        // currently resident way has been refilled at least once.
        {
            uint32_t sim = state;
            uint64_t originals = (uint64_t{1} << k) - 1;
            uint64_t count = 0;
            seen.clear();
            while (originals != 0) {
                const uint64_t sig =
                    (uint64_t{sim} << 32) | originals;
                if (!seen.insert(sig).second) {
                    result.unbounded = true;
                    return result;
                }
                const unsigned v = victim[sim];
                sim = fillNext[static_cast<std::size_t>(sim) * k + v];
                originals &= ~(uint64_t{1} << v);
                ++count;
            }
            worst = std::max(worst, count);
        }

        // Successors: touch(w) for each way, plus one filled miss.
        const std::size_t row = static_cast<std::size_t>(state) * k;
        for (unsigned w = 0; w < k; ++w) {
            const uint32_t next = touchNext[row + w];
            if (!visited[next]) {
                visited[next] = true;
                frontier.push_back(next);
            }
        }
        {
            const uint32_t next = fillNext[row + victim[state]];
            if (!visited[next]) {
                visited[next] = true;
                frontier.push_back(next);
            }
        }
    }

    result.value = worst;
    return result;
}

} // namespace

std::string
MetricResult::render() const
{
    if (unbounded)
        return "unbounded";
    if (exhaustedBudget)
        return ">budget";
    ensure(value.has_value(), "MetricResult: no value computed");
    return std::to_string(*value);
}

MetricResult
missTurnover(const policy::ReplacementPolicy& proto,
             const PredictabilityConfig& cfg)
{
    const unsigned k = proto.ways();

    // Fast path: walk the compiled automaton with integer states.
    // Interning by stateKey makes the traversal isomorphic to the
    // string-keyed one below, so both paths return identical results;
    // when compilation exceeds the budget, fall through.
    if (k <= 32) {
        if (const auto table = compileForMetric(proto, cfg))
            return missTurnoverCompiled(*table, cfg);
    }

    MetricResult result;

    // Enumerate reachable policy states (on a full set, the contents
    // are irrelevant up to renaming, so the policy automaton alone
    // suffices: inputs are touch(w) and miss).
    std::unordered_set<std::string> visited;
    std::deque<PolicyPtr> frontier;

    PolicyPtr initial = proto.clone();
    initial->reset();
    // Canonical fill to a full set.
    for (unsigned w = 0; w < k; ++w)
        initial->fill(w);
    visited.insert(initial->stateKey());
    frontier.push_back(std::move(initial));

    uint64_t worst = 0;

    while (!frontier.empty()) {
        PolicyPtr state = std::move(frontier.front());
        frontier.pop_front();
        ++result.statesExplored;
        if (result.statesExplored > cfg.maxStates) {
            result.exhaustedBudget = true;
            return result;
        }

        // Turnover from this state: consecutive misses until every
        // currently resident way has been refilled at least once.
        {
            PolicyPtr sim = state->clone();
            uint64_t originals = (k >= 64) ? ~uint64_t{0}
                                           : ((uint64_t{1} << k) - 1);
            uint64_t count = 0;
            std::unordered_set<std::string> seen;
            while (originals != 0) {
                const std::string sig = sim->stateKey() + ":" +
                                        std::to_string(originals);
                if (!seen.insert(sig).second) {
                    result.unbounded = true;
                    return result;
                }
                const policy::Way v = sim->victim();
                sim->fill(v);
                originals &= ~(uint64_t{1} << v);
                ++count;
            }
            worst = std::max(worst, count);
        }

        // Successors.
        for (unsigned w = 0; w <= k; ++w) {
            PolicyPtr next = state->clone();
            if (w < k) {
                next->touch(w);
            } else {
                next->fill(next->victim());
            }
            std::string key = next->stateKey();
            if (visited.insert(std::move(key)).second)
                frontier.push_back(std::move(next));
        }
    }

    result.value = worst;
    return result;
}

namespace
{

MetricResult
evictBoundImpl(const policy::ReplacementPolicy& proto,
               const PredictabilityConfig& cfg)
{
    const unsigned k = proto.ways();
    MetricResult result;
    constexpr BlockId kTarget = 0;

    struct Edge
    {
        uint32_t to;
        uint8_t weight; ///< 1 for a (surviving) miss, 0 for a hit
    };

    std::vector<SetModel> models;
    std::vector<std::vector<Edge>> edges;
    std::unordered_map<std::string, uint32_t> index;
    std::deque<uint32_t> frontier;
    std::vector<uint32_t> roots;

    auto intern = [&](SetModel&& m) -> std::optional<uint32_t> {
        std::string key = gameKey(m, kTarget);
        auto it = index.find(key);
        if (it != index.end())
            return it->second;
        if (models.size() >= cfg.maxStates)
            return std::nullopt;
        const auto id = static_cast<uint32_t>(models.size());
        index.emplace(std::move(key), id);
        models.push_back(std::move(m));
        edges.emplace_back();
        frontier.push_back(id);
        return id;
    };

    // Canonical initial states: flush + sequential fill, with the
    // target placed at every fill position in turn.
    for (unsigned t_pos = 0; t_pos < k; ++t_pos) {
        SetModel m(proto.clone());
        m.flush();
        BlockId other = 1;
        for (unsigned i = 0; i < k; ++i)
            m.access(i == t_pos ? kTarget : other++);
        auto id = intern(std::move(m));
        if (id)
            roots.push_back(*id);
    }

    // Build the reachable game graph.
    while (!frontier.empty()) {
        const uint32_t id = frontier.front();
        frontier.pop_front();
        ++result.statesExplored;

        // Collect the resident blocks first; expanding mutates models.
        std::vector<BlockId> resident;
        BlockId max_block = 0;
        for (unsigned w = 0; w < k; ++w) {
            const BlockId b = models[id].blockAt(w);
            resident.push_back(b);
            max_block = std::max(max_block, b);
        }

        for (BlockId b : resident) {
            if (b == kTarget)
                continue; // the adversary may not touch the target
            SetModel next = models[id];
            next.access(b);
            auto nid = intern(std::move(next));
            if (!nid) {
                result.exhaustedBudget = true;
                return result;
            }
            edges[id].push_back({*nid, 0});
        }
        {
            SetModel next = models[id];
            next.access(max_block + 1);
            if (next.contains(kTarget)) {
                auto nid = intern(std::move(next));
                if (!nid) {
                    result.exhaustedBudget = true;
                    return result;
                }
                edges[id].push_back({*nid, 1});
            }
            // A miss that evicts the target ends the game (value 0
            // contribution), so no edge is recorded.
        }
    }

    // Tarjan SCC (iterative).
    const auto n = static_cast<uint32_t>(models.size());
    std::vector<uint32_t> comp(n, UINT32_MAX), low(n), disc(n);
    std::vector<bool> on_stack(n, false);
    std::vector<uint32_t> stack;
    uint32_t timer = 0, comp_count = 0;

    struct Frame
    {
        uint32_t node;
        size_t edge;
    };
    for (uint32_t start = 0; start < n; ++start) {
        if (comp[start] != UINT32_MAX || disc[start] != 0)
            continue;
        std::vector<Frame> call;
        call.push_back({start, 0});
        disc[start] = low[start] = ++timer;
        stack.push_back(start);
        on_stack[start] = true;
        while (!call.empty()) {
            Frame& f = call.back();
            if (f.edge < edges[f.node].size()) {
                const uint32_t to = edges[f.node][f.edge++].to;
                if (disc[to] == 0) {
                    disc[to] = low[to] = ++timer;
                    stack.push_back(to);
                    on_stack[to] = true;
                    call.push_back({to, 0});
                } else if (on_stack[to]) {
                    low[f.node] = std::min(low[f.node], disc[to]);
                }
            } else {
                if (low[f.node] == disc[f.node]) {
                    while (true) {
                        const uint32_t v = stack.back();
                        stack.pop_back();
                        on_stack[v] = false;
                        comp[v] = comp_count;
                        if (v == f.node)
                            break;
                    }
                    ++comp_count;
                }
                const uint32_t done = f.node;
                call.pop_back();
                if (!call.empty()) {
                    low[call.back().node] =
                        std::min(low[call.back().node], low[done]);
                }
            }
        }
    }

    // A miss edge inside an SCC (including a self loop) lets the
    // adversary survive arbitrarily many misses.
    for (uint32_t v = 0; v < n; ++v) {
        for (const Edge& e : edges[v]) {
            if (e.weight == 1 && comp[v] == comp[e.to]) {
                result.unbounded = true;
                return result;
            }
        }
    }

    // Longest path on the condensation. Tarjan numbers components in
    // reverse topological order (edges go from higher comp id to
    // lower or within), so process components in increasing id.
    std::vector<std::vector<uint32_t>> members(comp_count);
    for (uint32_t v = 0; v < n; ++v)
        members[comp[v]].push_back(v);
    std::vector<uint64_t> comp_value(comp_count, 0);
    for (uint32_t c = 0; c < comp_count; ++c) {
        uint64_t best = 0;
        for (uint32_t v : members[c]) {
            for (const Edge& e : edges[v]) {
                if (comp[e.to] == c)
                    continue;
                best = std::max(best,
                                e.weight + comp_value[comp[e.to]]);
            }
        }
        comp_value[c] = best;
    }

    uint64_t answer = 0;
    for (uint32_t r : roots)
        answer = std::max(answer, comp_value[comp[r]]);
    result.value = answer;
    return result;
}

} // namespace

MetricResult
evictBound(const policy::ReplacementPolicy& proto,
           const PredictabilityConfig& cfg)
{
    // The game graph is keyed by set contents plus the policy's
    // stateKey, which CompiledPolicy forwards verbatim from its
    // table, so wrapping the prototype changes nothing about the
    // exploration — it only makes the inner clone/victim/stateKey
    // calls table lookups instead of per-policy virtual work.
    if (const auto table = compileForMetric(proto, cfg)) {
        const policy::CompiledPolicy fast(table);
        return evictBoundImpl(fast, cfg);
    }
    return evictBoundImpl(proto, cfg);
}

std::vector<PredictabilityRow>
predictabilitySweep(const std::vector<std::string>& specs,
                    const std::vector<unsigned>& waysList,
                    const PredictabilityConfig& cfg)
{
    std::vector<PredictabilityRow> rows;
    for (const auto& spec : specs)
        for (unsigned ways : waysList)
            if (policy::specSupportsWays(spec, ways))
                rows.push_back({spec, ways, {}, {}});

    // Each row explores its own automaton; explorations share nothing
    // and use no RNG, so the grid is identical for any thread count.
    parallelFor(rows.size(), cfg.numThreads, [&](std::size_t i) {
        const auto proto = policy::makePolicy(rows[i].spec,
                                              rows[i].ways);
        rows[i].turnover = missTurnover(*proto, cfg);
        rows[i].evictBound = evictBound(*proto, cfg);
    });
    return rows;
}

} // namespace recap::eval
