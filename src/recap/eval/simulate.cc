#include "recap/eval/simulate.hh"

#include "recap/common/error.hh"
#include "recap/eval/kernel.hh"

namespace recap::eval
{

cache::LevelStats
simulateTrace(const cache::Geometry& geom,
              const std::string& policySpec, const trace::Trace& t,
              uint64_t seed)
{
    // Compiled-table kernel when the policy fits the compile budget,
    // interpreted cache::Cache otherwise; bit-identical results
    // either way (tests/test_kernel.cc pins the equivalence).
    KernelOptions opts;
    opts.seed = seed;
    return simulateTraceKernel(geom, policySpec, t, opts);
}

cache::LevelStats
simulateTraceAdaptive(const cache::Geometry& geom,
                      const std::string& specA,
                      const std::string& specB,
                      const cache::DuelingConfig& duel,
                      const trace::Trace& t, uint64_t seed)
{
    cache::Cache c(geom, specA, specB, duel, "eval-adaptive", seed);
    simulateOn(c, t);
    return c.stats();
}

cache::LevelStats
simulatePcTrace(const cache::Geometry& geom,
                const std::string& policySpec,
                const trace::PcTrace& t, uint64_t seed)
{
    cache::Cache c(geom, policySpec, "eval-pc", seed);
    simulateOn(c, t);
    return c.stats();
}

void
simulateOn(cache::Cache& cache, const trace::Trace& t)
{
    for (cache::Addr a : t)
        cache.access(a);
}

void
simulateOn(cache::Cache& cache, const trace::PcTrace& t)
{
    for (const trace::PcAccess& a : t)
        cache.accessWithPc(a.addr, a.pc);
}

std::vector<double>
windowedMissRatios(cache::Cache& cache, const trace::Trace& t,
                   size_t windowSize)
{
    require(windowSize >= 1,
            "windowedMissRatios: window must be >= 1");
    std::vector<double> ratios;
    size_t in_window = 0;
    size_t misses = 0;
    for (cache::Addr a : t) {
        if (!cache.access(a))
            ++misses;
        if (++in_window == windowSize) {
            ratios.push_back(static_cast<double>(misses) /
                             static_cast<double>(windowSize));
            in_window = 0;
            misses = 0;
        }
    }
    if (in_window > 0) {
        ratios.push_back(static_cast<double>(misses) /
                         static_cast<double>(in_window));
    }
    return ratios;
}

} // namespace recap::eval
