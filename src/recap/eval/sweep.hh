/**
 * @file
 * Structured parameter sweeps for the evaluation benches: run a
 * workload across policies, cache sizes or associativities and
 * collect the miss ratios as a labelled grid.
 */

#ifndef RECAP_EVAL_SWEEP_HH_
#define RECAP_EVAL_SWEEP_HH_

#include <string>
#include <vector>

#include "recap/cache/geometry.hh"
#include "recap/trace/trace.hh"

namespace recap::eval
{

/**
 * Execution options shared by all sweeps.
 *
 * Sweeps are reproducible from @p seed alone: cell i of the grid (in
 * row-major sweep order) simulates with deriveTaskSeed(seed, i), so
 * stochastic policies get an independent deterministic stream per
 * cell and results are bit-identical for every numThreads value.
 */
struct SweepOptions
{
    /** Root seed for stochastic policies ("random"). */
    uint64_t seed = 1;

    /**
     * Worker threads measuring grid cells; 0 = hardware concurrency,
     * 1 = inline serial execution. Any value yields identical grids.
     */
    unsigned numThreads = 0;

    /** Append a Belady's-OPT row. */
    bool includeOpt = true;
};

/** One measured grid cell. */
struct SweepCell
{
    std::string rowLabel;
    std::string columnLabel;
    double missRatio = 0.0;
    uint64_t misses = 0;
    uint64_t accesses = 0;
};

/** A labelled result grid, row-major in sweep order. */
struct SweepResult
{
    std::vector<std::string> rowLabels;
    std::vector<std::string> columnLabels;
    std::vector<SweepCell> cells;

    /** Cell lookup; throws UsageError if absent. */
    const SweepCell& at(const std::string& row,
                        const std::string& column) const;
};

/**
 * Policies x workloads grid at a fixed geometry. Policy specs that
 * do not support the geometry's associativity are skipped. When
 * @p opts.includeOpt is set, a final "OPT" row is added.
 */
SweepResult
policyWorkloadSweep(const cache::Geometry& geom,
                    const std::vector<std::string>& policySpecs,
                    const std::vector<trace::Workload>& workloads,
                    const SweepOptions& opts);

/** Legacy form; equivalent to SweepOptions{} + @p includeOpt. */
SweepResult
policyWorkloadSweep(const cache::Geometry& geom,
                    const std::vector<std::string>& policySpecs,
                    const std::vector<trace::Workload>& workloads,
                    bool includeOpt = true);

/**
 * Policies x cache-size grid for one workload: capacities double
 * from @p minBytes to @p maxBytes at fixed ways and line size.
 */
SweepResult
sizeSweep(const std::vector<std::string>& policySpecs,
          const trace::Trace& workload, uint64_t minBytes,
          uint64_t maxBytes, unsigned ways, unsigned lineSize,
          const SweepOptions& opts);

/** Legacy form; equivalent to SweepOptions{} + @p includeOpt. */
SweepResult
sizeSweep(const std::vector<std::string>& policySpecs,
          const trace::Trace& workload, uint64_t minBytes,
          uint64_t maxBytes, unsigned ways, unsigned lineSize = 64,
          bool includeOpt = true);

/**
 * Policies x associativity grid for one workload at fixed capacity:
 * ways double from @p minWays to @p maxWays.
 */
SweepResult
associativitySweep(const std::vector<std::string>& policySpecs,
                   const trace::Trace& workload,
                   uint64_t capacityBytes, unsigned minWays,
                   unsigned maxWays, unsigned lineSize,
                   const SweepOptions& opts);

/** Legacy form; equivalent to default SweepOptions. */
SweepResult
associativitySweep(const std::vector<std::string>& policySpecs,
                   const trace::Trace& workload,
                   uint64_t capacityBytes, unsigned minWays,
                   unsigned maxWays, unsigned lineSize = 64);

} // namespace recap::eval

#endif // RECAP_EVAL_SWEEP_HH_
