#include "recap/eval/hierarchy_eval.hh"

#include "recap/common/error.hh"
#include "recap/hier/hierarchy.hh"
#include "recap/hier/simulate.hh"

namespace recap::eval
{

cache::Hierarchy
buildHierarchy(const hw::MachineSpec& spec, uint64_t seed,
               cache::InclusionMode mode)
{
    spec.validate();
    cache::Hierarchy hierarchy(spec.memoryLatency, mode);
    uint64_t level_seed = seed;
    for (const auto& lvl : spec.levels) {
        if (lvl.isAdaptive()) {
            hierarchy.addLevel(
                cache::Cache(lvl.geometry(), lvl.policySpec,
                             lvl.policySpecB, lvl.duel, lvl.name,
                             level_seed),
                lvl.hitLatency);
        } else {
            hierarchy.addLevel(
                cache::Cache(lvl.geometry(), lvl.policySpec, lvl.name,
                             level_seed),
                lvl.hitLatency);
        }
        level_seed += 0x10001;
    }
    return hierarchy;
}

namespace
{

template <typename AccessFn>
HierarchyResult
runInterpreted(const hw::MachineSpec& spec, size_t count,
               const HierarchyOptions& opts, AccessFn&& access_one)
{
    cache::Hierarchy hierarchy =
        buildHierarchy(spec, opts.seed, opts.inclusion);

    HierarchyResult result;
    result.servedBy.assign(hierarchy.depth() + 1, 0);
    for (size_t i = 0; i < count; ++i) {
        const unsigned level = access_one(hierarchy, i);
        ++result.servedBy[level];
        result.totalCycles += hierarchy.latencyOf(level);
    }
    result.accesses = count;
    for (unsigned i = 0; i < hierarchy.depth(); ++i) {
        result.levelNames.push_back(hierarchy.level(i).cache.name());
        result.levels.push_back(hierarchy.level(i).cache.stats());
    }
    return result;
}

template <typename TraceT>
HierarchyResult
runCompiled(const hw::MachineSpec& spec, const TraceT& t,
            const HierarchyOptions& opts)
{
    hier::Options hopts;
    hopts.mode = opts.inclusion;
    hopts.budget = opts.budget;
    hier::Hierarchy hierarchy(spec, opts.seed, hopts);
    const hier::RunResult run = hier::runTrace(hierarchy, t);

    HierarchyResult result;
    result.servedBy = run.servedBy;
    result.accesses = run.accesses;
    result.totalCycles = run.totalCycles;
    for (unsigned i = 0; i < hierarchy.depth(); ++i) {
        result.levelNames.push_back(hierarchy.name(i));
        result.levels.push_back(hierarchy.stats(i));
    }
    return result;
}

} // namespace

HierarchyResult
evaluateHierarchy(const hw::MachineSpec& spec, const trace::Trace& t,
                  uint64_t seed)
{
    HierarchyOptions opts;
    opts.seed = seed;
    return evaluateHierarchy(spec, t, opts);
}

HierarchyResult
evaluateHierarchy(const hw::MachineSpec& spec,
                  const trace::RefTrace& refs, uint64_t seed)
{
    HierarchyOptions opts;
    opts.seed = seed;
    return evaluateHierarchy(spec, refs, opts);
}

HierarchyResult
evaluateHierarchy(const hw::MachineSpec& spec, const trace::Trace& t,
                  const HierarchyOptions& opts)
{
    if (opts.forceInterpreted) {
        return runInterpreted(spec, t.size(), opts,
                              [&](cache::Hierarchy& h, size_t i) {
                                  return h.access(t[i]);
                              });
    }
    return runCompiled(spec, t, opts);
}

HierarchyResult
evaluateHierarchy(const hw::MachineSpec& spec,
                  const trace::RefTrace& refs,
                  const HierarchyOptions& opts)
{
    if (opts.forceInterpreted) {
        return runInterpreted(spec, refs.size(), opts,
                              [&](cache::Hierarchy& h, size_t i) {
                                  return h.access(refs[i].addr,
                                                  refs[i].write);
                              });
    }
    return runCompiled(spec, refs, opts);
}

hw::MachineSpec
withLevelPolicy(const hw::MachineSpec& spec, unsigned level,
                const std::string& policySpec)
{
    require(level < spec.levels.size(),
            "withLevelPolicy: level out of range");
    hw::MachineSpec modified = spec;
    modified.levels[level].policySpec = policySpec;
    modified.levels[level].policySpecB.clear();
    modified.validate();
    return modified;
}

} // namespace recap::eval
