#include "recap/eval/hierarchy_eval.hh"

#include "recap/common/error.hh"

namespace recap::eval
{

cache::Hierarchy
buildHierarchy(const hw::MachineSpec& spec, uint64_t seed)
{
    spec.validate();
    cache::Hierarchy hierarchy(spec.memoryLatency);
    uint64_t level_seed = seed;
    for (const auto& lvl : spec.levels) {
        if (lvl.isAdaptive()) {
            hierarchy.addLevel(
                cache::Cache(lvl.geometry(), lvl.policySpec,
                             lvl.policySpecB, lvl.duel, lvl.name,
                             level_seed),
                lvl.hitLatency);
        } else {
            hierarchy.addLevel(
                cache::Cache(lvl.geometry(), lvl.policySpec, lvl.name,
                             level_seed),
                lvl.hitLatency);
        }
        level_seed += 0x10001;
    }
    return hierarchy;
}

namespace
{

template <typename AccessFn>
HierarchyResult
runHierarchy(const hw::MachineSpec& spec, size_t count,
             uint64_t seed, AccessFn&& access_one)
{
    cache::Hierarchy hierarchy = buildHierarchy(spec, seed);

    HierarchyResult result;
    result.servedBy.assign(hierarchy.depth() + 1, 0);
    for (size_t i = 0; i < count; ++i) {
        const unsigned level = access_one(hierarchy, i);
        ++result.servedBy[level];
        result.totalCycles += hierarchy.latencyOf(level);
    }
    result.accesses = count;
    for (unsigned i = 0; i < hierarchy.depth(); ++i) {
        result.levelNames.push_back(hierarchy.level(i).cache.name());
        result.levels.push_back(hierarchy.level(i).cache.stats());
    }
    return result;
}

} // namespace

HierarchyResult
evaluateHierarchy(const hw::MachineSpec& spec, const trace::Trace& t,
                  uint64_t seed)
{
    return runHierarchy(spec, t.size(), seed,
                        [&](cache::Hierarchy& h, size_t i) {
                            return h.access(t[i]);
                        });
}

HierarchyResult
evaluateHierarchy(const hw::MachineSpec& spec,
                  const trace::RefTrace& refs, uint64_t seed)
{
    return runHierarchy(spec, refs.size(), seed,
                        [&](cache::Hierarchy& h, size_t i) {
                            return h.access(refs[i].addr,
                                            refs[i].write);
                        });
}

hw::MachineSpec
withLevelPolicy(const hw::MachineSpec& spec, unsigned level,
                const std::string& policySpec)
{
    require(level < spec.levels.size(),
            "withLevelPolicy: level out of range");
    hw::MachineSpec modified = spec;
    modified.levels[level].policySpec = policySpec;
    modified.levels[level].policySpecB.clear();
    modified.validate();
    return modified;
}

} // namespace recap::eval
