#include "recap/eval/kernel.hh"

#include "recap/common/bitops.hh"
#include "recap/common/error.hh"
#include "recap/common/parallel.hh"

namespace recap::eval
{

namespace
{

/**
 * The devirtualized access loop, templated over the transition-table
 * element width and the associativity: narrow (uint16) tables halve
 * the state-indexed working set and are used whenever the automaton
 * fits (see CompiledTable::narrow()); a compile-time kFixedWays (0 =
 * dynamic) lets the compiler unroll and vectorize the tag scan and
 * turn the row multiply into a shift. Every instantiation runs the
 * identical algorithm, so results cannot differ.
 */
template <typename State, unsigned kFixedWays>
uint64_t
kernelLoop(const trace::Trace& t, unsigned dynWays,
           unsigned offsetBits, unsigned setBits, uint64_t setMask,
           const State* __restrict touchNext,
           const State* __restrict fillNext,
           const uint16_t* __restrict victim,
           uint64_t* __restrict tags, uint32_t* __restrict state,
           uint16_t* __restrict filled, uint64_t& evictions)
{
    const unsigned ways = kFixedWays != 0 ? kFixedWays : dynWays;
    uint64_t hits = 0;
    for (const cache::Addr addr : t) {
        const uint64_t block = addr >> offsetBits;
        const auto set = static_cast<unsigned>(block & setMask);
        const uint64_t tag = block >> setBits;

        uint64_t* setTags = tags +
                            static_cast<std::size_t>(set) * ways;
        const unsigned live = filled[set];
        const uint32_t s = state[set];
        const std::size_t row = static_cast<std::size_t>(s) * ways;

        // Branchless scan of the whole row, keeping the lowest
        // matching way. Ways fill bottom-up and the kernel never
        // invalidates, so valid ways are exactly [0, live) and valid
        // tags within a set are unique; the zero-initialized tags of
        // ways >= live can only produce a spurious lowest match at an
        // index >= live, which the hit test below rejects.
        unsigned way = ways;
        for (unsigned w = ways; w-- > 0;) {
            if (setTags[w] == tag)
                way = w;
        }
        if (way < live) {
            ++hits;
            state[set] = touchNext[row + way];
            continue;
        }
        if (live < ways) {
            way = live;
            filled[set] = static_cast<uint16_t>(live + 1);
        } else {
            way = victim[s];
            ++evictions;
        }
        setTags[way] = tag;
        state[set] = fillNext[row + way];
    }
    return hits;
}

template <typename State>
uint64_t
runKernel(const trace::Trace& t, unsigned ways, unsigned offsetBits,
          unsigned setBits, uint64_t setMask, const State* touchNext,
          const State* fillNext, const uint16_t* victim,
          uint64_t* tags, uint32_t* state, uint16_t* filled,
          uint64_t& evictions)
{
    switch (ways) {
    case 2:
        return kernelLoop<State, 2>(t, ways, offsetBits, setBits,
                                    setMask, touchNext, fillNext,
                                    victim, tags, state, filled,
                                    evictions);
    case 4:
        return kernelLoop<State, 4>(t, ways, offsetBits, setBits,
                                    setMask, touchNext, fillNext,
                                    victim, tags, state, filled,
                                    evictions);
    case 8:
        return kernelLoop<State, 8>(t, ways, offsetBits, setBits,
                                    setMask, touchNext, fillNext,
                                    victim, tags, state, filled,
                                    evictions);
    case 16:
        return kernelLoop<State, 16>(t, ways, offsetBits, setBits,
                                     setMask, touchNext, fillNext,
                                     victim, tags, state, filled,
                                     evictions);
    default:
        return kernelLoop<State, 0>(t, ways, offsetBits, setBits,
                                    setMask, touchNext, fillNext,
                                    victim, tags, state, filled,
                                    evictions);
    }
}

} // namespace

cache::LevelStats
simulateCompiled(const cache::Geometry& geom,
                 const policy::CompiledTable& table,
                 const trace::Trace& t,
                 std::vector<SetImage>* finalImage)
{
    geom.validate();
    require(table.ways() == geom.ways,
            "simulateCompiled: table/geometry associativity mismatch");

    const unsigned numSets = geom.numSets;
    const unsigned ways = geom.ways;
    const unsigned offsetBits = log2Floor(geom.lineSize);
    const unsigned setBits = log2Floor(numSets);
    const uint64_t setMask = numSets - 1;

    // Structure-of-arrays set state. The kernel never invalidates, so
    // the valid ways of a set are exactly [0, filled): the fill
    // cursor doubles as the "lowest invalid way" the cache model
    // fills on cold misses.
    std::vector<uint64_t> tags(static_cast<std::size_t>(numSets) *
                               ways);
    std::vector<uint32_t> state(numSets, 0);
    std::vector<uint16_t> filled(numSets, 0);

    uint64_t evictions = 0;
    const uint64_t hits =
        table.narrow()
            ? runKernel(t, ways, offsetBits, setBits, setMask,
                        table.touchData16(), table.fillData16(),
                        table.victimData(), tags.data(), state.data(),
                        filled.data(), evictions)
            : runKernel(t, ways, offsetBits, setBits, setMask,
                        table.touchData(), table.fillData(),
                        table.victimData(), tags.data(), state.data(),
                        filled.data(), evictions);

    cache::LevelStats stats;
    stats.accesses = t.size();
    stats.hits = hits;
    stats.misses = t.size() - hits;
    stats.evictions = evictions;

    if (finalImage) {
        finalImage->clear();
        finalImage->reserve(numSets);
        for (unsigned set = 0; set < numSets; ++set) {
            SetImage image;
            image.tags.assign(ways, 0);
            image.valid.assign(ways, false);
            for (unsigned w = 0; w < filled[set]; ++w) {
                image.tags[w] =
                    tags[static_cast<std::size_t>(set) * ways + w];
                image.valid[w] = true;
            }
            image.policyKey = table.stateKey(state[set]);
            finalImage->push_back(std::move(image));
        }
    }
    return stats;
}

namespace
{

cache::LevelStats
simulateInterpreted(const cache::Geometry& geom,
                    const std::string& policySpec,
                    const trace::Trace& t, uint64_t seed)
{
    cache::Cache c(geom, policySpec, "eval", seed);
    for (const cache::Addr a : t)
        c.access(a);
    return c.stats();
}

} // namespace

cache::LevelStats
simulateTraceKernel(const cache::Geometry& geom,
                    const std::string& policySpec,
                    const trace::Trace& t, const KernelOptions& opts)
{
    if (!opts.forceInterpreted) {
        if (const policy::CompiledTablePtr table =
                policy::compiledTableFor(policySpec, geom.ways,
                                         opts.budget)) {
            return simulateCompiled(geom, *table, t);
        }
    }
    return simulateInterpreted(geom, policySpec, t, opts.seed);
}

std::vector<cache::LevelStats>
simulateTracesBatch(const cache::Geometry& geom,
                    const std::string& policySpec,
                    const std::vector<const trace::Trace*>& traces,
                    const KernelOptions& opts)
{
    const policy::CompiledTablePtr table =
        opts.forceInterpreted
            ? nullptr
            : policy::compiledTableFor(policySpec, geom.ways,
                                       opts.budget);

    std::vector<cache::LevelStats> results(traces.size());
    parallelFor(traces.size(), opts.numThreads, [&](std::size_t i) {
        require(traces[i] != nullptr,
                "simulateTracesBatch: null trace");
        results[i] = table
            ? simulateCompiled(geom, *table, *traces[i])
            : simulateInterpreted(geom, policySpec, *traces[i],
                                  deriveTaskSeed(opts.seed, i));
    });
    return results;
}

} // namespace recap::eval
