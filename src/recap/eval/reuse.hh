/**
 * @file
 * Reuse-distance (LRU stack distance) analysis of address traces.
 *
 * The reuse-distance histogram is the workload-side companion of the
 * policy-side analyses: it characterizes a trace independently of any
 * cache, and for a fully-associative LRU cache of k lines the miss
 * ratio is exactly P(distance >= k) — which makes it both a useful
 * workload descriptor and a strong cross-check for the trace-driven
 * simulator.
 */

#ifndef RECAP_EVAL_REUSE_HH_
#define RECAP_EVAL_REUSE_HH_

#include <cstdint>
#include <optional>
#include <vector>

#include "recap/common/stats.hh"
#include "recap/trace/trace.hh"

namespace recap::eval
{

/** Result of a reuse-distance pass over a trace. */
struct ReuseProfile
{
    /**
     * histogram[d] = number of accesses whose LRU stack distance is
     * exactly d (0 = immediate re-reference). Cold (first-touch)
     * accesses are counted separately.
     */
    Histogram distances;
    uint64_t coldMisses = 0;
    uint64_t accesses = 0;

    /**
     * Miss ratio of a fully-associative LRU cache with @p lines
     * lines, computed from the histogram (accesses with distance >=
     * lines miss, plus all cold misses).
     */
    double lruMissRatio(uint64_t lines) const;

    /**
     * Smallest fully-associative LRU capacity (in lines) whose miss
     * ratio does not exceed @p targetMissRatio; returns nullopt if
     * even a cache holding every line seen cannot reach it (cold
     * misses dominate).
     */
    std::optional<uint64_t>
    capacityForMissRatio(double targetMissRatio) const;
};

/**
 * Computes the reuse-distance profile of @p t at line granularity.
 * O(n log n) via an order-statistic-free two-level counting scheme
 * suitable for the trace sizes recap works with.
 */
ReuseProfile reuseProfile(const trace::Trace& t, unsigned lineSize = 64);

} // namespace recap::eval

#endif // RECAP_EVAL_REUSE_HH_
