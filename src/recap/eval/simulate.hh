/**
 * @file
 * Trace-driven evaluation: run a workload trace through a cache with
 * a chosen replacement policy and report the miss statistics.
 */

#ifndef RECAP_EVAL_SIMULATE_HH_
#define RECAP_EVAL_SIMULATE_HH_

#include <string>

#include "recap/cache/cache.hh"
#include "recap/trace/trace.hh"

namespace recap::eval
{

/**
 * Simulates @p t against a single-level cache.
 *
 * Runs on the compiled-automaton batch kernel (eval/kernel.hh)
 * whenever the policy compiles within the default budget, and on the
 * interpreted cache::Cache otherwise; both paths produce identical
 * statistics.
 *
 * @param geom       Cache geometry.
 * @param policySpec Replacement policy spec (policy::makePolicy).
 * @param t          Load-address trace.
 * @param seed       Seed for stochastic policies.
 */
cache::LevelStats
simulateTrace(const cache::Geometry& geom, const std::string& policySpec,
              const trace::Trace& t, uint64_t seed = 1);

/**
 * Simulates @p t against an adaptive (set-dueling) single-level
 * cache.
 */
cache::LevelStats
simulateTraceAdaptive(const cache::Geometry& geom,
                      const std::string& specA, const std::string& specB,
                      const cache::DuelingConfig& duel,
                      const trace::Trace& t, uint64_t seed = 1);

/**
 * Simulates a PC-annotated trace against a single-level cache,
 * feeding each access's program counter to the replacement policy
 * via the AccessMeta side channel. Always runs the interpreted
 * cache::Cache: meta-consuming policies never table-compile, and for
 * meta-ignoring policies the result is identical to simulateTrace()
 * on the address projection.
 */
cache::LevelStats
simulatePcTrace(const cache::Geometry& geom,
                const std::string& policySpec, const trace::PcTrace& t,
                uint64_t seed = 1);

/**
 * Simulates @p t against an already-built cache (does not reset its
 * statistics first).
 */
void simulateOn(cache::Cache& cache, const trace::Trace& t);

/** PC-annotated variant of simulateOn(). */
void simulateOn(cache::Cache& cache, const trace::PcTrace& t);

/**
 * Miss ratios per consecutive window of @p windowSize accesses, for
 * time-resolved plots (adaptive dynamics).
 */
std::vector<double>
windowedMissRatios(cache::Cache& cache, const trace::Trace& t,
                   size_t windowSize);

} // namespace recap::eval

#endif // RECAP_EVAL_SIMULATE_HH_
