/**
 * @file
 * Batch trace-simulation kernel over compiled policy automata.
 *
 * This is the devirtualized hot path of trace-driven evaluation: the
 * cache is represented structure-of-arrays (one flat tag array, one
 * fill cursor and one integer policy-control-state per set) and every
 * access is a tag scan plus one transition-table lookup — no virtual
 * dispatch, no allocation, no per-set policy objects. Following the
 * measurement-kernel discipline of nanoBench/CacheQuery, the kernel
 * does exactly what cache::Cache does for read-only traces and is
 * pinned bit-exact against it by tests/test_kernel.cc (stats, final
 * tags, and final policy state keys all equal).
 *
 * simulateTracesBatch() runs many traces of one policy: the policy is
 * compiled once and the traces fan out over the shared TaskPool (see
 * common/parallel.hh), so sweeps stop paying per-call pool spin-up.
 * Policies that exceed the compile budget transparently fall back to
 * the interpreted cache::Cache path — same results, interpreter speed.
 */

#ifndef RECAP_EVAL_KERNEL_HH_
#define RECAP_EVAL_KERNEL_HH_

#include <string>
#include <vector>

#include "recap/cache/cache.hh"
#include "recap/policy/compiled.hh"
#include "recap/trace/trace.hh"

namespace recap::eval
{

/** Execution knobs of the kernel entry points. */
struct KernelOptions
{
    /** Seed for stochastic policies (interpreted fallback only). */
    uint64_t seed = 1;

    /**
     * Worker threads for simulateTracesBatch (0 = hardware
     * concurrency via the shared pool, 1 = serial). Per-trace results
     * are independent, so every value yields identical stats.
     */
    unsigned numThreads = 0;

    /** State budget for policy compilation. */
    policy::CompileBudget budget;

    /**
     * Force the interpreted cache::Cache path (used by differential
     * tests and the interpreted side of bench_kernel).
     */
    bool forceInterpreted = false;
};

/** Final state of one set, for differential tests. */
struct SetImage
{
    std::vector<uint64_t> tags;  ///< tags of the valid ways
    std::vector<bool> valid;     ///< validity per way
    std::string policyKey;       ///< policy stateKey()

    bool operator==(const SetImage&) const = default;
};

/**
 * Runs @p t through a single-level cache described by @p geom on the
 * compiled tables @p table (read-only accesses). When @p finalImage
 * is non-null it receives one SetImage per set after the run.
 */
cache::LevelStats
simulateCompiled(const cache::Geometry& geom,
                 const policy::CompiledTable& table,
                 const trace::Trace& t,
                 std::vector<SetImage>* finalImage = nullptr);

/**
 * simulateTrace() with explicit kernel knobs: compiled fast path when
 * the policy fits the budget, interpreted cache::Cache otherwise (or
 * when forced). Results are identical either way.
 */
cache::LevelStats
simulateTraceKernel(const cache::Geometry& geom,
                    const std::string& policySpec,
                    const trace::Trace& t,
                    const KernelOptions& opts = {});

/**
 * Simulates many traces against the same (geometry, policy), sharing
 * one compiled table and the process-wide TaskPool. Result i
 * corresponds to traces[i]; stochastic fallback policies simulate
 * trace i with deriveTaskSeed(opts.seed, i).
 */
std::vector<cache::LevelStats>
simulateTracesBatch(const cache::Geometry& geom,
                    const std::string& policySpec,
                    const std::vector<const trace::Trace*>& traces,
                    const KernelOptions& opts = {});

} // namespace recap::eval

#endif // RECAP_EVAL_KERNEL_HH_
