/**
 * @file
 * Predictability metrics for replacement policies, in the spirit of
 * the WCET-analysis motivation behind the paper: once a policy has
 * been reverse-engineered, how well can a timing analysis bound its
 * behaviour?
 *
 * Two metrics are computed by exhaustive state-space exploration of
 * the policy automaton:
 *
 *  - missTurnover: the worst case, over all reachable states, of how
 *    many consecutive fresh misses it takes to evict everything that
 *    was resident ("how fast can the set be flushed by conflicts").
 *
 *  - evictBound: the adversarial survival bound — the maximum number
 *    of conflict misses a resident line can survive when an
 *    adversary may interleave hits to the other resident lines (but
 *    never touches the line itself). "Unbounded" means the adversary
 *    can protect the line forever (true for tree-PLRU with k >= 4, a
 *    classic predictability result the analysis must reproduce).
 */

#ifndef RECAP_EVAL_PREDICTABILITY_HH_
#define RECAP_EVAL_PREDICTABILITY_HH_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "recap/policy/policy.hh"

namespace recap::eval
{

/** Result of a bounded metric computation. */
struct MetricResult
{
    /** The metric value, when bounded and within the budget. */
    std::optional<uint64_t> value;

    /** True iff the adversary has an infinite strategy. */
    bool unbounded = false;

    /** True iff the exploration budget ran out (value unknown). */
    bool exhaustedBudget = false;

    /** States explored. */
    uint64_t statesExplored = 0;

    /** Rendered as "7", "unbounded", or ">budget". */
    std::string render() const;
};

/** Exploration budgets. */
struct PredictabilityConfig
{
    uint64_t maxStates = 500'000;

    /**
     * Worker threads for predictabilitySweep() (each grid row's two
     * metric explorations are one independent task); 0 = hardware
     * concurrency, 1 = inline serial execution. The single-metric
     * entry points below always explore serially; explorations are
     * deterministic, so every thread count yields identical rows.
     */
    unsigned numThreads = 0;
};

/** Both metrics for one (policy spec, associativity) grid row. */
struct PredictabilityRow
{
    std::string spec;
    unsigned ways = 0;
    MetricResult turnover;
    MetricResult evictBound;
};

/**
 * Worst-case number of consecutive fresh misses needed to evict the
 * entire resident content, over all reachable states.
 */
MetricResult missTurnover(const policy::ReplacementPolicy& proto,
                          const PredictabilityConfig& cfg = {});

/**
 * Adversarial survival bound for a line filled in the canonical
 * (post-flush, sequentially filled) state: the maximum number of
 * misses the adversary can make the line survive.
 */
MetricResult evictBound(const policy::ReplacementPolicy& proto,
                        const PredictabilityConfig& cfg = {});

/**
 * Computes missTurnover and evictBound for every combination of
 * @p specs x @p waysList that the factory supports, in row-major
 * (spec-outer) order, parallelized across cfg.numThreads workers.
 */
std::vector<PredictabilityRow>
predictabilitySweep(const std::vector<std::string>& specs,
                    const std::vector<unsigned>& waysList,
                    const PredictabilityConfig& cfg = {});

} // namespace recap::eval

#endif // RECAP_EVAL_PREDICTABILITY_HH_
