#include "recap/eval/sweep.hh"

#include "recap/common/error.hh"
#include "recap/common/parallel.hh"
#include "recap/eval/opt.hh"
#include "recap/eval/simulate.hh"
#include "recap/policy/factory.hh"

namespace recap::eval
{

namespace
{

/** One cell of work, fully described before any measurement runs. */
struct CellJob
{
    cache::Geometry geom;
    std::string spec;
    const trace::Trace* trace = nullptr;
    std::string rowLabel;
    std::string columnLabel;
};

SweepCell
measure(const CellJob& job, uint64_t seed)
{
    const cache::LevelStats stats = job.spec == "OPT"
        ? simulateOpt(job.geom, *job.trace)
        : simulateTrace(job.geom, job.spec, *job.trace, seed);
    SweepCell cell;
    cell.rowLabel = job.rowLabel;
    cell.columnLabel = job.columnLabel;
    cell.missRatio = stats.missRatio();
    cell.misses = stats.misses;
    cell.accesses = stats.accesses;
    return cell;
}

/**
 * Measures every job into its own cell slot. Cell i uses the stream
 * deriveTaskSeed(opts.seed, i), so the grid is a pure function of
 * (jobs, opts.seed) regardless of opts.numThreads.
 */
std::vector<SweepCell>
measureAll(const std::vector<CellJob>& jobs, const SweepOptions& opts)
{
    std::vector<SweepCell> cells(jobs.size());
    parallelFor(jobs.size(), opts.numThreads, [&](std::size_t i) {
        cells[i] = measure(jobs[i], deriveTaskSeed(opts.seed, i));
    });
    return cells;
}

} // namespace

const SweepCell&
SweepResult::at(const std::string& row, const std::string& column) const
{
    for (const auto& cell : cells)
        if (cell.rowLabel == row && cell.columnLabel == column)
            return cell;
    throw UsageError("SweepResult::at: no cell (" + row + ", " +
                     column + ")");
}

SweepResult
policyWorkloadSweep(const cache::Geometry& geom,
                    const std::vector<std::string>& policySpecs,
                    const std::vector<trace::Workload>& workloads,
                    const SweepOptions& opts)
{
    geom.validate();
    SweepResult result;
    for (const auto& w : workloads)
        result.columnLabels.push_back(w.name);

    std::vector<std::string> rows;
    for (const auto& spec : policySpecs)
        if (policy::specSupportsWays(spec, geom.ways))
            rows.push_back(spec);
    if (opts.includeOpt)
        rows.push_back("OPT");

    std::vector<CellJob> jobs;
    for (const auto& spec : rows) {
        result.rowLabels.push_back(spec);
        for (const auto& w : workloads)
            jobs.push_back({geom, spec, &w.trace, spec, w.name});
    }
    result.cells = measureAll(jobs, opts);
    return result;
}

SweepResult
policyWorkloadSweep(const cache::Geometry& geom,
                    const std::vector<std::string>& policySpecs,
                    const std::vector<trace::Workload>& workloads,
                    bool includeOpt)
{
    SweepOptions opts;
    opts.includeOpt = includeOpt;
    return policyWorkloadSweep(geom, policySpecs, workloads, opts);
}

SweepResult
sizeSweep(const std::vector<std::string>& policySpecs,
          const trace::Trace& workload, uint64_t minBytes,
          uint64_t maxBytes, unsigned ways, unsigned lineSize,
          const SweepOptions& opts)
{
    require(minBytes >= 1 && minBytes <= maxBytes,
            "sizeSweep: invalid capacity range");
    SweepResult result;

    std::vector<std::string> rows;
    for (const auto& spec : policySpecs)
        if (policy::specSupportsWays(spec, ways))
            rows.push_back(spec);
    if (opts.includeOpt)
        rows.push_back("OPT");
    result.rowLabels = rows;

    for (uint64_t bytes = minBytes; bytes <= maxBytes; bytes *= 2)
        result.columnLabels.push_back(std::to_string(bytes));

    std::vector<CellJob> jobs;
    for (const auto& spec : rows) {
        for (uint64_t bytes = minBytes; bytes <= maxBytes;
             bytes *= 2) {
            const auto geom =
                cache::Geometry::fromCapacity(bytes, ways, lineSize);
            jobs.push_back({geom, spec, &workload, spec,
                            std::to_string(bytes)});
        }
    }
    result.cells = measureAll(jobs, opts);
    return result;
}

SweepResult
sizeSweep(const std::vector<std::string>& policySpecs,
          const trace::Trace& workload, uint64_t minBytes,
          uint64_t maxBytes, unsigned ways, unsigned lineSize,
          bool includeOpt)
{
    SweepOptions opts;
    opts.includeOpt = includeOpt;
    return sizeSweep(policySpecs, workload, minBytes, maxBytes, ways,
                     lineSize, opts);
}

SweepResult
associativitySweep(const std::vector<std::string>& policySpecs,
                   const trace::Trace& workload,
                   uint64_t capacityBytes, unsigned minWays,
                   unsigned maxWays, unsigned lineSize,
                   const SweepOptions& opts)
{
    require(minWays >= 1 && minWays <= maxWays,
            "associativitySweep: invalid ways range");
    SweepResult result;
    for (unsigned ways = minWays; ways <= maxWays; ways *= 2)
        result.columnLabels.push_back(std::to_string(ways));

    std::vector<CellJob> jobs;
    for (const auto& spec : policySpecs) {
        bool row_used = false;
        for (unsigned ways = minWays; ways <= maxWays; ways *= 2) {
            if (!policy::specSupportsWays(spec, ways))
                continue;
            const auto geom = cache::Geometry::fromCapacity(
                capacityBytes, ways, lineSize);
            jobs.push_back({geom, spec, &workload, spec,
                            std::to_string(ways)});
            row_used = true;
        }
        if (row_used)
            result.rowLabels.push_back(spec);
    }
    result.cells = measureAll(jobs, opts);
    return result;
}

SweepResult
associativitySweep(const std::vector<std::string>& policySpecs,
                   const trace::Trace& workload,
                   uint64_t capacityBytes, unsigned minWays,
                   unsigned maxWays, unsigned lineSize)
{
    return associativitySweep(policySpecs, workload, capacityBytes,
                              minWays, maxWays, lineSize,
                              SweepOptions{});
}

} // namespace recap::eval
