#include "recap/eval/sweep.hh"

#include "recap/common/error.hh"
#include "recap/common/parallel.hh"
#include "recap/eval/multi_kernel.hh"
#include "recap/eval/opt.hh"
#include "recap/eval/simulate.hh"
#include "recap/policy/factory.hh"

namespace recap::eval
{

namespace
{

/** One cell of work, fully described before any measurement runs. */
struct CellJob
{
    cache::Geometry geom;
    std::string spec;
    const trace::Trace* trace = nullptr;
    std::string rowLabel;
    std::string columnLabel;
};

SweepCell
makeCell(const CellJob& job, const cache::LevelStats& stats)
{
    SweepCell cell;
    cell.rowLabel = job.rowLabel;
    cell.columnLabel = job.columnLabel;
    cell.missRatio = stats.missRatio();
    cell.misses = stats.misses;
    cell.accesses = stats.accesses;
    return cell;
}

/**
 * Measures every job into its own cell slot. Policy cells sharing a
 * (geometry, trace) pair — every row of one sweep column — run as one
 * multi-policy lockstep pass (eval/multi_kernel.hh): the trace is
 * decoded once and the compiled rows step in lane groups, instead of
 * one full simulateTrace per cell. Cell i keeps the stream
 * deriveTaskSeed(opts.seed, i) whichever lane runs it, so the grid
 * stays the same pure function of (jobs, opts.seed) as the per-cell
 * path, regardless of opts.numThreads. OPT cells are not policy
 * automata and keep the per-cell path.
 */
std::vector<SweepCell>
measureAll(const std::vector<CellJob>& jobs, const SweepOptions& opts)
{
    std::vector<SweepCell> cells(jobs.size());

    struct Batch
    {
        std::vector<std::size_t> jobIdx;
    };
    std::vector<Batch> batches;
    std::vector<std::size_t> optIdx;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (jobs[i].spec == "OPT") {
            optIdx.push_back(i);
            continue;
        }
        bool placed = false;
        for (auto& batch : batches) {
            const CellJob& head = jobs[batch.jobIdx.front()];
            if (head.geom == jobs[i].geom &&
                head.trace == jobs[i].trace) {
                batch.jobIdx.push_back(i);
                placed = true;
                break;
            }
        }
        if (!placed)
            batches.push_back({{i}});
    }

    for (const auto& batch : batches) {
        const CellJob& head = jobs[batch.jobIdx.front()];
        MultiPolicyOptions mopts;
        mopts.numThreads = opts.numThreads;
        std::vector<std::string> specs;
        specs.reserve(batch.jobIdx.size());
        for (const std::size_t i : batch.jobIdx) {
            specs.push_back(jobs[i].spec);
            mopts.laneSeeds.push_back(deriveTaskSeed(opts.seed, i));
        }
        const std::vector<cache::LevelStats> stats =
            simulatePoliciesBatch(head.geom, specs, *head.trace,
                                  mopts);
        for (std::size_t n = 0; n < batch.jobIdx.size(); ++n) {
            const std::size_t i = batch.jobIdx[n];
            cells[i] = makeCell(jobs[i], stats[n]);
        }
    }

    parallelFor(optIdx.size(), opts.numThreads, [&](std::size_t n) {
        const std::size_t i = optIdx[n];
        cells[i] = makeCell(jobs[i], simulateOpt(jobs[i].geom,
                                                 *jobs[i].trace));
    });
    return cells;
}

} // namespace

const SweepCell&
SweepResult::at(const std::string& row, const std::string& column) const
{
    for (const auto& cell : cells)
        if (cell.rowLabel == row && cell.columnLabel == column)
            return cell;
    throw UsageError("SweepResult::at: no cell (" + row + ", " +
                     column + ")");
}

SweepResult
policyWorkloadSweep(const cache::Geometry& geom,
                    const std::vector<std::string>& policySpecs,
                    const std::vector<trace::Workload>& workloads,
                    const SweepOptions& opts)
{
    geom.validate();
    SweepResult result;
    for (const auto& w : workloads)
        result.columnLabels.push_back(w.name);

    std::vector<std::string> rows;
    for (const auto& spec : policySpecs)
        if (policy::specSupportsWays(spec, geom.ways))
            rows.push_back(spec);
    if (opts.includeOpt)
        rows.push_back("OPT");

    std::vector<CellJob> jobs;
    for (const auto& spec : rows) {
        result.rowLabels.push_back(spec);
        for (const auto& w : workloads)
            jobs.push_back({geom, spec, &w.trace, spec, w.name});
    }
    result.cells = measureAll(jobs, opts);
    return result;
}

SweepResult
policyWorkloadSweep(const cache::Geometry& geom,
                    const std::vector<std::string>& policySpecs,
                    const std::vector<trace::Workload>& workloads,
                    bool includeOpt)
{
    SweepOptions opts;
    opts.includeOpt = includeOpt;
    return policyWorkloadSweep(geom, policySpecs, workloads, opts);
}

SweepResult
sizeSweep(const std::vector<std::string>& policySpecs,
          const trace::Trace& workload, uint64_t minBytes,
          uint64_t maxBytes, unsigned ways, unsigned lineSize,
          const SweepOptions& opts)
{
    require(minBytes >= 1 && minBytes <= maxBytes,
            "sizeSweep: invalid capacity range");
    SweepResult result;

    std::vector<std::string> rows;
    for (const auto& spec : policySpecs)
        if (policy::specSupportsWays(spec, ways))
            rows.push_back(spec);
    if (opts.includeOpt)
        rows.push_back("OPT");
    result.rowLabels = rows;

    for (uint64_t bytes = minBytes; bytes <= maxBytes; bytes *= 2)
        result.columnLabels.push_back(std::to_string(bytes));

    std::vector<CellJob> jobs;
    for (const auto& spec : rows) {
        for (uint64_t bytes = minBytes; bytes <= maxBytes;
             bytes *= 2) {
            const auto geom =
                cache::Geometry::fromCapacity(bytes, ways, lineSize);
            jobs.push_back({geom, spec, &workload, spec,
                            std::to_string(bytes)});
        }
    }
    result.cells = measureAll(jobs, opts);
    return result;
}

SweepResult
sizeSweep(const std::vector<std::string>& policySpecs,
          const trace::Trace& workload, uint64_t minBytes,
          uint64_t maxBytes, unsigned ways, unsigned lineSize,
          bool includeOpt)
{
    SweepOptions opts;
    opts.includeOpt = includeOpt;
    return sizeSweep(policySpecs, workload, minBytes, maxBytes, ways,
                     lineSize, opts);
}

SweepResult
associativitySweep(const std::vector<std::string>& policySpecs,
                   const trace::Trace& workload,
                   uint64_t capacityBytes, unsigned minWays,
                   unsigned maxWays, unsigned lineSize,
                   const SweepOptions& opts)
{
    require(minWays >= 1 && minWays <= maxWays,
            "associativitySweep: invalid ways range");
    SweepResult result;
    for (unsigned ways = minWays; ways <= maxWays; ways *= 2)
        result.columnLabels.push_back(std::to_string(ways));

    std::vector<CellJob> jobs;
    for (const auto& spec : policySpecs) {
        bool row_used = false;
        for (unsigned ways = minWays; ways <= maxWays; ways *= 2) {
            if (!policy::specSupportsWays(spec, ways))
                continue;
            const auto geom = cache::Geometry::fromCapacity(
                capacityBytes, ways, lineSize);
            jobs.push_back({geom, spec, &workload, spec,
                            std::to_string(ways)});
            row_used = true;
        }
        if (row_used)
            result.rowLabels.push_back(spec);
    }
    result.cells = measureAll(jobs, opts);
    return result;
}

SweepResult
associativitySweep(const std::vector<std::string>& policySpecs,
                   const trace::Trace& workload,
                   uint64_t capacityBytes, unsigned minWays,
                   unsigned maxWays, unsigned lineSize)
{
    return associativitySweep(policySpecs, workload, capacityBytes,
                              minWays, maxWays, lineSize,
                              SweepOptions{});
}

} // namespace recap::eval
