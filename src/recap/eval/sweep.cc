#include "recap/eval/sweep.hh"

#include "recap/common/error.hh"
#include "recap/eval/opt.hh"
#include "recap/eval/simulate.hh"
#include "recap/policy/factory.hh"

namespace recap::eval
{

namespace
{

SweepCell
measure(const cache::Geometry& geom, const std::string& spec,
        const trace::Trace& t, const std::string& row,
        const std::string& column)
{
    const cache::LevelStats stats = spec == "OPT"
        ? simulateOpt(geom, t)
        : simulateTrace(geom, spec, t);
    SweepCell cell;
    cell.rowLabel = row;
    cell.columnLabel = column;
    cell.missRatio = stats.missRatio();
    cell.misses = stats.misses;
    cell.accesses = stats.accesses;
    return cell;
}

} // namespace

const SweepCell&
SweepResult::at(const std::string& row, const std::string& column) const
{
    for (const auto& cell : cells)
        if (cell.rowLabel == row && cell.columnLabel == column)
            return cell;
    throw UsageError("SweepResult::at: no cell (" + row + ", " +
                     column + ")");
}

SweepResult
policyWorkloadSweep(const cache::Geometry& geom,
                    const std::vector<std::string>& policySpecs,
                    const std::vector<trace::Workload>& workloads,
                    bool includeOpt)
{
    geom.validate();
    SweepResult result;
    for (const auto& w : workloads)
        result.columnLabels.push_back(w.name);

    std::vector<std::string> rows;
    for (const auto& spec : policySpecs)
        if (policy::specSupportsWays(spec, geom.ways))
            rows.push_back(spec);
    if (includeOpt)
        rows.push_back("OPT");

    for (const auto& spec : rows) {
        result.rowLabels.push_back(spec);
        for (const auto& w : workloads)
            result.cells.push_back(
                measure(geom, spec, w.trace, spec, w.name));
    }
    return result;
}

SweepResult
sizeSweep(const std::vector<std::string>& policySpecs,
          const trace::Trace& workload, uint64_t minBytes,
          uint64_t maxBytes, unsigned ways, unsigned lineSize,
          bool includeOpt)
{
    require(minBytes >= 1 && minBytes <= maxBytes,
            "sizeSweep: invalid capacity range");
    SweepResult result;

    std::vector<std::string> rows;
    for (const auto& spec : policySpecs)
        if (policy::specSupportsWays(spec, ways))
            rows.push_back(spec);
    if (includeOpt)
        rows.push_back("OPT");
    result.rowLabels = rows;

    for (uint64_t bytes = minBytes; bytes <= maxBytes; bytes *= 2)
        result.columnLabels.push_back(std::to_string(bytes));

    for (const auto& spec : rows) {
        for (uint64_t bytes = minBytes; bytes <= maxBytes;
             bytes *= 2) {
            const auto geom =
                cache::Geometry::fromCapacity(bytes, ways, lineSize);
            result.cells.push_back(measure(geom, spec, workload, spec,
                                           std::to_string(bytes)));
        }
    }
    return result;
}

SweepResult
associativitySweep(const std::vector<std::string>& policySpecs,
                   const trace::Trace& workload,
                   uint64_t capacityBytes, unsigned minWays,
                   unsigned maxWays, unsigned lineSize)
{
    require(minWays >= 1 && minWays <= maxWays,
            "associativitySweep: invalid ways range");
    SweepResult result;
    for (unsigned ways = minWays; ways <= maxWays; ways *= 2)
        result.columnLabels.push_back(std::to_string(ways));

    for (const auto& spec : policySpecs) {
        bool row_used = false;
        for (unsigned ways = minWays; ways <= maxWays; ways *= 2) {
            if (!policy::specSupportsWays(spec, ways))
                continue;
            const auto geom = cache::Geometry::fromCapacity(
                capacityBytes, ways, lineSize);
            result.cells.push_back(measure(geom, spec, workload, spec,
                                           std::to_string(ways)));
            row_used = true;
        }
        if (row_used)
            result.rowLabels.push_back(spec);
    }
    return result;
}

} // namespace recap::eval
