#include "recap/hier/hierarchy.hh"

#include <bit>

#include "recap/common/bitops.hh"
#include "recap/common/error.hh"
#include "recap/policy/factory.hh"

namespace recap::hier
{

namespace
{

constexpr uint8_t kFollower =
    static_cast<uint8_t>(cache::Cache::SetRole::kFollower);
constexpr uint8_t kLeaderA =
    static_cast<uint8_t>(cache::Cache::SetRole::kLeaderA);
constexpr uint8_t kLeaderB =
    static_cast<uint8_t>(cache::Cache::SetRole::kLeaderB);

/**
 * Fixed-associativity tag scan: with the trip count a compile-time
 * constant the compiler unrolls and vectorizes the row comparison
 * (the same trick as the S10 kernel loop). kFixedWays = 0 is the
 * generic variable-count fallback.
 */
template <unsigned kFixedWays>
inline uint32_t
rowMatch(const uint64_t* row, uint64_t tag, unsigned dynWays)
{
    const unsigned ways = kFixedWays != 0 ? kFixedWays : dynWays;
    uint32_t match = 0;
    for (unsigned w = 0; w < ways; ++w)
        match |= static_cast<uint32_t>(row[w] == tag) << w;
    return match;
}

inline uint32_t
matchMask(const uint64_t* row, uint64_t tag, unsigned ways)
{
    switch (ways) {
      case 2:
        return rowMatch<2>(row, tag, ways);
      case 4:
        return rowMatch<4>(row, tag, ways);
      case 8:
        return rowMatch<8>(row, tag, ways);
      case 12:
        return rowMatch<12>(row, tag, ways);
      case 16:
        return rowMatch<16>(row, tag, ways);
      case 24:
        return rowMatch<24>(row, tag, ways);
      default:
        return rowMatch<0>(row, tag, ways);
    }
}

} // namespace

Hierarchy::Hierarchy(const hw::MachineSpec& spec, uint64_t seed,
                     const Options& opts)
    : memoryLatency_(spec.memoryLatency), mode_(opts.mode)
{
    spec.validate();
    levels_.reserve(spec.levels.size());
    uint64_t level_seed = seed;
    for (const auto& lvl_spec : spec.levels) {
        Level lvl;
        lvl.geom = lvl_spec.geometry();
        require(lvl.geom.ways <= 32,
                "hier::Hierarchy: at most 32 ways per level (valid "
                "and dirty masks are one word per set)");
        if (mode_ != cache::InclusionMode::kNonInclusive &&
            !levels_.empty()) {
            require(lvl.geom.lineSize ==
                        levels_.front().geom.lineSize,
                    "hier::Hierarchy: inclusive/exclusive modes need "
                    "one line size across levels");
        }
        lvl.name = lvl_spec.name;
        lvl.hitLatency = lvl_spec.hitLatency;
        lvl.ways = lvl.geom.ways;
        lvl.setShift = log2Floor(lvl.geom.lineSize);
        lvl.tagShift = lvl.setShift + log2Floor(lvl.geom.numSets);
        lvl.setMask = lvl.geom.numSets - 1;
        lvl.fullMask = lvl.ways == 32
                           ? ~uint32_t{0}
                           : (uint32_t{1} << lvl.ways) - 1;

        const unsigned sets = lvl.geom.numSets;
        lvl.tags.assign(static_cast<std::size_t>(sets) * lvl.ways, 0);
        lvl.valid.assign(sets, 0);
        lvl.dirty.assign(sets, 0);

        const auto hoist = [](const policy::CompiledTable& t) {
            Level::TablePtrs p;
            if (t.narrow()) {
                p.touch16 = t.touchData16();
                p.fill16 = t.fillData16();
            } else {
                p.touch32 = t.touchData();
                p.fill32 = t.fillData();
            }
            p.victim = t.victimData();
            return p;
        };

        if (!opts.forceInterpreted) {
            lvl.tableA = policy::compiledTableFor(
                lvl_spec.policySpec, lvl.ways, opts.budget);
        }
        if (lvl.tableA) {
            lvl.ptrA = hoist(*lvl.tableA);
            lvl.stateA.assign(sets, 0);
        } else {
            lvl.interpA.reserve(sets);
            for (unsigned s = 0; s < sets; ++s) {
                lvl.interpA.push_back(policy::makePolicy(
                    lvl_spec.policySpec, lvl.ways, level_seed + s));
            }
            lvl.metaA = lvl.interpA.front()->usesMeta();
        }

        if (lvl_spec.isAdaptive()) {
            lvl.adaptive = true;
            lvl.duel = lvl_spec.duel;
            require(lvl.duel.pselBits >= 1 && lvl.duel.pselBits <= 16,
                    "hier::Hierarchy: PSEL width must be in [1,16]");
            require(lvl.duel.leaderSetsPerPolicy >= 1,
                    "hier::Hierarchy: need at least one leader set "
                    "per policy");
            require(sets >= 2 * lvl.duel.leaderSetsPerPolicy,
                    "hier::Hierarchy: too few sets for the requested "
                    "leader count");
            lvl.pselMax = (1u << lvl.duel.pselBits) - 1;
            lvl.psel = (lvl.pselMax + 1) / 2;

            if (!opts.forceInterpreted) {
                lvl.tableB = policy::compiledTableFor(
                    lvl_spec.policySpecB, lvl.ways, opts.budget);
            }
            if (lvl.tableB) {
                lvl.ptrB = hoist(*lvl.tableB);
                lvl.stateB.assign(sets, 0);
            } else {
                lvl.interpB.reserve(sets);
                for (unsigned s = 0; s < sets; ++s) {
                    lvl.interpB.push_back(policy::makePolicy(
                        lvl_spec.policySpecB, lvl.ways,
                        level_seed + sets + s));
                }
                lvl.metaB = lvl.interpB.front()->usesMeta();
            }

            // Leaders are spread evenly, one A-leader at each
            // interval start and one B-leader at its midpoint —
            // the same layout as cache::Cache::setRole().
            const unsigned interval =
                sets / lvl.duel.leaderSetsPerPolicy;
            lvl.roles.assign(sets, kFollower);
            for (unsigned s = 0; s < sets; ++s) {
                if (s % interval == 0)
                    lvl.roles[s] = kLeaderA;
                else if (s % interval == interval / 2)
                    lvl.roles[s] = kLeaderB;
            }
        }

        lvl.anyMeta = lvl.metaA || lvl.metaB;
        levels_.push_back(std::move(lvl));
        level_seed += 0x10001;
    }
}

void
Hierarchy::publishMeta(Level& lvl, unsigned set, cache::Addr addr)
{
    if (!lvl.anyMeta)
        return;
    policy::AccessMeta meta;
    meta.block = addr / lvl.geom.lineSize;
    meta.hasBlock = true;
    if (lvl.metaA)
        lvl.interpA[set]->beginAccess(meta);
    if (lvl.metaB)
        lvl.interpB[set]->beginAccess(meta);
}

void
Hierarchy::touchBoth(Level& lvl, unsigned set, unsigned way)
{
    if (lvl.ptrA.touch16) {
        const std::size_t idx =
            static_cast<std::size_t>(lvl.stateA[set]) * lvl.ways +
            way;
        lvl.stateA[set] = lvl.ptrA.touch16[idx];
    } else if (lvl.ptrA.touch32) {
        const std::size_t idx =
            static_cast<std::size_t>(lvl.stateA[set]) * lvl.ways +
            way;
        lvl.stateA[set] = lvl.ptrA.touch32[idx];
    } else {
        lvl.interpA[set]->touch(way);
    }
    if (!lvl.adaptive)
        return;
    if (lvl.ptrB.touch16) {
        const std::size_t idx =
            static_cast<std::size_t>(lvl.stateB[set]) * lvl.ways +
            way;
        lvl.stateB[set] = lvl.ptrB.touch16[idx];
    } else if (lvl.ptrB.touch32) {
        const std::size_t idx =
            static_cast<std::size_t>(lvl.stateB[set]) * lvl.ways +
            way;
        lvl.stateB[set] = lvl.ptrB.touch32[idx];
    } else {
        lvl.interpB[set]->touch(way);
    }
}

void
Hierarchy::fillBoth(Level& lvl, unsigned set, unsigned way)
{
    if (lvl.ptrA.fill16) {
        const std::size_t idx =
            static_cast<std::size_t>(lvl.stateA[set]) * lvl.ways +
            way;
        lvl.stateA[set] = lvl.ptrA.fill16[idx];
    } else if (lvl.ptrA.fill32) {
        const std::size_t idx =
            static_cast<std::size_t>(lvl.stateA[set]) * lvl.ways +
            way;
        lvl.stateA[set] = lvl.ptrA.fill32[idx];
    } else {
        lvl.interpA[set]->fill(way);
    }
    if (!lvl.adaptive)
        return;
    if (lvl.ptrB.fill16) {
        const std::size_t idx =
            static_cast<std::size_t>(lvl.stateB[set]) * lvl.ways +
            way;
        lvl.stateB[set] = lvl.ptrB.fill16[idx];
    } else if (lvl.ptrB.fill32) {
        const std::size_t idx =
            static_cast<std::size_t>(lvl.stateB[set]) * lvl.ways +
            way;
        lvl.stateB[set] = lvl.ptrB.fill32[idx];
    } else {
        lvl.interpB[set]->fill(way);
    }
}

unsigned
Hierarchy::victimOf(const Level& lvl, unsigned set) const
{
    bool use_b = false;
    if (lvl.adaptive) {
        const uint8_t role = lvl.roles[set];
        use_b = role == kLeaderB ||
                (role == kFollower &&
                 lvl.psel >= (lvl.pselMax + 1) / 2);
    }
    if (use_b) {
        return lvl.ptrB.victim ? lvl.ptrB.victim[lvl.stateB[set]]
                               : lvl.interpB[set]->victim();
    }
    return lvl.ptrA.victim ? lvl.ptrA.victim[lvl.stateA[set]]
                           : lvl.interpA[set]->victim();
}

void
Hierarchy::trainPsel(Level& lvl, uint8_t role)
{
    // A miss in an A-leader is evidence for B (and vice versa).
    if (role == kLeaderA && lvl.psel < lvl.pselMax)
        ++lvl.psel;
    else if (role == kLeaderB && lvl.psel > 0)
        --lvl.psel;
}

cache::Addr
Hierarchy::blockAddr(const Level& lvl, unsigned set,
                     unsigned way) const
{
    const uint64_t tag =
        lvl.tags[static_cast<std::size_t>(set) * lvl.ways + way];
    return ((tag << (lvl.tagShift - lvl.setShift)) | set)
           << lvl.setShift;
}

Hierarchy::LevelAccess
Hierarchy::accessLevel(Level& lvl, cache::Addr addr, bool write)
{
    const unsigned set =
        static_cast<unsigned>(addr >> lvl.setShift) & lvl.setMask;
    const uint64_t tag = addr >> lvl.tagShift;
    uint64_t* row =
        &lvl.tags[static_cast<std::size_t>(set) * lvl.ways];
    ++lvl.stats.accesses;
    if (write)
        ++lvl.stats.writes;
    publishMeta(lvl, set, addr);

    uint32_t match =
        matchMask(row, tag, lvl.ways) & lvl.valid[set];

    LevelAccess out;
    if (match) {
        const unsigned way =
            static_cast<unsigned>(std::countr_zero(match));
        ++lvl.stats.hits;
        touchBoth(lvl, set, way);
        if (write)
            lvl.dirty[set] |= uint32_t{1} << way;
        out.hit = true;
        return out;
    }

    ++lvl.stats.misses;
    if (lvl.adaptive)
        trainPsel(lvl, lvl.roles[set]);

    unsigned way;
    const uint32_t invalid = ~lvl.valid[set] & lvl.fullMask;
    if (invalid) {
        way = static_cast<unsigned>(std::countr_zero(invalid));
    } else {
        way = victimOf(lvl, set);
        ++lvl.stats.evictions;
        out.evicted = true;
        out.evictedBlock = blockAddr(lvl, set, way);
        if (lvl.dirty[set] & (uint32_t{1} << way))
            ++lvl.stats.writebacks;
    }

    row[way] = tag;
    lvl.valid[set] |= uint32_t{1} << way;
    if (write) // write-allocate
        lvl.dirty[set] |= uint32_t{1} << way;
    else
        lvl.dirty[set] &= ~(uint32_t{1} << way);
    fillBoth(lvl, set, way);
    return out;
}

bool
Hierarchy::probeLevel(Level& lvl, cache::Addr addr, bool write,
                      bool touchOnHit)
{
    const unsigned set =
        static_cast<unsigned>(addr >> lvl.setShift) & lvl.setMask;
    const uint64_t tag = addr >> lvl.tagShift;
    const uint64_t* row =
        &lvl.tags[static_cast<std::size_t>(set) * lvl.ways];
    ++lvl.stats.accesses;
    if (write)
        ++lvl.stats.writes;
    publishMeta(lvl, set, addr);

    uint32_t match =
        matchMask(row, tag, lvl.ways) & lvl.valid[set];
    if (match) {
        ++lvl.stats.hits;
        if (touchOnHit) {
            const unsigned way =
                static_cast<unsigned>(std::countr_zero(match));
            touchBoth(lvl, set, way);
            if (write)
                lvl.dirty[set] |= uint32_t{1} << way;
        }
        return true;
    }
    ++lvl.stats.misses;
    if (lvl.adaptive)
        trainPsel(lvl, lvl.roles[set]);
    return false;
}

cache::Cache::Extracted
Hierarchy::extractLevel(Level& lvl, cache::Addr addr)
{
    const unsigned set =
        static_cast<unsigned>(addr >> lvl.setShift) & lvl.setMask;
    const uint64_t tag = addr >> lvl.tagShift;
    const uint64_t* row =
        &lvl.tags[static_cast<std::size_t>(set) * lvl.ways];
    uint32_t match =
        matchMask(row, tag, lvl.ways) & lvl.valid[set];
    if (!match)
        return {};
    const uint32_t bit =
        uint32_t{1} << std::countr_zero(match);
    cache::Cache::Extracted out{
        true, (lvl.dirty[set] & bit) != 0};
    lvl.valid[set] &= ~bit;
    lvl.dirty[set] &= ~bit;
    return out;
}

bool
Hierarchy::insertLevel(Level& lvl, cache::Addr addr, bool dirty,
                       cache::Cache::Displaced* displaced)
{
    const unsigned set =
        static_cast<unsigned>(addr >> lvl.setShift) & lvl.setMask;
    const uint64_t tag = addr >> lvl.tagShift;
    uint64_t* row =
        &lvl.tags[static_cast<std::size_t>(set) * lvl.ways];
    publishMeta(lvl, set, addr);

    bool displaced_any = false;
    unsigned way;
    const uint32_t invalid = ~lvl.valid[set] & lvl.fullMask;
    if (invalid) {
        way = static_cast<unsigned>(std::countr_zero(invalid));
    } else {
        way = victimOf(lvl, set);
        ++lvl.stats.evictions;
        displaced_any = true;
        displaced->addr = blockAddr(lvl, set, way);
        displaced->dirty =
            (lvl.dirty[set] & (uint32_t{1} << way)) != 0;
        if (displaced->dirty)
            ++lvl.stats.writebacks;
    }
    row[way] = tag;
    lvl.valid[set] |= uint32_t{1} << way;
    if (dirty)
        lvl.dirty[set] |= uint32_t{1} << way;
    else
        lvl.dirty[set] &= ~(uint32_t{1} << way);
    fillBoth(lvl, set, way);
    return displaced_any;
}

void
Hierarchy::backInvalidateLevel(Level& lvl, cache::Addr addr)
{
    const unsigned set =
        static_cast<unsigned>(addr >> lvl.setShift) & lvl.setMask;
    const uint64_t tag = addr >> lvl.tagShift;
    const uint64_t* row =
        &lvl.tags[static_cast<std::size_t>(set) * lvl.ways];
    uint32_t match =
        matchMask(row, tag, lvl.ways) & lvl.valid[set];
    if (!match)
        return;
    const uint32_t bit =
        uint32_t{1} << std::countr_zero(match);
    if (lvl.dirty[set] & bit)
        ++lvl.stats.writebacks;
    lvl.valid[set] &= ~bit;
    lvl.dirty[set] &= ~bit;
    ++lvl.stats.backInvalidations;
}

unsigned
Hierarchy::access(cache::Addr addr, bool write)
{
    switch (mode_) {
      case cache::InclusionMode::kInclusive:
        return accessInclusive(addr, write);
      case cache::InclusionMode::kExclusive:
        return accessExclusive(addr, write);
      case cache::InclusionMode::kNonInclusive:
        break;
    }
    return accessNonInclusive(addr, write);
}

unsigned
Hierarchy::accessNonInclusive(cache::Addr addr, bool write)
{
    for (unsigned i = 0; i < levels_.size(); ++i) {
        if (accessLevel(levels_[i], addr, write).hit)
            return i;
    }
    return depth();
}

unsigned
Hierarchy::accessInclusive(cache::Addr addr, bool write)
{
    for (unsigned i = 0; i < levels_.size(); ++i) {
        const LevelAccess r = accessLevel(levels_[i], addr, write);
        if (r.evicted) {
            for (unsigned j = 0; j < i; ++j)
                backInvalidateLevel(levels_[j], r.evictedBlock);
        }
        if (r.hit)
            return i;
    }
    return depth();
}

unsigned
Hierarchy::accessExclusive(cache::Addr addr, bool write)
{
    unsigned hit_level = depth();
    for (unsigned i = 0; i < levels_.size(); ++i) {
        if (probeLevel(levels_[i], addr, write,
                       /*touchOnHit=*/i == 0)) {
            hit_level = i;
            break;
        }
    }
    if (hit_level == 0)
        return 0;

    bool dirty = write;
    if (hit_level < depth()) {
        const cache::Cache::Extracted ex =
            extractLevel(levels_[hit_level], addr);
        dirty = ex.dirty || write;
    }
    cache::Cache::Displaced displaced;
    bool have = insertLevel(levels_.front(), addr, dirty, &displaced);
    for (unsigned j = 1; j < levels_.size() && have; ++j) {
        const cache::Cache::Displaced in = displaced;
        have = insertLevel(levels_[j], in.addr, in.dirty, &displaced);
    }
    return hit_level;
}

unsigned
Hierarchy::latencyOf(unsigned level) const
{
    require(level <= depth(), "hier::latencyOf: level range");
    if (level == depth())
        return memoryLatency_;
    return levels_[level].hitLatency;
}

void
Hierarchy::flushAll()
{
    for (Level& lvl : levels_) {
        for (unsigned s = 0; s < lvl.geom.numSets; ++s) {
            lvl.stats.writebacks += static_cast<uint64_t>(
                std::popcount(lvl.valid[s] & lvl.dirty[s]));
            lvl.valid[s] = 0;
            lvl.dirty[s] = 0;
        }
        if (lvl.tableA)
            std::fill(lvl.stateA.begin(), lvl.stateA.end(), 0u);
        else
            for (auto& p : lvl.interpA)
                p->reset();
        if (lvl.adaptive) {
            if (lvl.tableB)
                std::fill(lvl.stateB.begin(), lvl.stateB.end(), 0u);
            else
                for (auto& p : lvl.interpB)
                    p->reset();
        }
        // PSEL deliberately survives the flush, exactly like
        // cache::Cache::flush(): it models a global selector
        // register an invalidation instruction leaves alone.
    }
}

void
Hierarchy::resetStats()
{
    for (Level& lvl : levels_)
        lvl.stats.reset();
}

const Hierarchy::Level&
Hierarchy::checkedLevel(unsigned level, const char* what) const
{
    require(level < depth(), what);
    return levels_[level];
}

const std::string&
Hierarchy::name(unsigned level) const
{
    return checkedLevel(level, "hier::name: level range").name;
}

const cache::LevelStats&
Hierarchy::stats(unsigned level) const
{
    return checkedLevel(level, "hier::stats: level range").stats;
}

const cache::Geometry&
Hierarchy::geometry(unsigned level) const
{
    return checkedLevel(level, "hier::geometry: level range").geom;
}

bool
Hierarchy::isAdaptive(unsigned level) const
{
    return checkedLevel(level, "hier::isAdaptive: level range")
        .adaptive;
}

unsigned
Hierarchy::psel(unsigned level) const
{
    const Level& lvl =
        checkedLevel(level, "hier::psel: level range");
    require(lvl.adaptive, "hier::psel: level is not adaptive");
    return lvl.psel;
}

unsigned
Hierarchy::pselMidpoint(unsigned level) const
{
    const Level& lvl =
        checkedLevel(level, "hier::pselMidpoint: level range");
    require(lvl.adaptive,
            "hier::pselMidpoint: level is not adaptive");
    return (lvl.pselMax + 1) / 2;
}

cache::Cache::SetRole
Hierarchy::setRole(unsigned level, unsigned set) const
{
    const Level& lvl =
        checkedLevel(level, "hier::setRole: level range");
    require(set < lvl.geom.numSets, "hier::setRole: set range");
    if (!lvl.adaptive)
        return cache::Cache::SetRole::kFollower;
    return static_cast<cache::Cache::SetRole>(lvl.roles[set]);
}

cache::Cache::SetImage
Hierarchy::setImage(unsigned level, unsigned set) const
{
    const Level& lvl =
        checkedLevel(level, "hier::setImage: level range");
    require(set < lvl.geom.numSets, "hier::setImage: set range");
    cache::Cache::SetImage image;
    image.tags.assign(lvl.ways, 0);
    image.valid.assign(lvl.ways, false);
    const uint64_t* row =
        &lvl.tags[static_cast<std::size_t>(set) * lvl.ways];
    for (unsigned w = 0; w < lvl.ways; ++w) {
        if (lvl.valid[set] & (uint32_t{1} << w)) {
            image.tags[w] = row[w];
            image.valid[w] = true;
        }
    }
    image.policyKey = lvl.tableA
                          ? lvl.tableA->stateKey(lvl.stateA[set])
                          : lvl.interpA[set]->stateKey();
    return image;
}

bool
Hierarchy::levelCompiled(unsigned level) const
{
    const Level& lvl =
        checkedLevel(level, "hier::levelCompiled: level range");
    if (!lvl.tableA)
        return false;
    return !lvl.adaptive || static_cast<bool>(lvl.tableB);
}

bool
Hierarchy::fullyCompiled() const
{
    for (unsigned i = 0; i < depth(); ++i)
        if (!levelCompiled(i))
            return false;
    return true;
}

} // namespace recap::hier
