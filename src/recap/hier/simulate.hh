/**
 * @file
 * Batch trace driving and differential cross-checking for the
 * compiled hierarchy subsystem.
 *
 * crossCheck() is the subsystem's correctness anchor: it runs the
 * same trace through a hier::Hierarchy and through the interpreted
 * cache::Hierarchy reference in lockstep and reports the first
 * divergence in served level, PSEL, per-level counters (including
 * back-invalidations), or final tag images. The differential tests,
 * the fuzzer, and bench_hier's in-run bit-exactness gate all share
 * this one implementation.
 */

#ifndef RECAP_HIER_SIMULATE_HH_
#define RECAP_HIER_SIMULATE_HH_

#include <string>
#include <vector>

#include "recap/hier/hierarchy.hh"
#include "recap/trace/trace.hh"

namespace recap::hier
{

/** servedBy/latency outcome of one trace run. */
struct RunResult
{
    /** Hits served by each level; last entry = memory accesses. */
    std::vector<uint64_t> servedBy;
    uint64_t accesses = 0;
    uint64_t totalCycles = 0;

    /** Average memory access time in cycles. */
    double amat() const
    {
        return accesses ? static_cast<double>(totalCycles) /
                          static_cast<double>(accesses) : 0.0;
    }
};

/** Runs a load trace through @p h. */
RunResult runTrace(Hierarchy& h, const trace::Trace& t);

/** Runs a load/store reference trace through @p h. */
RunResult runTrace(Hierarchy& h, const trace::RefTrace& refs);

/** Interpreted-reference counterparts (same accounting). */
RunResult runTrace(cache::Hierarchy& h, const trace::Trace& t);
RunResult runTrace(cache::Hierarchy& h, const trace::RefTrace& refs);

/** Knobs for crossCheck(). */
struct CrossCheckOptions
{
    cache::InclusionMode mode = cache::InclusionMode::kNonInclusive;
    uint64_t seed = 1;
    policy::CompileBudget budget;

    /**
     * Compare final setImage() of every @p imageSetStride-th set.
     * 1 = every set; larger strides keep big-machine sweeps cheap.
     */
    unsigned imageSetStride = 1;
};

/** Outcome of one differential run. */
struct CrossCheckReport
{
    bool ok = true;

    /** First divergence, human-readable; empty when ok. */
    std::string detail;

    /** Whether every level of the fast path ran compiled. */
    bool fullyCompiled = false;

    /** The fast path's run outcome (valid even on mismatch). */
    RunResult result;
};

/**
 * Runs @p refs through hier::Hierarchy and the interpreted
 * cache::Hierarchy built from the same @p spec/seed/mode in
 * lockstep, comparing served levels and adaptive PSEL per access
 * and statistics plus tag images at the end.
 */
CrossCheckReport crossCheck(const hw::MachineSpec& spec,
                            const trace::RefTrace& refs,
                            const CrossCheckOptions& opts = {});

} // namespace recap::hier

#endif // RECAP_HIER_SIMULATE_HH_
