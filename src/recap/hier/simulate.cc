#include "recap/hier/simulate.hh"

#include <sstream>

#include "recap/eval/hierarchy_eval.hh"

namespace recap::hier
{

namespace
{

template <typename HierT, typename AccessFn>
RunResult
drive(HierT& h, size_t count, AccessFn&& access_one)
{
    RunResult result;
    result.servedBy.assign(h.depth() + 1, 0);
    for (size_t i = 0; i < count; ++i)
        ++result.servedBy[access_one(i)];
    // Total latency from the served-level histogram afterwards: the
    // per-access latencyOf() call (range check and all) is pure
    // overhead in the hot loop and the sum is identical.
    for (unsigned l = 0; l <= h.depth(); ++l)
        result.totalCycles +=
            result.servedBy[l] * uint64_t{h.latencyOf(l)};
    result.accesses = count;
    return result;
}

/** Field-by-field LevelStats comparison with a named first diff. */
bool
diffStats(const cache::LevelStats& a, const cache::LevelStats& b,
          std::string* field, uint64_t* got, uint64_t* want)
{
    const struct
    {
        const char* name;
        uint64_t lhs;
        uint64_t rhs;
    } fields[] = {
        {"accesses", a.accesses, b.accesses},
        {"hits", a.hits, b.hits},
        {"misses", a.misses, b.misses},
        {"evictions", a.evictions, b.evictions},
        {"writes", a.writes, b.writes},
        {"writebacks", a.writebacks, b.writebacks},
        {"backInvalidations", a.backInvalidations,
         b.backInvalidations},
    };
    for (const auto& f : fields) {
        if (f.lhs != f.rhs) {
            *field = f.name;
            *got = f.lhs;
            *want = f.rhs;
            return true;
        }
    }
    return false;
}

} // namespace

RunResult
runTrace(Hierarchy& h, const trace::Trace& t)
{
    return drive(h, t.size(),
                 [&](size_t i) { return h.access(t[i]); });
}

RunResult
runTrace(Hierarchy& h, const trace::RefTrace& refs)
{
    return drive(h, refs.size(), [&](size_t i) {
        return h.access(refs[i].addr, refs[i].write);
    });
}

RunResult
runTrace(cache::Hierarchy& h, const trace::Trace& t)
{
    return drive(h, t.size(),
                 [&](size_t i) { return h.access(t[i]); });
}

RunResult
runTrace(cache::Hierarchy& h, const trace::RefTrace& refs)
{
    return drive(h, refs.size(), [&](size_t i) {
        return h.access(refs[i].addr, refs[i].write);
    });
}

CrossCheckReport
crossCheck(const hw::MachineSpec& spec, const trace::RefTrace& refs,
           const CrossCheckOptions& opts)
{
    Options hopts;
    hopts.mode = opts.mode;
    hopts.budget = opts.budget;
    Hierarchy fast(spec, opts.seed, hopts);
    cache::Hierarchy ref =
        eval::buildHierarchy(spec, opts.seed, opts.mode);

    CrossCheckReport report;
    report.fullyCompiled = fast.fullyCompiled();
    report.result.servedBy.assign(fast.depth() + 1, 0);

    auto fail = [&](const std::string& what) {
        report.ok = false;
        report.detail = what;
    };

    for (size_t i = 0; i < refs.size(); ++i) {
        const unsigned la = fast.access(refs[i].addr, refs[i].write);
        const unsigned lb = ref.access(refs[i].addr, refs[i].write);
        ++report.result.servedBy[la];
        report.result.totalCycles += fast.latencyOf(la);
        if (la != lb) {
            std::ostringstream os;
            os << spec.name << ": access " << i << " (addr 0x"
               << std::hex << refs[i].addr << std::dec
               << (refs[i].write ? ", store" : ", load")
               << ") served by level " << la << " compiled vs " << lb
               << " interpreted";
            fail(os.str());
            break;
        }
        for (unsigned l = 0; l < fast.depth(); ++l) {
            if (!fast.isAdaptive(l))
                continue;
            const unsigned pa = fast.psel(l);
            const unsigned pb = ref.level(l).cache.psel();
            if (pa != pb) {
                std::ostringstream os;
                os << spec.name << ": access " << i << ": level "
                   << l << " PSEL " << pa << " compiled vs " << pb
                   << " interpreted";
                fail(os.str());
                break;
            }
        }
        if (!report.ok)
            break;
    }
    report.result.accesses = refs.size();
    if (!report.ok)
        return report;

    for (unsigned l = 0; l < fast.depth(); ++l) {
        std::string field;
        uint64_t got = 0;
        uint64_t want = 0;
        if (diffStats(fast.stats(l), ref.level(l).cache.stats(),
                      &field, &got, &want)) {
            std::ostringstream os;
            os << spec.name << ": level " << l << " " << field << " "
               << got << " compiled vs " << want << " interpreted";
            fail(os.str());
            return report;
        }
    }

    const unsigned stride = opts.imageSetStride ? opts.imageSetStride
                                                : 1;
    for (unsigned l = 0; l < fast.depth(); ++l) {
        const unsigned sets = fast.geometry(l).numSets;
        for (unsigned s = 0; s < sets; s += stride) {
            if (fast.setImage(l, s) !=
                ref.level(l).cache.setImage(s)) {
                std::ostringstream os;
                os << spec.name << ": level " << l << " set " << s
                   << " final image differs (tags/valid/policy key)";
                fail(os.str());
                return report;
            }
        }
    }
    return report;
}

} // namespace recap::hier
