/**
 * @file
 * Compiled multi-level hierarchy simulation: the whole-machine fast
 * path of the simulation stack.
 *
 * PR 5's compiled-automata kernel (S10) removed the interpreter from
 * single-level simulation, but every consumer that walks a *machine*
 * — eval::evaluateHierarchy, hw::Machine, the oracle replays behind
 * infer::SetProber — still paid a virtual touch/fill/victim dispatch
 * and a unique_ptr-laden Set object per level per access.
 * hier::Hierarchy is the multi-level counterpart: per level it keeps
 * the true contents in structure-of-arrays form (one flat tag array,
 * one valid bitmask and one dirty bitmask per set) and the
 * replacement state as one integer per set indexing the S10 dense
 * state x input -> (state, victim) tables, so the per-access walk is
 * bitmask scans and table lookups only.
 *
 * The subsystem is *hybrid* per level and per constituent policy:
 * a policy whose reachable state space exceeds the compile budget
 * (LRU at k = 12, NRU at k = 24, the stochastic "random" policy...)
 * falls back to one interpreted automaton per set, with identical
 * seeds, while its sibling levels — and, in an adaptive level, the
 * sibling duel policy — stay compiled. Behaviour is bit-identical to
 * the interpreted cache::Hierarchy either way; tests/test_hier*.cc
 * pin the equivalence per access, per counter, and per tag image.
 *
 * Set-dueling adaptivity is just more integer state: PSEL is one
 * saturating counter per level, set roles are a precomputed byte per
 * set, and both constituent automatons advance on every access (as
 * in cache::Cache, so their state always reflects the true
 * contents), which keeps DIP/DRRIP/TemporalDuel machines on the
 * compiled path end to end.
 *
 * Inclusion semantics follow cache::InclusionMode exactly, including
 * back-invalidation on inclusive victim eviction and the exclusive
 * probe/extract/promote walk.
 */

#ifndef RECAP_HIER_HIERARCHY_HH_
#define RECAP_HIER_HIERARCHY_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "recap/cache/cache.hh"
#include "recap/cache/hierarchy.hh"
#include "recap/hw/spec.hh"
#include "recap/policy/compiled.hh"

namespace recap::hier
{

/** Construction-time knobs for a compiled hierarchy. */
struct Options
{
    /** Cross-level content discipline (see cache::InclusionMode). */
    cache::InclusionMode mode = cache::InclusionMode::kNonInclusive;

    /** Budget handed to compiledTableFor() per constituent policy. */
    policy::CompileBudget budget;

    /**
     * Skip table compilation entirely and run every policy on the
     * interpreted fallback — for differential testing and for
     * benchmarking the tables' contribution in isolation.
     */
    bool forceInterpreted = false;
};

/**
 * A multi-level cache hierarchy in structure-of-arrays form, walking
 * compiled policy tables where they fit the budget and interpreted
 * automatons where they do not.
 *
 * Construction mirrors eval::buildHierarchy()/hw::Machine exactly:
 * level seeds start at @p seed and advance by 0x10001 per level;
 * within a level, set s's first policy is seeded level_seed + s and
 * its duel partner level_seed + numSets + s — so stochastic fallback
 * policies reproduce the interpreted hierarchy bit for bit.
 */
class Hierarchy
{
  public:
    /**
     * @param spec Machine description; validated. Every level must
     *             have at most 32 ways (the bitmask word width).
     * @param seed Seed for stochastic (fallback) policies.
     * @param opts Inclusion mode, compile budget, fallback forcing.
     */
    explicit Hierarchy(const hw::MachineSpec& spec, uint64_t seed = 1,
                       const Options& opts = {});

    /** Number of cache levels. */
    unsigned depth() const
    {
        return static_cast<unsigned>(levels_.size());
    }

    /**
     * Performs one access; stores mark lines dirty at every level
     * they fill (write-back, write-allocate).
     * @return Index of the level that hit, or depth() for memory.
     */
    unsigned access(cache::Addr addr, bool write = false);

    /** Cycles for a hit at @p level (depth() = memory). */
    unsigned latencyOf(unsigned level) const;

    /** Access + latency in one call. */
    unsigned accessLatency(cache::Addr addr)
    {
        return latencyOf(access(addr));
    }

    /**
     * Flushes every level (the machine's wbinvd): dirty lines count
     * writebacks, contents and policy states reset, PSEL deliberately
     * survives — exactly like cache::Cache::flush().
     */
    void flushAll();

    /** Clears the statistics of every level. */
    void resetStats();

    unsigned memoryLatency() const { return memoryLatency_; }

    /** Cross-level content discipline this hierarchy maintains. */
    cache::InclusionMode inclusionMode() const { return mode_; }

    /** Display name of level @p level. */
    const std::string& name(unsigned level) const;

    /** Counters of level @p level. */
    const cache::LevelStats& stats(unsigned level) const;

    /** Geometry of level @p level. */
    const cache::Geometry& geometry(unsigned level) const;

    /** True iff level @p level duels two policies. */
    bool isAdaptive(unsigned level) const;

    /** Current PSEL value of an adaptive level. */
    unsigned psel(unsigned level) const;

    /** PSEL midpoint; PSEL >= midpoint selects policy B. */
    unsigned pselMidpoint(unsigned level) const;

    /** Duel role of set @p set at level @p level. */
    cache::Cache::SetRole setRole(unsigned level, unsigned set) const;

    /**
     * Debug snapshot of one set (same encoding as
     * cache::Cache::setImage, policyKey from the first policy), for
     * the differential tests.
     */
    cache::Cache::SetImage setImage(unsigned level,
                                    unsigned set) const;

    /**
     * True iff every constituent policy of level @p level runs on a
     * compiled table (no interpreted fallback).
     */
    bool levelCompiled(unsigned level) const;

    /** True iff every level is fully compiled. */
    bool fullyCompiled() const;

  private:
    /** One level in structure-of-arrays form. */
    struct Level
    {
        cache::Geometry geom;
        std::string name;
        unsigned hitLatency = 1;
        unsigned ways = 0;
        unsigned setShift = 0; ///< log2(lineSize)
        unsigned tagShift = 0; ///< log2(lineSize) + log2(numSets)
        uint32_t setMask = 0;
        uint32_t fullMask = 0; ///< all @ref ways valid bits set

        std::vector<uint64_t> tags; ///< numSets * ways, row-major
        std::vector<uint32_t> valid; ///< per-set way bitmask
        std::vector<uint32_t> dirty; ///< per-set way bitmask

        /**
         * Raw transition-table pointers hoisted out of a
         * CompiledTable once at construction, so the per-access
         * state updates are plain array indexing with no handle
         * dereference. Exactly one width per kind is non-null
         * (narrow when the automaton fits 2^16 states).
         */
        struct TablePtrs
        {
            const uint16_t* touch16 = nullptr;
            const uint32_t* touch32 = nullptr;
            const uint16_t* fill16 = nullptr;
            const uint32_t* fill32 = nullptr;
            const uint16_t* victim = nullptr;
        };

        // Constituent policy A: compiled (tableA + stateA) or
        // interpreted (interpA), never both.
        policy::CompiledTablePtr tableA;
        TablePtrs ptrA;
        std::vector<uint32_t> stateA;
        std::vector<policy::PolicyPtr> interpA;
        bool metaA = false; ///< interpreted A consumes AccessMeta

        bool adaptive = false;
        policy::CompiledTablePtr tableB;
        TablePtrs ptrB;
        std::vector<uint32_t> stateB;
        std::vector<policy::PolicyPtr> interpB;
        bool metaB = false;

        bool anyMeta = false; ///< metaA || metaB, hot-path gate

        cache::DuelingConfig duel;
        unsigned psel = 0;
        unsigned pselMax = 0;
        std::vector<uint8_t> roles; ///< SetRole per set

        cache::LevelStats stats;
    };

    /** Outcome of one in-level access, for the inclusive walk. */
    struct LevelAccess
    {
        bool hit = false;
        bool evicted = false;
        cache::Addr evictedBlock = 0;
    };

    void publishMeta(Level& lvl, unsigned set, cache::Addr addr);
    void touchBoth(Level& lvl, unsigned set, unsigned way);
    void fillBoth(Level& lvl, unsigned set, unsigned way);
    unsigned victimOf(const Level& lvl, unsigned set) const;
    void trainPsel(Level& lvl, uint8_t role);
    cache::Addr blockAddr(const Level& lvl, unsigned set,
                          unsigned way) const;

    /** Fill-on-miss access to one level (shared by both walks). */
    LevelAccess accessLevel(Level& lvl, cache::Addr addr, bool write);

    /** Probe for the exclusive walk: counts but never fills. */
    bool probeLevel(Level& lvl, cache::Addr addr, bool write,
                    bool touchOnHit);

    /** Removes a line, dirty bit travelling with it (no stats). */
    cache::Cache::Extracted extractLevel(Level& lvl,
                                         cache::Addr addr);

    /** Victim-cascade insertion (no access counted). */
    bool insertLevel(Level& lvl, cache::Addr addr, bool dirty,
                     cache::Cache::Displaced* displaced);

    /** Inclusion maintenance: drop a line, count backInvalidations. */
    void backInvalidateLevel(Level& lvl, cache::Addr addr);

    unsigned accessNonInclusive(cache::Addr addr, bool write);
    unsigned accessInclusive(cache::Addr addr, bool write);
    unsigned accessExclusive(cache::Addr addr, bool write);

    const Level& checkedLevel(unsigned level, const char* what) const;

    std::vector<Level> levels_;
    unsigned memoryLatency_;
    cache::InclusionMode mode_;
};

} // namespace recap::hier

#endif // RECAP_HIER_HIERARCHY_HH_
