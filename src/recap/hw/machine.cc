#include "recap/hw/machine.hh"

#include "recap/common/error.hh"
#include "recap/policy/factory.hh"

namespace recap::hw
{

namespace
{

/** Validates @p spec before the member initializers consume it. */
const MachineSpec&
validated(const MachineSpec& spec)
{
    spec.validate();
    return spec;
}

/** Flattens per-level stats into a fault-injectable word vector. */
CounterSnapshot
flatten(const PerfCounts& counts)
{
    CounterSnapshot snap;
    snap.words.reserve(counts.levels.size() * 3 + 1);
    for (const auto& lvl : counts.levels) {
        snap.words.push_back(lvl.accesses);
        snap.words.push_back(lvl.hits);
        snap.words.push_back(lvl.misses);
    }
    snap.words.push_back(counts.memoryAccesses);
    return snap;
}

void
unflatten(const CounterSnapshot& snap, PerfCounts& counts)
{
    std::size_t w = 0;
    for (auto& lvl : counts.levels) {
        lvl.accesses = snap.words[w++];
        lvl.hits = snap.words[w++];
        lvl.misses = snap.words[w++];
    }
    counts.memoryAccesses = snap.words[w++];
}

} // namespace

Machine::Machine(const MachineSpec& spec, uint64_t seed,
                 const NoiseConfig& noise)
    : Machine(spec, seed, FaultConfig::fromNoise(noise))
{}

Machine::Machine(const MachineSpec& spec, uint64_t seed,
                 const FaultConfig& faults)
    : spec_(validated(spec)), hierarchy_(spec_, seed),
      faults_(faults, seed, spec.levels.front().geometry())
{}

uint64_t
Machine::timedAccess(cache::Addr addr)
{
    uint64_t penalty = 0;
    const unsigned level = issue(addr, &penalty);
    return faults_.perturbLatency(hierarchy_.latencyOf(level),
                                  penalty);
}

void
Machine::access(cache::Addr addr)
{
    issue(addr);
}

void
Machine::accessAll(const std::vector<cache::Addr>& addrs)
{
    for (cache::Addr a : addrs)
        issue(a);
}

void
Machine::wbinvd()
{
    hierarchy_.flushAll();
}

PerfCounts
Machine::counters() const
{
    PerfCounts counts;
    counts.levels.reserve(depth());
    for (unsigned i = 0; i < depth(); ++i)
        counts.levels.push_back(hierarchy_.stats(i));
    counts.memoryAccesses = memoryAccesses_;

    if (!faults_.config().anyCounterFaults())
        return counts;
    // A hostile machine may garble or drop the read: the returned
    // snapshot is what the experimenter's counter read observed, not
    // necessarily the truth.
    unflatten(faults_.readCounters(flatten(counts)), counts);
    return counts;
}

unsigned
Machine::classifyLatency(uint64_t cycles) const
{
    // Thresholds halfway between adjacent documented latencies.
    for (unsigned i = 0; i < depth(); ++i) {
        const uint64_t this_lat = hierarchy_.latencyOf(i);
        const uint64_t next_lat = hierarchy_.latencyOf(i + 1);
        if (cycles <= (this_lat + next_lat) / 2)
            return i;
    }
    return depth();
}

policy::PolicyPtr
Machine::groundTruthPolicy(unsigned level) const
{
    require(level < depth(), "Machine::groundTruthPolicy: level range");
    const auto& lvl = spec_.levels[level];
    return policy::makePolicy(lvl.policySpec, lvl.ways);
}

bool
Machine::groundTruthAdaptive(unsigned level) const
{
    require(level < depth(),
            "Machine::groundTruthAdaptive: level range");
    return spec_.levels[level].isAdaptive();
}

const cache::Geometry&
Machine::levelGeometry(unsigned level) const
{
    require(level < depth(), "Machine::levelGeometry: level range");
    return hierarchy_.geometry(level);
}

bool
Machine::levelAdaptive(unsigned level) const
{
    require(level < depth(), "Machine::levelAdaptive: level range");
    return hierarchy_.isAdaptive(level);
}

cache::Cache::SetRole
Machine::levelSetRole(unsigned level, unsigned set) const
{
    require(level < depth(), "Machine::levelSetRole: level range");
    return hierarchy_.setRole(level, set);
}

unsigned
Machine::levelPsel(unsigned level) const
{
    require(level < depth(), "Machine::levelPsel: level range");
    return hierarchy_.psel(level);
}

void
Machine::injectAccess(cache::Addr addr)
{
    if (hierarchy_.access(addr) == depth())
        ++memoryAccesses_;
}

unsigned
Machine::issue(cache::Addr addr, uint64_t* latencyPenalty)
{
    ++loadsIssued_;
    FaultModel::Interference plan = faults_.beforeLoad(addr);
    // Legacy disturbances model another measurement-visible actor and
    // count as issued loads; prefetcher/interrupt traffic perturbs
    // cache state and per-level counters only.
    for (cache::Addr d : plan.disturbances) {
        injectAccess(d);
        ++loadsIssued_;
    }
    for (cache::Addr b : plan.background)
        injectAccess(b);
    if (latencyPenalty)
        *latencyPenalty = plan.latencyPenalty;

    const unsigned level = hierarchy_.access(addr);
    if (level == depth())
        ++memoryAccesses_;
    return level;
}

} // namespace recap::hw
