#include "recap/hw/machine.hh"

#include "recap/common/error.hh"
#include "recap/policy/factory.hh"

namespace recap::hw
{

Machine::Machine(const MachineSpec& spec, uint64_t seed,
                 const NoiseConfig& noise)
    : spec_(spec), hierarchy_(spec.memoryLatency), noise_(noise),
      noiseRng_(seed ^ 0xfeedfaceULL)
{
    spec_.validate();
    uint64_t level_seed = seed;
    for (const auto& lvl : spec_.levels) {
        if (lvl.isAdaptive()) {
            hierarchy_.addLevel(
                cache::Cache(lvl.geometry(), lvl.policySpec,
                             lvl.policySpecB, lvl.duel, lvl.name,
                             level_seed),
                lvl.hitLatency);
        } else {
            hierarchy_.addLevel(
                cache::Cache(lvl.geometry(), lvl.policySpec, lvl.name,
                             level_seed),
                lvl.hitLatency);
        }
        level_seed += 0x10001;
    }
}

uint64_t
Machine::timedAccess(cache::Addr addr)
{
    const unsigned level = issue(addr);
    uint64_t cycles = hierarchy_.latencyOf(level);
    if (noise_.latencyJitterProbability > 0.0 &&
        noiseRng_.nextBool(noise_.latencyJitterProbability)) {
        // Interrupt-style jitter only ever adds latency.
        cycles += 1 + noiseRng_.nextBelow(noise_.latencyJitterCycles);
    }
    return cycles;
}

void
Machine::access(cache::Addr addr)
{
    issue(addr);
}

void
Machine::accessAll(const std::vector<cache::Addr>& addrs)
{
    for (cache::Addr a : addrs)
        issue(a);
}

void
Machine::wbinvd()
{
    hierarchy_.flushAll();
}

PerfCounts
Machine::counters() const
{
    PerfCounts counts;
    counts.levels.reserve(depth());
    for (unsigned i = 0; i < depth(); ++i)
        counts.levels.push_back(hierarchy_.level(i).cache.stats());
    counts.memoryAccesses = memoryAccesses_;
    return counts;
}

unsigned
Machine::classifyLatency(uint64_t cycles) const
{
    // Thresholds halfway between adjacent documented latencies.
    for (unsigned i = 0; i < depth(); ++i) {
        const uint64_t this_lat = hierarchy_.latencyOf(i);
        const uint64_t next_lat = hierarchy_.latencyOf(i + 1);
        if (cycles <= (this_lat + next_lat) / 2)
            return i;
    }
    return depth();
}

policy::PolicyPtr
Machine::groundTruthPolicy(unsigned level) const
{
    require(level < depth(), "Machine::groundTruthPolicy: level range");
    const auto& lvl = spec_.levels[level];
    return policy::makePolicy(lvl.policySpec, lvl.ways);
}

bool
Machine::groundTruthAdaptive(unsigned level) const
{
    require(level < depth(),
            "Machine::groundTruthAdaptive: level range");
    return spec_.levels[level].isAdaptive();
}

const cache::Cache&
Machine::levelCache(unsigned level) const
{
    require(level < depth(), "Machine::levelCache: level range");
    return hierarchy_.level(level).cache;
}

unsigned
Machine::issue(cache::Addr addr)
{
    ++loadsIssued_;
    if (noise_.disturbProbability > 0.0 &&
        noiseRng_.nextBool(noise_.disturbProbability)) {
        // A disturbing access lands in the same L1 set (and, with
        // matching alignment, often the same outer sets) as the load,
        // which is the damaging kind of interference.
        const auto& g = spec_.levels[0].geometry();
        const uint64_t way_span =
            static_cast<uint64_t>(g.lineSize) * g.numSets;
        const cache::Addr disturb =
            g.blockBase(addr) + way_span * (1 + noiseRng_.nextBelow(64));
        const unsigned lvl = hierarchy_.access(disturb);
        if (lvl == depth())
            ++memoryAccesses_;
        ++loadsIssued_;
    }
    const unsigned level = hierarchy_.access(addr);
    if (level == depth())
        ++memoryAccesses_;
    return level;
}

} // namespace recap::hw
