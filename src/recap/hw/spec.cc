#include "recap/hw/spec.hh"

#include "recap/common/error.hh"

namespace recap::hw
{

cache::Geometry
CacheLevelSpec::geometry() const
{
    return cache::Geometry::fromCapacity(capacityBytes, ways, lineSize);
}

void
MachineSpec::validate() const
{
    require(!name.empty(), "MachineSpec: name must not be empty");
    require(!levels.empty(), "MachineSpec: need at least one level");
    require(memoryLatency >= 1, "MachineSpec: memory latency >= 1");
    unsigned prev_latency = 0;
    for (const auto& lvl : levels) {
        require(!lvl.name.empty(), "MachineSpec: level name empty");
        require(lvl.hitLatency > prev_latency,
                "MachineSpec: level latencies must strictly increase");
        prev_latency = lvl.hitLatency;
        lvl.geometry().validate();
        require(!lvl.policySpec.empty(),
                "MachineSpec: level needs a ground-truth policy");
    }
    require(memoryLatency > prev_latency,
            "MachineSpec: memory must be slower than every cache");
}

} // namespace recap::hw
