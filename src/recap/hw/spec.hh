/**
 * @file
 * Declarative description of a machine under test: its cache levels,
 * latencies, and (hidden) ground-truth replacement policies.
 */

#ifndef RECAP_HW_SPEC_HH_
#define RECAP_HW_SPEC_HH_

#include <string>
#include <vector>

#include "recap/cache/cache.hh"
#include "recap/cache/geometry.hh"

namespace recap::hw
{

/**
 * One cache level of a machine spec.
 *
 * policySpecB, when non-empty, makes the level adaptive (set
 * dueling between policySpec and policySpecB with @ref duel).
 */
struct CacheLevelSpec
{
    std::string name;        ///< "L1D", "L2", "L3"
    uint64_t capacityBytes;
    unsigned ways;
    unsigned lineSize = 64;
    unsigned hitLatency;     ///< cycles
    std::string policySpec;  ///< ground truth (hidden from inference)
    std::string policySpecB; ///< second duel policy; empty if static
    cache::DuelingConfig duel;

    /** True iff this level duels two policies. */
    bool isAdaptive() const { return !policySpecB.empty(); }

    /** Derived geometry. */
    cache::Geometry geometry() const;
};

/** A machine under test. */
struct MachineSpec
{
    std::string name;        ///< short id, e.g. "core2-e6300"
    std::string description; ///< human-readable model description
    std::vector<CacheLevelSpec> levels; ///< innermost (L1) first
    unsigned memoryLatency = 200;       ///< cycles on full miss

    /** Validates the spec; throws UsageError. */
    void validate() const;
};

} // namespace recap::hw

#endif // RECAP_HW_SPEC_HH_
