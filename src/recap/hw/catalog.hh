/**
 * @file
 * Catalog of the Intel-like machines the experiments run against.
 *
 * Capacities, associativities and rough latencies follow the real
 * parts' datasheets; the hidden ground-truth policies are
 * representative assignments consistent with the published
 * reverse-engineering literature (see DESIGN.md section 6).
 */

#ifndef RECAP_HW_CATALOG_HH_
#define RECAP_HW_CATALOG_HH_

#include <string>
#include <vector>

#include "recap/hw/spec.hh"

namespace recap::hw
{

/** All catalog machines, in presentation order. */
std::vector<MachineSpec> intelCatalog();

/**
 * Hidden machines with post-2014 last-level-cache policies
 * (DIP/DRRIP/SHiP/EAF), used to stress the inference pipeline beyond
 * the permutation class the paper's catalog covers. Kept separate
 * from intelCatalog() so the paper-reproduction sweeps stay exactly
 * the eight parts of Table 2.
 */
std::vector<MachineSpec> modernCatalog();

/**
 * Looks a machine up by its short name, across both intelCatalog()
 * and modernCatalog(); throws UsageError.
 */
MachineSpec catalogMachine(const std::string& name);

/** Short names of all intelCatalog() machines. */
std::vector<std::string> catalogNames();

/** Short names of all modernCatalog() machines. */
std::vector<std::string> modernCatalogNames();

/**
 * A reduced copy of @p spec with every level's set count divided
 * down to at most @p maxSets (keeping ways, line size, policies and
 * latencies). Inference results are set-count-independent, so the
 * experiment binaries use reduced machines to keep run times short;
 * the reduction factor is reported alongside the results.
 */
MachineSpec reducedSpec(const MachineSpec& spec, unsigned maxSets);

} // namespace recap::hw

#endif // RECAP_HW_CATALOG_HH_
