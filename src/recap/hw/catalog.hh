/**
 * @file
 * Catalog of the Intel-like machines the experiments run against.
 *
 * Capacities, associativities and rough latencies follow the real
 * parts' datasheets; the hidden ground-truth policies are
 * representative assignments consistent with the published
 * reverse-engineering literature (see DESIGN.md section 6).
 */

#ifndef RECAP_HW_CATALOG_HH_
#define RECAP_HW_CATALOG_HH_

#include <string>
#include <vector>

#include "recap/hw/spec.hh"

namespace recap::hw
{

/** All catalog machines, in presentation order. */
std::vector<MachineSpec> intelCatalog();

/** Looks a machine up by its short name; throws UsageError. */
MachineSpec catalogMachine(const std::string& name);

/** Short names of all catalog machines. */
std::vector<std::string> catalogNames();

/**
 * A reduced copy of @p spec with every level's set count divided
 * down to at most @p maxSets (keeping ways, line size, policies and
 * latencies). Inference results are set-count-independent, so the
 * experiment binaries use reduced machines to keep run times short;
 * the reduction factor is reported alongside the results.
 */
MachineSpec reducedSpec(const MachineSpec& spec, unsigned maxSets);

} // namespace recap::hw

#endif // RECAP_HW_CATALOG_HH_
