#include "recap/hw/faults.hh"

#include <algorithm>
#include <cmath>

#include "recap/common/error.hh"
#include "recap/hw/machine.hh"

namespace recap::hw
{

namespace
{

double
clampProbability(double p)
{
    return std::min(1.0, std::max(0.0, p));
}

} // namespace

bool
FaultConfig::anyAccessFaults() const
{
    return (disturb.enabled && disturb.probability > 0.0) ||
           (adjacentLine.enabled && adjacentLine.probability > 0.0) ||
           (stream.enabled && stream.degree > 0) ||
           (interrupts.enabled && interrupts.burstAccesses > 0);
}

bool
FaultConfig::anyLatencyFaults() const
{
    return (jitter.enabled && jitter.probability > 0.0 &&
            jitter.cycles > 0) ||
           (tlb.enabled && tlb.probability > 0.0) ||
           (interrupts.enabled && interrupts.latencyPenalty > 0);
}

bool
FaultConfig::anyCounterFaults() const
{
    return counters.enabled && (counters.garbleProbability > 0.0 ||
                                counters.dropProbability > 0.0);
}

FaultConfig
FaultConfig::fromNoise(const NoiseConfig& noise)
{
    FaultConfig cfg;
    if (noise.disturbProbability > 0.0) {
        cfg.disturb.enabled = true;
        cfg.disturb.probability =
            clampProbability(noise.disturbProbability);
    }
    if (noise.latencyJitterProbability > 0.0) {
        cfg.jitter.enabled = true;
        cfg.jitter.probability =
            clampProbability(noise.latencyJitterProbability);
        cfg.jitter.cycles = noise.latencyJitterCycles;
    }
    return cfg;
}

FaultConfig
FaultConfig::hostile(double intensity)
{
    require(intensity >= 0.0,
            "FaultConfig::hostile: intensity must be >= 0");
    FaultConfig cfg;
    if (intensity == 0.0)
        return cfg;

    cfg.disturb.enabled = true;
    cfg.disturb.probability = clampProbability(0.004 * intensity);

    cfg.adjacentLine.enabled = true;
    cfg.adjacentLine.probability = clampProbability(0.05 * intensity);

    cfg.stream.enabled = true;
    cfg.stream.trainLength = 3;
    cfg.stream.degree = 2;

    cfg.interrupts.enabled = true;
    cfg.interrupts.meanQuietLoads =
        std::max(50.0, 60000.0 / intensity);
    cfg.interrupts.burstAccesses = 16;
    cfg.interrupts.latencyPenalty = 600;

    cfg.tlb.enabled = true;
    cfg.tlb.probability = clampProbability(0.002 * intensity);
    cfg.tlb.penalty = 150;

    cfg.jitter.enabled = true;
    cfg.jitter.probability = clampProbability(0.02 * intensity);
    cfg.jitter.cycles = 30;

    cfg.counters.enabled = true;
    cfg.counters.garbleProbability =
        clampProbability(0.0015 * intensity);
    cfg.counters.dropProbability =
        clampProbability(0.0015 * intensity);

    cfg.phases.enabled = true;
    cfg.phases.burstyMultiplier = 8.0;
    cfg.phases.meanQuietLoads = 6000.0;
    cfg.phases.meanBurstyLoads = 1500.0;
    return cfg;
}

FaultModel::FaultModel(const FaultConfig& cfg, uint64_t seed,
                       const cache::Geometry& l1)
    : cfg_(cfg), l1_(l1),
      passthrough_(!cfg.anyAccessFaults() && !cfg.phases.enabled),
      rng_(seed ^ 0xfeedfaceULL), counterRng_(seed ^ 0xc0c0a5e5ULL)
{
    if (cfg_.phases.enabled) {
        phaseLoadsLeft_ =
            1 + rng_.nextGeometric(cfg_.phases.meanQuietLoads);
    }
    if (cfg_.interrupts.enabled)
        armInterruptTimer();
}

double
FaultModel::phaseScale() const
{
    if (!cfg_.phases.enabled || !bursty_)
        return 1.0;
    return cfg_.phases.burstyMultiplier;
}

void
FaultModel::tickPhase()
{
    if (!cfg_.phases.enabled)
        return;
    if (phaseLoadsLeft_ > 0) {
        --phaseLoadsLeft_;
        return;
    }
    bursty_ = !bursty_;
    const double mean = bursty_ ? cfg_.phases.meanBurstyLoads
                                : cfg_.phases.meanQuietLoads;
    phaseLoadsLeft_ = 1 + rng_.nextGeometric(mean);
}

void
FaultModel::armInterruptTimer()
{
    // Bursty phases make interrupts proportionally more frequent.
    const double mean =
        std::max(1.0, cfg_.interrupts.meanQuietLoads / phaseScale());
    loadsUntilInterrupt_ = 1 + rng_.nextGeometric(mean);
}

cache::Addr
FaultModel::conflictingAddr(cache::Addr addr)
{
    // A fresh-tagged line in the same innermost set (and, with the
    // usual power-of-two alignment, often the same outer sets) —
    // the damaging kind of interference.
    const uint64_t way_span =
        static_cast<uint64_t>(l1_.lineSize) * l1_.numSets;
    return l1_.blockBase(addr) + way_span * (1 + rng_.nextBelow(64));
}

FaultModel::Interference
FaultModel::beforeLoad(cache::Addr addr)
{
    Interference out;
    ++loadsSeen_;
    if (passthrough_)
        return out;
    tickPhase();
    const double scale = phaseScale();

    if (cfg_.disturb.enabled && cfg_.disturb.probability > 0.0 &&
        rng_.nextBool(
            clampProbability(cfg_.disturb.probability * scale))) {
        out.disturbances.push_back(conflictingAddr(addr));
    }

    if (cfg_.adjacentLine.enabled &&
        cfg_.adjacentLine.probability > 0.0 &&
        rng_.nextBool(clampProbability(
            cfg_.adjacentLine.probability * scale))) {
        // The 128-byte-aligned buddy line of the demand load.
        out.background.push_back(l1_.blockBase(addr) ^ l1_.lineSize);
    }

    if (cfg_.stream.enabled && cfg_.stream.degree > 0) {
        const uint64_t line = l1_.blockNumber(addr);
        if (streamRun_ > 0 && line == lastLine_ + 1)
            ++streamRun_;
        else
            streamRun_ = 1;
        lastLine_ = line;
        if (streamRun_ >= cfg_.stream.trainLength) {
            for (unsigned d = 1; d <= cfg_.stream.degree; ++d) {
                out.background.push_back(
                    (line + d) *
                    static_cast<uint64_t>(l1_.lineSize));
            }
        }
    }

    if (cfg_.interrupts.enabled) {
        if (loadsUntilInterrupt_ > 0)
            --loadsUntilInterrupt_;
        if (loadsUntilInterrupt_ == 0) {
            // The handler's working set tramples the victim set
            // mid-experiment and stalls the interrupted load.
            for (unsigned i = 0; i < cfg_.interrupts.burstAccesses;
                 ++i) {
                out.background.push_back(conflictingAddr(addr));
            }
            out.latencyPenalty += cfg_.interrupts.latencyPenalty;
            armInterruptTimer();
        }
    }
    return out;
}

uint64_t
FaultModel::perturbLatency(uint64_t cycles, uint64_t pendingPenalty)
{
    uint64_t out = cycles + pendingPenalty;
    const double scale = phaseScale();
    if (cfg_.tlb.enabled && cfg_.tlb.probability > 0.0 &&
        rng_.nextBool(clampProbability(cfg_.tlb.probability * scale)))
        out += cfg_.tlb.penalty;
    if (cfg_.jitter.enabled && cfg_.jitter.probability > 0.0 &&
        rng_.nextBool(
            clampProbability(cfg_.jitter.probability * scale))) {
        // Strictly additive and guarded against a zero magnitude:
        // jitter can never underflow the base latency or invert the
        // level ordering.
        if (cfg_.jitter.cycles > 0)
            out += 1 + rng_.nextBelow(cfg_.jitter.cycles);
    }
    return out;
}

CounterSnapshot
FaultModel::readCounters(const CounterSnapshot& exact)
{
    if (!cfg_.counters.enabled) {
        stale_ = exact;
        staleValid_ = true;
        return exact;
    }

    if (staleValid_ && cfg_.counters.dropProbability > 0.0 &&
        counterRng_.nextBool(cfg_.counters.dropProbability)) {
        // Dropped read: the experimenter sees the previous values.
        return stale_;
    }

    CounterSnapshot out = exact;
    if (cfg_.counters.garbleProbability > 0.0 &&
        counterRng_.nextBool(cfg_.counters.garbleProbability) &&
        !out.words.empty() && cfg_.counters.garbleMagnitude > 0) {
        const std::size_t field =
            counterRng_.nextBelow(out.words.size());
        const uint64_t delta =
            1 + counterRng_.nextBelow(cfg_.counters.garbleMagnitude);
        if (counterRng_.nextBool(0.5)) {
            out.words[field] += delta;
        } else {
            out.words[field] -=
                std::min<uint64_t>(delta, out.words[field]);
        }
    }
    stale_ = out;
    staleValid_ = true;
    return out;
}

} // namespace recap::hw
