/**
 * @file
 * The simulated machine under test.
 *
 * Machine is the stand-in for the physical Intel boxes of the paper.
 * Reverse-engineering code may use only the observables a real
 * microbenchmark has:
 *   - issue a load to an address and read how many cycles it took
 *     (rdtsc-style), or
 *   - read per-level hit/miss event counters
 *     (performance-counter-style), and
 *   - flush all caches (wbinvd-style).
 *
 * A configurable noise model perturbs both observables so that the
 * robustness machinery (experiment repetition + majority voting) is
 * exercised exactly as on real hardware.
 */

#ifndef RECAP_HW_MACHINE_HH_
#define RECAP_HW_MACHINE_HH_

#include <cstdint>
#include <vector>

#include "recap/common/rng.hh"
#include "recap/hier/hierarchy.hh"
#include "recap/hw/faults.hh"
#include "recap/hw/spec.hh"

namespace recap::hw
{

/**
 * Legacy flat noise configuration — a thin compatibility shim over
 * FaultConfig (see faults.hh for the composable model). Maps to the
 * disturb + jitter sources via FaultConfig::fromNoise().
 */
struct NoiseConfig
{
    /**
     * Probability, per issued load, that a disturbing access (model
     * of a prefetcher or another core) touches a random line in the
     * same set as the load before it executes.
     */
    double disturbProbability = 0.0;

    /** Probability that a latency reading is garbled (+/- jitter). */
    double latencyJitterProbability = 0.0;

    /** Magnitude of latency jitter in cycles. */
    unsigned latencyJitterCycles = 30;
};

/** Cumulative per-level event counts (performance counters). */
struct PerfCounts
{
    std::vector<cache::LevelStats> levels;
    uint64_t memoryAccesses = 0;
};

/**
 * A machine under test built from a MachineSpec.
 *
 * The hierarchy and its ground-truth policies are private; tests may
 * use groundTruth() to validate inference results, but inference
 * code itself must restrict itself to the measurement interface.
 */
class Machine
{
  public:
    /**
     * @param spec  Machine description; validated.
     * @param seed  Seed for stochastic policies and the noise model.
     * @param noise Legacy measurement noise configuration.
     */
    explicit Machine(const MachineSpec& spec, uint64_t seed = 1,
                     const NoiseConfig& noise = {});

    /**
     * @param spec   Machine description; validated.
     * @param seed   Seed for stochastic policies and fault injection.
     * @param faults Composable interference model (see faults.hh).
     */
    Machine(const MachineSpec& spec, uint64_t seed,
            const FaultConfig& faults);

    const MachineSpec& spec() const { return spec_; }

    /** The active fault configuration. */
    const FaultConfig& faultConfig() const
    {
        return faults_.config();
    }

    /** Number of cache levels. */
    unsigned depth() const { return hierarchy_.depth(); }

    /** Issues a load and returns its (possibly noisy) latency. */
    uint64_t timedAccess(cache::Addr addr);

    /** Issues a load without timing it. */
    void access(cache::Addr addr);

    /** Issues a sequence of untimed loads. */
    void accessAll(const std::vector<cache::Addr>& addrs);

    /** Flushes all cache levels (wbinvd). */
    void wbinvd();

    /**
     * Reads the performance counters. Under counter faults the read
     * may be garbled or dropped (stale snapshot); otherwise exact.
     */
    PerfCounts counters() const;

    /** Total loads issued so far (measurement-cost accounting). */
    uint64_t loadsIssued() const { return loadsIssued_; }

    /**
     * Classifies a latency reading into the level it indicates:
     * 0..depth()-1 for cache levels, depth() for memory. Thresholds
     * are the midpoints between the spec's documented latencies,
     * which a real experimenter calibrates the same way.
     */
    unsigned classifyLatency(uint64_t cycles) const;

    /**
     * Ground-truth access for tests and reporting ONLY: a clone of
     * the policy automaton driving level @p level (set 0's instance).
     */
    policy::PolicyPtr groundTruthPolicy(unsigned level) const;

    /** Ground-truth adaptivity flag for level @p level. */
    bool groundTruthAdaptive(unsigned level) const;

    /**
     * White-box inspection for tests and experiment reporting ONLY —
     * inference code must not use these. Thin passthroughs to the
     * underlying hier::Hierarchy.
     */
    const cache::Geometry& levelGeometry(unsigned level) const;
    bool levelAdaptive(unsigned level) const;
    cache::Cache::SetRole levelSetRole(unsigned level,
                                       unsigned set) const;
    unsigned levelPsel(unsigned level) const;

  private:
    /**
     * Performs a load, returns the hit level (depth() = memory) and
     * the latency penalty injected interference charged to it.
     */
    unsigned issue(cache::Addr addr, uint64_t* latencyPenalty = nullptr);

    /** Injects one interfering access (not an experimenter load). */
    void injectAccess(cache::Addr addr);

    MachineSpec spec_;
    // The compiled hier:: walk; levels whose policies exceed the
    // compile budget transparently run their interpreted automatons
    // inside it, so behaviour is identical for every spec.
    hier::Hierarchy hierarchy_;
    // Mutable: counter-read faults (garble/drop) consume RNG state
    // even though counters() is logically const for the experimenter.
    mutable FaultModel faults_;
    uint64_t loadsIssued_ = 0;
    uint64_t memoryAccesses_ = 0;
};

} // namespace recap::hw

#endif // RECAP_HW_MACHINE_HH_
