/**
 * @file
 * Composable fault injection for the machine under test.
 *
 * The paper's microbenchmarks only work on real Intel hardware
 * because they survive prefetchers, interrupts, TLB effects and
 * timer jitter. FaultModel reproduces those interference sources on
 * the simulated substrate so the inference stack can be hardened
 * against them:
 *
 *   - same-set disturbing accesses (SMT sibling / other-core traffic
 *     landing in the probed set — the legacy NoiseConfig source),
 *   - an adjacent-line prefetcher (every demand load may pull its
 *     128-byte buddy line),
 *   - a stream prefetcher (ascending line-granular streams trigger
 *     prefetches several lines ahead),
 *   - interrupt/preemption bursts (a burst of foreign accesses that
 *     evicts the victim set mid-experiment, plus a large latency
 *     penalty on the interrupted load),
 *   - TLB-miss latency outliers (a page walk inflates one reading),
 *   - additive timer jitter on latency readings,
 *   - garbled or dropped performance-counter reads, and
 *   - time-varying phases (quiet/bursty) that modulate all of the
 *     above, modelling co-runner activity coming and going.
 *
 * Every source is individually toggleable and seed-deterministic:
 * with equal seeds and equal call sequences a FaultModel injects the
 * exact same interference, so noisy experiments reproduce bit for
 * bit.
 */

#ifndef RECAP_HW_FAULTS_HH_
#define RECAP_HW_FAULTS_HH_

#include <cstdint>
#include <vector>

#include "recap/cache/geometry.hh"
#include "recap/common/rng.hh"

namespace recap::hw
{

struct NoiseConfig; // legacy shim, defined in machine.hh

/** Same-set disturbing access, per demand load. */
struct DisturbFault
{
    bool enabled = false;
    double probability = 0.01; ///< per demand load
};

/** Adjacent-line ("buddy") prefetcher. */
struct AdjacentLineFault
{
    bool enabled = false;
    double probability = 0.2; ///< buddy fetch per demand load
};

/** Ascending-stream prefetcher. */
struct StreamFault
{
    bool enabled = false;
    unsigned trainLength = 3; ///< consecutive +1-line strides to arm
    unsigned degree = 2;      ///< lines fetched ahead once armed
};

/** Interrupt / preemption bursts. */
struct InterruptFault
{
    bool enabled = false;
    double meanQuietLoads = 4000.0;  ///< mean loads between bursts
    unsigned burstAccesses = 24;     ///< same-set evictions per burst
    uint64_t latencyPenalty = 600;   ///< cycles added to the load hit
                                     ///< by the interrupt
};

/** TLB-miss (page walk) latency outliers. */
struct TlbFault
{
    bool enabled = false;
    double probability = 0.002; ///< per timed load
    uint64_t penalty = 150;     ///< page-walk cycles
};

/** Additive timer jitter on latency readings. */
struct JitterFault
{
    bool enabled = false;
    double probability = 0.05;
    unsigned cycles = 30; ///< magnitude; 0 is valid and injects none
};

/** Garbled / dropped performance-counter reads. */
struct CounterFault
{
    bool enabled = false;
    double garbleProbability = 0.01; ///< a hit count is perturbed
    double dropProbability = 0.01;   ///< the read returns stale values
    unsigned garbleMagnitude = 2;    ///< max |perturbation| per field
};

/** Quiet/bursty activity phases modulating the other sources. */
struct PhaseFault
{
    bool enabled = false;
    double burstyMultiplier = 8.0;  ///< intensity scale when bursty
    double meanQuietLoads = 6000.0; ///< mean quiet-phase length
    double meanBurstyLoads = 1500.0;///< mean bursty-phase length
};

/**
 * The full fault configuration. Default-constructed = no faults (a
 * noiseless machine). NoiseConfig maps onto the disturb and jitter
 * sources via fromNoise().
 */
struct FaultConfig
{
    DisturbFault disturb;
    AdjacentLineFault adjacentLine;
    StreamFault stream;
    InterruptFault interrupts;
    TlbFault tlb;
    JitterFault jitter;
    CounterFault counters;
    PhaseFault phases;

    /** True iff any source can perturb the access stream. */
    bool anyAccessFaults() const;

    /** True iff any source can perturb latency readings. */
    bool anyLatencyFaults() const;

    /** True iff counter reads can be perturbed. */
    bool anyCounterFaults() const;

    bool anyFaults() const
    {
        return anyAccessFaults() || anyLatencyFaults() ||
               anyCounterFaults();
    }

    /** The legacy NoiseConfig, expressed as fault sources. */
    static FaultConfig fromNoise(const NoiseConfig& noise);

    /**
     * Every source enabled, with per-source default intensities
     * scaled by @p intensity (probabilities clamped to [0,1], burst
     * gaps shrunk accordingly). intensity 1.0 is the calibrated
     * "hostile machine" of the robustness experiments; 0.0 disables
     * everything.
     */
    static FaultConfig hostile(double intensity = 1.0);
};

/** Counter snapshot as FaultModel perturbs it (mirrors PerfCounts). */
struct CounterSnapshot
{
    /** accesses/hits/misses per level, flattened. */
    std::vector<uint64_t> words;
};

/**
 * The injector. A Machine owns one FaultModel and consults it
 *  - before every demand load (what interference precedes it),
 *  - after every timed load (how the latency reading is perturbed),
 *  - around every counter read (garble/drop).
 *
 * The access/latency faults and the counter faults draw from two
 * independent RNG streams so that reading counters never perturbs
 * the interference sequence.
 */
class FaultModel
{
  public:
    /**
     * @param cfg     Fault sources and intensities.
     * @param seed    Determinism root; equal seeds, equal behaviour.
     * @param l1      Innermost-level geometry (disturbances and
     *                bursts alias the probed set through it).
     */
    FaultModel(const FaultConfig& cfg, uint64_t seed,
               const cache::Geometry& l1);

    const FaultConfig& config() const { return cfg_; }

    /** Interference to inject before one demand load. */
    struct Interference
    {
        /**
         * Disturbing loads that model another measurement-visible
         * actor; the legacy source. Counted as issued loads for
         * backwards-compatible cost accounting.
         */
        std::vector<cache::Addr> disturbances;

        /**
         * Prefetcher / interrupt traffic: perturbs cache state and
         * per-level counters but is not an experimenter load.
         */
        std::vector<cache::Addr> background;

        /** Latency penalty the pending load must absorb (cycles). */
        uint64_t latencyPenalty = 0;
    };

    /**
     * Advances phase/burst/prefetcher state for one demand load of
     * @p addr and returns the interference to apply before it.
     */
    Interference beforeLoad(cache::Addr addr);

    /**
     * Perturbs one latency reading (TLB outlier + jitter + any burst
     * penalty from the matching beforeLoad()). Strictly additive:
     * never returns less than @p cycles, so level ordering is never
     * inverted by a fault.
     */
    uint64_t perturbLatency(uint64_t cycles,
                            uint64_t pendingPenalty = 0);

    /**
     * Perturbs one counter read. @p exact is the true snapshot; the
     * returned snapshot may be garbled (fields perturbed) or stale
     * (the previous returned snapshot, modelling a dropped read).
     */
    CounterSnapshot readCounters(const CounterSnapshot& exact);

    /** Loads seen so far (phase clock; for tests). */
    uint64_t loadsSeen() const { return loadsSeen_; }

    /** True iff currently in a bursty phase (for tests). */
    bool inBurstyPhase() const { return bursty_; }

  private:
    /** Current intensity multiplier (phase modulation). */
    double phaseScale() const;

    /** Advances the phase state machine by one load. */
    void tickPhase();

    /** Draws the loads until the next interrupt burst. */
    void armInterruptTimer();

    /** A fresh same-set conflicting address for @p addr. */
    cache::Addr conflictingAddr(cache::Addr addr);

    FaultConfig cfg_;
    cache::Geometry l1_;
    bool passthrough_; ///< no access faults and no phases: skip work
    Rng rng_;        ///< access + latency fault stream
    Rng counterRng_; ///< counter fault stream (independent)

    uint64_t loadsSeen_ = 0;

    // Phase state.
    bool bursty_ = false;
    uint64_t phaseLoadsLeft_ = 0;

    // Interrupt state.
    uint64_t loadsUntilInterrupt_ = 0;

    // Stream-prefetcher state.
    uint64_t lastLine_ = 0;
    unsigned streamRun_ = 0;

    // Counter-read state (dropped reads return the stale snapshot).
    bool staleValid_ = false;
    CounterSnapshot stale_;
};

} // namespace recap::hw

#endif // RECAP_HW_FAULTS_HH_
