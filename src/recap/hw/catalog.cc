#include "recap/hw/catalog.hh"

#include <algorithm>

#include "recap/common/bitops.hh"
#include "recap/common/error.hh"

namespace recap::hw
{

namespace
{

constexpr uint64_t kKiB = 1024;
constexpr uint64_t kMiB = 1024 * 1024;

CacheLevelSpec
level(std::string name, uint64_t capacity, unsigned ways,
      unsigned latency, std::string policy)
{
    CacheLevelSpec lvl;
    lvl.name = std::move(name);
    lvl.capacityBytes = capacity;
    lvl.ways = ways;
    lvl.hitLatency = latency;
    lvl.policySpec = std::move(policy);
    return lvl;
}

} // namespace

std::vector<MachineSpec>
intelCatalog()
{
    std::vector<MachineSpec> machines;

    {
        MachineSpec m;
        m.name = "atom-d525";
        m.description = "Intel Atom D525 (Bonnell)-like";
        m.levels = {
            level("L1D", 24 * kKiB, 6, 3, "lru"),
            level("L2", 512 * kKiB, 8, 15, "plru"),
        };
        m.memoryLatency = 180;
        machines.push_back(std::move(m));
    }
    {
        MachineSpec m;
        m.name = "core2-e6300";
        m.description = "Intel Core 2 Duo E6300 (Conroe)-like";
        m.levels = {
            level("L1D", 32 * kKiB, 8, 3, "plru"),
            level("L2", 2 * kMiB, 8, 15, "plru"),
        };
        m.memoryLatency = 200;
        machines.push_back(std::move(m));
    }
    {
        MachineSpec m;
        m.name = "core2-e6750";
        m.description = "Intel Core 2 Duo E6750 (Conroe)-like";
        m.levels = {
            level("L1D", 32 * kKiB, 8, 3, "plru"),
            level("L2", 4 * kMiB, 16, 15, "plru"),
        };
        m.memoryLatency = 200;
        machines.push_back(std::move(m));
    }
    {
        MachineSpec m;
        m.name = "core2-e8400";
        m.description = "Intel Core 2 Duo E8400 (Wolfdale)-like";
        m.levels = {
            level("L1D", 32 * kKiB, 8, 3, "plru"),
            level("L2", 6 * kMiB, 24, 15, "nru"),
        };
        m.memoryLatency = 200;
        machines.push_back(std::move(m));
    }
    {
        MachineSpec m;
        m.name = "nehalem-i5";
        m.description = "Intel Core i5 (Nehalem/Lynnfield)-like";
        m.levels = {
            level("L1D", 32 * kKiB, 8, 4, "plru"),
            level("L2", 256 * kKiB, 8, 11, "plru"),
            level("L3", 8 * kMiB, 16, 38, "nru"),
        };
        m.memoryLatency = 220;
        machines.push_back(std::move(m));
    }
    {
        MachineSpec m;
        m.name = "westmere-i5";
        m.description = "Intel Core i5 (Westmere/Clarkdale)-like";
        m.levels = {
            level("L1D", 32 * kKiB, 8, 4, "plru"),
            level("L2", 256 * kKiB, 8, 11, "plru"),
            level("L3", 4 * kMiB, 16, 38, "nru"),
        };
        m.memoryLatency = 220;
        machines.push_back(std::move(m));
    }
    {
        MachineSpec m;
        m.name = "sandybridge-i5";
        m.description = "Intel Core i5 (Sandy Bridge)-like";
        m.levels = {
            level("L1D", 32 * kKiB, 8, 4, "plru"),
            level("L2", 256 * kKiB, 8, 12, "plru"),
            level("L3", 6 * kMiB, 12, 36, "qlru:H1,M1,R0,U2"),
        };
        m.memoryLatency = 230;
        machines.push_back(std::move(m));
    }
    {
        MachineSpec m;
        m.name = "ivybridge-i5";
        m.description = "Intel Core i5 (Ivy Bridge)-like";
        CacheLevelSpec l3 =
            level("L3", 6 * kMiB, 12, 36, "qlru:H1,M1,R0,U2");
        l3.policySpecB = "qlru:H1,M3,R0,U2";
        l3.duel.leaderSetsPerPolicy = 32;
        l3.duel.pselBits = 10;
        m.levels = {
            level("L1D", 32 * kKiB, 8, 4, "plru"),
            level("L2", 256 * kKiB, 8, 12, "plru"),
            l3,
        };
        m.memoryLatency = 230;
        machines.push_back(std::move(m));
    }

    for (const auto& m : machines)
        m.validate();
    return machines;
}

std::vector<MachineSpec>
modernCatalog()
{
    std::vector<MachineSpec> machines;

    {
        MachineSpec m;
        m.name = "haswell-dip";
        m.description = "hypothetical Haswell-class part, DIP LLC";
        m.levels = {
            level("L1D", 32 * kKiB, 8, 4, "plru"),
            level("L2", 256 * kKiB, 8, 12, "plru"),
            level("L3", 6 * kMiB, 12, 34, "dip"),
        };
        m.memoryLatency = 230;
        machines.push_back(std::move(m));
    }
    {
        MachineSpec m;
        m.name = "skylake-drrip";
        m.description = "hypothetical Skylake-class part, DRRIP LLC";
        m.levels = {
            level("L1D", 32 * kKiB, 8, 4, "plru"),
            level("L2", 256 * kKiB, 4, 12, "plru"),
            level("L3", 8 * kMiB, 16, 40, "drrip"),
        };
        m.memoryLatency = 240;
        machines.push_back(std::move(m));
    }
    {
        MachineSpec m;
        m.name = "icelake-ship";
        m.description = "hypothetical Ice-Lake-class part, SHiP LLC";
        m.levels = {
            level("L1D", 48 * kKiB, 12, 5, "lru"),
            level("L2", 512 * kKiB, 8, 13, "plru"),
            level("L3", 8 * kMiB, 16, 40, "ship"),
        };
        m.memoryLatency = 240;
        machines.push_back(std::move(m));
    }
    {
        MachineSpec m;
        m.name = "gracemont-eaf";
        m.description = "hypothetical efficiency core, EAF L2";
        m.levels = {
            level("L1D", 32 * kKiB, 8, 3, "plru"),
            level("L2", 4 * kMiB, 16, 17, "eaf"),
        };
        m.memoryLatency = 210;
        machines.push_back(std::move(m));
    }

    for (const auto& m : machines)
        m.validate();
    return machines;
}

MachineSpec
catalogMachine(const std::string& name)
{
    for (auto& m : intelCatalog())
        if (m.name == name)
            return m;
    for (auto& m : modernCatalog())
        if (m.name == name)
            return m;
    throw UsageError("catalogMachine: unknown machine '" + name + "'");
}

std::vector<std::string>
catalogNames()
{
    std::vector<std::string> names;
    for (const auto& m : intelCatalog())
        names.push_back(m.name);
    return names;
}

std::vector<std::string>
modernCatalogNames()
{
    std::vector<std::string> names;
    for (const auto& m : modernCatalog())
        names.push_back(m.name);
    return names;
}

MachineSpec
reducedSpec(const MachineSpec& spec, unsigned maxSets)
{
    require(maxSets >= 2 && isPowerOfTwo(maxSets),
            "reducedSpec: maxSets must be a power of two >= 2");
    MachineSpec reduced = spec;
    // Shrink every level by one common power-of-two factor so the
    // strict inner-to-outer set-count ordering (which the probing
    // machinery relies on) is preserved.
    unsigned largest = 0;
    for (const auto& lvl : reduced.levels)
        largest = std::max(largest, lvl.geometry().numSets);
    const unsigned factor = largest > maxSets ? largest / maxSets : 1;
    for (auto& lvl : reduced.levels) {
        const auto geom = lvl.geometry();
        const unsigned sets = std::max(2u, geom.numSets / factor);
        lvl.capacityBytes =
            static_cast<uint64_t>(lvl.lineSize) * lvl.ways * sets;
        if (lvl.isAdaptive()) {
            lvl.duel.leaderSetsPerPolicy = std::max(
                1u, std::min(lvl.duel.leaderSetsPerPolicy, sets / 4));
        }
    }
    reduced.validate();
    return reduced;
}

} // namespace recap::hw
