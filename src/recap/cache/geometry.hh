/**
 * @file
 * Cache geometry: line size, set count, associativity, and the
 * address bit-slicing derived from them.
 */

#ifndef RECAP_CACHE_GEOMETRY_HH_
#define RECAP_CACHE_GEOMETRY_HH_

#include <cstdint>
#include <string>

namespace recap::cache
{

/** Physical byte address. */
using Addr = uint64_t;

/**
 * Geometry of one cache level. Line size and set count must be
 * powers of two; addresses are sliced as [tag | set index | offset].
 */
struct Geometry
{
    unsigned lineSize = 64; ///< bytes per line (power of two)
    unsigned numSets = 64;  ///< sets (power of two)
    unsigned ways = 8;      ///< associativity

    /** Validates the constraints above; throws UsageError. */
    void validate() const;

    /** Total capacity in bytes. */
    uint64_t sizeBytes() const;

    /** Line-granular block number of @p addr. */
    uint64_t blockNumber(Addr addr) const;

    /** Set index of @p addr. */
    unsigned setIndex(Addr addr) const;

    /** Tag of @p addr (block number with set bits stripped). */
    uint64_t tag(Addr addr) const;

    /** First byte address of the block containing @p addr. */
    Addr blockBase(Addr addr) const;

    /**
     * Builds a geometry from a capacity: numSets is derived as
     * capacity / (lineSize * ways). The division must be exact and
     * yield a power of two.
     */
    static Geometry fromCapacity(uint64_t capacityBytes, unsigned ways,
                                 unsigned lineSize = 64);

    /** "32 KiB, 8-way, 64 B lines" style description. */
    std::string describe() const;

    bool operator==(const Geometry& other) const = default;
};

} // namespace recap::cache

#endif // RECAP_CACHE_GEOMETRY_HH_
