#include "recap/cache/hierarchy.hh"

#include "recap/common/error.hh"

namespace recap::cache
{

const char*
inclusionModeName(InclusionMode mode)
{
    switch (mode) {
      case InclusionMode::kNonInclusive:
        return "non-inclusive";
      case InclusionMode::kInclusive:
        return "inclusive";
      case InclusionMode::kExclusive:
        return "exclusive";
    }
    return "?";
}

Hierarchy::Hierarchy(unsigned memoryLatency, InclusionMode mode)
    : memoryLatency_(memoryLatency), mode_(mode)
{
    require(memoryLatency >= 1,
            "Hierarchy: memory latency must be >= 1");
}

void
Hierarchy::addLevel(Cache cache, unsigned hitLatency)
{
    require(hitLatency >= 1, "Hierarchy: hit latency must be >= 1");
    if (!levels_.empty()) {
        require(hitLatency >= levels_.back().hitLatency,
                "Hierarchy: outer levels must not be faster");
        // Back-invalidation and block promotion move whole lines
        // between levels, which only makes sense when every level
        // agrees on what a line is.
        if (mode_ != InclusionMode::kNonInclusive) {
            require(cache.geometry().lineSize ==
                        levels_.front().cache.geometry().lineSize,
                    "Hierarchy: inclusive/exclusive modes need one "
                    "line size across levels");
        }
    }
    levels_.push_back(Level{std::move(cache), hitLatency});
}

unsigned
Hierarchy::access(Addr addr, bool write)
{
    require(!levels_.empty(), "Hierarchy::access: no levels");
    switch (mode_) {
      case InclusionMode::kInclusive:
        return accessInclusive(addr, write);
      case InclusionMode::kExclusive:
        return accessExclusive(addr, write);
      case InclusionMode::kNonInclusive:
        break;
    }
    for (unsigned i = 0; i < levels_.size(); ++i) {
        // A missing level fills itself as part of access(), which is
        // exactly the fill-on-miss behaviour we want.
        if (levels_[i].cache.access(addr, write))
            return i;
    }
    return depth();
}

unsigned
Hierarchy::accessInclusive(Addr addr, bool write)
{
    // Same outward fill-on-miss walk as the non-inclusive mode, but
    // every victim evicted at level i takes its copies in the inner
    // levels j < i with it, so outer levels stay supersets.
    for (unsigned i = 0; i < levels_.size(); ++i) {
        const AccessResult r =
            levels_[i].cache.accessDetailed(addr, write);
        if (r.evictedBlock) {
            for (unsigned j = 0; j < i; ++j)
                levels_[j].cache.backInvalidate(*r.evictedBlock);
        }
        if (r.hit)
            return i;
    }
    return depth();
}

unsigned
Hierarchy::accessExclusive(Addr addr, bool write)
{
    // Probe phase: walk outward without filling. Only the innermost
    // level keeps the line on a hit, so only it touches its policy
    // automatons; an outer level is about to surrender the line.
    unsigned hitLevel = depth();
    for (unsigned i = 0; i < levels_.size(); ++i) {
        if (levels_[i].cache.probeAccess(addr, write,
                                         /*touchOnHit=*/i == 0)) {
            hitLevel = i;
            break;
        }
    }
    if (hitLevel == 0)
        return 0;

    // Promotion: pull the line out of the level that held it (dirty
    // bit travels with it) and re-install it at L1; the displaced L1
    // victim cascades outward one level at a time.
    bool dirty = write;
    if (hitLevel < depth()) {
        const Cache::Extracted ex =
            levels_[hitLevel].cache.extract(addr);
        dirty = ex.dirty || write;
    }
    std::optional<Cache::Displaced> displaced =
        levels_.front().cache.insertLine(addr, dirty);
    for (unsigned j = 1; j < levels_.size() && displaced; ++j) {
        displaced = levels_[j].cache.insertLine(displaced->addr,
                                                displaced->dirty);
    }
    return hitLevel;
}

unsigned
Hierarchy::latencyOf(unsigned level) const
{
    require(level <= depth(), "Hierarchy::latencyOf: level range");
    if (level == depth())
        return memoryLatency_;
    return levels_[level].hitLatency;
}

unsigned
Hierarchy::accessLatency(Addr addr)
{
    return latencyOf(access(addr));
}

void
Hierarchy::flushAll()
{
    for (auto& lvl : levels_)
        lvl.cache.flush();
}

Level&
Hierarchy::level(unsigned idx)
{
    require(idx < depth(), "Hierarchy::level: index range");
    return levels_[idx];
}

const Level&
Hierarchy::level(unsigned idx) const
{
    require(idx < depth(), "Hierarchy::level: index range");
    return levels_[idx];
}

void
Hierarchy::resetStats()
{
    for (auto& lvl : levels_)
        lvl.cache.resetStats();
}

} // namespace recap::cache
