#include "recap/cache/hierarchy.hh"

#include "recap/common/error.hh"

namespace recap::cache
{

Hierarchy::Hierarchy(unsigned memoryLatency)
    : memoryLatency_(memoryLatency)
{
    require(memoryLatency >= 1,
            "Hierarchy: memory latency must be >= 1");
}

void
Hierarchy::addLevel(Cache cache, unsigned hitLatency)
{
    require(hitLatency >= 1, "Hierarchy: hit latency must be >= 1");
    if (!levels_.empty()) {
        require(hitLatency >= levels_.back().hitLatency,
                "Hierarchy: outer levels must not be faster");
    }
    levels_.push_back(Level{std::move(cache), hitLatency});
}

unsigned
Hierarchy::access(Addr addr, bool write)
{
    require(!levels_.empty(), "Hierarchy::access: no levels");
    for (unsigned i = 0; i < levels_.size(); ++i) {
        // A missing level fills itself as part of access(), which is
        // exactly the fill-on-miss behaviour we want.
        if (levels_[i].cache.access(addr, write))
            return i;
    }
    return depth();
}

unsigned
Hierarchy::latencyOf(unsigned level) const
{
    require(level <= depth(), "Hierarchy::latencyOf: level range");
    if (level == depth())
        return memoryLatency_;
    return levels_[level].hitLatency;
}

unsigned
Hierarchy::accessLatency(Addr addr)
{
    return latencyOf(access(addr));
}

void
Hierarchy::flushAll()
{
    for (auto& lvl : levels_)
        lvl.cache.flush();
}

Level&
Hierarchy::level(unsigned idx)
{
    require(idx < depth(), "Hierarchy::level: index range");
    return levels_[idx];
}

const Level&
Hierarchy::level(unsigned idx) const
{
    require(idx < depth(), "Hierarchy::level: index range");
    return levels_[idx];
}

void
Hierarchy::resetStats()
{
    for (auto& lvl : levels_)
        lvl.cache.resetStats();
}

} // namespace recap::cache
