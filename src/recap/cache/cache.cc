#include "recap/cache/cache.hh"

#include <algorithm>

#include "recap/common/bitops.hh"
#include "recap/common/error.hh"
#include "recap/policy/factory.hh"

namespace recap::cache
{

Cache::Cache(const Geometry& geom, const std::string& policySpec,
             std::string name, uint64_t seed)
    : geom_(geom), name_(std::move(name)), specA_(policySpec)
{
    geom_.validate();
    sets_.reserve(geom_.numSets);
    for (unsigned s = 0; s < geom_.numSets; ++s) {
        Set set;
        set.tags.assign(geom_.ways, 0);
        set.valid.assign(geom_.ways, false);
        set.dirty.assign(geom_.ways, false);
        set.policyA = policy::makePolicy(policySpec, geom_.ways,
                                         seed + s);
        sets_.push_back(std::move(set));
    }
    metaA_ = sets_[0].policyA->usesMeta();
}

Cache::Cache(const Geometry& geom, const std::string& specA,
             const std::string& specB, const DuelingConfig& duel,
             std::string name, uint64_t seed)
    : geom_(geom), name_(std::move(name)), specA_(specA), specB_(specB),
      adaptive_(true), duel_(duel)
{
    geom_.validate();
    require(duel_.pselBits >= 1 && duel_.pselBits <= 16,
            "Cache: PSEL width must be in [1,16]");
    require(duel_.leaderSetsPerPolicy >= 1,
            "Cache: need at least one leader set per policy");
    require(geom_.numSets >= 2 * duel_.leaderSetsPerPolicy,
            "Cache: too few sets for the requested leader count");
    pselMax_ = (1u << duel_.pselBits) - 1;
    psel_ = pselMidpoint();
    sets_.reserve(geom_.numSets);
    for (unsigned s = 0; s < geom_.numSets; ++s) {
        Set set;
        set.tags.assign(geom_.ways, 0);
        set.valid.assign(geom_.ways, false);
        set.dirty.assign(geom_.ways, false);
        set.policyA = policy::makePolicy(specA, geom_.ways, seed + s);
        set.policyB = policy::makePolicy(specB, geom_.ways,
                                         seed + geom_.numSets + s);
        sets_.push_back(std::move(set));
    }
    metaA_ = sets_[0].policyA->usesMeta();
    metaB_ = sets_[0].policyB->usesMeta();
}

bool
Cache::access(Addr addr, bool write)
{
    return accessDetailed(addr, write).hit;
}

AccessResult
Cache::accessDetailed(Addr addr, bool write)
{
    policy::AccessMeta meta;
    meta.block = addr / geom_.lineSize;
    meta.hasBlock = true;
    return accessSet(geom_.setIndex(addr), geom_.tag(addr), write,
                     meta);
}

bool
Cache::accessWithPc(Addr addr, uint64_t pc, bool write)
{
    return accessDetailedWithPc(addr, pc, write).hit;
}

AccessResult
Cache::accessDetailedWithPc(Addr addr, uint64_t pc, bool write)
{
    policy::AccessMeta meta;
    meta.block = addr / geom_.lineSize;
    meta.hasBlock = true;
    meta.pc = pc;
    meta.hasPc = true;
    return accessSet(geom_.setIndex(addr), geom_.tag(addr), write,
                     meta);
}

bool
Cache::probeAccess(Addr addr, bool write, bool touchOnHit)
{
    const unsigned set = geom_.setIndex(addr);
    const uint64_t tag = geom_.tag(addr);
    Set& s = sets_[set];
    ++stats_.accesses;
    if (write)
        ++stats_.writes;

    policy::AccessMeta meta;
    meta.block = addr / geom_.lineSize;
    meta.hasBlock = true;
    if (metaA_)
        s.policyA->beginAccess(meta);
    if (metaB_ && s.policyB)
        s.policyB->beginAccess(meta);

    for (unsigned w = 0; w < geom_.ways; ++w) {
        if (s.valid[w] && s.tags[w] == tag) {
            ++stats_.hits;
            if (touchOnHit) {
                s.policyA->touch(w);
                if (s.policyB)
                    s.policyB->touch(w);
                if (write)
                    s.dirty[w] = true;
            }
            return true;
        }
    }
    ++stats_.misses;
    if (adaptive_)
        trainPsel(setRole(set));
    return false;
}

Cache::Extracted
Cache::extract(Addr addr)
{
    const unsigned set = geom_.setIndex(addr);
    const uint64_t tag = geom_.tag(addr);
    Set& s = sets_[set];
    for (unsigned w = 0; w < geom_.ways; ++w) {
        if (s.valid[w] && s.tags[w] == tag) {
            Extracted out{true, static_cast<bool>(s.dirty[w])};
            s.valid[w] = false;
            s.dirty[w] = false;
            return out;
        }
    }
    return {};
}

std::optional<Cache::Displaced>
Cache::insertLine(Addr addr, bool dirty)
{
    const unsigned set = geom_.setIndex(addr);
    const uint64_t tag = geom_.tag(addr);
    Set& s = sets_[set];

    policy::AccessMeta meta;
    meta.block = addr / geom_.lineSize;
    meta.hasBlock = true;
    if (metaA_)
        s.policyA->beginAccess(meta);
    if (metaB_ && s.policyB)
        s.policyB->beginAccess(meta);

    std::optional<Displaced> displaced;
    policy::Way way = geom_.ways;
    for (unsigned w = 0; w < geom_.ways; ++w) {
        if (!s.valid[w]) {
            way = w;
            break;
        }
    }
    if (way == geom_.ways) {
        way = decider(set).victim();
        ++stats_.evictions;
        displaced = Displaced{
            ((s.tags[way] << log2Floor(geom_.numSets) | set)
             << log2Floor(geom_.lineSize)),
            static_cast<bool>(s.dirty[way])};
        if (s.dirty[way])
            ++stats_.writebacks;
    }
    s.tags[way] = tag;
    s.valid[way] = true;
    s.dirty[way] = dirty;
    s.policyA->fill(way);
    if (s.policyB)
        s.policyB->fill(way);
    return displaced;
}

void
Cache::backInvalidate(Addr addr)
{
    const unsigned set = geom_.setIndex(addr);
    const uint64_t tag = geom_.tag(addr);
    Set& s = sets_[set];
    for (unsigned w = 0; w < geom_.ways; ++w) {
        if (s.valid[w] && s.tags[w] == tag) {
            if (s.dirty[w])
                ++stats_.writebacks;
            s.valid[w] = false;
            s.dirty[w] = false;
            ++stats_.backInvalidations;
            return;
        }
    }
}

bool
Cache::isDirty(Addr addr) const
{
    const unsigned set = geom_.setIndex(addr);
    const uint64_t tag = geom_.tag(addr);
    const Set& s = sets_[set];
    for (unsigned w = 0; w < geom_.ways; ++w)
        if (s.valid[w] && s.tags[w] == tag)
            return s.dirty[w];
    return false;
}

bool
Cache::probe(Addr addr) const
{
    const unsigned set = geom_.setIndex(addr);
    const uint64_t tag = geom_.tag(addr);
    const Set& s = sets_[set];
    for (unsigned w = 0; w < geom_.ways; ++w)
        if (s.valid[w] && s.tags[w] == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto& set : sets_) {
        for (unsigned w = 0; w < geom_.ways; ++w)
            if (set.valid[w] && set.dirty[w])
                ++stats_.writebacks;
        std::fill(set.valid.begin(), set.valid.end(), false);
        std::fill(set.dirty.begin(), set.dirty.end(), false);
        set.policyA->reset();
        if (set.policyB)
            set.policyB->reset();
    }
    // Note: PSEL is deliberately NOT reset. It models a global
    // selector register, which an invalidation instruction leaves
    // alone on real hardware; inference relies on training it across
    // flushes.
}

void
Cache::invalidate(Addr addr)
{
    const unsigned set = geom_.setIndex(addr);
    const uint64_t tag = geom_.tag(addr);
    Set& s = sets_[set];
    for (unsigned w = 0; w < geom_.ways; ++w) {
        if (s.valid[w] && s.tags[w] == tag) {
            if (s.dirty[w])
                ++stats_.writebacks;
            s.valid[w] = false;
            s.dirty[w] = false;
            return;
        }
    }
}

unsigned
Cache::psel() const
{
    require(adaptive_, "Cache::psel: cache is not adaptive");
    return psel_;
}

unsigned
Cache::pselMidpoint() const
{
    require(adaptive_, "Cache::pselMidpoint: cache is not adaptive");
    return (pselMax_ + 1) / 2;
}

Cache::SetRole
Cache::setRole(unsigned set) const
{
    require(set < geom_.numSets, "Cache::setRole: set out of range");
    if (!adaptive_)
        return SetRole::kFollower;
    // Leaders are spread evenly: each interval of sets contributes
    // one A-leader at its start and one B-leader at its midpoint.
    const unsigned interval = geom_.numSets / duel_.leaderSetsPerPolicy;
    if (set % interval == 0)
        return SetRole::kLeaderA;
    if (set % interval == interval / 2)
        return SetRole::kLeaderB;
    return SetRole::kFollower;
}

Cache::SetImage
Cache::setImage(unsigned set) const
{
    require(set < geom_.numSets, "Cache::setImage: set out of range");
    const Set& s = sets_[set];
    SetImage image;
    image.tags.assign(geom_.ways, 0);
    image.valid.assign(geom_.ways, false);
    for (unsigned w = 0; w < geom_.ways; ++w) {
        if (s.valid[w]) {
            image.tags[w] = s.tags[w];
            image.valid[w] = true;
        }
    }
    image.policyKey = s.policyA->stateKey();
    return image;
}

const policy::ReplacementPolicy&
Cache::decider(unsigned set) const
{
    const Set& s = sets_[set];
    if (!adaptive_)
        return *s.policyA;
    switch (setRole(set)) {
      case SetRole::kLeaderA:
        return *s.policyA;
      case SetRole::kLeaderB:
        return *s.policyB;
      case SetRole::kFollower:
        break;
    }
    return psel_ >= pselMidpoint() ? *s.policyB : *s.policyA;
}

AccessResult
Cache::accessSet(unsigned set, uint64_t tag, bool write,
                 const policy::AccessMeta& meta)
{
    Set& s = sets_[set];
    ++stats_.accesses;
    if (write)
        ++stats_.writes;

    if (metaA_)
        s.policyA->beginAccess(meta);
    if (metaB_ && s.policyB)
        s.policyB->beginAccess(meta);

    AccessResult result;
    result.setIndex = set;

    // Hit path: update every automaton so their state stays in sync
    // with the true contents.
    for (unsigned w = 0; w < geom_.ways; ++w) {
        if (s.valid[w] && s.tags[w] == tag) {
            ++stats_.hits;
            s.policyA->touch(w);
            if (s.policyB)
                s.policyB->touch(w);
            if (write)
                s.dirty[w] = true;
            result.hit = true;
            result.way = w;
            return result;
        }
    }

    // Miss path.
    ++stats_.misses;
    if (adaptive_)
        trainPsel(setRole(set));

    policy::Way way = geom_.ways;
    for (unsigned w = 0; w < geom_.ways; ++w) {
        if (!s.valid[w]) {
            way = w;
            break;
        }
    }
    if (way == geom_.ways) {
        way = decider(set).victim();
        ++stats_.evictions;
        result.evictedBlock =
            ((s.tags[way] << log2Floor(geom_.numSets) | set)
             << log2Floor(geom_.lineSize));
        if (s.dirty[way]) {
            ++stats_.writebacks;
            result.writeback = true;
        }
    }

    s.tags[way] = tag;
    s.valid[way] = true;
    s.dirty[way] = write; // write-allocate
    s.policyA->fill(way);
    if (s.policyB)
        s.policyB->fill(way);

    result.way = way;
    return result;
}

void
Cache::trainPsel(SetRole role)
{
    // A miss in an A-leader is evidence for B (and vice versa).
    if (role == SetRole::kLeaderA && psel_ < pselMax_)
        ++psel_;
    else if (role == SetRole::kLeaderB && psel_ > 0)
        --psel_;
}

} // namespace recap::cache
