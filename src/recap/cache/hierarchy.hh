/**
 * @file
 * Multi-level cache hierarchy: an ordered stack of Cache levels plus
 * a memory latency, the structure the simulated machines are made of.
 */

#ifndef RECAP_CACHE_HIERARCHY_HH_
#define RECAP_CACHE_HIERARCHY_HH_

#include <string>
#include <vector>

#include "recap/cache/cache.hh"

namespace recap::cache
{

/** One level of a hierarchy: the cache plus its hit latency. */
struct Level
{
    Cache cache;
    unsigned hitLatency; ///< cycles for a hit in this level
};

/**
 * A non-inclusive, fill-on-miss hierarchy.
 *
 * An access walks the levels from L1 outward until it hits (or
 * reaches memory); every level it missed in fills the line, so upper
 * levels always end up holding recently touched lines, as on the
 * modelled machines.
 */
class Hierarchy
{
  public:
    /**
     * @param memoryLatency Cycles for an access that misses all
     *                      levels.
     */
    explicit Hierarchy(unsigned memoryLatency = 200);

    /** Appends a level (L1 first). */
    void addLevel(Cache cache, unsigned hitLatency);

    /** Number of cache levels. */
    unsigned depth() const { return static_cast<unsigned>(
        levels_.size()); }

    /**
     * Performs one access; stores mark lines dirty at every level
     * they fill (write-back, write-allocate).
     * @return Index of the level that hit, or depth() for memory.
     */
    unsigned access(Addr addr, bool write = false);

    /** Cycles the last access pattern would take for a hit at level
     *  @p level (depth() = memory). */
    unsigned latencyOf(unsigned level) const;

    /** Access + latency in one call. */
    unsigned accessLatency(Addr addr);

    /** Flushes every level (the machine's wbinvd). */
    void flushAll();

    /** Mutable level access for configuration and inspection. */
    Level& level(unsigned idx);
    const Level& level(unsigned idx) const;

    unsigned memoryLatency() const { return memoryLatency_; }

    /** Clears the statistics of every level. */
    void resetStats();

  private:
    std::vector<Level> levels_;
    unsigned memoryLatency_;
};

} // namespace recap::cache

#endif // RECAP_CACHE_HIERARCHY_HH_
