/**
 * @file
 * Multi-level cache hierarchy: an ordered stack of Cache levels plus
 * a memory latency, the structure the simulated machines are made of.
 */

#ifndef RECAP_CACHE_HIERARCHY_HH_
#define RECAP_CACHE_HIERARCHY_HH_

#include <string>
#include <vector>

#include "recap/cache/cache.hh"

namespace recap::cache
{

/** One level of a hierarchy: the cache plus its hit latency. */
struct Level
{
    Cache cache;
    unsigned hitLatency; ///< cycles for a hit in this level
};

/**
 * Cross-level content discipline of a hierarchy.
 *
 * The exact semantics each mode implements (the reference the
 * compiled hier:: subsystem is pinned bit-identical against):
 *
 *  - kNonInclusive ("mostly inclusive", the modelled Intel parts'
 *    behaviour and the historical default): an access walks the
 *    levels from L1 outward until it hits, and every missed level
 *    fills the line independently. Evictions at one level leave the
 *    other levels alone.
 *  - kInclusive: like kNonInclusive, plus back-invalidation — when
 *    level i evicts a victim line, every inner level j < i
 *    invalidates its copy of that line (counted in the inner level's
 *    LevelStats::backInvalidations; a dirty copy counts a writeback),
 *    so outer levels remain a superset of inner ones.
 *  - kExclusive: a line lives in at most one level. The walk probes
 *    levels outward without filling; a hit at an outer level removes
 *    the line there (no policy input — "invalidate" is outside the
 *    touch/fill alphabet) and re-installs it at L1, and the displaced
 *    L1 victim cascades outward level by level (each displacement
 *    fills the next level's lowest invalid way or evicts its
 *    decider's victim). Dirty bits travel with blocks; each dirty
 *    displacement counts a writeback at the displacing level
 *    (modelling its victim-path traffic).
 */
enum class InclusionMode
{
    kNonInclusive,
    kInclusive,
    kExclusive,
};

/** Canonical name: "non-inclusive", "inclusive", "exclusive". */
const char* inclusionModeName(InclusionMode mode);

/**
 * A multi-level, fill-on-miss hierarchy with a selectable inclusion
 * discipline (see InclusionMode; kNonInclusive reproduces the
 * historical behaviour bit for bit).
 */
class Hierarchy
{
  public:
    /**
     * @param memoryLatency Cycles for an access that misses all
     *                      levels.
     * @param mode          Cross-level content discipline. Inclusive
     *                      and exclusive modes require every level to
     *                      share one line size (checked by addLevel).
     */
    explicit Hierarchy(unsigned memoryLatency = 200,
                       InclusionMode mode =
                           InclusionMode::kNonInclusive);

    /** Appends a level (L1 first). */
    void addLevel(Cache cache, unsigned hitLatency);

    /** Number of cache levels. */
    unsigned depth() const { return static_cast<unsigned>(
        levels_.size()); }

    /**
     * Performs one access; stores mark lines dirty at every level
     * they fill (write-back, write-allocate).
     * @return Index of the level that hit, or depth() for memory.
     */
    unsigned access(Addr addr, bool write = false);

    /** Cycles the last access pattern would take for a hit at level
     *  @p level (depth() = memory). */
    unsigned latencyOf(unsigned level) const;

    /** Access + latency in one call. */
    unsigned accessLatency(Addr addr);

    /** Flushes every level (the machine's wbinvd). */
    void flushAll();

    /** Mutable level access for configuration and inspection. */
    Level& level(unsigned idx);
    const Level& level(unsigned idx) const;

    unsigned memoryLatency() const { return memoryLatency_; }

    /** Cross-level content discipline this hierarchy maintains. */
    InclusionMode inclusionMode() const { return mode_; }

    /** Clears the statistics of every level. */
    void resetStats();

  private:
    unsigned accessInclusive(Addr addr, bool write);
    unsigned accessExclusive(Addr addr, bool write);

    std::vector<Level> levels_;
    unsigned memoryLatency_;
    InclusionMode mode_;
};

} // namespace recap::cache

#endif // RECAP_CACHE_HIERARCHY_HH_
