/**
 * @file
 * Set-associative single-level cache model, including the set-dueling
 * adaptive mode used by the Ivy-Bridge-style last-level cache.
 */

#ifndef RECAP_CACHE_CACHE_HH_
#define RECAP_CACHE_CACHE_HH_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "recap/cache/geometry.hh"
#include "recap/policy/policy.hh"

namespace recap::cache
{

/** Counters for one cache level. */
struct LevelStats
{
    uint64_t accesses = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;  ///< misses that displaced a valid line
    uint64_t writes = 0;     ///< accesses that were stores
    uint64_t writebacks = 0; ///< dirty lines displaced or flushed

    /** Lines invalidated to restore inclusion (inclusive mode). */
    uint64_t backInvalidations = 0;

    /** misses / accesses; 0 when no accesses. */
    double missRatio() const
    {
        return accesses ? static_cast<double>(misses) /
                          static_cast<double>(accesses) : 0.0;
    }

    void reset() { *this = LevelStats{}; }
};

/** Set-dueling configuration for adaptive caches (DIP-style). */
struct DuelingConfig
{
    unsigned leaderSetsPerPolicy = 32; ///< leaders dedicated to each
    unsigned pselBits = 10;            ///< saturating-counter width
};

/** Result of one cache access, for callers that need details. */
struct AccessResult
{
    bool hit = false;
    unsigned setIndex = 0;
    policy::Way way = 0;               ///< way hit or filled
    std::optional<Addr> evictedBlock;  ///< base addr of displaced line
    bool writeback = false;            ///< displaced line was dirty
};

/**
 * A single cache level with one replacement-policy automaton per set.
 *
 * In adaptive mode every set carries *two* policy automatons (both
 * observe every access so their state always reflects the true
 * contents); leader sets always decide victims with their dedicated
 * policy, and follower sets follow the PSEL counter, which is trained
 * by misses in leader sets.
 */
class Cache
{
  public:
    /**
     * Static-policy cache.
     *
     * @param geom       Geometry (validated).
     * @param policySpec Policy spec per policy::makePolicy().
     * @param name       Display name, e.g. "L1".
     * @param seed       Seed for stochastic policies; each set derives
     *                   its own stream from it.
     */
    Cache(const Geometry& geom, const std::string& policySpec,
          std::string name = "cache", uint64_t seed = 1);

    /**
     * Adaptive (set-dueling) cache choosing between two policies.
     *
     * @param specA First constituent policy (PSEL low half).
     * @param specB Second constituent policy (PSEL high half).
     */
    Cache(const Geometry& geom, const std::string& specA,
          const std::string& specB, const DuelingConfig& duel,
          std::string name = "cache", uint64_t seed = 1);

    Cache(Cache&&) noexcept = default;
    Cache& operator=(Cache&&) noexcept = default;

    /**
     * Performs one access; fills on miss. Stores mark the line dirty
     * (write-back, write-allocate). @return true on hit.
     */
    bool access(Addr addr, bool write = false);

    /** Like access(), but reports details. */
    AccessResult accessDetailed(Addr addr, bool write = false);

    /**
     * Like access(), annotated with the program counter of the
     * accessing instruction for PC-indexed predictor policies
     * (SHiP). Policies that ignore metadata behave exactly as under
     * access().
     */
    bool accessWithPc(Addr addr, uint64_t pc, bool write = false);

    /** Like accessWithPc(), but reports details. */
    AccessResult accessDetailedWithPc(Addr addr, uint64_t pc,
                                      bool write = false);

    /**
     * Observing probe for the exclusive-hierarchy walk: counts the
     * access (and hit/miss, PSEL training) like access(), but never
     * fills on a miss. On a hit the policy automatons are touched
     * only when @p touchOnHit is set (the innermost level keeps the
     * line, an outer level is about to surrender it to extract()).
     * @return true on hit.
     */
    bool probeAccess(Addr addr, bool write, bool touchOnHit);

    /** Result of extract(): was the line present, and was it dirty? */
    struct Extracted
    {
        bool present = false;
        bool dirty = false;
    };

    /**
     * Removes the line containing @p addr without statistics, policy
     * input, or a writeback — the dirty bit travels with the block
     * (exclusive-hierarchy promotion). The policy automatons are
     * deliberately not notified: "invalidate" is outside the
     * touch/fill input alphabet, matching invalidate().
     */
    Extracted extract(Addr addr);

    /** A line displaced by insertLine(), to cascade outward. */
    struct Displaced
    {
        Addr addr = 0;  ///< base address of the displaced line
        bool dirty = false;
    };

    /**
     * Installs the line containing @p addr without counting an
     * access (victim-cascade insertion in exclusive hierarchies):
     * fills the lowest invalid way, else evicts the decider's victim
     * (counting the eviction, and a writeback when the victim was
     * dirty). @return the displaced line, if any.
     */
    std::optional<Displaced> insertLine(Addr addr, bool dirty);

    /**
     * invalidate() for inclusion maintenance: additionally counts
     * stats().backInvalidations when a line was actually removed.
     */
    void backInvalidate(Addr addr);

    /** True iff the line containing @p addr is resident and dirty. */
    bool isDirty(Addr addr) const;

    /** True iff the line containing @p addr is resident (no update). */
    bool probe(Addr addr) const;

    /** Invalidates all lines and resets every policy automaton. */
    void flush();

    /** Invalidates the line containing @p addr, if present. */
    void invalidate(Addr addr);

    const Geometry& geometry() const { return geom_; }
    const std::string& name() const { return name_; }
    const LevelStats& stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    /** True iff this cache was built in set-dueling mode. */
    bool isAdaptive() const { return adaptive_; }

    /** Current PSEL value (adaptive mode only). */
    unsigned psel() const;

    /** PSEL midpoint; PSEL >= midpoint selects policy B. */
    unsigned pselMidpoint() const;

    /** Role of a set in the duel. */
    enum class SetRole { kFollower, kLeaderA, kLeaderB };

    /** Role of set @p set (kFollower for static caches). */
    SetRole setRole(unsigned set) const;

    /** Policy spec(s) this cache was built with. */
    const std::string& policySpec() const { return specA_; }
    const std::string& policySpecB() const { return specB_; }

    /** Debug snapshot of one set, for differential tests. */
    struct SetImage
    {
        std::vector<uint64_t> tags;  ///< zeroed where invalid
        std::vector<bool> valid;
        std::string policyKey;       ///< policy-A stateKey()

        bool operator==(const SetImage&) const = default;
    };

    /** Snapshot of set @p set. */
    SetImage setImage(unsigned set) const;

  private:
    struct Set
    {
        std::vector<uint64_t> tags;
        std::vector<bool> valid;
        std::vector<bool> dirty;
        policy::PolicyPtr policyA;
        policy::PolicyPtr policyB; ///< null for static caches
    };

    /** Chooses the automaton that decides victims for @p set. */
    const policy::ReplacementPolicy& decider(unsigned set) const;

    /** Applies one access to set @p set; shared implementation. */
    AccessResult accessSet(unsigned set, uint64_t tag, bool write,
                           const policy::AccessMeta& meta);

    /** Nudges PSEL after a miss in a leader set. */
    void trainPsel(SetRole role);

    Geometry geom_;
    std::string name_;
    std::string specA_;
    std::string specB_;
    bool adaptive_ = false;
    bool metaA_ = false; ///< policy A consumes AccessMeta
    bool metaB_ = false; ///< policy B consumes AccessMeta
    DuelingConfig duel_;
    unsigned psel_ = 0;
    unsigned pselMax_ = 0;
    std::vector<Set> sets_;
    LevelStats stats_;
};

} // namespace recap::cache

#endif // RECAP_CACHE_CACHE_HH_
