#include "recap/cache/geometry.hh"

#include "recap/common/bitops.hh"
#include "recap/common/error.hh"
#include "recap/common/table.hh"

namespace recap::cache
{

void
Geometry::validate() const
{
    require(lineSize >= 1 && isPowerOfTwo(lineSize),
            "Geometry: line size must be a power of two");
    require(numSets >= 1 && isPowerOfTwo(numSets),
            "Geometry: set count must be a power of two");
    require(ways >= 1, "Geometry: associativity must be >= 1");
}

uint64_t
Geometry::sizeBytes() const
{
    return static_cast<uint64_t>(lineSize) * numSets * ways;
}

uint64_t
Geometry::blockNumber(Addr addr) const
{
    return addr >> log2Floor(lineSize);
}

unsigned
Geometry::setIndex(Addr addr) const
{
    return static_cast<unsigned>(blockNumber(addr) & (numSets - 1));
}

uint64_t
Geometry::tag(Addr addr) const
{
    return blockNumber(addr) >> log2Floor(numSets);
}

Addr
Geometry::blockBase(Addr addr) const
{
    return alignDown(addr, lineSize);
}

Geometry
Geometry::fromCapacity(uint64_t capacityBytes, unsigned ways,
                       unsigned lineSize)
{
    require(ways >= 1, "Geometry::fromCapacity: ways must be >= 1");
    require(lineSize >= 1 && isPowerOfTwo(lineSize),
            "Geometry::fromCapacity: line size must be a power of two");
    const uint64_t way_bytes = static_cast<uint64_t>(lineSize) * ways;
    require(way_bytes > 0 && capacityBytes % way_bytes == 0,
            "Geometry::fromCapacity: capacity not divisible by "
            "ways * lineSize");
    const uint64_t sets = capacityBytes / way_bytes;
    require(isPowerOfTwo(sets),
            "Geometry::fromCapacity: derived set count is not a power "
            "of two");
    Geometry g;
    g.lineSize = lineSize;
    g.numSets = static_cast<unsigned>(sets);
    g.ways = ways;
    g.validate();
    return g;
}

std::string
Geometry::describe() const
{
    return formatBytes(sizeBytes()) + ", " + std::to_string(ways) +
           "-way, " + std::to_string(lineSize) + " B lines";
}

} // namespace recap::cache
