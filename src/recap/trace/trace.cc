#include "recap/trace/trace.hh"

#include <unordered_set>

#include "recap/common/bitops.hh"
#include "recap/common/rng.hh"

namespace recap::trace
{

size_t
distinctBlocks(const Trace& t, unsigned lineSize)
{
    std::unordered_set<uint64_t> blocks;
    for (cache::Addr a : t)
        blocks.insert(a / lineSize);
    return blocks.size();
}

Trace
addressesOf(const PcTrace& t)
{
    Trace out;
    out.reserve(t.size());
    for (const PcAccess& a : t)
        out.push_back(a.addr);
    return out;
}

PcTrace
withRoundRobinPcs(const Trace& t, unsigned numPcs, uint64_t pcBase)
{
    PcTrace out;
    out.reserve(t.size());
    uint64_t i = 0;
    for (cache::Addr a : t) {
        // Synthetic 4-byte instructions, one per PC slot.
        out.push_back({a, pcBase + 4 * (i % (numPcs ? numPcs : 1))});
        ++i;
    }
    return out;
}

RefTrace
withWrites(const Trace& t, double writeFraction, uint64_t seed)
{
    Rng rng(seed);
    RefTrace refs;
    refs.reserve(t.size());
    for (cache::Addr a : t)
        refs.push_back({a, rng.nextBool(writeFraction)});
    return refs;
}

Trace
concatTraces(const std::vector<Trace>& phases)
{
    Trace out;
    size_t total = 0;
    for (const auto& p : phases)
        total += p.size();
    out.reserve(total);
    for (const auto& p : phases)
        out.insert(out.end(), p.begin(), p.end());
    return out;
}

Trace
interleaveTraces(const std::vector<Trace>& streams, size_t chunk)
{
    if (chunk == 0)
        chunk = 1;
    Trace out;
    size_t total = 0;
    for (const auto& s : streams)
        total += s.size();
    out.reserve(total);

    std::vector<size_t> cursor(streams.size(), 0);
    bool any = true;
    while (any) {
        any = false;
        for (size_t i = 0; i < streams.size(); ++i) {
            const size_t end = std::min(cursor[i] + chunk,
                                        streams[i].size());
            for (; cursor[i] < end; ++cursor[i]) {
                out.push_back(streams[i][cursor[i]]);
                any = true;
            }
        }
    }
    return out;
}

} // namespace recap::trace
