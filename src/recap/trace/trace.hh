/**
 * @file
 * Address-trace representation used by the evaluation harness.
 */

#ifndef RECAP_TRACE_TRACE_HH_
#define RECAP_TRACE_TRACE_HH_

#include <string>
#include <vector>

#include "recap/cache/geometry.hh"

namespace recap::trace
{

/** A load-address trace. */
using Trace = std::vector<cache::Addr>;

/** A memory reference with a read/write direction. */
struct MemRef
{
    cache::Addr addr = 0;
    bool write = false;

    bool operator==(const MemRef& other) const = default;
};

/** A reference trace (loads and stores). */
using RefTrace = std::vector<MemRef>;

/**
 * A memory access annotated with the program counter of the
 * instruction that issued it, for PC-indexed predictor policies
 * (SHiP).
 */
struct PcAccess
{
    cache::Addr addr = 0;
    uint64_t pc = 0;

    bool operator==(const PcAccess& other) const = default;
};

/** A PC-annotated load trace. */
using PcTrace = std::vector<PcAccess>;

/** Projects a PC-annotated trace onto its address sequence. */
Trace addressesOf(const PcTrace& t);

/**
 * Annotates @p t with program counters cycling round-robin through
 * @p numPcs synthetic instruction addresses starting at @p pcBase —
 * the simplest PC model, useful for exercising PC plumbing with a
 * fixed signature mix.
 */
PcTrace withRoundRobinPcs(const Trace& t, unsigned numPcs,
                          uint64_t pcBase = 0x400000);

/**
 * Marks a deterministic pseudo-random fraction of @p t as stores.
 *
 * @param writeFraction Probability that a reference is a store,
 *                      clamped to [0, 1].
 */
RefTrace withWrites(const Trace& t, double writeFraction,
                    uint64_t seed = 1);

/** A named workload: a trace plus presentation metadata. */
struct Workload
{
    std::string name;
    std::string description;
    Trace trace;
};

/** Distinct line-granular blocks touched by @p t. */
size_t distinctBlocks(const Trace& t, unsigned lineSize);

/** Concatenates traces (phase composition). */
Trace concatTraces(const std::vector<Trace>& phases);

/**
 * Round-robin interleaving of traces in chunks of @p chunk accesses
 * (a simple model of multiprogrammed co-running workloads sharing a
 * cache). Shorter traces drop out as they are exhausted.
 */
Trace interleaveTraces(const std::vector<Trace>& streams,
                       size_t chunk = 1);

} // namespace recap::trace

#endif // RECAP_TRACE_TRACE_HH_
