/**
 * @file
 * Synthetic workload generators.
 *
 * These stand in for the SPEC traces of the paper's evaluation (see
 * DESIGN.md, substitution table). Each generator controls a specific
 * aspect of locality structure — streaming, blocked reuse, skewed
 * popularity, dependent chains, thrashing, phase changes — so that
 * the qualitative ordering of replacement policies is meaningful.
 */

#ifndef RECAP_TRACE_GENERATORS_HH_
#define RECAP_TRACE_GENERATORS_HH_

#include <cstdint>

#include "recap/trace/trace.hh"

namespace recap::trace
{

/** Sequential read of @p footprintBytes, repeated @p passes times. */
Trace sequentialScan(uint64_t footprintBytes, unsigned passes,
                     unsigned step = 64, cache::Addr base = 1 << 20);

/** Strided read covering @p footprintBytes with stride @p stride. */
Trace stridedScan(uint64_t footprintBytes, unsigned stride,
                  unsigned passes, cache::Addr base = 1 << 20);

/** Uniform random lines within @p footprintBytes. */
Trace randomUniform(uint64_t footprintBytes, size_t count,
                    uint64_t seed, cache::Addr base = 1 << 20);

/**
 * Zipf-popularity random lines: line i drawn with probability
 * proportional to 1/(i+1)^alpha (database/key-value style skew).
 */
Trace zipf(uint64_t footprintBytes, size_t count, double alpha,
           uint64_t seed, cache::Addr base = 1 << 20);

/**
 * Random-cycle pointer chase over @p nodes nodes of @p nodeBytes
 * each: a dependent chain with no spatial locality.
 */
Trace pointerChase(size_t nodes, size_t count, uint64_t seed,
                   unsigned nodeBytes = 64, cache::Addr base = 1 << 20);

/**
 * Loop-blocked matrix-multiply-like pattern: C[i][j] += A[i][k] *
 * B[k][j] with square blocking factor @p blockDim over double
 * matrices of dimension @p dim.
 */
Trace blockedMatmul(unsigned dim, unsigned blockDim,
                    cache::Addr base = 1 << 20);

/**
 * Stack-distance-model trace: each access reuses the @p d-th most
 * recently used line, where d is sampled from a geometric
 * distribution with mean @p meanDistance (d past the current stack
 * depth allocates a new line). Mimics the reuse profile of
 * integer-code footprints.
 */
Trace stackDistanceModel(size_t count, double meanDistance,
                         uint64_t seed, cache::Addr base = 1 << 20);

/**
 * A reuse/thrash phase mix: alternates a cache-friendly working-set
 * phase with a streaming phase whose footprint exceeds the cache —
 * the workload shape adaptive policies are built for.
 */
Trace phaseMix(uint64_t cacheBytes, unsigned phasePairs,
               unsigned passesPerPhase, uint64_t seed,
               cache::Addr base = 1 << 20);

/**
 * PC-annotated mix of a reuse instruction and a streaming
 * instruction: accesses alternate between a loop PC re-walking a hot
 * working set of @p hotBytes and a scan PC streaming through an
 * effectively unbounded footprint. The workload shape PC-indexed
 * predictors (SHiP) are built for — the streaming PC's lines are
 * never reused, the loop PC's always are.
 */
PcTrace pcReuseStreamMix(uint64_t hotBytes, size_t count,
                         uint64_t seed, cache::Addr base = 1 << 20);

/** Victim behaviour between attacker probes (security workloads). */
enum class VictimPhaseKind
{
    kZipf,  ///< skewed random over the victim lines
    kScan,  ///< round-robin sweep over the victim lines
    kReuse, ///< hammers one victim line per round
};

/** "zipf" / "scan" / "reuse". */
const char* victimPhaseName(VictimPhaseKind kind);

/**
 * Shape of a prime/victim/probe interleaving targeting one cache
 * set (the measurement protocol of the sec:: analyses, expressed as
 * an ordinary address trace so the simulation harness can replay
 * attacker workloads against any policy).
 */
struct AttackerVictimConfig
{
    cache::Geometry geometry{64, 64, 4};

    /** Set index the attacker and victim contend on. */
    unsigned targetSet = 0;

    /** Attacker conflict lines; 0 = geometry.ways (full prime). */
    unsigned attackerLines = 0;

    /** Victim-line alphabet size. */
    unsigned victimLines = 2;

    /** Prime/victim/probe rounds. */
    unsigned rounds = 64;

    /** Victim accesses per round. */
    unsigned victimAccessesPerRound = 8;

    VictimPhaseKind victimKind = VictimPhaseKind::kZipf;

    /** Skew of the kZipf victim (ignored otherwise). */
    double zipfAlpha = 1.2;

    uint64_t seed = 1;
};

/**
 * Emits rounds of [attacker prime in home order | victim phase |
 * attacker probe in home order]; attacker and victim lines are
 * distinct tags mapping to cfg.targetSet.
 */
Trace attackerVictimInterleave(const AttackerVictimConfig& cfg);

/**
 * One named workload per VictimPhaseKind at @p geometry, for the
 * security bench's workload context.
 */
std::vector<Workload> attackerVictimSuite(const cache::Geometry& geometry,
                                          uint64_t seed = 1);

/** Parameters for the SPEC-like suite sizing. */
struct SuiteConfig
{
    uint64_t cacheBytes = 32 * 1024; ///< cache the suite targets
    size_t accessesPerWorkload = 200000;
    uint64_t seed = 1;
};

/**
 * The nine named workloads used by the evaluation benches.
 * Footprints are expressed relative to the target cache size so the
 * suite stays meaningful across sweep points.
 */
std::vector<Workload> specLikeSuite(const SuiteConfig& cfg);

} // namespace recap::trace

#endif // RECAP_TRACE_GENERATORS_HH_
