/**
 * @file
 * Trace serialization: a simple line-oriented text format so that
 * workloads can be exported, inspected, diffed, and re-imported
 * (e.g. to feed externally captured address traces into the
 * evaluation harness).
 *
 * Format:
 *   # recap-trace v1        (header, required)
 *   # <free-form comment>   (optional, any number)
 *   <hex address>           (one per access, 0x prefix optional)
 */

#ifndef RECAP_TRACE_IO_HH_
#define RECAP_TRACE_IO_HH_

#include <iosfwd>
#include <string>

#include "recap/trace/trace.hh"

namespace recap::trace
{

/** Writes @p t to @p os, with an optional comment line. */
void writeTrace(std::ostream& os, const Trace& t,
                const std::string& comment = "");

/**
 * Parses a trace from @p is.
 * @throws UsageError on a missing header or malformed line.
 */
Trace readTrace(std::istream& is);

/** Writes @p t to @p path; throws UsageError if unwritable. */
void saveTraceFile(const std::string& path, const Trace& t,
                   const std::string& comment = "");

/** Reads a trace from @p path; throws UsageError on failure. */
Trace loadTraceFile(const std::string& path);

} // namespace recap::trace

#endif // RECAP_TRACE_IO_HH_
