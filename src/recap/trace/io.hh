/**
 * @file
 * Trace serialization: a simple line-oriented text format so that
 * workloads can be exported, inspected, diffed, and re-imported
 * (e.g. to feed externally captured address traces into the
 * evaluation harness).
 *
 * Format v1 (address-only):
 *   # recap-trace v1        (header, required)
 *   # <free-form comment>   (optional, any number)
 *   <hex address>           (one per access, 0x prefix optional)
 *
 * Format v2 (PC-annotated):
 *   # recap-trace v2
 *   # <free-form comment>
 *   <hex address> <hex pc>  (one pair per access)
 *
 * readPcTrace() also accepts v1 input, assigning every access PC 0,
 * so legacy traces feed PC-aware consumers unchanged; readTrace()
 * remains v1-only.
 */

#ifndef RECAP_TRACE_IO_HH_
#define RECAP_TRACE_IO_HH_

#include <iosfwd>
#include <string>

#include "recap/trace/trace.hh"

namespace recap::trace
{

/** Writes @p t to @p os, with an optional comment line. */
void writeTrace(std::ostream& os, const Trace& t,
                const std::string& comment = "");

/**
 * Parses a trace from @p is.
 * @throws UsageError on a missing header or malformed line.
 */
Trace readTrace(std::istream& is);

/** Writes @p t to @p path; throws UsageError if unwritable. */
void saveTraceFile(const std::string& path, const Trace& t,
                   const std::string& comment = "");

/** Reads a trace from @p path; throws UsageError on failure. */
Trace loadTraceFile(const std::string& path);

/** Writes @p t in the v2 PC-annotated format. */
void writePcTrace(std::ostream& os, const PcTrace& t,
                  const std::string& comment = "");

/**
 * Parses a PC-annotated trace from @p is. Accepts both v2 input and
 * legacy v1 input (PCs default to 0).
 * @throws UsageError on a missing header or malformed line.
 */
PcTrace readPcTrace(std::istream& is);

/** Writes @p t to @p path in v2; throws UsageError if unwritable. */
void savePcTraceFile(const std::string& path, const PcTrace& t,
                     const std::string& comment = "");

/** Reads a PC-annotated trace from @p path (v2 or v1). */
PcTrace loadPcTraceFile(const std::string& path);

} // namespace recap::trace

#endif // RECAP_TRACE_IO_HH_
