#include "recap/trace/io.hh"

#include <charconv>
#include <string_view>
#include <fstream>
#include <istream>
#include <ostream>

#include "recap/common/error.hh"

namespace recap::trace
{

namespace
{

constexpr char kHeader[] = "# recap-trace v1";

cache::Addr
parseAddressLine(const std::string& line, size_t line_number)
{
    std::string_view text(line);
    if (text.starts_with("0x") || text.starts_with("0X"))
        text.remove_prefix(2);
    cache::Addr addr = 0;
    const auto [ptr, ec] = std::from_chars(
        text.data(), text.data() + text.size(), addr, 16);
    require(ec == std::errc() && ptr == text.data() + text.size() &&
                !text.empty(),
            "readTrace: malformed address at line " +
                std::to_string(line_number));
    return addr;
}

} // namespace

void
writeTrace(std::ostream& os, const Trace& t, const std::string& comment)
{
    os << kHeader << '\n';
    if (!comment.empty())
        os << "# " << comment << '\n';
    os << std::hex;
    for (cache::Addr a : t)
        os << "0x" << a << '\n';
    os << std::dec;
}

Trace
readTrace(std::istream& is)
{
    std::string line;
    require(static_cast<bool>(std::getline(is, line)) &&
                line == kHeader,
            "readTrace: missing 'recap-trace v1' header");
    Trace t;
    size_t line_number = 1;
    while (std::getline(is, line)) {
        ++line_number;
        if (line.empty() || line[0] == '#')
            continue;
        t.push_back(parseAddressLine(line, line_number));
    }
    return t;
}

void
saveTraceFile(const std::string& path, const Trace& t,
              const std::string& comment)
{
    std::ofstream os(path);
    require(os.good(), "saveTraceFile: cannot open '" + path + "'");
    writeTrace(os, t, comment);
    require(os.good(), "saveTraceFile: write failed for '" + path +
                           "'");
}

Trace
loadTraceFile(const std::string& path)
{
    std::ifstream is(path);
    require(is.good(), "loadTraceFile: cannot open '" + path + "'");
    return readTrace(is);
}

} // namespace recap::trace
