#include "recap/trace/io.hh"

#include <charconv>
#include <string_view>
#include <fstream>
#include <istream>
#include <ostream>

#include "recap/common/error.hh"

namespace recap::trace
{

namespace
{

constexpr char kHeader[] = "# recap-trace v1";
constexpr char kHeaderV2[] = "# recap-trace v2";

/** Parses one hex token, consuming it from @p text. */
uint64_t
parseHexToken(std::string_view& text, size_t line_number)
{
    if (text.starts_with("0x") || text.starts_with("0X"))
        text.remove_prefix(2);
    uint64_t value = 0;
    const auto [ptr, ec] = std::from_chars(
        text.data(), text.data() + text.size(), value, 16);
    require(ec == std::errc() && ptr != text.data(),
            "readTrace: malformed address at line " +
                std::to_string(line_number));
    text.remove_prefix(static_cast<size_t>(ptr - text.data()));
    return value;
}

cache::Addr
parseAddressLine(const std::string& line, size_t line_number)
{
    std::string_view text(line);
    const uint64_t addr = parseHexToken(text, line_number);
    require(text.empty(),
            "readTrace: malformed address at line " +
                std::to_string(line_number));
    return addr;
}

PcAccess
parsePcLine(const std::string& line, size_t line_number, bool hasPc)
{
    std::string_view text(line);
    PcAccess access;
    access.addr = parseHexToken(text, line_number);
    if (hasPc && !text.empty()) {
        require(text.front() == ' ' || text.front() == '\t',
                "readPcTrace: malformed line " +
                    std::to_string(line_number));
        while (!text.empty() &&
               (text.front() == ' ' || text.front() == '\t'))
            text.remove_prefix(1);
        access.pc = parseHexToken(text, line_number);
    }
    require(text.empty(), "readPcTrace: trailing junk at line " +
                              std::to_string(line_number));
    return access;
}

} // namespace

void
writeTrace(std::ostream& os, const Trace& t, const std::string& comment)
{
    os << kHeader << '\n';
    if (!comment.empty())
        os << "# " << comment << '\n';
    os << std::hex;
    for (cache::Addr a : t)
        os << "0x" << a << '\n';
    os << std::dec;
}

Trace
readTrace(std::istream& is)
{
    std::string line;
    require(static_cast<bool>(std::getline(is, line)) &&
                line == kHeader,
            "readTrace: missing 'recap-trace v1' header");
    Trace t;
    size_t line_number = 1;
    while (std::getline(is, line)) {
        ++line_number;
        if (line.empty() || line[0] == '#')
            continue;
        t.push_back(parseAddressLine(line, line_number));
    }
    return t;
}

void
saveTraceFile(const std::string& path, const Trace& t,
              const std::string& comment)
{
    std::ofstream os(path);
    require(os.good(), "saveTraceFile: cannot open '" + path + "'");
    writeTrace(os, t, comment);
    require(os.good(), "saveTraceFile: write failed for '" + path +
                           "'");
}

Trace
loadTraceFile(const std::string& path)
{
    std::ifstream is(path);
    require(is.good(), "loadTraceFile: cannot open '" + path + "'");
    return readTrace(is);
}

void
writePcTrace(std::ostream& os, const PcTrace& t,
             const std::string& comment)
{
    os << kHeaderV2 << '\n';
    if (!comment.empty())
        os << "# " << comment << '\n';
    os << std::hex;
    for (const PcAccess& a : t)
        os << "0x" << a.addr << " 0x" << a.pc << '\n';
    os << std::dec;
}

PcTrace
readPcTrace(std::istream& is)
{
    std::string line;
    require(static_cast<bool>(std::getline(is, line)),
            "readPcTrace: missing header");
    bool hasPc = false;
    if (line == kHeaderV2)
        hasPc = true;
    else
        require(line == kHeader,
                "readPcTrace: missing 'recap-trace v1/v2' header");
    PcTrace t;
    size_t line_number = 1;
    while (std::getline(is, line)) {
        ++line_number;
        if (line.empty() || line[0] == '#')
            continue;
        t.push_back(parsePcLine(line, line_number, hasPc));
    }
    return t;
}

void
savePcTraceFile(const std::string& path, const PcTrace& t,
                const std::string& comment)
{
    std::ofstream os(path);
    require(os.good(), "savePcTraceFile: cannot open '" + path + "'");
    writePcTrace(os, t, comment);
    require(os.good(),
            "savePcTraceFile: write failed for '" + path + "'");
}

PcTrace
loadPcTraceFile(const std::string& path)
{
    std::ifstream is(path);
    require(is.good(), "loadPcTraceFile: cannot open '" + path + "'");
    return readPcTrace(is);
}

} // namespace recap::trace
