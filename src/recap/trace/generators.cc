#include "recap/trace/generators.hh"

#include <algorithm>
#include <cmath>
#include <list>

#include "recap/common/error.hh"
#include "recap/common/rng.hh"

namespace recap::trace
{

Trace
sequentialScan(uint64_t footprintBytes, unsigned passes, unsigned step,
               cache::Addr base)
{
    require(step >= 1, "sequentialScan: step must be >= 1");
    Trace t;
    t.reserve(passes * (footprintBytes / step + 1));
    for (unsigned p = 0; p < passes; ++p)
        for (uint64_t off = 0; off < footprintBytes; off += step)
            t.push_back(base + off);
    return t;
}

Trace
stridedScan(uint64_t footprintBytes, unsigned stride, unsigned passes,
            cache::Addr base)
{
    require(stride >= 1, "stridedScan: stride must be >= 1");
    Trace t;
    for (unsigned p = 0; p < passes; ++p)
        for (uint64_t off = 0; off < footprintBytes; off += stride)
            t.push_back(base + off);
    return t;
}

Trace
randomUniform(uint64_t footprintBytes, size_t count, uint64_t seed,
              cache::Addr base)
{
    const uint64_t lines = std::max<uint64_t>(1, footprintBytes / 64);
    Rng rng(seed);
    Trace t;
    t.reserve(count);
    for (size_t i = 0; i < count; ++i)
        t.push_back(base + 64 * rng.nextBelow(lines));
    return t;
}

Trace
zipf(uint64_t footprintBytes, size_t count, double alpha,
     uint64_t seed, cache::Addr base)
{
    require(alpha > 0.0, "zipf: alpha must be positive");
    const uint64_t lines = std::max<uint64_t>(1, footprintBytes / 64);

    // Inverse-CDF table over line ranks.
    std::vector<double> cdf(lines);
    double total = 0.0;
    for (uint64_t i = 0; i < lines; ++i) {
        total += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        cdf[i] = total;
    }
    for (auto& c : cdf)
        c /= total;

    // Rank r gets a pseudorandom (but fixed) line so that popular
    // lines are spread across cache sets.
    std::vector<uint64_t> rank_to_line(lines);
    for (uint64_t i = 0; i < lines; ++i)
        rank_to_line[i] = i;
    Rng placement(seed ^ 0x5a5a5a5aULL);
    placement.shuffle(rank_to_line);

    Rng rng(seed);
    Trace t;
    t.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        const double u = rng.nextDouble();
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        const uint64_t rank = static_cast<uint64_t>(it - cdf.begin());
        t.push_back(base + 64 * rank_to_line[std::min(rank, lines - 1)]);
    }
    return t;
}

Trace
pointerChase(size_t nodes, size_t count, uint64_t seed,
             unsigned nodeBytes, cache::Addr base)
{
    require(nodes >= 2, "pointerChase: need at least two nodes");
    // A single random cycle visiting every node (Sattolo's algorithm)
    // gives a fully dependent chain.
    std::vector<size_t> next(nodes);
    for (size_t i = 0; i < nodes; ++i)
        next[i] = i;
    Rng rng(seed);
    for (size_t i = nodes - 1; i > 0; --i) {
        const size_t j = static_cast<size_t>(rng.nextBelow(i));
        std::swap(next[i], next[j]);
    }

    Trace t;
    t.reserve(count);
    size_t node = 0;
    for (size_t i = 0; i < count; ++i) {
        t.push_back(base + static_cast<uint64_t>(node) * nodeBytes);
        node = next[node];
    }
    return t;
}

Trace
blockedMatmul(unsigned dim, unsigned blockDim, cache::Addr base)
{
    require(blockDim >= 1 && blockDim <= dim,
            "blockedMatmul: block dimension out of range");
    constexpr unsigned kElem = 8; // sizeof(double)
    const uint64_t matrix_bytes = static_cast<uint64_t>(dim) * dim *
                                  kElem;
    const cache::Addr a_base = base;
    const cache::Addr b_base = base + matrix_bytes;
    const cache::Addr c_base = base + 2 * matrix_bytes;

    auto elem = [&](cache::Addr m, unsigned r, unsigned c) {
        return m + (static_cast<uint64_t>(r) * dim + c) * kElem;
    };

    Trace t;
    for (unsigned ii = 0; ii < dim; ii += blockDim) {
        for (unsigned jj = 0; jj < dim; jj += blockDim) {
            for (unsigned kk = 0; kk < dim; kk += blockDim) {
                const unsigned i_end = std::min(ii + blockDim, dim);
                const unsigned j_end = std::min(jj + blockDim, dim);
                const unsigned k_end = std::min(kk + blockDim, dim);
                for (unsigned i = ii; i < i_end; ++i) {
                    for (unsigned j = jj; j < j_end; ++j) {
                        for (unsigned k = kk; k < k_end; ++k) {
                            t.push_back(elem(a_base, i, k));
                            t.push_back(elem(b_base, k, j));
                            t.push_back(elem(c_base, i, j));
                        }
                    }
                }
            }
        }
    }
    return t;
}

Trace
stackDistanceModel(size_t count, double meanDistance, uint64_t seed,
                   cache::Addr base)
{
    require(meanDistance > 0.0,
            "stackDistanceModel: mean distance must be positive");
    Rng rng(seed);
    std::list<cache::Addr> stack; // front = most recently used
    cache::Addr next_new = base;
    Trace t;
    t.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        const uint64_t d = rng.nextGeometric(meanDistance);
        cache::Addr addr;
        if (d >= stack.size()) {
            addr = next_new;
            next_new += 64;
        } else {
            auto it = stack.begin();
            std::advance(it, static_cast<long>(d));
            addr = *it;
            stack.erase(it);
        }
        stack.push_front(addr);
        if (stack.size() > 4096)
            stack.pop_back();
        t.push_back(addr);
    }
    return t;
}

Trace
phaseMix(uint64_t cacheBytes, unsigned phasePairs,
         unsigned passesPerPhase, uint64_t seed, cache::Addr base)
{
    // Friendly phase: a working set at half the cache, revisited.
    // Hostile phase: a stream at four times the cache.
    std::vector<Trace> phases;
    Rng rng(seed);
    for (unsigned p = 0; p < phasePairs; ++p) {
        phases.push_back(randomUniform(cacheBytes / 2,
                                       passesPerPhase *
                                           (cacheBytes / 2 / 64),
                                       rng.next(), base));
        phases.push_back(sequentialScan(cacheBytes * 4,
                                        passesPerPhase, 64,
                                        base + (1u << 26)));
    }
    return concatTraces(phases);
}

PcTrace
pcReuseStreamMix(uint64_t hotBytes, size_t count, uint64_t seed,
                 cache::Addr base)
{
    require(hotBytes >= 64, "pcReuseStreamMix: hotBytes too small");
    constexpr uint64_t kLoopPc = 0x401000;
    constexpr uint64_t kScanPc = 0x402000;
    const uint64_t hotLines = hotBytes / 64;
    Rng rng(seed);
    PcTrace t;
    t.reserve(count);
    uint64_t loopPos = 0;
    uint64_t scanPos = 0;
    for (size_t i = 0; i < count; ++i) {
        if (i % 2 == 0) {
            // Loop PC: walks the hot set in order, wrapping.
            t.push_back({base + 64 * (loopPos % hotLines), kLoopPc});
            ++loopPos;
        } else {
            // Scan PC: strictly fresh lines, far from the hot set,
            // with a pseudo-random skip so sets are covered evenly.
            scanPos += 1 + rng.nextBelow(3);
            t.push_back({base + (uint64_t{1} << 28) + 64 * scanPos,
                         kScanPc});
        }
    }
    return t;
}

const char*
victimPhaseName(VictimPhaseKind kind)
{
    switch (kind) {
    case VictimPhaseKind::kZipf:
        return "zipf";
    case VictimPhaseKind::kScan:
        return "scan";
    case VictimPhaseKind::kReuse:
        return "reuse";
    }
    ensure(false, "victimPhaseName: bad kind");
    return "";
}

Trace
attackerVictimInterleave(const AttackerVictimConfig& cfg)
{
    cfg.geometry.validate();
    require(cfg.targetSet < cfg.geometry.numSets,
            "attackerVictimInterleave: targetSet out of range");
    require(cfg.victimLines >= 1,
            "attackerVictimInterleave: need a victim line");
    const unsigned attackers = cfg.attackerLines
                                   ? cfg.attackerLines
                                   : cfg.geometry.ways;

    // Distinct tags mapping to the target set: consecutive tags are
    // one set-stride apart. Attacker lines take the low tags, victim
    // lines the tags above them.
    const uint64_t stride =
        uint64_t{cfg.geometry.lineSize} * cfg.geometry.numSets;
    const cache::Addr setBase =
        uint64_t{cfg.targetSet} * cfg.geometry.lineSize;
    const auto attackerAddr = [&](unsigned i) {
        return setBase + i * stride;
    };
    const auto victimAddr = [&](unsigned j) {
        return setBase + (attackers + j) * stride;
    };

    Rng rng(cfg.seed);
    Trace t;
    t.reserve(static_cast<size_t>(cfg.rounds) *
              (2 * attackers + cfg.victimAccessesPerRound));
    for (unsigned round = 0; round < cfg.rounds; ++round) {
        for (unsigned i = 0; i < attackers; ++i) // prime
            t.push_back(attackerAddr(i));
        for (unsigned a = 0; a < cfg.victimAccessesPerRound; ++a) {
            unsigned j = 0;
            switch (cfg.victimKind) {
            case VictimPhaseKind::kZipf: {
                // Rank r with weight 1/(r+1)^alpha via rejection-free
                // inverse CDF over the tiny alphabet.
                double total = 0.0;
                for (unsigned r = 0; r < cfg.victimLines; ++r)
                    total += 1.0 / std::pow(r + 1.0, cfg.zipfAlpha);
                double u = rng.nextDouble() * total;
                for (unsigned r = 0; r < cfg.victimLines; ++r) {
                    u -= 1.0 / std::pow(r + 1.0, cfg.zipfAlpha);
                    if (u <= 0.0) {
                        j = r;
                        break;
                    }
                }
                break;
            }
            case VictimPhaseKind::kScan:
                j = a % cfg.victimLines;
                break;
            case VictimPhaseKind::kReuse:
                j = round % cfg.victimLines;
                break;
            }
            t.push_back(victimAddr(j));
        }
        for (unsigned i = 0; i < attackers; ++i) // probe
            t.push_back(attackerAddr(i));
    }
    return t;
}

std::vector<Workload>
attackerVictimSuite(const cache::Geometry& geometry, uint64_t seed)
{
    std::vector<Workload> suite;
    for (const auto kind :
         {VictimPhaseKind::kZipf, VictimPhaseKind::kScan,
          VictimPhaseKind::kReuse}) {
        AttackerVictimConfig cfg;
        cfg.geometry = geometry;
        cfg.victimKind = kind;
        cfg.seed = seed;
        suite.push_back(
            {std::string("attacker-victim-") + victimPhaseName(kind),
             std::string("prime/probe rounds against a ") +
                 victimPhaseName(kind) + " victim",
             attackerVictimInterleave(cfg)});
    }
    return suite;
}

std::vector<Workload>
specLikeSuite(const SuiteConfig& cfg)
{
    const uint64_t c = cfg.cacheBytes;
    const size_t n = cfg.accessesPerWorkload;
    std::vector<Workload> suite;

    {
        const unsigned passes = static_cast<unsigned>(
            std::max<uint64_t>(1, n / (c / 2 / 64)));
        suite.push_back({"stream-fit",
                         "sequential scan at half the cache size",
                         sequentialScan(c / 2, passes)});
    }
    {
        const unsigned passes = static_cast<unsigned>(
            std::max<uint64_t>(1, n / (c * 2 / 64)));
        suite.push_back({"stream-thrash",
                         "sequential scan at twice the cache size",
                         sequentialScan(c * 2, passes)});
    }
    suite.push_back({"zipf-db",
                     "Zipf(0.9) key-value accesses over 4x the cache",
                     zipf(c * 4, n, 0.9, cfg.seed + 1)});
    suite.push_back({"rand-fit",
                     "uniform random within 3/4 of the cache",
                     randomUniform(c * 3 / 4, n, cfg.seed + 2)});
    suite.push_back({"rand-over",
                     "uniform random over twice the cache",
                     randomUniform(c * 2, n, cfg.seed + 3)});
    suite.push_back({"ptr-chase",
                     "dependent pointer chase over 1.5x the cache",
                     pointerChase(c * 3 / 2 / 64, n, cfg.seed + 4)});
    {
        // Matrix sized so three matrices sum to ~2x the cache.
        const unsigned dim = static_cast<unsigned>(
            std::sqrt(static_cast<double>(c) * 2.0 / 3.0 / 8.0));
        const unsigned block = std::max(4u, dim / 8);
        suite.push_back({"blocked-mm",
                         "blocked matrix multiply, 3 matrices ~ 2x "
                         "cache",
                         blockedMatmul(dim, block)});
    }
    suite.push_back({"stack-model",
                     "geometric stack-distance reuse profile",
                     stackDistanceModel(n, static_cast<double>(
                         c / 64 / 3), cfg.seed + 5)});
    suite.push_back({"phase-mix",
                     "alternating reuse-friendly and thrashing phases",
                     phaseMix(c, 4, 3, cfg.seed + 6)});

    return suite;
}

} // namespace recap::trace
