#include "recap/common/table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "recap/common/error.hh"

namespace recap
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    require(!headers_.empty(), "TextTable: need at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    require(cells.size() == headers_.size(),
            "TextTable::addRow: cell count does not match header count");
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream& os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " ");
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c] << " |";
        }
        os << '\n';
    };

    emit_row(headers_);
    for (size_t c = 0; c < headers_.size(); ++c) {
        os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
    }
    os << '\n';
    for (const auto& row : rows_)
        emit_row(row);
}

void
TextTable::printCsv(std::ostream& os) const
{
    auto emit_cell = [&](const std::string& cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos) {
            os << cell;
            return;
        }
        os << '"';
        for (char ch : cell) {
            if (ch == '"')
                os << '"';
            os << ch;
        }
        os << '"';
    };
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            emit_cell(row[c]);
        }
        os << '\n';
    };
    emit_row(headers_);
    for (const auto& row : rows_)
        emit_row(row);
}

std::string
formatDouble(double value, int digits)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(digits) << value;
    return oss.str();
}

std::string
formatPercent(double ratio, int digits)
{
    return formatDouble(ratio * 100.0, digits) + "%";
}

std::string
formatBytes(uint64_t bytes)
{
    static const char* const units[] = {"B", "KiB", "MiB", "GiB"};
    int unit = 0;
    uint64_t value = bytes;
    while (value >= 1024 && value % 1024 == 0 && unit < 3) {
        value /= 1024;
        ++unit;
    }
    std::ostringstream oss;
    oss << value << ' ' << units[unit];
    return oss.str();
}

} // namespace recap
