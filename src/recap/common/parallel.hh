/**
 * @file
 * Deterministic parallel execution engine.
 *
 * The evaluation grid of the paper — candidate policies × cache
 * configurations × traces — is embarrassingly parallel, but naive
 * threading would wreck the reproducibility contract that everything
 * else in recap is built on (every experiment replays bit-for-bit
 * from an explicit seed). The engine here is therefore designed
 * around a determinism contract rather than raw throughput:
 *
 *  - Work is expressed as an indexed loop (parallelFor): task i
 *    computes result slot i and nothing else, so the assembled output
 *    is independent of scheduling order.
 *  - Randomness inside task i must come from an Rng seeded with
 *    deriveTaskSeed(rootSeed, i): the per-task stream depends only on
 *    the root seed and the stable task index, never on which worker
 *    ran the task or when.
 *  - numThreads <= 1 executes inline on the calling thread (the exact
 *    legacy serial path); any numThreads yields bit-identical results
 *    by construction, which tests/test_parallel_determinism.cc
 *    asserts end to end.
 *
 * TaskPool itself is deliberately simple: fixed worker threads, one
 * bounded FIFO queue (no work stealing), and first-exception
 * propagation to the waiter.
 */

#ifndef RECAP_COMMON_PARALLEL_HH_
#define RECAP_COMMON_PARALLEL_HH_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace recap
{

/**
 * Derives the seed of task @p taskIndex from @p rootSeed by SplitMix64
 * mixing. Stable across platforms, runs, and thread counts; distinct
 * indices give statistically independent streams.
 */
uint64_t deriveTaskSeed(uint64_t rootSeed, uint64_t taskIndex);

/**
 * A fixed-size worker-thread pool with a bounded task queue.
 *
 * submit() blocks while the queue is at capacity (backpressure instead
 * of unbounded buffering). The first exception thrown by any task is
 * captured and rethrown by the next wait(); later exceptions of the
 * same batch are dropped. shutdown() drains the queue, then joins the
 * workers; the destructor calls it implicitly.
 */
class TaskPool
{
  public:
    /**
     * @param numThreads    Worker count; 0 selects hardwareThreads().
     * @param queueCapacity Max queued (not yet running) tasks; 0
     *                      selects 4 * numThreads + 16.
     */
    explicit TaskPool(unsigned numThreads = 0,
                      std::size_t queueCapacity = 0);

    /** Drains the queue and joins (exceptions are discarded). */
    ~TaskPool();

    TaskPool(const TaskPool&) = delete;
    TaskPool& operator=(const TaskPool&) = delete;

    /** Number of worker threads. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Enqueues @p task; blocks while the queue is full.
     * @throws UsageError after shutdown().
     */
    void submit(std::function<void()> task);

    /**
     * Blocks until every submitted task has finished, then rethrows
     * the first captured task exception, if any (clearing it).
     */
    void wait();

    /**
     * Drains remaining queued tasks, joins all workers, and rejects
     * further submit() calls. Idempotent.
     */
    void shutdown();

    /** std::thread::hardware_concurrency(), clamped to >= 1. */
    static unsigned hardwareThreads();

  private:
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable queueNotFull_;
    std::condition_variable queueNotEmpty_;
    std::condition_variable allDone_;
    std::deque<std::function<void()>> queue_;
    std::size_t capacity_;
    /** Tasks submitted but not yet finished (queued + running). */
    std::size_t inFlight_ = 0;
    bool stopping_ = false;
    std::exception_ptr firstError_;
    std::vector<std::thread> workers_;
};

/**
 * Runs @p body(i) for every i in [0, count) on @p pool, in contiguous
 * index chunks, and blocks until the pool is idle (if the pool has
 * other outstanding tasks, those are waited for too). Rethrows the
 * first task exception.
 */
void parallelFor(TaskPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& body);

/**
 * Convenience form: resolves @p numThreads (0 = hardwareThreads()),
 * then either runs the loop inline (numThreads <= 1, count <= 1, or
 * when called from a pool worker thread — the exact serial path,
 * exceptions propagate unchanged), on the process-wide sharedPool()
 * (numThreads == 0, so repeated batch calls stop paying per-call
 * thread spin-up), or on a temporary TaskPool of the explicit size.
 */
void parallelFor(std::size_t count, unsigned numThreads,
                 const std::function<void(std::size_t)>& body);

/** Resolves a num_threads knob: 0 means hardwareThreads(). */
unsigned resolveThreads(unsigned numThreads);

/**
 * The process-wide hardware-width pool reused by every
 * `numThreads == 0` parallelFor batch (sweeps, the simulation
 * kernel, batch query evaluation). Lazily constructed, joined at
 * process exit. Concurrent batches from different external threads
 * share it safely (results are slot-indexed), but a batch's wait
 * also waits out the other batch's tasks — callers needing isolation
 * pass an explicit thread count.
 */
TaskPool& sharedPool();

/** True while the calling thread is executing a TaskPool task. */
bool onPoolWorkerThread();

} // namespace recap

#endif // RECAP_COMMON_PARALLEL_HH_
