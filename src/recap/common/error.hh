/**
 * @file
 * Error-reporting helpers shared across recap.
 *
 * The library distinguishes, following gem5's fatal/panic convention:
 *  - usage errors (bad configuration, invalid arguments supplied by the
 *    caller) -> UsageError, raised by require();
 *  - internal invariant violations (bugs in recap itself) -> LogicBug,
 *    raised by ensure().
 *
 * Both are exceptions rather than aborts so that the extensive test
 * suite can assert on them.
 */

#ifndef RECAP_COMMON_ERROR_HH_
#define RECAP_COMMON_ERROR_HH_

#include <stdexcept>
#include <string>

namespace recap
{

/** Raised when a caller violates a documented precondition. */
class UsageError : public std::invalid_argument
{
  public:
    explicit UsageError(const std::string& what)
        : std::invalid_argument(what)
    {}
};

/** Raised when an internal invariant of recap itself is broken. */
class LogicBug : public std::logic_error
{
  public:
    explicit LogicBug(const std::string& what)
        : std::logic_error(what)
    {}
};

/**
 * Checks a caller-facing precondition.
 *
 * @param cond Condition that must hold.
 * @param what Message describing the violated contract.
 */
inline void
require(bool cond, const std::string& what)
{
    if (!cond)
        throw UsageError(what);
}

/**
 * Checks an internal invariant.
 *
 * @param cond Condition that must hold if recap is bug-free.
 * @param what Message identifying the broken invariant.
 */
inline void
ensure(bool cond, const std::string& what)
{
    if (!cond)
        throw LogicBug(what);
}

} // namespace recap

#endif // RECAP_COMMON_ERROR_HH_
