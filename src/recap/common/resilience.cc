#include "recap/common/resilience.hh"

#include <algorithm>
#include <chrono>
#include <limits>

#include "recap/common/parallel.hh"
#include "recap/common/rng.hh"

namespace recap
{

namespace
{

/** Transition-log cap; chaos runs can trip a breaker thousands of
 *  times and the log must not grow without bound. */
constexpr std::size_t kMaxTransitions = 4096;

} // namespace

uint64_t
steadyNowMillis()
{
    using namespace std::chrono;
    return static_cast<uint64_t>(
        duration_cast<milliseconds>(
            steady_clock::now().time_since_epoch())
            .count());
}

ClockFn
resolveClock(ClockFn clock)
{
    if (clock)
        return clock;
    return [] { return steadyNowMillis(); };
}

const char*
abortReasonName(AbortReason reason)
{
    switch (reason) {
    case AbortReason::kTimeout: return "timeout";
    case AbortReason::kAccessBudget: return "access-budget";
    case AbortReason::kShed: return "shed";
    case AbortReason::kBreakerOpen: return "breaker-open";
    case AbortReason::kLineTooLong: return "line-too-long";
    case AbortReason::kTooManyQueries: return "too-many-queries";
    case AbortReason::kQueryTooLong: return "query-too-long";
    case AbortReason::kNoQuorum: return "no-quorum";
    case AbortReason::kOracleFailure: return "oracle-failure";
    case AbortReason::kDisconnect: return "disconnect";
    }
    return "unknown";
}

Deadline
Deadline::in(uint64_t nowMillis, uint64_t budgetMillis)
{
    if (budgetMillis == 0)
        return unbounded();
    const uint64_t max = std::numeric_limits<uint64_t>::max();
    Deadline d;
    d.atMillis = budgetMillis > max - nowMillis
                     ? max
                     : nowMillis + budgetMillis;
    return d;
}

uint64_t
Deadline::remainingMillis(uint64_t nowMillis) const
{
    if (!bounded())
        return std::numeric_limits<uint64_t>::max();
    return nowMillis >= atMillis ? 0 : atMillis - nowMillis;
}

uint64_t
retryBackoffMillis(const RetryConfig& cfg, unsigned retryIndex,
                   uint64_t seed)
{
    // Exponential growth, saturating well before the shift overflows.
    uint64_t delay = cfg.baseDelayMillis;
    const unsigned shift = std::min(retryIndex, 32u);
    if (delay != 0 && shift < 64 &&
        delay > (cfg.maxDelayMillis >> shift)) {
        delay = cfg.maxDelayMillis;
    } else {
        delay <<= shift;
        delay = std::min(delay, cfg.maxDelayMillis);
    }
    const double jitter = std::clamp(cfg.jitter, 0.0, 1.0);
    if (jitter > 0.0 && delay > 0) {
        Rng rng(deriveTaskSeed(seed, retryIndex));
        const double factor =
            1.0 - jitter + 2.0 * jitter * rng.nextDouble();
        delay = static_cast<uint64_t>(
            static_cast<double>(delay) * factor + 0.5);
    }
    return delay;
}

CircuitBreaker::CircuitBreaker(const BreakerConfig& cfg) : cfg_(cfg) {}

void
CircuitBreaker::moveTo(State to, uint64_t nowMillis)
{
    if (state_ == to)
        return;
    if (transitions_.size() < kMaxTransitions)
        transitions_.push_back({state_, to, nowMillis});
    if (to == State::kOpen) {
        ++counters_.trips;
        openedAt_ = nowMillis;
    }
    if (to == State::kClosed)
        ++counters_.closes;
    state_ = to;
}

bool
CircuitBreaker::allow(uint64_t nowMillis)
{
    if (!cfg_.enabled)
        return true;
    std::lock_guard<std::mutex> lock(mutex_);
    switch (state_) {
    case State::kClosed:
        return true;
    case State::kOpen:
        if (cfg_.openMillis == 0 ||
            (nowMillis >= openedAt_ &&
             nowMillis - openedAt_ >= cfg_.openMillis)) {
            moveTo(State::kHalfOpen, nowMillis);
            probeSuccesses_ = 0;
            probesInFlight_ = 1;
            ++counters_.probes;
            return true;
        }
        ++counters_.rejected;
        return false;
    case State::kHalfOpen:
        if (probesInFlight_ == 0) {
            probesInFlight_ = 1;
            ++counters_.probes;
            return true;
        }
        ++counters_.rejected;
        return false;
    }
    return true;
}

void
CircuitBreaker::onSuccess(uint64_t nowMillis)
{
    if (!cfg_.enabled)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    switch (state_) {
    case State::kClosed:
        consecutiveFailures_ = 0;
        break;
    case State::kHalfOpen:
        if (probesInFlight_ > 0)
            --probesInFlight_;
        ++probeSuccesses_;
        if (probeSuccesses_ >= std::max(1u, cfg_.halfOpenSuccesses)) {
            moveTo(State::kClosed, nowMillis);
            consecutiveFailures_ = 0;
        }
        break;
    case State::kOpen:
        // A late success from a request admitted before the trip;
        // the open dwell still applies.
        break;
    }
}

void
CircuitBreaker::onFailure(uint64_t nowMillis)
{
    if (!cfg_.enabled)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    switch (state_) {
    case State::kClosed:
        ++consecutiveFailures_;
        if (consecutiveFailures_ >= std::max(1u, cfg_.failureThreshold))
            moveTo(State::kOpen, nowMillis);
        break;
    case State::kHalfOpen:
        if (probesInFlight_ > 0)
            --probesInFlight_;
        moveTo(State::kOpen, nowMillis);
        break;
    case State::kOpen:
        break; // late failure; already open
    }
}

CircuitBreaker::State
CircuitBreaker::state() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
}

std::vector<CircuitBreaker::Transition>
CircuitBreaker::transitions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return transitions_;
}

CircuitBreaker::Counters
CircuitBreaker::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

const char*
breakerStateName(CircuitBreaker::State state)
{
    switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
    }
    return "unknown";
}

} // namespace recap
