#include "recap/common/parallel.hh"

#include <algorithm>

#include "recap/common/error.hh"

namespace recap
{

namespace
{

/** Set while the current thread executes inside a TaskPool worker. */
thread_local bool insidePoolWorker = false;

} // namespace

uint64_t
deriveTaskSeed(uint64_t rootSeed, uint64_t taskIndex)
{
    // SplitMix64 finalizer over a golden-ratio-spaced combination, so
    // that consecutive task indices land far apart in the seed space.
    uint64_t z = rootSeed + 0x9e3779b97f4a7c15ULL * (taskIndex + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

unsigned
TaskPool::hardwareThreads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

TaskPool::TaskPool(unsigned numThreads, std::size_t queueCapacity)
{
    const unsigned n = resolveThreads(numThreads);
    capacity_ = queueCapacity != 0 ? queueCapacity
                                   : 4 * std::size_t{n} + 16;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

TaskPool::~TaskPool()
{
    shutdown();
}

void
TaskPool::submit(std::function<void()> task)
{
    require(task != nullptr, "TaskPool: cannot submit an empty task");
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queueNotFull_.wait(lock, [this] {
            return queue_.size() < capacity_ || stopping_;
        });
        require(!stopping_, "TaskPool: submit after shutdown");
        queue_.push_back(std::move(task));
        ++inFlight_;
    }
    queueNotEmpty_.notify_one();
}

void
TaskPool::wait()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        allDone_.wait(lock, [this] { return inFlight_ == 0; });
        error = firstError_;
        firstError_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

void
TaskPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_ && workers_.empty())
            return;
        stopping_ = true;
    }
    queueNotEmpty_.notify_all();
    queueNotFull_.notify_all();
    for (auto& worker : workers_)
        worker.join();
    workers_.clear();
}

void
TaskPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            queueNotEmpty_.wait(lock, [this] {
                return !queue_.empty() || stopping_;
            });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        queueNotFull_.notify_one();

        std::exception_ptr error;
        insidePoolWorker = true;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }
        insidePoolWorker = false;

        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (error && !firstError_)
                firstError_ = error;
            --inFlight_;
            if (inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

unsigned
resolveThreads(unsigned numThreads)
{
    return numThreads == 0 ? TaskPool::hardwareThreads() : numThreads;
}

bool
onPoolWorkerThread()
{
    return insidePoolWorker;
}

TaskPool&
sharedPool()
{
    // Lazily constructed on first hardware-width batch; joined by the
    // static destructor at process exit. Never touched by explicit
    // thread-count requests, so tests that exercise pool lifetime
    // still build their own pools.
    static TaskPool pool(TaskPool::hardwareThreads());
    return pool;
}

void
parallelFor(TaskPool& pool, std::size_t count,
            const std::function<void(std::size_t)>& body)
{
    if (count == 0) {
        pool.wait();
        return;
    }
    // Contiguous chunks, a few per worker so a slow chunk can overlap
    // faster ones without any dynamic splitting.
    const std::size_t chunks =
        std::min<std::size_t>(count, std::size_t{pool.threadCount()} * 4);
    const std::size_t per = (count + chunks - 1) / chunks;
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t begin = c * per;
        const std::size_t end = std::min(count, begin + per);
        if (begin >= end)
            break;
        pool.submit([&body, begin, end] {
            for (std::size_t i = begin; i < end; ++i)
                body(i);
        });
    }
    pool.wait();
}

void
parallelFor(std::size_t count, unsigned numThreads,
            const std::function<void(std::size_t)>& body)
{
    const unsigned n = resolveThreads(numThreads);
    if (n <= 1 || count <= 1 || onPoolWorkerThread()) {
        // Inline serial path. Running inline while already on a pool
        // worker keeps nested batch calls (a sweep cell that itself
        // fans out) from deadlocking on their own worker slot.
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    if (numThreads == 0) {
        // Hardware-width batches reuse the process-wide pool instead
        // of spinning workers up and down once per sweep call.
        parallelFor(sharedPool(), count, body);
        return;
    }
    TaskPool pool(n);
    parallelFor(pool, count, body);
}

} // namespace recap
