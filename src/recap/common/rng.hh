/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in recap flows through Rng so that every experiment,
 * workload and noisy measurement is reproducible from an explicit seed.
 * The generator is xoshiro256** seeded via SplitMix64, which is fast,
 * high quality, and has a trivially portable implementation.
 */

#ifndef RECAP_COMMON_RNG_HH_
#define RECAP_COMMON_RNG_HH_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace recap
{

/**
 * Deterministic random number generator (xoshiro256**).
 *
 * Copyable: copying an Rng forks the stream, which is convenient for
 * giving each subsystem an independent reproducible stream.
 */
class Rng
{
  public:
    /** Seeds the generator; equal seeds yield equal streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Returns the next raw 64-bit value. */
    uint64_t next();

    /** Returns a uniform integer in [0, bound); requires bound > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** Returns a uniform integer in [lo, hi]; requires lo <= hi. */
    uint64_t nextInRange(uint64_t lo, uint64_t hi);

    /** Returns a uniform double in [0, 1). */
    double nextDouble();

    /** Returns true with probability @p p (clamped to [0,1]). */
    bool nextBool(double p);

    /** Returns a sample from a geometric-ish distribution, mean ~ mu. */
    uint64_t nextGeometric(double mu);

    /** Fisher-Yates shuffles @p v in place. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(nextBelow(i));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    uint64_t s_[4];
};

} // namespace recap

#endif // RECAP_COMMON_RNG_HH_
