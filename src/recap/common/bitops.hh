/**
 * @file
 * Small bit-manipulation helpers used by the cache geometry code.
 */

#ifndef RECAP_COMMON_BITOPS_HH_
#define RECAP_COMMON_BITOPS_HH_

#include <cstdint>

namespace recap
{

/** Returns true iff @p x is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Returns floor(log2(x)); requires x > 0. */
constexpr unsigned
log2Floor(uint64_t x)
{
    unsigned r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

/** Returns ceil(log2(x)); requires x > 0. */
constexpr unsigned
log2Ceil(uint64_t x)
{
    return x <= 1 ? 0 : log2Floor(x - 1) + 1;
}

/** Rounds @p x down to a multiple of @p align (align must be pow2). */
constexpr uint64_t
alignDown(uint64_t x, uint64_t align)
{
    return x & ~(align - 1);
}

/** Rounds @p x up to a multiple of @p align (align must be pow2). */
constexpr uint64_t
alignUp(uint64_t x, uint64_t align)
{
    return (x + align - 1) & ~(align - 1);
}

/** Extracts bits [lo, lo+len) of @p x. */
constexpr uint64_t
bitField(uint64_t x, unsigned lo, unsigned len)
{
    return len >= 64 ? (x >> lo) : ((x >> lo) & ((uint64_t{1} << len) - 1));
}

/** Returns the number of set bits in @p x. */
constexpr unsigned
popCount(uint64_t x)
{
    unsigned n = 0;
    while (x) {
        x &= x - 1;
        ++n;
    }
    return n;
}

} // namespace recap

#endif // RECAP_COMMON_BITOPS_HH_
