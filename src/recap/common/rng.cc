#include "recap/common/rng.hh"

#include <cmath>

#include "recap/common/error.hh"

namespace recap
{

namespace
{

/** SplitMix64 step, used only to expand the user seed. */
uint64_t
splitMix64(uint64_t& state)
{
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto& word : s_)
        word = splitMix64(sm);
    // xoshiro must not start in the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    require(bound > 0, "Rng::nextBelow: bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = bound * (UINT64_MAX / bound);
    uint64_t x = next();
    while (x >= limit)
        x = next();
    return x % bound;
}

uint64_t
Rng::nextInRange(uint64_t lo, uint64_t hi)
{
    require(lo <= hi, "Rng::nextInRange: lo must be <= hi");
    const uint64_t width = hi - lo;
    if (width == UINT64_MAX)
        return next();
    return lo + nextBelow(width + 1);
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

uint64_t
Rng::nextGeometric(double mu)
{
    require(mu > 0.0, "Rng::nextGeometric: mean must be positive");
    // Inverse-CDF sampling of a geometric distribution with mean mu.
    const double p = 1.0 / (1.0 + mu);
    double u = nextDouble();
    // Guard against log(0).
    if (u >= 1.0)
        u = 0.9999999999999999;
    return static_cast<uint64_t>(std::log1p(-u) / std::log1p(-p));
}

} // namespace recap
