#include "recap/common/stats.hh"

#include <cmath>

#include "recap/common/error.hh"

namespace recap
{

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    if (n_ == 1) {
        mean_ = x;
        min_ = x;
        max_ = x;
        m2_ = 0.0;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_)
        min_ = x;
    if (x > max_)
        max_ = x;
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
Histogram::add(int64_t value, uint64_t weight)
{
    buckets_[value] += weight;
    total_ += weight;
}

uint64_t
Histogram::countOf(int64_t value) const
{
    auto it = buckets_.find(value);
    return it == buckets_.end() ? 0 : it->second;
}

int64_t
Histogram::mode() const
{
    require(total_ > 0, "Histogram::mode: empty histogram");
    int64_t best_value = 0;
    uint64_t best_weight = 0;
    for (const auto& [value, weight] : buckets_) {
        if (weight > best_weight) {
            best_weight = weight;
            best_value = value;
        }
    }
    return best_value;
}

int64_t
Histogram::quantile(double q) const
{
    require(total_ > 0, "Histogram::quantile: empty histogram");
    require(q >= 0.0 && q <= 1.0, "Histogram::quantile: q outside [0,1]");
    const double target = q * static_cast<double>(total_);
    uint64_t cumulative = 0;
    for (const auto& [value, weight] : buckets_) {
        cumulative += weight;
        if (static_cast<double>(cumulative) >= target)
            return value;
    }
    return buckets_.rbegin()->first;
}

std::vector<std::pair<int64_t, uint64_t>>
Histogram::buckets() const
{
    return {buckets_.begin(), buckets_.end()};
}

} // namespace recap
