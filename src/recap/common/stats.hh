/**
 * @file
 * Streaming statistics accumulators used throughout the evaluation
 * harness and the noisy-measurement machinery.
 */

#ifndef RECAP_COMMON_STATS_HH_
#define RECAP_COMMON_STATS_HH_

#include <cstdint>
#include <map>
#include <vector>

namespace recap
{

/**
 * Welford-style running mean/variance with min/max tracking.
 */
class RunningStat
{
  public:
    RunningStat() = default;

    /** Adds one sample. */
    void add(double x);

    /** Number of samples added. */
    uint64_t count() const { return n_; }

    /** Sample mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 with fewer than two samples. */
    double variance() const;

    /** Standard deviation; 0 with fewer than two samples. */
    double stddev() const;

    /** Smallest sample seen; 0 when empty. */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest sample seen; 0 when empty. */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Exact integer-valued histogram (map-backed; suitable for the modest
 * cardinalities recap deals with, e.g. latency classes).
 */
class Histogram
{
  public:
    /** Increments the bucket for @p value by @p weight. */
    void add(int64_t value, uint64_t weight = 1);

    /** Total weight across all buckets. */
    uint64_t total() const { return total_; }

    /** Weight recorded for exactly @p value. */
    uint64_t countOf(int64_t value) const;

    /** The value with the largest weight; requires a nonempty histogram. */
    int64_t mode() const;

    /** Smallest value v such that cumulative weight >= q * total. */
    int64_t quantile(double q) const;

    /** All (value, weight) pairs in increasing value order. */
    std::vector<std::pair<int64_t, uint64_t>> buckets() const;

  private:
    std::map<int64_t, uint64_t> buckets_;
    uint64_t total_ = 0;
};

} // namespace recap

#endif // RECAP_COMMON_STATS_HH_
