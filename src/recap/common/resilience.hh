/**
 * @file
 * Reusable fault-tolerance primitives for the always-on services.
 *
 * The query service (S13) must degrade gracefully on a hostile
 * machine instead of wedging or crashing: requests carry absolute
 * deadlines that queueing time counts against, fault-poisoned
 * measurements are retried with seed-deterministic exponential
 * backoff, and a per-shard circuit breaker stops hammering a sick
 * oracle and serves degraded answers until a half-open probe
 * succeeds. The primitives live in common/ because none of them are
 * query-specific; everything is deterministic given a seed and an
 * injectable clock, so the chaos tests replay bit for bit.
 *
 * Time is a plain millisecond count supplied by the caller (an
 * injectable ClockFn); nothing here reads a wall clock behind the
 * caller's back, which is what lets the chaos harness script clock
 * jumps.
 */

#ifndef RECAP_COMMON_RESILIENCE_HH_
#define RECAP_COMMON_RESILIENCE_HH_

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace recap
{

/** Millisecond clock; injectable so tests script time. */
using ClockFn = std::function<uint64_t()>;

/** Monotonic wall clock in milliseconds (std::chrono::steady_clock). */
uint64_t steadyNowMillis();

/** Resolves a clock knob: nullptr selects the steady wall clock. */
ClockFn resolveClock(ClockFn clock);

/**
 * Machine-readable cause of a failed or refused request. The service
 * carries this enum (not a free-form string) from the tripping
 * checkpoint all the way into the JSON error object, so diagnostics
 * never lose which limit tripped.
 */
enum class AbortReason
{
    kTimeout,        ///< per-request deadline exceeded
    kAccessBudget,   ///< per-request machine-load budget exceeded
    kShed,           ///< load-shed at admission (queue full)
    kBreakerOpen,    ///< circuit breaker refused the request
    kLineTooLong,    ///< protocol: request line over the byte limit
    kTooManyQueries, ///< protocol: too many `;`-queries on one line
    kQueryTooLong,   ///< protocol: one query over the step limit
    kNoQuorum,       ///< measurement never reached a vote quorum
    kOracleFailure,  ///< the oracle itself failed (threw)
    kDisconnect,     ///< client vanished while the answer was written
};

/** Canonical wire name of @p reason ("timeout", "shed", ...). */
const char* abortReasonName(AbortReason reason);

/**
 * An absolute millisecond deadline. Deadlines are computed once at
 * request admission and flow down through every layer (queue wait,
 * oracle checkpoints, SetProber replays), so time spent queueing
 * counts against the same budget as time spent measuring.
 */
struct Deadline
{
    /** Absolute expiry in clock milliseconds; 0 = unbounded. */
    uint64_t atMillis = 0;

    static Deadline unbounded() { return {}; }

    /** now + budget, saturating; budget 0 = unbounded. */
    static Deadline in(uint64_t nowMillis, uint64_t budgetMillis);

    bool bounded() const { return atMillis != 0; }

    /** Strictly past the deadline (a reading AT the deadline is ok). */
    bool expired(uint64_t nowMillis) const
    {
        return bounded() && nowMillis > atMillis;
    }

    /** Milliseconds left; 0 when expired, UINT64_MAX when unbounded. */
    uint64_t remainingMillis(uint64_t nowMillis) const;
};

/**
 * Retry schedule for requests whose failure is plausibly transient
 * (fault-poisoned measurements, garbled counters). Deterministic:
 * the backoff jitter is derived from an explicit seed, never from
 * wall-clock entropy.
 */
struct RetryConfig
{
    /** Total attempts (first try included); 1 disables retry. */
    unsigned maxAttempts = 1;

    /** Delay before the first retry; doubles each further retry. */
    uint64_t baseDelayMillis = 2;

    /** Backoff ceiling. */
    uint64_t maxDelayMillis = 128;

    /**
     * Jitter fraction in [0,1]: the delay is scaled by a uniform
     * factor in [1-jitter, 1+jitter] so retrying clients desynchronize.
     */
    double jitter = 0.5;
};

/**
 * The deterministic backoff delay before retry @p retryIndex
 * (0-based: the delay after the first failed attempt has index 0).
 * Equal (cfg, retryIndex, seed) always yield the equal delay.
 */
uint64_t retryBackoffMillis(const RetryConfig& cfg, unsigned retryIndex,
                            uint64_t seed);

/** Circuit-breaker tuning. */
struct BreakerConfig
{
    /** False = the breaker never trips (every request admitted). */
    bool enabled = true;

    /** Consecutive failures that trip closed -> open. */
    unsigned failureThreshold = 5;

    /** Open dwell before a half-open probe is admitted. */
    uint64_t openMillis = 1000;

    /** Consecutive probe successes that close a half-open breaker. */
    unsigned halfOpenSuccesses = 2;
};

/**
 * A per-shard circuit breaker.
 *
 *   closed --(failureThreshold consecutive failures)--> open
 *   open   --(openMillis elapsed; next allow())-------> half-open
 *   half-open --(halfOpenSuccesses probe successes)---> closed
 *   half-open --(any probe failure)-------------------> open
 *
 * While open, allow() refuses requests (the service answers them
 * degraded); in half-open, exactly one probe request is in flight at
 * a time. All methods are thread-safe; time is always passed in by
 * the caller. Transitions are recorded (bounded) so tests pin the
 * exact trip/half-open/close sequence.
 */
class CircuitBreaker
{
  public:
    enum class State
    {
        kClosed,
        kOpen,
        kHalfOpen,
    };

    explicit CircuitBreaker(const BreakerConfig& cfg = {});

    /**
     * May the next request proceed at time @p nowMillis? Transitions
     * open -> half-open when the dwell has elapsed (the admitted
     * request is the probe).
     */
    bool allow(uint64_t nowMillis);

    /** Reports a request outcome back to the breaker. */
    void onSuccess(uint64_t nowMillis);
    void onFailure(uint64_t nowMillis);

    State state() const;

    /** One recorded state transition. */
    struct Transition
    {
        State from;
        State to;
        uint64_t atMillis;

        bool operator==(const Transition&) const = default;
    };

    /** The transition log, oldest first (capped; see cc). */
    std::vector<Transition> transitions() const;

    /** Aggregate counters for stats endpoints. */
    struct Counters
    {
        uint64_t trips = 0;    ///< closed/half-open -> open
        uint64_t closes = 0;   ///< half-open -> closed
        uint64_t probes = 0;   ///< half-open requests admitted
        uint64_t rejected = 0; ///< requests refused by allow()
    };

    Counters counters() const;

  private:
    /** Records and performs a transition (mutex held). */
    void moveTo(State to, uint64_t nowMillis);

    BreakerConfig cfg_;
    mutable std::mutex mutex_;
    State state_ = State::kClosed;
    unsigned consecutiveFailures_ = 0;
    unsigned probeSuccesses_ = 0;
    unsigned probesInFlight_ = 0;
    uint64_t openedAt_ = 0;
    Counters counters_;
    std::vector<Transition> transitions_;
};

/** Canonical name of a breaker state ("closed", "open", "half-open"). */
const char* breakerStateName(CircuitBreaker::State state);

} // namespace recap

#endif // RECAP_COMMON_RESILIENCE_HH_
