/**
 * @file
 * Plain-text table printer used by the bench binaries to reproduce the
 * paper's tables and figure series in a uniform format.
 */

#ifndef RECAP_COMMON_TABLE_HH_
#define RECAP_COMMON_TABLE_HH_

#include <ostream>
#include <string>
#include <vector>

namespace recap
{

/**
 * Accumulates rows of string cells and renders them either as an
 * aligned ASCII table or as CSV.
 *
 * Example:
 * @code
 *   TextTable t({"policy", "miss ratio"});
 *   t.addRow({"LRU", "0.231"});
 *   t.print(std::cout);
 * @endcode
 */
class TextTable
{
  public:
    /** Creates a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Appends one row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows added so far. */
    size_t rowCount() const { return rows_.size(); }

    /** Renders an aligned ASCII table with a header separator. */
    void print(std::ostream& os) const;

    /** Renders RFC-4180-ish CSV (cells with commas get quoted). */
    void printCsv(std::ostream& os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Formats a double with @p digits digits after the decimal point. */
std::string formatDouble(double value, int digits = 4);

/** Formats a ratio as a percentage string, e.g. 0.1234 -> "12.34%". */
std::string formatPercent(double ratio, int digits = 2);

/** Formats a byte count using binary units, e.g. 32768 -> "32 KiB". */
std::string formatBytes(uint64_t bytes);

} // namespace recap

#endif // RECAP_COMMON_TABLE_HH_
