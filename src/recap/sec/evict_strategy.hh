/**
 * @file
 * Minimal eviction-set strategies over a compiled policy automaton.
 *
 * The question an eviction-set attacker cares about: how many
 * accesses to attacker-controlled lines guarantee that a victim
 * line is evicted from its set, and how many distinct lines does
 * that take? Both are answered by search over the compiled product
 * automaton of (policy control state, victim position, attacker
 * residency), at two attacker strengths:
 *
 *  - Blind conflict stream (pureMiss*): the attacker accesses fresh
 *    lines only, each access a guaranteed miss — the classic
 *    prime-style eviction sweep. Because fills are deterministic,
 *    the worst case over every reachable (state, victim way) pair
 *    is the exact length of the shortest universally-evicting
 *    conflict stream, and its distinct-line count equals its
 *    length. Computed in O(states x ways) by per-way reverse BFS
 *    over the miss-chain functional graph. Policies that protect
 *    residents from conflict streams (LIP/BIP insert at the LRU
 *    end) come out unbounded — the automaton-level statement of
 *    their thrash resistance.
 *
 *  - Informed adaptive attacker (informed*): the attacker knows the
 *    full configuration and may re-access (touch) its own resident
 *    lines to steer the policy between misses. Shortest-path search
 *    over the product graph yields the worst-case optimal sequence
 *    length, and re-running the reachability with the line pool
 *    capped at m in {1..k} yields the minimum distinct-line count
 *    that still guarantees eviction from every configuration. This
 *    is a capability bound: no real attacker evicts faster.
 *
 * The informed product can be large (states x ways x 2^(ways-1)),
 * so that tier carries its own SecOutcome and abstains over budget;
 * the blind tier is cheap enough to complete for every policy that
 * compiles.
 */

#ifndef RECAP_SEC_EVICT_STRATEGY_HH_
#define RECAP_SEC_EVICT_STRATEGY_HH_

#include <cstdint>
#include <string>

#include "recap/eval/predictability.hh"
#include "recap/sec/sec.hh"

namespace recap::sec
{

/** Result of the two-tier eviction-strategy search. */
struct EvictStrategyResult
{
    /** Outcome of the blind conflict-stream tier. */
    SecOutcome outcome = SecOutcome::kNotCompiled;

    /**
     * True iff some reachable (state, victim way) configuration
     * survives a fresh-miss stream forever — no blind conflict
     * stream of any length guarantees eviction.
     */
    bool pureMissUnbounded = false;

    /**
     * Worst case over configurations of the minimal fresh-miss
     * count until the victim is evicted; equals the distinct-line
     * count of the blind strategy. Valid when the tier completed
     * and pureMissUnbounded is false.
     */
    uint64_t pureMissLen = 0;

    /** Outcome of the informed-attacker tier. */
    SecOutcome informedOutcome = SecOutcome::kNotCompiled;

    /**
     * True iff some configuration is unevictable even by an
     * informed attacker with an unlimited line pool.
     */
    bool informedUnbounded = false;

    /** Worst-case optimal sequence length, unlimited line pool. */
    uint64_t informedLen = 0;

    /**
     * Minimum distinct-line pool size m such that an informed
     * attacker restricted to m lines still evicts from every
     * configuration, and the worst-case optimal length under that
     * minimal pool.
     */
    uint64_t informedMinLines = 0;
    uint64_t informedLenAtMinLines = 0;

    /** Product configurations explored across both tiers. */
    uint64_t configsExplored = 0;

    /** e.g. "blind 4/4 lines, informed 4 (min 3 lines: 5)". */
    std::string render() const;
};

/** Runs both tiers against @p view under @p budget. */
EvictStrategyResult evictStrategy(const policy::CompiledTableView& view,
                                  const SecBudget& budget = {});

/**
 * Cross-check between the eviction search and the predictability
 * metrics: when eval::evictBound(proto) is a finite B, no resident
 * line survives more than B misses, so the blind conflict stream
 * must evict every canonical-fill configuration within B + 1
 * misses; and wherever both tiers complete, the informed optimum
 * can never exceed the blind one. Returns consistent == false with
 * a human-readable detail on any violation (which would indicate a
 * bug in one of the searches, not a property of the policy).
 */
struct EvictCrossCheck
{
    bool consistent = true;
    bool applicable = false; ///< false when every side abstained
    std::string detail;
};

EvictCrossCheck
crossCheckEvictBound(const std::string& spec, unsigned ways,
                     const SecBudget& budget = {},
                     const eval::PredictabilityConfig& predCfg = {});

} // namespace recap::sec

#endif // RECAP_SEC_EVICT_STRATEGY_HH_
