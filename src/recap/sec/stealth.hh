/**
 * @file
 * RELOAD+REFRESH-style stealthy probe synthesis.
 *
 * RELOAD+REFRESH observed that once the replacement policy is known
 * exactly, an attacker occupying a whole cache set can monitor a
 * victim line without the eviction storms of Prime+Probe: each round
 * the victim either touches its line (evicting one known attacker
 * line) or stays idle, and the attacker then runs a fixed probe
 * sequence over its own lines that (a) hits on every access when the
 * victim was idle — zero self-evictions, nothing for the victim or a
 * monitor to notice — and (b) deterministically reveals the access
 * and restores the set to the exact starting configuration, so
 * rounds chain forever.
 *
 * stealthProbe() searches for such a cycle by BFS over pairs of
 * automaton states: the idle branch (every probe access hits) and
 * the active branch (the victim's line sits where the policy evicted
 * an attacker line) are advanced in lockstep through the same probe
 * word; any probe access that would evict an attacker-owned line in
 * either branch is pruned, so a found word is stealthy by
 * construction, and reaching (start, start, restored) closes the
 * cycle. The victim's access is distinguishable for free: a closing
 * word necessarily re-loads the evicted line — a miss in the active
 * branch — while the idle branch is all hits.
 *
 * The start state ranges over every full-set state the attacker can
 * prepare from the canonical prime (touches and self-conflict
 * misses), and the shortest cycle over all start states is reported.
 */

#ifndef RECAP_SEC_STEALTH_HH_
#define RECAP_SEC_STEALTH_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "recap/sec/sec.hh"

namespace recap::sec
{

/** Result of the stealthy-cycle search. */
struct StealthResult
{
    SecOutcome outcome = SecOutcome::kNotCompiled;

    /**
     * True iff a stealthy distinguishing cycle was found. Under
     * kComplete, probeLen is the exact minimum over every
     * preparable start state; under kOverBudget with feasible set,
     * the cycle is a valid witness but shorter ones may exist.
     */
    bool feasible = false;

    /** Accesses per round (length of the probe word). */
    uint64_t probeLen = 0;

    /**
     * Attacker accesses needed to steer the set from the canonical
     * prime state to the cycle's start state (0 when the prime
     * state itself admits the cycle).
     */
    uint64_t prepLen = 0;

    /**
     * The probe word: per access, the home way of the attacker line
     * to touch. The monitoring line is the one the victim's access
     * displaces — the line at way victim(startState).
     */
    std::vector<policy::Way> probe;

    /** Way the monitored victim line lands in (= victim(start)). */
    policy::Way monitoredWay = 0;

    uint64_t configsExplored = 0;

    /** e.g. "yes (probe 3, prep 0)" / "no" / ">budget". */
    std::string render() const;
};

/** Searches for the shortest stealthy cycle on @p view. */
StealthResult stealthProbe(const policy::CompiledTableView& view,
                           const SecBudget& budget = {});

} // namespace recap::sec

#endif // RECAP_SEC_STEALTH_HH_
