#include "recap/sec/evict_strategy.hh"

#include <algorithm>
#include <bit>
#include <deque>
#include <limits>
#include <unordered_map>
#include <vector>

#include "recap/common/error.hh"
#include "recap/policy/factory.hh"

namespace recap::sec
{

namespace
{

constexpr uint32_t kUnset = std::numeric_limits<uint32_t>::max();

/**
 * Blind-tier analysis: for every full-set-reachable state s and
 * victim way w, the number of fresh-line misses until the conflict
 * stream evicts way w (kUnset when the miss chain cycles past w
 * forever). Misses are deterministic — each evicts victim(s) and
 * fills the same way — so for a fixed target way the chain is a
 * functional graph and all distances fall out of one reverse BFS.
 */
struct PureMissAnalysis
{
    std::vector<uint32_t> states;           ///< full-set reachable
    std::unordered_map<uint32_t, uint32_t> indexOf;
    std::vector<std::vector<uint32_t>> distByWay; ///< [way][stateIdx]
    bool unbounded = false;
    uint64_t maxLen = 0;
    uint64_t configsExplored = 0;
};

PureMissAnalysis
analyzePureMiss(const policy::CompiledTableView& view)
{
    const unsigned k = view.ways();
    PureMissAnalysis a;
    a.states = view.fullSetReachable();
    const auto n = static_cast<uint32_t>(a.states.size());
    a.indexOf.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        a.indexOf.emplace(a.states[i], i);

    // The miss-chain successor s -> fill(s, victim(s)), as indices.
    std::vector<uint32_t> succ(n);
    std::vector<std::vector<uint32_t>> preds(n);
    for (uint32_t i = 0; i < n; ++i) {
        const uint32_t s = a.states[i];
        const uint32_t next = view.fillNext(s, view.victim(s));
        succ[i] = a.indexOf.at(next);
        preds[succ[i]].push_back(i);
    }

    a.distByWay.assign(k, std::vector<uint32_t>(n, kUnset));
    for (unsigned w = 0; w < k; ++w) {
        auto& dist = a.distByWay[w];
        std::deque<uint32_t> frontier;
        // A state whose next miss targets way w evicts the victim
        // there in exactly one access.
        for (uint32_t i = 0; i < n; ++i) {
            if (view.victim(a.states[i]) == w) {
                dist[i] = 1;
                frontier.push_back(i);
            }
        }
        while (!frontier.empty()) {
            const uint32_t i = frontier.front();
            frontier.pop_front();
            ++a.configsExplored;
            for (const uint32_t p : preds[i]) {
                // A goal state's distance is 1 no matter where its
                // chain continues; only non-goal states inherit.
                if (dist[p] != kUnset)
                    continue;
                dist[p] = dist[i] + 1;
                frontier.push_back(p);
            }
        }
        for (uint32_t i = 0; i < n; ++i) {
            if (dist[i] == kUnset)
                a.unbounded = true;
            else
                a.maxLen = std::max<uint64_t>(a.maxLen, dist[i]);
        }
    }
    return a;
}

/**
 * Informed-tier product graph: configurations are (control state,
 * victim way, attacker-residency mask over the non-victim ways).
 * Edges are touches of resident attacker lines and one collapsed
 * "miss with any non-resident attacker line" edge; a miss whose
 * victim way is the target's way evicts the target (an edge to the
 * goal). Built forward from every (reachable state, victim way,
 * empty mask) seed, then distances to the goal are computed by
 * reverse BFS — once per line-pool cap m, since the cap only gates
 * miss edges out of configurations with popcount(mask) >= m.
 */
struct InformedGraph
{
    std::vector<uint64_t> keys;      ///< (state*k + vw) << k | mask
    std::vector<std::vector<uint32_t>> preds; ///< fromIdx<<1|isMiss
    std::vector<uint32_t> goalPreds; ///< fromIdx (always a miss)
    uint32_t numInitial = 0;         ///< seeds occupy indices [0, n)
    bool overBudget = false;
    uint64_t configsExplored = 0;
};

InformedGraph
buildInformedGraph(const policy::CompiledTableView& view,
                   const std::vector<uint32_t>& fullStates,
                   uint64_t maxConfigs)
{
    const unsigned k = view.ways();
    InformedGraph g;

    std::unordered_map<uint64_t, uint32_t> index;
    const auto keyOf = [k](uint32_t state, unsigned vw,
                           uint32_t mask) {
        return ((uint64_t{state} * k + vw) << k) | mask;
    };
    const auto intern = [&](uint64_t key) -> uint32_t {
        const auto it = index.find(key);
        if (it != index.end())
            return it->second;
        const auto id = static_cast<uint32_t>(g.keys.size());
        index.emplace(key, id);
        g.keys.push_back(key);
        g.preds.emplace_back();
        return id;
    };

    // Seeds: every reachable full-set state with the victim in every
    // way and no attacker line resident yet — the conservative "the
    // attacker starts cold against an arbitrary warm set" opening.
    for (const uint32_t s : fullStates)
        for (unsigned vw = 0; vw < k; ++vw)
            intern(keyOf(s, vw, 0));
    g.numInitial = static_cast<uint32_t>(g.keys.size());
    if (g.numInitial > maxConfigs) {
        g.overBudget = true;
        return g;
    }

    for (uint32_t at = 0; at < g.keys.size(); ++at) {
        if (g.keys.size() > maxConfigs) {
            g.overBudget = true;
            return g;
        }
        ++g.configsExplored;
        const uint64_t key = g.keys[at];
        const auto mask = static_cast<uint32_t>(key & ((1u << k) - 1));
        const auto packed = static_cast<uint32_t>(key >> k);
        const uint32_t state = packed / k;
        const unsigned vw = packed % k;

        // Touch any resident attacker line.
        for (unsigned w = 0; w < k; ++w) {
            if (!(mask & (1u << w)))
                continue;
            const uint32_t to =
                intern(keyOf(view.touchNext(state, w), vw, mask));
            g.preds[to].push_back(at << 1);
        }
        // Miss with a non-resident line (pool permitting — the cap
        // is applied during the distance pass, not here).
        const unsigned v = view.victim(state);
        if (v == vw) {
            g.goalPreds.push_back(at);
        } else {
            const uint32_t to = intern(keyOf(
                view.fillNext(state, v), vw, mask | (1u << v)));
            g.preds[to].push_back((at << 1) | 1u);
        }
    }
    return g;
}

/**
 * Distances to the goal when the attacker owns @p poolSize lines.
 * Returns the max distance over the seed configurations, or kUnset
 * if some seed cannot reach the goal under this pool.
 */
uint64_t
informedWorstCase(const InformedGraph& g, unsigned k,
                  unsigned poolSize, uint64_t* explored)
{
    const auto maskOf = [k](uint64_t key) {
        return static_cast<uint32_t>(key & ((1u << k) - 1));
    };
    const auto missAllowed = [&](uint32_t from) {
        return std::popcount(maskOf(g.keys[from])) <
               static_cast<int>(poolSize);
    };

    std::vector<uint32_t> dist(g.keys.size(), kUnset);
    std::deque<uint32_t> frontier;
    for (const uint32_t from : g.goalPreds) {
        if (dist[from] == kUnset && missAllowed(from)) {
            dist[from] = 1;
            frontier.push_back(from);
        }
    }
    while (!frontier.empty()) {
        const uint32_t i = frontier.front();
        frontier.pop_front();
        ++*explored;
        for (const uint32_t edge : g.preds[i]) {
            const uint32_t p = edge >> 1;
            if (dist[p] != kUnset)
                continue;
            if ((edge & 1u) && !missAllowed(p))
                continue;
            dist[p] = dist[i] + 1;
            frontier.push_back(p);
        }
    }

    uint64_t worst = 0;
    for (uint32_t i = 0; i < g.numInitial; ++i) {
        if (dist[i] == kUnset)
            return kUnset;
        worst = std::max<uint64_t>(worst, dist[i]);
    }
    return worst;
}

} // namespace

std::string
EvictStrategyResult::render() const
{
    const auto tier = [](SecOutcome o, bool unbounded, uint64_t len) {
        if (o == SecOutcome::kNotCompiled)
            return std::string("not-compiled");
        if (o == SecOutcome::kOverBudget)
            return std::string(">budget");
        return unbounded ? std::string("unbounded")
                         : std::to_string(len);
    };
    std::string out = "blind " +
                      tier(outcome, pureMissUnbounded, pureMissLen) +
                      ", informed " +
                      tier(informedOutcome, informedUnbounded,
                           informedLen);
    if (informedOutcome == SecOutcome::kComplete &&
        !informedUnbounded) {
        out += " (min " + std::to_string(informedMinLines) +
               " lines: " + std::to_string(informedLenAtMinLines) +
               ")";
    }
    return out;
}

EvictStrategyResult
evictStrategy(const policy::CompiledTableView& view,
              const SecBudget& budget)
{
    const unsigned k = view.ways();
    require(k >= 1 && k < 31, "evictStrategy: ways out of range");

    EvictStrategyResult result;
    const PureMissAnalysis pure = analyzePureMiss(view);
    result.outcome = SecOutcome::kComplete;
    result.pureMissUnbounded = pure.unbounded;
    result.pureMissLen = pure.maxLen;
    result.configsExplored = pure.configsExplored;

    const InformedGraph g = buildInformedGraph(
        view, pure.states, budget.maxConfigs);
    result.configsExplored += g.configsExplored;
    if (g.overBudget) {
        result.informedOutcome = SecOutcome::kOverBudget;
        return result;
    }
    result.informedOutcome = SecOutcome::kComplete;

    // Unlimited pool: with the victim resident, at most k - 1
    // attacker lines fit, so a pool of k lines never runs dry.
    const uint64_t unlimited =
        informedWorstCase(g, k, k, &result.configsExplored);
    if (unlimited == kUnset) {
        result.informedUnbounded = true;
        return result;
    }
    result.informedLen = unlimited;

    for (unsigned m = 1; m <= k; ++m) {
        const uint64_t len =
            informedWorstCase(g, k, m, &result.configsExplored);
        if (len != kUnset) {
            result.informedMinLines = m;
            result.informedLenAtMinLines = len;
            break;
        }
    }
    ensure(result.informedMinLines >= 1,
           "evictStrategy: full pool feasible but no minimal pool");
    return result;
}

EvictCrossCheck
crossCheckEvictBound(const std::string& spec, unsigned ways,
                     const SecBudget& budget,
                     const eval::PredictabilityConfig& predCfg)
{
    EvictCrossCheck check;
    const auto view = viewForSpec(spec, ways, budget);
    if (!view)
        return check; // not applicable: no table to search over

    const auto proto = policy::makePolicy(spec, ways);
    const eval::MetricResult bound = eval::evictBound(*proto, predCfg);
    const EvictStrategyResult strat = evictStrategy(*view, budget);
    if (strat.outcome != SecOutcome::kComplete)
        return check;
    check.applicable = true;

    // Wherever both tiers completed, the informed optimum is a
    // refinement of the blind strategy and can never be worse.
    if (strat.informedOutcome == SecOutcome::kComplete &&
        !strat.informedUnbounded && !strat.pureMissUnbounded &&
        strat.informedLen > strat.pureMissLen) {
        check.consistent = false;
        check.detail = spec + "@" + std::to_string(ways) +
                       ": informed length " +
                       std::to_string(strat.informedLen) +
                       " exceeds blind length " +
                       std::to_string(strat.pureMissLen);
        return check;
    }

    // A finite survival bound B means no adversary keeps a line
    // resident past B misses, so the blind stream must finish every
    // canonical-fill configuration within B + 1 misses.
    if (!bound.value.has_value())
        return check; // unbounded or >budget: no finite constraint
    const uint64_t b = *bound.value;

    const PureMissAnalysis pure = analyzePureMiss(*view);
    const uint32_t filled = view->filledState();
    const uint32_t idx = pure.indexOf.at(filled);
    for (unsigned w = 0; w < ways; ++w) {
        const uint32_t d = pure.distByWay[w][idx];
        if (d == kUnset || d > b + 1) {
            check.consistent = false;
            check.detail =
                spec + "@" + std::to_string(ways) +
                ": canonical victim at way " + std::to_string(w) +
                " needs " +
                (d == kUnset ? std::string("unbounded")
                             : std::to_string(d)) +
                " blind misses, but evictBound " +
                std::to_string(b) + " admits at most " +
                std::to_string(b + 1);
            return check;
        }
    }
    return check;
}

} // namespace recap::sec
