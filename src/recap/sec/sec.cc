#include "recap/sec/sec.hh"

#include <optional>

namespace recap::sec
{

std::string
outcomeName(SecOutcome outcome)
{
    switch (outcome) {
      case SecOutcome::kComplete:
        return "complete";
      case SecOutcome::kOverBudget:
        return "over-budget";
      case SecOutcome::kNotCompiled:
        return "not-compiled";
    }
    return "unknown";
}

std::optional<policy::CompiledTableView>
viewForSpec(const std::string& spec, unsigned ways,
            const SecBudget& budget)
{
    if (auto table =
            policy::compiledTableFor(spec, ways, budget.compile))
        return policy::CompiledTableView(std::move(table));
    return std::nullopt;
}

} // namespace recap::sec
