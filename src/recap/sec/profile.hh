/**
 * @file
 * Per-policy security profiles and leakage-aware ranking.
 *
 * A SecurityProfile bundles the three sec:: analyses for one
 * (policy, associativity) point; securitySweep() computes a grid of
 * them in parallel (deterministically — the searches use no RNG),
 * and leakageScore() collapses a profile into a single comparable
 * number so benches and reports can rank policies by leakage
 * resistance next to the usual miss-ratio rankings:
 *
 *   score = stealth feasibility (1 point)
 *         + eviction ease       (ways / informed eviction length,
 *                                0 when unbounded — capped at 1)
 *         + disclosure          (leaked bits / pattern bits)
 *
 * Higher is leakier. Components whose search abstained contribute
 * nothing and mark the profile partial, so an abstention can only
 * under-state leakage, never fake resistance into the ranking;
 * partial profiles are flagged in every rendering.
 */

#ifndef RECAP_SEC_PROFILE_HH_
#define RECAP_SEC_PROFILE_HH_

#include <string>
#include <vector>

#include "recap/sec/evict_strategy.hh"
#include "recap/sec/observability.hh"
#include "recap/sec/stealth.hh"

namespace recap::sec
{

/** All three analyses for one (spec, ways) grid point. */
struct SecurityProfile
{
    std::string spec;
    unsigned ways = 0;

    /** False when the policy has no compiled table at this ways. */
    bool compiled = false;

    EvictStrategyResult evict;
    StealthResult stealth;
    ObservabilityResult observe;

    /** True iff any component abstained (over budget/not compiled). */
    bool partial() const;
};

/** Knobs for profile computation. */
struct ProfileConfig
{
    ObservabilityConfig observe;
    SecBudget budget;

    /**
     * Worker threads for securitySweep (one grid row per task);
     * 0 = hardware concurrency, 1 = serial. Rows are independent
     * and deterministic, so every thread count yields identical
     * results.
     */
    unsigned numThreads = 0;
};

/** Computes one profile; kNotCompiled throughout when no table. */
SecurityProfile securityProfile(const std::string& spec,
                                unsigned ways,
                                const ProfileConfig& cfg = {});

/**
 * Profiles every supported (spec, ways) combination in row-major
 * (spec-outer) order, parallelized across cfg.numThreads workers.
 */
std::vector<SecurityProfile>
securitySweep(const std::vector<std::string>& specs,
              const std::vector<unsigned>& waysList,
              const ProfileConfig& cfg = {});

/** Leakage score of @p profile (higher = leakier), in [0, 3]. */
double leakageScore(const SecurityProfile& profile);

/**
 * Sorts @p profiles by descending leakage score (stable: equal
 * scores keep their sweep order).
 */
void sortByLeakage(std::vector<SecurityProfile>& profiles);

} // namespace recap::sec

#endif // RECAP_SEC_PROFILE_HH_
