#include "recap/sec/stealth.hh"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <vector>

#include "recap/common/error.hh"

namespace recap::sec
{

namespace
{

/** Pair-BFS node: idle-branch state, active-branch state, phase. */
uint64_t
nodeKey(uint32_t state0, uint32_t state1, unsigned restored,
        uint32_t numStates)
{
    return (uint64_t{state0} * numStates + state1) * 2 + restored;
}

struct CycleSearch
{
    bool found = false;
    uint64_t length = 0;
    std::vector<policy::Way> word;
};

/**
 * Shortest probe word closing a stealthy cycle at @p s0, or not
 * found. @p explored counts nodes globally; the search aborts once
 * it crosses @p maxConfigs (caller reports over-budget).
 */
CycleSearch
shortestCycleAt(const policy::CompiledTableView& view, uint32_t s0,
                uint64_t maxConfigs, uint64_t* explored)
{
    const unsigned k = view.ways();
    const uint32_t n = view.numStates();
    const policy::Way vstar = view.victim(s0);

    CycleSearch result;

    // Parent map doubles as the visited set: node -> (parent node,
    // probed way). The start node is its own parent.
    std::unordered_map<uint64_t, std::pair<uint64_t, uint8_t>>
        parent;
    std::deque<uint64_t> frontier;

    const uint64_t start =
        nodeKey(s0, view.fillNext(s0, vstar), 0, n);
    const uint64_t goal = nodeKey(s0, s0, 1, n);
    parent.emplace(start, std::make_pair(start, uint8_t{0}));
    frontier.push_back(start);

    while (!frontier.empty()) {
        const uint64_t node = frontier.front();
        frontier.pop_front();
        if (++*explored > maxConfigs)
            return result;

        const unsigned restored = node & 1;
        const uint32_t state1 =
            static_cast<uint32_t>((node >> 1) % n);
        const uint32_t state0 =
            static_cast<uint32_t>((node >> 1) / n);

        for (unsigned w = 0; w < k; ++w) {
            // Idle branch: the set is entirely attacker-owned, so
            // every probe access hits.
            const uint32_t next0 = view.touchNext(state0, w);
            uint32_t next1;
            unsigned nextRestored = restored;
            if (!restored && w == vstar) {
                // Re-loading the displaced line is a miss in the
                // active branch; stealth demands it evict the
                // victim's line, never an attacker line.
                if (view.victim(state1) != vstar)
                    continue;
                next1 = view.fillNext(state1, vstar);
                nextRestored = 1;
            } else {
                next1 = view.touchNext(state1, w);
            }
            const uint64_t next =
                nodeKey(next0, next1, nextRestored, n);
            if (!parent
                     .emplace(next,
                              std::make_pair(node,
                                             static_cast<uint8_t>(w)))
                     .second) {
                continue;
            }
            if (next == goal) {
                // Reconstruct the probe word back to the start.
                result.found = true;
                uint64_t at = next;
                while (at != start) {
                    const auto& [prev, way] = parent.at(at);
                    result.word.push_back(way);
                    at = prev;
                }
                std::reverse(result.word.begin(),
                             result.word.end());
                result.length = result.word.size();
                return result;
            }
            frontier.push_back(next);
        }
    }
    return result;
}

} // namespace

std::string
StealthResult::render() const
{
    if (outcome == SecOutcome::kNotCompiled)
        return "not-compiled";
    if (outcome == SecOutcome::kOverBudget)
        return feasible ? "yes (probe " + std::to_string(probeLen) +
                              ", >budget)"
                        : ">budget";
    if (!feasible)
        return "no";
    return "yes (probe " + std::to_string(probeLen) + ", prep " +
           std::to_string(prepLen) + ")";
}

StealthResult
stealthProbe(const policy::CompiledTableView& view,
             const SecBudget& budget)
{
    const unsigned k = view.ways();
    StealthResult result;
    result.outcome = SecOutcome::kComplete;

    // Start states the attacker can prepare: BFS from the canonical
    // prime over touches and self-conflict misses, with the BFS
    // depth as the preparation cost.
    std::unordered_map<uint32_t, uint32_t> prepDist;
    std::deque<uint32_t> prepFrontier;
    const uint32_t prime = view.filledState();
    prepDist.emplace(prime, 0);
    prepFrontier.push_back(prime);
    std::vector<uint32_t> startOrder;
    while (!prepFrontier.empty()) {
        const uint32_t s = prepFrontier.front();
        prepFrontier.pop_front();
        startOrder.push_back(s);
        const uint32_t d = prepDist.at(s);
        const auto push = [&](uint32_t next) {
            if (prepDist.emplace(next, d + 1).second)
                prepFrontier.push_back(next);
        };
        for (unsigned w = 0; w < k; ++w)
            push(view.touchNext(s, w));
        push(view.fillNext(s, view.victim(s)));
    }

    // Pair-BFS per candidate start, cheapest preparation first;
    // keep the lexicographically best (probe length, prep length).
    bool exhausted = false;
    for (const uint32_t s0 : startOrder) {
        if (result.configsExplored >= budget.maxConfigs) {
            exhausted = true;
            break;
        }
        const CycleSearch cycle = shortestCycleAt(
            view, s0, budget.maxConfigs, &result.configsExplored);
        if (result.configsExplored > budget.maxConfigs)
            exhausted = true;
        if (!cycle.found)
            continue;
        const uint64_t prep = prepDist.at(s0);
        if (!result.feasible || cycle.length < result.probeLen ||
            (cycle.length == result.probeLen &&
             prep < result.prepLen)) {
            result.feasible = true;
            result.probeLen = cycle.length;
            result.prepLen = prep;
            result.probe = cycle.word;
            result.monitoredWay = view.victim(s0);
        }
    }
    if (exhausted)
        result.outcome = SecOutcome::kOverBudget;
    return result;
}

} // namespace recap::sec
