#include "recap/sec/profile.hh"

#include <algorithm>
#include <cmath>

#include "recap/common/parallel.hh"
#include "recap/policy/factory.hh"

namespace recap::sec
{

bool
SecurityProfile::partial() const
{
    return evict.outcome != SecOutcome::kComplete ||
           evict.informedOutcome != SecOutcome::kComplete ||
           stealth.outcome != SecOutcome::kComplete ||
           observe.outcome != SecOutcome::kComplete;
}

SecurityProfile
securityProfile(const std::string& spec, unsigned ways,
                const ProfileConfig& cfg)
{
    SecurityProfile profile;
    profile.spec = spec;
    profile.ways = ways;

    const auto view = viewForSpec(spec, ways, cfg.budget);
    if (!view)
        return profile;

    profile.compiled = true;
    profile.evict = evictStrategy(*view, cfg.budget);
    profile.stealth = stealthProbe(*view, cfg.budget);
    profile.observe = observability(*view, cfg.observe, cfg.budget);
    return profile;
}

std::vector<SecurityProfile>
securitySweep(const std::vector<std::string>& specs,
              const std::vector<unsigned>& waysList,
              const ProfileConfig& cfg)
{
    struct Cell
    {
        std::string spec;
        unsigned ways;
    };
    std::vector<Cell> cells;
    for (const auto& spec : specs)
        for (const unsigned ways : waysList)
            if (policy::specSupportsWays(spec, ways))
                cells.push_back({spec, ways});

    std::vector<SecurityProfile> profiles(cells.size());
    parallelFor(cells.size(), cfg.numThreads, [&](std::size_t i) {
        profiles[i] =
            securityProfile(cells[i].spec, cells[i].ways, cfg);
    });
    return profiles;
}

double
leakageScore(const SecurityProfile& profile)
{
    double score = 0.0;
    if (profile.stealth.outcome == SecOutcome::kComplete &&
        profile.stealth.feasible) {
        score += 1.0;
    }
    if (profile.evict.informedOutcome == SecOutcome::kComplete &&
        !profile.evict.informedUnbounded &&
        profile.evict.informedLen > 0) {
        score += std::min(
            1.0, static_cast<double>(profile.ways) /
                     static_cast<double>(profile.evict.informedLen));
    }
    if (profile.observe.outcome == SecOutcome::kComplete &&
        profile.observe.patterns > 1) {
        const double patternBits = std::log2(
            static_cast<double>(profile.observe.patterns));
        score += profile.observe.leakedBits / patternBits;
    }
    return score;
}

void
sortByLeakage(std::vector<SecurityProfile>& profiles)
{
    std::stable_sort(profiles.begin(), profiles.end(),
                     [](const SecurityProfile& a,
                        const SecurityProfile& b) {
                         return leakageScore(a) > leakageScore(b);
                     });
}

} // namespace recap::sec
