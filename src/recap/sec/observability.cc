#include "recap/sec/observability.hh"

#include <cmath>
#include <unordered_map>
#include <vector>

#include "recap/common/error.hh"
#include "recap/common/table.hh"

namespace recap::sec
{

namespace
{

/** Integer power with overflow guard (0 on overflow). */
uint64_t
checkedPow(uint64_t base, unsigned exp)
{
    uint64_t out = 1;
    for (unsigned i = 0; i < exp; ++i) {
        if (out > (uint64_t{1} << 62) / base)
            return 0;
        out *= base;
    }
    return out;
}

} // namespace

std::string
ObservabilityResult::render() const
{
    if (outcome == SecOutcome::kNotCompiled)
        return "not-compiled";
    if (outcome == SecOutcome::kOverBudget)
        return ">budget";
    return std::to_string(observations) + " obs / " +
           std::to_string(patterns) + " patterns (" +
           formatDouble(leakedBits, 2) + " bits)";
}

ObservabilityResult
observability(const policy::CompiledTableView& view,
              const ObservabilityConfig& cfg, const SecBudget& budget)
{
    const unsigned k = view.ways();
    const unsigned v = cfg.victimLines;
    const unsigned horizon = cfg.horizon ? cfg.horizon : 2 * k;
    require(v >= 1, "observability: need at least one victim line");

    ObservabilityResult result;

    // Configuration key: control state x per-way occupancy digit
    // (0 = the way's original attacker line, j = victim line j).
    const uint64_t radix = v + 1;
    const uint64_t contentsSpan = checkedPow(radix, k);
    if (contentsSpan == 0 ||
        contentsSpan > (uint64_t{1} << 62) / view.numStates()) {
        result.outcome = SecOutcome::kOverBudget;
        return result;
    }
    std::vector<uint64_t> wayWeight(k);
    for (unsigned w = 0; w < k; ++w)
        wayWeight[w] = checkedPow(radix, w);

    // Level-by-level forward exploration with exact pattern
    // multiplicities: config -> number of victim prefixes landing
    // there.
    std::unordered_map<uint64_t, uint64_t> level;
    level.emplace(uint64_t{view.filledState()} * contentsSpan, 1);

    std::vector<unsigned> digits(k);
    for (unsigned step = 0; step < horizon; ++step) {
        std::unordered_map<uint64_t, uint64_t> next;
        next.reserve(level.size() * v);
        for (const auto& [key, count] : level) {
            const auto state =
                static_cast<uint32_t>(key / contentsSpan);
            uint64_t code = key % contentsSpan;
            for (unsigned w = 0; w < k; ++w) {
                digits[w] = static_cast<unsigned>(code % radix);
                code /= radix;
            }
            for (unsigned j = 1; j <= v; ++j) {
                uint32_t newState;
                uint64_t newCode = key % contentsSpan;
                unsigned residentWay = k;
                for (unsigned w = 0; w < k; ++w) {
                    if (digits[w] == j) {
                        residentWay = w;
                        break;
                    }
                }
                if (residentWay < k) {
                    newState = view.touchNext(state, residentWay);
                } else {
                    const policy::Way w = view.victim(state);
                    newState = view.fillNext(state, w);
                    newCode -= digits[w] * wayWeight[w];
                    newCode += uint64_t{j} * wayWeight[w];
                }
                next[newState * contentsSpan + newCode] += count;
            }
        }
        level = std::move(next);
        result.configsExplored += level.size();
        if (result.configsExplored > budget.maxConfigs) {
            result.outcome = SecOutcome::kOverBudget;
            return result;
        }
    }

    result.outcome = SecOutcome::kComplete;
    result.patterns = checkedPow(v, horizon);
    ensure(result.patterns != 0, "observability: pattern overflow");
    result.reachedConfigs = level.size();

    // Probe every distinct post-victim configuration: the attacker
    // re-accesses its lines in home-way order; a line is a hit iff
    // it is still resident at probe time (earlier probe misses can
    // themselves evict attacker lines — simulated faithfully).
    std::unordered_map<uint32_t, uint64_t> classes;
    std::vector<int> occ(k);
    for (const auto& [key, count] : level) {
        auto state = static_cast<uint32_t>(key / contentsSpan);
        uint64_t code = key % contentsSpan;
        // occ[w]: attacker line id at way w, or -1 for victim lines.
        for (unsigned w = 0; w < k; ++w) {
            occ[w] = (code % radix) == 0 ? static_cast<int>(w) : -1;
            code /= radix;
        }
        uint32_t obs = 0;
        for (unsigned line = 0; line < k; ++line) {
            unsigned residentWay = k;
            for (unsigned w = 0; w < k; ++w) {
                if (occ[w] == static_cast<int>(line)) {
                    residentWay = w;
                    break;
                }
            }
            if (residentWay < k) {
                state = view.touchNext(state, residentWay);
            } else {
                obs |= 1u << line; // miss observed
                const policy::Way w = view.victim(state);
                occ[w] = static_cast<int>(line);
                state = view.fillNext(state, w);
            }
        }
        classes[obs] += count;
    }

    result.observations = classes.size();
    result.leakedBits =
        std::log2(static_cast<double>(result.observations));
    result.minClass = ~uint64_t{0};
    for (const auto& [obs, count] : classes) {
        (void)obs;
        result.minClass = std::min(result.minClass, count);
        result.maxClass = std::max(result.maxClass, count);
    }
    if (classes.empty())
        result.minClass = 0;
    return result;
}

} // namespace recap::sec
