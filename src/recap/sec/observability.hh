/**
 * @file
 * Attacker observability of victim access patterns, in the spirit of
 * the absorption/disclosure metrics of "Security Analysis of Cache
 * Replacement Policies" (Cañones, Köpf, Reineke).
 *
 * Protocol modelled: the attacker primes the set with its k lines
 * (canonical reset + sequential fill), the victim then performs L
 * accesses drawn from an alphabet of v victim lines mapping to the
 * same set, and the attacker finally probes its k lines in home-way
 * order, observing a hit or miss per probe. The policy automaton
 * decides which victim patterns are telling: two patterns that drive
 * the product of (control state, per-way occupancy) to the same
 * configuration are absorbed — indistinguishable forever — while
 * distinct final observations disclose information.
 *
 * observability() forward-explores the product level by level with
 * per-configuration pattern multiplicities (so the v^L patterns are
 * counted exactly without enumeration), then simulates the probe
 * from every distinct post-victim configuration and buckets the
 * pattern counts by observation. log2(#observations) bounds the
 * bits per round the attacker's hit/miss trace leaks about the
 * victim's pattern.
 */

#ifndef RECAP_SEC_OBSERVABILITY_HH_
#define RECAP_SEC_OBSERVABILITY_HH_

#include <cstdint>
#include <string>

#include "recap/sec/sec.hh"

namespace recap::sec
{

/** Shape of the victim phase. */
struct ObservabilityConfig
{
    /** Victim-line alphabet size v (>= 1). */
    unsigned victimLines = 2;

    /** Victim accesses L per round; 0 = 2 x associativity. */
    unsigned horizon = 0;
};

/** Result of the observability count. */
struct ObservabilityResult
{
    SecOutcome outcome = SecOutcome::kNotCompiled;

    /** Total victim patterns, v^L. */
    uint64_t patterns = 0;

    /** Distinct post-victim product configurations reached. */
    uint64_t reachedConfigs = 0;

    /** Distinct attacker probe observations (hit/miss vectors). */
    uint64_t observations = 0;

    /** log2(observations): bits disclosed per round, upper bound. */
    double leakedBits = 0.0;

    /**
     * Pattern-count extremes across observation classes: a large
     * maxClass means many victim behaviours are absorbed into one
     * observation; minClass == 1 means some pattern is uniquely
     * identified by the attacker's trace.
     */
    uint64_t minClass = 0;
    uint64_t maxClass = 0;

    uint64_t configsExplored = 0;

    /** e.g. "13 obs / 256 patterns (3.7 bits)". */
    std::string render() const;
};

/** Runs the forward product exploration on @p view. */
ObservabilityResult
observability(const policy::CompiledTableView& view,
              const ObservabilityConfig& cfg = {},
              const SecBudget& budget = {});

} // namespace recap::sec

#endif // RECAP_SEC_OBSERVABILITY_HH_
