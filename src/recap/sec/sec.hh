/**
 * @file
 * Common vocabulary of the security-analysis subsystem.
 *
 * The sec:: searches treat a compiled policy automaton
 * (policy::CompiledTableView) as a game board: the attacker plays
 * accesses, the board answers with hits, misses and evictions, and
 * exhaustive/BFS search over the dense transition tables answers
 * adversarial questions — how cheaply a victim line can be evicted,
 * whether a RELOAD+REFRESH-style stealthy probe cycle exists, and
 * how much of the victim's access pattern the attacker's hit/miss
 * trace discloses.
 *
 * Every search is budgeted and abstains explicitly: a result either
 * completes (its numbers are exact) or reports kOverBudget /
 * kNotCompiled, mirroring the nullptr-on-over-budget semantics of
 * policy::CompileBudget. No search silently truncates.
 */

#ifndef RECAP_SEC_SEC_HH_
#define RECAP_SEC_SEC_HH_

#include <cstdint>
#include <optional>
#include <string>

#include "recap/policy/compiled.hh"

namespace recap::sec
{

/** How a budgeted security search ended. */
enum class SecOutcome
{
    /** Search finished; the result fields are exact. */
    kComplete,

    /**
     * The configuration budget ran out before the search finished.
     * Fields flagged as best-so-far may still carry a witness (e.g.
     * a stealthy cycle that was found before the budget expired),
     * but no minimality or impossibility claim is made.
     */
    kOverBudget,

    /**
     * The policy has no compiled table (metadata-consuming policies
     * refuse compilation; huge automata exceed the compile budget),
     * so no table-based search ran at all.
     */
    kNotCompiled,
};

/** "complete" | "over-budget" | "not-compiled". */
std::string outcomeName(SecOutcome outcome);

/** Limits shared by the sec:: searches. */
struct SecBudget
{
    /**
     * Abort a search beyond this many explored product
     * configurations (summed across the sub-searches of one
     * analysis). The default admits every classic catalog policy at
     * 2 and 4 ways and the small dueling parameterizations at 2
     * ways; LRU-class automata at 8 ways exceed it in the informed
     * eviction game and abstain.
     */
    uint64_t maxConfigs = 2'000'000;

    /** Budget for obtaining the compiled table itself. */
    policy::CompileBudget compile;
};

/**
 * Compiles @p spec at @p ways under @p budget and wraps the table in
 * a view; std::nullopt when the policy does not compile (the caller
 * reports kNotCompiled).
 */
std::optional<policy::CompiledTableView>
viewForSpec(const std::string& spec, unsigned ways,
            const SecBudget& budget = {});

} // namespace recap::sec

#endif // RECAP_SEC_SEC_HH_
