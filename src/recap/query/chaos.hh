/**
 * @file
 * Chaos harness for the fault-tolerant query service.
 *
 * The service's robustness claims (every request ends in exactly one
 * taxonomy outcome, no crashes, no hangs, breakers trip and recover)
 * are only worth anything under adversarial conditions. This harness
 * drives a ServerCore with:
 *
 *   - many concurrent scripted clients (one thread each, session =
 *     client id, so clients share shards),
 *   - a Zipf-distributed request mix over a pool of lines (hot
 *     requests repeat — exactly what the degraded-answer cache is
 *     for),
 *   - service-layer injections: mid-request disconnects (the sink
 *     throws), slow readers (the sink blocks while holding its
 *     admission slot), malformed-line floods and oversized lines,
 *   - hostile machines (hw::FaultConfig::hostile) underneath the
 *     MachineOracle shards — wired up by the caller, and
 *   - scripted clocks with forward jumps (ChaosClock), so deadline
 *     and breaker logic is exercised deterministically.
 *
 * Everything is seed-deterministic per client; only thread
 * interleaving varies between runs, and the assertions (taxonomy
 * completeness, outcome counts' consistency) hold for every
 * interleaving.
 */

#ifndef RECAP_QUERY_CHAOS_HH_
#define RECAP_QUERY_CHAOS_HH_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "recap/common/rng.hh"
#include "recap/query/service.hh"

namespace recap::query
{

/**
 * A deterministic scripted clock: every reading advances time by
 * @p tickMillis, and every @p jumpEvery-th reading additionally
 * jumps forward by @p jumpMillis (modelling NTP steps / suspends).
 * Thread-safe; hand fn() to ServerOptions::clock.
 */
class ChaosClock
{
  public:
    explicit ChaosClock(uint64_t tickMillis = 1,
                        uint64_t jumpEvery = 0,
                        uint64_t jumpMillis = 0)
        : tick_(tickMillis), jumpEvery_(jumpEvery),
          jump_(jumpMillis)
    {}

    uint64_t read()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        now_ += tick_;
        if (jumpEvery_ != 0 && ++readings_ % jumpEvery_ == 0)
            now_ += jump_;
        return now_;
    }

    ClockFn fn()
    {
        return [this] { return read(); };
    }

  private:
    std::mutex mutex_;
    uint64_t now_ = 1; // never 0: Deadline treats 0 as unbounded
    uint64_t readings_ = 0;
    uint64_t tick_;
    uint64_t jumpEvery_;
    uint64_t jump_;
};

/**
 * Zipf(s) sampler over indices [0, n): index k has weight
 * 1 / (k+1)^s. s = 0 is uniform; s around 1 gives the classic
 * hot-head distribution of real query traffic.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double exponent);

    std::size_t sample(Rng& rng) const;

  private:
    std::vector<double> cdf_;
};

/**
 * A deliberately sick oracle for deterministic breaker tests: throws
 * for the first @p failFirstN evaluations (and batch evaluations),
 * then behaves exactly like the wrapped oracle.
 */
class FlakyOracle : public QueryOracle
{
  public:
    FlakyOracle(QueryOracle& inner, unsigned failFirstN)
        : inner_(inner), failuresLeft_(failFirstN)
    {}

    unsigned ways() const override { return inner_.ways(); }
    std::string describe() const override
    {
        return "flaky(" + inner_.describe() + ")";
    }
    QueryVerdict evaluate(const CompiledQuery& query) override;
    std::vector<QueryVerdict>
    evaluateBatch(const std::vector<CompiledQuery>& queries,
                  const BatchOptions& opts,
                  BatchStats* stats) override;
    uint64_t experimentsRun() const override
    {
        return inner_.experimentsRun();
    }
    uint64_t accessesIssued() const override
    {
        return inner_.accessesIssued();
    }
    void setCheckpoint(std::function<void()> hook) override
    {
        inner_.setCheckpoint(std::move(hook));
    }

    /** Re-arms the fault: the NEXT @p n evaluations throw. */
    void arm(unsigned n) { failuresLeft_ = n; }

    /** Injected failures still pending. */
    unsigned failuresLeft() const { return failuresLeft_; }

  private:
    void maybeFail();

    QueryOracle& inner_;
    unsigned failuresLeft_;
};

/** What the chaos clients inject and how much load they apply. */
struct ChaosConfig
{
    /** Concurrent client threads; client c drives session c. */
    unsigned clients = 8;

    unsigned requestsPerClient = 128;

    /** Determinism root; client c uses deriveTaskSeed(seed, c). */
    uint64_t seed = 1;

    /**
     * The request mix, sampled Zipf(zipfExponent); empty selects
     * defaultRequestPool().
     */
    std::vector<std::string> requestPool;
    double zipfExponent = 1.1;

    /** Every Nth delivery to this client throws (0 = never). */
    unsigned disconnectEveryN = 0;

    /** Every Nth delivery blocks ~slowReaderMillis (0 = never). */
    unsigned slowReaderEveryN = 0;
    unsigned slowReaderMillis = 2;

    /** Every Nth request is a malformed line (0 = never). */
    unsigned malformedEveryN = 0;

    /** Every Nth request is an oversized line (0 = never). */
    unsigned oversizeEveryN = 0;
};

/** Aggregated end states of one chaos run. */
struct ChaosReport
{
    uint64_t issued = 0;

    uint64_t silent = 0;
    uint64_t answered = 0;
    uint64_t aborted = 0;
    uint64_t shed = 0;
    uint64_t degraded = 0;

    uint64_t deliveredFailures = 0; ///< responses lost to disconnects
    uint64_t extraAttempts = 0;     ///< sum of (attempts - 1)

    /** Abort/degrade/shed causes by canonical reason name. */
    std::map<std::string, uint64_t> byReason;

    uint64_t classified() const
    {
        return silent + answered + aborted + shed + degraded;
    }

    /** Every issued request ended in exactly one outcome. */
    bool complete() const { return classified() == issued; }
};

/**
 * A query mix exercising single queries, batches, commands and
 * client errors, for an oracle of @p ways ways. Hot head first (the
 * Zipf sampler favours low indices).
 */
std::vector<std::string> defaultRequestPool(unsigned ways);

/**
 * Runs the chaos scenario against @p core: cfg.clients threads each
 * issue cfg.requestsPerClient requests through ServerCore::handle
 * with the configured injections, then the per-client tallies merge
 * into one report. Deterministic per client given cfg.seed.
 */
ChaosReport runChaos(ServerCore& core, const ChaosConfig& cfg);

} // namespace recap::query

#endif // RECAP_QUERY_CHAOS_HH_
